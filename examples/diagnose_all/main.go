// Diagnose-all: the same symptom — a sub-second Point-in-Time response
// time spike — produced by four different root causes (the paper's two
// scenarios plus two causes from its related-work list), each correctly
// named by milliScope's diagnosis pipeline:
//
//   - a database redo-log flush seizing the DB disk      → disk-io @ mysql
//   - dirty-page recycling saturating the web node's CPU → dirty-page @ apache
//   - a JVM stop-the-world collection on the app node    → cpu-saturation @ tomcat
//   - DVFS downclocking the DB node                      → dvfs @ mysql
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"github.com/gt-elba/milliscope"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "diagnose_all:", err)
		os.Exit(1)
	}
}

func run() error {
	base, err := os.MkdirTemp("", "mscope-diagnose-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(base)

	scenarios := []struct {
		label string
		cfg   milliscope.ExperimentConfig
	}{
		{"DB redo-log flush", milliscope.ScenarioDBIO(filepath.Join(base, "dbio"))},
		{"dirty-page recycling", milliscope.ScenarioDirtyPage(filepath.Join(base, "dirty"))},
		{"JVM stop-the-world GC", milliscope.ScenarioJVMGC(filepath.Join(base, "gc"))},
		{"DVFS downclock", milliscope.ScenarioDVFS(filepath.Join(base, "dvfs"))},
	}
	for _, sc := range scenarios {
		fmt.Printf("── injected fault: %-24s (experiment %q)\n", sc.label, sc.cfg.Name)
		res, err := milliscope.RunExperiment(sc.cfg)
		if err != nil {
			return err
		}
		db, _, err := res.Ingest(filepath.Join(base, sc.cfg.Name+"-work"))
		if err != nil {
			return err
		}
		diag, err := milliscope.Diagnose(db, 50*time.Millisecond)
		if err != nil {
			return err
		}
		fmt.Printf("   avg RT %.1f ms, PIT peak %.1fx the average\n",
			diag.PIT.AvgUS/1000, diag.PIT.PeakFactor())
		if len(diag.Windows) == 0 {
			fmt.Println("   no VLRT window detected")
			continue
		}
		for i, wd := range diag.Windows {
			fmt.Printf("   window %d: queues grew at %v → verdict: %s\n",
				i+1, wd.Pushback.Grew, wd.Verdict)
		}
		fmt.Println()
	}
	fmt.Println("four identical-looking latency spikes, four different named causes —")
	fmt.Println("the integration of event and resource monitors is what tells them apart.")
	return nil
}
