// Scenario B (paper Section V-B): two look-alike response time peaks that
// turn out to have a different shape — the first saturates only Apache
// (dirty-page recycling on the web node), the second saturates Tomcat and
// pushes back to Apache. milliScope tells them apart via queue growth
// (Figure 8b), CPU saturation (8c) and the dirty-page collapse (8d).
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"github.com/gt-elba/milliscope"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "dirtypage_bottleneck:", err)
		os.Exit(1)
	}
}

func run() error {
	base, err := os.MkdirTemp("", "mscope-dirtypage-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(base)

	cfg := milliscope.ScenarioDirtyPage(filepath.Join(base, "logs"))
	fmt.Printf("running scenario %q (dirty-page surges on apache@4s, tomcat@6.5s)...\n", cfg.Name)
	res, err := milliscope.RunExperiment(cfg)
	if err != nil {
		return err
	}
	fmt.Println("trial:", res.Stats)
	db, _, err := res.Ingest(filepath.Join(base, "work"))
	if err != nil {
		return err
	}

	figs, stats, err := milliscope.Fig8DirtyPage(db, 50*time.Millisecond)
	if err != nil {
		return err
	}
	for _, f := range figs {
		if err := f.Render(os.Stdout, 90, 12); err != nil {
			return err
		}
		fmt.Println()
	}

	fmt.Printf("→ %d response-time peaks detected (avg RT %.1f ms, peak factor %.1fx)\n",
		len(stats.VLRTWindows), stats.PIT.AvgUS/1000, stats.PIT.PeakFactor())
	for i, pb := range stats.Pushback {
		verdict := "single-tier (web node recycling)"
		if pb.CrossTier {
			verdict = "cross-tier pushback (app node recycling)"
		}
		fmt.Printf("  peak %d: queues grew at %v → %s\n", i+1, pb.Grew, verdict)
	}
	fmt.Println("\ndiagnosis: both peaks are dirty-page recycling episodes, on different nodes —")
	fmt.Println("the same symptom (a ~1s PIT spike) with two distinct root causes, which is")
	fmt.Println("exactly why the paper integrates event and resource monitors in one warehouse.")
	return nil
}
