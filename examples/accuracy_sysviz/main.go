// Accuracy validation (paper Section VI-A, Figure 9): the event
// mScopeMonitors' queue lengths are compared, tier by tier, against the
// SysViz comparator reconstructing the same trial from a passive network
// tap — plus the causal-path accuracy gap that motivates milliScope's
// explicit ID propagation.
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"github.com/gt-elba/milliscope"
	"github.com/gt-elba/milliscope/internal/sysviz"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "accuracy_sysviz:", err)
		os.Exit(1)
	}
}

func run() error {
	base, err := os.MkdirTemp("", "mscope-accuracy-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(base)

	// Workload 4000 over 10 s keeps the example quick; the benchmark
	// harness runs the paper's workload 8000.
	cfg := milliscope.ScenarioAccuracy(filepath.Join(base, "logs"), 4000, 10*time.Second)
	fmt.Printf("running %q with event monitors AND a network tap...\n", cfg.Name)
	res, err := milliscope.RunExperiment(cfg)
	if err != nil {
		return err
	}
	fmt.Println("trial:", res.Stats)
	fmt.Printf("tap captured %d wire messages\n\n", res.Capture.Len())

	db, _, err := res.Ingest(filepath.Join(base, "work"))
	if err != nil {
		return err
	}
	figs, stats, err := milliscope.Fig9Accuracy(db, res.Capture.Messages(), 100*time.Millisecond)
	if err != nil {
		return err
	}
	for _, f := range figs {
		if err := f.Render(os.Stdout, 90, 10); err != nil {
			return err
		}
		fmt.Println()
	}
	fmt.Println("per-tier agreement (event monitors vs SysViz):")
	for _, tier := range milliscope.Tiers {
		st := stats[tier]
		fmt.Printf("  %-8s corr=%.3f  MAE=%.2f requests  (%d windows)\n",
			tier, st.Correlation, st.MAE, st.Windows)
	}

	// Where the two approaches differ: causal-path attribution. SysViz
	// infers nesting from timing; milliScope propagates IDs and is exact.
	txns, err := sysviz.MatchTransactions(res.Capture.Messages())
	if err != nil {
		return err
	}
	sysviz.BuildTraces(txns)
	correct, total := sysviz.PathAccuracy(txns)
	fmt.Printf("\ncausal-path attribution: SysViz timing inference %.1f%% correct (%d/%d);\n",
		100*float64(correct)/float64(total), correct, total)
	fmt.Println("milliScope's propagated request IDs are exact by construction — the reason")
	fmt.Println("the paper instruments the URL/SQL path instead of relying on timing.")
	return nil
}
