// Overhead comparison (paper Section VI-B, Figures 10 and 11): run the
// RUBBoS workload sweep with the event mScopeMonitors enabled and
// disabled, and show that throughput is unchanged, latency grows by
// milliseconds, IOWait by a few percent, while log write volume roughly
// doubles — the paper's "favorable tradeoff".
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"github.com/gt-elba/milliscope"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "overhead:", err)
		os.Exit(1)
	}
}

func run() error {
	base, err := os.MkdirTemp("", "mscope-overhead-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(base)

	workloads := []int{1000, 2000, 4000, 8000}
	fmt.Printf("sweeping workloads %v, monitors off/on, 6s trials...\n\n", workloads)
	points, err := milliscope.MeasureOverheadSweep(workloads, 6*time.Second,
		func(name string) string { return filepath.Join(base, name) })
	if err != nil {
		return err
	}

	figs10, err := milliscope.Fig10Overhead(points)
	if err != nil {
		return err
	}
	figs11, err := milliscope.Fig11ThroughputRT(points)
	if err != nil {
		return err
	}
	for _, f := range append(figs11, figs10...) {
		if err := f.Render(os.Stdout, 90, 10); err != nil {
			return err
		}
		fmt.Println()
	}

	fmt.Println("workload  monitors  throughput   mean RT    tomcat iowait  tomcat writes")
	for _, p := range points {
		state := "off"
		if p.Enabled {
			state = "on"
		}
		fmt.Printf("%8d  %-8s  %8.1f/s  %9v  %12.2f%%  %11.0fKB\n",
			p.Workload, state, p.Throughput, p.MeanRT.Round(time.Microsecond),
			p.IOWaitPct["tomcat"], p.DiskWriteKB["tomcat"])
	}
	fmt.Println("\npaper's claims to check: identical throughput curves, ~2ms added RT,")
	fmt.Println("1–3% added CPU/IOWait, up to 2x disk write volume.")
	return nil
}
