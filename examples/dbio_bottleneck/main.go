// Scenario A (paper Section V-A): a database redo-log flush seizes the DB
// disk for ~350 ms, and milliScope diagnoses it — the Figure 2 response
// time peak, the Figure 4 disk saturation, the Figure 6 cross-tier
// pushback, and the Figure 7 correlation that names the root cause.
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"github.com/gt-elba/milliscope"
	"github.com/gt-elba/milliscope/internal/analysis"
	"github.com/gt-elba/milliscope/internal/mscopedb"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "dbio_bottleneck:", err)
		os.Exit(1)
	}
}

func run() error {
	base, err := os.MkdirTemp("", "mscope-dbio-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(base)

	cfg := milliscope.ScenarioDBIO(filepath.Join(base, "logs"))
	fmt.Printf("running scenario %q (DB log flush at t=6s for 350ms)...\n", cfg.Name)
	res, err := milliscope.RunExperiment(cfg)
	if err != nil {
		return err
	}
	fmt.Println("trial:", res.Stats)
	db, _, err := res.Ingest(filepath.Join(base, "work"))
	if err != nil {
		return err
	}

	// Figure 2: the Point-in-Time response time peak.
	fig2, pit, err := milliscope.Fig2PointInTime(db, 50*time.Millisecond)
	if err != nil {
		return err
	}
	if err := fig2.Render(os.Stdout, 90, 14); err != nil {
		return err
	}
	fmt.Printf("\n→ maximum PIT response time is %.1fx the average (paper: >20x)\n\n",
		pit.PeakFactor())

	// Figure 4: disk utilization — only the DB tier saturates.
	fig4, _, err := milliscope.Fig4DiskUtil(db, 100*time.Millisecond)
	if err != nil {
		return err
	}
	if err := fig4.Render(os.Stdout, 90, 12); err != nil {
		return err
	}
	fmt.Println()

	// Figure 6: cross-tier queue pushback.
	fig6, queues, err := milliscope.Fig6QueueLengths(db, 50*time.Millisecond)
	if err != nil {
		return err
	}
	if err := fig6.Render(os.Stdout, 90, 12); err != nil {
		return err
	}
	windows := analysis.DetectVLRTWindows(pit.Series, pit.AvgUS, 10, 2*time.Second)
	if len(windows) == 0 {
		return fmt.Errorf("no VLRT window detected")
	}
	w := windows[0]
	w.StartMicros -= (400 * time.Millisecond).Microseconds()
	pb := analysis.DetectPushback(queues, milliscope.Tiers, w, 3)
	fmt.Printf("\n→ VLRT window of %v; queues grew at %v (cross-tier pushback: %v)\n\n",
		windows[0].Duration().Round(time.Millisecond), pb.Grew, pb.CrossTier)

	// Figure 7: correlation names the DB disk as the very short bottleneck.
	pad := time.Second.Microseconds()
	fig7, corr, err := milliscope.Fig7Correlation(db, 50*time.Millisecond,
		windows[0].StartMicros-pad, windows[0].EndMicros+pad)
	if err != nil {
		return err
	}
	if err := fig7.Render(os.Stdout, 90, 12); err != nil {
		return err
	}
	fmt.Printf("\n→ DB disk utilization vs Apache queue: r = %.3f\n", corr)

	// Root-cause ranking across every tier's disk.
	candidates := map[string]*mscopedb.Series{}
	for _, tier := range milliscope.Tiers {
		tbl, err := db.Table(tier + "_collectlcsv")
		if err != nil {
			return err
		}
		resRows, err := tbl.Select().Rows()
		if err != nil {
			return err
		}
		s, err := resRows.WindowAgg("ts", 50*time.Millisecond, "dsk_util", mscopedb.AggMax)
		if err != nil {
			return err
		}
		candidates[tier+" disk"] = s
	}
	causes := analysis.RankRootCauses(queues["apache"], candidates, windows[0])
	fmt.Println("\nroot-cause ranking (correlation with apache queue):")
	for i, c := range causes {
		fmt.Printf("  %d. %-12s r=%.3f peak-in-window=%.1f%%\n",
			i+1, c.Name, c.Correlation, c.PeakInWindow)
	}
	fmt.Printf("\ndiagnosis: %s is the very short bottleneck\n", causes[0].Name)
	return nil
}
