// Custom monitor: the paper stresses that "milliScope is a fine-grained
// monitoring framework, which allows researchers to extend the monitoring
// scope easily" (§V-B). This example adds a monitor the framework has
// never seen — a client-side latency probe writing its own log format —
// by appending one declarative Binding to the Parsing Declaration, then
// correlates the probe's data with the built-in event tables in one
// warehouse.
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"github.com/gt-elba/milliscope"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "custom_monitor:", err)
		os.Exit(1)
	}
}

func run() error {
	base, err := os.MkdirTemp("", "mscope-custom-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(base)
	logs := filepath.Join(base, "logs")

	// 1. Run a standard instrumented trial.
	cfg := milliscope.ScenarioDBIO(logs)
	cfg.Ntier.Users = 100
	cfg.Ntier.Duration = 8 * time.Second
	fmt.Println("running 8s trial (DB flush at t=6s)...")
	res, err := milliscope.RunExperiment(cfg)
	if err != nil {
		return err
	}
	fmt.Println("trial:", res.Stats)

	// 2. A third-party probe wrote its own log alongside the monitors.
	// (Here we synthesize it from the trial's client-observed latencies —
	// in a real deployment this is an external tool's file.)
	probePath := filepath.Join(logs, "probe_latency.log")
	if err := writeProbeLog(probePath, res); err != nil {
		return err
	}
	fmt.Printf("external probe log: %s\n\n", probePath)

	// 3. Extend the Parsing Declaration with ONE binding: pattern, the
	// generic token parser, a regex, and a time normalization rule. No new
	// code enters the pipeline.
	plan := milliscope.DefaultPlan()
	plan.Bindings = append(plan.Bindings, milliscope.Binding{
		Glob:   "probe_*.log",
		Parser: "token",
		Instructions: milliscope.Instructions{
			Pattern: `^(?P<when>\S+) probe=(?P<probe>\S+) rt_ms=(?P<rt_ms>[0-9.]+) ok=(?P<ok>\d)$`,
			Times:   []milliscope.TimeRule{{Field: "when", Layout: time.RFC3339Nano}},
		},
		Source:      "latency-probe",
		TableSuffix: "latency",
		Host:        "probe",
	})

	// 4. Ingest everything — built-in monitors and the custom probe — into
	// one warehouse.
	db := milliscope.OpenDB()
	rep, err := milliscope.IngestDir(db, logs, filepath.Join(base, "work"), plan)
	if err != nil {
		return err
	}
	fmt.Printf("ingested %d rows into %d tables (skipped: %v)\n",
		rep.TotalRows(), len(rep.Loads), rep.Skipped)

	// 5. Query the custom table like any other.
	out, err := milliscope.Query(db,
		"SELECT WINDOW 1s MAX(rt_ms) BY when FROM probe_latency")
	if err != nil {
		return err
	}
	fmt.Println("\nprobe max latency per second (ms):")
	for _, row := range out.Rows {
		fmt.Println("  " + strings.Join(row, "\t"))
	}

	// 6. And the cross-check the warehouse exists for: the probe's worst
	// second coincides with the event monitors' VLRT window.
	diag, err := milliscope.Diagnose(db, 50*time.Millisecond)
	if err != nil {
		return err
	}
	if len(diag.Windows) > 0 {
		fmt.Printf("\nevent monitors' diagnosis of the same interval: %s\n",
			diag.Windows[0].Verdict)
	}
	fmt.Println("\nadding the probe took one Binding — no parser code, no schema DDL.")
	return nil
}

// writeProbeLog synthesizes the external probe's log: one line per 500ms
// with the worst client-observed latency in that window.
func writeProbeLog(path string, res *milliscope.ExperimentResult) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	const windowUS = 500_000
	worst := map[int64]float64{}
	for _, r := range res.Driver.Completed {
		w := int64(r.DoneAt) / 1000 / windowUS * windowUS
		rt := float64((r.DoneAt - r.SubmitAt).Microseconds()) / 1000
		if rt > worst[w] {
			worst[w] = rt
		}
	}
	epoch := time.Date(2017, 4, 1, 0, 0, 0, 0, time.UTC)
	for w := int64(0); ; w += windowUS {
		rt, ok := worst[w]
		if !ok {
			if w > 60_000_000 {
				break
			}
			continue
		}
		ts := epoch.Add(time.Duration(w) * time.Microsecond)
		okFlag := 1
		if rt > 1000 {
			okFlag = 0
		}
		if _, err := fmt.Fprintf(f, "%s probe=edge-1 rt_ms=%.2f ok=%d\n",
			ts.Format(time.RFC3339Nano), rt, okFlag); err != nil {
			return err
		}
	}
	return nil
}
