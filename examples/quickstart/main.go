// Quickstart: run a short monitored trial on the simulated four-tier
// testbed, ingest its logs into mScopeDB, query the warehouse, and
// reconstruct one request's causal path.
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"github.com/gt-elba/milliscope"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	base, err := os.MkdirTemp("", "mscope-quickstart-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(base)

	// 1. Configure a small trial: 80 users for 4 seconds, with the event
	// mScopeMonitors and fine-grained resource monitors attached.
	cfg := milliscope.ScenarioDBIO(filepath.Join(base, "logs"))
	cfg.Ntier.Users = 80
	cfg.Ntier.Duration = 4 * time.Second
	cfg.Injectors = nil // quickstart: healthy system, no fault injection

	fmt.Println("running 4s trial with 80 users...")
	res, err := milliscope.RunExperiment(cfg)
	if err != nil {
		return err
	}
	fmt.Println("trial:", res.Stats)

	// 2. Ingest: declaration → parse → annotated XML → CSV → warehouse.
	db, rep, err := res.Ingest(filepath.Join(base, "work"))
	if err != nil {
		return err
	}
	fmt.Printf("ingested %d rows into %d tables\n\n", rep.TotalRows(), len(rep.Loads))

	// 3. Query the warehouse with MQL: the five slowest requests.
	out, err := milliscope.Query(db,
		"SELECT reqid, uri, rt_us FROM apache_event ORDER BY rt_us DESC LIMIT 5")
	if err != nil {
		return err
	}
	fmt.Println("five slowest requests:")
	fmt.Println("  " + strings.Join(out.Cols, "\t"))
	for _, row := range out.Rows {
		fmt.Println("  " + strings.Join(row, "\t"))
	}

	// 4. Reconstruct the slowest request's causal path (Figure 5) and
	// print its per-tier latency breakdown.
	traces, err := milliscope.BuildTraces(db)
	if err != nil {
		return err
	}
	slowest := out.Rows[0][0]
	tr, ok := traces[slowest]
	if !ok {
		return fmt.Errorf("no trace for %s", slowest)
	}
	fmt.Printf("\ncausal path of %s (%d tier visits):\n", slowest, len(tr.Spans))
	for _, sp := range tr.Spans {
		fmt.Printf("  %-8s q=%d residence=%-10v local=%v\n",
			sp.Tier, sp.Seq, sp.Residence(), sp.Local())
	}
	local := tr.LocalTime()
	tiers := make([]string, 0, len(local))
	for t := range local {
		tiers = append(tiers, t)
	}
	sort.Strings(tiers)
	fmt.Println("per-tier latency contribution:")
	for _, t := range tiers {
		fmt.Printf("  %-8s %v\n", t, local[t])
	}

	// 5. A window-aggregated series: Point-in-Time response time.
	pitOut, err := milliscope.Query(db,
		"SELECT WINDOW 250ms MAX(rt_us) BY ud FROM apache_event")
	if err != nil {
		return err
	}
	fmt.Println("\nPoint-in-Time max RT per 250ms window (µs):")
	for _, row := range pitOut.Rows {
		fmt.Println("  " + strings.Join(row, "\t"))
	}
	return nil
}
