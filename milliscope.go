// Package milliscope is the public API of the milliScope reproduction: a
// millisecond-granularity, software-based resource and event monitoring
// framework for n-tier web services (Lai, Kimball, Zhu, Wang, Pu —
// ICDCS 2017), together with the simulated RUBBoS testbed the evaluation
// runs on.
//
// The framework has four planes, mirroring the paper:
//
//   - event mScopeMonitors trace every request's four boundary timestamps
//     (Upstream Arrival/Departure, Downstream Sending/Receiving) through
//     each component's native log, propagating a fixed-width request ID;
//   - resource mScopeMonitors (simulated SAR, iostat, collectl) sample
//     node counters at millisecond timescales into their native formats;
//   - mScopeDataTransformer unifies those heterogeneous logs through a
//     declarative parse → annotated-XML → CSV pipeline;
//   - mScopeDB stores the result in dynamically created tables served by
//     a scan/window-aggregate engine and a small query language.
//
// Quickstart:
//
//	cfg := milliscope.ScenarioDBIO(logDir)
//	res, err := milliscope.RunExperiment(cfg)
//	// ...
//	db, _, err := res.Ingest(workDir)
//	// ...
//	fig, pit, err := milliscope.Fig2PointInTime(db, 50*time.Millisecond)
//	fig.Render(os.Stdout, 80, 16)
//	out, err := milliscope.Query(db, "SELECT reqid, rt_us FROM apache_event ORDER BY rt_us DESC LIMIT 5")
package milliscope

import (
	"io"
	"net/http"
	"os"
	"time"

	"github.com/gt-elba/milliscope/internal/agentd"
	"github.com/gt-elba/milliscope/internal/collector"
	"github.com/gt-elba/milliscope/internal/core"
	"github.com/gt-elba/milliscope/internal/faults"
	"github.com/gt-elba/milliscope/internal/metrics"
	"github.com/gt-elba/milliscope/internal/mql"
	"github.com/gt-elba/milliscope/internal/mscopedb"
	"github.com/gt-elba/milliscope/internal/ntier"
	"github.com/gt-elba/milliscope/internal/parsers"
	"github.com/gt-elba/milliscope/internal/report"
	"github.com/gt-elba/milliscope/internal/scenario"
	"github.com/gt-elba/milliscope/internal/selfobs"
	"github.com/gt-elba/milliscope/internal/serve"
	"github.com/gt-elba/milliscope/internal/stream"
	"github.com/gt-elba/milliscope/internal/tracegraph"
	"github.com/gt-elba/milliscope/internal/transform"
)

// Experiment configuration and execution.
type (
	// ExperimentConfig describes one monitored trial.
	ExperimentConfig = core.ExperimentConfig
	// ExperimentResult is a completed trial.
	ExperimentResult = core.ExperimentResult
	// OverheadPoint is one cell of the Figures 10/11 sweep.
	OverheadPoint = core.OverheadPoint
	// SystemConfig configures the simulated four-tier testbed.
	SystemConfig = ntier.Config
)

// Warehouse and analysis types.
type (
	// DB is the mScopeDB warehouse.
	DB = mscopedb.DB
	// Table is one warehouse table.
	Table = mscopedb.Table
	// Series is a window-aggregated time series.
	Series = mscopedb.Series
	// QueryOutput is a rendered query result.
	QueryOutput = mql.Output
	// Figure is a renderable evaluation figure.
	Figure = report.Figure
	// PITResult is a Point-in-Time response time computation.
	PITResult = metrics.PITResult
	// Trace is one request's reconstructed causal path.
	Trace = tracegraph.Trace
	// IngestReport summarizes a pipeline run.
	IngestReport = transform.Report
)

// Tiers lists the testbed tiers front to back ("apache", "tomcat",
// "cjdbc", "mysql").
var Tiers = core.Tiers

// RunExperiment executes one monitored trial to completion.
func RunExperiment(cfg ExperimentConfig) (*ExperimentResult, error) {
	return core.RunExperiment(cfg)
}

// DefaultSystemConfig returns the paper's four-tier testbed configuration.
func DefaultSystemConfig() SystemConfig { return ntier.DefaultConfig() }

// ScenarioDBIO configures the Section V-A database-IO bottleneck trial
// (Figures 2, 4, 6, 7).
func ScenarioDBIO(logDir string) ExperimentConfig { return core.ScenarioDBIO(logDir) }

// ScenarioDirtyPage configures the Section V-B dirty-page recycling trial
// (Figure 8).
func ScenarioDirtyPage(logDir string) ExperimentConfig { return core.ScenarioDirtyPage(logDir) }

// ScenarioAccuracy configures the Figure 9 validation trial at the given
// workload.
func ScenarioAccuracy(logDir string, users int, duration time.Duration) ExperimentConfig {
	return core.ScenarioAccuracy(logDir, users, duration)
}

// MeasureOverheadSweep runs the monitors-on/off workload sweep behind
// Figures 10 and 11.
func MeasureOverheadSweep(workloads []int, duration time.Duration, mkLogDir func(string) string) ([]OverheadPoint, error) {
	return core.MeasureOverheadSweep(workloads, duration, mkLogDir)
}

// Pipeline extension types: a custom monitor is added by appending a
// Binding (file pattern → parser + instructions) to a Plan — the Parsing
// Declaration stage is data, not code.
type (
	// Plan is the Parsing Declaration: the binding registry.
	Plan = transform.Plan
	// Binding maps a log-file pattern to a parser and its instructions.
	Binding = transform.Binding
	// Instructions direct how a parser injects semantics into its input.
	Instructions = parsers.Instructions
	// DeriveRule extracts extra fields from an extracted field.
	DeriveRule = parsers.DeriveRule
	// TimeRule normalizes a raw timestamp field.
	TimeRule = parsers.TimeRule
	// LineRule matches one line of a lines-mode record.
	LineRule = parsers.LineRule
)

// DefaultPlan returns the standard declaration covering every monitor this
// framework ships. Append bindings to cover custom log formats.
func DefaultPlan() *Plan { return transform.DefaultPlan() }

// IngestDir pushes a log directory through the transformation pipeline
// into db using the given declaration plan, under the default FailFast
// policy.
func IngestDir(db *DB, logDir, workDir string, plan *Plan) (IngestReport, error) {
	return transform.IngestDir(db, logDir, workDir, plan)
}

// Degraded-mode ingest types.
type (
	// IngestOptions selects the ingest policy, error budget and
	// quarantine directory.
	IngestOptions = transform.Options
	// IngestPolicy is FailFast or Quarantine.
	IngestPolicy = transform.Policy
	// FileFailure records one file rejected under Quarantine.
	FileFailure = transform.FileFailure
)

// Ingest policies.
const (
	// IngestFailFast aborts the ingest on the first malformed line.
	IngestFailFast = transform.FailFast
	// IngestQuarantine diverts malformed regions to per-file sinks and
	// rejects only files whose corruption exceeds the error budget.
	IngestQuarantine = transform.Quarantine
)

// ErrFileRejected marks a per-file quarantine-mode rejection inside
// IngestReport.Failed.
var ErrFileRejected = transform.ErrFileRejected

// ParseIngestPolicy converts a CLI string ("fail-fast", "quarantine").
func ParseIngestPolicy(s string) (IngestPolicy, error) { return transform.ParsePolicy(s) }

// IngestDirWithOptions is the policy-aware ingest: under Quarantine,
// malformed input is diverted and damaged files are rejected per-file
// instead of aborting the run.
func IngestDirWithOptions(db *DB, logDir, workDir string, plan *Plan, opts IngestOptions) (IngestReport, error) {
	return transform.IngestDirWithOptions(db, logDir, workDir, plan, opts)
}

// Fault-injection types (the chaos harness).
type (
	// FaultConfig parameterizes one deterministic corruption pass.
	FaultConfig = faults.Config
	// FaultKind names one injectable fault class.
	FaultKind = faults.Kind
	// FaultReport itemizes what a corruption pass injected where.
	FaultReport = faults.Report
)

// Fault classes.
const (
	FaultGarbage    = faults.KindGarbage
	FaultTorn       = faults.KindTorn
	FaultDuplicate  = faults.KindDuplicate
	FaultTruncate   = faults.KindTruncate
	FaultSkew       = faults.KindSkew
	FaultGap        = faults.KindGap
	FaultDeleteTier = faults.KindDeleteTier
)

// CorruptLogs copies srcDir to dstDir injecting the configured faults;
// same seed + same input ⇒ byte-identical output.
func CorruptLogs(srcDir, dstDir string, cfg FaultConfig) (*FaultReport, error) {
	return faults.Corrupt(srcDir, dstDir, cfg)
}

// ParseFaultKinds converts a comma-separated kind list to FaultKinds.
func ParseFaultKinds(s string) ([]FaultKind, error) { return faults.ParseKinds(s) }

// OpenDB returns an empty warehouse.
func OpenDB() *DB { return mscopedb.Open() }

// LoadDB reads a warehouse saved with (*DB).Save.
func LoadDB(path string) (*DB, error) { return mscopedb.Load(path) }

// StoreOptions tunes the on-disk segment store (spill threshold,
// compaction policy). The zero value applies the defaults.
type StoreOptions = mscopedb.StoreOptions

// OpenDBDir opens (or creates) a warehouse backed by an on-disk
// segment store in dir. Full segments spill to disk; queries prune
// them by zone map before decoding.
func OpenDBDir(dir string, opts StoreOptions) (*DB, error) { return mscopedb.OpenDir(dir, opts) }

// Query runs an MQL statement ("SELECT ... FROM ... [WHERE ...]",
// "SELECT WINDOW 50ms MAX(rt_us) BY ud FROM apache_event").
func Query(db *DB, query string) (*QueryOutput, error) { return mql.Run(db, query) }

// BuildTraces joins the standard event tables into per-request causal
// paths keyed by request ID.
func BuildTraces(db *DB) (map[string]*Trace, error) {
	tables := make([]string, len(Tiers))
	for i, t := range Tiers {
		tables[i] = t + "_event"
	}
	return tracegraph.Build(db, tables)
}

// TraceBuildReport summarizes a degraded-mode trace construction.
type TraceBuildReport = tracegraph.BuildReport

// BuildTracesPartial joins whichever standard event tables exist into
// per-request causal paths, flagging traces that provably lack a missing
// tier instead of failing when a tier's table is absent.
func BuildTracesPartial(db *DB) (map[string]*Trace, *TraceBuildReport, error) {
	tables := make([]string, len(Tiers))
	for i, t := range Tiers {
		tables[i] = t + "_event"
	}
	return tracegraph.BuildPartial(db, tables)
}

// RenderTrace draws one request's causal path as a swimlane (Figure 5),
// annotating incomplete traces with their missing tiers and coverage.
func RenderTrace(w io.Writer, tr *Trace, width int) error {
	return report.RenderTrace(w, tr, width)
}

// RenderTraceCoverage summarizes a partial trace construction for humans.
func RenderTraceCoverage(w io.Writer, rep *TraceBuildReport) error {
	return report.RenderCoverage(w, rep)
}

// TierProfile aggregates a tier's latency contribution across traces.
type TierProfile = tracegraph.TierProfile

// AggregateBreakdown profiles every tier's latency contribution (mean and
// p99 tier-local time) across a trace set.
func AggregateBreakdown(traces map[string]*Trace) map[string]TierProfile {
	return tracegraph.AggregateBreakdown(traces)
}

// Diagnosis types.
type (
	// Diagnosis is the full VSB analysis of an ingested trial.
	Diagnosis = core.Diagnosis
	// WindowDiagnosis explains one VLRT window.
	WindowDiagnosis = core.WindowDiagnosis
	// CauseKind classifies a diagnosed root cause.
	CauseKind = core.CauseKind
)

// Root-cause classes.
const (
	CauseUnknown       = core.CauseUnknown
	CauseDiskIO        = core.CauseDiskIO
	CauseDirtyPage     = core.CauseDirtyPage
	CauseCPU           = core.CauseCPU
	CauseDVFS          = core.CauseDVFS
	CauseCacheStampede = core.CauseCacheStampede
	CauseNetJitter     = core.CauseNetJitter
	CauseLockConvoy    = core.CauseLockConvoy
	CauseConnPool      = core.CauseConnPool
	CauseCrashLoop     = core.CauseCrashLoop
)

// ParseCauseKind resolves a cause-kind name ("disk-io") to its value.
func ParseCauseKind(s string) (CauseKind, bool) { return core.ParseCauseKind(s) }

// Diagnose runs the full milliScope workflow over an ingested trial: VLRT
// window detection, pushback classification, and root-cause ranking with
// corroborating dirty-page and CPU-frequency sensors.
func Diagnose(db *DB, window time.Duration) (*Diagnosis, error) {
	return core.Diagnose(db, window)
}

// ConsistencyReport is the warehouse integrity check result.
type ConsistencyReport = core.ConsistencyReport

// ValidateWarehouse cross-checks the event tables for record conservation
// across tiers — the no-sampling guarantee made testable.
func ValidateWarehouse(db *DB) (*ConsistencyReport, error) {
	return core.ValidateWarehouse(db)
}

// ScenarioJVMGC configures a stop-the-world GC bottleneck trial.
func ScenarioJVMGC(logDir string) ExperimentConfig { return core.ScenarioJVMGC(logDir) }

// ScenarioDVFS configures a CPU-downclock bottleneck trial.
func ScenarioDVFS(logDir string) ExperimentConfig { return core.ScenarioDVFS(logDir) }

// Declarative fault-scenario registry (internal/scenario): every catalogue
// entry binds an injector configuration and workload mix to the verdict
// the diagnosis must reach, making the fault taxonomy an executable test
// suite (`mscope scenario {list,run,verify}`).
type (
	// Scenario is one declarative catalogue entry.
	Scenario = scenario.Spec
	// ScenarioVerdict is the diagnosis a scenario trial must produce.
	ScenarioVerdict = scenario.Verdict
	// ScenarioOptions tunes scenario execution and verification.
	ScenarioOptions = scenario.Options
	// ScenarioOutcome reports one scenario verification.
	ScenarioOutcome = scenario.Outcome
)

// Scenarios returns the registered catalogue in listing order.
func Scenarios() []Scenario { return scenario.Scenarios() }

// ScenarioByName finds one catalogue entry.
func ScenarioByName(name string) (*Scenario, bool) { return scenario.ByName(name) }

// DecodeScenario parses and validates a declarative scenario spec.
func DecodeScenario(data []byte) (*Scenario, error) { return scenario.Decode(data) }

// BuildScenario turns a scenario spec into a runnable experiment writing
// its monitor logs under logDir.
func BuildScenario(s *Scenario, logDir string) (ExperimentConfig, error) {
	return scenario.Build(s, logDir)
}

// RunScenario executes a scenario's trial and batch workflow (simulate,
// corrupt, ingest, diagnose), returning the diagnosis and the directory
// holding the logs it consumed.
func RunScenario(s *Scenario, opts ScenarioOptions) (*Diagnosis, string, error) {
	return scenario.Run(s, opts)
}

// VerifyScenario runs a scenario end to end and checks the diagnosis —
// and, with Options.Live, the online detector — against its registered
// expectation.
func VerifyScenario(s *Scenario, opts ScenarioOptions) (*ScenarioOutcome, error) {
	return scenario.Verify(s, opts)
}

// RenderScenarioList formats the catalogue as the `mscope scenario list`
// table.
func RenderScenarioList(specs []Scenario) string { return scenario.RenderList(specs) }

// Figure builders (one per paper figure).
var (
	// Fig2PointInTime regenerates Figure 2.
	Fig2PointInTime = core.Fig2PointInTime
	// Fig4DiskUtil regenerates Figure 4.
	Fig4DiskUtil = core.Fig4DiskUtil
	// Fig6QueueLengths regenerates Figure 6.
	Fig6QueueLengths = core.Fig6QueueLengths
	// Fig7Correlation regenerates Figure 7.
	Fig7Correlation = core.Fig7Correlation
	// Fig8DirtyPage regenerates Figure 8a–d.
	Fig8DirtyPage = core.Fig8DirtyPage
	// Fig9Accuracy regenerates Figure 9.
	Fig9Accuracy = core.Fig9Accuracy
	// Fig10Overhead regenerates Figure 10.
	Fig10Overhead = core.Fig10Overhead
	// Fig11ThroughputRT regenerates Figure 11.
	Fig11ThroughputRT = core.Fig11ThroughputRT
)

// Live streaming pipeline: incremental ingest and online millibottleneck
// detection over growing log files (internal/stream).
type (
	// LiveConfig parameterizes a live pipeline.
	LiveConfig = stream.Config
	// LivePipeline tails logs, appends rows incrementally, and raises
	// millibottleneck alerts online.
	LivePipeline = stream.Pipeline
	// LiveStatus is a point-in-time pipeline snapshot.
	LiveStatus = stream.Status
	// LiveAlert is one online millibottleneck verdict.
	LiveAlert = stream.Alert
	// LiveProducerConfig parameterizes a staged-log replay.
	LiveProducerConfig = stream.ProducerConfig
	// LiveProducer replays a finished trial's logs at wall-clock pace.
	LiveProducer = stream.Producer
	// LiveFidelityOptions configures adaptive degradation under overload
	// (Config.Fidelity): rollup-instead-of-append with ring-buffered
	// anomaly-neighbourhood promotion.
	LiveFidelityOptions = stream.FidelityOptions
	// LiveFidelityStatus is the degradation subsystem's snapshot inside
	// LiveStatus.
	LiveFidelityStatus = stream.FidelityStatus
	// Overload shapes a replay into a burst against a throttled consumer —
	// the overload injector for chaos drills.
	Overload = faults.Overload
)

// Fidelity modes for LiveFidelityOptions.Mode.
const (
	// FidelityModeFull disables degradation (the default).
	FidelityModeFull = stream.FidelityFull
	// FidelityModeAdaptive lets the hysteresis controller move between
	// full, aggregate and shed as pressure demands.
	FidelityModeAdaptive = stream.FidelityAdaptive
	// FidelityModeAggregate pins degraded mode — every record rolls up,
	// full rows surface only by anomaly promotion.
	FidelityModeAggregate = stream.FidelityAggregate
)

// ParseOverload parses an "at=0.2,until=0.5,factor=12,delay=300us"
// overload spec.
func ParseOverload(spec string) (Overload, error) { return faults.ParseOverload(spec) }

// NewLivePipeline builds a live pipeline; call Start then Stop on it.
func NewLivePipeline(cfg LiveConfig) (*LivePipeline, error) { return stream.New(cfg) }

// NewLiveProducer stages a replay of a finished trial's streamable logs.
func NewLiveProducer(cfg LiveProducerConfig) (*LiveProducer, error) { return stream.NewProducer(cfg) }

// LiveDebugHandler serves Go runtime introspection (/debug/pprof/*,
// /debug/vars) for a live pipeline. Bind it to its own listener
// (`mscope live --debug-addr`) — never the metrics/status one.
func LiveDebugHandler(p *LivePipeline) http.Handler { return stream.DebugHandler(p) }

// Self-observability: milliScope instruments its own pipelines with the
// same timestamped-span methodology it applies to the n-tier system
// (internal/selfobs). Enable before an ingest/live run, write the
// collected telemetry as a milliScope-native log, then ingest that log
// like any other and analyze it with SelfTraceBreakdown.
type (
	// SelfObsCollector accumulates spans and counters for one batch.
	SelfObsCollector = selfobs.Collector
	// SelfTraceBatch is one instrumented run reconstructed from *_selftrace
	// warehouse tables.
	SelfTraceBatch = core.SelfBatch
	// SelfTraceStage is a per-(pipeline, stage) critical-path aggregate.
	SelfTraceStage = core.SelfStage
	// SelfTraceCounter is one counter snapshot from a batch.
	SelfTraceCounter = core.SelfCounter
)

// SelfObsEnable turns self-telemetry on process-wide. batch names the run
// in the emitted log; epoch anchors its wall-clock timestamps. Returns
// the active collector; pass it to WriteSelfLog after the run.
func SelfObsEnable(batch string, epoch time.Time) *SelfObsCollector {
	return selfobs.Enable(batch, epoch)
}

// SelfObsDisable turns self-telemetry off and returns the collector that
// was active, if any.
func SelfObsDisable() *SelfObsCollector { return selfobs.Disable() }

// WriteSelfLog writes the collector's telemetry to path in the
// self-trace log format the built-in Parsing Declaration routes (name the
// file *_selftrace.log — e.g. mscope_selftrace.log — so a later ingest
// picks it up). Returns the number of lines written.
func WriteSelfLog(c *SelfObsCollector, path string) (int, error) {
	f, err := os.Create(path)
	if err != nil {
		return 0, err
	}
	n, err := c.WriteLog(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return n, err
}

// SelfTraceBreakdown aggregates every *_selftrace table in the warehouse
// into per-batch, per-stage critical-path summaries.
func SelfTraceBreakdown(db *DB) ([]SelfTraceBatch, error) { return core.SelfTraceBreakdown(db) }

// RenderSelfTrace prints per-batch critical-path tables for human eyes.
func RenderSelfTrace(w io.Writer, batches []SelfTraceBatch) error {
	return core.RenderSelfTrace(w, batches)
}

// Fleet-wide self-telemetry: when agents and the collector run with
// SelfTrace enabled, every node ships its own spans over the same wire
// protocol as the monitor logs, and the collector's warehouse holds one
// *_selftrace table per node.
type (
	// FleetSelfTrace is the cross-node per-batch critical path: every
	// node's spans merged on one absolute time axis with node attribution.
	FleetSelfTrace = core.FleetSelfTrace
	// FleetSelfTraceStage is one (node, pipeline, stage) aggregate.
	FleetSelfTraceStage = core.FleetStage
)

// FleetSelfTraceBreakdown merges every node's *_selftrace table into one
// fleet-wide critical path. Returns (nil, nil) when the warehouse holds
// no self-telemetry.
func FleetSelfTraceBreakdown(db *DB) (*FleetSelfTrace, error) {
	return core.FleetSelfTraceBreakdown(db)
}

// RenderFleetSelfTrace prints the fleet-wide breakdown for human eyes.
func RenderFleetSelfTrace(w io.Writer, ft *FleetSelfTrace) error {
	return core.RenderFleetSelfTrace(w, ft)
}

// Flamegraph rendering: the per-request waterfall/critical-path data
// model behind `mscope serve` (internal/tracegraph).
type (
	// TraceFlame is one request laid out for rendering: frames on a
	// shared time axis, nested by tier depth, each charged its
	// critical-path self time.
	TraceFlame = tracegraph.Flame
	// TraceFrame is one box of a TraceFlame.
	TraceFrame = tracegraph.Frame
)

// BuildFlame lays one reconstructed trace out as a flamegraph; render it
// with (*TraceFlame).WriteSVG or serve it as JSON.
func BuildFlame(tr *Trace) *TraceFlame { return tracegraph.BuildFlame(tr) }

// Observability service (internal/serve): the HTTP surface behind
// `mscope serve`, attachable to a saved warehouse or a live pipeline.
type (
	// ServeConfig attaches the service to exactly one warehouse source.
	ServeConfig = serve.Config
	// ObservabilityServer answers MQL and window-aggregation queries,
	// renders waterfalls and critical-path flamegraphs, and exposes the
	// diagnosis timeline with full evidence.
	ObservabilityServer = serve.Server
)

// NewObservabilityServer validates the config and builds the service;
// mount its Handler on a listener.
func NewObservabilityServer(cfg ServeConfig) (*ObservabilityServer, error) {
	return serve.New(cfg)
}

// Distributed deployment: per-node agents tail and parse their own
// monitor logs and ship checkpointed column batches to one central
// collector, whose warehouse is byte-identical to single-process ingest
// of the same logs (internal/agentd, internal/collector).
type (
	// AgentConfig parameterizes one per-node shipping agent.
	AgentConfig = agentd.Config
	// Agent tails a node's logs and ships parsed batches to a collector.
	// Start launches it; Stop drains to EOF and says goodbye.
	Agent = agentd.Agent
	// AgentStatus is a point-in-time agent snapshot.
	AgentStatus = agentd.Status
	// CollectorConfig parameterizes the central ingest server. Its Engine
	// field is a LiveConfig with LogDir left empty: window, skew, error
	// budget and fidelity apply exactly as in `mscope live`.
	CollectorConfig = collector.Config
	// Collector accepts agent connections, acks durable offsets, and
	// feeds the shared streaming engine — warehouse, watermark, online
	// detector and all.
	Collector = collector.Collector
	// CollectorStatus is a point-in-time collector snapshot.
	CollectorStatus = collector.Status
)

// NewAgent validates the config and builds a shipping agent.
func NewAgent(cfg AgentConfig) (*Agent, error) { return agentd.New(cfg) }

// NewCollector builds the central collector and its remote-fed engine.
func NewCollector(cfg CollectorConfig) (*Collector, error) { return collector.New(cfg) }
