# milliScope reproduction — common targets.

GO ?= go

.PHONY: all build vet selfobs-lint test test-short race race-short bench bench-check overhead-check fidelity-check overload-soak dist-soak scenario-soak db-soak serve-smoke profile-ingest cover fuzz chaos live-smoke experiment clean

all: build vet selfobs-lint race-short live-smoke serve-smoke test bench-check overhead-check fidelity-check overload-soak dist-soak scenario-soak db-soak

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Full suite, including the 45s soak trial and saturation sweep.
test:
	$(GO) test ./...

# Skips the soak and saturation tests.
test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./...

# Race detector over the quick suite; part of `all`.
race-short:
	$(GO) test -race -short ./...

# Regenerates every paper figure and ablation; writes bench_output.txt.
bench:
	$(GO) test -bench=. -benchmem ./... 2>&1 | tee bench_output.txt

# Regression gate: re-run the ingest benchmarks and compare against the
# committed baselines (BENCH_ingest.json, BENCH_stream.json). A tracked
# metric >20% worse than its baseline fails the build; improvements pass
# (re-record the baseline to lock them in). BENCH_ingest.json additionally
# pins absolute bounds on the serial direct path: a rows_per_sec floor at
# 2x the staged-pipeline baseline and an allocs_per_op ceiling at 1/5 of
# it. The per-format parser microbenchmarks are gated by the
# BENCH_parsers.json per-line budgets, and BENCH_query.json pins absolute
# interactive-latency ceilings on the serve window-aggregation and
# flamegraph-render endpoints. BENCH_db.json budgets the segment store:
# bytes_on_disk_per_row must stay under the legacy gob image, and a 1s
# window query over a 12-segment corpus must decode only the overlapping
# segments (pruning counters are deterministic and gate hard).
bench-check:
	$(GO) test -run xxx -bench 'BenchmarkIngestBatch|BenchmarkIngestParallel|BenchmarkIngestWorkers|BenchmarkIngestStreaming' \
		-benchtime 5x -benchmem . 2>&1 | tee bench_output.txt
	$(GO) run ./cmd/benchcheck --input bench_output.txt BENCH_ingest.json BENCH_stream.json
	$(GO) test -run xxx -bench 'BenchmarkSegmentSpill|BenchmarkSpilledWindowQuery' \
		-benchtime 5x -benchmem ./internal/mscopedb/ 2>&1 | tee db_bench_output.txt
	$(GO) run ./cmd/benchcheck --input db_bench_output.txt BENCH_db.json
	$(GO) test -run xxx -bench BenchmarkParseLine -benchtime 100x ./internal/parsers/ 2>&1 | tee parser_bench_output.txt
	$(GO) run ./cmd/benchcheck --input parser_bench_output.txt BENCH_parsers.json
	$(GO) test -run xxx -bench BenchmarkIngestDistributed -benchtime 5x -benchmem . 2>&1 | tee dist_bench_output.txt
	$(GO) run ./cmd/benchcheck --input dist_bench_output.txt BENCH_dist.json
	$(GO) test -run xxx -bench 'BenchmarkQueryWindow|BenchmarkQueryWindowPruned|BenchmarkFlamegraphRender' \
		-benchtime 5x -benchmem ./internal/serve/ 2>&1 | tee query_bench_output.txt
	$(GO) run ./cmd/benchcheck --input query_bench_output.txt BENCH_query.json

# Self-observability budget gate: paired instrumented-vs-disabled ingests
# of the same corpus; fails if the median overhead exceeds the absolute
# 3% ceiling in BENCH_selfobs.json.
overhead-check:
	$(GO) test -run xxx -bench BenchmarkSelfObsOverhead -benchtime 3x . 2>&1 | tee selfobs_bench_output.txt
	$(GO) run ./cmd/benchcheck --input selfobs_bench_output.txt BENCH_selfobs.json

# Degradation contract gate: aggregate fidelity must retain >= 10x fewer
# rows on clean traffic and the adaptive controller may cost an idle
# pipeline at most 10% (absolute bounds in BENCH_fidelity.json).
fidelity-check:
	$(GO) test -run xxx -bench BenchmarkFidelity -benchtime 3x . 2>&1 | tee fidelity_bench_output.txt
	$(GO) run ./cmd/benchcheck --input fidelity_bench_output.txt BENCH_fidelity.json

# Overload chaos drill under the race detector: a 12x burst replay against
# a throttled consumer must stay in bounded memory, degrade and recover
# with hysteresis, and still raise the disk-IO verdict.
overload-soak:
	$(GO) test -race -run TestOverloadSoak -v ./internal/stream/

# Observability-service smoke under the race detector: every `mscope
# serve` endpoint — tables, MQL query, index-pruned window aggregation,
# waterfall, flamegraph SVG, diagnosis timeline, healthz, metrics — is
# driven against a real scenario warehouse, plus the live-attachment path
# with concurrent queries during load.
serve-smoke:
	$(GO) test -race -run 'TestServeSmoke|TestServeLivePipeline' -v ./internal/serve/

# Distributed kill/restart soak under the race detector: four agents ship
# the disk-IO trial to a throttled collector, one is crashed mid-stream
# (no drain) and replaced; the replacement must resume from the
# collector-acked offsets with zero duplicate rows — the warehouse stays
# byte-identical to single-process ingest — and the disk-IO verdict must
# still fire from the distributed evidence.
dist-soak:
	$(GO) test -race -run TestDistSoak -v ./internal/collector/

# Fault-catalogue soak under the race detector: every registered scenario
# runs end to end (generate → ingest → diagnose, then a live replay
# through the streaming pipeline) and must reach exactly its declared
# verdict both offline and online. Per-scenario timing is printed.
scenario-soak:
	$(GO) run -race ./cmd/mscope scenario verify --all --live

# Durable-warehouse soak under the race detector: a 15s trial ingested
# into a spill-enabled warehouse sized so every event table holds >= 10x
# its RAM budget on disk, killed mid-ingest and mid-compaction, reopened,
# resumed, compacted — and the result must stay cell-identical (and
# diagnose-identical) to a pure in-memory ingest of the same logs.
db-soak:
	MSCOPE_DB_SOAK=1 $(GO) test -race -run TestDBSoak -v -timeout 15m ./internal/scenario/

# Profile the serial batch ingest: writes CPU and allocation profiles of
# BenchmarkIngestBatch for `go tool pprof`. This is the loop the
# direct-path work optimizes; start here before touching the hot path.
profile-ingest:
	$(GO) test -run xxx -bench BenchmarkIngestBatch -benchtime 5x \
		-cpuprofile ingest_cpu.pprof -memprofile ingest_mem.pprof .
	@echo "profiles written; inspect with:"
	@echo "  $(GO) tool pprof -top ingest_cpu.pprof"
	@echo "  $(GO) tool pprof -top -sample_index=alloc_objects ingest_mem.pprof"

# Hot-path telemetry lint: files on the per-record ingest/stream paths may
# only touch internal/selfobs through its no-op-able API (NewBuf / Begin /
# counters), never through formatting helpers that would allocate when
# telemetry is disabled.
selfobs-lint:
	$(GO) run ./cmd/selfobslint ./internal/transform ./internal/stream

cover:
	$(GO) test -short -cover ./...

# Short fuzz pass over the event-log parsers (native go fuzzing), plus
# the shard-planner equivalence property one layer up and the scenario
# spec decoder (malformed catalogue entries must error, never panic).
fuzz:
	$(GO) test -fuzz FuzzApacheAccessLog -fuzztime 30s ./internal/parsers/
	$(GO) test -fuzz FuzzMySQLSlowLog -fuzztime 30s ./internal/parsers/
	$(GO) test -fuzz FuzzTokenizerEquivalence -fuzztime 30s ./internal/parsers/
	$(GO) test -fuzz FuzzShardedParseEquivalence -fuzztime 30s ./internal/transform/
	$(GO) test -fuzz FuzzWireFrameDecode -fuzztime 30s ./internal/wire/
	$(GO) test -fuzz FuzzScenarioConfigDecode -fuzztime 30s ./internal/scenario/

# End-to-end chaos drill: run a trial, corrupt its logs deterministically,
# ingest the damage under the quarantine policy, and diagnose anyway.
chaos:
	rm -rf /tmp/mscope-chaos
	$(GO) run ./cmd/mscope run --scenario dbio --out /tmp/mscope-chaos/logs
	$(GO) run ./cmd/mscope chaos --logs /tmp/mscope-chaos/logs --out /tmp/mscope-chaos/corrupted --seed 1 --rate 0.01
	$(GO) run ./cmd/mscope ingest --logs /tmp/mscope-chaos/corrupted --work /tmp/mscope-chaos/work \
		--db /tmp/mscope-chaos/w.db --mode quarantine --budget 0.25
	$(GO) run ./cmd/mscope diagnose --db /tmp/mscope-chaos/w.db

# Live-monitoring smoke: replay the disk-IO trial through `mscope live`
# under the race detector; --expect-alert fails the run unless the online
# detector raised at least one millibottleneck alert and shut down cleanly.
live-smoke:
	rm -rf /tmp/mscope-live-smoke
	$(GO) run -race ./cmd/mscope live --scenario dbio --out /tmp/mscope-live-smoke \
		--speed 8 --expect-alert

# One-command reproduction of the whole evaluation (ASCII figures).
experiment:
	$(GO) run ./cmd/mscope experiment --out /tmp/mscope-exp

clean:
	rm -rf /tmp/mscope-exp /tmp/mscope-chaos
