# milliScope reproduction — common targets.

GO ?= go

.PHONY: all build vet test test-short race bench cover experiment clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Full suite, including the 45s soak trial and saturation sweep.
test:
	$(GO) test ./...

# Skips the soak and saturation tests.
test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./...

# Regenerates every paper figure and ablation; writes bench_output.txt.
bench:
	$(GO) test -bench=. -benchmem ./... 2>&1 | tee bench_output.txt

cover:
	$(GO) test -short -cover ./...

# One-command reproduction of the whole evaluation (ASCII figures).
experiment:
	$(GO) run ./cmd/mscope experiment --out /tmp/mscope-exp

clean:
	rm -rf /tmp/mscope-exp
