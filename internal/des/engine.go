// Package des implements a deterministic discrete-event simulation kernel:
// a virtual clock, an event queue ordered by (time, schedule sequence), and
// capacity-limited FIFO resources with utilization accounting.
//
// All of milliScope's substrates (the n-tier testbed, resource monitors,
// bottleneck injectors) are driven by one Engine. Virtual time is expressed
// as a time.Duration offset from an arbitrary epoch; log writers convert it
// to wall-clock form with a fixed base timestamp so that runs are
// reproducible byte-for-byte.
package des

import (
	"container/heap"
	"fmt"
	"math"
	"time"
)

// Time is a virtual timestamp: the offset from the simulation epoch.
type Time = time.Duration

// Infinity is a sentinel virtual time later than any schedulable event.
const Infinity Time = math.MaxInt64

// Handle identifies a scheduled event and allows cancelling it before it
// fires. The zero value is invalid; handles are produced by Engine.At and
// Engine.After.
type Handle struct {
	ev *event
}

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled event is a no-op. Cancel reports whether the event was
// still pending.
func (h *Handle) Cancel() bool {
	if h == nil || h.ev == nil || h.ev.fn == nil {
		return false
	}
	h.ev.fn = nil
	return true
}

type event struct {
	at  Time
	seq uint64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) {
	ev, ok := x.(*event)
	if !ok {
		panic(fmt.Sprintf("des: pushed non-event %T", x))
	}
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Engine is the simulation kernel. It is not safe for concurrent use: a
// simulation runs on a single goroutine, which is what makes it
// deterministic.
type Engine struct {
	now     Time
	seq     uint64
	pending eventHeap
	fired   uint64
}

// NewEngine returns an engine with the clock at zero and no pending events.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Fired returns the number of events executed so far; useful for
// benchmarking kernel throughput.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of events still queued (including cancelled
// events not yet reaped).
func (e *Engine) Pending() int { return len(e.pending) }

// At schedules fn to run at virtual time t. Scheduling in the past (t <
// Now) is a programming error and panics, because silently reordering
// causality would corrupt every downstream measurement.
func (e *Engine) At(t Time, fn func()) *Handle {
	if fn == nil {
		panic("des: At called with nil fn")
	}
	if t < e.now {
		panic(fmt.Sprintf("des: event scheduled in the past: at=%v now=%v", t, e.now))
	}
	ev := &event{at: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.pending, ev)
	return &Handle{ev: ev}
}

// After schedules fn to run d after the current time. Negative d panics.
func (e *Engine) After(d time.Duration, fn func()) *Handle {
	if d < 0 {
		panic(fmt.Sprintf("des: After called with negative delay %v", d))
	}
	return e.At(e.now+d, fn)
}

// Step fires the single earliest pending event, advancing the clock to its
// timestamp. It reports false when no events remain.
func (e *Engine) Step() bool {
	for len(e.pending) > 0 {
		evAny := heap.Pop(&e.pending)
		ev, ok := evAny.(*event)
		if !ok {
			panic(fmt.Sprintf("des: heap returned non-event %T", evAny))
		}
		if ev.fn == nil { // cancelled
			continue
		}
		e.now = ev.at
		fn := ev.fn
		ev.fn = nil
		e.fired++
		fn()
		return true
	}
	return false
}

// Run fires events until the queue is empty.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil fires events with timestamps <= deadline, then advances the
// clock to exactly deadline. Events scheduled beyond the deadline remain
// pending and can be resumed by a later RunUntil.
func (e *Engine) RunUntil(deadline Time) {
	for {
		next, ok := e.peek()
		if !ok || next > deadline {
			break
		}
		e.Step()
	}
	if deadline > e.now {
		e.now = deadline
	}
}

// peek returns the timestamp of the earliest live event.
func (e *Engine) peek() (Time, bool) {
	for len(e.pending) > 0 {
		if e.pending[0].fn == nil {
			evAny := heap.Pop(&e.pending)
			if _, ok := evAny.(*event); !ok {
				panic("des: heap returned non-event")
			}
			continue
		}
		return e.pending[0].at, true
	}
	return 0, false
}

// NextEventAt exposes the earliest live event time, or (Infinity, false)
// when the queue is empty. Samplers use it to decide whether further
// activity remains.
func (e *Engine) NextEventAt() (Time, bool) {
	t, ok := e.peek()
	if !ok {
		return Infinity, false
	}
	return t, true
}

// Every invokes fn at t0, t0+period, t0+2*period, ... until stop returns
// true (checked after each invocation). It returns a handle to the first
// scheduled tick; cancelling it stops the series if the first tick has not
// fired yet. Periodic drivers such as resource samplers use it.
func (e *Engine) Every(t0 Time, period time.Duration, fn func(now Time) (stop bool)) *Handle {
	if period <= 0 {
		panic(fmt.Sprintf("des: Every called with non-positive period %v", period))
	}
	var tick func()
	at := t0
	tick = func() {
		if fn(e.now) {
			return
		}
		at += period
		e.At(at, tick)
	}
	return e.At(t0, tick)
}
