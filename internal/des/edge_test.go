package des

import (
	"testing"
	"time"
)

func expectPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s did not panic", what)
		}
	}()
	fn()
}

func TestEngineNilFnPanics(t *testing.T) {
	e := NewEngine()
	expectPanic(t, "At(nil)", func() { e.At(10, nil) })
}

func TestEngineNegativeAfterPanics(t *testing.T) {
	e := NewEngine()
	expectPanic(t, "After(-1)", func() { e.After(-time.Nanosecond, func() {}) })
}

func TestEveryNonPositivePeriodPanics(t *testing.T) {
	e := NewEngine()
	expectPanic(t, "Every(period=0)", func() { e.Every(0, 0, func(Time) bool { return true }) })
}

func TestResourceZeroCapacityPanics(t *testing.T) {
	e := NewEngine()
	expectPanic(t, "NewResource(cap=0)", func() { NewResource(e, "x", 0) })
}

func TestResourceNilAcquirePanics(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "x", 1)
	expectPanic(t, "Acquire(nil)", func() { r.Acquire(nil) })
}

func TestResourceNegativeUsePanics(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "x", 1)
	expectPanic(t, "Use(-1)", func() { r.Use(-1, nil) })
}

func TestCancelNilHandle(t *testing.T) {
	var h *Handle
	if h.Cancel() {
		t.Fatal("nil handle cancel reported true")
	}
}

func TestFiredCounter(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 5; i++ {
		e.At(Time(i), func() {})
	}
	h := e.At(10, func() {})
	h.Cancel()
	e.Run()
	if e.Fired() != 5 {
		t.Fatalf("fired %d, want 5 (cancelled events do not count)", e.Fired())
	}
	if e.Pending() != 0 {
		t.Fatalf("pending %d after run", e.Pending())
	}
}

func TestEventsScheduledDuringRun(t *testing.T) {
	e := NewEngine()
	var order []int
	e.At(10, func() {
		order = append(order, 1)
		e.At(10, func() { order = append(order, 2) }) // same timestamp, later seq
		e.After(5, func() { order = append(order, 3) })
	})
	e.At(12, func() { order = append(order, 4) })
	e.Run()
	want := []int{1, 2, 4, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order %v, want %v", order, want)
		}
	}
}

func TestWaitTokenNilCancel(t *testing.T) {
	var tok *WaitToken
	if tok.Cancel() {
		t.Fatal("nil token cancel reported true")
	}
}

func TestPeakQueueTracking(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "x", 1)
	r.Acquire(func() {})
	for i := 0; i < 7; i++ {
		r.Acquire(func() {})
	}
	if r.PeakQueue() != 7 {
		t.Fatalf("peak queue %d, want 7", r.PeakQueue())
	}
	if r.Grants() != 1 {
		t.Fatalf("grants %d, want 1", r.Grants())
	}
}
