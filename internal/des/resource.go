package des

import "fmt"

// Resource is a capacity-k server with a FIFO wait queue, the building
// block for worker-thread pools, CPU cores, and disks. Acquire either
// grants a unit immediately or queues the requester; Release hands the unit
// to the head waiter.
//
// Resource integrates busy units over virtual time so that utilization can
// be read out at any instant, which is what the simulated SAR/iostat/
// collectl monitors report.
type Resource struct {
	eng  *Engine
	name string
	cap  int

	inUse   int
	waiters []*waiter

	// Utilization accounting.
	lastChange Time
	busyInt    float64 // integral of inUse over time, in unit-nanoseconds
	waitInt    float64 // integral of len(waiters) over time
	grants     uint64
	peakQueue  int
}

type waiter struct {
	fn        func()
	cancelled bool
	enqueued  Time
}

// WaitToken allows a queued Acquire to be abandoned (e.g. request timeout).
type WaitToken struct {
	w *waiter
}

// Cancel removes the waiter from the queue; it reports whether the waiter
// had not yet been granted the resource.
func (t *WaitToken) Cancel() bool {
	if t == nil || t.w == nil || t.w.cancelled || t.w.fn == nil {
		return false
	}
	t.w.cancelled = true
	t.w.fn = nil
	return true
}

// NewResource returns a resource with the given capacity (> 0). The name
// appears in panics and diagnostics.
func NewResource(eng *Engine, name string, capacity int) *Resource {
	if capacity <= 0 {
		panic(fmt.Sprintf("des: resource %q with non-positive capacity %d", name, capacity))
	}
	return &Resource{eng: eng, name: name, cap: capacity}
}

// Name returns the diagnostic name.
func (r *Resource) Name() string { return r.name }

// Cap returns the configured capacity.
func (r *Resource) Cap() int { return r.cap }

// InUse returns the number of units currently held.
func (r *Resource) InUse() int { return r.inUse }

// QueueLen returns the number of waiters not yet granted.
func (r *Resource) QueueLen() int {
	n := 0
	for _, w := range r.waiters {
		if !w.cancelled {
			n++
		}
	}
	return n
}

// PeakQueue returns the maximum observed wait-queue length.
func (r *Resource) PeakQueue() int { return r.peakQueue }

// Grants returns the number of successful acquisitions so far.
func (r *Resource) Grants() uint64 { return r.grants }

func (r *Resource) account() {
	now := r.eng.Now()
	dt := float64(now - r.lastChange)
	if dt > 0 {
		r.busyInt += dt * float64(r.inUse)
		r.waitInt += dt * float64(r.QueueLen())
	}
	r.lastChange = now
}

// Acquire requests one unit. If a unit is free it is granted synchronously
// (fn runs before Acquire returns); otherwise the request queues and fn
// runs when a unit is released to it. The returned token is nil when the
// grant was immediate.
func (r *Resource) Acquire(fn func()) *WaitToken {
	if fn == nil {
		panic(fmt.Sprintf("des: resource %q Acquire with nil fn", r.name))
	}
	r.account()
	if r.inUse < r.cap {
		r.inUse++
		r.grants++
		fn()
		return nil
	}
	w := &waiter{fn: fn, enqueued: r.eng.Now()}
	r.waiters = append(r.waiters, w)
	if q := r.QueueLen(); q > r.peakQueue {
		r.peakQueue = q
	}
	return &WaitToken{w: w}
}

// Release returns one unit. If waiters are queued, the head waiter is
// granted the unit at the current instant.
func (r *Resource) Release() {
	r.account()
	if r.inUse <= 0 {
		panic(fmt.Sprintf("des: resource %q released below zero", r.name))
	}
	// Pop cancelled waiters.
	for len(r.waiters) > 0 && r.waiters[0].cancelled {
		r.waiters = r.waiters[1:]
	}
	if len(r.waiters) == 0 {
		r.inUse--
		return
	}
	w := r.waiters[0]
	r.waiters = r.waiters[1:]
	r.grants++
	fn := w.fn
	w.fn = nil
	fn()
}

// Use acquires a unit, holds it for hold, releases it, and then calls done
// (which may be nil). It is the common "seize-delay-release" pattern.
func (r *Resource) Use(hold Time, done func()) *WaitToken {
	if hold < 0 {
		panic(fmt.Sprintf("des: resource %q Use with negative hold %v", r.name, hold))
	}
	return r.Acquire(func() {
		r.eng.After(hold, func() {
			r.Release()
			if done != nil {
				done()
			}
		})
	})
}

// Utilization returns the mean fraction of capacity busy over [since, now],
// where since is the time of the previous snapshot (callers track it).
// BusyIntegral supplies the raw integral; this convenience computes the
// whole-run utilization from time zero.
func (r *Resource) Utilization() float64 {
	r.account()
	total := float64(r.eng.Now())
	if total <= 0 {
		return 0
	}
	return r.busyInt / (total * float64(r.cap))
}

// BusyIntegral returns the integral of busy units over virtual time in
// unit-nanoseconds, updated to the current instant. Samplers difference
// successive readings to produce interval utilization.
func (r *Resource) BusyIntegral() float64 {
	r.account()
	return r.busyInt
}

// WaitIntegral returns the integral of queue length over virtual time.
func (r *Resource) WaitIntegral() float64 {
	r.account()
	return r.waitInt
}
