package des

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestEngineFiresInTimeOrder(t *testing.T) {
	e := NewEngine()
	var got []Time
	for _, at := range []Time{30, 10, 20, 10, 5} {
		at := at
		e.At(at, func() { got = append(got, e.Now()) })
	}
	e.Run()
	want := []Time{5, 10, 10, 20, 30}
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d fired at %v, want %v (order %v)", i, got[i], want[i], got)
		}
	}
}

func TestEngineFIFOAtSameTimestamp(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(100, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-timestamp events fired out of schedule order: %v", order)
		}
	}
}

func TestEnginePanicsOnPastEvent(t *testing.T) {
	e := NewEngine()
	e.At(50, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	e.At(10, func() {})
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	h := e.At(10, func() { fired = true })
	if !h.Cancel() {
		t.Fatal("first Cancel reported false")
	}
	if h.Cancel() {
		t.Fatal("second Cancel reported true")
	}
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	var fired []Time
	for _, at := range []Time{10, 20, 30, 40} {
		e.At(at, func() { fired = append(fired, e.Now()) })
	}
	e.RunUntil(25)
	if len(fired) != 2 {
		t.Fatalf("RunUntil(25) fired %d events, want 2", len(fired))
	}
	if e.Now() != 25 {
		t.Fatalf("clock at %v after RunUntil(25)", e.Now())
	}
	e.RunUntil(100)
	if len(fired) != 4 {
		t.Fatalf("resumed RunUntil fired %d total, want 4", len(fired))
	}
	if e.Now() != 100 {
		t.Fatalf("clock at %v after RunUntil(100)", e.Now())
	}
}

func TestEngineAfterChainsRelativeDelays(t *testing.T) {
	e := NewEngine()
	var at Time
	e.After(10, func() {
		e.After(15, func() { at = e.Now() })
	})
	e.Run()
	if at != 25 {
		t.Fatalf("chained After landed at %v, want 25", at)
	}
}

func TestEngineEvery(t *testing.T) {
	e := NewEngine()
	var ticks []Time
	e.Every(5, 10, func(now Time) bool {
		ticks = append(ticks, now)
		return len(ticks) >= 4
	})
	e.Run()
	want := []Time{5, 15, 25, 35}
	if len(ticks) != len(want) {
		t.Fatalf("got %d ticks, want %d", len(ticks), len(want))
	}
	for i := range want {
		if ticks[i] != want[i] {
			t.Fatalf("tick %d at %v, want %v", i, ticks[i], want[i])
		}
	}
}

func TestEngineNextEventAt(t *testing.T) {
	e := NewEngine()
	if _, ok := e.NextEventAt(); ok {
		t.Fatal("empty engine reported a next event")
	}
	h := e.At(42, func() {})
	if at, ok := e.NextEventAt(); !ok || at != 42 {
		t.Fatalf("NextEventAt = (%v,%v), want (42,true)", at, ok)
	}
	h.Cancel()
	if _, ok := e.NextEventAt(); ok {
		t.Fatal("cancelled event still reported as next")
	}
}

// Property: for any set of (time, id) pairs, the engine fires them in a
// stable sort order by time.
func TestEngineOrderingProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		if len(delays) == 0 {
			return true
		}
		e := NewEngine()
		type rec struct {
			at  Time
			seq int
		}
		var fired []rec
		for i, d := range delays {
			i, at := i, Time(d)
			e.At(at, func() { fired = append(fired, rec{at: at, seq: i}) })
		}
		e.Run()
		if len(fired) != len(delays) {
			return false
		}
		want := make([]rec, len(fired))
		for i, d := range delays {
			want[i] = rec{at: Time(d), seq: i}
		}
		sort.SliceStable(want, func(i, j int) bool { return want[i].at < want[j].at })
		for i := range want {
			if fired[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestResourceImmediateGrant(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "cpu", 2)
	granted := 0
	if tok := r.Acquire(func() { granted++ }); tok != nil {
		t.Fatal("immediate grant returned a wait token")
	}
	if tok := r.Acquire(func() { granted++ }); tok != nil {
		t.Fatal("second immediate grant returned a wait token")
	}
	if granted != 2 || r.InUse() != 2 {
		t.Fatalf("granted=%d inUse=%d, want 2,2", granted, r.InUse())
	}
	tok := r.Acquire(func() { granted++ })
	if tok == nil {
		t.Fatal("acquire beyond capacity did not queue")
	}
	if r.QueueLen() != 1 {
		t.Fatalf("queue length %d, want 1", r.QueueLen())
	}
	r.Release()
	if granted != 3 {
		t.Fatalf("release did not grant waiter; granted=%d", granted)
	}
	if r.InUse() != 2 {
		t.Fatalf("inUse=%d after handoff, want 2", r.InUse())
	}
}

func TestResourceFIFO(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "disk", 1)
	r.Acquire(func() {})
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		r.Acquire(func() { order = append(order, i) })
	}
	for i := 0; i < 6; i++ {
		r.Release()
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("waiters granted out of FIFO order: %v", order)
		}
	}
	if r.InUse() != 0 {
		t.Fatalf("inUse=%d after all releases", r.InUse())
	}
}

func TestResourceCancelWaiter(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "pool", 1)
	r.Acquire(func() {})
	cancelledRan := false
	tok1 := r.Acquire(func() { cancelledRan = true })
	secondRan := false
	r.Acquire(func() { secondRan = true })
	if !tok1.Cancel() {
		t.Fatal("cancel of queued waiter reported false")
	}
	if tok1.Cancel() {
		t.Fatal("double cancel reported true")
	}
	r.Release()
	if cancelledRan {
		t.Fatal("cancelled waiter ran")
	}
	if !secondRan {
		t.Fatal("release skipped live waiter after cancelled one")
	}
}

func TestResourceUseHoldsForDuration(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "cpu", 1)
	var doneAt Time
	r.Use(100, func() { doneAt = e.Now() })
	var secondAt Time
	r.Use(50, func() { secondAt = e.Now() })
	e.Run()
	if doneAt != 100 {
		t.Fatalf("first Use completed at %v, want 100", doneAt)
	}
	if secondAt != 150 {
		t.Fatalf("queued Use completed at %v, want 150", secondAt)
	}
}

func TestResourceUtilization(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "disk", 1)
	r.Use(250, nil)
	e.At(1000, func() {}) // extend run to t=1000
	e.Run()
	got := r.Utilization()
	if got < 0.249 || got > 0.251 {
		t.Fatalf("utilization %v, want 0.25", got)
	}
}

func TestResourceReleaseBelowZeroPanics(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "x", 1)
	defer func() {
		if recover() == nil {
			t.Fatal("release below zero did not panic")
		}
	}()
	r.Release()
}

// Property: under random Use workloads, a capacity-k resource never has
// more than k units in use, grants equal completions, and the busy
// integral is at most k * elapsed.
func TestResourceInvariantsProperty(t *testing.T) {
	f := func(seed int64, capRaw uint8, nRaw uint8) bool {
		capacity := int(capRaw%4) + 1
		n := int(nRaw%40) + 1
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()
		r := NewResource(e, "p", capacity)
		completions := 0
		ok := true
		for i := 0; i < n; i++ {
			at := Time(rng.Intn(1000))
			hold := Time(rng.Intn(200))
			e.At(at, func() {
				r.Use(hold, func() { completions++ })
				if r.InUse() > capacity {
					ok = false
				}
			})
		}
		e.Run()
		if completions != n {
			return false
		}
		if r.InUse() != 0 || r.QueueLen() != 0 {
			return false
		}
		if r.BusyIntegral() > float64(capacity)*float64(e.Now())+1e-6 {
			return false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEngineScheduleFire(b *testing.B) {
	e := NewEngine()
	var tick func()
	n := 0
	tick = func() {
		n++
		if n < b.N {
			e.After(time.Microsecond, tick)
		}
	}
	e.After(time.Microsecond, tick)
	b.ResetTimer()
	e.Run()
}

func BenchmarkResourceContention(b *testing.B) {
	e := NewEngine()
	r := NewResource(e, "cpu", 4)
	for i := 0; i < b.N; i++ {
		e.At(Time(i), func() { r.Use(10, nil) })
	}
	b.ResetTimer()
	e.Run()
}
