package selfobs

import (
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

var testCounter = NewCounter(PipeLive, "watermark", "rows_advanced")

// The acceptance bar: with no collector installed, the whole API must add
// zero allocations per record.
func TestDisabledZeroAlloc(t *testing.T) {
	Disable()
	if n := testing.AllocsPerRun(1000, func() {
		b := NewBuf()
		s := b.Begin(PipeIngest, "chunkparse", Shard(3), "app_event.log")
		s.End(100, 0)
		b.Close()
	}); n != 0 {
		t.Errorf("disabled Buf path allocates %v per run, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() {
		s := Begin(PipeIngest, "append", "-", "app_event.log")
		s.End(1, 0)
	}); n != 0 {
		t.Errorf("disabled Begin/End allocates %v per run, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() {
		testCounter.Add(5)
	}); n != 0 {
		t.Errorf("disabled Counter.Add allocates %v per run, want 0", n)
	}
}

func TestEnableDisableRoundTrip(t *testing.T) {
	epoch := time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)
	c := Enable("b1", epoch)
	defer Disable()
	if !Enabled() {
		t.Fatal("Enabled() = false after Enable")
	}
	s := Begin(PipeDiagnose, "vlrt", "-", "")
	s.End(7, 1)
	b := NewBuf()
	b.Begin(PipeIngest, "parse", Shard(0), "web_event.log").End(42, 0)
	b.Close()
	testCounter.Add(9)

	if got := Disable(); got != c {
		t.Fatalf("Disable returned %p, want %p", got, c)
	}
	var sb strings.Builder
	n, err := c.WriteLog(&sb)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("wrote %d lines, want 3 (2 spans + 1 counter):\n%s", n, sb.String())
	}
	out := sb.String()
	for _, want := range []string{
		"mscope-self kind=span batch=b1 pipeline=diagnose stage=vlrt span=- file=- ",
		"items=7 errs=1",
		"kind=span batch=b1 pipeline=ingest stage=parse span=s0 file=web_event.log",
		"kind=counter batch=b1 pipeline=live stage=watermark span=rows_advanced file=- dur_us=0 items=9 errs=0",
		"2026-01-02T03:04:05.",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("log missing %q:\n%s", want, out)
		}
	}
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if got := len(strings.Fields(line)); got != 11 {
			t.Errorf("line has %d tokens, want 11: %q", got, line)
		}
	}
}

func TestCountersResetOnEnable(t *testing.T) {
	Enable("warm", time.Unix(0, 0).UTC())
	testCounter.Add(100)
	Disable()
	c := Enable("fresh", time.Unix(0, 0).UTC())
	defer Disable()
	snap := c.Snapshot()
	if len(snap) != 0 {
		t.Fatalf("fresh session inherited %d records: %v", len(snap), snap)
	}
}

func TestTokenSanitizes(t *testing.T) {
	cases := map[string]string{
		"":             "-",
		"plain":        "plain",
		"two words":    "two_words",
		"tab\tand\nnl": "tab_and_nl",
		"s0":           "s0",
	}
	for in, want := range cases {
		if got := token(in); got != want {
			t.Errorf("token(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestShardLabels(t *testing.T) {
	if Shard(0) != "s0" || Shard(9) != "s9" || Shard(10) != "s10" || Shard(63) != "s63" {
		t.Errorf("small labels wrong: %q %q %q %q", Shard(0), Shard(9), Shard(10), Shard(63))
	}
	if Shard(64) != "s+" || Shard(-1) != "s+" {
		t.Errorf("out-of-range labels wrong: %q %q", Shard(64), Shard(-1))
	}
}

// Hammer concurrent emission from many goroutines mixing Bufs, one-shot
// spans, and counters; meant to run under -race (race-short does).
func TestConcurrentEmissionHammer(t *testing.T) {
	const goroutines = 16
	const spansEach = 200
	c := Enable("hammer", time.Unix(0, 0).UTC())
	defer Disable()
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			b := NewBuf()
			for i := 0; i < spansEach; i++ {
				s := b.Begin(PipeIngest, "chunkparse", Shard(g), "hammer.log")
				s.End(int64(i), 0)
				testCounter.Add(1)
			}
			b.Close()
			Begin(PipeIngest, "stitch", Shard(g), "hammer.log").End(1, 0)
		}(g)
	}
	wg.Wait()
	wantSpans := goroutines*spansEach + goroutines
	if got := c.Len(); got != wantSpans {
		t.Fatalf("collector holds %d spans, want %d", got, wantSpans)
	}
	var sb strings.Builder
	n, err := c.WriteLog(&sb)
	if err != nil {
		t.Fatal(err)
	}
	if n != wantSpans+1 { // +1 for the counter snapshot line
		t.Fatalf("wrote %d lines, want %d", n, wantSpans+1)
	}
	if !strings.Contains(sb.String(), "items="+strconv.Itoa(goroutines*spansEach)) {
		t.Errorf("counter line missing value %d", goroutines*spansEach)
	}
}

// Durations must be non-negative even across wall-clock jumps: they come
// from the monotonic clock.
func TestSpanDurationMonotonic(t *testing.T) {
	c := Enable("mono", time.Unix(0, 0).UTC())
	defer Disable()
	s := Begin(PipeTrace, "render", "-", "")
	time.Sleep(time.Millisecond)
	s.End(0, 0)
	recs := c.Snapshot()
	if len(recs) != 1 {
		t.Fatalf("got %d recs, want 1", len(recs))
	}
	if recs[0].DurNS < int64(time.Millisecond) {
		t.Errorf("DurNS = %d, want >= 1ms", recs[0].DurNS)
	}
	if recs[0].StartNS < 0 {
		t.Errorf("StartNS = %d, want >= 0", recs[0].StartNS)
	}
}
