package selfobs

import (
	"bufio"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"
)

// TimeLayout is the fixed-width wall-clock layout of self-telemetry
// timestamps: RFC 3339 with exactly nine fractional digits, UTC. The
// fixed width keeps the log byte-stable for golden tests and lets the
// registered "selftrace" parser use the stock RFC3339Nano time rule.
const TimeLayout = "2006-01-02T15:04:05.000000000Z07:00"

// FormatLine renders one record as a milliScope-native timestamped token
// line:
//
//	<ts> mscope-self kind=<span|counter> batch=<id> pipeline=<p> stage=<s> span=<label> file=<name|-> dur_us=<n> items=<n> errs=<n>
//
// ts is epoch+StartNS in TimeLayout (UTC); dur_us is DurNS rounded down
// to microseconds, the warehouse's native resolution. Empty Span/File
// fields render as "-", and embedded whitespace is squashed to "_" so
// every line stays a single space-separated token sequence.
func FormatLine(epoch time.Time, batch string, r Rec) string {
	var b strings.Builder
	b.Grow(160)
	b.WriteString(epoch.Add(time.Duration(r.StartNS)).UTC().Format(TimeLayout))
	b.WriteString(" mscope-self kind=")
	b.WriteString(token(r.Kind))
	b.WriteString(" batch=")
	b.WriteString(token(batch))
	b.WriteString(" pipeline=")
	b.WriteString(token(r.Pipeline))
	b.WriteString(" stage=")
	b.WriteString(token(r.Stage))
	b.WriteString(" span=")
	b.WriteString(token(r.Span))
	b.WriteString(" file=")
	b.WriteString(token(r.File))
	b.WriteString(" dur_us=")
	b.WriteString(strconv.FormatInt(r.DurNS/1e3, 10))
	b.WriteString(" items=")
	b.WriteString(strconv.FormatInt(r.Items, 10))
	b.WriteString(" errs=")
	b.WriteString(strconv.FormatInt(r.Errs, 10))
	return b.String()
}

// token sanitizes a field value into a single log token.
func token(s string) string {
	if s == "" {
		return "-"
	}
	if strings.IndexFunc(s, func(r rune) bool { return r == ' ' || r == '\t' || r == '\n' || r == '\r' }) < 0 {
		return s
	}
	return strings.Map(func(r rune) rune {
		switch r {
		case ' ', '\t', '\n', '\r':
			return '_'
		}
		return r
	}, s)
}

// Snapshot returns the collector's records — flushed spans plus a
// point-in-time snapshot of the non-zero counters — sorted by start time
// (ties broken lexically) so output is deterministic regardless of which
// worker flushed first.
func (c *Collector) Snapshot() []Rec {
	c.mu.Lock()
	recs := make([]Rec, len(c.recs))
	copy(recs, c.recs)
	c.mu.Unlock()
	recs = append(recs, c.snapshotCounters()...)
	sort.Slice(recs, func(i, j int) bool {
		a, b := recs[i], recs[j]
		if a.StartNS != b.StartNS {
			return a.StartNS < b.StartNS
		}
		if a.Pipeline != b.Pipeline {
			return a.Pipeline < b.Pipeline
		}
		if a.Stage != b.Stage {
			return a.Stage < b.Stage
		}
		if a.Span != b.Span {
			return a.Span < b.Span
		}
		return a.File < b.File
	})
	return recs
}

// WriteLog renders every gathered record to w in the self-telemetry log
// format and returns the number of lines written. Call after the
// instrumented work finishes (open Bufs flush on Close; spans still open
// are not written).
func (c *Collector) WriteLog(w io.Writer) (int, error) {
	bw := bufio.NewWriter(w)
	recs := c.Snapshot()
	for _, r := range recs {
		if _, err := bw.WriteString(FormatLine(c.epoch, c.batch, r)); err != nil {
			return 0, err
		}
		if err := bw.WriteByte('\n'); err != nil {
			return 0, err
		}
	}
	return len(recs), bw.Flush()
}
