// Package selfobs is milliScope's own instrumentation layer: a
// lock-cheap span and counter collector the framework threads through its
// ingest, streaming and diagnosis hot paths, applying the paper's central
// discipline — fine-grained monitoring at negligible overhead — to the
// monitor itself.
//
// Design constraints, in priority order:
//
//   - Disabled is free. Every entry point first loads one atomic pointer;
//     when no collector is installed the call returns a zero value and
//     allocates nothing (TestDisabledZeroAlloc pins this with
//     testing.AllocsPerRun, and `make overhead-check` gates the enabled
//     cost against the paper's own ≤3% bar).
//   - Enabled is lock-free on the hot path. Goroutines that emit many
//     spans own a Buf — a private record slice appended without any
//     synchronization — and hand it back to the collector once, when the
//     goroutine finishes. One-shot call sites use the package-level Begin,
//     which takes the collector mutex only at End.
//   - Timestamps are monotonic. Span durations come from the runtime's
//     monotonic clock (time.Since against the collector's anchor), so
//     wall-clock steps cannot produce negative spans.
//
// Spans are rendered as a milliScope-native timestamped token log (see
// FormatLine) with its own registered mScopeParser, so `mscope ingest`
// loads the framework's telemetry into mScopeDB like any other monitor
// log and `mscope selftrace` renders a critical-path breakdown from the
// warehouse rows.
package selfobs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Pipeline names used across the instrumented subsystems. Call sites pass
// these constants (never computed strings) so the disabled path stays
// allocation-free — cmd/selfobslint enforces it.
const (
	PipeIngest    = "ingest"
	PipeLive      = "live"
	PipeDiagnose  = "diagnose"
	PipeTrace     = "trace"
	PipeAgent     = "agent"
	PipeCollector = "collector"
)

// Rec is one self-telemetry record: a completed span or a counter
// snapshot. StartNS is monotonic nanoseconds since the collector was
// enabled; the wall timestamp is reconstructed from the collector epoch
// at render time.
type Rec struct {
	// Kind is "span" or "counter".
	Kind string
	// Pipeline is the instrumented subsystem (PipeIngest, PipeLive, ...).
	Pipeline string
	// Stage is the pipeline stage ("chunkparse", "append", "detect", ...).
	Stage string
	// Span labels the executor: a worker ("w3"), shard ("s2"), source, or
	// counter name. Never empty in rendered output ("-" placeholder).
	Span string
	// File is the subject file's base name, when the span has one.
	File string
	// StartNS is the span start, monotonic ns since Enable.
	StartNS int64
	// DurNS is the span duration in ns (0 for counters).
	DurNS int64
	// Items counts the units processed (records, bytes, windows; the
	// counter value for Kind "counter").
	Items int64
	// Errs counts failures or quarantined units inside the span.
	Errs int64
}

// Collector accumulates records for one enabled session.
type Collector struct {
	batch string
	epoch time.Time // wall-clock zero for rendered timestamps
	base  time.Time // monotonic anchor for StartNS / DurNS

	mu    sync.Mutex
	recs  []Rec
	spans int
}

// active is the installed collector; nil means disabled. One atomic load
// is the entire disabled-path cost of every API entry point.
var active atomic.Pointer[Collector]

// Enable installs a fresh collector and returns it. batch labels every
// record of the session (it becomes the `batch=` token in the log, the
// grouping key of `mscope selftrace`); epoch is the wall-clock zero
// rendered timestamps count from — pass time.Now() in production, a fixed
// epoch in deterministic tests. Counters reset to zero.
func Enable(batch string, epoch time.Time) *Collector {
	c := &Collector{batch: batch, epoch: epoch, base: time.Now()}
	resetCounters()
	active.Store(c)
	return c
}

// Disable uninstalls the collector and returns it (nil when none was
// installed) so the caller can still WriteLog the gathered records.
func Disable() *Collector {
	c := active.Load()
	active.Store(nil)
	return c
}

// NewCollector builds a standalone collector that is NOT installed as
// the process-global one. Subsystems that need their telemetry
// attributed to a specific node — several agents and a collector
// sharing one test process, say — hold their own instance and open
// spans with the collector-bound Begin. Counters stay global and are
// not reset.
func NewCollector(batch string, epoch time.Time) *Collector {
	return &Collector{batch: batch, epoch: epoch, base: time.Now()}
}

// Begin opens a one-shot span on this collector, bypassing the global
// gate. A nil receiver returns the inert zero Span, so call sites can
// hold a nil *Collector when their telemetry is off.
func (c *Collector) Begin(pipeline, stage, span, file string) Span {
	if c == nil {
		return Span{}
	}
	return Span{c: c, started: true, rec: Rec{
		Kind: "span", Pipeline: pipeline, Stage: stage, Span: span,
		File: file, StartNS: c.now(),
	}}
}

// Enabled reports whether a collector is installed.
func Enabled() bool { return active.Load() != nil }

// Batch returns the session label given to Enable.
func (c *Collector) Batch() string { return c.batch }

// now returns monotonic ns since Enable.
func (c *Collector) now() int64 { return int64(time.Since(c.base)) }

// record appends one finished record under the collector mutex.
func (c *Collector) record(r Rec) {
	c.mu.Lock()
	c.recs = append(c.recs, r)
	c.spans++
	c.mu.Unlock()
}

// Len returns the number of records flushed to the collector so far.
// Records still held by open Bufs are not counted until Buf.Close.
func (c *Collector) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.recs)
}

// Span is an open span. The zero Span (returned by every Begin while
// disabled) is inert: End on it does nothing. Span is a value — it lives
// on the caller's stack and allocates nothing.
type Span struct {
	c       *Collector
	b       *Buf
	rec     Rec
	started bool
}

// Begin opens a one-shot span recorded directly on the collector; End
// takes the collector mutex once. Use a Buf instead on paths that emit
// many spans per goroutine.
func Begin(pipeline, stage, span, file string) Span {
	c := active.Load()
	if c == nil {
		return Span{}
	}
	return Span{c: c, started: true, rec: Rec{
		Kind: "span", Pipeline: pipeline, Stage: stage, Span: span,
		File: file, StartNS: c.now(),
	}}
}

// End closes the span with the units it processed and the failures it
// absorbed. No-op on the zero Span.
func (s Span) End(items, errs int64) {
	if !s.started {
		return
	}
	s.rec.DurNS = s.c.now() - s.rec.StartNS
	s.rec.Items = items
	s.rec.Errs = errs
	if s.b != nil {
		s.b.recs = append(s.b.recs, s.rec)
		return
	}
	s.c.record(s.rec)
}

// Buf is a per-goroutine span buffer: Begin/End append to a private
// slice with no synchronization; Close hands the batch to the collector
// under one mutex acquisition. A nil *Buf (what NewBuf returns while
// disabled) is inert — every method is a no-op — so call sites need no
// enabled check of their own.
type Buf struct {
	c    *Collector
	recs []Rec
}

// NewBuf returns a buffer bound to the active collector, or nil while
// disabled. The returned Buf must stay goroutine-local until Close.
func NewBuf() *Buf {
	c := active.Load()
	if c == nil {
		return nil
	}
	return &Buf{c: c}
}

// Begin opens a span that will be recorded into this buffer at End.
func (b *Buf) Begin(pipeline, stage, span, file string) Span {
	if b == nil {
		return Span{}
	}
	return Span{c: b.c, b: b, started: true, rec: Rec{
		Kind: "span", Pipeline: pipeline, Stage: stage, Span: span,
		File: file, StartNS: b.c.now(),
	}}
}

// Close flushes the buffer into the collector. Safe to call on nil and
// more than once; records flush at most once.
func (b *Buf) Close() {
	if b == nil || len(b.recs) == 0 {
		return
	}
	b.c.mu.Lock()
	b.c.recs = append(b.c.recs, b.recs...)
	b.c.spans += len(b.recs)
	b.c.mu.Unlock()
	b.recs = nil
}

// Counter is a process-global atomic counter registered once at package
// init. Add is a single atomic load plus (when enabled) one atomic add —
// cheap enough for per-record call sites the span layer would swamp.
// Enable resets every registered counter so each session's log carries
// session-local values.
type Counter struct {
	pipeline, stage, name string
	v                     atomic.Int64
}

var (
	countersMu sync.Mutex
	counters   []*Counter
)

// NewCounter registers a counter under a pipeline and stage. Call it from
// package variable initializers, not hot paths.
func NewCounter(pipeline, stage, name string) *Counter {
	c := &Counter{pipeline: pipeline, stage: stage, name: name}
	countersMu.Lock()
	counters = append(counters, c)
	countersMu.Unlock()
	return c
}

// Add increments the counter when a collector is installed.
func (c *Counter) Add(n int64) {
	if active.Load() == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current counter value.
func (c *Counter) Value() int64 { return c.v.Load() }

func resetCounters() {
	countersMu.Lock()
	defer countersMu.Unlock()
	for _, c := range counters {
		c.v.Store(0)
	}
}

// snapshotCounters renders the non-zero registered counters as Recs
// stamped at the collector's current elapsed time.
func (c *Collector) snapshotCounters() []Rec {
	countersMu.Lock()
	defer countersMu.Unlock()
	now := c.now()
	var out []Rec
	for _, ctr := range counters {
		v := ctr.v.Load()
		if v == 0 {
			continue
		}
		out = append(out, Rec{
			Kind: "counter", Pipeline: ctr.pipeline, Stage: ctr.stage,
			Span: ctr.name, StartNS: now, Items: v,
		})
	}
	return out
}

// shardLabels pre-renders the small shard/worker labels the parallel
// ingest uses, so hot paths can label spans without formatting.
var shardLabels = func() [64]string {
	var a [64]string
	digits := "0123456789"
	for i := range a {
		if i < 10 {
			a[i] = "s" + digits[i:i+1]
		} else {
			a[i] = "s" + digits[i/10:i/10+1] + digits[i%10:i%10+1]
		}
	}
	return a
}()

// Shard returns a preallocated "s<i>" label for shard or worker i; large
// indexes collapse into "s+" rather than allocating.
func Shard(i int) string {
	if i >= 0 && i < len(shardLabels) {
		return shardLabels[i]
	}
	return "s+"
}
