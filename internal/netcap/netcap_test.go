package netcap

import (
	"path/filepath"
	"testing"

	"github.com/gt-elba/milliscope/internal/ntier"
)

func sample() []ntier.Message {
	return []ntier.Message{
		{Conn: "c1", Src: "client", Dst: "web", Kind: ntier.MsgRequest,
			SentAt: 10, RecvAt: 12, Bytes: 640, ReqSerial: 1},
		{Conn: "w1", Src: "web", Dst: "app", Kind: ntier.MsgRequest,
			SentAt: 15, RecvAt: 17, Bytes: 320, ReqSerial: 1},
		{Conn: "w1", Src: "app", Dst: "web", Kind: ntier.MsgResponse,
			SentAt: 30, RecvAt: 32, Bytes: 9000, ReqSerial: 1},
	}
}

func TestCaptureAccumulates(t *testing.T) {
	c := New()
	for _, m := range sample() {
		c.OnMessage(m)
	}
	if c.Len() != 3 {
		t.Fatalf("len %d", c.Len())
	}
	got := c.Messages()
	got[0].Conn = "mutated"
	if c.Messages()[0].Conn != "c1" {
		t.Fatal("Messages did not copy")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	c := New()
	for _, m := range sample() {
		c.OnMessage(m)
	}
	path := filepath.Join(t.TempDir(), "trace.csv")
	if err := c.WriteCSV(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(path)
	if err != nil {
		t.Fatal(err)
	}
	want := sample()
	if len(got) != len(want) {
		t.Fatalf("%d messages, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("message %d: %+v != %+v", i, got[i], want[i])
		}
	}
}

func TestReadCSVMissing(t *testing.T) {
	if _, err := ReadCSV(filepath.Join(t.TempDir(), "nope.csv")); err == nil {
		t.Fatal("missing file did not error")
	}
}
