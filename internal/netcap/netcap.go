// Package netcap is the software equivalent of the network taps feeding
// Fujitsu SysViz: it records every inter-tier message (connection, src,
// dst, wire send/receive times, size) with no request identifiers. The
// sysviz package reconstructs transactions from this capture alone.
package netcap

import (
	"bufio"
	"encoding/csv"
	"fmt"
	"os"
	"strconv"

	"github.com/gt-elba/milliscope/internal/des"
	"github.com/gt-elba/milliscope/internal/ntier"
)

// Capture accumulates tapped messages in arrival order.
type Capture struct {
	msgs []ntier.Message
}

var _ ntier.MessageObserver = (*Capture)(nil)

// New returns an empty capture; install it with System.SetCapture.
func New() *Capture { return &Capture{} }

// OnMessage records one tapped message.
func (c *Capture) OnMessage(m ntier.Message) { c.msgs = append(c.msgs, m) }

// Len returns the number of captured messages.
func (c *Capture) Len() int { return len(c.msgs) }

// Messages returns the capture in arrival order. The returned slice is a
// copy.
func (c *Capture) Messages() []ntier.Message {
	out := make([]ntier.Message, len(c.msgs))
	copy(out, c.msgs)
	return out
}

// csvHeader is the trace-file column layout.
var csvHeader = []string{"conn", "src", "dst", "kind", "sent_ns", "recv_ns", "bytes", "req_serial"}

// WriteCSV dumps the capture to a trace file for offline reconstruction.
func (c *Capture) WriteCSV(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("netcap: create %s: %w", path, err)
	}
	defer f.Close()
	bw := bufio.NewWriterSize(f, 1<<16)
	w := csv.NewWriter(bw)
	if err := w.Write(csvHeader); err != nil {
		return fmt.Errorf("netcap: write header: %w", err)
	}
	for _, m := range c.msgs {
		rec := []string{
			m.Conn, m.Src, m.Dst, m.Kind.String(),
			strconv.FormatInt(int64(m.SentAt), 10),
			strconv.FormatInt(int64(m.RecvAt), 10),
			strconv.Itoa(m.Bytes),
			strconv.FormatUint(m.ReqSerial, 10),
		}
		if err := w.Write(rec); err != nil {
			return fmt.Errorf("netcap: write record: %w", err)
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		return fmt.Errorf("netcap: flush csv: %w", err)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("netcap: flush: %w", err)
	}
	return nil
}

// ReadCSV loads a trace file written by WriteCSV.
func ReadCSV(path string) ([]ntier.Message, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("netcap: open %s: %w", path, err)
	}
	defer f.Close()
	r := csv.NewReader(bufio.NewReaderSize(f, 1<<16))
	rows, err := r.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("netcap: parse %s: %w", path, err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("netcap: %s: empty trace", path)
	}
	var msgs []ntier.Message
	for i, rec := range rows[1:] {
		if len(rec) != len(csvHeader) {
			return nil, fmt.Errorf("netcap: %s row %d: %d columns, want %d",
				path, i+2, len(rec), len(csvHeader))
		}
		var kind ntier.MsgKind
		switch rec[3] {
		case "REQ":
			kind = ntier.MsgRequest
		case "RSP":
			kind = ntier.MsgResponse
		default:
			return nil, fmt.Errorf("netcap: %s row %d: unknown kind %q", path, i+2, rec[3])
		}
		sent, err := strconv.ParseInt(rec[4], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("netcap: %s row %d: sent: %w", path, i+2, err)
		}
		recv, err := strconv.ParseInt(rec[5], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("netcap: %s row %d: recv: %w", path, i+2, err)
		}
		bytes, err := strconv.Atoi(rec[6])
		if err != nil {
			return nil, fmt.Errorf("netcap: %s row %d: bytes: %w", path, i+2, err)
		}
		serial, err := strconv.ParseUint(rec[7], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("netcap: %s row %d: serial: %w", path, i+2, err)
		}
		msgs = append(msgs, ntier.Message{
			Conn: rec[0], Src: rec[1], Dst: rec[2], Kind: kind,
			SentAt: des.Time(sent), RecvAt: des.Time(recv),
			Bytes: bytes, ReqSerial: serial,
		})
	}
	return msgs, nil
}
