package sysviz

import (
	"testing"
	"time"

	"github.com/gt-elba/milliscope/internal/des"
	"github.com/gt-elba/milliscope/internal/netcap"
	"github.com/gt-elba/milliscope/internal/ntier"
)

func msg(conn, src, dst string, kind ntier.MsgKind, sent, recv des.Time, serial uint64) ntier.Message {
	return ntier.Message{Conn: conn, Src: src, Dst: dst, Kind: kind,
		SentAt: sent, RecvAt: recv, Bytes: 100, ReqSerial: serial}
}

func TestMatchTransactionsSimple(t *testing.T) {
	msgs := []ntier.Message{
		msg("c1", "client", "web", ntier.MsgRequest, 10, 12, 1),
		msg("w1", "web", "app", ntier.MsgRequest, 15, 17, 1),
		msg("w1", "app", "web", ntier.MsgResponse, 30, 32, 1),
		msg("c1", "web", "client", ntier.MsgResponse, 40, 42, 1),
	}
	txns, err := MatchTransactions(msgs)
	if err != nil {
		t.Fatal(err)
	}
	if len(txns) != 2 {
		t.Fatalf("%d txns, want 2", len(txns))
	}
	web, app := txns[0], txns[1]
	if web.Server != "web" || web.Arrive != 12 || web.Depart != 40 {
		t.Fatalf("web txn wrong: %+v", web)
	}
	if app.Server != "app" || app.Arrive != 17 || app.Depart != 30 {
		t.Fatalf("app txn wrong: %+v", app)
	}
}

func TestMatchTransactionsFIFOPerConn(t *testing.T) {
	// Two back-to-back requests on one connection: responses match in order.
	msgs := []ntier.Message{
		msg("c1", "client", "web", ntier.MsgRequest, 10, 11, 1),
		msg("c1", "web", "client", ntier.MsgResponse, 20, 21, 1),
		msg("c1", "client", "web", ntier.MsgRequest, 30, 31, 2),
		msg("c1", "web", "client", ntier.MsgResponse, 44, 45, 2),
	}
	txns, err := MatchTransactions(msgs)
	if err != nil {
		t.Fatal(err)
	}
	if len(txns) != 2 {
		t.Fatalf("%d txns", len(txns))
	}
	if txns[0].Depart != 20 || txns[1].Depart != 44 {
		t.Fatalf("FIFO matching wrong: %+v %+v", txns[0], txns[1])
	}
}

func TestMatchTransactionsOrphanResponse(t *testing.T) {
	msgs := []ntier.Message{
		msg("c1", "web", "client", ntier.MsgResponse, 20, 21, 1),
	}
	if _, err := MatchTransactions(msgs); err == nil {
		t.Fatal("orphan response not rejected")
	}
}

func TestMatchTransactionsDropsInFlight(t *testing.T) {
	msgs := []ntier.Message{
		msg("c1", "client", "web", ntier.MsgRequest, 10, 11, 1),
	}
	txns, err := MatchTransactions(msgs)
	if err != nil {
		t.Fatal(err)
	}
	if len(txns) != 0 {
		t.Fatalf("in-flight request produced %d txns", len(txns))
	}
}

func TestBuildTracesNesting(t *testing.T) {
	msgs := []ntier.Message{
		msg("c1", "client", "web", ntier.MsgRequest, 10, 12, 1),
		msg("w1", "web", "app", ntier.MsgRequest, 15, 17, 1),
		msg("a1", "app", "db", ntier.MsgRequest, 20, 21, 1),
		msg("a1", "db", "app", ntier.MsgResponse, 25, 26, 1),
		msg("w1", "app", "web", ntier.MsgResponse, 30, 32, 1),
		msg("c1", "web", "client", ntier.MsgResponse, 40, 42, 1),
	}
	txns, err := MatchTransactions(msgs)
	if err != nil {
		t.Fatal(err)
	}
	roots := BuildTraces(txns)
	if len(roots) != 1 {
		t.Fatalf("%d roots, want 1", len(roots))
	}
	root := roots[0]
	if root.Server != "web" || len(root.Children) != 1 {
		t.Fatalf("root wrong: %+v", root)
	}
	app := root.Children[0]
	if app.Server != "app" || len(app.Children) != 1 || app.Children[0].Server != "db" {
		t.Fatalf("chain wrong: %+v", app)
	}
	correct, total := PathAccuracy(txns)
	if correct != 2 || total != 2 {
		t.Fatalf("accuracy %d/%d, want 2/2", correct, total)
	}
}

func TestBuildTracesPrefersLatestActive(t *testing.T) {
	// Two overlapping web transactions; the app call sent at t=22 must be
	// attributed to the one that arrived later (t=20), not the earlier.
	msgs := []ntier.Message{
		msg("c1", "client", "web", ntier.MsgRequest, 9, 10, 1),
		msg("c2", "client", "web", ntier.MsgRequest, 19, 20, 2),
		msg("w1", "web", "app", ntier.MsgRequest, 22, 23, 2),
		msg("w1", "app", "web", ntier.MsgResponse, 30, 31, 2),
		msg("c2", "web", "client", ntier.MsgResponse, 35, 36, 2),
		msg("c1", "web", "client", ntier.MsgResponse, 50, 51, 1),
	}
	txns, err := MatchTransactions(msgs)
	if err != nil {
		t.Fatal(err)
	}
	BuildTraces(txns)
	correct, total := PathAccuracy(txns)
	if total != 1 || correct != 1 {
		t.Fatalf("nesting chose wrong parent: %d/%d", correct, total)
	}
}

func TestQueueSeries(t *testing.T) {
	txns := []*HopTxn{
		{Server: "web", Arrive: 0, Depart: 100},
		{Server: "web", Arrive: 40, Depart: 60},
		{Server: "app", Arrive: 10, Depart: 20},
	}
	pts := QueueSeries(txns, "web", 10)
	if len(pts) == 0 {
		t.Fatal("no points")
	}
	at := func(ts des.Time) int {
		for _, p := range pts {
			if p.At == ts {
				return p.N
			}
		}
		t.Fatalf("no point at %v", ts)
		return -1
	}
	if at(0) != 1 || at(50) != 2 || at(70) != 1 || at(100) != 0 {
		t.Fatalf("queue series wrong: %+v", pts)
	}
}

func TestQueueSeriesEmpty(t *testing.T) {
	if pts := QueueSeries(nil, "web", 10); pts != nil {
		t.Fatalf("empty txns produced points: %v", pts)
	}
}

// End-to-end: reconstruct from a real simulated capture and compare the
// SysViz queue series against ground truth inflight counts.
func TestReconstructionFromSimulatedCapture(t *testing.T) {
	cfg := ntier.DefaultConfig()
	cfg.Users = 60
	cfg.Duration = 2 * time.Second
	cfg.ThinkTime = 300 * time.Millisecond
	cfg.Seed = 11
	cfg.RetainVisits = true
	sys := ntier.New(cfg)
	cap := netcap.New()
	sys.SetCapture(cap)
	ntier.Run(sys)

	txns, err := MatchTransactions(cap.Messages())
	if err != nil {
		t.Fatal(err)
	}
	if len(txns) == 0 {
		t.Fatal("no transactions reconstructed")
	}
	// Every tier must appear.
	seen := map[string]int{}
	for _, tx := range txns {
		seen[tx.Server]++
		if tx.Depart < tx.Arrive {
			t.Fatalf("negative residence: %+v", tx)
		}
	}
	for _, srv := range []string{"apache", "tomcat", "cjdbc", "mysql"} {
		if seen[srv] == 0 {
			t.Fatalf("no transactions at %s", srv)
		}
	}
	// Transaction counts match ground-truth visit counts per tier
	// (all requests drained, so nothing is in flight).
	visits := map[string]int{}
	for _, v := range sys.GroundTruth {
		visits[v.Server.Name()]++
	}
	for srv, n := range visits {
		if seen[srv] != n {
			t.Fatalf("%s: %d txns vs %d ground-truth visits", srv, seen[srv], n)
		}
	}

	roots := BuildTraces(txns)
	if len(roots) == 0 {
		t.Fatal("no roots")
	}
	correct, total := PathAccuracy(txns)
	if total == 0 {
		t.Fatal("no parent links inferred")
	}
	acc := float64(correct) / float64(total)
	// Timing-based nesting is fundamentally ambiguous for overlapping
	// multi-query executions: it lands well below the exactness of ID
	// propagation even at modest concurrency — the paper's case for
	// explicit IDs. It must still be far better than chance.
	if acc < 0.6 {
		t.Fatalf("nesting accuracy %.3f < 0.6", acc)
	}
	if acc >= 0.999 {
		t.Fatalf("nesting accuracy %.3f suspiciously perfect; ground truth may be leaking", acc)
	}
}

func BenchmarkMatchTransactions(b *testing.B) {
	cfg := ntier.DefaultConfig()
	cfg.Users = 100
	cfg.Duration = 2 * time.Second
	cfg.ThinkTime = 300 * time.Millisecond
	sys := ntier.New(cfg)
	cap := netcap.New()
	sys.SetCapture(cap)
	ntier.Run(sys)
	msgs := cap.Messages()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MatchTransactions(msgs); err != nil {
			b.Fatal(err)
		}
	}
}
