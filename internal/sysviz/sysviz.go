// Package sysviz reproduces the reconstruction pipeline of Fujitsu SysViz,
// the commercial passive-network-tracing system the paper validates
// against (Section VI-A). From a tap capture with no request identifiers
// it rebuilds:
//
//  1. per-hop transactions, by FIFO request/response matching on each
//     persistent connection;
//  2. cross-tier causal traces, by timing containment: a downstream call
//     is attributed to the transaction that was active on its source
//     server and most recently started — the standard nesting inference,
//     and the part that degrades under high concurrency (the reason
//     milliScope propagates explicit IDs instead);
//  3. per-tier queue-length series from transaction open intervals, the
//     series compared in Figure 9.
package sysviz

import (
	"fmt"
	"sort"

	"github.com/gt-elba/milliscope/internal/des"
	"github.com/gt-elba/milliscope/internal/ntier"
)

// HopTxn is one request/response pair on one connection: a transaction
// residing at Server between Arrive (request hits the server) and Depart
// (response leaves it).
type HopTxn struct {
	Conn   string
	Server string // the downstream endpoint servicing the request
	Caller string // the upstream endpoint that issued it
	Arrive des.Time
	Depart des.Time
	// SentAt is when the request left the caller (used for nesting).
	SentAt des.Time
	// ReqSerial is ground truth carried for accuracy scoring only.
	ReqSerial uint64

	// Parent/Children form the inferred causal trace.
	Parent   *HopTxn
	Children []*HopTxn
}

// Duration returns the transaction's residence time at its server.
func (t *HopTxn) Duration() des.Time { return t.Depart - t.Arrive }

// MatchTransactions pairs each request with the next response on the same
// connection (FIFO per connection, as TCP ordering guarantees).
func MatchTransactions(msgs []ntier.Message) ([]*HopTxn, error) {
	type pending struct {
		m ntier.Message
	}
	open := make(map[string][]pending)
	var txns []*HopTxn
	for _, m := range msgs {
		switch m.Kind {
		case ntier.MsgRequest:
			open[m.Conn] = append(open[m.Conn], pending{m: m})
		case ntier.MsgResponse:
			q := open[m.Conn]
			if len(q) == 0 {
				return nil, fmt.Errorf("sysviz: response without request on %s at %v", m.Conn, m.RecvAt)
			}
			req := q[0].m
			open[m.Conn] = q[1:]
			if req.Dst != m.Src || req.Src != m.Dst {
				return nil, fmt.Errorf("sysviz: endpoint mismatch on %s: req %s->%s, resp %s->%s",
					m.Conn, req.Src, req.Dst, m.Src, m.Dst)
			}
			txns = append(txns, &HopTxn{
				Conn:      req.Conn,
				Server:    req.Dst,
				Caller:    req.Src,
				Arrive:    req.RecvAt,
				Depart:    m.SentAt,
				SentAt:    req.SentAt,
				ReqSerial: req.ReqSerial,
			})
		default:
			return nil, fmt.Errorf("sysviz: unknown message kind %v", m.Kind)
		}
	}
	// Unmatched requests (still in flight at capture end) are dropped:
	// SysViz reconstructs completed transactions only.
	sort.Slice(txns, func(i, j int) bool { return txns[i].Arrive < txns[j].Arrive })
	return txns, nil
}

// BuildTraces infers the causal forest: each transaction whose caller is a
// tier server (not the client) is attached to the transaction that was
// active at that server when the request was sent, preferring the most
// recently arrived candidate. Roots are client-issued transactions.
//
// It returns the roots. Transactions whose parent cannot be resolved stay
// parentless (counted by the caller via Parent == nil).
func BuildTraces(txns []*HopTxn) []*HopTxn {
	// Index transactions by server, sorted by arrival (MatchTransactions
	// already sorted globally, so per-server order is preserved).
	byServer := make(map[string][]*HopTxn)
	for _, t := range txns {
		byServer[t.Server] = append(byServer[t.Server], t)
	}
	// Attach in send order so each caller's outstanding-child bookkeeping
	// reflects every earlier send when a later one is resolved.
	bySend := make([]*HopTxn, len(txns))
	copy(bySend, txns)
	sort.Slice(bySend, func(i, j int) bool { return bySend[i].SentAt < bySend[j].SentAt })
	var roots []*HopTxn
	for _, t := range bySend {
		candidates := byServer[t.Caller]
		if len(candidates) == 0 {
			// Caller is not a serviced tier (the client): a root.
			roots = append(roots, t)
			continue
		}
		parent := nestParent(candidates, t.SentAt)
		if parent == nil {
			continue
		}
		t.Parent = parent
		parent.Children = append(parent.Children, t)
	}
	return roots
}

// nestParent finds the transaction at the caller server whose open
// interval contains sentAt, preferring the latest-arrived candidate that
// is *eligible*: a synchronous caller blocked on an outstanding downstream
// call cannot issue a second one, so candidates with a child interval
// covering sentAt are skipped. Binary search bounds candidates by arrival.
func nestParent(candidates []*HopTxn, sentAt des.Time) *HopTxn {
	// First candidate arriving after sentAt cannot contain it.
	hi := sort.Search(len(candidates), func(i int) bool {
		return candidates[i].Arrive > sentAt
	})
	var fallback *HopTxn
	for i := hi - 1; i >= 0; i-- {
		c := candidates[i]
		if c.Depart < sentAt {
			// Keep scanning: an earlier-arrived transaction can still be
			// open (long residency) even though a later one departed.
			if hi-i > 512 {
				break // bound the scan; deeper history cannot plausibly nest
			}
			continue
		}
		if busyWithChild(c, sentAt) {
			if fallback == nil {
				fallback = c
			}
			continue
		}
		return c
	}
	return fallback
}

// busyWithChild reports whether t already has an inferred downstream call
// outstanding at the given instant. The child's occupancy is extended past
// its departure by the observed forward wire latency, approximating the
// response's return flight during which the caller is still blocked.
func busyWithChild(t *HopTxn, at des.Time) bool {
	for _, c := range t.Children {
		end := c.Depart + (c.Arrive - c.SentAt)
		if c.SentAt <= at && at <= end {
			return true
		}
	}
	return false
}

// PathAccuracy scores the inferred parent links against ground truth: the
// fraction of non-root transactions whose parent has the same request
// serial. This quantifies the cost of timing-based nesting vs explicit ID
// propagation (milliScope's design choice).
func PathAccuracy(txns []*HopTxn) (correct, total int) {
	for _, t := range txns {
		if t.Parent == nil {
			continue
		}
		total++
		if t.Parent.ReqSerial == t.ReqSerial {
			correct++
		}
	}
	return correct, total
}

// QueuePoint is one sample of a per-tier queue-length series.
type QueuePoint struct {
	At des.Time
	N  int
}

// QueueSeries computes the instantaneous number of open transactions at
// the given server, sampled every step from the first arrival to the last
// departure. This is the SysViz side of the Figure 9 comparison.
func QueueSeries(txns []*HopTxn, server string, step des.Time) []QueuePoint {
	if step <= 0 {
		panic(fmt.Sprintf("sysviz: non-positive step %v", step))
	}
	type ev struct {
		at des.Time
		d  int
	}
	var evs []ev
	var lo, hi des.Time
	first := true
	for _, t := range txns {
		if t.Server != server {
			continue
		}
		evs = append(evs, ev{t.Arrive, +1}, ev{t.Depart, -1})
		if first || t.Arrive < lo {
			lo = t.Arrive
		}
		if first || t.Depart > hi {
			hi = t.Depart
		}
		first = false
	}
	if len(evs) == 0 {
		return nil
	}
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].at != evs[j].at {
			return evs[i].at < evs[j].at
		}
		return evs[i].d > evs[j].d // arrivals before departures at a tie
	})
	// Snap onto the step grid so samples line up with series derived by
	// other monitors at the same step.
	lo -= lo % step
	var out []QueuePoint
	n := 0
	k := 0
	for at := lo; at <= hi; at += step {
		for k < len(evs) && evs[k].at <= at {
			n += evs[k].d
			k++
		}
		out = append(out, QueuePoint{At: at, N: n})
	}
	return out
}
