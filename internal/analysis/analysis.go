// Package analysis implements the diagnostic layer of milliScope: very
// short bottleneck (VSB) detection, cross-tier pushback detection, and
// resource–queue correlation for root-cause ranking (paper Section V).
package analysis

import (
	"fmt"
	"math"
	"sort"
	"time"

	"github.com/gt-elba/milliscope/internal/mscopedb"
)

// Window is a contiguous anomalous interval.
type Window struct {
	StartMicros int64
	EndMicros   int64
	Peak        float64
}

// Duration returns the window length.
func (w Window) Duration() time.Duration {
	return time.Duration(w.EndMicros-w.StartMicros) * time.Microsecond
}

// Pearson computes the correlation coefficient of two equal-length
// vectors. It returns 0 when either vector is constant.
func Pearson(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("analysis: Pearson over %d vs %d points", len(a), len(b)))
	}
	n := float64(len(a))
	if n == 0 {
		return 0
	}
	var ma, mb float64
	for i := range a {
		ma += a[i]
		mb += b[i]
	}
	ma /= n
	mb /= n
	var cov, va, vb float64
	for i := range a {
		da, db := a[i]-ma, b[i]-mb
		cov += da * db
		va += da * da
		vb += db * db
	}
	if va == 0 || vb == 0 {
		return 0
	}
	return cov / math.Sqrt(va*vb)
}

// Align intersects two series on their window timestamps, returning the
// paired values. Series sampled by different monitors rarely share every
// window, so correlation runs on the intersection.
func Align(a, b *mscopedb.Series) (x, y []float64) {
	bv := make(map[int64]float64, len(b.StartMicros))
	for i, t := range b.StartMicros {
		bv[t] = b.Values[i]
	}
	for i, t := range a.StartMicros {
		if v, ok := bv[t]; ok {
			x = append(x, a.Values[i])
			y = append(y, v)
		}
	}
	return x, y
}

// Correlate aligns two series and returns their Pearson correlation and
// the number of overlapping windows.
func Correlate(a, b *mscopedb.Series) (float64, int) {
	x, y := Align(a, b)
	return Pearson(x, y), len(x)
}

// CrossCorrelate computes the Pearson correlation at integer window lags
// in [-maxLag, +maxLag] (shifting b later in time for positive lags) and
// returns the best coefficient with its lag. Queue lengths respond to a
// resource seizure with a delay — the queue builds while the resource is
// held and drains afterwards — so the peak correlation sits at a small
// positive lag.
func CrossCorrelate(a, b *mscopedb.Series, maxLag int) (best float64, bestLag int) {
	if len(b.StartMicros) < 2 || maxLag < 0 {
		c, _ := Correlate(a, b)
		return c, 0
	}
	width := b.StartMicros[1] - b.StartMicros[0]
	for lag := -maxLag; lag <= maxLag; lag++ {
		shifted := &mscopedb.Series{Values: b.Values}
		shifted.StartMicros = make([]int64, len(b.StartMicros))
		for i, t := range b.StartMicros {
			shifted.StartMicros[i] = t - int64(lag)*width
		}
		c, n := Correlate(a, shifted)
		if n >= 3 && c > best {
			best = c
			bestLag = lag
		}
	}
	return best, bestLag
}

// DetectAnomalies finds contiguous runs where the series exceeds
// threshold. Runs longer than maxDuration are excluded when maxDuration is
// positive (a VSB is by definition short; a sustained overload is a
// different diagnosis).
func DetectAnomalies(s *mscopedb.Series, threshold float64, maxDuration time.Duration) []Window {
	var out []Window
	var cur *Window
	flush := func(endUS int64) {
		if cur == nil {
			return
		}
		cur.EndMicros = endUS
		if maxDuration <= 0 || cur.Duration() <= maxDuration {
			out = append(out, *cur)
		}
		cur = nil
	}
	width := int64(0)
	if len(s.StartMicros) > 1 {
		width = s.StartMicros[1] - s.StartMicros[0]
	}
	for i, t := range s.StartMicros {
		v := s.Values[i]
		if v > threshold {
			if cur == nil {
				cur = &Window{StartMicros: t, Peak: v}
			} else if v > cur.Peak {
				cur.Peak = v
			}
			continue
		}
		flush(t)
	}
	if cur != nil && len(s.StartMicros) > 0 {
		flush(s.StartMicros[len(s.StartMicros)-1] + width)
	}
	return out
}

// DetectVLRTWindows finds the windows where Point-in-Time response time
// exceeds k × the average: the paper's very-long-response-time episodes.
func DetectVLRTWindows(pit *mscopedb.Series, avgUS, k float64, maxDuration time.Duration) []Window {
	return DetectAnomalies(pit, k*avgUS, maxDuration)
}

// SliceSeries restricts a series to [startUS, endUS].
func SliceSeries(s *mscopedb.Series, startUS, endUS int64) *mscopedb.Series {
	var out mscopedb.Series
	for i, t := range s.StartMicros {
		if t >= startUS && t <= endUS {
			out.StartMicros = append(out.StartMicros, t)
			out.Values = append(out.Values, s.Values[i])
		}
	}
	return &out
}

// seriesStats returns mean of a series' values.
func seriesMean(s *mscopedb.Series) float64 {
	if len(s.Values) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s.Values {
		sum += v
	}
	return sum / float64(len(s.Values))
}

// PushbackResult reports which tiers' queues grew during a window.
type PushbackResult struct {
	// Grew lists tiers (in the given order) whose in-window mean queue
	// exceeded growthFactor × their out-of-window mean.
	Grew []string
	// CrossTier is true when at least two adjacent tiers grew — the queue
	// amplification signature of Figures 6 and 8b.
	CrossTier bool
}

// DetectPushback classifies queue growth across tiers during an anomaly
// window. tierOrder is front to back; queues maps tier → queue series.
func DetectPushback(queues map[string]*mscopedb.Series, tierOrder []string, w Window, growthFactor float64) PushbackResult {
	var res PushbackResult
	grew := make(map[string]bool)
	for _, tier := range tierOrder {
		s, ok := queues[tier]
		if !ok {
			continue
		}
		in := seriesMean(SliceSeries(s, w.StartMicros, w.EndMicros))
		// Baseline: everything outside the window.
		var outSum float64
		var outN int
		for i, t := range s.StartMicros {
			if t < w.StartMicros || t > w.EndMicros {
				outSum += s.Values[i]
				outN++
			}
		}
		if outN == 0 {
			continue
		}
		base := outSum / float64(outN)
		if base < 0.5 {
			base = 0.5 // avoid near-zero baselines declaring trivial growth
		}
		if in > growthFactor*base {
			grew[tier] = true
			res.Grew = append(res.Grew, tier)
		}
	}
	for i := 0; i+1 < len(tierOrder); i++ {
		if grew[tierOrder[i]] && grew[tierOrder[i+1]] {
			res.CrossTier = true
			break
		}
	}
	return res
}

// Cause is one ranked root-cause candidate.
type Cause struct {
	// Name identifies the resource series ("mysql disk util", ...).
	Name string
	// Correlation with the front-tier queue over the analysis range.
	Correlation float64
	// PeakInWindow is the resource's peak value inside the anomaly window.
	PeakInWindow float64
}

// RankRootCauses orders candidate resource series by their correlation
// with the reference (front-tier queue) series, breaking ties by in-window
// peak. This is the paper's final diagnostic step: the DB disk's
// correlation with the Apache queue (Figure 7) identifies the VSB's cause.
func RankRootCauses(reference *mscopedb.Series, candidates map[string]*mscopedb.Series, w Window) []Cause {
	out := make([]Cause, 0, len(candidates))
	for name, s := range candidates {
		corr, n := Correlate(reference, s)
		if n == 0 {
			continue
		}
		peak := 0.0
		for _, v := range SliceSeries(s, w.StartMicros, w.EndMicros).Values {
			if v > peak {
				peak = v
			}
		}
		out = append(out, Cause{Name: name, Correlation: corr, PeakInWindow: peak})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Correlation != out[j].Correlation {
			return out[i].Correlation > out[j].Correlation
		}
		if out[i].PeakInWindow != out[j].PeakInWindow {
			return out[i].PeakInWindow > out[j].PeakInWindow
		}
		return out[i].Name < out[j].Name
	})
	return out
}
