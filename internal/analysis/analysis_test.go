package analysis

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"github.com/gt-elba/milliscope/internal/mscopedb"
)

func series(startUS, stepUS int64, vals ...float64) *mscopedb.Series {
	s := &mscopedb.Series{}
	for i, v := range vals {
		s.StartMicros = append(s.StartMicros, startUS+int64(i)*stepUS)
		s.Values = append(s.Values, v)
	}
	return s
}

func TestPearsonPerfect(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	b := []float64{2, 4, 6, 8}
	if r := Pearson(a, b); math.Abs(r-1) > 1e-12 {
		t.Fatalf("r = %v", r)
	}
	c := []float64{8, 6, 4, 2}
	if r := Pearson(a, c); math.Abs(r+1) > 1e-12 {
		t.Fatalf("r = %v", r)
	}
}

func TestPearsonConstant(t *testing.T) {
	if r := Pearson([]float64{1, 1, 1}, []float64{2, 3, 4}); r != 0 {
		t.Fatalf("constant vector r = %v", r)
	}
	if r := Pearson(nil, nil); r != 0 {
		t.Fatalf("empty r = %v", r)
	}
}

func TestPearsonLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	Pearson([]float64{1}, []float64{1, 2})
}

// Property: Pearson is symmetric and bounded in [-1, 1].
func TestPearsonProperties(t *testing.T) {
	f := func(raw []int8) bool {
		if len(raw) < 4 {
			return true
		}
		n := len(raw) / 2
		a := make([]float64, n)
		b := make([]float64, n)
		for i := 0; i < n; i++ {
			a[i] = float64(raw[i])
			b[i] = float64(raw[n+i])
		}
		r1, r2 := Pearson(a, b), Pearson(b, a)
		if math.Abs(r1-r2) > 1e-9 {
			return false
		}
		return r1 >= -1-1e-9 && r1 <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestAlignIntersects(t *testing.T) {
	a := series(0, 100, 1, 2, 3, 4)
	b := series(100, 100, 20, 30, 40, 50) // overlaps at 100,200,300
	x, y := Align(a, b)
	if len(x) != 3 {
		t.Fatalf("aligned %d points", len(x))
	}
	if x[0] != 2 || y[0] != 20 {
		t.Fatalf("alignment wrong: %v %v", x, y)
	}
	corr, n := Correlate(a, b)
	if n != 3 || math.Abs(corr-1) > 1e-12 {
		t.Fatalf("correlate %v %d", corr, n)
	}
}

func TestCrossCorrelateFindsLag(t *testing.T) {
	// b is a copy of a delayed by exactly 2 windows.
	a := series(0, 1000, 1, 1, 9, 9, 1, 1, 1, 1, 1, 1)
	b := series(0, 1000, 1, 1, 1, 1, 9, 9, 1, 1, 1, 1)
	zero, _ := Correlate(a, b)
	best, lag := CrossCorrelate(a, b, 4)
	if lag != 2 {
		t.Fatalf("best lag %d, want 2", lag)
	}
	if best <= zero || best < 0.95 {
		t.Fatalf("best corr %v (zero-lag %v)", best, zero)
	}
}

func TestCrossCorrelateDegenerate(t *testing.T) {
	a := series(0, 1000, 1, 2)
	b := series(0, 1000, 5)
	c, lag := CrossCorrelate(a, b, 3)
	if lag != 0 {
		t.Fatalf("degenerate lag %d", lag)
	}
	_ = c
}

func TestDetectAnomalies(t *testing.T) {
	s := series(0, 1000, 1, 1, 10, 12, 1, 1, 20, 1)
	ws := DetectAnomalies(s, 5, 0)
	if len(ws) != 2 {
		t.Fatalf("windows %+v", ws)
	}
	if ws[0].StartMicros != 2000 || ws[0].EndMicros != 4000 || ws[0].Peak != 12 {
		t.Fatalf("first window %+v", ws[0])
	}
	if ws[1].Peak != 20 {
		t.Fatalf("second window %+v", ws[1])
	}
}

func TestDetectAnomaliesMaxDuration(t *testing.T) {
	s := series(0, 1_000_000, 10, 10, 10, 10, 1, 10, 1)
	// First run spans 4s: excluded at maxDuration 2s; single-window run kept.
	ws := DetectAnomalies(s, 5, 2*time.Second)
	if len(ws) != 1 {
		t.Fatalf("windows %+v", ws)
	}
	if ws[0].StartMicros != 5_000_000 {
		t.Fatalf("window %+v", ws[0])
	}
}

func TestDetectAnomaliesTrailingRun(t *testing.T) {
	s := series(0, 1000, 1, 1, 9, 9)
	ws := DetectAnomalies(s, 5, 0)
	if len(ws) != 1 || ws[0].EndMicros != 4000 {
		t.Fatalf("trailing run %+v", ws)
	}
}

func TestSliceSeries(t *testing.T) {
	s := series(0, 1000, 1, 2, 3, 4, 5)
	sub := SliceSeries(s, 1000, 3000)
	if len(sub.Values) != 3 || sub.Values[0] != 2 || sub.Values[2] != 4 {
		t.Fatalf("slice %+v", sub)
	}
}

func TestDetectPushback(t *testing.T) {
	w := Window{StartMicros: 4000, EndMicros: 7000}
	mk := func(spikeVals ...float64) *mscopedb.Series {
		base := []float64{1, 1, 1, 1}
		vals := append(append([]float64{}, base...), spikeVals...)
		vals = append(vals, 1, 1, 1)
		return series(0, 1000, vals...)
	}
	queues := map[string]*mscopedb.Series{
		"apache": mk(40, 45, 50, 40),
		"tomcat": mk(30, 35, 40, 30),
		"cjdbc":  mk(20, 25, 30, 20),
		"mysql":  mk(25, 30, 35, 25),
	}
	order := []string{"apache", "tomcat", "cjdbc", "mysql"}
	res := DetectPushback(queues, order, w, 3)
	if !res.CrossTier {
		t.Fatalf("cross-tier pushback not detected: %+v", res)
	}
	if len(res.Grew) != 4 {
		t.Fatalf("grew %v", res.Grew)
	}

	// Only apache grows: no cross-tier amplification (Figure 8b peak 1).
	queues2 := map[string]*mscopedb.Series{
		"apache": mk(40, 45, 50, 40),
		"tomcat": mk(1, 1, 1, 1),
		"cjdbc":  mk(1, 1, 1, 1),
		"mysql":  mk(1, 1, 1, 1),
	}
	res2 := DetectPushback(queues2, order, w, 3)
	if res2.CrossTier {
		t.Fatalf("single-tier growth misclassified: %+v", res2)
	}
	if len(res2.Grew) != 1 || res2.Grew[0] != "apache" {
		t.Fatalf("grew %v", res2.Grew)
	}
}

func TestRankRootCauses(t *testing.T) {
	// Reference: apache queue spikes in window.
	ref := series(0, 1000, 1, 1, 1, 50, 60, 50, 1, 1)
	candidates := map[string]*mscopedb.Series{
		"mysql disk util":  series(0, 1000, 10, 10, 10, 98, 99, 97, 10, 10),
		"apache disk util": series(0, 1000, 5, 6, 5, 6, 5, 6, 5, 6),
		"tomcat cpu":       series(0, 1000, 30, 31, 30, 32, 31, 30, 31, 30),
	}
	w := Window{StartMicros: 3000, EndMicros: 5000}
	causes := RankRootCauses(ref, candidates, w)
	if len(causes) != 3 {
		t.Fatalf("causes %+v", causes)
	}
	if causes[0].Name != "mysql disk util" {
		t.Fatalf("top cause %+v", causes[0])
	}
	if causes[0].Correlation < 0.9 {
		t.Fatalf("top correlation %v", causes[0].Correlation)
	}
	if causes[0].PeakInWindow != 99 {
		t.Fatalf("peak %v", causes[0].PeakInWindow)
	}
}

func TestDetectVLRTWindows(t *testing.T) {
	pit := series(0, 50_000, 5000, 6000, 120_000, 5500)
	ws := DetectVLRTWindows(pit, 6000, 10, time.Second)
	if len(ws) != 1 || ws[0].Peak != 120_000 {
		t.Fatalf("VLRT windows %+v", ws)
	}
}

func TestWindowDuration(t *testing.T) {
	w := Window{StartMicros: 1000, EndMicros: 351_000}
	if w.Duration() != 350*time.Millisecond {
		t.Fatalf("duration %v", w.Duration())
	}
}
