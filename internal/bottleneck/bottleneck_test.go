package bottleneck

import (
	"testing"
	"time"

	"github.com/gt-elba/milliscope/internal/des"
	"github.com/gt-elba/milliscope/internal/ntier"
)

func testConfig() ntier.Config {
	cfg := ntier.DefaultConfig()
	cfg.Users = 120
	cfg.Duration = 3 * time.Second
	cfg.ThinkTime = 250 * time.Millisecond
	cfg.Seed = 7
	cfg.RetainVisits = true
	return cfg
}

// maxRTAround returns the maximum client response time for requests
// submitted in [from, to).
func maxRTAround(d *ntier.Driver, from, to time.Duration) time.Duration {
	var maxRT time.Duration
	for _, r := range d.Completed {
		if r.SubmitAt >= des.Time(from) && r.SubmitAt < des.Time(to) {
			if rt := time.Duration(r.DoneAt - r.SubmitAt); rt > maxRT {
				maxRT = rt
			}
		}
	}
	return maxRT
}

func TestDBLogFlushCausesVLRT(t *testing.T) {
	cfg := testConfig()
	sys := ntier.New(cfg)
	DBLogFlush{At: des.Time(1500 * time.Millisecond), Duration: 300 * time.Millisecond}.Inject(sys)
	d := ntier.Run(sys)

	baseline := maxRTAround(d, 500*time.Millisecond, 1200*time.Millisecond)
	during := maxRTAround(d, 1450*time.Millisecond, 1850*time.Millisecond)
	if during < 150*time.Millisecond {
		t.Fatalf("max RT during flush %v, expected very long requests", during)
	}
	if during < 4*baseline {
		t.Fatalf("flush RT %v not clearly above baseline %v", during, baseline)
	}
}

func TestDirtyPageSurgeSaturatesCPU(t *testing.T) {
	cfg := testConfig()
	// Slow recycling enough to observe an episode of ~200ms on 8 cores.
	cfg.App.Node.Memory.LowWaterKB = 10 * 1024
	cfg.App.Node.Memory.HighWaterKB = 400 * 1024
	cfg.App.Node.Memory.DrainKBps = 800 * 1024
	cfg.App.Node.Memory.FlushWorkers = 8
	sys := ntier.New(cfg)
	DirtyPageSurge{Node: "tomcat", At: des.Time(1500 * time.Millisecond), BurstKB: 300 * 1024}.Inject(sys)

	mem := sys.App.Node().Mem
	var started, ended des.Time
	mem.OnFlushStart = func(now des.Time, _ float64) { started = now }
	mem.OnFlushEnd = func(now des.Time, _ float64) { ended = now }

	d := ntier.Run(sys)
	if started == 0 || ended <= started {
		t.Fatalf("no recycling episode: start=%v end=%v", started, ended)
	}
	episode := time.Duration(ended - started)
	if episode < 50*time.Millisecond || episode > time.Second {
		t.Fatalf("episode length %v outside VSB range", episode)
	}
	// Requests in flight during the episode see elongated RTs.
	during := maxRTAround(d, 1450*time.Millisecond, time.Duration(ended)+200*time.Millisecond)
	baseline := maxRTAround(d, 500*time.Millisecond, 1200*time.Millisecond)
	if during < 2*baseline {
		t.Fatalf("dirty-page episode RT %v not above baseline %v", during, baseline)
	}
}

func TestJVMGCStallsNode(t *testing.T) {
	cfg := testConfig()
	sys := ntier.New(cfg)
	JVMGC{Node: "tomcat", At: des.Time(1500 * time.Millisecond), Pause: 250 * time.Millisecond}.Inject(sys)
	d := ntier.Run(sys)
	during := maxRTAround(d, 1400*time.Millisecond, 1900*time.Millisecond)
	if during < 100*time.Millisecond {
		t.Fatalf("max RT during GC %v, expected stall-length requests", during)
	}
	if sys.App.PeakInflight() < 10 {
		t.Fatalf("tomcat queue peaked at %d during GC", sys.App.PeakInflight())
	}
}

func TestDVFSSlowsProcessing(t *testing.T) {
	cfg := testConfig()
	sys := ntier.New(cfg)
	DVFS{Node: "mysql", At: des.Time(1200 * time.Millisecond),
		Duration: 800 * time.Millisecond, Speed: 0.15}.Inject(sys)
	d := ntier.Run(sys)
	during := maxRTAround(d, 1300*time.Millisecond, 1900*time.Millisecond)
	baseline := maxRTAround(d, 400*time.Millisecond, 1100*time.Millisecond)
	if during < 2*baseline {
		t.Fatalf("DVFS RT %v not above baseline %v", during, baseline)
	}
	if sys.DB.Node().CPU.Speed() != 1.0 {
		t.Fatal("CPU speed not restored after DVFS window")
	}
}

func TestInjectAll(t *testing.T) {
	cfg := testConfig()
	cfg.Duration = time.Second
	sys := ntier.New(cfg)
	InjectAll(sys, []Injector{
		DBLogFlush{At: des.Time(300 * time.Millisecond), Duration: 50 * time.Millisecond},
		JVMGC{Node: "tomcat", At: des.Time(600 * time.Millisecond), Pause: 30 * time.Millisecond},
	})
	d := ntier.Run(sys)
	if len(d.Completed) == 0 {
		t.Fatal("run with injectors completed no requests")
	}
}

func TestDescribe(t *testing.T) {
	for _, in := range []Injector{
		DBLogFlush{At: 1, Duration: time.Millisecond},
		DirtyPageSurge{Node: "apache", At: 1, BurstKB: 10},
		JVMGC{Node: "tomcat", At: 1, Pause: time.Millisecond},
		DVFS{Node: "mysql", At: 1, Duration: time.Millisecond, Speed: 0.5},
	} {
		if in.Describe() == "" {
			t.Fatalf("%T has empty description", in)
		}
	}
}

func TestUnknownNodePanics(t *testing.T) {
	sys := ntier.New(testConfig())
	for _, in := range []Injector{
		DirtyPageSurge{Node: "nope", At: 1, BurstKB: 10},
		JVMGC{Node: "nope", At: 1, Pause: time.Millisecond},
		DVFS{Node: "nope", At: 1, Duration: time.Millisecond, Speed: 0.5},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%T with unknown node did not panic", in)
				}
			}()
			in.Inject(sys)
		}()
	}
}
