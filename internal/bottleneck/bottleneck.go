// Package bottleneck injects very short bottlenecks (VSBs) into the
// simulated testbed. The paper's two illustrative scenarios are driven by
// the first two injectors — a database redo-log flush seizing the DB disk
// (Section V-A) and dirty-page recycling saturating a node's CPU (Section
// V-B). The JVM garbage-collection and DVFS injectors reproduce two further
// root causes the paper's related-work discussion lists, so analyses can be
// exercised against a wider cause population.
package bottleneck

import (
	"fmt"
	"time"

	"github.com/gt-elba/milliscope/internal/des"
	"github.com/gt-elba/milliscope/internal/ntier"
	"github.com/gt-elba/milliscope/internal/resources"
)

// Injector schedules a fault into an assembled system before the run starts.
type Injector interface {
	// Inject arms the fault on the system.
	Inject(sys *ntier.System)
	// Describe returns a human-readable summary for experiment records.
	Describe() string
}

// DBLogFlush seizes the database disk with one long sequential redo-log
// write starting at At and lasting approximately Duration. Queries needing
// the disk (commits, buffer-pool misses) queue behind it; blocked MySQL
// workers back requests up through C-JDBC, Tomcat and Apache — the
// cross-tier pushback of Figures 2/4/6/7.
type DBLogFlush struct {
	At       des.Time
	Duration time.Duration
}

var _ Injector = DBLogFlush{}

// Inject arms the flush.
func (f DBLogFlush) Inject(sys *ntier.System) {
	if f.Duration <= 0 {
		panic(fmt.Sprintf("bottleneck: non-positive flush duration %v", f.Duration))
	}
	disk := sys.DB.Node().Disk
	cfg := sys.Config().DB.Node.Disk
	// Issue the flush as chunks so disk counters advance through the
	// episode; chunks are queued back-to-back and hold the spindle for
	// ~Duration in total.
	const chunkBytes = 1 << 20
	chunkTime := cfg.SeekTime +
		time.Duration(float64(chunkBytes)/(cfg.BandwidthMBps*1e6)*float64(time.Second))
	chunks := int(f.Duration / chunkTime)
	if chunks < 1 {
		chunks = 1
	}
	sys.Eng.At(f.At, func() {
		for i := 0; i < chunks; i++ {
			disk.WriteAsync(chunkBytes)
		}
	})
}

// Describe summarizes the fault.
func (f DBLogFlush) Describe() string {
	return fmt.Sprintf("db-log-flush at=%v dur=%v", time.Duration(f.At), f.Duration)
}

// PeriodicDBLogFlush schedules recurring redo-log flushes: the natural
// behaviour the paper observed, where accumulated redo pages are flushed
// every so often and each flush is a fresh very short bottleneck. Count
// flushes fire at Start, Start+Period, ...
type PeriodicDBLogFlush struct {
	Start    des.Time
	Period   time.Duration
	Duration time.Duration
	Count    int
}

var _ Injector = PeriodicDBLogFlush{}

// Inject arms every occurrence.
func (f PeriodicDBLogFlush) Inject(sys *ntier.System) {
	if f.Count <= 0 || f.Period <= 0 {
		panic(fmt.Sprintf("bottleneck: periodic flush count=%d period=%v", f.Count, f.Period))
	}
	for i := 0; i < f.Count; i++ {
		DBLogFlush{At: f.Start + des.Time(i)*des.Time(f.Period), Duration: f.Duration}.Inject(sys)
	}
}

// Describe summarizes the fault.
func (f PeriodicDBLogFlush) Describe() string {
	return fmt.Sprintf("periodic-db-log-flush start=%v period=%v dur=%v count=%d",
		time.Duration(f.Start), f.Period, f.Duration, f.Count)
}

// DirtyPageSurge dirties a burst of page-cache pages on the named node at
// time At, pushing the dirty size past the high watermark so the kernel
// flusher activates and saturates the node's CPU while recycling — the
// paper's second VSB root cause. The episode length is
// (BurstKB - LowWaterKB) / DrainKBps of the node's memory configuration.
type DirtyPageSurge struct {
	Node    string
	At      des.Time
	BurstKB int
}

var _ Injector = DirtyPageSurge{}

// Inject arms the surge.
func (s DirtyPageSurge) Inject(sys *ntier.System) {
	srv := sys.ServerByName(s.Node)
	if srv == nil {
		panic(fmt.Sprintf("bottleneck: unknown node %q", s.Node))
	}
	if s.BurstKB <= 0 {
		panic(fmt.Sprintf("bottleneck: non-positive burst %dKB", s.BurstKB))
	}
	mem := srv.Node().Mem
	sys.Eng.At(s.At, func() {
		mem.Dirty(s.BurstKB * 1024)
		// If the burst alone does not cross the watermark, force the
		// episode: the scenario scripts position episodes deterministically.
		if !mem.Flushing() {
			mem.ForceFlush()
		}
	})
}

// Describe summarizes the fault.
func (s DirtyPageSurge) Describe() string {
	return fmt.Sprintf("dirty-page-surge node=%s at=%v burst=%dKB",
		s.Node, time.Duration(s.At), s.BurstKB)
}

// JVMGC models a stop-the-world garbage collection on the named (Java)
// node: at time At it submits one system-mode task per core, each holding
// its core for Pause, so application work queues behind the collector.
type JVMGC struct {
	Node  string
	At    des.Time
	Pause time.Duration
}

var _ Injector = JVMGC{}

// Inject arms the collection.
func (g JVMGC) Inject(sys *ntier.System) {
	srv := sys.ServerByName(g.Node)
	if srv == nil {
		panic(fmt.Sprintf("bottleneck: unknown node %q", g.Node))
	}
	if g.Pause <= 0 {
		panic(fmt.Sprintf("bottleneck: non-positive GC pause %v", g.Pause))
	}
	node := srv.Node()
	sys.Eng.At(g.At, func() {
		for i := 0; i < node.CPU.Cores(); i++ {
			node.CPU.Exec(g.Pause, resources.ModeSystem, nil)
		}
	})
}

// Describe summarizes the fault.
func (g JVMGC) Describe() string {
	return fmt.Sprintf("jvm-gc node=%s at=%v pause=%v", g.Node, time.Duration(g.At), g.Pause)
}

// DVFS models dynamic voltage/frequency scaling mistakenly downclocking a
// node: between At and At+Duration the CPU runs at Speed (< 1.0 slows it).
type DVFS struct {
	Node     string
	At       des.Time
	Duration time.Duration
	Speed    float64
}

var _ Injector = DVFS{}

// Inject arms the downclock window.
func (d DVFS) Inject(sys *ntier.System) {
	srv := sys.ServerByName(d.Node)
	if srv == nil {
		panic(fmt.Sprintf("bottleneck: unknown node %q", d.Node))
	}
	if d.Speed <= 0 {
		panic(fmt.Sprintf("bottleneck: non-positive DVFS speed %v", d.Speed))
	}
	if d.Duration <= 0 {
		panic(fmt.Sprintf("bottleneck: non-positive DVFS window %v", d.Duration))
	}
	cpu := srv.Node().CPU
	sys.Eng.At(d.At, func() { cpu.SetSpeed(d.Speed) })
	sys.Eng.At(d.At+des.Time(d.Duration), func() { cpu.SetSpeed(1.0) })
}

// Describe summarizes the fault.
func (d DVFS) Describe() string {
	return fmt.Sprintf("dvfs node=%s at=%v dur=%v speed=%.2f",
		d.Node, time.Duration(d.At), d.Duration, d.Speed)
}

// ConnPoolSeize leaks Held connections from the named tier's downstream
// pool for [At, At+Duration): stuck backend connections (a mod_jk or JDBC
// pool bleed). Requests needing a free connection block FIFO while still
// holding their own tier's worker thread, so the exhaustion amplifies into
// upstream queue growth with every resource gauge flat — a pure software
// bottleneck.
type ConnPoolSeize struct {
	Tier     string
	At       des.Time
	Duration time.Duration
	Held     int
}

var _ Injector = ConnPoolSeize{}

// Inject arms the seizure.
func (c ConnPoolSeize) Inject(sys *ntier.System) {
	if c.Duration <= 0 {
		panic(fmt.Sprintf("bottleneck: non-positive seizure duration %v", c.Duration))
	}
	sys.SeizeConns(c.Tier, c.Held, c.At, c.At+des.Time(c.Duration))
}

// Describe summarizes the fault.
func (c ConnPoolSeize) Describe() string {
	return fmt.Sprintf("conn-pool-seize tier=%s at=%v dur=%v held=%d",
		c.Tier, time.Duration(c.At), c.Duration, c.Held)
}

// LockConvoy serializes every database query issued during [At,
// At+Duration) behind a single row lock, each owner holding it ~Hold. The
// DB tier's queue balloons and pushes back through every upstream tier
// while CPU and disk stay idle — contention invisible to resource
// monitors, exactly the class the paper's event monitors exist to catch.
type LockConvoy struct {
	At       des.Time
	Duration time.Duration
	Hold     time.Duration
}

var _ Injector = LockConvoy{}

// Inject arms the convoy.
func (l LockConvoy) Inject(sys *ntier.System) {
	if l.Duration <= 0 {
		panic(fmt.Sprintf("bottleneck: non-positive convoy duration %v", l.Duration))
	}
	sys.ArmLockConvoy(l.At, l.At+des.Time(l.Duration), l.Hold)
}

// Describe summarizes the fault.
func (l LockConvoy) Describe() string {
	return fmt.Sprintf("lock-convoy at=%v dur=%v hold=%v",
		time.Duration(l.At), l.Duration, l.Hold)
}

// CacheStampede models a mass buffer-pool expiry: during [At, At+Duration)
// queries miss the cache with probability MissProb and each miss reads
// ReadKB from the database disk, so concurrent queries stampede the
// spindle with reads — the read-side twin of the redo-log flush.
type CacheStampede struct {
	At       des.Time
	Duration time.Duration
	MissProb float64
	ReadKB   int
}

var _ Injector = CacheStampede{}

// Inject arms the expiry window.
func (c CacheStampede) Inject(sys *ntier.System) {
	if c.Duration <= 0 {
		panic(fmt.Sprintf("bottleneck: non-positive stampede duration %v", c.Duration))
	}
	sys.ArmCacheExpiry(c.At, c.At+des.Time(c.Duration), c.MissProb, c.ReadKB)
}

// Describe summarizes the fault.
func (c CacheStampede) Describe() string {
	return fmt.Sprintf("cache-stampede at=%v dur=%v miss=%.2f read=%dKB",
		time.Duration(c.At), c.Duration, c.MissProb, c.ReadKB)
}

// NetJitter adds ~Extra of one-way latency (both directions) to the
// (Src, Dst) link during [At, At+Duration): a congested or flapping
// switch. Requests slow down without any tier-local residence growing —
// the gap shows up only between one tier's DS and the next tier's UA.
type NetJitter struct {
	Src, Dst string
	At       des.Time
	Duration time.Duration
	Extra    time.Duration
}

var _ Injector = NetJitter{}

// Inject arms the jitter window.
func (n NetJitter) Inject(sys *ntier.System) {
	if n.Duration <= 0 {
		panic(fmt.Sprintf("bottleneck: non-positive jitter duration %v", n.Duration))
	}
	sys.ArmNetJitter(n.Src, n.Dst, n.At, n.At+des.Time(n.Duration), n.Extra)
}

// Describe summarizes the fault.
func (n NetJitter) Describe() string {
	return fmt.Sprintf("net-jitter link=%s-%s at=%v dur=%v extra=%v",
		n.Src, n.Dst, time.Duration(n.At), n.Duration, n.Extra)
}

// CrashLoop stalls every worker of the named tier for Outage, repeating
// each Period, Count times: a crash-looping process whose supervisor keeps
// restarting it. While down the tier logs nothing past arrival marks, so
// the ingested evidence for it is missing or degraded and diagnosis must
// survive on the remaining tiers (the MissingSources path).
type CrashLoop struct {
	Node   string
	At     des.Time
	Outage time.Duration
	Period time.Duration
	Count  int
}

var _ Injector = CrashLoop{}

// Inject arms every crash episode.
func (c CrashLoop) Inject(sys *ntier.System) {
	if c.Count <= 0 {
		panic(fmt.Sprintf("bottleneck: crash-loop count %d", c.Count))
	}
	if c.Outage <= 0 {
		panic(fmt.Sprintf("bottleneck: non-positive outage %v", c.Outage))
	}
	if c.Count > 1 && c.Period <= c.Outage {
		panic(fmt.Sprintf("bottleneck: crash-loop period %v within outage %v", c.Period, c.Outage))
	}
	for i := 0; i < c.Count; i++ {
		from := c.At + des.Time(i)*des.Time(c.Period)
		sys.StallWorkers(c.Node, from, from+des.Time(c.Outage))
	}
}

// Describe summarizes the fault.
func (c CrashLoop) Describe() string {
	return fmt.Sprintf("crash-loop node=%s at=%v outage=%v period=%v count=%d",
		c.Node, time.Duration(c.At), c.Outage, c.Period, c.Count)
}

// InjectAll arms every injector on the system.
func InjectAll(sys *ntier.System, injectors []Injector) {
	for _, in := range injectors {
		in.Inject(sys)
	}
}
