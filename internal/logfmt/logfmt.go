// Package logfmt renders the native log formats of the paper's testbed
// components: the Apache access log extended with the four boundary
// timestamps (Appendix A), a Tomcat application log, a C-JDBC controller
// log, and the MySQL slow-query log. It also renders the resource-monitor
// formats (SAR text, SAR XML, iostat, collectl plain and CSV).
//
// These writers define the raw-byte contract that internal/parsers must
// recover; every format keeps millisecond-or-better resolution because the
// whole point of milliScope is millisecond-granularity phenomena.
package logfmt

import (
	"fmt"
	"strings"
	"time"

	"github.com/gt-elba/milliscope/internal/simtime"
)

// apacheTimeLayout is the access-log %t layout with milliseconds.
const apacheTimeLayout = "02/Jan/2006:15:04:05.000 -0700"

// tomcatTimeLayout is the log4j-style layout.
const tomcatTimeLayout = "2006-01-02 15:04:05.000"

// mysqlTimeLayout is the slow-query-log "# Time:" layout.
const mysqlTimeLayout = "2006-01-02T15:04:05.000000Z"

func micros(w time.Time) int64 { return simtime.Micros(w) }

// tsOrDash renders a boundary timestamp, or "-" when the visit made no
// downstream call.
func tsOrDash(w time.Time) string {
	if w.IsZero() {
		return "-"
	}
	return fmt.Sprintf("%d", micros(w))
}

// ApacheAccess renders one extended access-log line. ua/ud/ds/dr are
// wall-clock boundary timestamps on the web node's (skewed) clock; ds/dr
// may be zero for requests with no downstream call.
func ApacheAccess(clientIP string, method, uri string, status, respBytes int,
	ua, ud, ds, dr time.Time) string {
	d := ud.Sub(ua).Microseconds()
	return fmt.Sprintf(`%s - - [%s] "%s %s HTTP/1.1" %d %d D=%d UA=%d UD=%d DS=%s DR=%s`,
		clientIP, ua.Format(apacheTimeLayout), method, uri, status, respBytes,
		d, micros(ua), micros(ud), tsOrDash(ds), tsOrDash(dr))
}

// TomcatLine renders one application-log record from the Tomcat event
// monitor (thread name mimics the AJP executor pool).
func TomcatLine(thread int, id, uri string, ua, ud, ds, dr time.Time) string {
	return fmt.Sprintf("%s [ajp-nio-8009-exec-%d] INFO  mScope - id=%s uri=%s ua=%d ud=%d ds=%s dr=%s",
		ua.Format(tomcatTimeLayout), thread, id, uri,
		micros(ua), micros(ud), tsOrDash(ds), tsOrDash(dr))
}

// CJDBCLine renders one controller-log record per proxied query.
func CJDBCLine(vdb, id string, q int, ua, ud, ds, dr time.Time, sql string) string {
	sec := float64(ua.UnixMicro()) / 1e6
	return fmt.Sprintf(`[cjdbc-ctrl] %.6f vdb=%s req=%s q=%d ua=%d ud=%d ds=%s dr=%s sql="%s"`,
		sec, vdb, id, q, micros(ua), micros(ud), tsOrDash(ds), tsOrDash(dr), sql)
}

// MySQLHeader returns the slow-query-log file preamble (three lines the
// parser must skip — the reason the Parsing Declaration stage supports
// line-based rules).
func MySQLHeader() string {
	return "/usr/sbin/mysqld, Version: 5.5.49-log (MySQL Community Server (GPL)). started with:\n" +
		"Tcp port: 3306  Unix socket: /var/lib/mysql/mysql.sock\n" +
		"Time                 Id Command    Argument\n"
}

// MySQLSlowRecord renders one multi-line slow-query-log record. The
// propagated request ID rides in a SQL comment, exactly as Appendix A
// describes ("SELECT ... /*ID=XXX*/").
func MySQLSlowRecord(connID int, ua, ud time.Time, rowsSent, rowsExamined int,
	sql, id string, q int) string {
	qt := ud.Sub(ua).Seconds()
	stmt := sql
	if id != "" {
		stmt = fmt.Sprintf("%s /*ID=%s q=%d*/", sql, id, q)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "# Time: %s\n", ua.UTC().Format(mysqlTimeLayout))
	fmt.Fprintf(&b, "# User@Host: rubbos[rubbos] @ cjdbc [10.0.0.23]  Id: %5d\n", connID)
	fmt.Fprintf(&b, "# Query_time: %.6f  Lock_time: 0.000010 Rows_sent: %d  Rows_examined: %d\n",
		qt, rowsSent, rowsExamined)
	fmt.Fprintf(&b, "SET timestamp=%d;\n", ua.Unix())
	fmt.Fprintf(&b, "%s;\n", stmt)
	return b.String()
}
