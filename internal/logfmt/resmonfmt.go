package logfmt

import (
	"fmt"
	"strings"
	"time"

	"github.com/gt-elba/milliscope/internal/resources"
)

// sarClockLayout is the per-row timestamp, extended to milliseconds (the
// paper patches its monitors for high-frequency sampling).
const sarClockLayout = "15:04:05.000"

// SARHeader returns the sysstat file banner.
func SARHeader(host string, cores int, date time.Time) string {
	return fmt.Sprintf("Linux 3.10.0-327.el7.x86_64 (%s) \t%s \t_x86_64_\t(%d CPU)\n",
		host, date.Format("01/02/2006"), cores)
}

// SARCPUColumns returns the column-header row SAR reprints periodically.
func SARCPUColumns(ts time.Time) string {
	return fmt.Sprintf("%s    CPU     %%user     %%nice   %%system   %%iowait    %%steal     %%idle",
		ts.Format(sarClockLayout))
}

// SARCPURow renders one interval report row.
func SARCPURow(ts time.Time, iv resources.Interval) string {
	return fmt.Sprintf("%s    all    %6.2f      0.00    %6.2f    %6.2f      0.00    %6.2f",
		ts.Format(sarClockLayout), iv.UserPct, iv.SystemPct, iv.IOWaitPct, iv.IdlePct)
}

// SARXMLOpen returns the document preamble of `sadf -x`-style output.
func SARXMLOpen(host string, cores int, date time.Time) string {
	return fmt.Sprintf("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n"+
		"<sysstat>\n <host nodename=\"%s\" cpu-count=\"%d\" date=\"%s\">\n  <statistics>\n",
		host, cores, date.Format("2006-01-02"))
}

// SARXMLTimestamp renders one <timestamp> element with a cpu-load record.
func SARXMLTimestamp(ts time.Time, iv resources.Interval) string {
	return fmt.Sprintf("   <timestamp date=\"%s\" time=\"%s\">\n"+
		"    <cpu-load>\n"+
		"     <cpu number=\"all\" user=\"%.2f\" nice=\"0.00\" system=\"%.2f\" iowait=\"%.2f\" steal=\"0.00\" idle=\"%.2f\"/>\n"+
		"    </cpu-load>\n"+
		"    <queue runq-sz=\"%d\"/>\n"+
		"   </timestamp>\n",
		ts.Format("2006-01-02"), ts.Format(sarClockLayout),
		iv.UserPct, iv.SystemPct, iv.IOWaitPct, iv.IdlePct, iv.RunQueue)
}

// SARXMLClose returns the document epilogue.
func SARXMLClose() string {
	return "  </statistics>\n </host>\n</sysstat>\n"
}

// IostatHeader returns the iostat banner.
func IostatHeader(host string, cores int, date time.Time) string {
	return fmt.Sprintf("Linux 3.10.0-327.el7.x86_64 (%s) \t%s \t_x86_64_\t(%d CPU)\n",
		host, date.Format("01/02/2006"), cores)
}

// IostatReport renders one `iostat -tx` interval report: timestamp line,
// avg-cpu block, and device block. The multi-block shape is what makes the
// iostat parser's positional line rules necessary.
func IostatReport(ts time.Time, dev string, iv resources.Interval) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", ts.Format("01/02/2006 15:04:05.000"))
	b.WriteString("avg-cpu:  %user   %nice %system %iowait  %steal   %idle\n")
	fmt.Fprintf(&b, "         %6.2f    0.00  %6.2f  %6.2f    0.00  %6.2f\n",
		iv.UserPct, iv.SystemPct, iv.IOWaitPct, iv.IdlePct)
	b.WriteString("\n")
	b.WriteString("Device:         rrqm/s   wrqm/s     r/s     w/s    rkB/s    wkB/s avgrq-sz avgqu-sz   await r_await w_await  svctm  %util\n")
	avgrq := 0.0
	if ops := iv.DiskReadOpsPS + iv.DiskWriteOpsPS; ops > 0 {
		avgrq = 2 * (iv.DiskReadKBPS + iv.DiskWriteKBPS) / ops // sectors
	}
	fmt.Fprintf(&b, "%-14s %8.2f %8.2f %7.2f %7.2f %8.2f %8.2f %8.2f %8.2f %7.2f %7.2f %7.2f %6.2f %6.2f\n",
		dev, 0.0, 0.0, iv.DiskReadOpsPS, iv.DiskWriteOpsPS,
		iv.DiskReadKBPS, iv.DiskWriteKBPS, avgrq, iv.DiskAvgQueue,
		awaitMS(iv), awaitMS(iv), awaitMS(iv), svctmMS(iv), iv.DiskUtilPct)
	b.WriteString("\n")
	return b.String()
}

func awaitMS(iv resources.Interval) float64 {
	ops := iv.DiskReadOpsPS + iv.DiskWriteOpsPS
	if ops <= 0 {
		return 0
	}
	// Average residence = queue integral / throughput (Little's law).
	return iv.DiskAvgQueue / ops * 1000
}

func svctmMS(iv resources.Interval) float64 {
	ops := iv.DiskReadOpsPS + iv.DiskWriteOpsPS
	if ops <= 0 {
		return 0
	}
	return iv.DiskUtilPct / 100 / ops * 1000
}

// PidstatColumns returns the per-process column header pidstat reprints.
func PidstatColumns(ts time.Time) string {
	return fmt.Sprintf("%s      UID       PID    %%usr %%system  %%guest    %%CPU   CPU  Command",
		ts.Format(sarClockLayout))
}

// PidstatRow renders one per-process sample row.
func PidstatRow(ts time.Time, uid, pid int, usr, system, cpuPct float64, core int, cmd string) string {
	return fmt.Sprintf("%s %8d %9d %7.2f %7.2f    0.00 %7.2f %5d  %s",
		ts.Format(sarClockLayout), uid, pid, usr, system, cpuPct, core, cmd)
}

// CollectlPlainHeader returns the two banner lines of `collectl -sCDM`.
func CollectlPlainHeader() string {
	return "#<--------CPU--------><----------Disks-----------><-----------Memory----------->\n" +
		"#Time          User% Sys% Wait%  KBRead Reads KBWrit Writes    Free   Dirty\n"
}

// CollectlPlainRow renders one brief-format sample row.
func CollectlPlainRow(ts time.Time, iv resources.Interval) string {
	return fmt.Sprintf("%s %6.1f %4.1f %5.1f %7.0f %5.0f %6.0f %6.0f %7.0f %7.0f",
		ts.Format(sarClockLayout), iv.UserPct, iv.SystemPct, iv.IOWaitPct,
		iv.DiskReadKBPS, iv.DiskReadOpsPS, iv.DiskWriteKBPS, iv.DiskWriteOpsPS,
		iv.MemFreeKB, iv.MemDirtyKB)
}

// CollectlCSVHeader returns the `collectl -P` plot-format header. The MHz
// gauge column (the cpufreq subsystem) lets the analysis layer spot DVFS
// downclocking, one of the VSB root causes the paper's related work lists.
func CollectlCSVHeader() string {
	return "#Date,Time,[CPU]User%,[CPU]Sys%,[CPU]Wait%,[CPU]Idle%,[CPU]MHz," +
		"[DSK]ReadKBTot,[DSK]WriteKBTot,[DSK]ReadTot,[DSK]WriteTot,[DSK]Util%," +
		"[MEM]Free,[MEM]Buf,[MEM]Cached,[MEM]Dirty,[NET]RxKBTot,[NET]TxKBTot\n"
}

// CollectlCSVRow renders one plot-format sample.
func CollectlCSVRow(ts time.Time, iv resources.Interval) string {
	return fmt.Sprintf("%s,%s,%.2f,%.2f,%.2f,%.2f,%.0f,%.1f,%.1f,%.1f,%.1f,%.2f,%.0f,%.0f,%.0f,%.0f,%.1f,%.1f",
		ts.Format("20060102"), ts.Format(sarClockLayout),
		iv.UserPct, iv.SystemPct, iv.IOWaitPct, iv.IdlePct, iv.CPUMHz,
		iv.DiskReadKBPS, iv.DiskWriteKBPS, iv.DiskReadOpsPS, iv.DiskWriteOpsPS, iv.DiskUtilPct,
		iv.MemFreeKB, iv.MemBuffKB, iv.MemCachedKB, iv.MemDirtyKB,
		iv.NetRxKBPS, iv.NetTxKBPS)
}
