package logfmt

import (
	"regexp"
	"strings"
	"testing"
	"time"

	"github.com/gt-elba/milliscope/internal/resources"
)

var (
	wallUA = time.Date(2017, 4, 1, 0, 0, 12, 345678000, time.UTC)
	wallUD = wallUA.Add(2123 * time.Microsecond)
	wallDS = wallUA.Add(400 * time.Microsecond)
	wallDR = wallUA.Add(1900 * time.Microsecond)
)

func TestApacheAccessShape(t *testing.T) {
	line := ApacheAccess("10.0.0.100", "GET", "/rubbos/ViewStory?ID=req-0000000123",
		200, 18432, wallUA, wallUD, wallDS, wallDR)
	re := regexp.MustCompile(`^\S+ - - \[\d{2}/\w{3}/\d{4}:\d{2}:\d{2}:\d{2}\.\d{3} [+-]\d{4}\] "GET \S+ HTTP/1\.1" 200 18432 D=2123 UA=\d+ UD=\d+ DS=\d+ DR=\d+$`)
	if !re.MatchString(line) {
		t.Fatalf("access line shape mismatch:\n%s", line)
	}
	if !strings.Contains(line, "ID=req-0000000123") {
		t.Fatal("request ID missing from URL")
	}
	if !strings.Contains(line, "[01/Apr/2017:00:00:12.345 +0000]") {
		t.Fatalf("timestamp wrong: %s", line)
	}
}

func TestApacheAccessDashWhenNoDownstream(t *testing.T) {
	line := ApacheAccess("10.0.0.100", "GET", "/x", 200, 1, wallUA, wallUD,
		time.Time{}, time.Time{})
	if !strings.Contains(line, "DS=- DR=-") {
		t.Fatalf("zero DS/DR not rendered as dashes: %s", line)
	}
}

func TestTomcatLineShape(t *testing.T) {
	line := TomcatLine(12, "req-0000000123", "/rubbos/ViewStory", wallUA, wallUD, wallDS, wallDR)
	re := regexp.MustCompile(`^\d{4}-\d{2}-\d{2} \d{2}:\d{2}:\d{2}\.\d{3} \[ajp-nio-8009-exec-12\] INFO  mScope - id=req-\d{10} uri=\S+ ua=\d+ ud=\d+ ds=\d+ dr=\d+$`)
	if !re.MatchString(line) {
		t.Fatalf("tomcat line shape mismatch:\n%s", line)
	}
}

func TestCJDBCLineShape(t *testing.T) {
	line := CJDBCLine("rubbos", "req-0000000123", 1, wallUA, wallUD, wallDS, wallDR,
		"SELECT id FROM stories WHERE id=?")
	re := regexp.MustCompile(`^\[cjdbc-ctrl\] \d+\.\d{6} vdb=rubbos req=req-\d{10} q=1 ua=\d+ ud=\d+ ds=\d+ dr=\d+ sql=".+"$`)
	if !re.MatchString(line) {
		t.Fatalf("cjdbc line shape mismatch:\n%s", line)
	}
}

func TestMySQLSlowRecordShape(t *testing.T) {
	rec := MySQLSlowRecord(45, wallUA, wallUD, 1, 100,
		"SELECT id,title FROM stories WHERE id=?", "req-0000000123", 0)
	lines := strings.Split(strings.TrimSuffix(rec, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("slow record has %d lines, want 5:\n%s", len(lines), rec)
	}
	if !strings.HasPrefix(lines[0], "# Time: 2017-04-01T00:00:12.345678Z") {
		t.Fatalf("time line wrong: %s", lines[0])
	}
	if !strings.Contains(lines[2], "Query_time: 0.002123") {
		t.Fatalf("query time wrong: %s", lines[2])
	}
	if !strings.HasPrefix(lines[3], "SET timestamp=") {
		t.Fatalf("set-timestamp line wrong: %s", lines[3])
	}
	if !strings.HasSuffix(lines[4], "/*ID=req-0000000123 q=0*/;") {
		t.Fatalf("ID comment missing: %s", lines[4])
	}
}

func TestMySQLSlowRecordWithoutID(t *testing.T) {
	rec := MySQLSlowRecord(45, wallUA, wallUD, 1, 100, "SELECT 1", "", 0)
	if strings.Contains(rec, "/*ID=") {
		t.Fatal("ID comment present with empty ID")
	}
}

func TestMySQLHeaderThreeLines(t *testing.T) {
	h := MySQLHeader()
	if n := strings.Count(h, "\n"); n != 3 {
		t.Fatalf("header has %d lines, want 3", n)
	}
}

func sampleInterval() resources.Interval {
	return resources.Interval{
		UserPct: 12.34, SystemPct: 3.21, IOWaitPct: 1.05, IdlePct: 83.40,
		DiskReadOpsPS: 0.5, DiskWriteOpsPS: 45.2,
		DiskReadKBPS: 8, DiskWriteKBPS: 1024, DiskUtilPct: 29.4, DiskAvgQueue: 0.12,
		MemFreeKB: 1234567, MemBuffKB: 32768, MemCachedKB: 654321, MemDirtyKB: 1234,
		NetRxKBPS: 34.5, NetTxKBPS: 231.2, RunQueue: 3,
	}
}

func TestSARTextShape(t *testing.T) {
	h := SARHeader("apache", 8, wallUA)
	if !strings.Contains(h, "(apache)") || !strings.Contains(h, "(8 CPU)") {
		t.Fatalf("sar header wrong: %s", h)
	}
	cols := SARCPUColumns(wallUA)
	if !strings.Contains(cols, "%user") || !strings.Contains(cols, "%iowait") {
		t.Fatalf("sar columns wrong: %s", cols)
	}
	row := SARCPURow(wallUA, sampleInterval())
	re := regexp.MustCompile(`^\d{2}:\d{2}:\d{2}\.\d{3}    all\s+12\.34\s+0\.00\s+3\.21\s+1\.05\s+0\.00\s+83\.40$`)
	if !re.MatchString(row) {
		t.Fatalf("sar row shape mismatch:\n%q", row)
	}
}

func TestSARXMLWellFormed(t *testing.T) {
	doc := SARXMLOpen("tomcat", 8, wallUA) +
		SARXMLTimestamp(wallUA, sampleInterval()) +
		SARXMLClose()
	for _, want := range []string{
		`nodename="tomcat"`, `user="12.34"`, `iowait="1.05"`,
		`time="00:00:12.345"`, `runq-sz="3"`, "</sysstat>",
	} {
		if !strings.Contains(doc, want) {
			t.Fatalf("sar xml missing %q:\n%s", want, doc)
		}
	}
}

func TestIostatReportShape(t *testing.T) {
	rep := IostatReport(wallUA, "sda", sampleInterval())
	lines := strings.Split(strings.TrimRight(rep, "\n"), "\n")
	if len(lines) < 6 {
		t.Fatalf("iostat report has %d lines:\n%s", len(lines), rep)
	}
	if !strings.HasPrefix(lines[0], "04/01/2017 00:00:12.345") {
		t.Fatalf("timestamp line wrong: %s", lines[0])
	}
	if !strings.HasPrefix(lines[1], "avg-cpu:") {
		t.Fatalf("avg-cpu line wrong: %s", lines[1])
	}
	if !strings.HasPrefix(lines[5], "sda") {
		t.Fatalf("device line wrong: %s", lines[5])
	}
	if !strings.Contains(lines[5], "29.40") {
		t.Fatalf("util missing from device line: %s", lines[5])
	}
}

func TestCollectlPlainShape(t *testing.T) {
	h := CollectlPlainHeader()
	if !strings.HasPrefix(h, "#<") {
		t.Fatalf("plain header wrong: %s", h)
	}
	row := CollectlPlainRow(wallUA, sampleInterval())
	if !strings.HasPrefix(row, "00:00:12.345") {
		t.Fatalf("plain row timestamp wrong: %s", row)
	}
	fields := strings.Fields(row)
	if len(fields) != 10 {
		t.Fatalf("plain row has %d fields, want 10: %s", len(fields), row)
	}
}

func TestCollectlCSVShape(t *testing.T) {
	h := strings.TrimSuffix(CollectlCSVHeader(), "\n")
	row := CollectlCSVRow(wallUA, sampleInterval())
	hc := strings.Count(h, ",")
	rc := strings.Count(row, ",")
	if hc != rc {
		t.Fatalf("csv header has %d commas, row has %d:\n%s\n%s", hc, rc, h, row)
	}
	if !strings.HasPrefix(row, "20170401,00:00:12.345,") {
		t.Fatalf("csv row prefix wrong: %s", row)
	}
	if !strings.Contains(h, "[MEM]Dirty") {
		t.Fatal("csv header missing dirty-page column")
	}
}
