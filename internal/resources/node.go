package resources

import (
	"fmt"
	"time"

	"github.com/gt-elba/milliscope/internal/des"
	"github.com/gt-elba/milliscope/internal/simtime"
)

// NodeConfig describes one machine in the testbed.
type NodeConfig struct {
	Name        string
	Cores       int
	Disk        DiskConfig
	Memory      MemoryConfig
	ClockOffset time.Duration // simulated NTP error for this node's clock
}

// Node bundles a machine's CPU, disk, memory and network counters, and
// integrates the iowait accounting that SAR reports: at every instant, idle
// cores are charged to iowait up to the number of operations outstanding on
// the disk, exactly the kernel's nr_iowait bookkeeping.
type Node struct {
	eng  *des.Engine
	cfg  NodeConfig
	CPU  *CPU
	Disk *Disk
	Mem  *Memory

	lastChange des.Time
	iowaitInt  float64 // core-ns charged to iowait

	netRxBytes float64
	netTxBytes float64
	netRxPkts  uint64
	netTxPkts  uint64
}

// NewNode constructs a node and wires the iowait accountant to its CPU and
// disk change hooks.
func NewNode(eng *des.Engine, cfg NodeConfig) *Node {
	if cfg.Name == "" {
		panic("resources: node with empty name")
	}
	n := &Node{eng: eng, cfg: cfg}
	n.CPU = NewCPU(eng, cfg.Name+"/cpu", cfg.Cores)
	n.Disk = NewDisk(eng, cfg.Name+"/disk", cfg.Disk)
	n.Mem = NewMemory(eng, cfg.Name+"/mem", cfg.Memory, n.CPU, n.Disk)
	n.CPU.OnChange(n.account)
	n.Disk.OnChange(n.account)
	return n
}

// Name returns the node's hostname.
func (n *Node) Name() string { return n.cfg.Name }

// Config returns the node's configuration.
func (n *Node) Config() NodeConfig { return n.cfg }

// Wall converts a virtual time to this node's (possibly skewed) wall clock.
func (n *Node) Wall(t des.Time) time.Time {
	return simtime.Wall(t, n.cfg.ClockOffset)
}

// Now returns the node's current wall-clock reading.
func (n *Node) Now() time.Time { return n.Wall(n.eng.Now()) }

// account integrates iowait over the interval since the last state change:
// idle cores are charged to iowait up to the count of outstanding disk
// operations.
func (n *Node) account() {
	now := n.eng.Now()
	dt := float64(now - n.lastChange)
	if dt > 0 {
		idle := n.cfg.Cores - n.CPU.BusyCores()
		blocked := n.Disk.Pending()
		iow := idle
		if blocked < iow {
			iow = blocked
		}
		if iow > 0 {
			n.iowaitInt += dt * float64(iow)
		}
	}
	n.lastChange = now
}

// NetSend charges transmitted bytes to the node's NIC counters.
func (n *Node) NetSend(bytes int) {
	if bytes < 0 {
		panic(fmt.Sprintf("resources: negative tx size %d", bytes))
	}
	n.netTxBytes += float64(bytes)
	n.netTxPkts += uint64(1 + bytes/1448)
}

// NetRecv charges received bytes to the node's NIC counters.
func (n *Node) NetRecv(bytes int) {
	if bytes < 0 {
		panic(fmt.Sprintf("resources: negative rx size %d", bytes))
	}
	n.netRxBytes += float64(bytes)
	n.netRxPkts += uint64(1 + bytes/1448)
}

// CPUTimes is a cumulative core-time snapshot in core-nanoseconds, the
// /proc/stat analogue. Idle is derived so the classes always sum to
// cores * elapsed. Flusher is kernel writeback/recycling work, reported
// inside System by system-level tools and separately by pidstat.
type CPUTimes struct {
	User    float64
	System  float64
	Flusher float64
	IOWait  float64
	Idle    float64
}

// Snapshot is a point-in-time cumulative counter dump; monitors difference
// successive snapshots to produce interval reports.
type Snapshot struct {
	At  des.Time
	CPU CPUTimes

	DiskReadOps   uint64
	DiskWriteOps  uint64
	DiskReadKB    float64
	DiskWriteKB   float64
	DiskBusyNS    float64
	DiskQueueIntg float64

	MemTotalKB  float64
	MemFreeKB   float64
	MemBuffKB   float64
	MemCachedKB float64
	MemDirtyKB  float64

	NetRxBytes float64
	NetTxBytes float64
	NetRxPkts  uint64
	NetTxPkts  uint64

	RunQueue int
	// CPUSpeed is the instantaneous clock multiplier (1.0 nominal); DVFS
	// injection lowers it, and the frequency gauge in the monitors
	// exposes it.
	CPUSpeed float64
}

// Snap returns the node's cumulative counters at the current instant.
func (n *Node) Snap() Snapshot {
	n.account()
	user, sys, flush := n.CPU.Times()
	elapsed := float64(n.eng.Now()) * float64(n.cfg.Cores)
	idle := elapsed - user - sys - flush - n.iowaitInt
	if idle < 0 {
		idle = 0
	}
	s := Snapshot{
		At: n.eng.Now(),
		CPU: CPUTimes{User: user, System: sys, Flusher: flush,
			IOWait: n.iowaitInt, Idle: idle},

		DiskBusyNS:    n.Disk.BusyIntegral(),
		DiskQueueIntg: n.Disk.WaitIntegral(),

		NetRxBytes: n.netRxBytes,
		NetTxBytes: n.netTxBytes,
		NetRxPkts:  n.netRxPkts,
		NetTxPkts:  n.netTxPkts,

		RunQueue: n.CPU.RunQueue(),
		CPUSpeed: n.CPU.Speed(),
	}
	s.DiskReadOps, s.DiskWriteOps, s.DiskReadKB, s.DiskWriteKB = diskCounters(n.Disk)
	s.MemTotalKB, s.MemFreeKB, s.MemBuffKB, s.MemCachedKB, s.MemDirtyKB = n.Mem.Counters()
	return s
}

func diskCounters(d *Disk) (uint64, uint64, float64, float64) {
	ro, wo, rk, wk := d.Counters()
	return ro, wo, rk, wk
}

// Interval summarizes the delta between two snapshots as the percentage and
// rate metrics the monitoring tools print.
type Interval struct {
	Start, End des.Time

	UserPct   float64
	SystemPct float64
	IOWaitPct float64
	IdlePct   float64

	DiskReadOpsPS  float64
	DiskWriteOpsPS float64
	DiskReadKBPS   float64
	DiskWriteKBPS  float64
	DiskUtilPct    float64
	DiskAvgQueue   float64

	MemFreeKB   float64
	MemBuffKB   float64
	MemCachedKB float64
	MemDirtyKB  float64

	NetRxKBPS float64
	NetTxKBPS float64

	RunQueue int
	// CPUMHz is the sampled clock frequency (nominal 2100 MHz scaled by
	// the DVFS multiplier at sample time).
	CPUMHz float64
	// FlusherPct is the kernel-flusher share already included in
	// SystemPct; the per-process monitor reports it as its own row.
	FlusherPct float64
}

// NominalMHz is the modelled nominal clock frequency.
const NominalMHz = 2100.0

// Diff converts two cumulative snapshots into an interval report.
func Diff(a, b Snapshot, cores int) Interval {
	dt := float64(b.At - a.At)
	iv := Interval{Start: a.At, End: b.At,
		MemFreeKB: b.MemFreeKB, MemBuffKB: b.MemBuffKB,
		MemCachedKB: b.MemCachedKB, MemDirtyKB: b.MemDirtyKB,
		RunQueue: b.RunQueue,
		CPUMHz:   b.CPUSpeed * NominalMHz,
	}
	if dt <= 0 {
		return iv
	}
	coreNS := dt * float64(cores)
	iv.UserPct = 100 * (b.CPU.User - a.CPU.User) / coreNS
	// System-level tools fold kernel flusher time into system time.
	iv.FlusherPct = 100 * (b.CPU.Flusher - a.CPU.Flusher) / coreNS
	iv.SystemPct = 100*(b.CPU.System-a.CPU.System)/coreNS + iv.FlusherPct
	iv.IOWaitPct = 100 * (b.CPU.IOWait - a.CPU.IOWait) / coreNS
	iv.IdlePct = 100 - iv.UserPct - iv.SystemPct - iv.IOWaitPct
	if iv.IdlePct < 0 {
		iv.IdlePct = 0
	}
	secs := dt / float64(time.Second)
	iv.DiskReadOpsPS = float64(b.DiskReadOps-a.DiskReadOps) / secs
	iv.DiskWriteOpsPS = float64(b.DiskWriteOps-a.DiskWriteOps) / secs
	iv.DiskReadKBPS = (b.DiskReadKB - a.DiskReadKB) / secs
	iv.DiskWriteKBPS = (b.DiskWriteKB - a.DiskWriteKB) / secs
	iv.DiskUtilPct = 100 * (b.DiskBusyNS - a.DiskBusyNS) / dt
	iv.DiskAvgQueue = (b.DiskQueueIntg - a.DiskQueueIntg) / dt
	iv.NetRxKBPS = (b.NetRxBytes - a.NetRxBytes) / 1024 / secs
	iv.NetTxKBPS = (b.NetTxBytes - a.NetTxBytes) / 1024 / secs
	return iv
}
