// Package resources models the per-node hardware the simulated testbed
// runs on: multi-core CPUs with user/system accounting, FIFO disks with
// seek + bandwidth service times, and a memory dirty-page subsystem with a
// background flusher. Each model exposes cumulative counters in the same
// shape the Linux kernel exposes through /proc, so the simulated SAR,
// iostat and collectl monitors can difference successive snapshots exactly
// like their real counterparts.
package resources

import (
	"fmt"
	"time"

	"github.com/gt-elba/milliscope/internal/des"
)

// Mode classifies CPU execution for accounting, mirroring the kernel's
// user/system split that SAR reports.
type Mode int

// CPU execution modes. ModeFlusher is kernel writeback/recycling work —
// the kernel reports it inside system time, but the per-process monitor
// (pidstat) attributes it to the flusher thread, which is how a diagnosis
// can see *who* is burning the CPU.
const (
	ModeUser Mode = iota + 1
	ModeSystem
	ModeFlusher
)

// CPU is a multi-core processor. Work is admitted FIFO onto cores; when all
// cores are busy, additional work queues, which is how CPU saturation
// stretches service times in the simulated tiers.
type CPU struct {
	eng   *des.Engine
	res   *des.Resource
	cores int

	// speed scales demand into occupancy: occupancy = demand / speed.
	// DVFS injection lowers speed below 1.0.
	speed float64

	busy       [4]int // indexed by Mode; [0] unused
	lastChange des.Time
	modeInt    [4]float64 // integral of busy cores per mode, core-ns

	onChange func()
}

// NewCPU returns a CPU with the given core count.
func NewCPU(eng *des.Engine, name string, cores int) *CPU {
	if cores <= 0 {
		panic(fmt.Sprintf("resources: cpu %q with %d cores", name, cores))
	}
	return &CPU{
		eng:   eng,
		res:   des.NewResource(eng, name, cores),
		cores: cores,
		speed: 1.0,
	}
}

// Cores returns the core count.
func (c *CPU) Cores() int { return c.cores }

// SetSpeed sets the clock-speed multiplier (DVFS). speed must be positive;
// 1.0 is nominal. Work already executing is unaffected — only newly
// admitted slices see the new speed, which approximates frequency ramps.
func (c *CPU) SetSpeed(speed float64) {
	if speed <= 0 {
		panic(fmt.Sprintf("resources: non-positive cpu speed %v", speed))
	}
	c.speed = speed
}

// Speed returns the current clock-speed multiplier.
func (c *CPU) Speed() float64 { return c.speed }

// OnChange registers a hook invoked whenever busy-core occupancy changes.
// The node-level accountant uses it to integrate iowait.
func (c *CPU) OnChange(fn func()) { c.onChange = fn }

// BusyCores returns the number of cores currently executing.
func (c *CPU) BusyCores() int {
	return c.busy[ModeUser] + c.busy[ModeSystem] + c.busy[ModeFlusher]
}

// RunQueue returns the number of tasks waiting for a core.
func (c *CPU) RunQueue() int { return c.res.QueueLen() }

func (c *CPU) account() {
	now := c.eng.Now()
	dt := float64(now - c.lastChange)
	if dt > 0 {
		c.modeInt[ModeUser] += dt * float64(c.busy[ModeUser])
		c.modeInt[ModeSystem] += dt * float64(c.busy[ModeSystem])
		c.modeInt[ModeFlusher] += dt * float64(c.busy[ModeFlusher])
	}
	c.lastChange = now
}

// Exec runs demand worth of work in the given mode, calling done when the
// work completes. If all cores are busy the work queues FIFO. The demand is
// divided by the current speed multiplier at admission time.
func (c *CPU) Exec(demand time.Duration, mode Mode, done func()) {
	if demand < 0 {
		panic(fmt.Sprintf("resources: negative cpu demand %v", demand))
	}
	if mode < ModeUser || mode > ModeFlusher {
		panic(fmt.Sprintf("resources: invalid cpu mode %d", mode))
	}
	c.res.Acquire(func() {
		// Integrate the pre-change state up to this instant before
		// mutating occupancy, both here and in the node accountant.
		if c.onChange != nil {
			c.onChange()
		}
		c.account()
		c.busy[mode]++
		hold := time.Duration(float64(demand) / c.speed)
		c.eng.After(hold, func() {
			if c.onChange != nil {
				c.onChange()
			}
			c.account()
			c.busy[mode]--
			c.res.Release()
			if done != nil {
				done()
			}
		})
	})
}

// Times returns cumulative core-time integrals (core-nanoseconds) per
// mode, updated to the current instant. Samplers difference successive
// readings. Flusher time is kernel work that system-level tools fold into
// system time.
func (c *CPU) Times() (user, system, flusher float64) {
	c.account()
	return c.modeInt[ModeUser], c.modeInt[ModeSystem], c.modeInt[ModeFlusher]
}

// Utilization returns whole-run mean utilization across all cores.
func (c *CPU) Utilization() float64 {
	c.account()
	total := float64(c.eng.Now()) * float64(c.cores)
	if total <= 0 {
		return 0
	}
	return (c.modeInt[ModeUser] + c.modeInt[ModeSystem] + c.modeInt[ModeFlusher]) / total
}
