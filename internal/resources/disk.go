package resources

import (
	"fmt"
	"time"

	"github.com/gt-elba/milliscope/internal/des"
)

// DiskConfig sets the service-time model of a Disk: every operation costs
// SeekTime plus transfer time at BandwidthMBps.
type DiskConfig struct {
	// SeekTime is the fixed per-operation latency (positioning + controller).
	SeekTime time.Duration
	// BandwidthMBps is the sequential transfer rate in MB/s.
	BandwidthMBps float64
}

// DefaultDiskConfig models a 7.2k-rpm SATA disk of the paper's era.
func DefaultDiskConfig() DiskConfig {
	return DiskConfig{SeekTime: 4 * time.Millisecond, BandwidthMBps: 120}
}

// Disk is a single-spindle FIFO device. Synchronous operations (database
// commits, redo-log flushes) occupy the spindle and block their caller;
// asynchronous writeback submitted by the memory flusher also occupies the
// spindle but blocks nobody. Cumulative counters mirror /proc/diskstats.
type Disk struct {
	eng *des.Engine
	res *des.Resource
	cfg DiskConfig

	readOps  uint64
	writeOps uint64
	readKB   float64
	writeKB  float64

	onChange func()
}

// NewDisk returns a disk with the given service-time model.
func NewDisk(eng *des.Engine, name string, cfg DiskConfig) *Disk {
	if cfg.SeekTime < 0 || cfg.BandwidthMBps <= 0 {
		panic(fmt.Sprintf("resources: invalid disk config %+v", cfg))
	}
	return &Disk{eng: eng, res: des.NewResource(eng, name, 1), cfg: cfg}
}

// OnChange registers a hook invoked when the disk's busy/queue state
// changes; the node accountant integrates iowait from it.
func (d *Disk) OnChange(fn func()) { d.onChange = fn }

// Busy reports whether the spindle is currently servicing an operation.
func (d *Disk) Busy() bool { return d.res.InUse() > 0 }

// QueueLen returns the number of queued (not yet serviced) operations.
func (d *Disk) QueueLen() int { return d.res.QueueLen() }

// Pending returns in-service plus queued operations, the avgqu-sz analogue.
func (d *Disk) Pending() int { return d.res.InUse() + d.res.QueueLen() }

func (d *Disk) serviceTime(bytes int) time.Duration {
	transfer := time.Duration(float64(bytes) / (d.cfg.BandwidthMBps * 1e6) * float64(time.Second))
	return d.cfg.SeekTime + transfer
}

func (d *Disk) op(bytes int, write bool, done func()) {
	if bytes < 0 {
		panic(fmt.Sprintf("resources: negative disk op size %d", bytes))
	}
	// Integrate pre-change state before the queue/occupancy mutates.
	if d.onChange != nil {
		d.onChange()
	}
	d.res.Acquire(func() {
		d.eng.After(d.serviceTime(bytes), func() {
			if d.onChange != nil {
				d.onChange()
			}
			if write {
				d.writeOps++
				d.writeKB += float64(bytes) / 1024
			} else {
				d.readOps++
				d.readKB += float64(bytes) / 1024
			}
			d.res.Release()
			if done != nil {
				done()
			}
		})
	})
}

// Read performs a synchronous read of the given size, calling done on
// completion.
func (d *Disk) Read(bytes int, done func()) { d.op(bytes, false, done) }

// Write performs a synchronous write of the given size, calling done on
// completion. Database commits and redo-log flushes use this path.
func (d *Disk) Write(bytes int, done func()) { d.op(bytes, true, done) }

// WriteAsync submits background writeback; nothing waits on it but it
// occupies the spindle and counts toward write throughput. Log-file
// flushing and dirty-page writeback use this path.
func (d *Disk) WriteAsync(bytes int) { d.op(bytes, true, nil) }

// Counters returns cumulative operation counts and kilobytes transferred.
func (d *Disk) Counters() (readOps, writeOps uint64, readKB, writeKB float64) {
	return d.readOps, d.writeOps, d.readKB, d.writeKB
}

// BusyIntegral returns the integral of spindle busy time (unit-ns), the
// basis for interval %util exactly as iostat computes it.
func (d *Disk) BusyIntegral() float64 { return d.res.BusyIntegral() }

// WaitIntegral returns the integral of queue length over time, the basis
// for avgqu-sz.
func (d *Disk) WaitIntegral() float64 { return d.res.WaitIntegral() }

// Utilization returns whole-run mean spindle utilization.
func (d *Disk) Utilization() float64 { return d.res.Utilization() }
