package resources

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"github.com/gt-elba/milliscope/internal/des"
)

func testNode(eng *des.Engine, cores int) *Node {
	return NewNode(eng, NodeConfig{
		Name:   "test1",
		Cores:  cores,
		Disk:   DefaultDiskConfig(),
		Memory: DefaultMemoryConfig(),
	})
}

func TestCPUExecCompletesAfterDemand(t *testing.T) {
	eng := des.NewEngine()
	cpu := NewCPU(eng, "cpu", 2)
	var doneAt des.Time
	cpu.Exec(10*time.Millisecond, ModeUser, func() { doneAt = eng.Now() })
	eng.Run()
	if doneAt != 10*time.Millisecond {
		t.Fatalf("exec completed at %v, want 10ms", doneAt)
	}
}

func TestCPUContentionQueues(t *testing.T) {
	eng := des.NewEngine()
	cpu := NewCPU(eng, "cpu", 1)
	var order []int
	for i := 0; i < 3; i++ {
		i := i
		cpu.Exec(5*time.Millisecond, ModeUser, func() { order = append(order, i) })
	}
	if cpu.RunQueue() != 2 {
		t.Fatalf("run queue %d, want 2", cpu.RunQueue())
	}
	eng.Run()
	if eng.Now() != 15*time.Millisecond {
		t.Fatalf("3 serialized 5ms tasks finished at %v, want 15ms", eng.Now())
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("FIFO order violated: %v", order)
		}
	}
}

func TestCPUSpeedScalesDemand(t *testing.T) {
	eng := des.NewEngine()
	cpu := NewCPU(eng, "cpu", 1)
	cpu.SetSpeed(0.5) // DVFS: half frequency
	var doneAt des.Time
	cpu.Exec(10*time.Millisecond, ModeUser, func() { doneAt = eng.Now() })
	eng.Run()
	if doneAt != 20*time.Millisecond {
		t.Fatalf("half-speed exec completed at %v, want 20ms", doneAt)
	}
}

func TestCPUModeAccounting(t *testing.T) {
	eng := des.NewEngine()
	cpu := NewCPU(eng, "cpu", 4)
	cpu.Exec(10*time.Millisecond, ModeUser, nil)
	cpu.Exec(30*time.Millisecond, ModeSystem, nil)
	cpu.Exec(5*time.Millisecond, ModeFlusher, nil)
	eng.Run()
	user, sys, flush := cpu.Times()
	if got := time.Duration(user); got != 10*time.Millisecond {
		t.Fatalf("user time %v, want 10ms", got)
	}
	if got := time.Duration(sys); got != 30*time.Millisecond {
		t.Fatalf("system time %v, want 30ms", got)
	}
	if got := time.Duration(flush); got != 5*time.Millisecond {
		t.Fatalf("flusher time %v, want 5ms", got)
	}
}

func TestDiskServiceTime(t *testing.T) {
	eng := des.NewEngine()
	d := NewDisk(eng, "sda", DiskConfig{SeekTime: 4 * time.Millisecond, BandwidthMBps: 100})
	var doneAt des.Time
	d.Write(1_000_000, func() { doneAt = eng.Now() }) // 1MB at 100MB/s = 10ms + 4ms seek
	eng.Run()
	if doneAt != 14*time.Millisecond {
		t.Fatalf("1MB write completed at %v, want 14ms", doneAt)
	}
	_, wo, _, wk := d.Counters()
	if wo != 1 {
		t.Fatalf("write ops %d, want 1", wo)
	}
	if math.Abs(wk-976.5625) > 0.01 {
		t.Fatalf("write KB %v, want ~976.56", wk)
	}
}

func TestDiskFIFOAndUtilization(t *testing.T) {
	eng := des.NewEngine()
	d := NewDisk(eng, "sda", DiskConfig{SeekTime: 10 * time.Millisecond, BandwidthMBps: 1000})
	for i := 0; i < 5; i++ {
		d.WriteAsync(0)
	}
	eng.At(100*time.Millisecond, func() {})
	eng.Run()
	// 5 ops * 10ms = 50ms busy over 100ms => 50%.
	if u := d.Utilization(); math.Abs(u-0.5) > 0.01 {
		t.Fatalf("utilization %v, want 0.5", u)
	}
}

func TestMemoryFlushTriggersAtHighWater(t *testing.T) {
	eng := des.NewEngine()
	cpu := NewCPU(eng, "cpu", 2)
	disk := NewDisk(eng, "sda", DefaultDiskConfig())
	cfg := MemoryConfig{
		TotalKB: 1024 * 1024, HighWaterKB: 1000, LowWaterKB: 100,
		DrainKBps: 100 * 1024, FlushWorkers: 2, FlushSlice: time.Millisecond,
		WritebackFraction: 0.25,
	}
	m := NewMemory(eng, "mem", cfg, cpu, disk)
	var started, ended des.Time
	m.OnFlushStart = func(now des.Time, _ float64) { started = now }
	m.OnFlushEnd = func(now des.Time, _ float64) { ended = now }

	eng.At(10*time.Millisecond, func() { m.Dirty(2000 * 1024) }) // 2000KB > high water
	eng.Run()

	if m.Flushes() != 1 {
		t.Fatalf("flush episodes %d, want 1", m.Flushes())
	}
	if started != 10*time.Millisecond {
		t.Fatalf("flush started at %v, want 10ms", started)
	}
	if ended <= started {
		t.Fatalf("flush ended at %v, not after start %v", ended, started)
	}
	if m.DirtyKB() > cfg.LowWaterKB {
		t.Fatalf("dirty %vKB above low water after flush", m.DirtyKB())
	}
	// Draining ~1900KB at 100MB/s should take ~19ms of flusher work.
	dur := ended - started
	if dur < 10*time.Millisecond || dur > 60*time.Millisecond {
		t.Fatalf("flush duration %v outside plausible range", dur)
	}
}

func TestMemoryFlushSaturatesCPU(t *testing.T) {
	eng := des.NewEngine()
	node := NewNode(eng, NodeConfig{
		Name: "app1", Cores: 2, Disk: DefaultDiskConfig(),
		Memory: MemoryConfig{
			TotalKB: 1024 * 1024, HighWaterKB: 5000, LowWaterKB: 100,
			DrainKBps: 20 * 1024, FlushWorkers: 2, FlushSlice: time.Millisecond,
			WritebackFraction: 0,
		},
	})
	eng.At(0, func() { node.Mem.Dirty(6000 * 1024) })
	eng.RunUntil(50 * time.Millisecond)
	snapMid := node.Snap()
	flushPct := snapMid.CPU.Flusher / (float64(eng.Now()) * 2) * 100
	if flushPct < 90 {
		t.Fatalf("flusher CPU during recycling = %.1f%%, want >90%%", flushPct)
	}
	if snapMid.CPU.System > snapMid.CPU.Flusher/10 {
		t.Fatalf("recycling charged to system (%.0f) not flusher (%.0f)",
			snapMid.CPU.System, snapMid.CPU.Flusher)
	}
}

func TestMemoryThrottleWriteBlocksDuringFlush(t *testing.T) {
	eng := des.NewEngine()
	cpu := NewCPU(eng, "cpu", 2)
	disk := NewDisk(eng, "sda", DefaultDiskConfig())
	cfg := MemoryConfig{
		TotalKB: 1024 * 1024, HighWaterKB: 1000, LowWaterKB: 100,
		DrainKBps: 100 * 1024, FlushWorkers: 1, FlushSlice: time.Millisecond,
		WritebackFraction: 0,
	}
	m := NewMemory(eng, "mem", cfg, cpu, disk)
	var ranAt des.Time
	var flushEnd des.Time
	m.OnFlushEnd = func(now des.Time, _ float64) { flushEnd = now }

	eng.At(0, func() { m.Dirty(5000 * 1024) }) // start episode
	eng.At(des.Time(time.Millisecond), func() {
		if !m.Flushing() {
			t.Error("not flushing 1ms into episode")
		}
		m.ThrottleWrite(func() { ranAt = eng.Now() })
		if m.ThrottledWriters() != 1 {
			t.Errorf("throttled writers = %d, want 1", m.ThrottledWriters())
		}
	})
	eng.Run()
	if ranAt == 0 || ranAt != flushEnd {
		t.Fatalf("throttled writer ran at %v, flush ended %v", ranAt, flushEnd)
	}
	// Outside an episode the continuation runs inline.
	inline := false
	m.ThrottleWrite(func() { inline = true })
	if !inline {
		t.Fatal("ThrottleWrite blocked outside an episode")
	}
}

func TestNodeIOWaitAccounting(t *testing.T) {
	eng := des.NewEngine()
	node := testNode(eng, 2)
	// Idle CPU + busy disk for 100ms => iowait charged.
	node.Disk.Write(0, nil) // 4ms seek
	eng.At(4*time.Millisecond, func() {})
	eng.Run()
	snap := node.Snap()
	if snap.CPU.IOWait <= 0 {
		t.Fatal("no iowait charged while disk busy and CPU idle")
	}
	// At most 1 core charged (only 1 outstanding op).
	if got, limit := snap.CPU.IOWait, float64(4*time.Millisecond)+1; got > limit {
		t.Fatalf("iowait %v exceeds one core over busy window", time.Duration(got))
	}
}

func TestNodeIOWaitZeroWhenCPUBusy(t *testing.T) {
	eng := des.NewEngine()
	node := testNode(eng, 1)
	node.CPU.Exec(10*time.Millisecond, ModeUser, nil) // CPU fully busy
	node.Disk.Write(0, nil)                           // disk busy 4ms
	eng.Run()
	snap := node.Snap()
	if snap.CPU.IOWait != 0 {
		t.Fatalf("iowait %v while all cores busy, want 0", snap.CPU.IOWait)
	}
}

func TestIntervalDiff(t *testing.T) {
	eng := des.NewEngine()
	node := testNode(eng, 2)
	a := node.Snap()
	node.CPU.Exec(50*time.Millisecond, ModeUser, nil)
	eng.At(100*time.Millisecond, func() {})
	eng.Run()
	b := node.Snap()
	iv := Diff(a, b, 2)
	// 50ms of 1 core over 100ms of 2 cores = 25%.
	if math.Abs(iv.UserPct-25) > 0.5 {
		t.Fatalf("user%% = %v, want 25", iv.UserPct)
	}
	if iv.IdlePct < 70 || iv.IdlePct > 76 {
		t.Fatalf("idle%% = %v, want ~75", iv.IdlePct)
	}
	if iv.Start != a.At || iv.End != b.At {
		t.Fatal("interval bounds not copied")
	}
}

func TestIntervalDiffZeroDT(t *testing.T) {
	eng := des.NewEngine()
	node := testNode(eng, 2)
	a := node.Snap()
	iv := Diff(a, a, 2)
	if iv.UserPct != 0 || iv.DiskUtilPct != 0 {
		t.Fatal("zero-interval diff produced non-zero rates")
	}
}

func TestNetCounters(t *testing.T) {
	eng := des.NewEngine()
	node := testNode(eng, 2)
	node.NetSend(3000)
	node.NetRecv(1448 * 2)
	s := node.Snap()
	if s.NetTxBytes != 3000 || s.NetRxBytes != 2896 {
		t.Fatalf("net counters tx=%v rx=%v", s.NetTxBytes, s.NetRxBytes)
	}
	if s.NetTxPkts != 3 || s.NetRxPkts != 3 {
		t.Fatalf("pkt counters tx=%d rx=%d, want 3,3", s.NetTxPkts, s.NetRxPkts)
	}
}

func TestNodeClockOffset(t *testing.T) {
	eng := des.NewEngine()
	node := NewNode(eng, NodeConfig{
		Name: "db1", Cores: 1, Disk: DefaultDiskConfig(), Memory: DefaultMemoryConfig(),
		ClockOffset: 500 * time.Microsecond,
	})
	w := node.Wall(time.Second)
	want := time.Date(2017, time.April, 1, 0, 0, 1, 500000, time.UTC)
	if !w.Equal(want) {
		t.Fatalf("wall = %v, want %v", w, want)
	}
}

// Property: for any sequence of CPU and disk activity, the four CPU time
// classes are non-negative and sum to cores*elapsed.
func TestCPUTimeClassesSumProperty(t *testing.T) {
	f := func(demands []uint16) bool {
		eng := des.NewEngine()
		node := testNode(eng, 2)
		for i, d := range demands {
			at := des.Time(i%7) * des.Time(time.Millisecond)
			dur := time.Duration(d%2000) * time.Microsecond
			mode := ModeUser
			if d%3 == 0 {
				mode = ModeSystem
			}
			eng.At(at, func() {
				node.CPU.Exec(dur, mode, nil)
				if d%5 == 0 {
					node.Disk.WriteAsync(int(d))
				}
			})
		}
		eng.Run()
		s := node.Snap()
		total := float64(eng.Now()) * 2
		sum := s.CPU.User + s.CPU.System + s.CPU.IOWait + s.CPU.Idle
		if s.CPU.User < 0 || s.CPU.System < 0 || s.CPU.IOWait < 0 || s.CPU.Idle < 0 {
			return false
		}
		return math.Abs(sum-total) < float64(time.Millisecond)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCPUExec(b *testing.B) {
	eng := des.NewEngine()
	cpu := NewCPU(eng, "cpu", 8)
	for i := 0; i < b.N; i++ {
		eng.At(des.Time(i*100), func() { cpu.Exec(time.Microsecond*50, ModeUser, nil) })
	}
	b.ResetTimer()
	eng.Run()
}
