package resources

import (
	"fmt"
	"time"

	"github.com/gt-elba/milliscope/internal/des"
)

// MemoryConfig sets the dirty-page subsystem parameters. The defaults are
// chosen so that ordinary logging traffic never triggers recycling; the
// dirty-page bottleneck scenario lowers the watermarks.
type MemoryConfig struct {
	TotalKB float64
	// HighWaterKB triggers the flusher when dirty pages exceed it
	// (vm.dirty_ratio analogue).
	HighWaterKB float64
	// LowWaterKB is where the flusher stops (dirty_background_ratio).
	LowWaterKB float64
	// DrainKBps is the recycling rate while the flusher runs.
	DrainKBps float64
	// FlushWorkers is how many kernel flusher threads run concurrently;
	// each continuously occupies one core while active, which is what
	// saturates the CPU during recycling.
	FlushWorkers int
	// FlushSlice is the CPU slice size per flusher iteration.
	FlushSlice time.Duration
	// WritebackFraction of drained bytes is submitted to the disk as
	// background writeback; the rest is recycled in memory (clean pages).
	WritebackFraction float64
}

// DefaultMemoryConfig returns a 16 GB node whose watermarks are far above
// normal logging traffic.
func DefaultMemoryConfig() MemoryConfig {
	return MemoryConfig{
		TotalKB:           16 * 1024 * 1024,
		HighWaterKB:       2 * 1024 * 1024,
		LowWaterKB:        256 * 1024,
		DrainKBps:         512 * 1024,
		FlushWorkers:      2,
		FlushSlice:        5 * time.Millisecond,
		WritebackFraction: 0.25,
	}
}

// Memory models the page cache's dirty-page state plus the background
// flusher ("dirty page recycling" in the paper's Section V-B). Writes dirty
// pages; when dirty size crosses the high watermark the flusher threads
// seize CPU and drain until the low watermark, saturating the node's CPU
// for a few hundred milliseconds — the second very-short-bottleneck root
// cause the paper diagnoses.
type Memory struct {
	eng  *des.Engine
	name string
	cfg  MemoryConfig
	cpu  *CPU
	disk *Disk

	dirtyKB   float64
	cachedKB  float64
	flushing  bool
	flushes   uint64
	throttled []func()

	// OnFlushStart and OnFlushEnd observe recycling episodes (tests and
	// scenario scripts use them).
	OnFlushStart func(now des.Time, dirtyKB float64)
	OnFlushEnd   func(now des.Time, dirtyKB float64)
}

// NewMemory returns a memory subsystem bound to the node's CPU and disk.
func NewMemory(eng *des.Engine, name string, cfg MemoryConfig, cpu *CPU, disk *Disk) *Memory {
	if cfg.TotalKB <= 0 || cfg.HighWaterKB <= cfg.LowWaterKB || cfg.LowWaterKB < 0 {
		panic(fmt.Sprintf("resources: invalid memory config %+v", cfg))
	}
	if cfg.DrainKBps <= 0 || cfg.FlushWorkers <= 0 || cfg.FlushSlice <= 0 {
		panic(fmt.Sprintf("resources: invalid flusher config %+v", cfg))
	}
	if cfg.WritebackFraction < 0 || cfg.WritebackFraction > 1 {
		panic(fmt.Sprintf("resources: writeback fraction %v out of [0,1]", cfg.WritebackFraction))
	}
	return &Memory{eng: eng, name: name, cfg: cfg, cpu: cpu, disk: disk,
		cachedKB: cfg.TotalKB * 0.4}
}

// DirtyKB returns the current dirty-page size.
func (m *Memory) DirtyKB() float64 { return m.dirtyKB }

// Flushing reports whether a recycling episode is in progress.
func (m *Memory) Flushing() bool { return m.flushing }

// Flushes returns the number of recycling episodes so far.
func (m *Memory) Flushes() uint64 { return m.flushes }

// Counters returns the /proc/meminfo-shaped snapshot collectl reports.
func (m *Memory) Counters() (totalKB, freeKB, buffKB, cachedKB, dirtyKB float64) {
	used := m.cachedKB + m.dirtyKB + m.cfg.TotalKB*0.2 // resident apps
	free := m.cfg.TotalKB - used
	if free < 0 {
		free = 0
	}
	return m.cfg.TotalKB, free, m.cfg.TotalKB * 0.02, m.cachedKB, m.dirtyKB
}

// Dirty records bytes written into the page cache (application writes and
// log appends), possibly waking the flusher.
func (m *Memory) Dirty(bytes int) {
	if bytes < 0 {
		panic(fmt.Sprintf("resources: negative dirty size %d", bytes))
	}
	m.dirtyKB += float64(bytes) / 1024
	m.maybeFlush()
}

// ForceFlush starts a recycling episode immediately regardless of
// watermarks; scenario scripts use it to position an episode in time.
func (m *Memory) ForceFlush() { m.startFlush() }

// ThrottleWrite models balance_dirty_pages: while a recycling episode is in
// progress, processes writing to the page cache are blocked until the
// episode ends. Outside an episode, cont runs immediately. This is the
// mechanism that holds worker threads and builds the queues of the paper's
// Figure 8b.
func (m *Memory) ThrottleWrite(cont func()) {
	if cont == nil {
		panic("resources: ThrottleWrite with nil continuation")
	}
	if m.flushing {
		m.throttled = append(m.throttled, cont)
		return
	}
	cont()
}

// ThrottledWriters returns the number of processes currently blocked in
// write throttling.
func (m *Memory) ThrottledWriters() int { return len(m.throttled) }

func (m *Memory) maybeFlush() {
	if !m.flushing && m.dirtyKB >= m.cfg.HighWaterKB {
		m.startFlush()
	}
}

func (m *Memory) startFlush() {
	if m.flushing {
		return
	}
	m.flushing = true
	m.flushes++
	if m.OnFlushStart != nil {
		m.OnFlushStart(m.eng.Now(), m.dirtyKB)
	}
	for i := 0; i < m.cfg.FlushWorkers; i++ {
		m.flushWorker()
	}
}

// flushWorker runs one kernel flusher thread: repeatedly burn a CPU slice
// in system mode, draining pages each slice, until the low watermark.
func (m *Memory) flushWorker() {
	perSlice := m.cfg.DrainKBps * m.cfg.FlushSlice.Seconds() / float64(m.cfg.FlushWorkers)
	var step func()
	step = func() {
		if m.dirtyKB <= m.cfg.LowWaterKB {
			m.endFlushWorker()
			return
		}
		m.cpu.Exec(m.cfg.FlushSlice, ModeFlusher, func() {
			drained := perSlice
			if drained > m.dirtyKB {
				drained = m.dirtyKB
			}
			m.dirtyKB -= drained
			if wb := drained * m.cfg.WritebackFraction; wb >= 1 {
				m.disk.WriteAsync(int(wb * 1024))
			}
			step()
		})
	}
	step()
}

// endFlushWorker marks the episode finished when the first worker observes
// the low watermark; remaining workers exit idempotently.
func (m *Memory) endFlushWorker() {
	if !m.flushing {
		return
	}
	m.flushing = false
	if m.OnFlushEnd != nil {
		m.OnFlushEnd(m.eng.Now(), m.dirtyKB)
	}
	waiters := m.throttled
	m.throttled = nil
	for _, w := range waiters {
		w()
	}
}
