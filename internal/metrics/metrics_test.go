package metrics

import (
	"testing"
	"testing/quick"
	"time"

	"github.com/gt-elba/milliscope/internal/mscopedb"
)

// eventTable builds a front-tier event table with (ua, ud) pairs in µs.
func eventTable(t *testing.T, spans [][2]int64) *mscopedb.Table {
	t.Helper()
	tbl, err := mscopedb.NewTable("apache_event", []mscopedb.Column{
		{Name: "reqid", Type: mscopedb.TString},
		{Name: "ua", Type: mscopedb.TInt},
		{Name: "ud", Type: mscopedb.TInt},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range spans {
		if err := tbl.Append("req-"+string(rune('a'+i%26)), s[0], s[1]); err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

func TestPointInTimeRT(t *testing.T) {
	// Three fast requests and one 100ms outlier completing at 70ms.
	tbl := eventTable(t, [][2]int64{
		{0, 5_000},
		{10_000, 17_000},
		{60_000, 65_000},
		{-30_000, 70_000}, // 100ms request
	})
	pit, err := PointInTimeRT(tbl, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if pit.Requests != 4 {
		t.Fatalf("requests %d", pit.Requests)
	}
	if pit.MaxUS != 100_000 {
		t.Fatalf("max %v", pit.MaxUS)
	}
	// Windows (by completion): [0,50ms): max 7000; [50ms,100ms): max 100000.
	if len(pit.Series.Values) != 2 {
		t.Fatalf("windows %d: %+v", len(pit.Series.Values), pit.Series)
	}
	if pit.Series.Values[0] != 7_000 || pit.Series.Values[1] != 100_000 {
		t.Fatalf("series %+v", pit.Series.Values)
	}
	if pf := pit.PeakFactor(); pf < 3 || pf > 4 {
		t.Fatalf("peak factor %v", pf) // 100000 / ((5000+7000+5000+100000)/4) ≈ 3.4
	}
}

func TestPointInTimeRTEmpty(t *testing.T) {
	tbl := eventTable(t, nil)
	if _, err := PointInTimeRT(tbl, time.Millisecond); err == nil {
		t.Fatal("empty table accepted")
	}
}

func TestQueueSeries(t *testing.T) {
	// Two overlapping residencies and one later.
	tbl := eventTable(t, [][2]int64{
		{0, 100_000},
		{40_000, 60_000},
		{200_000, 220_000},
	})
	pts, err := QueueSeries(tbl, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	at := func(us int64) int {
		for _, p := range pts {
			if p.AtMicros == us {
				return p.N
			}
		}
		t.Fatalf("no point at %d", us)
		return -1
	}
	if at(0) != 1 || at(50_000) != 2 || at(80_000) != 1 || at(100_000) != 0 || at(210_000) != 1 {
		t.Fatalf("queue series wrong: %+v", pts)
	}
	// Never negative.
	for _, p := range pts {
		if p.N < 0 {
			t.Fatalf("negative queue at %d", p.AtMicros)
		}
	}
}

func TestQueueSeriesEmpty(t *testing.T) {
	tbl := eventTable(t, nil)
	pts, err := QueueSeries(tbl, time.Millisecond)
	if err != nil || pts != nil {
		t.Fatalf("empty: %v %v", pts, err)
	}
}

// Property: queue series over random spans is never negative and ends at
// zero after all departures.
func TestQueueSeriesInvariantProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) < 2 {
			return true
		}
		var spans [][2]int64
		for i := 0; i+1 < len(raw); i += 2 {
			ua := int64(raw[i])
			ud := ua + int64(raw[i+1]) + 1
			spans = append(spans, [2]int64{ua, ud})
		}
		tbl, err := mscopedb.NewTable("e", []mscopedb.Column{
			{Name: "ua", Type: mscopedb.TInt},
			{Name: "ud", Type: mscopedb.TInt},
		})
		if err != nil {
			return false
		}
		for _, s := range spans {
			if err := tbl.Append(s[0], s[1]); err != nil {
				return false
			}
		}
		pts, err := QueueSeries(tbl, 100*time.Microsecond)
		if err != nil {
			return false
		}
		for _, p := range pts {
			if p.N < 0 {
				return false
			}
		}
		return len(pts) == 0 || pts[len(pts)-1].N == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestVLRTRequests(t *testing.T) {
	tbl := eventTable(t, [][2]int64{
		{0, 5_000},
		{10_000, 15_000},
		{20_000, 25_000},
		{30_000, 130_000}, // 100ms vs ~5ms avg
	})
	// With four samples the outlier lifts the average (~29ms), so the
	// 100ms request is ~3.5x the mean.
	ids, err := VLRTRequests(tbl, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 1 {
		t.Fatalf("VLRTs: %v", ids)
	}
}

func TestLittlesLawConsistent(t *testing.T) {
	// A deterministic M/D/∞-ish table: 1000 requests arriving every 1ms,
	// each resident 5ms → λ=1000/s (over span), W=5ms, L=λW≈5.
	var spans [][2]int64
	for i := int64(0); i < 1000; i++ {
		spans = append(spans, [2]int64{i * 1000, i*1000 + 5000})
	}
	tbl := eventTable(t, spans)
	rep, err := LittlesLaw(tbl)
	if err != nil {
		t.Fatal(err)
	}
	if rep.MeanResidence != 5*time.Millisecond {
		t.Fatalf("W = %v", rep.MeanResidence)
	}
	if rep.RelativeError > 0.01 {
		t.Fatalf("self-consistent table has relative error %.4f", rep.RelativeError)
	}
	if rep.MeanQueue < 4.5 || rep.MeanQueue > 5.5 {
		t.Fatalf("L = %v, want ~5", rep.MeanQueue)
	}
}

func TestLittlesLawEmpty(t *testing.T) {
	tbl := eventTable(t, nil)
	if _, err := LittlesLaw(tbl); err == nil {
		t.Fatal("empty table accepted")
	}
}

func TestPointsToSeries(t *testing.T) {
	s := PointsToSeries([]Point{{AtMicros: 10, N: 3}, {AtMicros: 20, N: 5}})
	if len(s.StartMicros) != 2 || s.Values[1] != 5 {
		t.Fatalf("series %+v", s)
	}
}

func TestResourceSeries(t *testing.T) {
	tbl, err := mscopedb.NewTable("mysql_collectlcsv", []mscopedb.Column{
		{Name: "ts", Type: mscopedb.TTime},
		{Name: "dsk_util", Type: mscopedb.TFloat},
	})
	if err != nil {
		t.Fatal(err)
	}
	base := time.Date(2017, 4, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 20; i++ {
		util := 10.0
		if i >= 10 && i < 14 {
			util = 99.0
		}
		if err := tbl.Append(base.Add(time.Duration(i)*50*time.Millisecond), util); err != nil {
			t.Fatal(err)
		}
	}
	s, err := ResourceSeries(tbl, "dsk_util", 100*time.Millisecond, mscopedb.AggAvg)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Values) != 10 {
		t.Fatalf("windows %d", len(s.Values))
	}
	if s.Values[5] != 99 || s.Values[0] != 10 {
		t.Fatalf("values %+v", s.Values)
	}
}
