// Package metrics derives the paper's diagnostic time series from
// warehouse tables: Point-in-Time response time (Figure 2), instantaneous
// per-tier queue lengths from event records (Figure 6), and windowed
// resource series (Figures 4, 8c, 8d).
package metrics

import (
	"fmt"
	"sort"
	"strconv"
	"time"

	"github.com/gt-elba/milliscope/internal/mscopedb"
)

// Point is one sample of an integer-valued series.
type Point struct {
	AtMicros int64
	N        int
}

// PITResult is a Point-in-Time response time series.
type PITResult struct {
	// Series holds the per-window maximum response time in microseconds,
	// bucketed by completion time.
	Series *mscopedb.Series
	// AvgUS is the overall mean response time in microseconds.
	AvgUS float64
	// MaxUS is the overall maximum.
	MaxUS float64
	// Requests is the population size.
	Requests int
}

// PeakFactor returns max/avg — the paper's "twenty times the average"
// headline statistic.
func (p *PITResult) PeakFactor() float64 {
	if p.AvgUS <= 0 {
		return 0
	}
	return p.MaxUS / p.AvgUS
}

// PointInTimeRT computes the Point-in-Time response time from a front-tier
// event table: per window of the given width, the maximum of (ud-ua);
// requests are bucketed by completion time (ud).
func PointInTimeRT(tbl *mscopedb.Table, window time.Duration) (*PITResult, error) {
	uaCI, udCI := tbl.ColIndex("ua"), tbl.ColIndex("ud")
	if uaCI < 0 || udCI < 0 {
		return nil, fmt.Errorf("metrics: %s lacks ua/ud columns", tbl.Name())
	}
	cols := tbl.Columns()
	if cols[uaCI].Type != mscopedb.TInt || cols[udCI].Type != mscopedb.TInt {
		return nil, fmt.Errorf("metrics: %s ua/ud are not int micros", tbl.Name())
	}
	n := tbl.Rows()
	if n == 0 {
		return nil, fmt.Errorf("metrics: %s is empty", tbl.Name())
	}
	w := window.Microseconds()
	if w <= 0 {
		return nil, fmt.Errorf("metrics: non-positive window %v", window)
	}
	buckets := make(map[int64]float64)
	var lo, hi int64
	var sum, max float64
	for r := 0; r < n; r++ {
		ua, ud := tbl.Int(uaCI, r), tbl.Int(udCI, r)
		rt := float64(ud - ua)
		sum += rt
		if rt > max {
			max = rt
		}
		b := ud - mod(ud, w)
		if rt > buckets[b] {
			buckets[b] = rt
		}
		if r == 0 || b < lo {
			lo = b
		}
		if r == 0 || b > hi {
			hi = b
		}
	}
	var s mscopedb.Series
	for b := lo; b <= hi; b += w {
		s.StartMicros = append(s.StartMicros, b)
		s.Values = append(s.Values, buckets[b])
	}
	return &PITResult{Series: &s, AvgUS: sum / float64(n), MaxUS: max, Requests: n}, nil
}

// QueueSeries computes the instantaneous number of resident requests at a
// tier from its event table (arrival = ua, departure = ud), sampled every
// step. This is the metric the paper derives from the event monitors
// without sampling loss (Figures 6, 8b, 9).
func QueueSeries(tbl *mscopedb.Table, step time.Duration) ([]Point, error) {
	uaCI, udCI := tbl.ColIndex("ua"), tbl.ColIndex("ud")
	if uaCI < 0 || udCI < 0 {
		return nil, fmt.Errorf("metrics: %s lacks ua/ud columns", tbl.Name())
	}
	if step <= 0 {
		return nil, fmt.Errorf("metrics: non-positive step %v", step)
	}
	n := tbl.Rows()
	if n == 0 {
		return nil, nil
	}
	type ev struct {
		at int64
		d  int
	}
	evs := make([]ev, 0, 2*n)
	for r := 0; r < n; r++ {
		evs = append(evs,
			ev{tbl.Int(uaCI, r), +1},
			ev{tbl.Int(udCI, r), -1})
	}
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].at != evs[j].at {
			return evs[i].at < evs[j].at
		}
		return evs[i].d > evs[j].d
	})
	lo, hi := evs[0].at, evs[len(evs)-1].at
	stepUS := step.Microseconds()
	// Snap the first sample onto the step grid so queue samples share
	// window timestamps with resource series (correlation aligns on them).
	lo -= mod(lo, stepUS)
	var out []Point
	cur, k := 0, 0
	emit := func(at int64) {
		for k < len(evs) && evs[k].at <= at {
			cur += evs[k].d
			k++
		}
		out = append(out, Point{AtMicros: at, N: cur})
	}
	at := lo
	for ; at <= hi; at += stepUS {
		emit(at)
	}
	// Always sample the final instant so the series ends after the last
	// departure (queue back at its residual level).
	if at-stepUS != hi {
		emit(hi)
	}
	return out, nil
}

// PointsToSeries converts a queue-point list into a Series for correlation
// with resource series.
func PointsToSeries(pts []Point) *mscopedb.Series {
	var s mscopedb.Series
	for _, p := range pts {
		s.StartMicros = append(s.StartMicros, p.AtMicros)
		s.Values = append(s.Values, float64(p.N))
	}
	return &s
}

// ResourceSeries windows a resource table's numeric column by its ts
// column: the collectl/SAR/iostat view of a node over time.
func ResourceSeries(tbl *mscopedb.Table, valCol string, window time.Duration, fn mscopedb.AggFn) (*mscopedb.Series, error) {
	res, err := tbl.Select().Rows()
	if err != nil {
		return nil, err
	}
	return res.WindowAgg("ts", window, valCol, fn)
}

// VLRTRequests returns the request IDs whose response time exceeds
// k × the table's average — the very long response time requests.
func VLRTRequests(tbl *mscopedb.Table, k float64) ([]string, error) {
	uaCI, udCI, reqCI := tbl.ColIndex("ua"), tbl.ColIndex("ud"), tbl.ColIndex("reqid")
	if uaCI < 0 || udCI < 0 || reqCI < 0 {
		return nil, fmt.Errorf("metrics: %s lacks ua/ud/reqid columns", tbl.Name())
	}
	n := tbl.Rows()
	if n == 0 {
		return nil, nil
	}
	var sum float64
	for r := 0; r < n; r++ {
		sum += float64(tbl.Int(udCI, r) - tbl.Int(uaCI, r))
	}
	avg := sum / float64(n)
	threshold := k * avg
	var out []string
	for r := 0; r < n; r++ {
		if float64(tbl.Int(udCI, r)-tbl.Int(uaCI, r)) > threshold {
			out = append(out, tbl.Str(reqCI, r))
		}
	}
	return out, nil
}

// LittlesLawReport cross-checks an event table against Little's law:
// mean queue length must equal arrival rate × mean residence time. A large
// relative error means the monitor dropped or duplicated records — the
// framework's own self-validation.
type LittlesLawReport struct {
	// Lambda is the arrival rate (requests per second).
	Lambda float64
	// MeanResidence is the mean UD-UA.
	MeanResidence time.Duration
	// MeanQueue is the time-averaged queue length integrated from events.
	MeanQueue float64
	// RelativeError is |L - λW| / L.
	RelativeError float64
}

// LittlesLaw computes the report from one tier's event table.
func LittlesLaw(tbl *mscopedb.Table) (*LittlesLawReport, error) {
	uaCI, udCI := tbl.ColIndex("ua"), tbl.ColIndex("ud")
	if uaCI < 0 || udCI < 0 {
		return nil, fmt.Errorf("metrics: %s lacks ua/ud columns", tbl.Name())
	}
	n := tbl.Rows()
	if n == 0 {
		return nil, fmt.Errorf("metrics: %s is empty", tbl.Name())
	}
	var sumRes float64
	lo, hi := tbl.Int(uaCI, 0), tbl.Int(udCI, 0)
	for r := 0; r < n; r++ {
		ua, ud := tbl.Int(uaCI, r), tbl.Int(udCI, r)
		sumRes += float64(ud - ua)
		if ua < lo {
			lo = ua
		}
		if ud > hi {
			hi = ud
		}
	}
	spanUS := float64(hi - lo)
	if spanUS <= 0 {
		return nil, fmt.Errorf("metrics: %s spans zero time", tbl.Name())
	}
	rep := &LittlesLawReport{
		Lambda:        float64(n) / (spanUS / 1e6),
		MeanResidence: time.Duration(sumRes/float64(n)) * time.Microsecond,
		// Time-averaged queue = total residence / observation span.
		MeanQueue: sumRes / spanUS,
	}
	lw := rep.Lambda * rep.MeanResidence.Seconds()
	if rep.MeanQueue > 0 {
		rep.RelativeError = abs(rep.MeanQueue-lw) / rep.MeanQueue
	}
	return rep, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// FormatMicros renders a µs epoch for report output (seconds into the
// trial, given the trial's first timestamp).
func FormatMicros(us, baseUS int64) string {
	return strconv.FormatFloat(float64(us-baseUS)/1e6, 'f', 3, 64) + "s"
}

func mod(a, b int64) int64 {
	m := a % b
	if m < 0 {
		m += b
	}
	return m
}
