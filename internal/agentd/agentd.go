// Package agentd is the per-node half of the distributed deployment: one
// agent process per monitored node tails that node's logs with the exact
// machinery `mscope live` uses locally — the rotation-aware Tailer, the
// tokenizing mScopeParsers, degraded-mode quarantine — and ships the
// parsed records to the central collector as checkpointed column batches
// over the wire protocol.
//
// The agent holds no durable state of its own. The collector's applied
// byte offset is the only checkpoint: every (re)connection opens each
// source and is told where to resume tailing, so an agent killed at any
// instant — mid-batch, mid-cycle, mid-handshake — restarts with zero
// duplicate and zero lost rows. Flow control is credit-based: the
// collector grants a record window at handshake and returns credits as
// batches are applied, so a slow collector stops the agent's tailers (the
// same backpressure edge the local pipeline has) instead of growing an
// unbounded buffer.
package agentd

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/gt-elba/milliscope/internal/fidelity"
	"github.com/gt-elba/milliscope/internal/mxml"
	"github.com/gt-elba/milliscope/internal/parsers"
	"github.com/gt-elba/milliscope/internal/promfmt"
	"github.com/gt-elba/milliscope/internal/selfobs"
	"github.com/gt-elba/milliscope/internal/stream"
	"github.com/gt-elba/milliscope/internal/transform"
	"github.com/gt-elba/milliscope/internal/wire"
)

// Self-telemetry counters; free when no collector is enabled.
var (
	obsBatches    = selfobs.NewCounter(selfobs.PipeAgent, "ship", "batches")
	obsRecords    = selfobs.NewCounter(selfobs.PipeAgent, "ship", "records")
	obsReconnects = selfobs.NewCounter(selfobs.PipeAgent, "conn", "reconnects")
)

// Config parameterizes one agent. Zero values select defaults.
type Config struct {
	// ID is the agent's stable identity (typically the node name). Required.
	ID string
	// Token authenticates against the collector; both sides must agree.
	Token string
	// Network and Addr name the collector endpoint ("tcp" host:port or
	// "unix" socket path). Ignored when Dial is set.
	Network, Addr string
	// Dial overrides the endpoint — the tests inject in-memory and fault-
	// wrapped connections here.
	Dial func() (net.Conn, error)
	// LogDir is the directory this node's monitors write. Required.
	LogDir string
	// Plan is the Parsing Declaration; nil uses the default.
	Plan *transform.Plan
	// Poll is the tailer poll interval (default 10ms).
	Poll time.Duration
	// Own filters which streamable files this agent ships; nil means all.
	// In a real deployment each node only has its own logs; the tests use
	// it to split one directory across N agents.
	Own func(name string) bool
	// MaxBatchRecords caps records per batch frame (default 512). It must
	// stay at or below the collector's credit window or a large poll cycle
	// could never acquire enough credits to ship.
	MaxBatchRecords int
	// ReconnectBase/ReconnectMax bound the dial backoff (50ms–2s default).
	ReconnectBase, ReconnectMax time.Duration
	// SelfTrace records this agent's own spans (opens, ships, drain) in a
	// node-local selfobs collector and ships them at drain as one final
	// synthetic source named "<ID>_selftrace.log" — the collector's
	// warehouse then holds every node's telemetry with per-node tables,
	// which is what `mscope selftrace --fleet` renders.
	SelfTrace bool
}

func (c *Config) withDefaults() (Config, error) {
	out := *c
	if out.ID == "" {
		return out, fmt.Errorf("agentd: Config.ID is required")
	}
	if out.LogDir == "" {
		return out, fmt.Errorf("agentd: Config.LogDir is required")
	}
	if out.Dial == nil && out.Addr == "" {
		return out, fmt.Errorf("agentd: collector address required")
	}
	if out.Network == "" {
		out.Network = "tcp"
	}
	if out.Plan == nil {
		out.Plan = transform.DefaultPlan()
	}
	if out.Poll <= 0 {
		out.Poll = 10 * time.Millisecond
	}
	if out.MaxBatchRecords <= 0 {
		out.MaxBatchRecords = 512
	}
	if out.ReconnectBase <= 0 {
		out.ReconnectBase = 50 * time.Millisecond
	}
	if out.ReconnectMax <= 0 {
		out.ReconnectMax = 2 * time.Second
	}
	return out, nil
}

// Agent is one per-node shipping daemon. Start launches the connection
// loop; Stop drains every source to EOF, ships the remainder, waits for
// all acks and says Goodbye. Kill is the crash injector: it drops the
// connection and the loops with no drain at all, which is exactly what
// the resume protocol must survive.
type Agent struct {
	cfg Config
	// obs is the agent's own span collector (nil unless Config.SelfTrace);
	// standalone, not the process-global one, so several agents in one
	// test process keep their telemetry separate.
	obs *selfobs.Collector

	stopOnce sync.Once
	stopCh   chan struct{}
	doneCh   chan struct{}
	killed   atomic.Bool
	conn     atomic.Value // net.Conn of the live session, for Kill

	// denied and failed are agent-lifetime source blocklists: the
	// collector terminally rejected the source, or its parser died here.
	bmu    sync.Mutex
	denied map[string]bool
	failed map[string]bool

	mu       sync.Mutex
	runErr   error // fatal (auth) error, surfaced by Stop
	lastCtrl wire.Control

	// Counters exported as Prometheus families.
	batchesSent  atomic.Int64
	recordsSent  atomic.Int64
	acksReceived atomic.Int64
	reconnects   atomic.Int64
	dialErrors   atomic.Int64
	wireTx       atomic.Int64
	wireRx       atomic.Int64
	quarantined  atomic.Int64
	liveSources  atomic.Int64
	creditsGauge atomic.Int64
}

// New validates the config and builds an agent; Start runs it.
func New(cfg Config) (*Agent, error) {
	c, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	a := &Agent{
		cfg:    c,
		stopCh: make(chan struct{}),
		doneCh: make(chan struct{}),
		denied: make(map[string]bool),
		failed: make(map[string]bool),
	}
	if c.SelfTrace {
		a.obs = selfobs.NewCollector(c.ID, time.Now())
	}
	return a, nil
}

// Start launches the connect/ship loop.
func (a *Agent) Start() { go a.run() }

// Stop drains and disconnects; it returns the fatal session error, if
// any (a rejected handshake). Transient connection failures are not
// errors — surviving them is the job.
func (a *Agent) Stop() error {
	a.stopOnce.Do(func() { close(a.stopCh) })
	<-a.doneCh
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.runErr
}

// Done reports when the connect/ship loop has exited for good. It only
// closes on Stop, Kill, or a fatal (auth) error — never on a transient
// disconnect, which the loop survives by reconnecting. Callers that
// block on outside signals (the CLI) select on this too, so a rejected
// handshake surfaces as an exit instead of a hang.
func (a *Agent) Done() <-chan struct{} { return a.doneCh }

// Kill simulates a crash: the connection and all loops die immediately,
// shipping nothing further. The soak test restarts a fresh Agent over
// the same LogDir and asserts zero duplicate rows.
func (a *Agent) Kill() {
	a.killed.Store(true)
	a.stopOnce.Do(func() { close(a.stopCh) })
	if nc, ok := a.conn.Load().(net.Conn); ok && nc != nil {
		nc.Close()
	}
	<-a.doneCh
}

func (a *Agent) stopping() bool {
	select {
	case <-a.stopCh:
		return true
	default:
		return false
	}
}

func (a *Agent) dial() (net.Conn, error) {
	if a.cfg.Dial != nil {
		return a.cfg.Dial()
	}
	return net.DialTimeout(a.cfg.Network, a.cfg.Addr, 5*time.Second)
}

// sleepOrStop waits d; false means stop was requested meanwhile.
func (a *Agent) sleepOrStop(d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-a.stopCh:
		return false
	case <-t.C:
		return true
	}
}

func (a *Agent) run() {
	defer close(a.doneCh)
	delay := a.cfg.ReconnectBase
	first := true
	for {
		if a.stopping() {
			return
		}
		nc, err := a.dial()
		if err != nil {
			a.dialErrors.Add(1)
			if !a.sleepOrStop(delay) {
				return
			}
			if delay *= 2; delay > a.cfg.ReconnectMax {
				delay = a.cfg.ReconnectMax
			}
			continue
		}
		if !first {
			a.reconnects.Add(1)
			obsReconnects.Add(1)
		}
		first = false
		delay = a.cfg.ReconnectBase
		err = a.session(nc)
		if a.stopping() {
			return
		}
		if err == errRejected {
			return // fatal; runErr already recorded
		}
		if !a.sleepOrStop(delay) {
			return
		}
	}
}

var errRejected = fmt.Errorf("agentd: handshake rejected")

// countingConn counts raw bytes both ways for the wire metrics.
type countingConn struct {
	net.Conn
	tx, rx *atomic.Int64
}

func (c countingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.rx.Add(int64(n))
	return n, err
}

func (c countingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.tx.Add(int64(n))
	return n, err
}

// session drives one connection from handshake to drain or death. All
// per-source state (tailers, parser pipes, pending records) is scoped to
// the session: a reconnect rebuilds everything from the collector's
// resume offsets, which is what makes the crash story simple.
type session struct {
	a *Agent
	c *wire.Conn

	mu      sync.Mutex
	cond    *sync.Cond
	credits int64
	// outstanding counts unacked batches; Goodbye waits for zero so the
	// collector retires the connection knowing everything is applied.
	outstanding int64
	dead        bool
	deadErr     error
	deadCh      chan struct{}
	resumes     map[uint32]chan int64

	sources []*agentSource
	byPath  map[string]*agentSource
	nextID  uint32
}

func (a *Agent) session(nc net.Conn) error {
	a.conn.Store(nc)
	defer nc.Close()
	c := wire.NewConn(countingConn{Conn: nc, tx: &a.wireTx, rx: &a.wireRx})
	if err := c.Write(wire.TypeHello, wire.EncodeHello(wire.Hello{
		Version: wire.Version, AgentID: a.cfg.ID, Token: a.cfg.Token,
	})); err != nil {
		return err
	}
	if err := c.Flush(); err != nil {
		return err
	}
	typ, payload, err := c.Read()
	if err != nil {
		return err
	}
	if typ != wire.TypeHelloAck {
		return fmt.Errorf("agentd: expected HelloAck, got frame type %d", typ)
	}
	ack, err := wire.DecodeHelloAck(payload)
	if err != nil {
		return err
	}
	if !ack.OK {
		a.mu.Lock()
		a.runErr = fmt.Errorf("agentd: collector rejected handshake: %s", ack.Reason)
		a.mu.Unlock()
		return errRejected
	}
	s := &session{
		a:       a,
		c:       c,
		credits: ack.Credit,
		deadCh:  make(chan struct{}),
		resumes: make(map[uint32]chan int64),
		byPath:  make(map[string]*agentSource),
	}
	s.cond = sync.NewCond(&s.mu)
	a.creditsGauge.Store(ack.Credit)
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		s.reader()
	}()
	err = s.loop()
	nc.Close() // unblocks the reader if the loop failed first
	<-readerDone
	s.teardown()
	a.liveSources.Store(0)
	return err
}

// fail marks the session dead and wakes every waiter.
func (s *session) fail(err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dead {
		return
	}
	s.dead = true
	s.deadErr = err
	close(s.deadCh)
	s.cond.Broadcast()
}

// reader dispatches collector frames: acks return credits, resumes
// answer opens, controls carry the fidelity state downstream.
func (s *session) reader() {
	for {
		typ, payload, err := s.c.Read()
		if err != nil {
			s.fail(err)
			return
		}
		switch typ {
		case wire.TypeAck:
			ack, err := wire.DecodeAck(payload)
			if err != nil {
				s.fail(err)
				return
			}
			s.a.acksReceived.Add(1)
			s.mu.Lock()
			s.credits += ack.Credit
			s.outstanding--
			s.a.creditsGauge.Store(s.credits)
			s.cond.Broadcast()
			s.mu.Unlock()
		case wire.TypeResume:
			r, err := wire.DecodeResume(payload)
			if err != nil {
				s.fail(err)
				return
			}
			s.mu.Lock()
			ch := s.resumes[r.SourceID]
			s.mu.Unlock()
			if ch != nil {
				ch <- r.Offset
			}
		case wire.TypeControl:
			ctl, err := wire.DecodeControl(payload)
			if err != nil {
				s.fail(err)
				return
			}
			s.a.mu.Lock()
			s.a.lastCtrl = ctl
			s.a.mu.Unlock()
		default:
			s.fail(fmt.Errorf("agentd: unexpected frame type %d from collector", typ))
			return
		}
	}
}

// acquire blocks until n record credits are available (or the session
// dies). This is where collector pressure stops the tailers.
func (s *session) acquire(n int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.credits < n && !s.dead {
		s.cond.Wait()
	}
	if s.dead {
		return s.deadErr
	}
	s.credits -= n
	s.a.creditsGauge.Store(s.credits)
	return nil
}

// loop is the session's main cycle: discover sources, poll each tailer,
// quiesce its parser, and ship what came out — until stop or death.
func (s *session) loop() error {
	ticker := time.NewTicker(s.a.cfg.Poll)
	defer ticker.Stop()
	for {
		select {
		case <-s.a.stopCh:
			if s.a.killed.Load() {
				return fmt.Errorf("agentd: killed")
			}
			return s.drain()
		case <-s.deadCh:
			return s.deadErr
		case <-ticker.C:
			if err := s.scan(); err != nil {
				return err
			}
			for _, src := range s.sources {
				if err := s.cycle(src); err != nil {
					return err
				}
			}
		}
	}
}

// scan discovers newly appeared files this agent owns and opens them with
// the collector, blocking on each Resume so tailing starts at the exact
// applied offset.
func (s *session) scan() error {
	entries, err := os.ReadDir(s.a.cfg.LogDir)
	if err != nil {
		return nil // the directory may not exist yet
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	for _, name := range names {
		full := filepath.Join(s.a.cfg.LogDir, name)
		if _, known := s.byPath[full]; known {
			continue
		}
		if !stream.Streamable(s.a.cfg.Plan, name) {
			continue
		}
		if s.a.cfg.Own != nil && !s.a.cfg.Own(name) {
			continue
		}
		s.a.bmu.Lock()
		blocked := s.a.denied[full] || s.a.failed[full]
		s.a.bmu.Unlock()
		if blocked {
			continue
		}
		if err := s.open(full, name); err != nil {
			return err
		}
	}
	return nil
}

func (s *session) open(full, name string) error {
	sp := s.a.obs.Begin(selfobs.PipeAgent, "open", s.a.cfg.ID, name)
	s.nextID++
	id := s.nextID
	ch := make(chan int64, 1)
	s.mu.Lock()
	s.resumes[id] = ch
	s.mu.Unlock()
	if err := s.c.Write(wire.TypeOpen, wire.EncodeOpen(wire.Open{
		SourceID: id, Key: full, Name: name,
	})); err != nil {
		return err
	}
	if err := s.c.Flush(); err != nil {
		return err
	}
	var offset int64
	select {
	case offset = <-ch:
	case <-s.deadCh:
		return s.deadErr
	case <-time.After(30 * time.Second):
		return fmt.Errorf("agentd: %s: no Resume within 30s", name)
	}
	if offset == stream.ResumeDenied {
		s.a.bmu.Lock()
		s.a.denied[full] = true
		s.a.bmu.Unlock()
		sp.End(0, 1)
		return nil
	}
	b, _ := s.a.cfg.Plan.Find(name)
	parser, err := parsers.Get(b.Parser)
	if err != nil {
		return nil // a plan naming an unknown parser skips the file
	}
	src := &agentSource{
		id:      id,
		path:    full,
		name:    name,
		binding: b,
		parser:  parser,
		tail:    stream.NewTailer(full, offset),
		lastOff: offset,
		done:    make(chan struct{}),
	}
	pr, pw := io.Pipe()
	src.pw = pw
	src.mr = &meteredReader{r: pr}
	go src.parse()
	s.sources = append(s.sources, src)
	s.byPath[full] = src
	s.a.liveSources.Add(1)
	sp.End(1, 0)
	return nil
}

// cycle runs one poll for one source: move new bytes through the parser,
// wait for it to go idle so the committed offset covers exactly the
// records emitted, then ship them.
func (s *session) cycle(src *agentSource) error {
	if src.dead() {
		return s.failSource(src)
	}
	n, err := src.tail.Poll(src.write)
	if err != nil && err != io.ErrClosedPipe {
		src.failErr(err)
	}
	if src.dead() {
		return s.failSource(src)
	}
	offExact := true
	if n > 0 {
		offExact = src.waitIdle()
	}
	return s.ship(src, offExact)
}

// ship collects the source's emitted records and quarantine count and
// sends them as one or more batch frames, respecting the credit window.
// Only the cycle-final sub-batch carries the new byte offset: an earlier
// sub-batch's records end mid-cycle, at no offset the tailer can name, so
// a crash between sub-batches resumes from the previous stamp and the
// collector drops the re-shipped overlap by count.
func (s *session) ship(src *agentSource, offExact bool) error {
	src.mu.Lock()
	pending := src.pending
	src.pending = nil
	quar := src.quarantined
	src.mu.Unlock()
	off := src.tail.Committed()
	if !offExact {
		off = src.lastOff // parser never went idle; don't over-claim
	}
	if len(pending) == 0 && off == src.lastOff && quar == src.lastQuar {
		return nil
	}
	var sp selfobs.Span
	if len(pending) > 0 {
		sp = s.a.obs.Begin(selfobs.PipeAgent, "ship", s.a.cfg.ID, src.name)
	}
	max := s.a.cfg.MaxBatchRecords
	for start := 0; ; start += max {
		end := start + max
		if end > len(pending) {
			end = len(pending)
		}
		chunk := pending[start:end]
		lastChunk := end == len(pending)
		if err := s.acquire(int64(len(chunk))); err != nil {
			return err
		}
		src.seq++
		b := wire.Batch{
			SourceID:    src.id,
			Seq:         src.seq,
			Offset:      src.lastOff, // overwritten on the final sub-batch
			Quarantined: quar,
		}
		if lastChunk {
			b.Offset = off
		}
		b.AppendEntries(chunk)
		payload := wire.EncodeBatch(&b)
		for i := range chunk {
			chunk[i].Release()
		}
		if err := s.c.Write(wire.TypeBatch, payload); err != nil {
			return err
		}
		s.mu.Lock()
		s.outstanding++
		s.mu.Unlock()
		s.a.batchesSent.Add(1)
		s.a.recordsSent.Add(int64(len(chunk)))
		obsBatches.Add(1)
		obsRecords.Add(int64(len(chunk)))
		if lastChunk {
			break
		}
		// Flush before the next acquire can block: a frame parked in the
		// write buffer is one the collector cannot ack, and acks are the
		// only source of fresh credit — holding both is a deadlock.
		if err := s.c.Flush(); err != nil {
			return err
		}
	}
	sp.End(int64(len(pending)), quar-src.lastQuar)
	src.lastOff = off
	src.lastQuar = quar
	s.a.quarantined.Store(s.totalQuarantined())
	return s.c.Flush()
}

func (s *session) totalQuarantined() int64 {
	var t int64
	for _, src := range s.sources {
		src.mu.Lock()
		t += src.quarantined
		src.mu.Unlock()
	}
	return t
}

// failSource finishes a source whose parser died: ship what it emitted
// before dying, then report the failure. The local pipeline appends every
// record a parser emitted before its error, so the agent must not drop
// them — and the final batch carries tail.Committed(), the exact bytes fed
// before death, so the ledger offset matches local ingest byte for byte.
// The parser is gone, so there is nothing to quiesce: pending is final.
func (s *session) failSource(src *agentSource) error {
	if !src.reported {
		if err := s.ship(src, true); err != nil {
			return err
		}
	}
	return s.reportFailed(src)
}

// reportFailed tells the collector a source's parser died, once.
func (s *session) reportFailed(src *agentSource) error {
	if src.reported {
		return nil
	}
	src.reported = true
	s.a.bmu.Lock()
	s.a.failed[src.path] = true
	s.a.bmu.Unlock()
	msg := ""
	if err := src.failure(); err != nil {
		msg = err.Error()
	}
	if err := s.c.Write(wire.TypeSourceState, wire.EncodeSourceState(wire.SourceState{
		SourceID: src.id, State: wire.SourceFailed, Error: msg,
	})); err != nil {
		return err
	}
	return s.c.Flush()
}

// drain is the clean shutdown: read every owned file to EOF, flush the
// partial last lines, close the parsers so buffered trailing records
// emit, ship the remainder, wait for every ack, and say Goodbye — the
// exact mirror of the local pipeline's stop sequence.
func (s *session) drain() error {
	sp := s.a.obs.Begin(selfobs.PipeAgent, "drain", s.a.cfg.ID, "")
	if err := s.scan(); err != nil {
		return err
	}
	for pass := 0; pass < 100; pass++ {
		total := 0
		for _, src := range s.sources {
			if src.dead() {
				continue
			}
			n, err := src.tail.Poll(src.write)
			total += n
			if err != nil && err != io.ErrClosedPipe {
				src.failErr(err)
			}
		}
		// Ship as we go so the credit window never wedges the drain.
		for _, src := range s.sources {
			if src.dead() {
				if err := s.failSource(src); err != nil {
					return err
				}
				continue
			}
			if err := s.ship(src, src.waitIdle()); err != nil {
				return err
			}
		}
		if total == 0 {
			break
		}
	}
	for _, src := range s.sources {
		if src.dead() {
			continue
		}
		if err := src.tail.Flush(src.write); err != nil && err != io.ErrClosedPipe {
			src.failErr(err)
		}
	}
	// EOF the parsers and join them: a flushed partial line only becomes a
	// record once the parser sees end of input.
	for _, src := range s.sources {
		src.pw.Close()
		<-src.done
	}
	for _, src := range s.sources {
		if src.dead() {
			if err := s.failSource(src); err != nil {
				return err
			}
			continue
		}
		if err := s.ship(src, true); err != nil {
			return err
		}
	}
	// Close the drain span before rendering: the ship below carries every
	// span recorded so far, including this one.
	sp.End(int64(len(s.sources)), 0)
	if err := s.shipSelfTrace(); err != nil {
		return err
	}
	// Every batch acked before Goodbye: the collector may then retire the
	// session knowing all records are applied.
	s.mu.Lock()
	for s.outstanding > 0 && !s.dead {
		s.cond.Wait()
	}
	dead, deadErr := s.dead, s.deadErr
	s.mu.Unlock()
	if dead {
		return deadErr
	}
	if err := s.c.Write(wire.TypeGoodbye, wire.EncodeGoodbye(wire.Goodbye{Reason: "drained"})); err != nil {
		return err
	}
	return s.c.Flush()
}

// shipSelfTrace ships the agent's own telemetry as one final synthetic
// source, after every real source has drained. The spans render through
// the selfobs log format and re-parse with the registered selftrace
// mScopeParser, so the shipped schema is exactly what a file ingest of
// the same log would load. The synthetic key's base name starts with the
// agent ID, which HostOf turns into the warehouse table prefix: spans
// land in "<ID>_selftrace" and the fleet view attributes them to this
// node. Best-effort: a collector that already holds bytes under this key
// (an earlier agent generation reusing the ID) skips the ship rather
// than splice two unrelated logs at a byte offset.
func (s *session) shipSelfTrace() error {
	obs := s.a.obs
	if obs == nil {
		return nil
	}
	name := s.a.cfg.ID + "_selftrace.log"
	b, ok := s.a.cfg.Plan.Find(name)
	if !ok {
		return nil
	}
	parser, err := parsers.Get(b.Parser)
	if err != nil {
		return nil
	}
	var buf bytes.Buffer
	if _, err := obs.WriteLog(&buf); err != nil {
		return err
	}
	data := buf.Bytes()
	if len(data) == 0 {
		return nil
	}
	full := filepath.Join(s.a.cfg.LogDir, name)
	s.nextID++
	id := s.nextID
	ch := make(chan int64, 1)
	s.mu.Lock()
	s.resumes[id] = ch
	s.mu.Unlock()
	if err := s.c.Write(wire.TypeOpen, wire.EncodeOpen(wire.Open{
		SourceID: id, Key: full, Name: name,
	})); err != nil {
		return err
	}
	if err := s.c.Flush(); err != nil {
		return err
	}
	var offset int64
	select {
	case offset = <-ch:
	case <-s.deadCh:
		return s.deadErr
	case <-time.After(30 * time.Second):
		return fmt.Errorf("agentd: %s: no Resume within 30s", name)
	}
	if offset != 0 {
		return nil // denied, or a prior generation's bytes: skip
	}
	var entries []mxml.Entry
	emit := func(e mxml.Entry) error {
		entries = append(entries, e)
		return nil
	}
	if err := parser.Parse(bytes.NewReader(data), b.Instructions, emit); err != nil {
		return err
	}
	max := s.a.cfg.MaxBatchRecords
	var seq uint64
	for start := 0; start < len(entries); start += max {
		end := start + max
		if end > len(entries) {
			end = len(entries)
		}
		chunk := entries[start:end]
		if err := s.acquire(int64(len(chunk))); err != nil {
			return err
		}
		seq++
		bt := wire.Batch{SourceID: id, Seq: seq}
		if end == len(entries) {
			bt.Offset = int64(len(data))
		}
		bt.AppendEntries(chunk)
		payload := wire.EncodeBatch(&bt)
		for i := range chunk {
			chunk[i].Release()
		}
		if err := s.c.Write(wire.TypeBatch, payload); err != nil {
			return err
		}
		s.mu.Lock()
		s.outstanding++
		s.mu.Unlock()
		s.a.batchesSent.Add(1)
		s.a.recordsSent.Add(int64(len(chunk)))
		// Flush before the next acquire can block (see ship).
		if err := s.c.Flush(); err != nil {
			return err
		}
	}
	return nil
}

// teardown closes the per-session source machinery after the connection
// is gone; pending records are dropped — the resume offset re-reads them.
func (s *session) teardown() {
	for _, src := range s.sources {
		src.pw.Close()
		<-src.done
		src.mu.Lock()
		for i := range src.pending {
			src.pending[i].Release()
		}
		src.pending = nil
		src.mu.Unlock()
	}
}

// agentSource is one tailed file within a session.
type agentSource struct {
	id      uint32
	path    string
	name    string
	binding transform.Binding
	parser  parsers.Parser
	tail    *stream.Tailer
	pw      *io.PipeWriter
	mr      *meteredReader
	done    chan struct{} // parser goroutine exited

	seq      uint64
	lastOff  int64
	lastQuar int64
	reported bool // SourceFailed sent
	written  atomic.Int64

	mu          sync.Mutex
	pending     []mxml.Entry
	quarantined int64
	failed      bool
	err         error
}

func (src *agentSource) write(b []byte) error {
	n, err := src.pw.Write(b)
	src.written.Add(int64(n))
	return err
}

func (src *agentSource) dead() bool {
	src.mu.Lock()
	defer src.mu.Unlock()
	return src.failed
}

func (src *agentSource) failure() error {
	src.mu.Lock()
	defer src.mu.Unlock()
	return src.err
}

func (src *agentSource) failErr(err error) {
	src.mu.Lock()
	defer src.mu.Unlock()
	if !src.failed {
		src.failed = true
		src.err = err
	}
}

// parse runs the source's mScopeParser over the pipe — degraded mode when
// supported, so malformed regions are quarantined and counted exactly as
// the local pipeline and the batch converter count them.
func (src *agentSource) parse() {
	defer close(src.done)
	emit := func(e mxml.Entry) error {
		src.mu.Lock()
		src.pending = append(src.pending, e)
		src.mu.Unlock()
		return nil
	}
	sink := func(parsers.Malformed) error {
		src.mu.Lock()
		src.quarantined++
		src.mu.Unlock()
		return nil
	}
	var err error
	if dp, ok := src.parser.(parsers.DegradedParser); ok {
		err = dp.ParseDegraded(src.mr, src.binding.Instructions, emit, sink)
	} else {
		err = src.parser.Parse(src.mr, src.binding.Instructions, emit)
	}
	if err != nil && err != io.ErrClosedPipe {
		src.failErr(err)
	}
	// Unblock any in-flight tailer write permanently.
	if pr, ok := src.mr.r.(*io.PipeReader); ok {
		pr.CloseWithError(io.ErrClosedPipe)
	}
}

// waitIdle waits until the parser has consumed everything written and is
// blocked on its next Read — the quiesce point where tail.Committed()
// covers exactly the records in pending. False means the parser never
// went idle (it died, or is wedged): the caller must not advance the
// shipped offset this cycle.
func (src *agentSource) waitIdle() bool {
	deadline := time.Now().Add(10 * time.Second)
	for {
		select {
		case <-src.done:
			return false
		default:
		}
		if src.mr.waiting.Load() && src.mr.consumed.Load() == src.written.Load() {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// meteredReader tracks whether its consumer is blocked in Read and how
// many bytes it has consumed. "Blocked with everything consumed" is the
// quiesce point: io.Pipe writes are synchronous, so once the parser is
// back in Read having drained every written byte, every record those
// bytes held has been emitted. The consumed count closes the race where
// a pipe write has returned but the reader has not yet re-flagged
// waiting — mid-gap, consumed < written keeps the caller spinning.
type meteredReader struct {
	r        io.Reader
	waiting  atomic.Bool
	consumed atomic.Int64
}

func (m *meteredReader) Read(p []byte) (int, error) {
	m.waiting.Store(true)
	n, err := m.r.Read(p)
	m.consumed.Add(int64(n))
	m.waiting.Store(false)
	return n, err
}

// Status is a point-in-time agent snapshot for the CLI and /metrics.
type Status struct {
	ID            string `json:"id"`
	Connected     bool   `json:"connected"`
	Sources       int64  `json:"sources"`
	BatchesSent   int64  `json:"batches_sent"`
	RecordsSent   int64  `json:"records_sent"`
	AcksReceived  int64  `json:"acks_received"`
	Reconnects    int64  `json:"reconnects"`
	DialErrors    int64  `json:"dial_errors"`
	WireTxBytes   int64  `json:"wire_tx_bytes"`
	WireRxBytes   int64  `json:"wire_rx_bytes"`
	Quarantined   int64  `json:"quarantined"`
	Credits       int64  `json:"credits"`
	FidelityState string `json:"collector_fidelity"`
	QueuePct      int    `json:"collector_queue_pct"`
}

// Status snapshots the agent counters.
func (a *Agent) Status() Status {
	a.mu.Lock()
	ctl := a.lastCtrl
	a.mu.Unlock()
	st, _ := fidelity.FromByte(ctl.State)
	return Status{
		ID:            a.cfg.ID,
		Connected:     a.liveSources.Load() > 0 || a.creditsGauge.Load() > 0,
		Sources:       a.liveSources.Load(),
		BatchesSent:   a.batchesSent.Load(),
		RecordsSent:   a.recordsSent.Load(),
		AcksReceived:  a.acksReceived.Load(),
		Reconnects:    a.reconnects.Load(),
		DialErrors:    a.dialErrors.Load(),
		WireTxBytes:   a.wireTx.Load(),
		WireRxBytes:   a.wireRx.Load(),
		Quarantined:   a.quarantined.Load(),
		Credits:       a.creditsGauge.Load(),
		FidelityState: st.String(),
		QueuePct:      int(ctl.QueuePct),
	}
}

// MetricsText renders the agent counters in Prometheus exposition
// format, through the shared promfmt writer every mscope surface uses.
func (a *Agent) MetricsText() string {
	st := a.Status()
	var w promfmt.Writer
	c := func(name string, v int64, help string) {
		w.Counter(promfmt.Prefix+"agent_"+name, help, float64(v))
	}
	g := func(name string, v int64, help string) {
		w.Gauge(promfmt.Prefix+"agent_"+name, help, float64(v))
	}
	c("batches_sent_total", st.BatchesSent, "batch frames shipped to the collector")
	c("records_sent_total", st.RecordsSent, "records shipped to the collector")
	c("acks_received_total", st.AcksReceived, "batch acks received")
	c("reconnects_total", st.Reconnects, "sessions re-established after a drop")
	c("dial_errors_total", st.DialErrors, "failed collector dials")
	c("wire_tx_bytes_total", st.WireTxBytes, "raw bytes written to the collector")
	c("wire_rx_bytes_total", st.WireRxBytes, "raw bytes read from the collector")
	c("quarantined_total", st.Quarantined, "malformed regions diverted at this node")
	g("sources", st.Sources, "sources currently open with the collector")
	g("credits", st.Credits, "record credits currently held")
	fidVal := int64(0)
	switch st.FidelityState {
	case "aggregate":
		fidVal = 1
	case "shed":
		fidVal = 2
	}
	g("collector_fidelity_state", fidVal, "collector-pushed fidelity: 0 full, 1 aggregate, 2 shed")
	g("collector_queue_pct", int64(st.QueuePct), "collector record-channel fill percent")
	return w.String()
}

// Handler serves the agent's observability endpoints: /status as JSON,
// /metrics as Prometheus text, /healthz as a readiness probe that holds
// 200 while the agent is connected to its collector.
func (a *Agent) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/status", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		_ = enc.Encode(a.Status())
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		_, _ = w.Write([]byte(a.MetricsText()))
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		st := a.Status()
		stopped := false
		select {
		case <-a.doneCh:
			stopped = true
		default:
		}
		probes := map[string]bool{
			"wire":    st.Connected,
			"running": !stopped,
		}
		writeHealth(w, probes, st.Connected && !stopped)
	})
	return mux
}

// writeHealth renders one readiness body: every probe with its state,
// HTTP 200 iff all hold.
func writeHealth(w http.ResponseWriter, probes map[string]bool, ok bool) {
	w.Header().Set("Content-Type", "application/json")
	if !ok {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	_ = enc.Encode(struct {
		OK     bool            `json:"ok"`
		Probes map[string]bool `json:"probes"`
	}{OK: ok, Probes: probes})
}
