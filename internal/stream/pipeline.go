package stream

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/gt-elba/milliscope/internal/core"
	"github.com/gt-elba/milliscope/internal/faults"
	"github.com/gt-elba/milliscope/internal/fidelity"
	"github.com/gt-elba/milliscope/internal/mscopedb"
	"github.com/gt-elba/milliscope/internal/mxml"
	"github.com/gt-elba/milliscope/internal/parsers"
	"github.com/gt-elba/milliscope/internal/selfobs"
	"github.com/gt-elba/milliscope/internal/simtime"
	"github.com/gt-elba/milliscope/internal/transform"
)

// Self-telemetry counters for the per-record loader stages, where even a
// buffered span per row would dominate the work being measured. They
// no-op unless a selfobs collector is enabled.
var (
	obsRowsAppended   = selfobs.NewCounter(selfobs.PipeLive, "append", "rows_appended")
	obsWatermarkMoves = selfobs.NewCounter(selfobs.PipeLive, "watermark", "advances")
)

// Config parameterizes a live pipeline. Zero values select defaults.
type Config struct {
	// LogDir is the directory tailed for monitor logs. Required.
	LogDir string
	// DB receives the rows; pass a loaded warehouse to resume a previous
	// session (the ingest ledger checkpoints decide where tailing starts).
	// Nil opens a fresh one.
	DB *mscopedb.DB
	// Plan is the Parsing Declaration; nil uses the default.
	Plan *transform.Plan
	// Window is the detector's PIT window width (default 50ms).
	Window time.Duration
	// Poll is the tailer poll interval (default 10ms).
	Poll time.Duration
	// ErrorBudget is the per-source quarantine budget (default 5%): a
	// source whose corrupt-record ratio exceeds it is rejected, exactly as
	// the batch quarantine policy rejects a file.
	ErrorBudget float64
	// Skew is the clock-skew bound subtracted from the low watermark
	// (default: the fault model's 2ms).
	Skew time.Duration
	// Grace delays classification past the watermark (default 2s); see
	// DefaultGrace.
	Grace time.Duration
	// ChannelCap bounds the record channel (default 256). Backpressure:
	// when the loader lags, parsers block here, their pipes fill, and the
	// tailers stop reading — nothing buffers without bound. Stall events
	// (a parser finding the channel full) are counted and exported.
	ChannelCap int
	// Fidelity configures load-aware degradation; the zero value keeps
	// full fidelity unconditionally.
	Fidelity FidelityOptions
	// ConsumerDelay throttles the loader by this much per record — the
	// slow-consumer half of the chaos overload injector. Zero in
	// production.
	ConsumerDelay time.Duration
	// OnAlert, when set, receives each alert as it fires, from the loader
	// goroutine: it must not block on the pipeline itself.
	OnAlert func(Alert)

	// remote marks an engine fed over the network instead of by the tail
	// loop (set by NewRemote): no LogDir, no file discovery, no parsers —
	// sources are registered with OpenRemote and records injected with
	// RemoteSource.Append.
	remote bool
}

// minBudgetSamples is how many records a source must produce before the
// error budget can reject it — a handful of early corrupt lines is not a
// ratio.
const minBudgetSamples = 200

func (c *Config) withDefaults() (Config, error) {
	out := *c
	if out.LogDir == "" && !out.remote {
		return out, fmt.Errorf("stream: Config.LogDir is required")
	}
	if out.DB == nil {
		out.DB = mscopedb.Open()
	}
	if out.Plan == nil {
		out.Plan = transform.DefaultPlan()
	}
	if out.Window <= 0 {
		out.Window = 50 * time.Millisecond
	}
	if out.Poll <= 0 {
		out.Poll = 10 * time.Millisecond
	}
	if out.ErrorBudget == 0 {
		out.ErrorBudget = transform.DefaultErrorBudget
	}
	if out.Skew <= 0 {
		out.Skew = faults.DefaultSkewMax
	}
	if out.Grace <= 0 {
		out.Grace = DefaultGrace
	}
	if out.ChannelCap <= 0 {
		out.ChannelCap = 256
	}
	return out, nil
}

// rec is one parsed record in flight from a parser to the loader. done,
// when set, is invoked by the loader after the record is fully processed —
// the remote ingest path hangs ack and flow-control accounting off it.
type rec struct {
	src   *source
	entry mxml.Entry
	done  func()
}

// Pipeline is the live ingest-and-detect engine. Start launches the tail
// loop (file discovery + polling), one parser goroutine per source, and
// the loader (append, watermark, detection). Stop drains everything —
// remaining bytes are read to EOF, partial lines flushed, parsers joined,
// final windows classified — and checkpoints per-source byte offsets in
// the ingest ledger.
type Pipeline struct {
	cfg Config
	db  *mscopedb.DB
	wm  *Watermark
	det *detector
	fid *fidelityRun // nil when fidelity is off

	recs     chan rec
	dbReqs   chan func(*mscopedb.DB)
	stopCh   chan struct{}
	loadDone chan struct{}
	parserWG sync.WaitGroup

	rowsTotal atomic.Int64
	stalls    atomic.Int64 // backpressure stall events (channel found full)

	// loaderObs is the loader goroutine's span buffer, exposed so the
	// promotion path (called from the detector, on the loader) can record
	// spans without allocating a buffer per promotion.
	loaderObs *selfobs.Buf

	mu      sync.Mutex
	sources []*source
	byPath  map[string]*source
	alerts  []Alert
	started time.Time
	running bool
	stopped bool
	loadErr error
}

// New builds a pipeline; Start actually runs it.
func New(cfg Config) (*Pipeline, error) {
	c, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	p := &Pipeline{
		cfg:      c,
		db:       c.DB,
		wm:       NewWatermark(c.Skew.Microseconds()),
		det:      newDetector(c.DB, c.Window, c.Grace),
		recs:     make(chan rec, c.ChannelCap),
		dbReqs:   make(chan func(*mscopedb.DB)),
		stopCh:   make(chan struct{}),
		loadDone: make(chan struct{}),
		byPath:   make(map[string]*source),
	}
	if c.Fidelity.enabled() {
		p.fid = newFidelityRun(c.Fidelity)
		// The detector promotes the anomaly neighbourhood out of the rings
		// before building evidence, so degraded-mode verdicts see exactly
		// the full-fidelity rows they correlate against.
		p.det.promote = p.promoteNeighbourhood
	}
	return p, nil
}

// DB returns the warehouse the pipeline loads. Only touch it after Stop:
// during the run it belongs to the loader goroutine — use WithDB for
// mid-run access.
func (p *Pipeline) DB() *mscopedb.DB { return p.db }

// WithDB runs fn with exclusive access to the warehouse and blocks
// until it returns. While the pipeline runs, fn executes on the loader
// goroutine between records — ingest pauses for exactly the query's
// duration, and fn sees a consistent snapshot with no appender racing
// it. After the loader exits (Stop, or a remote drain) fn runs on the
// caller. This is what lets `mscope serve` query a live warehouse.
func (p *Pipeline) WithDB(fn func(db *mscopedb.DB)) {
	done := make(chan struct{})
	wrapped := func(db *mscopedb.DB) {
		defer close(done)
		fn(db)
	}
	select {
	case p.dbReqs <- wrapped:
		<-done
	case <-p.loadDone:
		fn(p.db)
	}
}

// Start launches the pipeline goroutines.
func (p *Pipeline) Start() {
	p.mu.Lock()
	if p.running {
		p.mu.Unlock()
		return
	}
	p.running = true
	p.started = time.Now()
	p.mu.Unlock()
	if !p.cfg.remote {
		go p.tailLoop()
	}
	go p.loader()
}

// Stop drains and joins the pipeline; safe to call once. It returns the
// first loader error (an append that failed), if any — parse-level damage
// is not an error here, it is quarantine policy.
func (p *Pipeline) Stop() error {
	p.mu.Lock()
	if !p.running {
		p.mu.Unlock()
		return fmt.Errorf("stream: pipeline not started")
	}
	already := p.stopped
	p.stopped = true
	p.mu.Unlock()
	if !already {
		if p.cfg.remote {
			// No tail loop owns the record channel in remote mode; the
			// caller guarantees every feeder has quiesced before Stop.
			close(p.recs)
		} else {
			close(p.stopCh)
		}
	}
	<-p.loadDone
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.loadErr
}

// Alerts returns the alerts raised so far, in raise order.
func (p *Pipeline) Alerts() []Alert {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]Alert, len(p.alerts))
	copy(out, p.alerts)
	return out
}

// tailLoop discovers and polls sources until stopped, then performs the
// shutdown drain: read every file to EOF, flush partial lines, close the
// parser pipes, join the parsers, and close the record channel so the
// loader can finish.
func (p *Pipeline) tailLoop() {
	obs := selfobs.NewBuf()
	defer obs.Close()
	ticker := time.NewTicker(p.cfg.Poll)
	defer ticker.Stop()
	for {
		select {
		case <-p.stopCh:
			p.scan()
			// Drain to EOF: keep polling while bytes still arrive (a
			// producer may race the shutdown), bounded so a still-live
			// writer cannot pin us here forever.
			for pass := 0; pass < 100; pass++ {
				if p.pollAll() == 0 {
					break
				}
			}
			p.flushAll()
			p.closePipes()
			p.parserWG.Wait()
			close(p.recs)
			return
		case <-ticker.C:
			p.scan()
			// The span is recorded only for cycles that moved bytes; an
			// un-Ended span is discarded for free, so idle polls cost
			// nothing in the telemetry either.
			sp := obs.Begin(selfobs.PipeLive, "tail", "poll", "")
			if n := p.pollAll(); n > 0 {
				sp.End(int64(n), 0)
			}
		}
	}
}

// scan discovers newly appeared streamable files — logs can show up after
// startup (a monitor started late, a tier recovered).
func (p *Pipeline) scan() {
	entries, err := os.ReadDir(p.cfg.LogDir)
	if err != nil {
		return // the directory may not exist yet
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names) // deterministic discovery order
	for _, name := range names {
		full := filepath.Join(p.cfg.LogDir, name)
		p.mu.Lock()
		_, known := p.byPath[full]
		p.mu.Unlock()
		if known || !Streamable(p.cfg.Plan, name) {
			continue
		}
		p.addSource(full, name)
	}
}

// resumableAtOffset reports whether a binding's format can restart
// mid-file: per-line formats resynchronize at any line boundary (a torn
// first line is quarantined), but anything that consumes a file header —
// collectl's column row, the slow log's HeaderLines — must re-read from
// byte zero (already-loaded records are then dropped by count instead).
func resumableAtOffset(b transform.Binding) bool {
	switch b.Parser {
	case "token", "lines":
		return b.Instructions.HeaderLines == 0
	default:
		return false
	}
}

// resumePoint consults the ingest ledger for where a source restarts:
// byte-resumable formats return the checkpointed offset and carry the
// consumed count forward; header-carrying formats re-read from zero and
// drop already-consumed records by count instead. The skip distance is
// the larger of the table's rows and the ledger's consumed count: equal
// for full-fidelity sessions, but a degraded session consumes (rolls up,
// sheds, promotes) far more records than it appends, and re-processing
// those would duplicate every previously promoted row.
func (p *Pipeline) resumePoint(s *source) int64 {
	off, known := p.db.LatestIngestOffset(s.path)
	if !known || off <= 0 {
		return 0
	}
	if resumableAtOffset(s.binding) {
		if n, ok := p.db.LatestIngestRows(s.path); ok {
			s.consumedBase.Store(n)
		}
		return off
	}
	var skip int64
	if p.db.HasTable(s.table) {
		if t, terr := p.db.Table(s.table); terr == nil {
			skip = int64(t.Rows())
		}
	}
	if n, ok := p.db.LatestIngestRows(s.path); ok && n > skip {
		skip = n
	}
	s.skipEntries.Store(skip)
	return 0
}

// addSource registers one file: resolve its binding, decide the resume
// point from the ingest ledger, start its tailer and parser.
func (p *Pipeline) addSource(full, name string) {
	b, _ := p.cfg.Plan.Find(name)
	parser, err := parsers.Get(b.Parser)
	if err != nil {
		return // a plan naming an unknown parser skips the file
	}
	host := transform.HostOf(full, b)
	s := &source{
		path:    full,
		name:    name,
		binding: b,
		table:   host + "_" + b.TableSuffix,
		host:    host,
		parser:  parser,
		state:   StateActive,
	}
	offset := p.resumePoint(s)
	s.tail = NewTailer(full, offset)
	pr, pw := io.Pipe()
	s.pw = pw
	p.wm.Register(full)
	p.parserWG.Add(1)
	go p.runParser(s, pr)
	p.mu.Lock()
	p.sources = append(p.sources, s)
	p.byPath[full] = s
	p.mu.Unlock()
}

// snapshot returns the current source list.
func (p *Pipeline) snapshot() []*source {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]*source, len(p.sources))
	copy(out, p.sources)
	return out
}

// pollAll polls every active source once and returns total new bytes.
func (p *Pipeline) pollAll() int {
	total := 0
	for _, s := range p.snapshot() {
		if st, _ := s.status(); st != StateActive {
			continue
		}
		n, err := s.tail.Poll(s.write)
		total += n
		if err != nil && !isClosedPipe(err) {
			s.setState(StateFailed, err)
			p.wm.Finish(s.path)
		}
	}
	return total
}

// flushAll emits every buffered partial last line.
func (p *Pipeline) flushAll() {
	for _, s := range p.snapshot() {
		if st, _ := s.status(); st != StateActive {
			continue
		}
		if err := s.tail.Flush(s.write); err != nil && !isClosedPipe(err) {
			s.setState(StateFailed, err)
		}
	}
}

// closePipes EOFs every parser.
func (p *Pipeline) closePipes() {
	for _, s := range p.snapshot() {
		s.pw.Close()
	}
}

func isClosedPipe(err error) bool {
	return err == io.ErrClosedPipe
}

// runParser feeds one source's pipe through its mScopeParser — degraded
// mode when the parser supports it, so malformed regions are counted and
// skipped with the same record-boundary resync the batch quarantine uses.
func (p *Pipeline) runParser(s *source, pr *io.PipeReader) {
	defer p.parserWG.Done()
	obs := selfobs.NewBuf()
	defer obs.Close()
	var emitted int64
	emit := func(e mxml.Entry) error {
		r := rec{src: s, entry: e}
		// Try the fast path first; a full channel is a backpressure stall —
		// counted, then waited out. The blocking send is the pressure edge
		// that stops the tailers, so the stall counter is exactly "times a
		// parser caught the loader behind".
		select {
		case p.recs <- r:
		default:
			p.stalls.Add(1)
			obsStalls.Add(1)
			p.recs <- r
		}
		emitted++
		return nil
	}
	sink := func(parsers.Malformed) error {
		s.quarantined.Add(1)
		return nil
	}
	// One span covers the source's whole parse: its duration is the
	// source's lifetime (the parser blocks on the pipe between polls), so
	// the interesting fields are the record and quarantine totals.
	sp := obs.Begin(selfobs.PipeLive, "parse", "source", s.name)
	var err error
	if dp, ok := s.parser.(parsers.DegradedParser); ok {
		err = dp.ParseDegraded(pr, s.binding.Instructions, emit, sink)
	} else {
		err = s.parser.Parse(pr, s.binding.Instructions, emit)
	}
	sp.End(emitted, s.quarantined.Load())
	if err != nil {
		s.parseErrs.Add(1)
		// A strict parser died; unblock the tailer permanently and stop
		// counting this source against the watermark.
		s.setState(StateFailed, err)
		p.wm.Finish(s.path)
		pr.CloseWithError(err)
		return
	}
	pr.Close()
}

// loader is the single consumer: append (or degrade) rows, advance
// frontiers, enforce the error budget, drive the fidelity controller, and
// run the detector as the watermark moves. The PIT statistic and the
// watermark are fed for every processed record regardless of fidelity
// state — detection must keep working precisely when the pipeline is
// degraded, or degradation would be blindness.
func (p *Pipeline) loader() {
	defer close(p.loadDone)
	obs := selfobs.NewBuf()
	defer obs.Close()
	p.loaderObs = obs
	defer func() { p.loaderObs = nil }()
	var lastLow int64
load:
	for {
		select {
		case r, ok := <-p.recs:
			if !ok {
				break load
			}
			p.processRec(r, obs, &lastLow)
			if r.done != nil {
				r.done()
			}
		case fn := <-p.dbReqs:
			// A WithDB caller borrows the warehouse between records.
			fn(p.db)
		}
	}
	// Channel closed: every parser is done. Classify the remainder with
	// the gating relaxed — all evidence has arrived — then flush the open
	// rollup cells and checkpoint. Detection runs before the final flush
	// so promotion still finds its ring rows.
	sp := obs.Begin(selfobs.PipeLive, "detect", "final", "")
	alerts := p.det.advance(finalLow, true, p.cfg.Window, time.Now)
	sp.End(int64(len(alerts)), 0)
	p.raise(alerts)
	p.flushRollup(finalLow, true)
	sp = obs.Begin(selfobs.PipeLive, "checkpoint", "final", "")
	p.checkpoint()
	// With a spill-backed warehouse, commit the segment store at the same
	// cut as the ledger rows just written; a crash after this point loses
	// nothing from the session. No-op for in-memory warehouses.
	if err := p.db.Checkpoint(); err != nil {
		p.recordLoadErr(err)
	}
	sp.End(int64(p.rowsTotal.Load()), 0)
}

// processRec is the loader's per-record work: append (or degrade) the row,
// advance frontiers, enforce the error budget, drive the fidelity
// controller, and run the detector as the watermark moves.
func (p *Pipeline) processRec(r rec, obs *selfobs.Buf, lastLow *int64) {
	if p.cfg.ConsumerDelay > 0 {
		time.Sleep(p.cfg.ConsumerDelay)
	}
	s := r.src
	if st, _ := s.status(); st == StateRejected {
		return
	}
	s.consumed.Add(1)
	us, hasTS := s.eventTimeUS(&r.entry)
	if s.skipEntries.Load() > 0 {
		s.skipEntries.Add(-1)
	} else {
		s.processed.Add(1)
		if s.host == "apache" && s.binding.TableSuffix == "event" {
			p.observeFront(&r.entry)
		}
		if st := p.fidState(); st == fidelity.Full || !hasTS {
			// Full fidelity — and the degraded modes' fallback for the
			// rare record with no usable clock, which neither the ring
			// nor the rollup grid could place.
			if s.app == nil {
				s.app = newAppender(p.db, s.table)
			}
			if err := s.app.append(r.entry); err != nil {
				s.setState(StateFailed, err)
				p.wm.Finish(s.path)
				p.recordLoadErr(err)
				return
			}
			s.rows.Add(1)
			p.rowsTotal.Add(1)
			obsRowsAppended.Add(1)
		} else {
			p.fid.degrade(s, &r.entry, us, st)
		}
	}
	if hasTS {
		p.wm.Observe(s.path, us)
		s.frontierUS.Store(us)
	}
	if q := s.quarantined.Load(); q > 0 {
		total := s.processed.Load() + q
		if total >= minBudgetSamples && float64(q)/float64(total) > p.cfg.ErrorBudget {
			s.setState(StateRejected, fmt.Errorf(
				"stream: %s: corrupt-record ratio %.4f exceeds error budget %.4f (%d of %d)",
				s.name, float64(q)/float64(total), p.cfg.ErrorBudget, q, total))
			p.wm.Finish(s.path)
		}
	}
	if p.fid != nil {
		p.fid.sinceEval++
		if p.fid.sinceEval >= p.fid.opts.EvalEvery {
			p.fid.sinceEval = 0
			p.evalPressure()
		}
	}
	if low, ok := p.wm.Low(); ok && low != finalLow && low >= *lastLow+p.det.windowUS {
		*lastLow = low
		obsWatermarkMoves.Add(1)
		p.evalPressure()
		p.flushRollup(low, false)
		sp := obs.Begin(selfobs.PipeLive, "detect", "advance", "")
		alerts := p.det.advance(low, false, p.cfg.Window, time.Now)
		sp.End(int64(len(alerts)), 0)
		p.raise(alerts)
		p.expireRings(low)
	}
}

// observeFront folds a front-tier event into the online PIT statistic.
func (p *Pipeline) observeFront(e *mxml.Entry) {
	uaS, ok1 := e.Get("ua")
	udS, ok2 := e.Get("ud")
	if !ok1 || !ok2 {
		return
	}
	ua, err1 := strconv.ParseInt(uaS, 10, 64)
	ud, err2 := strconv.ParseInt(udS, 10, 64)
	if err1 != nil || err2 != nil {
		return
	}
	p.det.observe(ua, ud)
}

// raise records new alerts and notifies the callback.
func (p *Pipeline) raise(alerts []Alert) {
	for _, a := range alerts {
		p.mu.Lock()
		a.ID = len(p.alerts) + 1
		p.alerts = append(p.alerts, a)
		cb := p.cfg.OnAlert
		p.mu.Unlock()
		if cb != nil {
			cb(a)
		}
	}
}

// checkpoint writes the per-source ledger rows: the byte offset fed to
// the parser and the records consumed. Consumption — not table rows — is
// what a restarted header-format resume must skip: under degraded
// fidelity most consumed records were rolled up or shed rather than
// appended, and re-processing them would duplicate every promoted row.
// For full-fidelity sessions the two counts are identical, so the ledger
// column keeps its historical meaning there. A later `mscope ingest` over
// the same directory, or a restarted live session, resumes from here
// instead of duplicating rows.
func (p *Pipeline) checkpoint() {
	// Sorted by source path: single-process discovery already yields this
	// order, and remote sources — whose Open order depends on network
	// arrival — must checkpoint identically for the ledger to be
	// byte-equal across deployment shapes.
	snap := p.snapshot()
	sort.Slice(snap, func(i, j int) bool { return snap[i].path < snap[j].path })
	for _, s := range snap {
		s.setState(StateDone, nil)
		consumed := s.consumedBase.Load() + s.consumed.Load()
		if !p.db.HasTable(s.table) && consumed == 0 {
			continue
		}
		if err := p.db.RecordIngestAt(s.table, s.path, int(consumed),
			s.committedOff(), simtime.Epoch); err != nil {
			p.recordLoadErr(err)
		}
	}
}

// padUS is the classification pad in microseconds — the slice margin the
// verdict correlates over, and therefore half of the promotion horizon.
func (p *Pipeline) padUS() int64 { return core.ClassifyPad.Microseconds() }
