package stream

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"github.com/gt-elba/milliscope/internal/core"
	"github.com/gt-elba/milliscope/internal/faults"
	"github.com/gt-elba/milliscope/internal/mscopedb"
	"github.com/gt-elba/milliscope/internal/transform"
)

// runFidelitySession drains a complete static-file live session (Start
// then Stop reads every source to EOF) under the given fidelity options.
func runFidelitySession(t *testing.T, dir string, db *mscopedb.DB, opts FidelityOptions) *Pipeline {
	t.Helper()
	pipe, err := New(Config{LogDir: dir, DB: db, Fidelity: opts})
	if err != nil {
		t.Fatal(err)
	}
	pipe.Start()
	if err := pipe.Stop(); err != nil {
		t.Fatal(err)
	}
	return pipe
}

// retainedRows counts the warehouse rows a session actually kept: every
// dynamic table (full-fidelity and promoted rows) plus the rollup
// aggregates, excluding the static metadata tables.
func retainedRows(db *mscopedb.DB) int64 {
	var total int64
	for _, name := range db.TableNames() {
		switch name {
		case mscopedb.TableExperiments, mscopedb.TableNodes,
			mscopedb.TableMonitors, mscopedb.TableIngests:
			continue
		}
		if t, err := db.Table(name); err == nil {
			total += int64(t.Rows())
		}
	}
	return total
}

// verdicts flattens alerts to comparable kind@node strings, sorted.
func verdicts(alerts []Alert) []string {
	var out []string
	for _, a := range alerts {
		out = append(out, fmt.Sprintf("%s@%s", a.Diagnosis.Kind, a.Diagnosis.Node))
	}
	sort.Strings(out)
	return out
}

// TestFidelityDifferentialVerdicts is the correctness proof for degraded
// mode: on every Section V scenario — plus a clean (fault-free) trial and
// chaos-corrupted replays — a session pinned to AGGREGATE fidelity must
// reach exactly the verdicts a full-fidelity session reaches, window for
// window, while retaining an order of magnitude fewer rows on clean
// traffic.
func TestFidelityDifferentialVerdicts(t *testing.T) {
	if testing.Short() {
		t.Skip("differential fidelity suite replays five trials; skipped under -short")
	}
	shrink := func(mk func(string) core.ExperimentConfig) func(string) core.ExperimentConfig {
		return func(dir string) core.ExperimentConfig {
			cfg := mk(dir)
			cfg.Ntier.Users = 50
			return cfg
		}
	}
	clean := func(dir string) core.ExperimentConfig {
		cfg := core.ScenarioDBIO(dir)
		cfg.Ntier.Users = 50
		cfg.Injectors = nil
		cfg.Name = "clean"
		return cfg
	}
	scenarios := []struct {
		name  string
		mk    func(string) core.ExperimentConfig
		chaos int64 // corruption seed, 0 = pristine
	}{
		{name: "clean", mk: clean},
		{name: "dbio", mk: shrink(core.ScenarioDBIO)},
		{name: "dirtypage", mk: shrink(core.ScenarioDirtyPage)},
		{name: "jvmgc", mk: shrink(core.ScenarioJVMGC)},
		// DVFS stays at full scale: the 0.12x downclock needs the default
		// concurrency before the online detector sees a VLRT window at all.
		{name: "dvfs", mk: core.ScenarioDVFS},
		{name: "dbio-chaos-seed2", mk: shrink(core.ScenarioDBIO), chaos: 2},
		{name: "dbio-chaos-seed3", mk: shrink(core.ScenarioDBIO), chaos: 3},
	}

	// Staging dirs live in the PARENT test's TempDir: a subtest's TempDir is
	// removed when the subtest ends, and the chaos seeds replay dbio's logs.
	parent := t
	staged := map[string]string{} // experiment name → log dir, trials shared across chaos seeds
	for _, sc := range scenarios {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			probe := sc.mk("")
			dir, ok := staged[probe.Name]
			if !ok {
				dir = parent.TempDir()
				if _, err := core.RunExperiment(sc.mk(dir)); err != nil {
					t.Fatalf("stage %s: %v", sc.name, err)
				}
				staged[probe.Name] = dir
			}
			if sc.chaos != 0 {
				corrupted := filepath.Join(parent.TempDir(), "chaos")
				if _, err := faults.Corrupt(dir, corrupted, faults.Config{
					Seed: sc.chaos, Rate: 0.01, Kinds: faults.LineKinds(),
				}); err != nil {
					t.Fatal(err)
				}
				dir = corrupted
			}

			full := runFidelitySession(t, dir, mscopedb.Open(), FidelityOptions{})
			agg := runFidelitySession(t, dir, mscopedb.Open(), FidelityOptions{Mode: FidelityAggregate})

			wantV, gotV := verdicts(full.Alerts()), verdicts(agg.Alerts())
			if len(wantV) != len(gotV) {
				t.Fatalf("full fidelity raised %v, aggregate raised %v", wantV, gotV)
			}
			for i := range wantV {
				if wantV[i] != gotV[i] {
					t.Errorf("verdict %d: full %q, aggregate %q", i, wantV[i], gotV[i])
				}
			}
			// Paired windows must overlap: same episode, not a coincidence.
			fa, ga := full.Alerts(), agg.Alerts()
			for _, a := range ga {
				overlapped := false
				for _, b := range fa {
					if a.Diagnosis.Window.StartMicros <= b.Diagnosis.Window.EndMicros &&
						b.Diagnosis.Window.StartMicros <= a.Diagnosis.Window.EndMicros {
						overlapped = true
					}
				}
				if !overlapped {
					t.Errorf("aggregate window [%d,%d] overlaps no full-fidelity window",
						a.Diagnosis.Window.StartMicros, a.Diagnosis.Window.EndMicros)
				}
			}

			fullRows, aggRows := retainedRows(full.DB()), retainedRows(agg.DB())
			if aggRows >= fullRows {
				t.Errorf("aggregate retained %d rows, full %d — no reduction", aggRows, fullRows)
			}
			t.Logf("%s: full=%d rows, aggregate=%d rows (%.1fx), verdicts=%v",
				sc.name, fullRows, aggRows, float64(fullRows)/float64(aggRows), gotV)
			if sc.name == "clean" {
				if len(wantV) != 0 {
					t.Errorf("clean trial raised alerts at full fidelity: %v", wantV)
				}
				if reduction := float64(fullRows) / float64(aggRows); reduction < 10 {
					t.Errorf("clean-traffic retention reduction %.1fx, want >= 10x", reduction)
				}
			} else if sc.chaos == 0 && len(wantV) == 0 {
				t.Errorf("fault scenario %s raised no alert at full fidelity", sc.name)
			}
		})
	}
}

// TestOverloadSoak drives the adaptive controller through a real overload:
// a 12x burst replay against a throttled consumer. The pipeline must stay
// inside its fixed memory bounds (bounded channel, bounded rings, rolled-up
// steady state), transition FULL→AGGREGATE and back without flapping, and
// still raise the disk-IO verdict from promoted evidence.
func TestOverloadSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("overload soak replays a throttled trial; skipped under -short")
	}
	// A dedicated 50-user trial keeps the throttled replay test-suite
	// friendly; the burst factor, not the absolute rate, drives saturation.
	stage := t.TempDir()
	cfg := core.ScenarioDBIO(stage)
	cfg.Ntier.Users = 50
	if _, err := core.RunExperiment(cfg); err != nil {
		t.Fatal(err)
	}
	liveDir := filepath.Join(t.TempDir(), "live")
	overload := faults.Overload{BurstAt: 0.1, BurstUntil: 0.4, BurstFactor: 12,
		ConsumerDelay: 120 * time.Microsecond}
	prod, err := NewProducer(ProducerConfig{
		SrcDir:   stage,
		DstDir:   liveDir,
		Duration: 4 * time.Second,
		Overload: &overload,
	})
	if err != nil {
		t.Fatal(err)
	}
	const ringCap = 16384
	pipe, err := New(Config{
		LogDir:        liveDir,
		ConsumerDelay: overload.ConsumerDelay,
		Fidelity:      FidelityOptions{Mode: FidelityAdaptive, RingCap: ringCap},
	})
	if err != nil {
		t.Fatal(err)
	}
	pipe.Start()
	if err := prod.Run(); err != nil {
		t.Fatal(err)
	}
	if err := pipe.Stop(); err != nil {
		t.Fatal(err)
	}

	st := pipe.Status()
	if st.Fidelity == nil {
		t.Fatal("adaptive session reports no fidelity status")
	}
	f := st.Fidelity

	// Backpressure must have engaged: the burst outruns the throttled
	// loader, parsers catch the channel full, and nothing buffers beyond
	// the channel + rings.
	if st.Stalls == 0 {
		t.Error("no backpressure stalls under a 12x burst with a throttled consumer")
	}
	if f.RingRows > int64(len(st.Sources))*ringCap {
		t.Errorf("ring rows %d exceed the %d-source x %d bound", f.RingRows, len(st.Sources), ringCap)
	}
	var consumed int64
	for _, s := range pipe.snapshot() {
		consumed += s.consumed.Load()
	}
	// The fixed-memory property: everything retained OUTSIDE the promoted
	// anomaly neighbourhood must stay a small fraction of the traffic. The
	// promoted rows themselves are the product — the window ± pad ± grace
	// evidence deliberately pulled back at full fidelity.
	steady := (st.Rows - f.RowsPromoted) + f.RollupRows
	if steady >= consumed/4 {
		t.Errorf("retained %d of %d consumed rows outside the anomaly neighbourhood — degradation shed too little",
			steady, consumed)
	}
	if f.RowsRolledUp == 0 {
		t.Error("overload never rolled up a row; controller cannot have degraded")
	}

	// Hysteresis: the controller must have degraded and recovered, without
	// flapping. The transition log is one-step contiguous by construction;
	// here we assert the soak shape.
	trs := pipe.fid.ctrl.Transitions()
	if len(trs) < 2 {
		t.Fatalf("%d transitions, want at least FULL→AGGREGATE→FULL; log: %+v", len(trs), trs)
	}
	if len(trs) > 4 {
		t.Errorf("%d transitions — flapping; log: %+v", len(trs), trs)
	}
	degraded, recovered := false, false
	for _, tr := range trs {
		if tr.From.String() == "full" && tr.To.String() == "aggregate" {
			degraded = true
		}
		if tr.From.String() == "aggregate" && tr.To.String() == "full" {
			recovered = true
		}
	}
	if !degraded || !recovered {
		t.Errorf("transition log %+v lacks FULL→AGGREGATE (%v) or AGGREGATE→FULL (%v)",
			trs, degraded, recovered)
	}

	// The millibottleneck must still be caught — via promoted evidence if
	// the anomaly landed inside a degraded stretch.
	found := false
	for _, a := range pipe.Alerts() {
		if a.Diagnosis.Kind == core.CauseDiskIO && a.Diagnosis.Node == "mysql" {
			found = true
		}
	}
	if !found {
		t.Errorf("no disk-io@mysql verdict under overload; got %v", verdicts(pipe.Alerts()))
	}
	t.Logf("soak: consumed=%d steady=%d (rows=%d rollup=%d promoted=%d) stalls=%d transitions=%+v",
		consumed, steady, st.Rows, f.RollupRows, f.RowsPromoted, st.Stalls, trs)
}

// TestFidelityRestartResume kills an aggregate-fidelity session mid-trial
// and restarts it over the same warehouse. The consumed-count ledger must
// prevent the second session from re-processing rolled-up records: no
// duplicate promoted rows, no re-flushed rollup windows.
func TestFidelityRestartResume(t *testing.T) {
	stage := stagedDBIO(t)
	bdb, _ := batchBaseline(t)
	plan := transform.DefaultPlan()
	dir := t.TempDir()

	entries, err := os.ReadDir(stage)
	if err != nil {
		t.Fatal(err)
	}
	full := map[string][]byte{}
	for _, e := range entries {
		if e.IsDir() || !Streamable(plan, e.Name()) {
			continue
		}
		data, err := os.ReadFile(filepath.Join(stage, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		full[e.Name()] = data
		b, _ := plan.Find(e.Name())
		cut := recordBoundary(b, data, 85*len(data)/100)
		if err := os.WriteFile(filepath.Join(dir, e.Name()), data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
	}

	db := mscopedb.Open()
	opts := FidelityOptions{Mode: FidelityAggregate}
	phase1 := runFidelitySession(t, dir, db, opts)
	if phase1.Status().Fidelity.RowsPromoted == 0 {
		t.Fatal("phase 1 promoted nothing; the cut must include the anomaly neighbourhood")
	}
	if len(phase1.Alerts()) == 0 {
		t.Fatal("phase 1 raised no alert")
	}

	for name, data := range full {
		if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	phase2 := runFidelitySession(t, dir, db, opts)

	// No table may exceed its batch row count: a resume that re-consumed
	// rolled-up records would re-promote the anomaly neighbourhood and
	// overshoot.
	for _, name := range db.TableNames() {
		if name == mscopedb.TableIngests || name == TableRollup {
			continue
		}
		lt, err := db.Table(name)
		if err != nil {
			t.Fatal(err)
		}
		if !bdb.HasTable(name) {
			if lt.Rows() > 0 {
				t.Errorf("table %s has %d rows but no batch counterpart", name, lt.Rows())
			}
			continue
		}
		bt, _ := bdb.Table(name)
		if lt.Rows() > bt.Rows() {
			t.Errorf("table %s: %d rows after restart exceeds the batch %d — duplicated promotion",
				name, lt.Rows(), bt.Rows())
		}
	}

	// Rollup windows must not be re-flushed: at most one duplicate key per
	// (table, metric) — the single window each boundary can straddle.
	rt, err := db.Table(TableRollup)
	if err != nil {
		t.Fatal(err)
	}
	ti, mi, wi := rt.ColIndex("tbl"), rt.ColIndex("metric"), rt.ColIndex("win_us")
	seen := map[string]int{}
	dups := map[string]int{}
	for r := 0; r < rt.Rows(); r++ {
		key := fmt.Sprintf("%s|%s|%d", rt.Str(ti, r), rt.Str(mi, r), rt.Int(wi, r))
		seen[key]++
		if seen[key] > 1 {
			dups[rt.Str(ti, r)+"|"+rt.Str(mi, r)]++
		}
	}
	for series, n := range dups {
		if n > 1 {
			t.Errorf("rollup series %s re-flushed %d windows — phase 2 re-consumed phase 1's records",
				series, n)
		}
	}

	// A third run over unchanged files must consume nothing new.
	phase3 := runFidelitySession(t, dir, db, opts)
	var extra int64
	for _, s := range phase3.snapshot() {
		extra += s.processed.Load()
	}
	if extra != 0 {
		t.Errorf("restart over unchanged files processed %d records; ledger resume must be idempotent", extra)
	}
	_ = phase2
}

// TestFidelityRingEviction pins the degraded pipeline against a ring far
// too small for the trial: eviction must stay an accounting matter — the
// session completes, bounds hold, and promotion never errors or
// duplicates. (Whether the alert survives depends on how much
// neighbourhood the tiny ring kept; that is the documented trade.)
func TestFidelityRingEviction(t *testing.T) {
	stage := stagedDBIO(t)
	pipe, err := New(Config{LogDir: stage, Fidelity: FidelityOptions{Mode: FidelityAggregate, RingCap: 64}})
	if err != nil {
		t.Fatal(err)
	}
	pipe.Start()
	if err := pipe.Stop(); err != nil {
		t.Fatalf("tiny-ring session failed: %v", err)
	}
	f := pipe.Status().Fidelity
	if f.RingEvicted == 0 {
		t.Error("a 64-slot ring over the full trial evicted nothing")
	}
	if f.RingRows > int64(len(pipe.Status().Sources))*64 {
		t.Errorf("ring rows %d exceed capacity bound", f.RingRows)
	}
	bdb, _ := batchBaseline(t)
	for _, name := range pipe.DB().TableNames() {
		if name == mscopedb.TableIngests || name == TableRollup || !bdb.HasTable(name) {
			continue
		}
		lt, _ := pipe.DB().Table(name)
		bt, _ := bdb.Table(name)
		if lt.Rows() > bt.Rows() {
			t.Errorf("table %s: %d promoted rows exceed the batch %d — duplicate promotion under eviction",
				name, lt.Rows(), bt.Rows())
		}
	}
}
