package stream

import (
	"encoding/json"
	"net/http"
	"time"

	"github.com/gt-elba/milliscope/internal/promfmt"
)

// SourceStatus is one tailed file's live state.
type SourceStatus struct {
	File        string `json:"file"`
	Table       string `json:"table"`
	State       string `json:"state"`
	Error       string `json:"error,omitempty"`
	Offset      int64  `json:"offset"`
	Rows        int64  `json:"rows"`
	Quarantined int64  `json:"quarantined"`
	ParseErrors int64  `json:"parse_errors"`
	Rotations   int64  `json:"rotations"`
	FrontierUS  int64  `json:"frontier_us"`
}

// Status is a point-in-time snapshot of the pipeline.
type Status struct {
	Running        bool      `json:"running"`
	StartedWall    time.Time `json:"started"`
	WindowMS       float64   `json:"window_ms"`
	LowWatermarkUS int64     `json:"low_watermark_us"`
	MaxFrontierUS  int64     `json:"max_frontier_us"`
	// LagUS is the event-time spread between the fastest source and the
	// low watermark — how far behind the slowest tier is reporting.
	LagUS       int64   `json:"lag_us"`
	Rows        int64   `json:"rows"`
	RowsPerSec  float64 `json:"rows_per_sec"`
	Queued      int     `json:"queued"`
	Quarantined int64   `json:"quarantined"`
	Alerts      int     `json:"alerts"`
	// Stalls counts backpressure stall events: a parser finding the
	// record channel full and having to wait for the loader.
	Stalls   int64           `json:"backpressure_stalls"`
	Fidelity *FidelityStatus `json:"fidelity,omitempty"`
	Sources  []SourceStatus  `json:"sources"`
}

// FidelityStatus is the degradation subsystem's live state; present in
// Status only when Config.Fidelity enables it.
type FidelityStatus struct {
	Mode string `json:"mode"`
	// State is the current fidelity level: full, aggregate, or shed.
	State string `json:"state"`
	// RowsRolledUp counts records folded into per-window aggregates
	// instead of being appended at full fidelity.
	RowsRolledUp int64 `json:"rows_rolled_up"`
	// RowsPromoted counts ring rows retroactively appended around flagged
	// windows.
	RowsPromoted int64 `json:"rows_promoted"`
	// RowsShed counts records dropped with no ring retention (SHED mode).
	RowsShed int64 `json:"rows_shed"`
	// RollupRows is the size of the mscope_rollup aggregate table.
	RollupRows int64 `json:"rollup_rows"`
	// RingRows is the rows currently retained across all source rings.
	RingRows int64 `json:"ring_rows"`
	// RingEvicted counts ring rows overwritten at capacity — lost to
	// promotion forever.
	RingEvicted int64 `json:"ring_evicted"`
	// Transitions counts committed fidelity state changes this session.
	Transitions int64 `json:"transitions"`
}

// Status snapshots the pipeline; safe to call concurrently with the run.
func (p *Pipeline) Status() Status {
	p.mu.Lock()
	running := p.running && !p.stopped
	started := p.started
	alerts := len(p.alerts)
	p.mu.Unlock()
	st := Status{
		Running:     running,
		StartedWall: started,
		WindowMS:    float64(p.cfg.Window.Microseconds()) / 1000,
		Rows:        p.rowsTotal.Load(),
		Queued:      len(p.recs),
		Alerts:      alerts,
		Stalls:      p.stalls.Load(),
	}
	if f := p.fid; f != nil {
		st.Fidelity = &FidelityStatus{
			Mode:         f.opts.Mode,
			State:        p.fidState().String(),
			RowsRolledUp: f.rolledUp.Load(),
			RowsPromoted: f.promoted.Load(),
			RowsShed:     f.shedRows.Load(),
			RollupRows:   f.rollupRows.Load(),
			RingRows:     f.ringRows.Load(),
			RingEvicted:  f.ringEvicted.Load(),
			Transitions:  f.transitions.Load(),
		}
	}
	if low, ok := p.wm.Low(); ok && low != finalLow {
		st.LowWatermarkUS = low
	}
	st.MaxFrontierUS = p.wm.MaxFrontier()
	if st.LowWatermarkUS > 0 && st.MaxFrontierUS > st.LowWatermarkUS {
		st.LagUS = st.MaxFrontierUS - st.LowWatermarkUS
	}
	if !started.IsZero() {
		if secs := time.Since(started).Seconds(); secs > 0 {
			st.RowsPerSec = float64(st.Rows) / secs
		}
	}
	for _, s := range p.snapshot() {
		state, err := s.status()
		ss := SourceStatus{
			File:        s.name,
			Table:       s.table,
			State:       state,
			Offset:      s.committedOff(),
			Rows:        s.rows.Load(),
			Quarantined: s.quarantined.Load(),
			ParseErrors: s.parseErrs.Load(),
			Rotations:   s.rotationCount(),
			FrontierUS:  s.frontierUS.Load(),
		}
		if err != nil {
			ss.Error = err.Error()
		}
		st.Quarantined += ss.Quarantined
		st.Sources = append(st.Sources, ss)
	}
	return st
}

// alertView flattens an Alert for JSON: CauseKind renders as its name.
type alertView struct {
	ID          int       `json:"id"`
	Raised      time.Time `json:"raised"`
	WatermarkUS int64     `json:"watermark_us"`
	StartUS     int64     `json:"window_start_us"`
	EndUS       int64     `json:"window_end_us"`
	PeakUS      float64   `json:"peak_rt_us"`
	Kind        string    `json:"kind"`
	Node        string    `json:"node"`
	Verdict     string    `json:"verdict"`
	Missing     []string  `json:"missing,omitempty"`
}

func viewAlert(a Alert) alertView {
	return alertView{
		ID:          a.ID,
		Raised:      a.Raised,
		WatermarkUS: a.WatermarkUS,
		StartUS:     a.Diagnosis.Window.StartMicros,
		EndUS:       a.Diagnosis.Window.EndMicros,
		PeakUS:      a.Diagnosis.Window.Peak,
		Kind:        a.Diagnosis.Kind.String(),
		Node:        a.Diagnosis.Node,
		Verdict:     a.Diagnosis.Verdict,
		Missing:     a.Missing,
	}
}

// MetricsText renders the pipeline gauges in Prometheus exposition
// format, through the shared promfmt writer every mscope surface uses.
func (p *Pipeline) MetricsText() string {
	st := p.Status()
	var w promfmt.Writer
	g := func(name string, v float64, help string) {
		w.Gauge(promfmt.Prefix+name, help, v)
	}
	g("rows_total", float64(st.Rows), "warehouse rows appended this session")
	g("rows_per_sec", st.RowsPerSec, "mean append throughput")
	g("quarantined_total", float64(st.Quarantined), "malformed regions diverted")
	g("open_alerts", float64(st.Alerts), "millibottleneck alerts raised")
	g("low_watermark_us", float64(st.LowWatermarkUS), "event time all tiers have reported past")
	g("pipeline_lag_us", float64(st.LagUS), "event-time spread between fastest source and watermark")
	g("queued_records", float64(st.Queued), "records buffered between parsers and loader")
	c := func(name string, v float64, help string) {
		w.Counter(promfmt.Prefix+name, help, v)
	}
	c("backpressure_stalls_total", float64(st.Stalls),
		"times a parser found the record channel full and waited for the loader")
	// Fidelity families are exported unconditionally (zero when the
	// subsystem is off) so dashboards and the conformance test see a
	// stable metric set.
	var fs FidelityStatus
	if st.Fidelity != nil {
		fs = *st.Fidelity
	}
	stateVal := 0.0
	switch fs.State {
	case "aggregate":
		stateVal = 1
	case "shed":
		stateVal = 2
	}
	g("fidelity_state", stateVal, "fidelity level: 0 full, 1 aggregate, 2 shed")
	c("fidelity_transitions_total", float64(fs.Transitions), "committed fidelity state changes")
	c("rows_rolled_up_total", float64(fs.RowsRolledUp), "records folded into per-window aggregates")
	c("rows_promoted_total", float64(fs.RowsPromoted), "ring rows promoted around flagged windows")
	c("rows_shed_total", float64(fs.RowsShed), "records dropped without ring retention")
	c("ring_evicted_total", float64(fs.RingEvicted), "ring rows overwritten at capacity")
	g("ring_rows", float64(fs.RingRows), "rows currently retained in the promotion rings")
	g("rollup_rows", float64(fs.RollupRows), "rows in the mscope_rollup aggregate table")
	// Per-source families. The exposition format requires each family's
	// # HELP/# TYPE header exactly once, before all of its samples — so the
	// samples are grouped by family, not by source.
	family := func(name, typ, help string, value func(SourceStatus) int64) {
		if len(st.Sources) == 0 {
			return
		}
		var f *promfmt.Family
		if typ == "gauge" {
			f = w.GaugeFamily(promfmt.Prefix+name, help)
		} else {
			f = w.CounterFamily(promfmt.Prefix+name, help)
		}
		for _, s := range st.Sources {
			f.Label("file", s.File, float64(value(s)))
		}
	}
	family("source_offset_bytes", "gauge", "bytes of the source consumed by the tailer",
		func(s SourceStatus) int64 { return s.Offset })
	family("source_rows", "gauge", "warehouse rows appended from the source",
		func(s SourceStatus) int64 { return s.Rows })
	family("source_quarantined_total", "counter", "malformed regions diverted from the source",
		func(s SourceStatus) int64 { return s.Quarantined })
	family("source_parse_errors_total", "counter", "unrecoverable parser failures on the source",
		func(s SourceStatus) int64 { return s.ParseErrors })
	return w.String()
}

// Healthz writes the pipeline's readiness: 200 while the engine is
// running (warehouse attached, detector live), 503 once stopped or
// before Start. The body is JSON so callers can see which probe failed.
func (p *Pipeline) Healthz(w http.ResponseWriter, r *http.Request) {
	p.mu.Lock()
	running := p.running && !p.stopped
	p.mu.Unlock()
	writeHealth(w, map[string]bool{
		"warehouse": p.db != nil,
		"detector":  running,
	}, running && p.db != nil)
}

// writeHealth renders one readiness body: every probe with its state,
// HTTP 200 iff all hold.
func writeHealth(w http.ResponseWriter, probes map[string]bool, ok bool) {
	w.Header().Set("Content-Type", "application/json")
	if !ok {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	_ = enc.Encode(struct {
		OK     bool            `json:"ok"`
		Probes map[string]bool `json:"probes"`
	}{OK: ok, Probes: probes})
}

// Handler serves the live endpoints: /status and /alerts as JSON,
// /metrics as Prometheus text.
func (p *Pipeline) Handler() http.Handler {
	mux := http.NewServeMux()
	writeJSON := func(w http.ResponseWriter, v any) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		_ = enc.Encode(v)
	}
	mux.HandleFunc("/status", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, p.Status())
	})
	mux.HandleFunc("/alerts", func(w http.ResponseWriter, r *http.Request) {
		alerts := p.Alerts()
		views := make([]alertView, 0, len(alerts))
		for _, a := range alerts {
			views = append(views, viewAlert(a))
		}
		writeJSON(w, views)
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		_, _ = w.Write([]byte(p.MetricsText()))
	})
	mux.HandleFunc("/healthz", p.Healthz)
	return mux
}
