package stream

import (
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/gt-elba/milliscope/internal/promfmt"
)

// drainedPipeline runs the live pipeline to completion over the shared
// staged trial (static files: Start then Stop is one full drain).
func drainedPipeline(t *testing.T) *Pipeline {
	t.Helper()
	p, err := New(Config{LogDir: stagedDBIO(t)})
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	if err := p.Stop(); err != nil {
		t.Fatal(err)
	}
	return p
}

// TestMetricsExpositionConformance checks the Prometheus text format
// contract the scrapers rely on: every metric family gets exactly one
// # HELP and one # TYPE line, both before any of its samples — including
// the per-source families, whose samples must be grouped by family rather
// than interleaved per source.
func TestMetricsExpositionConformance(t *testing.T) {
	p := drainedPipeline(t)
	text := p.MetricsText()

	// The shared linter holds every surface to the same discipline; the
	// hand-rolled checks below pin the specific family set.
	if err := promfmt.Lint(text); err != nil {
		t.Errorf("promfmt.Lint: %v", err)
	}

	helpSeen := map[string]int{}
	typeSeen := map[string]int{}
	samples := map[string]int{}
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		switch {
		case strings.HasPrefix(line, "# HELP "):
			name := strings.Fields(line)[2]
			helpSeen[name]++
			if samples[name] > 0 {
				t.Errorf("HELP for %s appears after its samples", name)
			}
		case strings.HasPrefix(line, "# TYPE "):
			name := strings.Fields(line)[2]
			typeSeen[name]++
			if samples[name] > 0 {
				t.Errorf("TYPE for %s appears after its samples", name)
			}
		case strings.HasPrefix(line, "#"), line == "":
			// other comments are fine anywhere
		default:
			name := line
			if i := strings.IndexAny(name, "{ "); i >= 0 {
				name = name[:i]
			}
			if helpSeen[name] == 0 || typeSeen[name] == 0 {
				t.Errorf("sample for %s before its HELP/TYPE header: %q", name, line)
			}
			samples[name]++
		}
	}
	for name, n := range helpSeen {
		if n != 1 {
			t.Errorf("%s has %d HELP lines, want exactly 1", name, n)
		}
		if typeSeen[name] != 1 {
			t.Errorf("%s has %d TYPE lines, want exactly 1", name, typeSeen[name])
		}
		if samples[name] == 0 {
			t.Errorf("%s declared but has no samples", name)
		}
	}
	// The per-source families — including the two added for quarantine and
	// parse failures — must expose one sample per tailed source.
	nSources := len(p.Status().Sources)
	if nSources == 0 {
		t.Fatal("no sources tailed")
	}
	for _, fam := range []string{
		"mscope_source_offset_bytes",
		"mscope_source_rows",
		"mscope_source_quarantined_total",
		"mscope_source_parse_errors_total",
	} {
		if samples[fam] != nSources {
			t.Errorf("%s has %d samples, want one per source (%d)", fam, samples[fam], nSources)
		}
	}
	// The fidelity and backpressure families are exported unconditionally —
	// zero-valued when degradation is off — so scrapers see a stable set.
	for _, fam := range []string{
		"mscope_backpressure_stalls_total",
		"mscope_fidelity_state",
		"mscope_fidelity_transitions_total",
		"mscope_rows_rolled_up_total",
		"mscope_rows_promoted_total",
		"mscope_rows_shed_total",
		"mscope_ring_evicted_total",
		"mscope_ring_rows",
		"mscope_rollup_rows",
	} {
		if samples[fam] != 1 {
			t.Errorf("%s has %d samples, want exactly 1", fam, samples[fam])
		}
	}
}

// TestHealthzReadiness: the pipeline's /healthz holds 200 while the
// engine runs and flips to 503 once it stops — the probe orchestrators
// poll before routing traffic at the serve layer.
func TestHealthzReadiness(t *testing.T) {
	p, err := New(Config{LogDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	h := p.Handler()
	get := func() int {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
		return rec.Code
	}
	if code := get(); code != 503 {
		t.Errorf("/healthz before Start: %d, want 503", code)
	}
	p.Start()
	if code := get(); code != 200 {
		t.Errorf("/healthz while running: %d, want 200", code)
	}
	if err := p.Stop(); err != nil {
		t.Fatal(err)
	}
	if code := get(); code != 503 {
		t.Errorf("/healthz after Stop: %d, want 503", code)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if body := rec.Body.String(); !strings.Contains(body, `"probes"`) || !strings.Contains(body, `"detector"`) {
		t.Errorf("/healthz body lacks probe detail: %s", body)
	}
}

// TestDebugHandlerSeparation checks the opt-in debug surface: pprof and
// expvar are served by DebugHandler, and are NOT reachable through the
// metrics/status handler, so --debug-addr is the only way to expose them.
func TestDebugHandlerSeparation(t *testing.T) {
	p := drainedPipeline(t)
	dbg := DebugHandler(p)

	rec := httptest.NewRecorder()
	dbg.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/vars", nil))
	if rec.Code != 200 {
		t.Fatalf("/debug/vars: %d", rec.Code)
	}
	body := rec.Body.String()
	for _, v := range []string{"mscope_live_rows", "mscope_live_alerts", "mscope_live_sources"} {
		if !strings.Contains(body, v) {
			t.Errorf("/debug/vars missing %s", v)
		}
	}

	rec = httptest.NewRecorder()
	dbg.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "goroutine") {
		t.Errorf("/debug/pprof/ index: code %d", rec.Code)
	}

	// The metrics handler must not expose the debug surface.
	for _, path := range []string{"/debug/vars", "/debug/pprof/"} {
		rec = httptest.NewRecorder()
		p.Handler().ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		if rec.Code == 200 {
			t.Errorf("metrics handler serves %s; debug endpoints must stay on their own listener", path)
		}
	}
}
