package stream

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"github.com/gt-elba/milliscope/internal/faults"
	"github.com/gt-elba/milliscope/internal/transform"
)

// ProducerConfig parameterizes a log replay.
type ProducerConfig struct {
	// SrcDir holds a completed trial's monitor logs (the DES simulator
	// runs in virtual time, so a "live" run stages its logs first and
	// replays them at wall-clock pace).
	SrcDir string
	// DstDir receives the progressively growing copies the pipeline tails.
	DstDir string
	// Duration is the wall time over which the bytes are spread.
	Duration time.Duration
	// Tick is the write cadence (default 10ms).
	Tick time.Duration
	// Plan selects which files replay — only the streamable ones; nil uses
	// the default declaration.
	Plan *transform.Plan
	// ChaosRate > 0 corrupts the staged logs with the fault-injection
	// harness before replay (deterministic per ChaosSeed): garbage lines,
	// torn writes and duplicated records then travel through the live
	// pipeline, exercising the quarantine budget under streaming.
	ChaosRate float64
	// ChaosSeed seeds the corruptor (default 1).
	ChaosSeed int64
	// RotateAt, in (0,1), truncates every event log to zero bytes when the
	// replay crosses that fraction — copytruncate-style rotation. Bytes the
	// tailer has not read by then are lost, exactly as in production.
	RotateAt float64
	// Overload, when non-nil, reshapes the byte schedule with a burst (the
	// arrival-rate half of the overload injector; ConsumerDelay is applied
	// by the pipeline, not here). Nil auto-loads an overload.json sidecar
	// from SrcDir when one exists, so chaos-staged directories carry their
	// own load profile.
	Overload *faults.Overload
}

// replayFile is one file being progressively written.
type replayFile struct {
	name    string
	dst     string
	data    []byte
	written int
	event   bool
	rotated bool
}

// Producer replays a finished trial's logs into a directory at wall-clock
// pace, cutting at arbitrary byte boundaries — the tailer must cope with
// partial lines, because real log writers do not align flushes to records.
type Producer struct {
	cfg    ProducerConfig
	files  []*replayFile
	stopCh chan struct{}
	// ChaosReport is the corruption summary when ChaosRate > 0.
	ChaosReport *faults.Report
}

// NewProducer stages the replay: optionally corrupt the sources, read
// every streamable file into memory, and create the (empty) destination
// files so the pipeline registers all sources up front.
func NewProducer(cfg ProducerConfig) (*Producer, error) {
	if cfg.SrcDir == "" || cfg.DstDir == "" {
		return nil, fmt.Errorf("stream: producer needs SrcDir and DstDir")
	}
	if cfg.Duration <= 0 {
		return nil, fmt.Errorf("stream: producer needs a positive Duration")
	}
	if cfg.Tick <= 0 {
		cfg.Tick = 10 * time.Millisecond
	}
	if cfg.Plan == nil {
		cfg.Plan = transform.DefaultPlan()
	}
	if cfg.Overload == nil {
		if o, ok, err := faults.LoadOverloadSidecar(cfg.SrcDir); err != nil {
			return nil, err
		} else if ok {
			cfg.Overload = &o
		}
	}
	if cfg.Overload != nil {
		if err := cfg.Overload.Validate(); err != nil {
			return nil, err
		}
	}
	p := &Producer{cfg: cfg, stopCh: make(chan struct{})}

	srcDir := cfg.SrcDir
	if cfg.ChaosRate > 0 {
		seed := cfg.ChaosSeed
		if seed == 0 {
			seed = 1
		}
		stage := filepath.Join(cfg.DstDir + ".chaos")
		rep, err := faults.Corrupt(cfg.SrcDir, stage, faults.Config{
			Seed: seed, Rate: cfg.ChaosRate, Kinds: faults.LineKinds(),
		})
		if err != nil {
			return nil, err
		}
		p.ChaosReport = rep
		srcDir = stage
	}

	entries, err := os.ReadDir(srcDir)
	if err != nil {
		return nil, fmt.Errorf("stream: read replay source: %w", err)
	}
	if err := os.MkdirAll(cfg.DstDir, 0o755); err != nil {
		return nil, fmt.Errorf("stream: create replay dir: %w", err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && Streamable(cfg.Plan, e.Name()) {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	for _, name := range names {
		data, err := os.ReadFile(filepath.Join(srcDir, name))
		if err != nil {
			return nil, err
		}
		b, _ := cfg.Plan.Find(name)
		dst := filepath.Join(cfg.DstDir, name)
		written := 0
		// A restarted replay into the same directory resumes where it
		// left off: the staged bytes are deterministic per scenario and
		// seed, so an existing destination no larger than the source is
		// a prefix and only the remainder replays. Truncating instead
		// would make the tailer re-read a "new" file incarnation and the
		// warehouse would see every row twice.
		if fi, statErr := os.Stat(dst); statErr == nil && fi.Size() <= int64(len(data)) {
			written = int(fi.Size())
		} else if err := os.WriteFile(dst, nil, 0o644); err != nil {
			return nil, err
		}
		p.files = append(p.files, &replayFile{
			name: name, dst: dst, data: data, written: written,
			event: b.TableSuffix == "event",
		})
	}
	if len(p.files) == 0 {
		return nil, fmt.Errorf("stream: nothing streamable in %s", srcDir)
	}
	return p, nil
}

// Run blocks until every byte is replayed (or Stop is called). Bytes are
// written in proportion to elapsed wall time.
func (p *Producer) Run() error {
	start := time.Now()
	ticker := time.NewTicker(p.cfg.Tick)
	defer ticker.Stop()
	for {
		select {
		case <-p.stopCh:
			return nil
		case <-ticker.C:
		}
		frac := float64(time.Since(start)) / float64(p.cfg.Duration)
		if frac > 1 {
			frac = 1
		}
		wall := frac
		if p.cfg.Overload != nil {
			// The burst compresses a slice of the trial into a fraction of
			// the wall clock: byte position leads wall position inside the
			// burst window, deterministically.
			frac = p.cfg.Overload.EffectiveFrac(frac)
		}
		if p.cfg.RotateAt > 0 && wall >= p.cfg.RotateAt {
			if err := p.rotate(); err != nil {
				return err
			}
		}
		if err := p.writeUpTo(frac); err != nil {
			return err
		}
		if frac >= 1 {
			return nil
		}
	}
}

// Stop aborts the replay.
func (p *Producer) Stop() { close(p.stopCh) }

func (p *Producer) writeUpTo(frac float64) error {
	for _, f := range p.files {
		target := int(frac * float64(len(f.data)))
		if target <= f.written {
			continue
		}
		fh, err := os.OpenFile(f.dst, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		_, err = fh.Write(f.data[f.written:target])
		if cerr := fh.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		f.written = target
	}
	return nil
}

// rotate truncates every event log once — the copytruncate rotation the
// tailer must detect by the size dropping below its offset.
func (p *Producer) rotate() error {
	for _, f := range p.files {
		if !f.event || f.rotated {
			continue
		}
		f.rotated = true
		if err := os.Truncate(f.dst, 0); err != nil {
			return err
		}
	}
	return nil
}
