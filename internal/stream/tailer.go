// Package stream turns the batch milliScope pipeline incremental: a
// rotation-aware tailer follows growing monitor logs, feeds the existing
// mScopeParsers through pipes so multi-line resynchronization and the
// quarantine policy work unchanged, appends rows to mScopeDB tables as
// records arrive, and an online detector classifies millibottlenecks from
// sliding windows gated by a low watermark — the "performance debugging
// while the experiment still runs" mode the paper's offline workflow
// (Sections III and V) implies but never builds.
//
// Every channel in the pipeline is bounded; when the loader falls behind,
// backpressure propagates through the parser pipes all the way to the
// tailer, which simply reads the files later. Nothing is dropped and
// nothing buffers without bound.
package stream

import (
	"bytes"
	"errors"
	"io"
	"io/fs"
	"os"
	"sync/atomic"
)

// Tailer follows one log file by byte offset, emitting only complete
// lines: a trailing partial line stays buffered until its newline arrives
// (or Flush forces it out at shutdown). A file whose size shrinks below
// the read offset was rotated or truncated; the tailer restarts from byte
// zero, drops the stale partial buffer, and counts the rotation.
type Tailer struct {
	path    string
	readOff int64 // bytes consumed from the file, including the partial tail
	partial []byte

	committed atomic.Int64 // bytes emitted downstream (complete lines only)
	rotations atomic.Int64
}

// NewTailer tails path starting at offset — zero for a fresh file, or a
// checkpointed offset from the ingest ledger to resume without re-reading
// history.
func NewTailer(path string, offset int64) *Tailer {
	t := &Tailer{path: path, readOff: offset}
	t.committed.Store(offset)
	return t
}

// Path returns the tailed file path.
func (t *Tailer) Path() string { return t.path }

// Committed returns the byte offset of everything emitted downstream; safe
// to read concurrently with Poll.
func (t *Tailer) Committed() int64 { return t.committed.Load() }

// Rotations counts rotation/truncation resets observed; safe to read
// concurrently with Poll.
func (t *Tailer) Rotations() int64 { return t.rotations.Load() }

// Poll reads whatever the file has appended since the last call and hands
// the complete-line prefix to emit. It returns the number of new bytes
// consumed (zero when the file is missing or unchanged). A missing file is
// not an error — the monitor may not have created it yet.
func (t *Tailer) Poll(emit func([]byte) error) (int, error) {
	fi, err := os.Stat(t.path)
	if errors.Is(err, fs.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	if size := fi.Size(); size < t.readOff {
		// Rotation or truncation: the writer restarted the file. Bytes we
		// had not read are gone, and the buffered partial line belonged to
		// the old incarnation — parsing it against fresh content would
		// fabricate a record, so it is dropped, not emitted.
		t.readOff = 0
		t.partial = t.partial[:0]
		t.committed.Store(0)
		t.rotations.Add(1)
	} else if size == t.readOff {
		return 0, nil
	}
	f, err := os.Open(t.path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	if _, err := f.Seek(t.readOff, io.SeekStart); err != nil {
		return 0, err
	}
	buf, err := io.ReadAll(f)
	if err != nil {
		return 0, err
	}
	if len(buf) == 0 {
		return 0, nil
	}
	t.readOff += int64(len(buf))
	data := append(t.partial, buf...)
	cut := bytes.LastIndexByte(data, '\n')
	if cut < 0 {
		t.partial = data
		return len(buf), nil
	}
	if err := emit(data[:cut+1]); err != nil {
		return len(buf), err
	}
	t.partial = append(t.partial[:0:0], data[cut+1:]...)
	t.committed.Store(t.readOff - int64(len(t.partial)))
	return len(buf), nil
}

// Flush emits the buffered partial line, newline-terminated, at shutdown:
// a monitor killed mid-write leaves its last record without a newline, and
// the final flush is the only chance to parse it.
func (t *Tailer) Flush(emit func([]byte) error) error {
	if len(t.partial) == 0 {
		return nil
	}
	line := append(t.partial, '\n')
	t.partial = nil
	if err := emit(line); err != nil {
		return err
	}
	t.committed.Store(t.readOff)
	return nil
}
