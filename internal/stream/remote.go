package stream

import (
	"fmt"
	"time"

	"github.com/gt-elba/milliscope/internal/fidelity"
	"github.com/gt-elba/milliscope/internal/mxml"
	"github.com/gt-elba/milliscope/internal/parsers"
	"github.com/gt-elba/milliscope/internal/transform"
)

// ResumeDenied is the resume offset returned for a source the engine has
// terminally failed or rejected: the agent must stop shipping it. On the
// wire it travels as Resume.Offset = -1.
const ResumeDenied int64 = -1

// NewRemote builds a pipeline fed over the network instead of by the tail
// loop: no LogDir, no file discovery, no parsers. The collector registers
// sources with OpenRemote and injects already-parsed records with
// RemoteSource.Append; everything downstream — appenders, watermark,
// fidelity controller, online detector, ledger checkpoint — is the exact
// single-process engine, which is what makes the distributed deployment
// byte-equal to local ingest.
func NewRemote(cfg Config) (*Pipeline, error) {
	cfg.remote = true
	return New(cfg)
}

// RemoteSource is one agent-shipped log adopted by a remote engine. A new
// value is handed out per (re)open — per agent connection — but all state
// lives on the underlying source, so reconnects resume exactly.
type RemoteSource struct {
	p *Pipeline
	s *source
	// quarBase is the engine's quarantine total at adoption; the agent
	// reports its own session-cumulative count on each batch, and the two
	// compose additively across agent restarts.
	quarBase int64
}

// OpenRemote registers (or re-adopts) an agent's source under key — the
// agent-side file path, which doubles as the ledger identity — and returns
// the byte offset the agent should resume tailing from. A key already
// known to the engine is a reconnect: the resume offset then reflects the
// last applied batch, and the re-shipped overlap is dropped by count so no
// row duplicates. A ResumeDenied offset (nil RemoteSource, nil error)
// means the source is terminally failed or rejected here.
func (p *Pipeline) OpenRemote(key, name string) (*RemoteSource, int64, error) {
	if !p.cfg.remote {
		return nil, 0, fmt.Errorf("stream: OpenRemote on a local pipeline")
	}
	p.mu.Lock()
	existing := p.byPath[key]
	p.mu.Unlock()
	if existing != nil {
		return p.reopenRemote(existing)
	}
	if !Streamable(p.cfg.Plan, name) {
		return nil, 0, fmt.Errorf("stream: %s is not a streamable source", name)
	}
	b, _ := p.cfg.Plan.Find(name)
	if _, err := parsers.Get(b.Parser); err != nil {
		return nil, 0, err
	}
	host := transform.HostOf(key, b)
	s := &source{
		path:    key,
		name:    name,
		binding: b,
		table:   host + "_" + b.TableSuffix,
		host:    host,
		state:   StateActive,
	}
	offset := p.resumePoint(s)
	// The resume point is by definition the last applied offset, and
	// consumedBase the record count behind it (zero for header formats,
	// whose re-read recounts from scratch).
	s.remoteOff.Store(offset)
	s.remoteRows.Store(s.consumedBase.Load())
	p.wm.Register(key)
	p.mu.Lock()
	p.sources = append(p.sources, s)
	p.byPath[key] = s
	p.mu.Unlock()
	return &RemoteSource{p: p, s: s}, offset, nil
}

// reopenRemote re-adopts a source after its agent reconnected. The resume
// arithmetic mirrors resumePoint, but against live counters instead of the
// ledger: the agent restarts from the last *applied* offset, so every
// record the loader consumed beyond it will arrive again and must be
// dropped by count — with the consumed base rolled back equally, so the
// final ledger totals match a never-interrupted session.
func (p *Pipeline) reopenRemote(s *source) (*RemoteSource, int64, error) {
	if st, _ := s.status(); st == StateFailed || st == StateRejected {
		return nil, ResumeDenied, nil
	}
	// Quiesce: the dead connection's records may still sit in the channel;
	// counters are only coherent once the loader has drained them.
	for deadline := time.Now().Add(30 * time.Second); s.pending.Load() != 0; {
		if time.Now().After(deadline) {
			return nil, 0, fmt.Errorf("stream: %s: reopen stalled draining in-flight records", s.name)
		}
		time.Sleep(time.Millisecond)
	}
	total := s.consumedBase.Load() + s.consumed.Load()
	var off, skip int64
	if resumableAtOffset(s.binding) {
		off = s.remoteOff.Load()
		skip = total - s.remoteRows.Load()
	} else {
		// Header-carrying formats re-read from byte zero; offsets restart.
		off = 0
		skip = total
		s.remoteOff.Store(0)
		s.remoteRows.Store(0)
	}
	if skip > 0 {
		// Add, not Store: a rapid double-reconnect can reopen before an
		// earlier skip window has fully drained, and the residue still
		// refers to records the agent is about to ship yet again.
		s.skipEntries.Add(skip)
		s.consumedBase.Add(-skip)
	}
	p.wm.Reopen(s.path)
	s.setState(StateActive, nil)
	return &RemoteSource{p: p, s: s, quarBase: s.quarantined.Load()}, off, nil
}

// Key returns the source's registry key — the agent-side file path.
func (r *RemoteSource) Key() string { return r.s.path }

// Table returns the warehouse table the source feeds.
func (r *RemoteSource) Table() string { return r.s.table }

// Append injects one parsed record. It blocks when the record channel is
// full — the same backpressure edge the local parsers hit, counted the
// same way — and invokes done from the loader goroutine once the record
// has been fully processed.
func (r *RemoteSource) Append(e mxml.Entry, done func()) {
	r.s.pending.Add(1)
	rc := rec{src: r.s, entry: e, done: func() {
		if done != nil {
			done()
		}
		r.s.pending.Add(-1)
	}}
	select {
	case r.p.recs <- rc:
	default:
		r.p.stalls.Add(1)
		obsStalls.Add(1)
		r.p.recs <- rc
	}
}

// SetCommitted records that every record up to the agent's byte offset has
// been handed to the loader — the durable resume point a reconnect gets.
// Call it from the final record's done callback (or with nothing in
// flight): the rows stamp must count exactly the records behind off. A
// non-advancing offset is ignored: a batch split mid-cycle re-stamps the
// previous offset, whose record count was captured when it first applied.
func (r *RemoteSource) SetCommitted(off int64) {
	if off <= r.s.remoteOff.Load() {
		return
	}
	r.s.remoteRows.Store(r.s.consumedBase.Load() + r.s.consumed.Load())
	r.s.remoteOff.Store(off)
}

// SetQuarantined folds the agent's session-cumulative quarantine count
// into the engine's view of the source; the error budget then applies
// exactly as it does to a locally parsed file.
func (r *RemoteSource) SetQuarantined(sessionTotal int64) {
	r.s.quarantined.Store(r.quarBase + sessionTotal)
}

// Fail marks the source terminally failed (the agent's parser died or its
// tailer hit an I/O error) — mirroring the local parse-failure path: the
// table keeps its rows, the watermark stops waiting.
func (r *RemoteSource) Fail(msg string) {
	r.s.parseErrs.Add(1)
	r.s.setState(StateFailed, fmt.Errorf("stream: %s: %s", r.s.name, msg))
	r.p.wm.Finish(r.s.path)
}

// Suspend releases the source's hold on the watermark without a terminal
// state change: a cleanly departing agent (Goodbye) whose sources will
// constrain window closure again if it reconnects and reopens them.
func (r *RemoteSource) Suspend() { r.p.wm.Finish(r.s.path) }

// FidelityState is the pipeline's current fidelity level — Full when the
// degradation subsystem is disabled. The collector broadcasts it to
// agents so a pressured central store degrades shipping at the edge.
func (p *Pipeline) FidelityState() fidelity.State { return p.fidState() }

// QueueFill is the record channel's fill fraction — the rawest of the
// pressure signals, exported for the collector's Control frames.
func (p *Pipeline) QueueFill() float64 {
	return float64(len(p.recs)) / float64(cap(p.recs))
}
