package stream

import (
	"math"
	"time"

	"github.com/gt-elba/milliscope/internal/analysis"
	"github.com/gt-elba/milliscope/internal/core"
	"github.com/gt-elba/milliscope/internal/mscopedb"
)

// DefaultGrace is how far behind the low watermark a VLRT window must be
// before the detector classifies it. Queue edges are learned at departure
// (a request's arrival edge appears in the log only when it completes), so
// classification waits out the longest plausible residence time on top of
// the correlation pad — otherwise in-flight requests would be invisible to
// the queue series the verdict correlates against.
const DefaultGrace = 2 * time.Second

// Alert is one millibottleneck the online detector raised.
type Alert struct {
	// ID numbers alerts in raise order, from 1.
	ID int
	// Raised is the wall-clock time the verdict fired — the e2e proof the
	// detector beats the experiment's end.
	Raised time.Time
	// WatermarkUS is the low watermark at raise time.
	WatermarkUS int64
	// Diagnosis carries the same verdict structure the batch workflow
	// produces: window, pushback, ranked causes, kind, node.
	Diagnosis core.WindowDiagnosis
	// Missing lists evidence tables absent when the verdict was reached
	// (a tier rejected over budget, or its log never appeared).
	Missing []string
}

// detector folds front-tier events into online Point-in-Time buckets and,
// as the low watermark advances, re-runs the shared VLRT detection over
// the closed prefix. A window fully behind the watermark (plus correlation
// pad plus residence grace) is classified against the live warehouse with
// the same BuildEvidence/ClassifyWindow the batch Diagnose uses — the
// verdict logic exists exactly once. The loader goroutine owns all of it;
// nothing here is safe for concurrent use.
type detector struct {
	db       *mscopedb.DB
	windowUS int64
	graceUS  int64

	// promote, when set, is called with a flagged window's anomaly
	// neighbourhood [lo, hi] (window ± pad ± grace, in event µs) before
	// evidence is built, so degraded-fidelity sessions can retroactively
	// surface the ring-buffered rows the verdict will correlate against.
	// Idempotent by contract — a window retried across advances re-calls
	// it.
	promote func(loUS, hiUS int64)

	buckets  map[int64]float64 // bucket start → max RT µs
	loB, hiB int64
	haveB    bool
	sumRT    float64
	maxRT    float64
	count    int

	alerted []analysis.Window
}

func newDetector(db *mscopedb.DB, window, grace time.Duration) *detector {
	return &detector{
		db:       db,
		windowUS: window.Microseconds(),
		graceUS:  grace.Microseconds(),
		buckets:  make(map[int64]float64),
	}
}

// observe folds one completed front-tier request into the PIT buckets —
// the same max(ud−ua) bucketed-by-departure statistic as the batch series.
func (d *detector) observe(uaUS, udUS int64) {
	rt := float64(udUS - uaUS)
	d.sumRT += rt
	d.count++
	if rt > d.maxRT {
		d.maxRT = rt
	}
	b := udUS - modUS(udUS, d.windowUS)
	if rt > d.buckets[b] {
		d.buckets[b] = rt
	}
	if !d.haveB || b < d.loB {
		d.loB = b
	}
	if !d.haveB || b > d.hiB {
		d.hiB = b
	}
	d.haveB = true
}

// series materializes the PIT buckets up to hiUS (inclusive bucket start)
// on the absolute grid, empty buckets filled with zero — mirroring the
// batch PointInTimeRT construction.
func (d *detector) series(hiUS int64) *mscopedb.Series {
	var s mscopedb.Series
	for b := d.loB; b <= hiUS; b += d.windowUS {
		s.StartMicros = append(s.StartMicros, b)
		s.Values = append(s.Values, d.buckets[b])
	}
	return &s
}

// advance runs detection against the low watermark. final relaxes the
// gating: at shutdown every source has finished, so all windows close.
// It returns the newly raised alerts.
func (d *detector) advance(lowUS int64, final bool, window time.Duration, now func() time.Time) []Alert {
	if !d.haveB || d.count == 0 {
		return nil
	}
	// Buckets whose span [b, b+w) is fully behind the watermark are closed.
	closedHi := lowUS - d.windowUS
	if closedHi > d.hiB || final {
		closedHi = d.hiB
	}
	if closedHi < d.loB {
		return nil
	}
	avg := d.sumRT / float64(d.count)
	windows := analysis.DetectVLRTWindows(d.series(closedHi), avg, core.VLRTFactor, core.MaxVSBDuration)
	padUS := core.ClassifyPad.Microseconds()
	var out []Alert
	for _, w := range windows {
		if !final && w.EndMicros+padUS+d.graceUS > lowUS {
			continue // evidence around the window is still arriving
		}
		if d.overlapsAlerted(w) {
			continue
		}
		if d.promote != nil {
			d.promote(w.StartMicros-(padUS+d.graceUS), w.EndMicros+padUS+d.graceUS)
		}
		ev, missing, err := core.BuildEvidence(d.db, window)
		if err != nil || ev.Queues["apache"] == nil {
			// Resource or front-tier tables not in the warehouse yet; the
			// window stays unalerted and is retried on the next advance.
			continue
		}
		wd := core.ClassifyWindow(ev, w)
		d.alerted = append(d.alerted, w)
		out = append(out, Alert{
			Raised:      now(),
			WatermarkUS: lowUS,
			Diagnosis:   wd,
			Missing:     missing,
		})
	}
	return out
}

// overlapsAlerted dedups re-detections: as the watermark advances the same
// episode is found again each pass (its bounds can shift a bucket as the
// running average evolves), so any overlap with an alerted window skips it.
func (d *detector) overlapsAlerted(w analysis.Window) bool {
	for _, a := range d.alerted {
		if w.StartMicros <= a.EndMicros && a.StartMicros <= w.EndMicros {
			return true
		}
	}
	return false
}

// finalLow is the watermark value advance receives at shutdown.
const finalLow = int64(math.MaxInt64)

func modUS(a, b int64) int64 {
	m := a % b
	if m < 0 {
		m += b
	}
	return m
}
