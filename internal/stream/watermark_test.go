package stream

import (
	"math"
	"testing"
)

func TestWatermarkLow(t *testing.T) {
	w := NewWatermark(2000) // 2ms skew bound

	if _, ok := w.Low(); ok {
		t.Fatal("empty watermark must not be meaningful")
	}

	w.Register("a")
	w.Register("b")
	if _, ok := w.Low(); ok {
		t.Fatal("registered-but-silent sources must hold the watermark")
	}

	w.Observe("a", 10_000_000)
	if _, ok := w.Low(); ok {
		t.Fatal("one silent source must still hold the watermark")
	}

	w.Observe("b", 8_000_000)
	low, ok := w.Low()
	if !ok || low != 8_000_000-2000 {
		t.Fatalf("low = %d,%v; want %d", low, ok, 8_000_000-2000)
	}

	// Frontiers only move forward.
	w.Observe("b", 7_000_000)
	if low, _ := w.Low(); low != 8_000_000-2000 {
		t.Fatalf("low moved backwards to %d", low)
	}

	w.Observe("b", 12_000_000)
	if low, _ := w.Low(); low != 10_000_000-2000 {
		t.Fatalf("low = %d, want %d (a is now slowest)", low, 10_000_000-2000)
	}

	// A finished source stops constraining the watermark.
	w.Finish("a")
	if low, _ := w.Low(); low != 12_000_000-2000 {
		t.Fatalf("low = %d, want %d after finishing a", low, 12_000_000-2000)
	}

	w.Finish("b")
	if low, ok := w.Low(); !ok || low != math.MaxInt64 {
		t.Fatalf("all-finished watermark = %d,%v; want MaxInt64", low, ok)
	}

	if mf := w.MaxFrontier(); mf != 12_000_000 {
		t.Fatalf("max frontier = %d, want 12000000", mf)
	}
}

func TestWatermarkLateRegistrationHolds(t *testing.T) {
	w := NewWatermark(0)
	w.Register("a")
	w.Observe("a", 5_000_000)
	if low, ok := w.Low(); !ok || low != 5_000_000 {
		t.Fatalf("low = %d,%v", low, ok)
	}
	// A tier's log appears late: until it reports, nothing may close.
	w.Register("late")
	if _, ok := w.Low(); ok {
		t.Fatal("late registration must hold the watermark until it reports")
	}
	w.Observe("late", 1_000_000)
	if low, _ := w.Low(); low != 1_000_000 {
		t.Fatalf("low = %d, want 1000000", low)
	}
}
