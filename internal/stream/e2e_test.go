package stream

import (
	"bytes"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"github.com/gt-elba/milliscope/internal/core"
	"github.com/gt-elba/milliscope/internal/mscopedb"
	"github.com/gt-elba/milliscope/internal/transform"
)

// The e2e tests share one staged Section V-A (disk-IO) trial and one batch
// baseline built from it; both are torn down in TestMain.
var (
	stageOnce sync.Once
	stageDir  string
	stageErr  error

	batchOnce sync.Once
	batchErr  error
	batchDB   *mscopedb.DB
	batchDiag *core.Diagnosis
	batchWork string
)

func TestMain(m *testing.M) {
	code := m.Run()
	if stageDir != "" {
		os.RemoveAll(stageDir)
	}
	if batchWork != "" {
		os.RemoveAll(batchWork)
	}
	os.Exit(code)
}

// stagedDBIO runs the simulator's disk-IO scenario once and returns the
// directory holding its monitor logs.
func stagedDBIO(t *testing.T) string {
	t.Helper()
	stageOnce.Do(func() {
		dir, err := os.MkdirTemp("", "mscope-stream-dbio-")
		if err != nil {
			stageErr = err
			return
		}
		stageDir = dir
		_, stageErr = core.RunExperiment(core.ScenarioDBIO(dir))
	})
	if stageErr != nil {
		t.Fatalf("stage dbio trial: %v", stageErr)
	}
	return stageDir
}

// batchBaseline ingests the staged trial through the batch workflow and
// diagnoses it — the ground truth the live pipeline must reproduce.
func batchBaseline(t *testing.T) (*mscopedb.DB, *core.Diagnosis) {
	t.Helper()
	stage := stagedDBIO(t)
	batchOnce.Do(func() {
		work, err := os.MkdirTemp("", "mscope-stream-batch-")
		if err != nil {
			batchErr = err
			return
		}
		batchWork = work
		db := mscopedb.Open()
		if _, err := transform.IngestDir(db, stage, work, transform.DefaultPlan()); err != nil {
			batchErr = err
			return
		}
		diag, err := core.Diagnose(db, 50*time.Millisecond)
		if err != nil {
			batchErr = err
			return
		}
		batchDB, batchDiag = db, diag
	})
	if batchErr != nil {
		t.Fatalf("batch baseline: %v", batchErr)
	}
	return batchDB, batchDiag
}

// compareRows asserts every streamed table holds exactly the rows the batch
// ingest of the same logs produced — nothing lost, nothing duplicated.
func compareRows(t *testing.T, live, batch *mscopedb.DB) {
	t.Helper()
	compared := 0
	for _, name := range live.TableNames() {
		if name == mscopedb.TableIngests {
			continue
		}
		lt, err := live.Table(name)
		if err != nil {
			t.Fatalf("live table %s: %v", name, err)
		}
		bt, err := batch.Table(name)
		if err != nil {
			t.Errorf("table %s streamed live but absent from the batch warehouse", name)
			continue
		}
		if lt.Rows() != bt.Rows() {
			t.Errorf("table %s: live %d rows, batch %d", name, lt.Rows(), bt.Rows())
		}
		compared++
	}
	if compared < 8 {
		t.Errorf("only %d streamed tables compared; want the 4 event logs and 4 collectl CSVs", compared)
	}
}

// TestLiveMatchesBatchDBIO is the headline e2e: replay the Section V-A
// trial as a live producer, and require (1) an alert raised before the
// producer finished writing, and (2) the same verdict and warehouse rows
// the batch workflow reaches offline.
func TestLiveMatchesBatchDBIO(t *testing.T) {
	stage := stagedDBIO(t)
	liveDir := filepath.Join(t.TempDir(), "live")
	prod, err := NewProducer(ProducerConfig{
		SrcDir:   stage,
		DstDir:   liveDir,
		Duration: 4 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	pipe, err := New(Config{LogDir: liveDir})
	if err != nil {
		t.Fatal(err)
	}
	pipe.Start()
	if err := prod.Run(); err != nil {
		t.Fatal(err)
	}
	producerDone := time.Now()
	if err := pipe.Stop(); err != nil {
		t.Fatal(err)
	}

	alerts := pipe.Alerts()
	if len(alerts) == 0 {
		t.Fatal("live pipeline raised no alert for the disk-IO trial")
	}
	first := alerts[0]
	if !first.Raised.Before(producerDone) {
		t.Errorf("first alert raised at %v, after the producer finished at %v — online detection must beat the experiment's end",
			first.Raised, producerDone)
	}

	_, diag := batchBaseline(t)
	if len(diag.Windows) == 0 {
		t.Fatal("batch diagnose found no VLRT window")
	}
	want := diag.Windows[0]
	got := first.Diagnosis
	if got.Kind != want.Kind || got.Node != want.Node {
		t.Errorf("live verdict %q at %q; batch concluded %q at %q",
			got.Kind, got.Node, want.Kind, want.Node)
	}
	if got.Window.StartMicros > want.Window.EndMicros || want.Window.StartMicros > got.Window.EndMicros {
		t.Errorf("live window [%d,%d] does not overlap batch window [%d,%d]",
			got.Window.StartMicros, got.Window.EndMicros,
			want.Window.StartMicros, want.Window.EndMicros)
	}

	bdb, _ := batchBaseline(t)
	compareRows(t, pipe.DB(), bdb)
}

// recordBoundary cuts data near approx at a boundary a restarted parse can
// resume from: for the slow log that is a record ("# Time:") boundary — its
// multi-line groups have no meaning cut in half — for everything else a
// line boundary.
func recordBoundary(b transform.Binding, data []byte, approx int) int {
	if approx >= len(data) {
		approx = len(data) - 1
	}
	if b.Parser == "mysql-slow" {
		if i := bytes.LastIndex(data[:approx], []byte("\n# Time:")); i >= 0 {
			return i + 1
		}
	}
	if i := bytes.LastIndexByte(data[:approx], '\n'); i >= 0 {
		return i + 1
	}
	return 0
}

// TestLiveRestartResume kills the pipeline mid-trial and restarts it over
// the same warehouse: phase 1 sees a prefix of every log, phase 2 the full
// files. The ledger checkpoints must splice the two sessions into exactly
// the batch result, and a third run over unchanged files must append zero
// rows.
func TestLiveRestartResume(t *testing.T) {
	stage := stagedDBIO(t)
	bdb, _ := batchBaseline(t)
	plan := transform.DefaultPlan()
	dir := t.TempDir()

	entries, err := os.ReadDir(stage)
	if err != nil {
		t.Fatal(err)
	}
	full := map[string][]byte{}
	for _, e := range entries {
		if e.IsDir() || !Streamable(plan, e.Name()) {
			continue
		}
		data, err := os.ReadFile(filepath.Join(stage, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		full[e.Name()] = data
		b, _ := plan.Find(e.Name())
		cut := recordBoundary(b, data, 55*len(data)/100)
		if err := os.WriteFile(filepath.Join(dir, e.Name()), data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if len(full) == 0 {
		t.Fatal("nothing streamable staged")
	}

	db := mscopedb.Open()
	// With static files, Start+Stop is a complete deterministic session:
	// the shutdown drain reads every source to EOF before the loader exits.
	runSession := func() int64 {
		pipe, err := New(Config{LogDir: dir, DB: db})
		if err != nil {
			t.Fatal(err)
		}
		pipe.Start()
		if err := pipe.Stop(); err != nil {
			t.Fatal(err)
		}
		return pipe.Status().Rows
	}

	phase1 := runSession()
	if phase1 == 0 {
		t.Fatal("phase 1 loaded nothing")
	}
	for name, data := range full {
		if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	phase2 := runSession()
	if phase2 == 0 {
		t.Fatal("phase 2 appended nothing after restart")
	}
	compareRows(t, db, bdb)

	if extra := runSession(); extra != 0 {
		t.Fatalf("restart over unchanged files appended %d rows; ledger resume must be idempotent", extra)
	}
}

// TestPipelineChaosQuarantine streams a corrupted replay: malformed regions
// must be quarantined, a source over the error budget rejected, and the
// disk-IO verdict still reached from the surviving evidence.
func TestPipelineChaosQuarantine(t *testing.T) {
	stage := stagedDBIO(t)
	liveDir := filepath.Join(t.TempDir(), "live")
	prod, err := NewProducer(ProducerConfig{
		SrcDir:    stage,
		DstDir:    liveDir,
		Duration:  1200 * time.Millisecond,
		ChaosRate: 0.01,
		ChaosSeed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if prod.ChaosReport == nil {
		t.Fatal("chaos replay produced no corruption report")
	}
	pipe, err := New(Config{LogDir: liveDir})
	if err != nil {
		t.Fatal(err)
	}
	pipe.Start()
	if err := prod.Run(); err != nil {
		t.Fatal(err)
	}
	if err := pipe.Stop(); err != nil {
		t.Fatal(err)
	}

	st := pipe.Status()
	if st.Quarantined == 0 {
		t.Error("chaos run quarantined nothing")
	}
	rejected := false
	for _, s := range st.Sources {
		if s.State == StateRejected {
			rejected = true
		}
	}
	if !rejected {
		t.Error("no source breached the error budget; the slow log's multi-line records should")
	}

	found := false
	for _, a := range pipe.Alerts() {
		if a.Diagnosis.Kind == core.CauseDiskIO && a.Diagnosis.Node == "mysql" {
			found = true
		}
	}
	if !found {
		t.Errorf("no disk-io@mysql verdict from the degraded stream; got %d alerts", len(pipe.Alerts()))
	}
}
