package stream

import (
	"expvar"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
)

// Runtime introspection for the live pipeline: Go's pprof profiles and
// expvar counters, opt-in behind `mscope live --debug-addr`. These are
// deliberately NOT registered on the metrics/status mux — profiling
// endpoints can stall the process and must never be exposed on the same
// listener operators scrape — and not on http.DefaultServeMux either, so
// merely importing this package opens nothing.

// debugPipeline is the pipeline the expvar callbacks snapshot. expvar
// publication is process-global and permanent (Publish panics on
// duplicates), so the vars are registered once and indirect through this
// pointer; the latest DebugHandler call wins.
var (
	debugPipeline atomic.Pointer[Pipeline]
	publishOnce   sync.Once
)

func publishVars() {
	status := func(f func(Status) any) expvar.Func {
		return func() any {
			p := debugPipeline.Load()
			if p == nil {
				return nil
			}
			return f(p.Status())
		}
	}
	expvar.Publish("mscope_live_rows", status(func(st Status) any { return st.Rows }))
	expvar.Publish("mscope_live_quarantined", status(func(st Status) any { return st.Quarantined }))
	expvar.Publish("mscope_live_alerts", status(func(st Status) any { return st.Alerts }))
	expvar.Publish("mscope_live_lag_us", status(func(st Status) any { return st.LagUS }))
	expvar.Publish("mscope_live_sources", status(func(st Status) any { return st.Sources }))
}

// DebugHandler returns a mux serving /debug/pprof/* and /debug/vars for
// the given pipeline. Serve it on its own listener.
func DebugHandler(p *Pipeline) http.Handler {
	debugPipeline.Store(p)
	publishOnce.Do(publishVars)
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	return mux
}
