package stream

import (
	"fmt"
	"io"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/gt-elba/milliscope/internal/mscopedb"
	"github.com/gt-elba/milliscope/internal/mxml"
	"github.com/gt-elba/milliscope/internal/parsers"
	"github.com/gt-elba/milliscope/internal/transform"
	"github.com/gt-elba/milliscope/internal/xmlcsv"
)

// Source states reported in Status.
const (
	StateActive   = "active"
	StateFailed   = "failed"   // strict parser or I/O error; table keeps its rows
	StateRejected = "rejected" // quarantine error budget breached
	StateDone     = "done"     // drained cleanly at shutdown
)

// Streamable reports whether the live pipeline tails a file: it must have
// a Parsing Declaration binding, and its format must carry per-record
// event times the watermark can track (the four event logs, the collectl
// CSVs — exactly the evidence the diagnosis consumes — and the selfobs
// span logs, which is what lets distributed agents ship their own
// telemetry to the collector as just another source).
func Streamable(plan *transform.Plan, name string) bool {
	b, ok := plan.Find(name)
	if !ok {
		return false
	}
	return b.TableSuffix == "event" || b.TableSuffix == "collectlcsv" ||
		b.TableSuffix == "selftrace"
}

// source is one tailed file: its tailer, parser, target table, and
// counters. The tail loop owns the tailer, the parser goroutine owns the
// parse, the loader owns the appender; cross-goroutine fields are atomic
// or mutex-guarded.
type source struct {
	path    string
	name    string // base name
	binding transform.Binding
	table   string
	host    string
	parser  parsers.Parser
	tail    *Tailer
	pw      *io.PipeWriter

	// skipEntries > 0 means the parse restarts from byte zero (the format
	// needs its header) and this many already-consumed records are dropped
	// before processing resumes — the row-level half of idempotent resume.
	// Atomic because a remote source's reopen (on the connection goroutine)
	// re-arms it while the loader owns the decrements.
	skipEntries atomic.Int64
	// consumedBase is the consumed-record count carried over from prior
	// sessions when the tailer byte-resumes mid-file (re-read-from-zero
	// resumes re-count naturally and leave it 0). consumed + consumedBase
	// is what the checkpoint ledger records.
	consumedBase atomic.Int64

	// Remote sources (no tailer): the byte offset covered by every applied
	// batch, and the consumed-record total at the moment that offset was
	// stored — together they let a reconnecting agent resume mid-cycle
	// with the re-shipped overlap skipped exactly.
	remoteOff  atomic.Int64
	remoteRows atomic.Int64
	// pending counts this source's records sitting between a remote feeder
	// and the loader; a reconnect's reopen waits for it to drain before
	// touching the resume arithmetic.
	pending atomic.Int64

	app *appender // loader-owned

	rows        atomic.Int64
	quarantined atomic.Int64
	parseErrs   atomic.Int64 // unrecoverable parser failures (0 or 1)
	frontierUS  atomic.Int64
	// consumed counts every record the loader drained from this source
	// this session, including resume-skips; processed excludes the skips.
	// Under degraded fidelity processed > rows: consumed records may be
	// rolled up or shed instead of appended, which is exactly why the
	// ledger checkpoint records consumption, not table rows.
	consumed  atomic.Int64
	processed atomic.Int64

	mu    sync.Mutex
	state string
	err   error
}

// write feeds tailed bytes into the parser pipe; it blocks while the
// parser (and transitively the loader) is busy — the backpressure edge.
func (s *source) write(b []byte) error {
	_, err := s.pw.Write(b)
	return err
}

func (s *source) setState(state string, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	// Terminal states stick: a budget rejection is not overwritten by the
	// shutdown drain marking everything done.
	if s.state == StateFailed || s.state == StateRejected {
		return
	}
	s.state = state
	s.err = err
}

func (s *source) status() (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state, s.err
}

// committedOff is the resumable byte offset: the tailer's committed
// position locally, the last applied batch offset for a remote source.
func (s *source) committedOff() int64 {
	if s.tail != nil {
		return s.tail.Committed()
	}
	return s.remoteOff.Load()
}

// rotationCount is tailer rotations; remote sources report their agent's
// rotations out of band, not here.
func (s *source) rotationCount() int64 {
	if s.tail != nil {
		return s.tail.Rotations()
	}
	return 0
}

// eventTimeUS extracts the record's event time: departure (ud) for event
// tables, sample timestamp (ts) for collectl CSVs. False means the record
// carries no usable clock — it still loads, but cannot advance the
// watermark.
func (s *source) eventTimeUS(e *mxml.Entry) (int64, bool) {
	if s.binding.TableSuffix == "event" {
		v, ok := e.Get("ud")
		if !ok {
			return 0, false
		}
		us, err := strconv.ParseInt(v, 10, 64)
		return us, err == nil
	}
	v, ok := e.Get("ts")
	if !ok {
		return 0, false
	}
	ts, err := time.Parse(mxml.TimeLayout, v)
	if err != nil {
		return 0, false
	}
	return ts.UnixMicro(), true
}

// appender maintains one warehouse table incrementally: the table is
// created from the first record's inferred schema, and later records that
// contradict it widen columns or add new ones in place — converging on
// the same schema the batch converter's whole-file inference would have
// produced.
type appender struct {
	db    *mscopedb.DB
	name  string
	table *mscopedb.Table
}

func newAppender(db *mscopedb.DB, name string) *appender {
	a := &appender{db: db, name: name}
	if db.HasTable(name) {
		a.table, _ = db.Table(name) // resume: append to the existing table
	}
	return a
}

func (a *appender) append(e mxml.Entry) error {
	if a.table == nil {
		inf := xmlcsv.NewInference()
		inf.Observe(e)
		cols := inf.Columns()
		if cols == nil {
			return fmt.Errorf("stream: %s: record with no fields", a.name)
		}
		t, err := a.db.Create(a.name, cols)
		if err != nil {
			return err
		}
		a.table = t
	}
	for _, f := range e.Fields {
		ci := a.table.ColIndex(f.Name)
		if ci < 0 {
			inf := xmlcsv.NewInference()
			inf.Observe(mxml.Entry{Fields: []mxml.Field{f}})
			if err := a.table.AddColumn(inf.Columns()[0]); err != nil {
				return err
			}
			continue
		}
		cur := a.table.Columns()[ci].Type
		if want := xmlcsv.WidenFor(cur, f.Value, f.Hint); want != cur {
			if err := a.table.Widen(f.Name, want); err != nil {
				return err
			}
		}
	}
	return a.table.AppendStrings(xmlcsv.Row(e, a.table.Columns()))
}
