package stream

import (
	"math"
	"sync"
)

// Watermark tracks per-source event-time frontiers and derives the low
// watermark: the event time below which every live source has reported,
// minus the clock-skew bound of the fault model. Windows close — and the
// detector classifies — only behind the low watermark, so a verdict never
// rests on a tier whose log simply had not caught up yet.
type Watermark struct {
	mu     sync.Mutex
	skewUS int64
	fronts map[string]int64
	done   map[string]bool
}

// NewWatermark builds a tracker with the given clock-skew bound in
// microseconds (the PR-1 fault model skews tier clocks by up to ±skew).
func NewWatermark(skewUS int64) *Watermark {
	return &Watermark{
		skewUS: skewUS,
		fronts: make(map[string]int64),
		done:   make(map[string]bool),
	}
}

// Register adds a source with no data yet. An unregistered source never
// holds the watermark back; a registered silent one does — by design, a
// tier that exists but has not reported must block window closure.
func (w *Watermark) Register(src string) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, ok := w.fronts[src]; !ok {
		w.fronts[src] = 0
	}
}

// Observe advances a source's frontier to the given event time (µs).
func (w *Watermark) Observe(src string, us int64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if us > w.fronts[src] {
		w.fronts[src] = us
	}
}

// Finish marks a source complete (EOF at shutdown, budget rejection, or
// parser failure): it stops constraining the low watermark.
func (w *Watermark) Finish(src string) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.done[src] = true
}

// Reopen clears a source's done mark: a remote agent that disconnected
// mid-stream (its sources finished so the watermark could advance) has
// come back and will constrain window closure again.
func (w *Watermark) Reopen(src string) {
	w.mu.Lock()
	defer w.mu.Unlock()
	delete(w.done, src)
}

// Frontier returns a source's current frontier.
func (w *Watermark) Frontier(src string) int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.fronts[src]
}

// Low returns the low watermark and whether it is meaningful yet: false
// while any live source has reported nothing (or none exist), MaxInt64
// when every source has finished.
func (w *Watermark) Low() (int64, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if len(w.fronts) == 0 {
		return 0, false
	}
	low := int64(math.MaxInt64)
	live := false
	for src, f := range w.fronts {
		if w.done[src] {
			continue
		}
		if f == 0 {
			return 0, false
		}
		if f < low {
			low = f
		}
		live = true
	}
	if !live {
		return math.MaxInt64, true
	}
	return low - w.skewUS, true
}

// MaxFrontier returns the most advanced frontier — the live edge. The gap
// between it and the low watermark is the pipeline's event-time lag.
func (w *Watermark) MaxFrontier() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	var max int64
	for _, f := range w.fronts {
		if f > max {
			max = f
		}
	}
	return max
}
