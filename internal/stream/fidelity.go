package stream

import (
	"sort"
	"strconv"
	"sync/atomic"
	"time"

	"github.com/gt-elba/milliscope/internal/fidelity"
	"github.com/gt-elba/milliscope/internal/mscopedb"
	"github.com/gt-elba/milliscope/internal/mxml"
	"github.com/gt-elba/milliscope/internal/selfobs"
)

// Fidelity modes selectable in Config.Fidelity.Mode.
const (
	// FidelityFull (or "") disables degradation: every row is retained,
	// exactly the pre-fidelity pipeline.
	FidelityFull = "full"
	// FidelityAdaptive runs the hysteresis controller: the pipeline starts
	// FULL and degrades/recovers as the pressure signals dictate.
	FidelityAdaptive = "adaptive"
	// FidelityAggregate pins AGGREGATE mode for the whole session — the
	// differential tests use it to prove degraded verdicts match full ones
	// without having to manufacture load.
	FidelityAggregate = "aggregate"
)

// TableRollup is the coarse per-window aggregate table degraded modes fold
// rows into: one row per (source table, metric, rollup window) carrying
// count/sum/min/max — enough for capacity trending while full fidelity is
// suspended outside anomaly neighbourhoods.
const TableRollup = "mscope_rollup"

// FidelityOptions parameterizes the degradation subsystem. The zero value
// disables it.
type FidelityOptions struct {
	// Mode is FidelityFull, FidelityAdaptive, or FidelityAggregate.
	Mode string
	// RingCap bounds each source's retention ring (default 8192 rows).
	RingCap int
	// RollupWindow is the aggregate bucket width (default 1s — coarse on
	// purpose; the detector's fine PIT statistic is fed per record and
	// does not depend on retained rows).
	RollupWindow time.Duration
	// MaxRetainedRows is the memory-pressure budget: warehouse rows plus
	// ring and rollup rows over this ratio drive the Mem signal
	// (default 500000).
	MaxRetainedRows int64
	// LagBudget normalizes the watermark-lag pressure signal (default 8s
	// of event time).
	LagBudget time.Duration
	// Enter, Exit, ShedEnter, ShedExit, Dwell tune the controller; zero
	// values take the fidelity package defaults.
	Enter, Exit, ShedEnter, ShedExit float64
	Dwell                            int
	// EvalEvery is the controller evaluation cadence in records
	// (default 64).
	EvalEvery int
}

func (o FidelityOptions) enabled() bool {
	return o.Mode == FidelityAdaptive || o.Mode == FidelityAggregate
}

func (o FidelityOptions) withDefaults() FidelityOptions {
	if o.RingCap <= 0 {
		o.RingCap = 8192
	}
	if o.RollupWindow <= 0 {
		o.RollupWindow = time.Second
	}
	if o.MaxRetainedRows <= 0 {
		o.MaxRetainedRows = 500_000
	}
	if o.LagBudget <= 0 {
		o.LagBudget = 8 * time.Second
	}
	if o.EvalEvery <= 0 {
		o.EvalEvery = 64
	}
	return o
}

// Self-telemetry for the degradation stages; no-ops unless a collector is
// enabled, like the other per-record counters.
var (
	obsRowsRolledUp = selfobs.NewCounter(selfobs.PipeLive, "fidelity", "rows_rolled_up")
	obsRowsPromoted = selfobs.NewCounter(selfobs.PipeLive, "fidelity", "rows_promoted")
	obsRowsShed     = selfobs.NewCounter(selfobs.PipeLive, "fidelity", "rows_shed")
	obsStalls       = selfobs.NewCounter(selfobs.PipeLive, "backpressure", "stalls")
	obsTransitions  = selfobs.NewCounter(selfobs.PipeLive, "fidelity", "transitions")
)

// aggKey addresses one rollup accumulator cell.
type aggKey struct {
	table  string
	metric string
	winUS  int64
}

// aggCell is one open accumulator; cells flush to TableRollup once their
// window closes behind the low watermark.
type aggCell struct {
	n        int64
	sum, min float64
	max      float64
}

// fidelityRun is the loader-owned runtime state of the degradation
// subsystem. Counters are atomic only because Status() reads them from
// other goroutines; all mutation happens on the loader.
type fidelityRun struct {
	opts   FidelityOptions
	ctrl   *fidelity.Controller // nil when mode is pinned
	pinned bool

	rings map[*source]*fidelity.Ring[mxml.Entry]
	cells map[aggKey]*aggCell

	state       atomic.Int32
	rolledUp    atomic.Int64 // records folded into rollup cells
	promoted    atomic.Int64 // ring rows appended retroactively
	shedRows    atomic.Int64 // records dropped with no ring retention
	rollupRows  atomic.Int64 // rows flushed into TableRollup
	ringRows    atomic.Int64 // rows currently live across all rings
	ringEvicted atomic.Int64
	transitions atomic.Int64
	sinceEval   int
}

func newFidelityRun(opts FidelityOptions) *fidelityRun {
	o := opts.withDefaults()
	f := &fidelityRun{
		opts:  o,
		rings: make(map[*source]*fidelity.Ring[mxml.Entry]),
		cells: make(map[aggKey]*aggCell),
	}
	if o.Mode == FidelityAggregate {
		f.pinned = true
		f.state.Store(int32(fidelity.Aggregate))
	} else {
		f.ctrl = fidelity.NewController(fidelity.Config{
			Enter: o.Enter, Exit: o.Exit,
			ShedEnter: o.ShedEnter, ShedExit: o.ShedExit, Dwell: o.Dwell,
		})
	}
	return f
}

// fidState is the current fidelity level; Full when the subsystem is off.
func (p *Pipeline) fidState() fidelity.State {
	if p.fid == nil {
		return fidelity.Full
	}
	return fidelity.State(p.fid.state.Load())
}

// evalPressure samples the three load signals and folds them into the
// controller. Called from the loader every EvalEvery records and on each
// watermark advance; pinned modes skip the controller but keep the cadence
// cheap to reason about.
func (p *Pipeline) evalPressure() {
	f := p.fid
	if f == nil || f.pinned {
		return
	}
	var pr fidelity.Pressure
	pr.Queue = float64(len(p.recs)) / float64(cap(p.recs))
	if low, ok := p.wm.Low(); ok && low != finalLow {
		if maxF := p.wm.MaxFrontier(); maxF > low {
			pr.Lag = float64(maxF-low) / float64(f.opts.LagBudget.Microseconds())
		}
	}
	retained := p.rowsTotal.Load() + f.rollupRows.Load() + f.ringRows.Load()
	pr.Mem = float64(retained) / float64(f.opts.MaxRetainedRows)
	if _, changed := f.ctrl.Eval(pr); changed {
		f.state.Store(int32(f.ctrl.State()))
		f.transitions.Add(1)
		obsTransitions.Add(1)
	}
}

// degrade handles one timestamped record while below full fidelity: fold
// it into the rollup accumulators, and either retain it in the source's
// ring (AGGREGATE) or count it shed (SHED). Loader-owned.
func (f *fidelityRun) degrade(s *source, e *mxml.Entry, usEvent int64, st fidelity.State) {
	f.rollup(s, e, usEvent)
	if st == fidelity.Aggregate {
		r := f.rings[s]
		if r == nil {
			r = fidelity.NewRing[mxml.Entry](f.opts.RingCap)
			f.rings[s] = r
		}
		before := r.Len()
		r.Push(usEvent, *e)
		if r.Len() > before {
			f.ringRows.Add(1)
		} else {
			f.ringEvicted.Add(1)
		}
		return
	}
	f.shedRows.Add(1)
	obsRowsShed.Add(1)
}

// rollup folds one record's curated metrics into the open accumulator
// cells for its rollup window.
func (f *fidelityRun) rollup(s *source, e *mxml.Entry, usEvent int64) {
	win := usEvent - modUS(usEvent, f.opts.RollupWindow.Microseconds())
	fold := func(metric string, v float64) {
		k := aggKey{table: s.table, metric: metric, winUS: win}
		c := f.cells[k]
		if c == nil {
			c = &aggCell{min: v, max: v}
			f.cells[k] = c
		} else {
			if v < c.min {
				c.min = v
			}
			if v > c.max {
				c.max = v
			}
		}
		c.n++
		c.sum += v
	}
	if s.binding.TableSuffix == "event" {
		if ua, ok1 := intField(e, "ua"); ok1 {
			if ud, ok2 := intField(e, "ud"); ok2 {
				fold("rt_us", float64(ud-ua))
			}
		}
	} else {
		// The collectl gauges the diagnosis correlates against.
		for _, m := range [...]string{"dsk_util", "cpu_user", "cpu_sys", "mem_dirty", "cpu_mhz"} {
			if v, ok := floatField(e, m); ok {
				fold(m, v)
			}
		}
	}
	f.rolledUp.Add(1)
	obsRowsRolledUp.Add(1)
}

// flushRollup appends every accumulator cell whose window has fully closed
// behind the low watermark to TableRollup, in deterministic key order.
// final flushes everything.
func (p *Pipeline) flushRollup(lowUS int64, final bool) {
	f := p.fid
	if f == nil || len(f.cells) == 0 {
		return
	}
	winUS := f.opts.RollupWindow.Microseconds()
	var keys []aggKey
	for k := range f.cells {
		if final || k.winUS+winUS <= lowUS {
			keys = append(keys, k)
		}
	}
	if len(keys) == 0 {
		return
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.winUS != b.winUS {
			return a.winUS < b.winUS
		}
		if a.table != b.table {
			return a.table < b.table
		}
		return a.metric < b.metric
	})
	var sp selfobs.Span
	if p.loaderObs != nil {
		sp = p.loaderObs.Begin(selfobs.PipeLive, "fidelity", "rollup-flush", "")
	}
	t, err := p.rollupTable()
	if err != nil {
		p.recordLoadErr(err)
		return
	}
	for _, k := range keys {
		c := f.cells[k]
		if err := t.Append(k.table, k.metric, k.winUS, c.n, c.sum, c.max, c.min); err != nil {
			p.recordLoadErr(err)
			return
		}
		delete(f.cells, k)
		f.rollupRows.Add(1)
	}
	if p.loaderObs != nil {
		sp.End(int64(len(keys)), 0)
	}
}

func (p *Pipeline) rollupTable() (*mscopedb.Table, error) {
	if p.db.HasTable(TableRollup) {
		return p.db.Table(TableRollup)
	}
	return p.db.Create(TableRollup, []mscopedb.Column{
		{Name: "tbl", Type: mscopedb.TString},
		{Name: "metric", Type: mscopedb.TString},
		{Name: "win_us", Type: mscopedb.TInt},
		{Name: "n", Type: mscopedb.TInt},
		{Name: "v_sum", Type: mscopedb.TFloat},
		{Name: "v_max", Type: mscopedb.TFloat},
		{Name: "v_min", Type: mscopedb.TFloat},
	})
}

// promoteNeighbourhood retroactively appends every retained ring row whose
// event time falls inside [loUS, hiUS] — the anomaly neighbourhood of a
// flagged window — so BuildEvidence sees full-fidelity rows exactly where
// the verdict needs them. TakeRange marks rows taken, so overlapping
// neighbourhoods (or the same window retried across advances) promote each
// row at most once. Called from the detector on the loader goroutine.
func (p *Pipeline) promoteNeighbourhood(loUS, hiUS int64) {
	f := p.fid
	if f == nil {
		return
	}
	var sp selfobs.Span
	if p.loaderObs != nil {
		sp = p.loaderObs.Begin(selfobs.PipeLive, "fidelity", "promote", "")
	}
	var promoted int64
	for _, s := range p.snapshot() {
		r := f.rings[s]
		if r == nil {
			continue
		}
		rows := r.TakeRange(loUS, hiUS)
		if len(rows) == 0 {
			continue
		}
		if s.app == nil {
			s.app = newAppender(p.db, s.table)
		}
		for i := range rows {
			if err := s.app.append(rows[i]); err != nil {
				p.recordLoadErr(err)
				break
			}
			promoted++
			s.rows.Add(1)
			p.rowsTotal.Add(1)
		}
	}
	if promoted > 0 {
		f.promoted.Add(promoted)
		obsRowsPromoted.Add(promoted)
	}
	if p.loaderObs != nil {
		sp.End(promoted, 0)
	}
}

// expireRings frees ring rows that can no longer be promoted: a window is
// classified once it is pad+grace behind the watermark, and its promote
// range reaches pad+grace before its start — so anything older than twice
// that horizon (plus a window) is out of reach of any future promotion.
func (p *Pipeline) expireRings(lowUS int64) {
	f := p.fid
	if f == nil {
		return
	}
	horizon := 2*(p.det.graceUS+p.padUS()) + p.det.windowUS
	cutoff := lowUS - horizon
	for _, r := range f.rings {
		if n := r.ExpireBefore(cutoff); n > 0 {
			f.ringRows.Add(int64(-n))
		}
	}
}

// recordLoadErr keeps the first loader-side failure, matching the append
// path's error policy.
func (p *Pipeline) recordLoadErr(err error) {
	p.mu.Lock()
	if p.loadErr == nil {
		p.loadErr = err
	}
	p.mu.Unlock()
}

func intField(e *mxml.Entry, name string) (int64, bool) {
	v, ok := e.Get(name)
	if !ok {
		return 0, false
	}
	n, err := strconv.ParseInt(v, 10, 64)
	return n, err == nil
}

func floatField(e *mxml.Entry, name string) (float64, bool) {
	v, ok := e.Get(name)
	if !ok {
		return 0, false
	}
	x, err := strconv.ParseFloat(v, 64)
	return x, err == nil
}
