package stream

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// tailStep is one scripted mutation of the tailed file followed by a poll.
type tailStep struct {
	// write appends bytes; truncate resets the file to zero first;
	// remove deletes the file; create recreates it empty.
	write    string
	truncate bool
	remove   bool
	// want is the concatenation of complete-line chunks this poll must
	// emit.
	want string
}

func TestTailerEdgeCases(t *testing.T) {
	cases := []struct {
		name  string
		steps []tailStep
		// flush is the expected final-flush emission.
		flush         string
		wantRotations int64
	}{
		{
			name: "complete lines pass through",
			steps: []tailStep{
				{write: "a 1\nb 2\n", want: "a 1\nb 2\n"},
				{write: "c 3\n", want: "c 3\n"},
			},
		},
		{
			name: "partial line buffered until its newline arrives",
			steps: []tailStep{
				{write: "a 1\nb ", want: "a 1\n"},
				{write: "", want: ""},
				{write: "2\nc 3\n", want: "b 2\nc 3\n"},
			},
		},
		{
			name: "final flush of partial last line",
			steps: []tailStep{
				{write: "a 1\nb 2", want: "a 1\n"},
			},
			flush: "b 2\n",
		},
		{
			name: "rotation mid-record drops the stale partial",
			steps: []tailStep{
				{write: "a 1\nb 2 is going to be cut ", want: "a 1\n"},
				// The writer rotates: the unread half of record b belongs
				// to the old incarnation and must not prefix record c.
				{truncate: true, write: "c 3\nd 4\n", want: "c 3\nd 4\n"},
			},
			wantRotations: 1,
		},
		{
			name: "truncation to zero restarts from byte zero",
			steps: []tailStep{
				{write: "a 1\nb 2\n", want: "a 1\nb 2\n"},
				{truncate: true, want: ""},
				{write: "e 5\n", want: "e 5\n"},
			},
			wantRotations: 1,
		},
		{
			name: "file appears only after tailing started",
			steps: []tailStep{
				{remove: true, want: ""},
				{remove: true, want: ""},
				{write: "late 1\n", want: "late 1\n"},
			},
		},
		{
			name: "shrunk rewrite re-reads the new incarnation",
			steps: []tailStep{
				{write: "first incarnation with plenty of bytes\n", want: "first incarnation with plenty of bytes\n"},
				{truncate: true, write: "second\n", want: "second\n"},
			},
			wantRotations: 1,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			path := filepath.Join(dir, "mon.log")
			if err := os.WriteFile(path, nil, 0o644); err != nil {
				t.Fatal(err)
			}
			tail := NewTailer(path, 0)
			var got strings.Builder
			emit := func(b []byte) error { got.Write(b); return nil }
			for i, step := range tc.steps {
				if step.remove {
					_ = os.Remove(path)
				}
				if step.truncate {
					if err := os.Truncate(path, 0); err != nil {
						t.Fatal(err)
					}
				}
				if step.write != "" || !step.remove && !step.truncate {
					f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND|os.O_CREATE, 0o644)
					if err != nil {
						t.Fatal(err)
					}
					if _, err := f.WriteString(step.write); err != nil {
						t.Fatal(err)
					}
					f.Close()
				}
				got.Reset()
				if _, err := tail.Poll(emit); err != nil {
					t.Fatalf("step %d: poll: %v", i, err)
				}
				if got.String() != step.want {
					t.Fatalf("step %d: emitted %q, want %q", i, got.String(), step.want)
				}
			}
			got.Reset()
			if err := tail.Flush(emit); err != nil {
				t.Fatalf("flush: %v", err)
			}
			if got.String() != tc.flush {
				t.Fatalf("flush emitted %q, want %q", got.String(), tc.flush)
			}
			if r := tail.Rotations(); r != tc.wantRotations {
				t.Fatalf("rotations = %d, want %d", r, tc.wantRotations)
			}
		})
	}
}

func TestTailerResumeOffset(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "mon.log")
	content := "old 1\nold 2\nnew 3\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	// Resume past the first two lines, as a ledger checkpoint would.
	tail := NewTailer(path, int64(len("old 1\nold 2\n")))
	var got strings.Builder
	if _, err := tail.Poll(func(b []byte) error { got.Write(b); return nil }); err != nil {
		t.Fatal(err)
	}
	if got.String() != "new 3\n" {
		t.Fatalf("resumed poll emitted %q, want %q", got.String(), "new 3\n")
	}
	if c := tail.Committed(); c != int64(len(content)) {
		t.Fatalf("committed = %d, want %d", c, len(content))
	}
}

func TestTailerCommittedExcludesPartial(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "mon.log")
	if err := os.WriteFile(path, []byte("done\npart"), 0o644); err != nil {
		t.Fatal(err)
	}
	tail := NewTailer(path, 0)
	if _, err := tail.Poll(func([]byte) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if c := tail.Committed(); c != int64(len("done\n")) {
		t.Fatalf("committed = %d, want %d (partial line must not be checkpointed)", c, len("done\n"))
	}
	if err := tail.Flush(func([]byte) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if c := tail.Committed(); c != int64(len("done\npart")) {
		t.Fatalf("committed after flush = %d, want %d", c, len("done\npart"))
	}
}
