package scenario

import (
	"fmt"
	"strings"
)

// RenderList formats the catalogue as the fixed-width table `mscope
// scenario list` prints. The output is golden-pinned: catalogue drift must
// show up as a reviewed diff.
func RenderList(specs []Spec) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %-24s %-28s %s\n", "SCENARIO", "FAMILY", "EXPECTED VERDICT", "DESCRIPTION")
	for i := range specs {
		s := &specs[i]
		fmt.Fprintf(&b, "%-12s %-24s %-28s %s\n",
			s.Name, s.Family, renderExpect(s), s.Description)
	}
	fmt.Fprintf(&b, "%d scenarios registered\n", len(specs))
	return b.String()
}

func renderExpect(s *Spec) string {
	if len(s.Expect) == 0 {
		return "(clean run)"
	}
	parts := make([]string, 0, len(s.Expect))
	for _, e := range s.Expect {
		v := e.Kind + "@" + e.Node
		if e.Degraded {
			v += " (degraded)"
		}
		parts = append(parts, v)
	}
	return strings.Join(parts, ", ")
}
