// Package scenario is the declarative fault catalogue: every entry binds a
// named injector configuration, an n-tier workload, a seed, and the
// verdict the diagnosis is expected to reach, so each scenario doubles as
// an executable soak test of the classifier. The catalogue is the repo's
// tracked diversity metric — adding a fault family means adding a scenario
// that proves the framework diagnoses it.
package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strconv"
	"time"

	"github.com/gt-elba/milliscope/internal/core"
)

// Duration is a time.Duration that decodes from JSON as either a Go
// duration string ("350ms") or an integer nanosecond count.
type Duration time.Duration

// D returns the standard-library value.
func (d Duration) D() time.Duration { return time.Duration(d) }

// MarshalJSON renders the duration as a string ("1.2s").
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON accepts "350ms" or a nanosecond count.
func (d *Duration) UnmarshalJSON(b []byte) error {
	if len(b) > 0 && b[0] == '"' {
		var s string
		if err := json.Unmarshal(b, &s); err != nil {
			return err
		}
		v, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("scenario: duration %q: %w", s, err)
		}
		*d = Duration(v)
		return nil
	}
	ns, err := strconv.ParseInt(string(bytes.TrimSpace(b)), 10, 64)
	if err != nil {
		return fmt.Errorf("scenario: duration %s: %w", b, err)
	}
	*d = Duration(ns)
	return nil
}

// InjectorSpec is the declarative form of one bottleneck injector. Kind
// selects the fault family; the remaining fields are consulted per kind
// (see Validate for what each kind requires).
type InjectorSpec struct {
	Kind string `json:"kind"`
	// Node names the target node (dirty-page-surge, jvm-gc, dvfs,
	// crash-loop); Tier the tier whose downstream conn pool is seized.
	Node string `json:"node,omitempty"`
	Tier string `json:"tier,omitempty"`
	// Src/Dst name the link for net-jitter.
	Src string `json:"src,omitempty"`
	Dst string `json:"dst,omitempty"`
	// At is the injection instant; Duration the episode length.
	At       Duration `json:"at"`
	Duration Duration `json:"duration,omitempty"`
	// Kind-specific magnitudes.
	Hold     Duration `json:"hold,omitempty"`      // lock-convoy
	Extra    Duration `json:"extra,omitempty"`     // net-jitter
	Pause    Duration `json:"pause,omitempty"`     // jvm-gc
	Outage   Duration `json:"outage,omitempty"`    // crash-loop
	Period   Duration `json:"period,omitempty"`    // crash-loop
	Speed    float64  `json:"speed,omitempty"`     // dvfs
	MissProb float64  `json:"miss_prob,omitempty"` // cache-stampede
	BurstKB  int      `json:"burst_kb,omitempty"`  // dirty-page-surge
	ReadKB   int      `json:"read_kb,omitempty"`   // cache-stampede
	Held     int      `json:"held,omitempty"`      // conn-pool-seize
	Count    int      `json:"count,omitempty"`     // crash-loop
}

// Verdict is one expected diagnosis: the classifier must raise Kind at
// Node in a window overlapping [From−Tol, To+Tol] (trial-relative).
type Verdict struct {
	Kind string   `json:"kind"`
	Node string   `json:"node"`
	From Duration `json:"from"`
	To   Duration `json:"to"`
	Tol  Duration `json:"tol,omitempty"`
	// Degraded asserts the diagnosis ran on partial evidence, with every
	// Missing entry appearing as a substring of some missing source.
	Degraded bool     `json:"degraded,omitempty"`
	Missing  []string `json:"missing,omitempty"`
}

// MemTuning overrides one node's page-cache configuration (the dirty-page
// scenarios shrink the watermark gap so a surge triggers recycling).
type MemTuning struct {
	HighWaterKB  float64  `json:"high_water_kb"`
	LowWaterKB   float64  `json:"low_water_kb"`
	DrainKBps    float64  `json:"drain_kbps"`
	FlushWorkers int      `json:"flush_workers,omitempty"`
	FlushSlice   Duration `json:"flush_slice,omitempty"`
}

// Spec is one catalogue entry: a fully reproducible trial plus the verdict
// it must produce.
type Spec struct {
	Name        string `json:"name"`
	Description string `json:"description"`
	// Family labels the fault class for the catalogue listing.
	Family string `json:"family"`
	// Seed drives every random stream of the run — simulator and
	// injectors alike — so identical specs yield identical verdicts.
	Seed     int64    `json:"seed"`
	Users    int      `json:"users"`
	Think    Duration `json:"think,omitempty"`
	Duration Duration `json:"duration"`
	// Mix is the RUBBoS workload mix: "readwrite" (default) or "browse".
	Mix string `json:"mix,omitempty"`
	// MemTuning maps node name → page-cache overrides.
	MemTuning map[string]MemTuning `json:"mem_tuning,omitempty"`
	Injectors []InjectorSpec       `json:"injectors"`
	// DeleteTiers removes the listed tiers' event logs after the run
	// (faults.KindDeleteTier) — the crash-loop scenarios' degraded path.
	DeleteTiers []string `json:"delete_tiers,omitempty"`
	// Expect lists required verdicts; empty asserts a clean diagnosis
	// (no VLRT windows at all).
	Expect []Verdict `json:"expect"`
}

// InjectorKinds lists the valid InjectorSpec.Kind values.
func InjectorKinds() []string {
	return []string{"db-log-flush", "dirty-page-surge", "jvm-gc", "dvfs",
		"conn-pool-seize", "lock-convoy", "cache-stampede", "net-jitter",
		"crash-loop"}
}

// Decode parses and validates one JSON scenario spec. It never panics:
// malformed input, unknown fields, unknown injector kinds and impossible
// parameters all return errors (FuzzScenarioConfigDecode holds it to that).
func Decode(data []byte) (*Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("scenario: decode: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("scenario: trailing data after spec")
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Encode renders the spec as indented JSON (the inverse of Decode).
func (s *Spec) Encode() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

func validName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c >= 'a' && c <= 'z' || c >= '0' && c <= '9' || c == '-' && i > 0
		if !ok {
			return false
		}
	}
	return true
}

func knownTier(name string) bool {
	for _, t := range core.Tiers {
		if t == name {
			return true
		}
	}
	return false
}

// Validate checks the spec is well-formed and buildable, so Build and the
// injector constructors never panic on a validated spec.
func (s *Spec) Validate() error {
	if !validName(s.Name) {
		return fmt.Errorf("scenario: invalid name %q (want kebab-case)", s.Name)
	}
	if s.Description == "" {
		return fmt.Errorf("scenario %s: missing description", s.Name)
	}
	if s.Seed == 0 {
		return fmt.Errorf("scenario %s: seed must be explicit and non-zero", s.Name)
	}
	if s.Users <= 0 {
		return fmt.Errorf("scenario %s: users %d", s.Name, s.Users)
	}
	if s.Duration <= 0 {
		return fmt.Errorf("scenario %s: non-positive duration %v", s.Name, s.Duration.D())
	}
	if s.Think < 0 {
		return fmt.Errorf("scenario %s: negative think time %v", s.Name, s.Think.D())
	}
	switch s.Mix {
	case "", "readwrite", "browse":
	default:
		return fmt.Errorf("scenario %s: unknown mix %q", s.Name, s.Mix)
	}
	for node, tune := range s.MemTuning {
		if !knownTier(node) {
			return fmt.Errorf("scenario %s: mem tuning for unknown node %q", s.Name, node)
		}
		if tune.HighWaterKB <= 0 || tune.LowWaterKB <= 0 || tune.DrainKBps <= 0 {
			return fmt.Errorf("scenario %s: mem tuning for %s needs positive watermarks and drain", s.Name, node)
		}
		if tune.LowWaterKB >= tune.HighWaterKB {
			return fmt.Errorf("scenario %s: %s low watermark %v ≥ high %v",
				s.Name, node, tune.LowWaterKB, tune.HighWaterKB)
		}
		if tune.FlushWorkers < 0 || tune.FlushSlice < 0 {
			return fmt.Errorf("scenario %s: %s flush tuning negative", s.Name, node)
		}
	}
	for i := range s.Injectors {
		if err := s.Injectors[i].validate(); err != nil {
			return fmt.Errorf("scenario %s: injector %d: %w", s.Name, i, err)
		}
	}
	for _, tier := range s.DeleteTiers {
		if !knownTier(tier) {
			return fmt.Errorf("scenario %s: delete unknown tier %q", s.Name, tier)
		}
	}
	for i, e := range s.Expect {
		if _, ok := core.ParseCauseKind(e.Kind); !ok {
			return fmt.Errorf("scenario %s: expect %d: unknown cause kind %q", s.Name, i, e.Kind)
		}
		if !knownTier(e.Node) {
			return fmt.Errorf("scenario %s: expect %d: unknown node %q", s.Name, i, e.Node)
		}
		if e.From < 0 || e.To <= e.From || e.Tol < 0 {
			return fmt.Errorf("scenario %s: expect %d: window [%v, %v] tol %v",
				s.Name, i, e.From.D(), e.To.D(), e.Tol.D())
		}
		if len(e.Missing) > 0 && !e.Degraded {
			return fmt.Errorf("scenario %s: expect %d: missing sources listed without degraded", s.Name, i)
		}
	}
	return nil
}

func (in *InjectorSpec) validate() error {
	needWindow := func() error {
		if in.At < 0 || in.Duration <= 0 {
			return fmt.Errorf("%s: window at=%v dur=%v", in.Kind, in.At.D(), in.Duration.D())
		}
		return nil
	}
	switch in.Kind {
	case "db-log-flush":
		return needWindow()
	case "dirty-page-surge":
		if !knownTier(in.Node) {
			return fmt.Errorf("dirty-page-surge: unknown node %q", in.Node)
		}
		if in.At < 0 || in.BurstKB <= 0 {
			return fmt.Errorf("dirty-page-surge: at=%v burst=%dKB", in.At.D(), in.BurstKB)
		}
	case "jvm-gc":
		if !knownTier(in.Node) {
			return fmt.Errorf("jvm-gc: unknown node %q", in.Node)
		}
		if in.At < 0 || in.Pause <= 0 {
			return fmt.Errorf("jvm-gc: at=%v pause=%v", in.At.D(), in.Pause.D())
		}
	case "dvfs":
		if !knownTier(in.Node) {
			return fmt.Errorf("dvfs: unknown node %q", in.Node)
		}
		if err := needWindow(); err != nil {
			return err
		}
		if in.Speed <= 0 || in.Speed >= 1 {
			return fmt.Errorf("dvfs: speed %v outside (0, 1)", in.Speed)
		}
	case "conn-pool-seize":
		// The last tier has no downstream pool.
		if !knownTier(in.Tier) || in.Tier == core.Tiers[len(core.Tiers)-1] {
			return fmt.Errorf("conn-pool-seize: tier %q has no downstream pool", in.Tier)
		}
		if err := needWindow(); err != nil {
			return err
		}
		if in.Held <= 0 {
			return fmt.Errorf("conn-pool-seize: held %d", in.Held)
		}
	case "lock-convoy":
		if err := needWindow(); err != nil {
			return err
		}
		if in.Hold <= 0 {
			return fmt.Errorf("lock-convoy: hold %v", in.Hold.D())
		}
	case "cache-stampede":
		if err := needWindow(); err != nil {
			return err
		}
		if in.MissProb <= 0 || in.MissProb > 1 {
			return fmt.Errorf("cache-stampede: miss probability %v", in.MissProb)
		}
		if in.ReadKB <= 0 {
			return fmt.Errorf("cache-stampede: read %dKB", in.ReadKB)
		}
	case "net-jitter":
		for _, n := range []string{in.Src, in.Dst} {
			if n != "client" && !knownTier(n) {
				return fmt.Errorf("net-jitter: unknown node %q", n)
			}
		}
		if err := needWindow(); err != nil {
			return err
		}
		if in.Extra <= 0 {
			return fmt.Errorf("net-jitter: extra %v", in.Extra.D())
		}
	case "crash-loop":
		if !knownTier(in.Node) {
			return fmt.Errorf("crash-loop: unknown node %q", in.Node)
		}
		if in.At < 0 || in.Outage <= 0 || in.Count <= 0 {
			return fmt.Errorf("crash-loop: at=%v outage=%v count=%d", in.At.D(), in.Outage.D(), in.Count)
		}
		if in.Count > 1 && in.Period <= in.Outage {
			return fmt.Errorf("crash-loop: period %v within outage %v", in.Period.D(), in.Outage.D())
		}
	default:
		return fmt.Errorf("unknown injector kind %q (known: %v)", in.Kind, InjectorKinds())
	}
	return nil
}
