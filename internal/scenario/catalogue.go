package scenario

import (
	"time"
)

// Catalogue parameters shared by most entries: the Section V trial shape —
// a moderate closed-loop load that is healthy outside the injected
// episode.
const (
	stdUsers = 150
	stdThink = Duration(300 * time.Millisecond)
	stdDur   = Duration(12 * time.Second)
)

func dur(d time.Duration) Duration { return Duration(d) }

// builtin is the registered catalogue, ordered for `scenario list`. Every
// entry must keep passing `mscope scenario verify --all` — the catalogue
// IS the soak suite, and its length is the repo's fault-diversity metric.
var builtin = []Spec{
	{
		Name:        "dbio",
		Description: "Section V-A: a redo-log flush seizes the DB disk for ~350ms",
		Family:      "disk contention",
		Seed:        17, Users: stdUsers, Think: stdThink, Duration: stdDur,
		Injectors: []InjectorSpec{
			{Kind: "db-log-flush", At: dur(6 * time.Second), Duration: dur(350 * time.Millisecond)},
		},
		Expect: []Verdict{
			{Kind: "disk-io", Node: "mysql",
				From: dur(5 * time.Second), To: dur(8 * time.Second), Tol: dur(time.Second)},
		},
	},
	{
		Name:        "dirtypage",
		Description: "Section V-B: dirty-page recycling saturates the Apache then Tomcat CPU",
		Family:      "cpu contention",
		Seed:        23, Users: stdUsers, Think: stdThink, Duration: stdDur,
		MemTuning: map[string]MemTuning{
			"apache": {HighWaterKB: 400 * 1024, LowWaterKB: 8 * 1024, DrainKBps: 400 * 1024,
				FlushSlice: dur(2 * time.Millisecond)},
			"tomcat": {HighWaterKB: 400 * 1024, LowWaterKB: 8 * 1024, DrainKBps: 400 * 1024,
				FlushSlice: dur(2 * time.Millisecond)},
		},
		Injectors: []InjectorSpec{
			{Kind: "dirty-page-surge", Node: "apache", At: dur(4 * time.Second), BurstKB: 300 * 1024},
			{Kind: "dirty-page-surge", Node: "tomcat", At: dur(6500 * time.Millisecond), BurstKB: 300 * 1024},
		},
		Expect: []Verdict{
			{Kind: "dirty-page-recycling", Node: "apache",
				From: dur(3500 * time.Millisecond), To: dur(6 * time.Second), Tol: dur(time.Second)},
			{Kind: "dirty-page-recycling", Node: "tomcat",
				From: dur(6 * time.Second), To: dur(8500 * time.Millisecond), Tol: dur(time.Second)},
		},
	},
	{
		Name:        "jvmgc",
		Description: "stop-the-world JVM collection holds every Tomcat core for 300ms",
		Family:      "cpu contention",
		Seed:        29, Users: stdUsers, Think: stdThink, Duration: stdDur,
		Injectors: []InjectorSpec{
			{Kind: "jvm-gc", Node: "tomcat", At: dur(6 * time.Second), Pause: dur(300 * time.Millisecond)},
		},
		Expect: []Verdict{
			{Kind: "cpu-saturation", Node: "tomcat",
				From: dur(5 * time.Second), To: dur(8 * time.Second), Tol: dur(time.Second)},
		},
	},
	{
		Name:        "dvfs",
		Description: "frequency scaling downclocks the MySQL CPU to 12% for 800ms",
		Family:      "cpu contention",
		Seed:        37, Users: stdUsers, Think: stdThink, Duration: stdDur,
		Injectors: []InjectorSpec{
			{Kind: "dvfs", Node: "mysql", At: dur(6 * time.Second),
				Duration: dur(800 * time.Millisecond), Speed: 0.12},
		},
		Expect: []Verdict{
			{Kind: "dvfs-downclocking", Node: "mysql",
				From: dur(5 * time.Second), To: dur(8 * time.Second), Tol: dur(time.Second)},
		},
	},
	{
		Name:        "connpool",
		Description: "every Tomcat→C-JDBC connection leaks for 1.2s; workers block and the stall amplifies upstream",
		Family:      "software contention",
		Seed:        43, Users: stdUsers, Think: stdThink, Duration: stdDur,
		Injectors: []InjectorSpec{
			{Kind: "conn-pool-seize", Tier: "tomcat", At: dur(6 * time.Second),
				Duration: dur(1200 * time.Millisecond), Held: 120},
		},
		Expect: []Verdict{
			{Kind: "conn-pool-exhaustion", Node: "tomcat",
				From: dur(5500 * time.Millisecond), To: dur(8500 * time.Millisecond), Tol: dur(time.Second)},
		},
	},
	{
		Name:        "lockconvoy",
		Description: "a hot row lock serializes DB queries for 400ms; queues balloon with every gauge flat",
		Family:      "software contention",
		Seed:        47, Users: stdUsers, Think: stdThink, Duration: stdDur,
		Injectors: []InjectorSpec{
			{Kind: "lock-convoy", At: dur(6 * time.Second),
				Duration: dur(400 * time.Millisecond), Hold: dur(10 * time.Millisecond)},
		},
		Expect: []Verdict{
			{Kind: "lock-convoy", Node: "mysql",
				From: dur(5500 * time.Millisecond), To: dur(9 * time.Second), Tol: dur(time.Second)},
		},
	},
	{
		Name:        "stampede",
		Description: "mass buffer-pool expiry: for 800ms nearly every query misses and stampedes the DB disk with reads",
		Family:      "disk contention",
		Seed:        53, Users: stdUsers, Think: stdThink, Duration: stdDur,
		Mix: "browse",
		Injectors: []InjectorSpec{
			{Kind: "cache-stampede", At: dur(6 * time.Second),
				Duration: dur(800 * time.Millisecond), MissProb: 0.95, ReadKB: 512},
		},
		Expect: []Verdict{
			{Kind: "cache-stampede", Node: "mysql",
				From: dur(5500 * time.Millisecond), To: dur(8500 * time.Millisecond), Tol: dur(time.Second)},
		},
	},
	{
		Name:        "netjitter",
		Description: "the Tomcat↔C-JDBC link gains ~30ms of jitter for 1s; only the wire slows down",
		Family:      "network",
		Seed:        59, Users: stdUsers, Think: stdThink, Duration: stdDur,
		Injectors: []InjectorSpec{
			{Kind: "net-jitter", Src: "tomcat", Dst: "cjdbc", At: dur(6 * time.Second),
				Duration: dur(time.Second), Extra: dur(30 * time.Millisecond)},
		},
		Expect: []Verdict{
			{Kind: "net-jitter", Node: "cjdbc",
				From: dur(5500 * time.Millisecond), To: dur(8500 * time.Millisecond), Tol: dur(time.Second)},
		},
	},
	{
		Name:        "crashloop",
		Description: "C-JDBC crash-loops (two 700ms outages) and its event log never ships; diagnosis runs degraded",
		Family:      "crash / partial evidence",
		Seed:        61, Users: stdUsers, Think: stdThink, Duration: stdDur,
		Injectors: []InjectorSpec{
			{Kind: "crash-loop", Node: "cjdbc", At: dur(5500 * time.Millisecond),
				Outage: dur(700 * time.Millisecond), Period: dur(2 * time.Second), Count: 2},
		},
		DeleteTiers: []string{"cjdbc"},
		Expect: []Verdict{
			{Kind: "crash-loop", Node: "cjdbc",
				From: dur(5 * time.Second), To: dur(9500 * time.Millisecond), Tol: dur(time.Second),
				Degraded: true, Missing: []string{"cjdbc_event"}},
		},
	},
}

// Scenarios returns the registered catalogue in listing order.
func Scenarios() []Spec {
	out := make([]Spec, len(builtin))
	copy(out, builtin)
	return out
}

// ByName finds one catalogue entry.
func ByName(name string) (*Spec, bool) {
	for i := range builtin {
		if builtin[i].Name == name {
			s := builtin[i]
			return &s, true
		}
	}
	return nil, false
}

// Names lists the catalogue's scenario names in order.
func Names() []string {
	out := make([]string, len(builtin))
	for i := range builtin {
		out[i] = builtin[i].Name
	}
	return out
}
