package scenario

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"github.com/gt-elba/milliscope/internal/core"
	"github.com/gt-elba/milliscope/internal/faults"
	"github.com/gt-elba/milliscope/internal/mscopedb"
	"github.com/gt-elba/milliscope/internal/simtime"
	"github.com/gt-elba/milliscope/internal/stream"
	"github.com/gt-elba/milliscope/internal/transform"
)

// Options tunes scenario execution and verification.
type Options struct {
	// WorkDir is the scratch root; each scenario works in its own
	// subdirectory. Required.
	WorkDir string
	// Window is the PIT/evidence window width (default 50ms, matching the
	// batch diagnose and live detector defaults).
	Window time.Duration
	// Live additionally replays the trial's logs through the streaming
	// pipeline and requires the online detector to reach the same
	// conclusions as the batch diagnosis.
	Live bool
	// LiveReplay is the wall time the replay is spread over (default 3s).
	LiveReplay time.Duration
}

func (o *Options) window() time.Duration {
	if o.Window > 0 {
		return o.Window
	}
	return 50 * time.Millisecond
}

// Outcome reports one scenario verification.
type Outcome struct {
	Name   string
	Family string
	// Pass is true when batch — and live, if checked — matched every
	// expected verdict with no contradicting windows.
	Pass bool
	// Problems lists every mismatch, batch and live.
	Problems []string
	// Verdicts renders the diagnosed windows (batch).
	Verdicts []string
	// Degraded mirrors the batch diagnosis' partial-evidence flag.
	Degraded bool
	// Elapsed is the batch run+ingest+diagnose wall time; LiveElapsed the
	// replay+stream time (zero unless live was checked).
	Elapsed     time.Duration
	LiveElapsed time.Duration
	LiveChecked bool
}

// observed is one diagnosed window in matcher form, shared by batch
// windows and live alerts.
type observed struct {
	kind             core.CauseKind
	node             string
	startUS, endUS   int64
	degraded         bool
	missing, verdict string
}

func (o observed) String() string {
	epochUS := simtime.Epoch.UnixMicro()
	return fmt.Sprintf("%s@%s [%v – %v]", o.kind, o.node,
		time.Duration(o.startUS-epochUS)*time.Microsecond,
		time.Duration(o.endUS-epochUS)*time.Microsecond)
}

// Run executes the scenario's trial and batch workflow: simulate with the
// armed injectors, apply any post-run log deletion, ingest, diagnose. It
// returns the diagnosis plus the directory holding the (possibly
// corrupted) logs the diagnosis consumed — the same files a live replay
// must stream.
func Run(s *Spec, opts Options) (*core.Diagnosis, string, error) {
	if opts.WorkDir == "" {
		return nil, "", fmt.Errorf("scenario %s: no work dir", s.Name)
	}
	logDir := filepath.Join(opts.WorkDir, s.Name, "logs")
	if err := os.MkdirAll(logDir, 0o755); err != nil {
		return nil, "", err
	}
	cfg, err := Build(s, logDir)
	if err != nil {
		return nil, "", err
	}
	if _, err := core.RunExperiment(cfg); err != nil {
		return nil, "", fmt.Errorf("scenario %s: run: %w", s.Name, err)
	}
	srcDir := logDir
	if len(s.DeleteTiers) > 0 {
		srcDir = filepath.Join(opts.WorkDir, s.Name, "corrupted")
		fcfg := faults.Config{
			Seed:        s.Seed,
			Kinds:       []faults.Kind{faults.KindDeleteTier},
			DeleteTiers: s.DeleteTiers,
		}
		if _, err := faults.Corrupt(logDir, srcDir, fcfg); err != nil {
			return nil, "", fmt.Errorf("scenario %s: delete tiers: %w", s.Name, err)
		}
	}
	db := mscopedb.Open()
	ingestDir := filepath.Join(opts.WorkDir, s.Name, "ingest")
	if _, err := transform.IngestDir(db, srcDir, ingestDir, transform.DefaultPlan()); err != nil {
		return nil, "", fmt.Errorf("scenario %s: ingest: %w", s.Name, err)
	}
	diag, err := core.Diagnose(db, opts.window())
	if err != nil {
		return nil, "", fmt.Errorf("scenario %s: diagnose: %w", s.Name, err)
	}
	return diag, srcDir, nil
}

// Verify runs the scenario end to end and checks its diagnosis against the
// registered expectation; with Options.Live it additionally replays the
// logs through the streaming pipeline and holds the online detector to the
// same verdicts. Mismatches land in Outcome.Problems, not in the error —
// an error means the scenario could not be executed at all.
func Verify(s *Spec, opts Options) (*Outcome, error) {
	out := &Outcome{Name: s.Name, Family: s.Family}
	start := time.Now()
	diag, srcDir, err := Run(s, opts)
	if err != nil {
		return nil, err
	}
	out.Elapsed = time.Since(start)
	out.Degraded = diag.Degraded()

	var obs []observed
	for _, w := range diag.Windows {
		o := observed{
			kind: w.Kind, node: w.Node,
			startUS: w.Window.StartMicros, endUS: w.Window.EndMicros,
			degraded: diag.Degraded(),
			missing:  strings.Join(diag.MissingSources, ","),
			verdict:  w.Verdict,
		}
		obs = append(obs, o)
		out.Verdicts = append(out.Verdicts, o.String())
	}
	for _, p := range matchExpect(s, obs) {
		out.Problems = append(out.Problems, "batch: "+p)
	}

	if opts.Live {
		liveStart := time.Now()
		alerts, err := replayLive(s, srcDir, opts)
		if err != nil {
			return nil, err
		}
		out.LiveElapsed = time.Since(liveStart)
		out.LiveChecked = true
		var lobs []observed
		for _, a := range alerts {
			lobs = append(lobs, observed{
				kind: a.Diagnosis.Kind, node: a.Diagnosis.Node,
				startUS:  a.Diagnosis.Window.StartMicros,
				endUS:    a.Diagnosis.Window.EndMicros,
				degraded: len(a.Missing) > 0,
				missing:  strings.Join(a.Missing, ","),
				verdict:  a.Diagnosis.Verdict,
			})
		}
		for _, p := range matchExpect(s, lobs) {
			out.Problems = append(out.Problems, "live: "+p)
		}
	}
	out.Pass = len(out.Problems) == 0
	return out, nil
}

// replayLive streams the scenario's logs at wall-clock pace through the
// live pipeline and returns the alerts the online detector raised.
func replayLive(s *Spec, srcDir string, opts Options) ([]stream.Alert, error) {
	replay := opts.LiveReplay
	if replay <= 0 {
		replay = 3 * time.Second
	}
	liveDir := filepath.Join(opts.WorkDir, s.Name, "live")
	prod, err := stream.NewProducer(stream.ProducerConfig{
		SrcDir: srcDir, DstDir: liveDir, Duration: replay,
	})
	if err != nil {
		return nil, fmt.Errorf("scenario %s: producer: %w", s.Name, err)
	}
	pipe, err := stream.New(stream.Config{LogDir: liveDir, Window: opts.window()})
	if err != nil {
		return nil, fmt.Errorf("scenario %s: pipeline: %w", s.Name, err)
	}
	pipe.Start()
	if err := prod.Run(); err != nil {
		_ = pipe.Stop()
		return nil, fmt.Errorf("scenario %s: replay: %w", s.Name, err)
	}
	if err := pipe.Stop(); err != nil {
		return nil, fmt.Errorf("scenario %s: stop pipeline: %w", s.Name, err)
	}
	return pipe.Alerts(), nil
}

// matchExpect checks observed windows against the spec's expectation:
// every expected verdict must be met by at least one window with the right
// kind, node, overlap and degradation, and every observed window must
// satisfy some expectation — a spurious contradicting verdict fails the
// scenario. An empty expectation asserts a clean run (no windows).
func matchExpect(s *Spec, obs []observed) []string {
	epochUS := simtime.Epoch.UnixMicro()
	var problems []string
	matched := make([]bool, len(obs))
	for i := range s.Expect {
		e := &s.Expect[i]
		kind, _ := core.ParseCauseKind(e.Kind)
		lo, hi := e.expectWindow(epochUS)
		found := false
		for j, o := range obs {
			if o.kind != kind || o.node != e.Node {
				continue
			}
			if o.startUS > hi || o.endUS < lo {
				continue
			}
			// A degraded expectation requires the verdict to have been
			// reached on partial evidence naming the right sources. (The
			// reverse is not enforced: a live alert may legitimately fire
			// before a straggler source appears.)
			if e.Degraded && (!o.degraded || !missingCovered(e.Missing, o.missing)) {
				continue
			}
			matched[j] = true
			found = true
		}
		if !found {
			problems = append(problems, fmt.Sprintf(
				"expected %s@%s in [%v – %v] not diagnosed",
				e.Kind, e.Node, (e.From-e.Tol).D(), (e.To+e.Tol).D()))
		}
	}
	for j, o := range obs {
		if !matched[j] {
			problems = append(problems, fmt.Sprintf(
				"unexpected window %s (%s)", o.String(), o.verdict))
		}
	}
	return problems
}

// missingCovered checks every required missing-source substring appears in
// the observed missing list.
func missingCovered(want []string, got string) bool {
	for _, w := range want {
		if !strings.Contains(got, w) {
			return false
		}
	}
	return true
}
