package scenario

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

const goldenDir = "testdata/golden"

// TestBuiltinSpecsValidate holds every catalogue entry to the same
// validation a decoded user spec gets, and requires the ISSUE's diversity
// floor: at least 7 scenarios covering at least 5 distinct families.
func TestBuiltinSpecsValidate(t *testing.T) {
	specs := Scenarios()
	if len(specs) < 7 {
		t.Fatalf("catalogue holds %d scenarios, want ≥ 7", len(specs))
	}
	families := map[string]bool{}
	seen := map[string]bool{}
	seeds := map[int64]string{}
	for i := range specs {
		s := &specs[i]
		if err := s.Validate(); err != nil {
			t.Errorf("builtin %s: %v", s.Name, err)
		}
		if seen[s.Name] {
			t.Errorf("duplicate scenario name %q", s.Name)
		}
		seen[s.Name] = true
		if prev, dup := seeds[s.Seed]; dup {
			t.Errorf("scenarios %s and %s share seed %d; distinct seeds keep trials independent",
				prev, s.Name, s.Seed)
		}
		seeds[s.Seed] = s.Name
		families[s.Family] = true
		if got, ok := ByName(s.Name); !ok || got.Name != s.Name {
			t.Errorf("ByName(%q) failed", s.Name)
		}
	}
	if len(families) < 4 {
		t.Errorf("catalogue spans %d fault families, want ≥ 4", len(families))
	}
}

// TestSpecRoundTrip proves Encode/Decode loses nothing: the declarative
// form is the source of truth, so it must survive serialization.
func TestSpecRoundTrip(t *testing.T) {
	for _, s := range Scenarios() {
		data, err := s.Encode()
		if err != nil {
			t.Fatalf("%s: encode: %v", s.Name, err)
		}
		back, err := Decode(data)
		if err != nil {
			t.Fatalf("%s: decode: %v\n%s", s.Name, err, data)
		}
		again, err := back.Encode()
		if err != nil {
			t.Fatalf("%s: re-encode: %v", s.Name, err)
		}
		if string(data) != string(again) {
			t.Errorf("%s: round trip drifted:\n%s\nvs\n%s", s.Name, data, again)
		}
	}
}

// TestDecodeRejects is the table of malformed specs Decode must refuse —
// with an error, never a panic (FuzzScenarioConfigDecode widens this).
func TestDecodeRejects(t *testing.T) {
	valid, err := Scenarios()[0].Encode()
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		data string
		want string
	}{
		{"empty", ``, "decode"},
		{"not json", `{{{`, "decode"},
		{"unknown field", `{"name":"x","bogus":1}`, "bogus"},
		{"trailing data", string(valid) + `{}`, "trailing"},
		{"bad name", `{"name":"Bad Name!","description":"d","seed":1,"users":1,"duration":"1s"}`, "name"},
		{"zero seed", `{"name":"x","description":"d","seed":0,"users":1,"duration":"1s"}`, "seed"},
		{"negative duration", `{"name":"x","description":"d","seed":1,"users":1,"duration":"-3s"}`, "duration"},
		{"zero users", `{"name":"x","description":"d","seed":1,"users":0,"duration":"1s"}`, "users"},
		{"bad mix", `{"name":"x","description":"d","seed":1,"users":1,"duration":"1s","mix":"chaos"}`, "mix"},
		{"unknown injector kind", `{"name":"x","description":"d","seed":1,"users":1,"duration":"1s",
			"injectors":[{"kind":"meteor-strike","at":"1s"}]}`, "unknown injector kind"},
		{"negative injector window", `{"name":"x","description":"d","seed":1,"users":1,"duration":"1s",
			"injectors":[{"kind":"db-log-flush","at":"-1s","duration":"1s"}]}`, "window"},
		{"seize last tier", `{"name":"x","description":"d","seed":1,"users":1,"duration":"1s",
			"injectors":[{"kind":"conn-pool-seize","tier":"mysql","at":"1s","duration":"1s","held":1}]}`, "downstream"},
		{"unknown expect kind", `{"name":"x","description":"d","seed":1,"users":1,"duration":"1s",
			"expect":[{"kind":"gremlins","node":"mysql","from":"1s","to":"2s"}]}`, "cause kind"},
		{"expect window inverted", `{"name":"x","description":"d","seed":1,"users":1,"duration":"1s",
			"expect":[{"kind":"disk-io","node":"mysql","from":"2s","to":"1s"}]}`, "window"},
		{"missing without degraded", `{"name":"x","description":"d","seed":1,"users":1,"duration":"1s",
			"expect":[{"kind":"disk-io","node":"mysql","from":"1s","to":"2s","missing":["a"]}]}`, "degraded"},
		{"delete unknown tier", `{"name":"x","description":"d","seed":1,"users":1,"duration":"1s",
			"delete_tiers":["nginx"]}`, "unknown tier"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, err := Decode([]byte(tc.data))
			if err == nil {
				t.Fatalf("decoded invalid spec %+v", s)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// FuzzScenarioConfigDecode requires Decode to reject arbitrary input with
// an error, never a panic, and accepted specs to survive a round trip.
func FuzzScenarioConfigDecode(f *testing.F) {
	for _, s := range Scenarios() {
		data, err := s.Encode()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte(`{"name":"x","seed":-1,"duration":"-5m"}`))
	f.Add([]byte(`{"injectors":[{"kind":"zzz"}]}`))
	f.Add([]byte(`{"name":"x","description":"d","seed":1,"users":1,"duration":1000000}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Decode(data)
		if err != nil {
			return
		}
		out, err := s.Encode()
		if err != nil {
			t.Fatalf("accepted spec failed to encode: %v", err)
		}
		if _, err := Decode(out); err != nil {
			t.Fatalf("accepted spec failed to re-decode: %v\n%s", err, out)
		}
	})
}

// TestRenderListGolden pins the `mscope scenario list` output: catalogue
// drift must be a reviewed diff.
func TestRenderListGolden(t *testing.T) {
	got := RenderList(Scenarios())
	path := filepath.Join(goldenDir, "scenario_list.txt")
	if *updateGolden {
		if err := os.MkdirAll(goldenDir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("scenario list drifted from golden:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestCatalogueVerify is the batch soak: every registered scenario must
// reach exactly its expected verdict. Per-scenario timing is logged so
// slow entries are visible in CI output.
func TestCatalogueVerify(t *testing.T) {
	if testing.Short() {
		t.Skip("catalogue soak skipped in -short")
	}
	opts := Options{WorkDir: t.TempDir()}
	for _, s := range Scenarios() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			out, err := Verify(&s, opts)
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("%s: %v (verdicts: %v)", s.Name, out.Elapsed.Round(time.Millisecond), out.Verdicts)
			if !out.Pass {
				t.Errorf("scenario %s failed:\n  %s", s.Name, strings.Join(out.Problems, "\n  "))
			}
		})
	}
}

// TestRepeatRunDeterminism reruns a randomness-consuming scenario (the
// lock convoy draws every hold time from the fault stream) and requires
// bit-identical verdicts: same seed, same diagnosis.
func TestRepeatRunDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("determinism repeat-run skipped in -short")
	}
	spec, ok := ByName("lockconvoy")
	if !ok {
		t.Fatal("lockconvoy scenario missing from catalogue")
	}
	render := func(dir string) []string {
		diag, _, err := Run(spec, Options{WorkDir: dir})
		if err != nil {
			t.Fatal(err)
		}
		var out []string
		for _, w := range diag.Windows {
			out = append(out, w.Verdict, w.Window.Duration().String())
		}
		return out
	}
	a := render(t.TempDir())
	b := render(t.TempDir())
	if strings.Join(a, "|") != strings.Join(b, "|") {
		t.Errorf("same seed diverged:\nrun 1: %v\nrun 2: %v", a, b)
	}
	if len(a) == 0 {
		t.Error("lockconvoy produced no verdicts to compare")
	}
}
