package scenario

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"slices"
	"strings"
	"testing"
	"time"

	"github.com/gt-elba/milliscope/internal/core"
	"github.com/gt-elba/milliscope/internal/faults"
	"github.com/gt-elba/milliscope/internal/mscopedb"
	"github.com/gt-elba/milliscope/internal/transform"
)

// The differential suite holds the on-disk segment store to the only
// standard that matters: a spill-backed warehouse must be observably
// identical to the in-memory one — same cells, same diagnosis, same
// verdicts — for every scenario in the catalogue, even when the ingest
// process is killed partway through and resumed from the manifest.

// stageTrial runs the scenario's trial (and its post-run tier deletion,
// if any) and returns the directory whose logs both warehouses ingest.
func stageTrial(t *testing.T, s *Spec, work string) string {
	t.Helper()
	logDir := filepath.Join(work, s.Name, "logs")
	if err := os.MkdirAll(logDir, 0o755); err != nil {
		t.Fatal(err)
	}
	cfg, err := Build(s, logDir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.RunExperiment(cfg); err != nil {
		t.Fatalf("run %s: %v", s.Name, err)
	}
	srcDir := logDir
	if len(s.DeleteTiers) > 0 {
		srcDir = filepath.Join(work, s.Name, "corrupted")
		fcfg := faults.Config{
			Seed:        s.Seed,
			Kinds:       []faults.Kind{faults.KindDeleteTier},
			DeleteTiers: s.DeleteTiers,
		}
		if _, err := faults.Corrupt(logDir, srcDir, fcfg); err != nil {
			t.Fatalf("delete tiers %s: %v", s.Name, err)
		}
	}
	return srcDir
}

func mustIngest(t *testing.T, db *mscopedb.DB, srcDir, work string) transform.Report {
	t.Helper()
	rep, err := transform.IngestDir(db, srcDir, work, transform.DefaultPlan())
	if err != nil {
		t.Fatalf("ingest %s: %v", srcDir, err)
	}
	return rep
}

func mustDiagnose(t *testing.T, db *mscopedb.DB) *core.Diagnosis {
	t.Helper()
	diag, err := core.Diagnose(db, 50*time.Millisecond)
	if err != nil {
		t.Fatalf("diagnose: %v", err)
	}
	return diag
}

// diagKey renders a diagnosis to a comparable form: PIT statistics,
// degradation, and every window's kind, node, bounds and verdict.
func diagKey(d *core.Diagnosis) string {
	var b strings.Builder
	fmt.Fprintf(&b, "requests=%d avg=%x max=%x degraded=%v missing=%s\n",
		d.PIT.Requests, math.Float64bits(d.PIT.AvgUS), math.Float64bits(d.PIT.MaxUS),
		d.Degraded(), strings.Join(d.MissingSources, ","))
	for _, w := range d.Windows {
		fmt.Fprintf(&b, "%s@%s [%d,%d] %s\n",
			w.Kind, w.Node, w.Window.StartMicros, w.Window.EndMicros, w.Verdict)
	}
	return b.String()
}

// renderRows flattens a table into one string per row, reading every
// cell through the public accessors (which route through the sealed
// part on spill-backed tables).
func renderRows(t *testing.T, tbl *mscopedb.Table) []string {
	t.Helper()
	cols := tbl.Columns()
	out := make([]string, tbl.Rows())
	var b strings.Builder
	for r := range out {
		b.Reset()
		for c := range cols {
			switch cols[c].Type {
			case mscopedb.TInt:
				fmt.Fprintf(&b, "%d\x1f", tbl.Int(c, r))
			case mscopedb.TFloat:
				fmt.Fprintf(&b, "%x\x1f", math.Float64bits(tbl.Float(c, r)))
			case mscopedb.TTime:
				fmt.Fprintf(&b, "%d\x1f", tbl.TimeMicros(c, r))
			default:
				fmt.Fprintf(&b, "%q\x1f", tbl.Str(c, r))
			}
		}
		out[r] = b.String()
	}
	return out
}

// assertSameWarehouse requires got to answer exactly like want: same
// tables, schemas, and cells. The static bookkeeping tables are compared
// as multisets — a killed-and-resumed ingest records the same provenance
// rows in a different order — while data tables must match row for row.
func assertSameWarehouse(t *testing.T, want, got *mscopedb.DB) {
	t.Helper()
	wn, gn := want.TableNames(), got.TableNames()
	if !slices.Equal(wn, gn) {
		t.Fatalf("table sets differ:\n  want %v\n  got  %v", wn, gn)
	}
	static := map[string]bool{
		mscopedb.TableExperiments: true, mscopedb.TableNodes: true,
		mscopedb.TableMonitors: true, mscopedb.TableIngests: true,
	}
	for _, name := range wn {
		wt, err := want.Table(name)
		if err != nil {
			t.Fatal(err)
		}
		gt, err := got.Table(name)
		if err != nil {
			t.Fatal(err)
		}
		wc, gc := wt.Columns(), gt.Columns()
		if len(wc) != len(gc) {
			t.Fatalf("%s: %d columns vs %d", name, len(wc), len(gc))
		}
		for i := range wc {
			if wc[i] != gc[i] {
				t.Fatalf("%s: column %d is %+v vs %+v", name, i, wc[i], gc[i])
			}
		}
		if wt.Rows() != gt.Rows() {
			t.Fatalf("%s: %d rows vs %d", name, wt.Rows(), gt.Rows())
		}
		wr, gr := renderRows(t, wt), renderRows(t, gt)
		if static[name] {
			slices.Sort(wr)
			slices.Sort(gr)
		}
		for r := range wr {
			if wr[r] != gr[r] {
				t.Fatalf("%s row %d differs:\n  want %s\n  got  %s", name, r, wr[r], gr[r])
			}
		}
	}
}

// moveHalf relocates every other ingestible file from srcDir into
// holdDir, simulating the files an ingest never reached before dying.
func moveHalf(t *testing.T, srcDir, holdDir string) {
	t.Helper()
	if err := os.MkdirAll(holdDir, 0o755); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(srcDir)
	if err != nil {
		t.Fatal(err)
	}
	i := 0
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if i%2 == 1 {
			if err := os.Rename(filepath.Join(srcDir, e.Name()), filepath.Join(holdDir, e.Name())); err != nil {
				t.Fatal(err)
			}
		}
		i++
	}
}

func moveBack(t *testing.T, holdDir, srcDir string) {
	t.Helper()
	entries, err := os.ReadDir(holdDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if err := os.Rename(filepath.Join(holdDir, e.Name()), filepath.Join(srcDir, e.Name())); err != nil {
			t.Fatal(err)
		}
	}
}

func totalSegs(db *mscopedb.DB) int {
	n := 0
	for _, name := range db.TableNames() {
		tbl, _ := db.Table(name)
		n += tbl.Segments()
	}
	return n
}

// TestSpillDifferential proves, for every catalogue scenario, that a
// spill-backed ingest — killed after loading half the files, reopened,
// and resumed — produces the same warehouse and the same diagnosis as a
// plain in-memory ingest, and that compaction and a final reopen change
// nothing observable.
func TestSpillDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("spill differential skipped in -short")
	}
	work := t.TempDir()
	for _, s := range Scenarios() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			srcDir := stageTrial(t, &s, work)
			// Every ingest shares one work dir: the provenance tables
			// record staged-artifact paths, which must match cell-for-cell.
			wdir := filepath.Join(work, s.Name, "ing")

			mem := mscopedb.Open()
			mustIngest(t, mem, srcDir, wdir)
			memDiag := diagKey(mustDiagnose(t, mem))

			// Phase 1: ingest half the files into the segment store, then
			// die. Each loaded file was checkpointed, so dropping the
			// handle without a final save is exactly a kill -9.
			opts := mscopedb.StoreOptions{SealRows: 512}
			spillDir := filepath.Join(work, s.Name, "spill")
			holdDir := filepath.Join(work, s.Name, "hold")
			moveHalf(t, srcDir, holdDir)
			db1, err := mscopedb.OpenDir(spillDir, opts)
			if err != nil {
				t.Fatal(err)
			}
			mustIngest(t, db1, srcDir, wdir)
			moveBack(t, holdDir, srcDir)

			// Phase 2: reopen from the manifest and resume. The ledger
			// must skip every file the dead process already loaded.
			db2, err := mscopedb.OpenDir(spillDir, opts)
			if err != nil {
				t.Fatalf("reopen after kill: %v", err)
			}
			rep := mustIngest(t, db2, srcDir, wdir)
			if len(rep.Unchanged) == 0 {
				t.Error("resume re-ingested every file; the ledger did not survive the kill")
			}
			assertSameWarehouse(t, mem, db2)
			if got := diagKey(mustDiagnose(t, db2)); got != memDiag {
				t.Errorf("spilled diagnosis diverged:\n%s\nvs in-memory:\n%s", got, memDiag)
			}
			if totalSegs(db2) == 0 {
				t.Error("no segments on disk; the differential exercised nothing")
			}

			// Phase 3: compaction and a final reopen are invisible to queries.
			if err := db2.Compact(); err != nil {
				t.Fatal(err)
			}
			assertSameWarehouse(t, mem, db2)
			db3, err := mscopedb.OpenDir(spillDir, opts)
			if err != nil {
				t.Fatalf("reopen after compact: %v", err)
			}
			assertSameWarehouse(t, mem, db3)
			if got := diagKey(mustDiagnose(t, db3)); got != memDiag {
				t.Errorf("reopened diagnosis diverged:\n%s\nvs in-memory:\n%s", got, memDiag)
			}
		})
	}
}

// TestDBSoak is the durable-warehouse soak behind `make db-soak`: a
// corpus at least 10x the configured in-memory tail budget is ingested
// with an artificially low spill threshold, the process is killed once
// mid-ingest and once mid-compaction (after the merged segment was
// swapped in but before the manifest committed), and the reopened
// warehouse must still produce the in-memory warehouse's exact cells
// and verdicts.
func TestDBSoak(t *testing.T) {
	if os.Getenv("MSCOPE_DB_SOAK") == "" {
		t.Skip("durable-warehouse soak: run via `make db-soak` (sets MSCOPE_DB_SOAK=1)")
	}
	work := t.TempDir()
	spec, ok := ByName("dbio")
	if !ok {
		t.Fatal("dbio scenario missing from catalogue")
	}
	s := *spec
	logDir := filepath.Join(work, "logs")
	if err := os.MkdirAll(logDir, 0o755); err != nil {
		t.Fatal(err)
	}
	cfg, err := Build(&s, logDir)
	if err != nil {
		t.Fatal(err)
	}
	// A longer trial than the catalogue default, so the sealed corpus
	// dwarfs the in-memory tail budget by well over 10x.
	cfg.Ntier.Duration = 15 * time.Second
	if _, err := core.RunExperiment(cfg); err != nil {
		t.Fatal(err)
	}

	wdir := filepath.Join(work, "ing")
	mem := mscopedb.Open()
	mustIngest(t, mem, logDir, wdir)
	memDiag := diagKey(mustDiagnose(t, mem))

	const sealRows = 128
	opts := mscopedb.StoreOptions{
		SealRows: sealRows, CompactMinSegs: 3, CompactTargetRows: sealRows * 16,
	}
	spillDir := filepath.Join(work, "spill")
	holdDir := filepath.Join(work, "hold")

	// Kill 1: mid-ingest.
	moveHalf(t, logDir, holdDir)
	db1, err := mscopedb.OpenDir(spillDir, opts)
	if err != nil {
		t.Fatal(err)
	}
	mustIngest(t, db1, logDir, wdir)
	moveBack(t, holdDir, logDir)

	// Kill 2: mid-compaction. CompactOnce swaps the merged segment into
	// the live table but the manifest never commits — dying here leaves
	// an orphaned merged file the next open must sweep.
	db2, err := mscopedb.OpenDir(spillDir, opts)
	if err != nil {
		t.Fatalf("reopen after ingest kill: %v", err)
	}
	merged, err := db2.CompactOnce()
	if err != nil {
		t.Fatal(err)
	}
	if !merged {
		t.Fatal("soak corpus produced no compactable run; lower SealRows")
	}

	// Recovery: reopen, resume the ingest, compact fully, commit.
	db3, err := mscopedb.OpenDir(spillDir, opts)
	if err != nil {
		t.Fatalf("reopen after compaction kill: %v", err)
	}
	rep := mustIngest(t, db3, logDir, wdir)
	if len(rep.Unchanged) == 0 {
		t.Error("resume re-ingested every file; the ledger did not survive the kill")
	}
	if err := db3.Compact(); err != nil {
		t.Fatal(err)
	}

	db4, err := mscopedb.OpenDir(spillDir, opts)
	if err != nil {
		t.Fatalf("final reopen: %v", err)
	}
	// The RAM-budget claim, made concrete: every event table's sealed
	// on-disk prefix holds at least 10x the rows its in-memory tail may.
	for _, name := range db4.TableNames() {
		if !strings.HasSuffix(name, "_event") {
			continue
		}
		tbl, err := db4.Table(name)
		if err != nil {
			t.Fatal(err)
		}
		if tbl.SealedRows() < 10*sealRows {
			t.Errorf("%s: only %d sealed rows for a %d-row tail budget; corpus is not 10x RAM",
				name, tbl.SealedRows(), sealRows)
		}
	}
	assertSameWarehouse(t, mem, db4)
	if got := diagKey(mustDiagnose(t, db4)); got != memDiag {
		t.Errorf("soaked diagnosis diverged:\n%s\nvs in-memory:\n%s", got, memDiag)
	}
}
