package scenario

import (
	"fmt"

	"github.com/gt-elba/milliscope/internal/bottleneck"
	"github.com/gt-elba/milliscope/internal/core"
	"github.com/gt-elba/milliscope/internal/des"
	"github.com/gt-elba/milliscope/internal/ntier"
	"github.com/gt-elba/milliscope/internal/resmon"
	"github.com/gt-elba/milliscope/internal/rubbos"
)

// Build turns a validated spec into a runnable experiment configuration
// writing its monitor logs under logDir. Every random stream — workload,
// network, DB and injector draws — derives from Spec.Seed.
func Build(s *Spec, logDir string) (core.ExperimentConfig, error) {
	if err := s.Validate(); err != nil {
		return core.ExperimentConfig{}, err
	}
	cfg := ntier.DefaultConfig()
	cfg.Users = s.Users
	cfg.Duration = s.Duration.D()
	cfg.Seed = s.Seed
	if s.Think > 0 {
		cfg.ThinkTime = s.Think.D()
	}
	if s.Mix == "browse" {
		cfg.Mix = rubbos.BrowseOnly
	} else {
		cfg.Mix = rubbos.ReadWrite
	}
	for node, tune := range s.MemTuning {
		spec, err := tierSpec(&cfg, node)
		if err != nil {
			return core.ExperimentConfig{}, err
		}
		spec.Node.Memory.HighWaterKB = tune.HighWaterKB
		spec.Node.Memory.LowWaterKB = tune.LowWaterKB
		spec.Node.Memory.DrainKBps = tune.DrainKBps
		spec.Node.Memory.FlushWorkers = tune.FlushWorkers
		if spec.Node.Memory.FlushWorkers == 0 {
			spec.Node.Memory.FlushWorkers = spec.Node.Cores
		}
		if tune.FlushSlice > 0 {
			spec.Node.Memory.FlushSlice = tune.FlushSlice.D()
		}
	}
	injectors := make([]bottleneck.Injector, 0, len(s.Injectors))
	for i := range s.Injectors {
		injectors = append(injectors, buildInjector(&s.Injectors[i]))
	}
	rm := resmon.DefaultConfig()
	return core.ExperimentConfig{
		Name:          s.Name,
		Ntier:         cfg,
		EventMonitors: true,
		Resmon:        &rm,
		Injectors:     injectors,
		LogDir:        logDir,
	}, nil
}

// tierSpec maps a node name to its tier spec within the config.
func tierSpec(cfg *ntier.Config, node string) (*ntier.TierSpec, error) {
	for _, spec := range []*ntier.TierSpec{&cfg.Web, &cfg.App, &cfg.Mid, &cfg.DB} {
		if spec.Node.Name == node {
			return spec, nil
		}
	}
	return nil, fmt.Errorf("scenario: no tier named %q", node)
}

// buildInjector converts one validated injector spec. Specs that fail
// Validate never reach here, so the constructors' own panics are dead.
func buildInjector(in *InjectorSpec) bottleneck.Injector {
	at := des.Time(in.At)
	dur := in.Duration.D()
	switch in.Kind {
	case "db-log-flush":
		return bottleneck.DBLogFlush{At: at, Duration: dur}
	case "dirty-page-surge":
		return bottleneck.DirtyPageSurge{Node: in.Node, At: at, BurstKB: in.BurstKB}
	case "jvm-gc":
		return bottleneck.JVMGC{Node: in.Node, At: at, Pause: in.Pause.D()}
	case "dvfs":
		return bottleneck.DVFS{Node: in.Node, At: at, Duration: dur, Speed: in.Speed}
	case "conn-pool-seize":
		return bottleneck.ConnPoolSeize{Tier: in.Tier, At: at, Duration: dur, Held: in.Held}
	case "lock-convoy":
		return bottleneck.LockConvoy{At: at, Duration: dur, Hold: in.Hold.D()}
	case "cache-stampede":
		return bottleneck.CacheStampede{At: at, Duration: dur,
			MissProb: in.MissProb, ReadKB: in.ReadKB}
	case "net-jitter":
		return bottleneck.NetJitter{Src: in.Src, Dst: in.Dst, At: at, Duration: dur,
			Extra: in.Extra.D()}
	case "crash-loop":
		return bottleneck.CrashLoop{Node: in.Node, At: at, Outage: in.Outage.D(),
			Period: in.Period.D(), Count: in.Count}
	default:
		panic(fmt.Sprintf("scenario: unvalidated injector kind %q", in.Kind))
	}
}

// expectWindow returns the absolute warehouse-time bounds a diagnosed
// window must overlap to satisfy the verdict.
func (e *Verdict) expectWindow(epochUS int64) (lo, hi int64) {
	lo = epochUS + (e.From - e.Tol).D().Microseconds()
	hi = epochUS + (e.To + e.Tol).D().Microseconds()
	return lo, hi
}
