// Package promfmt is the one place mscope renders Prometheus text
// exposition. Every HTTP surface (live pipeline, agent, collector,
// serve) builds its /metrics body through a Writer, which enforces the
// conventions the conformance tests pin: every family name carries the
// mscope_ prefix, every family emits exactly one # HELP and one # TYPE
// line immediately before its samples, and families never interleave.
package promfmt

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Writer accumulates one exposition body. The zero value is ready to
// use.
type Writer struct {
	b        strings.Builder
	families map[string]bool
}

// Prefix is mandatory on every family name this package emits.
const Prefix = "mscope_"

func (w *Writer) header(name, typ, help string) {
	if !strings.HasPrefix(name, Prefix) {
		panic("promfmt: family " + name + " lacks the " + Prefix + " prefix")
	}
	if strings.ContainsAny(help, "\n") {
		panic("promfmt: help for " + name + " contains a newline")
	}
	if w.families == nil {
		w.families = make(map[string]bool)
	}
	if w.families[name] {
		panic("promfmt: family " + name + " emitted twice")
	}
	w.families[name] = true
	fmt.Fprintf(&w.b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

func (w *Writer) sample(name, labels string, v float64) {
	w.b.WriteString(name)
	if labels != "" {
		w.b.WriteByte('{')
		w.b.WriteString(labels)
		w.b.WriteByte('}')
	}
	w.b.WriteByte(' ')
	w.b.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
	w.b.WriteByte('\n')
}

// Gauge emits a single-sample gauge family.
func (w *Writer) Gauge(name, help string, v float64) {
	w.header(name, "gauge", help)
	w.sample(name, "", v)
}

// Counter emits a single-sample counter family.
func (w *Writer) Counter(name, help string, v float64) {
	w.header(name, "counter", help)
	w.sample(name, "", v)
}

// Family is a labeled metric family: one header, many samples.
type Family struct {
	w    *Writer
	name string
}

// GaugeFamily opens a labeled gauge family. Emit samples with Label.
func (w *Writer) GaugeFamily(name, help string) *Family {
	w.header(name, "gauge", help)
	return &Family{w: w, name: name}
}

// CounterFamily opens a labeled counter family.
func (w *Writer) CounterFamily(name, help string) *Family {
	w.header(name, "counter", help)
	return &Family{w: w, name: name}
}

// Label emits one sample with a single key=value label pair; the value
// is quoted per the exposition format.
func (f *Family) Label(key, value string, v float64) {
	f.w.sample(f.name, key+"="+strconv.Quote(value), v)
}

// String returns the accumulated exposition body.
func (w *Writer) String() string { return w.b.String() }

// Lint validates an exposition body against the discipline Writer
// enforces, so handler tests can hold any surface — including ones
// composed from several writers — to the same contract. It checks that
// every sample's family was declared by an immediately preceding
// # HELP + # TYPE pair, that every family name carries the mscope_
// prefix, that no family is declared twice, and that samples of
// different families never interleave.
func Lint(text string) error {
	type state struct {
		help, typ bool
		samples   int
	}
	seen := make(map[string]*state)
	var current string // family whose block we are inside
	for ln, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		switch {
		case strings.HasPrefix(line, "# HELP "):
			rest := strings.TrimPrefix(line, "# HELP ")
			name, _, ok := strings.Cut(rest, " ")
			if !ok || name == "" {
				return fmt.Errorf("line %d: malformed HELP: %q", ln+1, line)
			}
			if seen[name] != nil {
				return fmt.Errorf("line %d: family %s declared twice", ln+1, name)
			}
			seen[name] = &state{help: true}
			current = name
		case strings.HasPrefix(line, "# TYPE "):
			fields := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(fields) != 2 || (fields[1] != "gauge" && fields[1] != "counter") {
				return fmt.Errorf("line %d: malformed TYPE: %q", ln+1, line)
			}
			name := fields[0]
			st := seen[name]
			if st == nil || !st.help || st.typ || current != name {
				return fmt.Errorf("line %d: TYPE for %s without immediately preceding HELP", ln+1, name)
			}
			st.typ = true
		case strings.HasPrefix(line, "#"):
			return fmt.Errorf("line %d: unexpected comment: %q", ln+1, line)
		default:
			name := line
			if i := strings.IndexAny(line, "{ "); i >= 0 {
				name = line[:i]
			}
			if !strings.HasPrefix(name, Prefix) {
				return fmt.Errorf("line %d: sample %s lacks the %s prefix", ln+1, name, Prefix)
			}
			st := seen[name]
			if st == nil || !st.typ {
				return fmt.Errorf("line %d: sample for undeclared family %s", ln+1, name)
			}
			if name != current {
				return fmt.Errorf("line %d: sample for %s interleaves into family %s's block", ln+1, name, current)
			}
			st.samples++
		}
	}
	var empty []string
	for name, st := range seen {
		if st.samples == 0 {
			empty = append(empty, name)
		}
	}
	if len(empty) > 0 {
		sort.Strings(empty)
		return fmt.Errorf("families declared with no samples: %s", strings.Join(empty, ", "))
	}
	return nil
}
