package promfmt

import (
	"strings"
	"testing"
)

func TestWriterRendersFamilies(t *testing.T) {
	var w Writer
	w.Gauge("mscope_rows_total", "rows appended", 42)
	w.Counter("mscope_stalls_total", "stall events", 3)
	f := w.GaugeFamily("mscope_source_rows", "per-source rows")
	f.Label("file", "apache_access.log", 7)
	f.Label("file", "mysql_slow.log", 9)
	out := w.String()

	want := []string{
		"# HELP mscope_rows_total rows appended",
		"# TYPE mscope_rows_total gauge",
		"mscope_rows_total 42",
		"# TYPE mscope_stalls_total counter",
		"mscope_stalls_total 3",
		`mscope_source_rows{file="apache_access.log"} 7`,
		`mscope_source_rows{file="mysql_slow.log"} 9`,
	}
	for _, s := range want {
		if !strings.Contains(out, s+"\n") {
			t.Errorf("output missing line %q:\n%s", s, out)
		}
	}
	if err := Lint(out); err != nil {
		t.Errorf("Lint rejects Writer output: %v", err)
	}
}

func TestWriterPanicsOnBadUse(t *testing.T) {
	expectPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	expectPanic("missing prefix", func() {
		var w Writer
		w.Gauge("rows_total", "h", 1)
	})
	expectPanic("duplicate family", func() {
		var w Writer
		w.Gauge("mscope_x", "h", 1)
		w.Gauge("mscope_x", "h", 2)
	})
	expectPanic("newline in help", func() {
		var w Writer
		w.Gauge("mscope_x", "a\nb", 1)
	})
}

func TestLintRejections(t *testing.T) {
	cases := []struct {
		name, text, want string
	}{
		{"sample without header", "mscope_x 1\n", "undeclared"},
		{"type without help", "# TYPE mscope_x gauge\nmscope_x 1\n", "without immediately preceding HELP"},
		{"unprefixed sample", "# HELP other_x h\n# TYPE other_x gauge\nother_x 1\n", "prefix"},
		{"duplicate family", "# HELP mscope_x h\n# TYPE mscope_x gauge\nmscope_x 1\n# HELP mscope_x h\n# TYPE mscope_x gauge\nmscope_x 2\n", "twice"},
		{"interleaved families", "# HELP mscope_x h\n# TYPE mscope_x gauge\n# HELP mscope_y h\n# TYPE mscope_y gauge\nmscope_y 1\nmscope_x 1\n", "interleaves"},
		{"header with no samples", "# HELP mscope_x h\n# TYPE mscope_x gauge\n", "no samples"},
	}
	for _, tc := range cases {
		err := Lint(tc.text)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: Lint = %v, want error containing %q", tc.name, err, tc.want)
		}
	}
}
