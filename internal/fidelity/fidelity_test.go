package fidelity

import "testing"

func evalN(c *Controller, p Pressure, n int) (changed int) {
	for i := 0; i < n; i++ {
		if _, ch := c.Eval(p); ch {
			changed++
		}
	}
	return changed
}

func TestControllerDwellGatesTransition(t *testing.T) {
	c := NewController(Config{Dwell: 4})
	hot := Pressure{Queue: 0.9}
	for i := 0; i < 3; i++ {
		if st, ch := c.Eval(hot); ch || st != Full {
			t.Fatalf("eval %d: transitioned early (state %v)", i, st)
		}
	}
	st, ch := c.Eval(hot)
	if !ch || st != Aggregate {
		t.Fatalf("4th hot eval: state %v changed=%v, want aggregate transition", st, ch)
	}
	if n := len(c.Transitions()); n != 1 {
		t.Errorf("%d transitions logged, want 1", n)
	}
}

func TestControllerStreakResetsOnDisagreement(t *testing.T) {
	c := NewController(Config{Dwell: 3})
	hot, cool := Pressure{Queue: 0.9}, Pressure{Queue: 0.1}
	c.Eval(hot)
	c.Eval(hot)
	c.Eval(cool) // breaks the streak
	if st, ch := c.Eval(hot); ch || st != Full {
		t.Fatalf("streak did not reset: state %v changed=%v", st, ch)
	}
}

func TestControllerHysteresisNoFlapping(t *testing.T) {
	// A score hovering between Exit and Enter must hold whatever state the
	// controller is in — in both directions.
	c := NewController(Config{Enter: 0.75, Exit: 0.35, Dwell: 2})
	mid := Pressure{Queue: 0.5}
	if n := evalN(c, mid, 10); n != 0 {
		t.Errorf("mid pressure from FULL committed %d transitions, want 0", n)
	}
	evalN(c, Pressure{Queue: 0.9}, 2) // force into aggregate
	if c.State() != Aggregate {
		t.Fatalf("state %v, want aggregate", c.State())
	}
	if n := evalN(c, mid, 10); n != 0 {
		t.Errorf("mid pressure from AGGREGATE committed %d transitions, want 0", n)
	}
	if n := evalN(c, Pressure{Queue: 0.1}, 2); n != 1 || c.State() != Full {
		t.Errorf("cool pressure: %d transitions to %v, want 1 to full", n, c.State())
	}
}

func TestControllerShedKeyedOnMemory(t *testing.T) {
	c := NewController(Config{Dwell: 1})
	// A saturated queue alone must not shed: aggregate absorbs it.
	evalN(c, Pressure{Queue: 1.0}, 5)
	if c.State() != Aggregate {
		t.Fatalf("queue saturation drove state to %v, want aggregate", c.State())
	}
	// Memory pressure does shed…
	c.Eval(Pressure{Queue: 1.0, Mem: 0.97})
	if c.State() != Shed {
		t.Fatalf("memory pressure left state %v, want shed", c.State())
	}
	// …and only memory recovery un-sheds, one step at a time.
	c.Eval(Pressure{Queue: 1.0, Mem: 0.4})
	if c.State() != Aggregate {
		t.Fatalf("memory recovery left state %v, want aggregate", c.State())
	}
	trs := c.Transitions()
	for i := 1; i < len(trs); i++ {
		if trs[i].From != trs[i-1].To {
			t.Errorf("transition log not contiguous: %v then %v", trs[i-1], trs[i])
		}
		d := int(trs[i].To) - int(trs[i].From)
		if d != 1 && d != -1 {
			t.Errorf("transition %v jumps more than one step", trs[i])
		}
	}
}

func TestPressureScoreIsMax(t *testing.T) {
	p := Pressure{Queue: 0.2, Lag: 0.8, Mem: 0.5}
	if p.Score() != 0.8 {
		t.Errorf("score %v, want the max signal 0.8", p.Score())
	}
}
