package fidelity

import (
	"reflect"
	"testing"
)

func TestRingWraparoundEvictsOldest(t *testing.T) {
	r := NewRing[int](4)
	for i := 0; i < 10; i++ {
		r.Push(int64(i), i)
	}
	if r.Len() != 4 || r.Evicted() != 6 {
		t.Fatalf("len=%d evicted=%d, want 4 and 6", r.Len(), r.Evicted())
	}
	got := r.TakeRange(0, 100)
	if want := []int{6, 7, 8, 9}; !reflect.DeepEqual(got, want) {
		t.Errorf("survivors %v, want the newest four %v in insertion order", got, want)
	}
}

func TestRingTakeRangeSpansBufferBoundary(t *testing.T) {
	// Fill past capacity so the live window physically wraps the slice
	// end, then promote a range that crosses the wrap point.
	r := NewRing[int](5)
	for i := 0; i < 8; i++ { // live entries 3..7, head mid-slice
		r.Push(int64(i*10), i)
	}
	got := r.TakeRange(40, 60)
	if want := []int{4, 5, 6}; !reflect.DeepEqual(got, want) {
		t.Errorf("boundary-spanning promotion returned %v, want %v", got, want)
	}
}

func TestRingTakeRangeIsIdempotent(t *testing.T) {
	r := NewRing[string](8)
	r.Push(10, "a")
	r.Push(20, "b")
	r.Push(30, "c")
	first := r.TakeRange(10, 20)
	if want := []string{"a", "b"}; !reflect.DeepEqual(first, want) {
		t.Fatalf("first take %v, want %v", first, want)
	}
	// An overlapping neighbourhood must not re-promote shared rows.
	second := r.TakeRange(0, 40)
	if want := []string{"c"}; !reflect.DeepEqual(second, want) {
		t.Errorf("overlapping take %v, want only the untaken %v", second, want)
	}
	if r.Taken() != 3 {
		t.Errorf("taken=%d, want 3", r.Taken())
	}
}

func TestRingExpireBefore(t *testing.T) {
	r := NewRing[int](8)
	for i := 0; i < 6; i++ {
		r.Push(int64(i*10), i)
	}
	if n := r.ExpireBefore(30); n != 3 {
		t.Fatalf("expired %d, want 3", n)
	}
	if got := r.TakeRange(0, 100); !reflect.DeepEqual(got, []int{3, 4, 5}) {
		t.Errorf("after expiry: %v, want [3 4 5]", got)
	}
	// Out-of-order tail: expiry only pops while the *oldest* is behind the
	// cutoff, so a late entry shields newer-but-earlier ones — promotion
	// beats aggressive expiry.
	r2 := NewRing[int](8)
	r2.Push(50, 50)
	r2.Push(10, 10) // late arrival
	if n := r2.ExpireBefore(40); n != 0 {
		t.Errorf("expiry crossed a newer entry: dropped %d, want 0", n)
	}
}

func TestRingExpireRacesPromotion(t *testing.T) {
	// Promotion of a window that partially expired returns only the live
	// remainder — never stale or duplicate values.
	r := NewRing[int](4)
	for i := 0; i < 8; i++ {
		r.Push(int64(i*10), i)
	}
	r.ExpireBefore(55) // drops 4 and 5 of the live 4..7
	got := r.TakeRange(0, 1000)
	if want := []int{6, 7}; !reflect.DeepEqual(got, want) {
		t.Errorf("post-expiry promotion %v, want %v", got, want)
	}
}
