// Package fidelity is the load-aware degradation controller for the live
// pipeline: a hysteresis state machine over measurable pressure signals,
// plus the bounded ring buffer that keeps full-fidelity rows available for
// retroactive promotion while the pipeline runs degraded.
//
// The design follows the two-phase monitoring idea from the related work:
// a cheap coarse phase that is always on (per-window aggregates), and the
// expensive fine-grained phase (full row retention) engaged only where the
// coarse phase — here, the online millibottleneck detector — flags an
// anomaly. The controller decides which phase the steady state runs in;
// the ring buffer is what makes the retroactive switch lossless inside the
// anomaly neighbourhood.
package fidelity

// State is the pipeline's fidelity level. Order matters: transitions move
// one step at a time, so a spike never jumps FULL→SHED without passing
// through AGGREGATE (and its ring retention) first.
type State int

const (
	// Full retains every parsed row in the warehouse — the PR-2 behavior.
	Full State = iota
	// Aggregate folds rows into per-window aggregates; full-fidelity rows
	// survive only in the bounded per-source rings, awaiting promotion.
	Aggregate
	// Shed drops row retention entirely (aggregates still accumulate);
	// the last resort when retained-row memory itself is the pressure.
	Shed
)

// FromByte decodes a state shipped as a single wire byte (the collector's
// Control frames); false for values outside the known range.
func FromByte(b uint8) (State, bool) {
	if b > uint8(Shed) {
		return Full, false
	}
	return State(b), true
}

func (s State) String() string {
	switch s {
	case Full:
		return "full"
	case Aggregate:
		return "aggregate"
	case Shed:
		return "shed"
	}
	return "unknown"
}

// Pressure is one sample of the three load signals, each normalized so
// 1.0 means "at the configured budget".
type Pressure struct {
	// Queue is the parser→loader channel occupancy (len/cap).
	Queue float64
	// Lag is the event-time spread between the fastest source frontier and
	// the low watermark, over the lag budget.
	Lag float64
	// Mem is the retained-row count (warehouse rows + ring + rollup cells)
	// over the retention budget.
	Mem float64
}

// Score is the load signal driving FULL↔AGGREGATE: the worst of the
// throughput-ish signals. Any one budget being exhausted is reason enough
// to degrade — a full queue with zero lag still means the loader is the
// bottleneck.
func (p Pressure) Score() float64 {
	s := p.Queue
	if p.Lag > s {
		s = p.Lag
	}
	if p.Mem > s {
		s = p.Mem
	}
	return s
}

// Config sets the controller thresholds. Hysteresis is the gap between
// Enter and Exit: the score must fall well below the entry point before
// the controller recovers, so a load hovering at the threshold cannot
// flap the state every evaluation.
type Config struct {
	// Enter and Exit bound the FULL↔AGGREGATE transition on Score().
	Enter, Exit float64
	// ShedEnter and ShedExit bound AGGREGATE↔SHED on the Mem signal
	// alone: shedding protects the retention budget specifically —
	// a slow consumer is survivable in AGGREGATE, memory exhaustion
	// is not.
	ShedEnter, ShedExit float64
	// Dwell is how many consecutive evaluations must agree before a
	// transition commits — the time half of the hysteresis.
	Dwell int
}

func (c Config) withDefaults() Config {
	if c.Enter <= 0 {
		c.Enter = 0.75
	}
	if c.Exit <= 0 {
		c.Exit = 0.35
	}
	if c.ShedEnter <= 0 {
		c.ShedEnter = 0.95
	}
	if c.ShedExit <= 0 {
		c.ShedExit = 0.6
	}
	if c.Dwell <= 0 {
		c.Dwell = 4
	}
	return c
}

// Transition is one committed state change, sequence-stamped by
// evaluation count (not wall clock) so transition logs are deterministic
// under test.
type Transition struct {
	From, To State
	// Seq is the evaluation counter at commit time.
	Seq int64
	// Score is the driving signal's value at commit time.
	Score float64
}

// Controller is the hysteresis state machine. It is not safe for
// concurrent use: the loader goroutine owns it, and snapshots travel
// through the pipeline's status path.
type Controller struct {
	cfg    Config
	state  State
	seq    int64
	want   State
	streak int
	log    []Transition
}

// NewController starts a controller in FULL.
func NewController(cfg Config) *Controller {
	return &Controller{cfg: cfg.withDefaults()}
}

// State returns the current fidelity level.
func (c *Controller) State() State { return c.state }

// Transitions returns the committed transition log.
func (c *Controller) Transitions() []Transition {
	out := make([]Transition, len(c.log))
	copy(out, c.log)
	return out
}

// Evals returns how many pressure samples have been evaluated.
func (c *Controller) Evals() int64 { return c.seq }

// Eval folds one pressure sample and returns the (possibly new) state and
// whether this call committed a transition. A transition needs Dwell
// consecutive samples pointing at the same adjacent state; any sample
// that disagrees resets the streak.
func (c *Controller) Eval(p Pressure) (State, bool) {
	c.seq++
	want := c.desired(p)
	if want == c.state {
		c.streak = 0
		return c.state, false
	}
	if want != c.want {
		c.want = want
		c.streak = 0
	}
	c.streak++
	if c.streak < c.cfg.Dwell {
		return c.state, false
	}
	score := p.Score()
	if (c.state == Aggregate && want == Shed) || c.state == Shed {
		score = p.Mem
	}
	c.log = append(c.log, Transition{From: c.state, To: want, Seq: c.seq, Score: score})
	c.state = want
	c.streak = 0
	return c.state, true
}

// desired maps a pressure sample to the state the controller would rather
// be in, one step away from the current state at most.
func (c *Controller) desired(p Pressure) State {
	switch c.state {
	case Full:
		if p.Score() >= c.cfg.Enter {
			return Aggregate
		}
	case Aggregate:
		if p.Mem >= c.cfg.ShedEnter {
			return Shed
		}
		if p.Score() < c.cfg.Exit {
			return Full
		}
	case Shed:
		if p.Mem < c.cfg.ShedExit {
			return Aggregate
		}
	}
	return c.state
}
