package fidelity

// Ring is the bounded per-source retention buffer behind AGGREGATE mode:
// every row the pipeline declines to append lands here with its event
// time, and when the detector flags a window, TakeRange promotes exactly
// the rows inside the anomaly neighbourhood — once. At capacity the
// oldest row is evicted, so memory stays fixed no matter how far the
// consumer falls behind.
//
// Entries are expected in roughly event-time order (a tailed log's own
// order), but nothing breaks if they are not: range queries scan the live
// window rather than binary-searching, and expiry pops only while the
// oldest entry is behind the cutoff.
//
// Not safe for concurrent use; the loader goroutine owns every ring.
type Ring[T any] struct {
	slots []ringSlot[T]
	head  int // index of the oldest live entry
	n     int // live entries
	// evicted counts rows overwritten at capacity — rows lost to
	// promotion forever, surfaced as a shed statistic.
	evicted int64
	taken   int64
}

type ringSlot[T any] struct {
	ts    int64
	v     T
	taken bool
}

// NewRing makes a ring holding at most capacity entries (minimum 1).
func NewRing[T any](capacity int) *Ring[T] {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring[T]{slots: make([]ringSlot[T], capacity)}
}

// Push appends one entry, evicting the oldest when full.
func (r *Ring[T]) Push(ts int64, v T) {
	if r.n == len(r.slots) {
		// Overwrite the oldest.
		r.slots[r.head] = ringSlot[T]{ts: ts, v: v}
		r.head = r.next(r.head)
		r.evicted++
		return
	}
	at := r.idx(r.n)
	r.slots[at] = ringSlot[T]{ts: ts, v: v}
	r.n++
}

// TakeRange returns, in insertion order, every live entry with
// lo ≤ ts ≤ hi that has not been taken before, and marks them taken.
// The marking is what makes promotion idempotent when two flagged
// windows' neighbourhoods overlap: the shared rows promote exactly once.
func (r *Ring[T]) TakeRange(lo, hi int64) []T {
	var out []T
	for i := 0; i < r.n; i++ {
		s := &r.slots[r.idx(i)]
		if s.taken || s.ts < lo || s.ts > hi {
			continue
		}
		s.taken = true
		r.taken++
		out = append(out, s.v)
	}
	return out
}

// ExpireBefore drops entries older than cutoff from the oldest end and
// returns how many it dropped. Taken entries expire like any other; only
// the contiguous old prefix is eligible, preserving insertion order for
// the survivors.
func (r *Ring[T]) ExpireBefore(cutoff int64) int {
	dropped := 0
	for r.n > 0 && r.slots[r.head].ts < cutoff {
		r.slots[r.head] = ringSlot[T]{}
		r.head = r.next(r.head)
		r.n--
		dropped++
	}
	return dropped
}

// Len is the number of live entries (taken or not).
func (r *Ring[T]) Len() int { return r.n }

// Cap is the fixed capacity.
func (r *Ring[T]) Cap() int { return len(r.slots) }

// Evicted is how many entries were overwritten at capacity.
func (r *Ring[T]) Evicted() int64 { return r.evicted }

// Taken is how many entries TakeRange has handed out.
func (r *Ring[T]) Taken() int64 { return r.taken }

func (r *Ring[T]) idx(i int) int { return (r.head + i) % len(r.slots) }
func (r *Ring[T]) next(i int) int {
	i++
	if i == len(r.slots) {
		return 0
	}
	return i
}
