// Package tracegraph reconstructs per-request causal paths from the event
// tables in mScopeDB (paper Section IV-B, Figure 5): records carrying the
// same propagated request ID are joined across tiers, establishing
// happens-before relationships without any assumptions about server
// interactions. The reconstruction also yields each tier's latency
// contribution, the input for diagnosing which server elongates a very
// long request.
package tracegraph

import (
	"fmt"
	"sort"
	"strconv"
	"time"

	"github.com/gt-elba/milliscope/internal/mscopedb"
)

// Span is one tier visit of a request, timestamps in microsecond epochs on
// the tier node's clock. DS/DR are zero when the visit made no downstream
// call.
type Span struct {
	Tier string
	Seq  int
	UA   int64
	UD   int64
	DS   int64
	DR   int64
}

// Local returns the span's tier-local processing time.
func (s Span) Local() time.Duration {
	total := s.UD - s.UA
	if s.DS != 0 && s.DR >= s.DS {
		total -= s.DR - s.DS
	}
	return time.Duration(total) * time.Microsecond
}

// Residence returns the span's total residence time at its tier.
func (s Span) Residence() time.Duration {
	return time.Duration(s.UD-s.UA) * time.Microsecond
}

// Trace is one request's reconstructed execution path.
type Trace struct {
	ReqID string
	// Spans are ordered by tier depth (the order Build received the event
	// tables) and then by query sequence.
	Spans []Span
	// MissingTiers lists tiers this trace provably visited but whose event
	// table was absent during a BuildPartial reconstruction, in depth
	// order. Empty for Build and for complete traces.
	MissingTiers []string
}

// Complete reports whether the trace covers every tier it visited.
func (t *Trace) Complete() bool { return len(t.MissingTiers) == 0 }

// Coverage is the fraction of the trace's visited tiers that were
// observed: observed / (observed + provably missing). 1.0 for complete
// traces.
func (t *Trace) Coverage() float64 {
	seen := make(map[string]bool)
	for _, s := range t.Spans {
		seen[s.Tier] = true
	}
	if len(seen) == 0 {
		return 0
	}
	return float64(len(seen)) / float64(len(seen)+len(t.MissingTiers))
}

// ResponseTime returns the front-tier residence (the client-visible
// response time less wire latency).
func (t *Trace) ResponseTime() time.Duration {
	if len(t.Spans) == 0 {
		return 0
	}
	return t.Spans[0].Residence()
}

// TierTime sums residence per tier.
func (t *Trace) TierTime() map[string]time.Duration {
	out := make(map[string]time.Duration)
	for _, s := range t.Spans {
		out[s.Tier] += s.Residence()
	}
	return out
}

// LocalTime sums tier-local (downstream-excluded) time per tier: the
// per-server latency contribution.
func (t *Trace) LocalTime() map[string]time.Duration {
	out := make(map[string]time.Duration)
	for _, s := range t.Spans {
		out[s.Tier] += s.Local()
	}
	return out
}

// Validate checks happens-before consistency within the trace, allowing
// for cross-node clock skew up to the tolerance: for adjacent tiers the
// parent's DS must not be (much) later than the child's first UA, and the
// child's last UD not (much) later than the parent's DR.
func (t *Trace) Validate(tierOrder []string, skewTolerance time.Duration) error {
	tol := skewTolerance.Microseconds()
	byTier := make(map[string][]Span)
	for _, s := range t.Spans {
		if s.UA > s.UD {
			return fmt.Errorf("tracegraph: %s: %s span with UA after UD", t.ReqID, s.Tier)
		}
		byTier[s.Tier] = append(byTier[s.Tier], s)
	}
	for i := 0; i+1 < len(tierOrder); i++ {
		parents := byTier[tierOrder[i]]
		children := byTier[tierOrder[i+1]]
		if len(parents) == 0 || len(children) == 0 {
			continue
		}
		if len(parents) == len(children) {
			// Per-query tiers (e.g. C-JDBC → MySQL): the nth child visit
			// nests inside the nth parent visit.
			for j := range parents {
				if err := t.checkNesting(parents[j], []Span{children[j]},
					tierOrder[i], tierOrder[i+1], tol); err != nil {
					return err
				}
			}
			continue
		}
		// Fan-out (e.g. Tomcat → n C-JDBC queries): every child nests in
		// the single parent's downstream window.
		if len(parents) != 1 {
			return fmt.Errorf("tracegraph: %s: %d %s visits cannot parent %d %s visits",
				t.ReqID, len(parents), tierOrder[i], len(children), tierOrder[i+1])
		}
		if err := t.checkNesting(parents[0], children, tierOrder[i], tierOrder[i+1], tol); err != nil {
			return err
		}
	}
	return nil
}

// checkNesting verifies children fall within the parent's DS..DR window,
// within the skew tolerance.
func (t *Trace) checkNesting(p Span, children []Span, pTier, cTier string, tol int64) error {
	if p.DS == 0 {
		return fmt.Errorf("tracegraph: %s: %s has children but no DS", t.ReqID, pTier)
	}
	firstUA, lastUD := children[0].UA, children[0].UD
	for _, c := range children[1:] {
		if c.UA < firstUA {
			firstUA = c.UA
		}
		if c.UD > lastUD {
			lastUD = c.UD
		}
	}
	if p.DS > firstUA+tol {
		return fmt.Errorf("tracegraph: %s: %s DS %d after %s UA %d (tol %d)",
			t.ReqID, pTier, p.DS, cTier, firstUA, tol)
	}
	if lastUD > p.DR+tol {
		return fmt.Errorf("tracegraph: %s: %s UD %d after %s DR %d (tol %d)",
			t.ReqID, cTier, lastUD, pTier, p.DR, tol)
	}
	return nil
}

// TierProfile aggregates one tier's latency contribution across traces.
type TierProfile struct {
	// Visits counts tier visits across the trace set.
	Visits int
	// MeanLocal and P99Local summarize tier-local (downstream-excluded)
	// time per visit.
	MeanLocal time.Duration
	P99Local  time.Duration
	// MeanResidence summarizes total per-visit residence.
	MeanResidence time.Duration
}

// AggregateBreakdown profiles every tier across a trace set: the
// per-server latency contribution the paper derives to find "the server
// causing VLRT requests".
func AggregateBreakdown(traces map[string]*Trace) map[string]TierProfile {
	locals := make(map[string][]time.Duration)
	resSum := make(map[string]time.Duration)
	for _, tr := range traces {
		for _, sp := range tr.Spans {
			locals[sp.Tier] = append(locals[sp.Tier], sp.Local())
			resSum[sp.Tier] += sp.Residence()
		}
	}
	out := make(map[string]TierProfile, len(locals))
	for tier, ls := range locals {
		sort.Slice(ls, func(i, j int) bool { return ls[i] < ls[j] })
		var sum time.Duration
		for _, d := range ls {
			sum += d
		}
		n := len(ls)
		out[tier] = TierProfile{
			Visits:        n,
			MeanLocal:     sum / time.Duration(n),
			P99Local:      ls[n*99/100],
			MeanResidence: resSum[tier] / time.Duration(n),
		}
	}
	return out
}

// Build joins the given event tables by request ID. Table order defines
// tier depth (front tier first). Records without a request ID (e.g.
// un-instrumented MySQL statements) are skipped.
func Build(db *mscopedb.DB, eventTables []string) (map[string]*Trace, error) {
	traces := make(map[string]*Trace)
	for _, name := range eventTables {
		tbl, err := db.Table(name)
		if err != nil {
			return nil, err
		}
		if err := addTable(traces, tbl); err != nil {
			return nil, fmt.Errorf("tracegraph: %s: %w", name, err)
		}
	}
	for _, tr := range traces {
		sortSpans(tr)
	}
	return traces, nil
}

// tierOfTable derives the tier name from an event-table name
// ("apache_event" → "apache").
func tierOfTable(name string) string {
	for i := len(name) - 1; i >= 0; i-- {
		if name[i] == '_' {
			return name[:i]
		}
	}
	return name
}

func addTable(traces map[string]*Trace, tbl *mscopedb.Table) error {
	tier := tierOfTable(tbl.Name())
	reqCI := tbl.ColIndex("reqid")
	uaCI := tbl.ColIndex("ua")
	udCI := tbl.ColIndex("ud")
	if uaCI < 0 || udCI < 0 {
		return fmt.Errorf("missing ua/ud columns")
	}
	if reqCI < 0 {
		return fmt.Errorf("missing reqid column")
	}
	dsCI := tbl.ColIndex("ds")
	drCI := tbl.ColIndex("dr")
	qCI := tbl.ColIndex("q")
	cols := tbl.Columns()
	for r := 0; r < tbl.Rows(); r++ {
		if cols[reqCI].Type != mscopedb.TString {
			return fmt.Errorf("reqid column is %v, want string", cols[reqCI].Type)
		}
		id := tbl.Str(reqCI, r)
		if id == "" {
			continue
		}
		sp := Span{Tier: tier}
		var err error
		if sp.UA, err = microsCell(tbl, cols, uaCI, r); err != nil {
			return err
		}
		if sp.UD, err = microsCell(tbl, cols, udCI, r); err != nil {
			return err
		}
		if dsCI >= 0 {
			if sp.DS, err = microsCell(tbl, cols, dsCI, r); err != nil {
				return err
			}
		}
		if drCI >= 0 {
			if sp.DR, err = microsCell(tbl, cols, drCI, r); err != nil {
				return err
			}
		}
		if qCI >= 0 {
			q, err := microsCell(tbl, cols, qCI, r)
			if err != nil {
				return err
			}
			sp.Seq = int(q)
		}
		tr := traces[id]
		if tr == nil {
			tr = &Trace{ReqID: id}
			traces[id] = tr
		}
		tr.Spans = append(tr.Spans, sp)
	}
	return nil
}

// microsCell reads a numeric cell that schema inference may have typed as
// int (pure numeric column) or string (column mixing numbers with the "-"
// no-downstream marker).
func microsCell(tbl *mscopedb.Table, cols []mscopedb.Column, ci, row int) (int64, error) {
	switch cols[ci].Type {
	case mscopedb.TInt:
		return tbl.Int(ci, row), nil
	case mscopedb.TString:
		s := tbl.Str(ci, row)
		if s == "-" || s == "" {
			return 0, nil
		}
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return 0, fmt.Errorf("cell %q in %s.%s: %w", s, tbl.Name(), cols[ci].Name, err)
		}
		return v, nil
	default:
		return 0, fmt.Errorf("%s.%s: unsupported type %v for micros", tbl.Name(), cols[ci].Name, cols[ci].Type)
	}
}

// sortSpans keeps the tier insertion order (Build adds front tier first)
// and orders within a tier by Seq then UA.
func sortSpans(tr *Trace) {
	// Spans were appended table by table, so tiers are already grouped in
	// depth order; a stable sort by (existing group, Seq, UA) preserves it.
	sort.SliceStable(tr.Spans, func(i, j int) bool {
		a, b := tr.Spans[i], tr.Spans[j]
		if a.Tier != b.Tier {
			return false // keep group order
		}
		if a.Seq != b.Seq {
			return a.Seq < b.Seq
		}
		return a.UA < b.UA
	})
}
