package tracegraph

import (
	"fmt"
	"html"
	"io"
	"sort"
)

// Frame is one box in a request's critical-path flamegraph: a tier visit
// laid out on a shared time axis (x) and nested by tier depth (y). All
// times are microseconds relative to the earliest user-arrival in the
// trace, so frames from different nodes line up even though each span's
// raw timestamps are on its own node's clock.
type Frame struct {
	Tier    string `json:"tier"`
	Seq     int    `json:"seq"`
	Depth   int    `json:"depth"`
	StartUS int64  `json:"start_us"`
	EndUS   int64  `json:"end_us"`
	// SelfUS is the frame's critical-path contribution: residence minus
	// the union of its children's residences — time this tier was the
	// deepest one actively holding the request.
	SelfUS int64 `json:"self_us"`
	// Share is SelfUS over the trace's total response time.
	Share float64 `json:"share"`
}

// Flame is the renderable form of one trace: the waterfall/flamegraph
// data model served as JSON and drawn as SVG.
type Flame struct {
	ReqID   string `json:"reqid"`
	TotalUS int64  `json:"total_us"`
	// CriticalUS sums SelfUS across frames: response time attributable to
	// some tier's processing. The remainder is wire latency and queueing
	// between tiers.
	CriticalUS int64   `json:"critical_us"`
	Frames     []Frame `json:"frames"`
}

// ival is a half-open busy interval [lo, hi) in microseconds.
type ival struct{ lo, hi int64 }

// mergeIvals coalesces overlapping intervals in place and returns the
// merged, sorted set.
func mergeIvals(ivs []ival) []ival {
	if len(ivs) < 2 {
		return ivs
	}
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].lo < ivs[j].lo })
	out := ivs[:1]
	for _, iv := range ivs[1:] {
		last := &out[len(out)-1]
		if iv.lo <= last.hi {
			if iv.hi > last.hi {
				last.hi = iv.hi
			}
			continue
		}
		out = append(out, iv)
	}
	return out
}

// uncoveredUS returns the length of [lo, hi) not covered by the merged
// interval set.
func uncoveredUS(lo, hi int64, covered []ival) int64 {
	self := hi - lo
	for _, iv := range covered {
		l, h := iv.lo, iv.hi
		if l < lo {
			l = lo
		}
		if h > hi {
			h = hi
		}
		if h > l {
			self -= h - l
		}
	}
	if self < 0 {
		self = 0
	}
	return self
}

// BuildFlame lays a reconstructed trace out for rendering. Depth is the
// tier's position along the causal path (order of first appearance in
// the trace's depth-sorted spans); each frame's self time subtracts the
// union of the next tier's residences that overlap it, so a parent
// overlapped by several interleaved child queries is only charged for
// the gaps — the busy-interval union discipline the fleet self-trace
// breakdown uses, applied per request.
func BuildFlame(tr *Trace) *Flame {
	f := &Flame{ReqID: tr.ReqID}
	if len(tr.Spans) == 0 {
		return f
	}
	depthOf := make(map[string]int)
	for _, s := range tr.Spans {
		if _, ok := depthOf[s.Tier]; !ok {
			depthOf[s.Tier] = len(depthOf)
		}
	}
	// Cross-node skew can put a child's arrival before the front tier's:
	// anchor the axis at the earliest arrival anywhere in the trace.
	origin := tr.Spans[0].UA
	end := tr.Spans[0].UD
	for _, s := range tr.Spans[1:] {
		if s.UA < origin {
			origin = s.UA
		}
		if s.UD > end {
			end = s.UD
		}
	}
	f.TotalUS = end - origin
	byDepth := make(map[int][]ival)
	for _, s := range tr.Spans {
		d := depthOf[s.Tier]
		byDepth[d] = append(byDepth[d], ival{s.UA - origin, s.UD - origin})
	}
	for d := range byDepth {
		byDepth[d] = mergeIvals(byDepth[d])
	}
	for _, s := range tr.Spans {
		d := depthOf[s.Tier]
		fr := Frame{
			Tier:    s.Tier,
			Seq:     s.Seq,
			Depth:   d,
			StartUS: s.UA - origin,
			EndUS:   s.UD - origin,
		}
		fr.SelfUS = uncoveredUS(fr.StartUS, fr.EndUS, byDepth[d+1])
		if f.TotalUS > 0 {
			fr.Share = float64(fr.SelfUS) / float64(f.TotalUS)
		}
		f.CriticalUS += fr.SelfUS
		f.Frames = append(f.Frames, fr)
	}
	sort.Slice(f.Frames, func(i, j int) bool {
		if f.Frames[i].Depth != f.Frames[j].Depth {
			return f.Frames[i].Depth < f.Frames[j].Depth
		}
		return f.Frames[i].StartUS < f.Frames[j].StartUS
	})
	return f
}

// tierPalette is a fixed set of fills so the same tier keeps its color
// across requests and renders.
var tierPalette = []string{
	"#e4584b", "#f0a04b", "#e8c547", "#7fb069", "#5b9bd5", "#9b7ebd",
}

func tierFill(depth int) string {
	return tierPalette[depth%len(tierPalette)]
}

// WriteSVG draws the flame as a self-contained SVG: no scripts, no
// external assets, one <rect> per frame with a <title> tooltip carrying
// the exact numbers. Renders a placeholder banner for empty traces so
// callers can serve the output unconditionally.
func (f *Flame) WriteSVG(w io.Writer) error {
	const (
		width  = 1000.0
		rowH   = 26
		pad    = 4
		header = 28
	)
	maxDepth := 0
	for _, fr := range f.Frames {
		if fr.Depth > maxDepth {
			maxDepth = fr.Depth
		}
	}
	height := header + (maxDepth+1)*rowH + pad
	if len(f.Frames) == 0 {
		height = header + rowH
	}
	var err error
	p := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	p(`<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="monospace" font-size="11">`+"\n",
		int(width)+2*pad, height)
	p(`<style>rect:hover{stroke:#000;stroke-width:1}</style>` + "\n")
	p(`<text x="%d" y="18" font-size="13">req %s — %.3f ms total, %.3f ms on the critical path</text>`+"\n",
		pad, html.EscapeString(f.ReqID), float64(f.TotalUS)/1000, float64(f.CriticalUS)/1000)
	if len(f.Frames) == 0 {
		p(`<text x="%d" y="%d" fill="#888">no spans reconstructed for this request</text>`+"\n", pad, header+16)
		p("</svg>\n")
		return err
	}
	scale := width / float64(f.TotalUS)
	if f.TotalUS == 0 {
		scale = 0
	}
	for _, fr := range f.Frames {
		x := float64(pad) + float64(fr.StartUS)*scale
		wpx := float64(fr.EndUS-fr.StartUS) * scale
		if wpx < 1 {
			wpx = 1
		}
		y := header + fr.Depth*rowH
		label := fmt.Sprintf("%s#%d", fr.Tier, fr.Seq)
		p(`<g><rect x="%.1f" y="%d" width="%.1f" height="%d" fill="%s" rx="2"/>`,
			x, y, wpx, rowH-3, tierFill(fr.Depth))
		p(`<title>%s: %.3f ms residence, %.3f ms self (%.1f%% of response)</title>`,
			html.EscapeString(label),
			float64(fr.EndUS-fr.StartUS)/1000, float64(fr.SelfUS)/1000, fr.Share*100)
		// Only label boxes wide enough to hold text; tooltips carry the rest.
		if wpx > float64(7*len(label)) {
			p(`<text x="%.1f" y="%d" fill="#222">%s</text>`, x+3, y+15, html.EscapeString(label))
		}
		p("</g>\n")
	}
	p("</svg>\n")
	return err
}
