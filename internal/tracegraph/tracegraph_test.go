package tracegraph

import (
	"strings"
	"testing"
	"time"

	"github.com/gt-elba/milliscope/internal/mscopedb"
)

// buildDB assembles a two-tier warehouse: apache_event (int ds/dr) and
// tomcat_event (string ds/dr with dashes), two requests.
func buildDB(t *testing.T) *mscopedb.DB {
	t.Helper()
	db := mscopedb.Open()
	ap, err := db.Create("apache_event", []mscopedb.Column{
		{Name: "reqid", Type: mscopedb.TString},
		{Name: "ua", Type: mscopedb.TInt},
		{Name: "ud", Type: mscopedb.TInt},
		{Name: "ds", Type: mscopedb.TInt},
		{Name: "dr", Type: mscopedb.TInt},
	})
	if err != nil {
		t.Fatal(err)
	}
	tc, err := db.Create("tomcat_event", []mscopedb.Column{
		{Name: "reqid", Type: mscopedb.TString},
		{Name: "ua", Type: mscopedb.TInt},
		{Name: "ud", Type: mscopedb.TInt},
		{Name: "ds", Type: mscopedb.TString},
		{Name: "dr", Type: mscopedb.TString},
		{Name: "q", Type: mscopedb.TInt},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Request 1: apache [100..900], calls tomcat [200..800] (leaf).
	if err := ap.Append("req-1", int64(100), int64(900), int64(150), int64(850)); err != nil {
		t.Fatal(err)
	}
	if err := tc.Append("req-1", int64(200), int64(800), "-", "-", int64(0)); err != nil {
		t.Fatal(err)
	}
	// Request 2: apache only (tomcat record missing — partial trace).
	if err := ap.Append("req-2", int64(1000), int64(1500), int64(1100), int64(1400)); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestBuildJoinsByID(t *testing.T) {
	db := buildDB(t)
	traces, err := Build(db, []string{"apache_event", "tomcat_event"})
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) != 2 {
		t.Fatalf("%d traces", len(traces))
	}
	tr := traces["req-1"]
	if tr == nil || len(tr.Spans) != 2 {
		t.Fatalf("req-1 trace: %+v", tr)
	}
	if tr.Spans[0].Tier != "apache" || tr.Spans[1].Tier != "tomcat" {
		t.Fatalf("tier order: %+v", tr.Spans)
	}
	if tr.Spans[1].DS != 0 || tr.Spans[1].DR != 0 {
		t.Fatalf("dash ds/dr not parsed as zero: %+v", tr.Spans[1])
	}
	if tr.ResponseTime() != 800*time.Microsecond {
		t.Fatalf("response time %v", tr.ResponseTime())
	}
}

func TestLocalTimeBreakdown(t *testing.T) {
	db := buildDB(t)
	traces, err := Build(db, []string{"apache_event", "tomcat_event"})
	if err != nil {
		t.Fatal(err)
	}
	lt := traces["req-1"].LocalTime()
	// apache: (900-100) - (850-150) = 100µs local; tomcat leaf: 600µs.
	if lt["apache"] != 100*time.Microsecond {
		t.Fatalf("apache local %v", lt["apache"])
	}
	if lt["tomcat"] != 600*time.Microsecond {
		t.Fatalf("tomcat local %v", lt["tomcat"])
	}
	tt := traces["req-1"].TierTime()
	if tt["apache"] != 800*time.Microsecond || tt["tomcat"] != 600*time.Microsecond {
		t.Fatalf("tier time %v", tt)
	}
}

func TestValidateHappensBefore(t *testing.T) {
	db := buildDB(t)
	traces, err := Build(db, []string{"apache_event", "tomcat_event"})
	if err != nil {
		t.Fatal(err)
	}
	order := []string{"apache", "tomcat"}
	if err := traces["req-1"].Validate(order, 0); err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}
	// Corrupt: child UA before parent's DS beyond tolerance.
	bad := &Trace{ReqID: "x", Spans: []Span{
		{Tier: "apache", UA: 100, UD: 900, DS: 500, DR: 850},
		{Tier: "tomcat", UA: 200, UD: 800},
	}}
	if err := bad.Validate(order, 0); err == nil {
		t.Fatal("causality violation accepted")
	}
	// Tolerated under clock skew allowance.
	if err := bad.Validate(order, 400*time.Microsecond); err != nil {
		t.Fatalf("skew tolerance not applied: %v", err)
	}
}

func TestValidateUAafterUD(t *testing.T) {
	bad := &Trace{ReqID: "x", Spans: []Span{{Tier: "a", UA: 10, UD: 5}}}
	if err := bad.Validate([]string{"a"}, 0); err == nil {
		t.Fatal("UA>UD accepted")
	}
}

func TestMultiQuerySpansSorted(t *testing.T) {
	db := mscopedb.Open()
	my, err := db.Create("mysql_event", []mscopedb.Column{
		{Name: "reqid", Type: mscopedb.TString},
		{Name: "ua", Type: mscopedb.TInt},
		{Name: "ud", Type: mscopedb.TInt},
		{Name: "q", Type: mscopedb.TInt},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Insert out of order.
	if err := my.Append("req-1", int64(300), int64(400), int64(1)); err != nil {
		t.Fatal(err)
	}
	if err := my.Append("req-1", int64(100), int64(200), int64(0)); err != nil {
		t.Fatal(err)
	}
	traces, err := Build(db, []string{"mysql_event"})
	if err != nil {
		t.Fatal(err)
	}
	sp := traces["req-1"].Spans
	if sp[0].Seq != 0 || sp[1].Seq != 1 {
		t.Fatalf("spans not ordered by seq: %+v", sp)
	}
}

func TestValidatePerQueryPairing(t *testing.T) {
	// Two cjdbc visits each wrapping their own mysql query; the second
	// mysql UD lies far outside the FIRST cjdbc window — valid only when
	// children pair with parents by sequence.
	tr := &Trace{ReqID: "x", Spans: []Span{
		{Tier: "cjdbc", Seq: 0, UA: 100, UD: 300, DS: 120, DR: 280},
		{Tier: "cjdbc", Seq: 1, UA: 500, UD: 700, DS: 520, DR: 680},
		{Tier: "mysql", Seq: 0, UA: 130, UD: 270},
		{Tier: "mysql", Seq: 1, UA: 530, UD: 670},
	}}
	if err := tr.Validate([]string{"cjdbc", "mysql"}, 0); err != nil {
		t.Fatalf("pairwise-valid trace rejected: %v", err)
	}
	// Swap the mysql windows: now pairing is violated.
	bad := &Trace{ReqID: "x", Spans: []Span{
		{Tier: "cjdbc", Seq: 0, UA: 100, UD: 300, DS: 120, DR: 280},
		{Tier: "cjdbc", Seq: 1, UA: 500, UD: 700, DS: 520, DR: 680},
		{Tier: "mysql", Seq: 0, UA: 530, UD: 670},
		{Tier: "mysql", Seq: 1, UA: 130, UD: 270},
	}}
	if err := bad.Validate([]string{"cjdbc", "mysql"}, 0); err == nil {
		t.Fatal("mispaired queries accepted")
	}
}

func TestAggregateBreakdown(t *testing.T) {
	traces := map[string]*Trace{
		"req-1": {ReqID: "req-1", Spans: []Span{
			{Tier: "apache", UA: 0, UD: 1000, DS: 100, DR: 900},
			{Tier: "tomcat", UA: 150, UD: 850},
		}},
		"req-2": {ReqID: "req-2", Spans: []Span{
			{Tier: "apache", UA: 0, UD: 2000, DS: 100, DR: 1900},
			{Tier: "tomcat", UA: 150, UD: 1850},
		}},
	}
	prof := AggregateBreakdown(traces)
	ap := prof["apache"]
	if ap.Visits != 2 {
		t.Fatalf("apache visits %d", ap.Visits)
	}
	// apache local: (1000-800)=200µs and (2000-1800)=200µs → mean 200µs.
	if ap.MeanLocal != 200*time.Microsecond {
		t.Fatalf("apache mean local %v", ap.MeanLocal)
	}
	tc := prof["tomcat"]
	if tc.MeanResidence != 1200*time.Microsecond {
		t.Fatalf("tomcat mean residence %v", tc.MeanResidence)
	}
	if tc.P99Local < tc.MeanLocal {
		t.Fatalf("p99 %v below mean %v", tc.P99Local, tc.MeanLocal)
	}
}

func TestBuildMissingColumns(t *testing.T) {
	db := mscopedb.Open()
	if _, err := db.Create("bad_event", []mscopedb.Column{
		{Name: "reqid", Type: mscopedb.TString},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := Build(db, []string{"bad_event"}); err == nil {
		t.Fatal("missing ua/ud accepted")
	}
	if _, err := Build(db, []string{"no_such"}); err == nil {
		t.Fatal("missing table accepted")
	}
}

func TestTierOfTable(t *testing.T) {
	if tierOfTable("apache_event") != "apache" {
		t.Fatal("tierOfTable apache_event")
	}
	if tierOfTable("plain") != "plain" {
		t.Fatal("tierOfTable plain")
	}
}

func TestSkipsEmptyReqID(t *testing.T) {
	db := mscopedb.Open()
	my, err := db.Create("mysql_event", []mscopedb.Column{
		{Name: "reqid", Type: mscopedb.TString},
		{Name: "ua", Type: mscopedb.TInt},
		{Name: "ud", Type: mscopedb.TInt},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := my.Append("", int64(1), int64(2)); err != nil {
		t.Fatal(err)
	}
	if err := my.Append("req-9", int64(1), int64(2)); err != nil {
		t.Fatal(err)
	}
	traces, err := Build(db, []string{"mysql_event"})
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) != 1 {
		t.Fatalf("%d traces; empty-ID record not skipped", len(traces))
	}
	for id := range traces {
		if !strings.HasPrefix(id, "req-") {
			t.Fatalf("trace id %q", id)
		}
	}
}
