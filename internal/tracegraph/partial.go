package tracegraph

import (
	"fmt"

	"github.com/gt-elba/milliscope/internal/mscopedb"
	"github.com/gt-elba/milliscope/internal/selfobs"
)

// BuildReport summarizes a degraded-mode trace construction: which event
// tables were absent from the warehouse and how many traces came out
// complete versus partial.
type BuildReport struct {
	// MissingTables lists requested event tables absent from the
	// warehouse, in tier-depth order.
	MissingTables []string
	// Total is the number of traces constructed.
	Total int
	// Complete counts traces touching no missing tier.
	Complete int
	// Partial counts traces flagged with missing tiers.
	Partial int
}

// Degraded reports whether any requested table was absent.
func (r *BuildReport) Degraded() bool { return len(r.MissingTables) > 0 }

// Coverage is the fraction of constructed traces that are complete.
func (r *BuildReport) Coverage() float64 {
	if r.Total == 0 {
		return 0
	}
	return float64(r.Complete) / float64(r.Total)
}

// BuildPartial joins the given event tables by request ID like Build, but
// tolerates tables missing from the warehouse (a tier whose log never
// arrived or was rejected by the ingest error budget): traces are still
// constructed from the surviving tiers and flagged with the tiers they
// provably lack, instead of the whole reconstruction failing. At least one
// requested table must exist.
func BuildPartial(db *mscopedb.DB, eventTables []string) (map[string]*Trace, *BuildReport, error) {
	rep := &BuildReport{}
	var present []string
	presentSet := make(map[string]bool)
	for _, name := range eventTables {
		if db.HasTable(name) {
			present = append(present, name)
			presentSet[tierOfTable(name)] = true
		} else {
			rep.MissingTables = append(rep.MissingTables, name)
		}
	}
	if len(present) == 0 {
		return nil, nil, fmt.Errorf("tracegraph: none of the event tables %v exist", eventTables)
	}
	sp := selfobs.Begin(selfobs.PipeTrace, "join", "-", "")
	traces, err := Build(db, present)
	if err != nil {
		return nil, nil, err
	}
	sp.End(int64(len(traces)), int64(len(rep.MissingTables)))

	// Full tier order, missing tiers included, defines depth for the
	// incompleteness rules below.
	fullOrder := make([]string, len(eventTables))
	missingTier := make(map[string]bool, len(rep.MissingTables))
	for i, name := range eventTables {
		fullOrder[i] = tierOfTable(name)
		if !presentSet[fullOrder[i]] {
			missingTier[fullOrder[i]] = true
		}
	}
	sp = selfobs.Begin(selfobs.PipeTrace, "mark", "-", "")
	for _, tr := range traces {
		markMissingTiers(tr, fullOrder, missingTier)
		rep.Total++
		if tr.Complete() {
			rep.Complete++
		} else {
			rep.Partial++
		}
	}
	sp.End(int64(rep.Total), int64(rep.Partial))
	return traces, rep, nil
}

// markMissingTiers flags the tiers a trace provably lacks. Two rules,
// both conservative so that requests which legitimately never reach the
// deep tiers (zero-query interactions) stay complete:
//
//  1. a missing tier shallower than the trace's deepest observed tier must
//     have been on the path — requests only reach tier k through tiers
//     1..k-1;
//  2. if the deepest observed span made a downstream call (DS set) and the
//     next tier's table is missing, that callee's span is lost.
func markMissingTiers(tr *Trace, fullOrder []string, missingTier map[string]bool) {
	if len(missingTier) == 0 || len(tr.Spans) == 0 {
		return
	}
	has := make(map[string]bool)
	for _, s := range tr.Spans {
		has[s.Tier] = true
	}
	deepest := -1
	for i, tier := range fullOrder {
		if has[tier] {
			deepest = i
		}
	}
	for i := 0; i < deepest; i++ {
		if missingTier[fullOrder[i]] && !has[fullOrder[i]] {
			tr.MissingTiers = append(tr.MissingTiers, fullOrder[i])
		}
	}
	if deepest >= 0 && deepest+1 < len(fullOrder) && missingTier[fullOrder[deepest+1]] {
		for _, s := range tr.Spans {
			if s.Tier == fullOrder[deepest] && s.DS != 0 {
				tr.MissingTiers = append(tr.MissingTiers, fullOrder[deepest+1])
				break
			}
		}
	}
}
