package tracegraph

import (
	"testing"

	"github.com/gt-elba/milliscope/internal/mscopedb"
)

// buildThreeTierDB assembles apache → tomcat → mysql with two requests:
// req-1 reaches mysql (tomcat DS set), req-2 stops at tomcat (leaf).
func buildThreeTierDB(t *testing.T, withMySQL bool) *mscopedb.DB {
	t.Helper()
	db := mscopedb.Open()
	cols := []mscopedb.Column{
		{Name: "reqid", Type: mscopedb.TString},
		{Name: "ua", Type: mscopedb.TInt},
		{Name: "ud", Type: mscopedb.TInt},
		{Name: "ds", Type: mscopedb.TInt},
		{Name: "dr", Type: mscopedb.TInt},
	}
	ap, err := db.Create("apache_event", cols)
	if err != nil {
		t.Fatal(err)
	}
	tc, err := db.Create("tomcat_event", cols)
	if err != nil {
		t.Fatal(err)
	}
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(ap.Append("req-1", int64(100), int64(900), int64(150), int64(850)))
	must(tc.Append("req-1", int64(200), int64(800), int64(300), int64(700)))
	must(ap.Append("req-2", int64(1000), int64(1900), int64(1100), int64(1800)))
	must(tc.Append("req-2", int64(1200), int64(1700), int64(0), int64(0)))
	if withMySQL {
		my, err := db.Create("mysql_event", cols)
		if err != nil {
			t.Fatal(err)
		}
		must(my.Append("req-1", int64(350), int64(650), int64(0), int64(0)))
	}
	return db
}

var threeTiers = []string{"apache_event", "tomcat_event", "mysql_event"}

// TestBuildPartialAllPresent: with every table present the partial build
// matches Build and everything is complete.
func TestBuildPartialAllPresent(t *testing.T) {
	db := buildThreeTierDB(t, true)
	traces, rep, err := BuildPartial(db, threeTiers)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Degraded() || len(rep.MissingTables) != 0 {
		t.Fatalf("report claims degradation: %+v", rep)
	}
	if rep.Total != 2 || rep.Complete != 2 || rep.Partial != 0 {
		t.Fatalf("counts: %+v", rep)
	}
	for id, tr := range traces {
		if !tr.Complete() || tr.Coverage() != 1.0 {
			t.Errorf("%s incomplete with all tables present: %+v", id, tr)
		}
	}
}

// TestBuildPartialDeepTierMissing: mysql's log never arrived. req-1
// (tomcat DS set) is provably missing mysql; req-2 (leaf tomcat) stays
// complete — zero-query requests never reached the database.
func TestBuildPartialDeepTierMissing(t *testing.T) {
	db := buildThreeTierDB(t, false)
	traces, rep, err := BuildPartial(db, threeTiers)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Degraded() || len(rep.MissingTables) != 1 || rep.MissingTables[0] != "mysql_event" {
		t.Fatalf("missing tables: %+v", rep)
	}
	r1 := traces["req-1"]
	if r1.Complete() {
		t.Error("req-1 called downstream into missing mysql but is marked complete")
	}
	if len(r1.MissingTiers) != 1 || r1.MissingTiers[0] != "mysql" {
		t.Errorf("req-1 missing tiers: %v", r1.MissingTiers)
	}
	if got := r1.Coverage(); got <= 0.66 || got >= 0.67 {
		t.Errorf("req-1 coverage = %v, want 2/3", got)
	}
	r2 := traces["req-2"]
	if !r2.Complete() || r2.Coverage() != 1.0 {
		t.Errorf("leaf req-2 wrongly marked incomplete: %+v", r2)
	}
	if rep.Complete != 1 || rep.Partial != 1 {
		t.Errorf("counts: %+v", rep)
	}
}

// TestBuildPartialMiddleTierMissing: tomcat's log is gone. Both requests
// have spans deeper than tomcat (req-1 via mysql) or bracket it, so any
// trace whose deepest span lies below tomcat is provably incomplete.
func TestBuildPartialMiddleTierMissing(t *testing.T) {
	db := buildThreeTierDB(t, true)
	if err := db.Drop("tomcat_event"); err != nil {
		t.Fatal(err)
	}
	traces, rep, err := BuildPartial(db, threeTiers)
	if err != nil {
		t.Fatal(err)
	}
	r1 := traces["req-1"]
	if r1.Complete() {
		t.Error("req-1 reached mysql through tomcat but is marked complete")
	}
	if len(r1.MissingTiers) != 1 || r1.MissingTiers[0] != "tomcat" {
		t.Errorf("req-1 missing tiers: %v", r1.MissingTiers)
	}
	// req-2 never shows below apache; with tomcat unobservable and
	// apache's DS set we cannot prove more than the direct callee loss.
	r2 := traces["req-2"]
	if r2.Complete() {
		t.Error("req-2's apache span has DS set into missing tomcat")
	}
	if rep.Partial != 2 {
		t.Errorf("counts: %+v", rep)
	}
}

// TestBuildPartialNoTables: nothing to build from is an error, not an
// empty success.
func TestBuildPartialNoTables(t *testing.T) {
	db := mscopedb.Open()
	if _, _, err := BuildPartial(db, threeTiers); err == nil {
		t.Fatal("partial build succeeded with zero tables")
	}
}

// TestBuildStillStrict: the strict Build keeps failing on missing tables.
func TestBuildStillStrict(t *testing.T) {
	db := buildThreeTierDB(t, false)
	if _, err := Build(db, threeTiers); err == nil {
		t.Fatal("strict Build tolerated a missing table")
	}
}

// TestBuildReportCoverage exercises the aggregate coverage metric.
func TestBuildReportCoverage(t *testing.T) {
	rep := &BuildReport{Total: 4, Complete: 3, Partial: 1}
	if rep.Coverage() != 0.75 {
		t.Errorf("coverage %v", rep.Coverage())
	}
	empty := &BuildReport{}
	if empty.Coverage() != 0 {
		t.Errorf("empty coverage %v", empty.Coverage())
	}
}
