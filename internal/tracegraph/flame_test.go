package tracegraph

import (
	"strings"
	"testing"
)

// threeTierTrace: apache [0,1000] calls tomcat [100,900] which issues
// two mysql queries [200,400] and [500,700].
func threeTierTrace() *Trace {
	return &Trace{
		ReqID: "r1",
		Spans: []Span{
			{Tier: "apache", Seq: 0, UA: 10000, UD: 11000, DS: 10100, DR: 10900},
			{Tier: "tomcat", Seq: 0, UA: 10100, UD: 10900, DS: 10200, DR: 10700},
			{Tier: "mysql", Seq: 1, UA: 10200, UD: 10400},
			{Tier: "mysql", Seq: 2, UA: 10500, UD: 10700},
		},
	}
}

func TestBuildFlameSelfTimes(t *testing.T) {
	f := BuildFlame(threeTierTrace())
	if f.TotalUS != 1000 {
		t.Fatalf("TotalUS = %d, want 1000", f.TotalUS)
	}
	self := map[string]int64{}
	for _, fr := range f.Frames {
		self[fr.Tier] += fr.SelfUS
	}
	// apache holds [0,1000] minus tomcat [100,900] = 200; tomcat holds
	// [100,900] minus the two mysql visits (400us) = 400; mysql keeps its
	// full 400 (deepest tier).
	for tier, want := range map[string]int64{"apache": 200, "tomcat": 400, "mysql": 400} {
		if self[tier] != want {
			t.Errorf("%s SelfUS = %d, want %d", tier, self[tier], want)
		}
	}
	if f.CriticalUS != 1000 {
		t.Errorf("CriticalUS = %d, want 1000 (fully covered response)", f.CriticalUS)
	}
	// Depth follows causal order, start times are origin-relative.
	depth := map[string]int{}
	for _, fr := range f.Frames {
		depth[fr.Tier] = fr.Depth
	}
	if depth["apache"] != 0 || depth["tomcat"] != 1 || depth["mysql"] != 2 {
		t.Errorf("depths = %v, want apache:0 tomcat:1 mysql:2", depth)
	}
	if f.Frames[0].StartUS != 0 {
		t.Errorf("front frame StartUS = %d, want 0", f.Frames[0].StartUS)
	}
}

func TestBuildFlameWireGap(t *testing.T) {
	// 100us of wire latency each way between apache and tomcat: the child
	// only covers [200,800], so CriticalUS < TotalUS and the gap is the
	// uncharged remainder.
	tr := &Trace{ReqID: "r2", Spans: []Span{
		{Tier: "apache", Seq: 0, UA: 0, UD: 1000, DS: 100, DR: 900},
		{Tier: "tomcat", Seq: 0, UA: 200, UD: 800},
	}}
	f := BuildFlame(tr)
	var apache int64
	for _, fr := range f.Frames {
		if fr.Tier == "apache" {
			apache = fr.SelfUS
		}
	}
	// apache self: [0,1000] minus tomcat [200,800] = 400 — wire time stays
	// charged to the parent that was waiting through it.
	if apache != 400 {
		t.Errorf("apache SelfUS = %d, want 400", apache)
	}
	if f.CriticalUS != 1000 {
		t.Errorf("CriticalUS = %d, want 1000", f.CriticalUS)
	}
}

func TestBuildFlameSkewedChild(t *testing.T) {
	// Clock skew puts the child's arrival before the parent's: the axis
	// re-anchors at the earliest arrival and no frame goes negative.
	tr := &Trace{ReqID: "r3", Spans: []Span{
		{Tier: "apache", Seq: 0, UA: 100, UD: 1000},
		{Tier: "tomcat", Seq: 0, UA: 40, UD: 900},
	}}
	f := BuildFlame(tr)
	for _, fr := range f.Frames {
		if fr.StartUS < 0 {
			t.Errorf("%s StartUS = %d, want >= 0", fr.Tier, fr.StartUS)
		}
	}
	if f.TotalUS != 960 {
		t.Errorf("TotalUS = %d, want 960 (earliest UA to latest UD)", f.TotalUS)
	}
}

func TestBuildFlameEmpty(t *testing.T) {
	f := BuildFlame(&Trace{ReqID: "r0"})
	if f.TotalUS != 0 || len(f.Frames) != 0 {
		t.Fatalf("empty trace: %+v", f)
	}
	var sb strings.Builder
	if err := f.WriteSVG(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "no spans") {
		t.Error("empty-trace SVG lacks the placeholder banner")
	}
}

func TestWriteSVGSelfContained(t *testing.T) {
	var sb strings.Builder
	if err := BuildFlame(threeTierTrace()).WriteSVG(&sb); err != nil {
		t.Fatal(err)
	}
	svg := sb.String()
	if !strings.HasPrefix(svg, `<svg xmlns="http://www.w3.org/2000/svg"`) {
		t.Error("output is not a standalone SVG document")
	}
	if !strings.HasSuffix(strings.TrimSpace(svg), "</svg>") {
		t.Error("SVG not closed")
	}
	for _, want := range []string{"apache#0", "tomcat#0", "<title>", "critical path"} {
		if !strings.Contains(svg, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	for _, banned := range []string{"<script", "http://", "https://"} {
		// the xmlns namespace URI is the one allowed absolute reference
		if n := strings.Count(svg, banned); banned == "http://" && n == 1 {
			continue
		} else if strings.Contains(svg, banned) {
			t.Errorf("SVG contains %q; must be self-contained and inert", banned)
		}
	}
}

func TestMergeIvals(t *testing.T) {
	got := mergeIvals([]ival{{5, 7}, {0, 2}, {1, 3}, {6, 9}})
	want := []ival{{0, 3}, {5, 9}}
	if len(got) != len(want) {
		t.Fatalf("merged to %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("merged to %v, want %v", got, want)
		}
	}
	if n := uncoveredUS(0, 10, got); n != 3 {
		t.Errorf("uncoveredUS = %d, want 3 ([3,5) and [9,10))", n)
	}
}
