package simtime

import (
	"testing"
	"testing/quick"
	"time"
)

func TestWallAtEpoch(t *testing.T) {
	w := Wall(0, 0)
	if !w.Equal(Epoch) {
		t.Fatalf("Wall(0,0) = %v", w)
	}
}

func TestWallAppliesOffset(t *testing.T) {
	w := Wall(time.Second, 250*time.Microsecond)
	want := Epoch.Add(time.Second + 250*time.Microsecond)
	if !w.Equal(want) {
		t.Fatalf("Wall = %v, want %v", w, want)
	}
}

func TestVirtualInvertsWall(t *testing.T) {
	f := func(offNS int64, skewUS int16) bool {
		if offNS < 0 {
			offNS = -offNS
		}
		off := time.Duration(offNS % int64(100*time.Hour))
		skew := time.Duration(skewUS) * time.Microsecond
		return Virtual(Wall(off, skew), skew) == off
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMicrosRoundTrip(t *testing.T) {
	w := Epoch.Add(12345678 * time.Microsecond)
	if got := FromMicros(Micros(w)); !got.Equal(w) {
		t.Fatalf("round trip %v -> %v", w, got)
	}
}

func TestEpochIsUTC(t *testing.T) {
	if Epoch.Location() != time.UTC {
		t.Fatal("epoch not UTC")
	}
}
