// Package simtime maps virtual simulation time onto reproducible wall-clock
// timestamps. Log writers must emit real-looking timestamps (Apache access
// logs, SAR reports, MySQL slow-query logs), and the transformation
// pipeline parses them back; anchoring every run at a fixed epoch keeps
// runs byte-for-byte reproducible.
package simtime

import "time"

// Epoch is the wall-clock instant corresponding to virtual time zero. The
// date matches the paper's experiment era; the value itself is arbitrary
// but must never change within a run.
var Epoch = time.Date(2017, time.April, 1, 0, 0, 0, 0, time.UTC)

// Wall converts a virtual time offset to a wall-clock instant, applying a
// per-node clock offset (simulated NTP error). Event monitors stamp with
// their node's skewed clock, which is why cross-node timestamps in real
// systems never align perfectly.
func Wall(t time.Duration, nodeOffset time.Duration) time.Time {
	return Epoch.Add(t + nodeOffset)
}

// Virtual converts a wall-clock instant back to a virtual offset, inverting
// Wall for a node with the given clock offset.
func Virtual(w time.Time, nodeOffset time.Duration) time.Duration {
	return w.Sub(Epoch) - nodeOffset
}

// Micros returns the microsecond epoch representation used by the extended
// Apache log fields (UA/UD/DS/DR).
func Micros(w time.Time) int64 { return w.UnixMicro() }

// FromMicros inverts Micros.
func FromMicros(us int64) time.Time { return time.UnixMicro(us).UTC() }
