package report

import (
	"bytes"
	"strings"
	"testing"

	"github.com/gt-elba/milliscope/internal/tracegraph"
)

func TestRenderTraceSwimlane(t *testing.T) {
	tr := &tracegraph.Trace{
		ReqID: "req-0000000042",
		Spans: []tracegraph.Span{
			{Tier: "apache", UA: 0, UD: 10_000, DS: 1_000, DR: 9_000},
			{Tier: "tomcat", UA: 1_200, UD: 8_800, DS: 2_000, DR: 8_000},
			{Tier: "mysql", Seq: 1, UA: 2_200, UD: 7_800},
		},
	}
	var buf bytes.Buffer
	if err := RenderTrace(&buf, tr, 60); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"req-0000000042", "apache", "tomcat", "mysql#1", "=", "."} {
		if !strings.Contains(out, want) {
			t.Fatalf("swimlane missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // header + 3 spans + axis
		t.Fatalf("%d lines:\n%s", len(lines), out)
	}
	// The waiting portion of the apache row must be dots, the local edges '='.
	apacheRow := lines[1]
	if !strings.Contains(apacheRow, "=.") && !strings.Contains(apacheRow, ".=") {
		t.Fatalf("apache row lacks local/wait structure: %q", apacheRow)
	}
}

func TestRenderTraceEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := RenderTrace(&buf, &tracegraph.Trace{ReqID: "x"}, 60); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no spans") {
		t.Fatalf("empty trace output: %q", buf.String())
	}
}

func TestRenderTraceZeroDuration(t *testing.T) {
	tr := &tracegraph.Trace{ReqID: "x",
		Spans: []tracegraph.Span{{Tier: "apache", UA: 5, UD: 5}}}
	var buf bytes.Buffer
	if err := RenderTrace(&buf, tr, 60); err != nil {
		t.Fatal(err)
	}
}
