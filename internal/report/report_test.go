package report

import (
	"bytes"
	"strings"
	"testing"

	"github.com/gt-elba/milliscope/internal/mscopedb"
)

func sampleFigure() *Figure {
	return &Figure{
		ID: "figX", Title: "Sample", XLabel: "time (s)", YLabel: "value",
		Series: []Series{
			{Name: "a", X: []float64{0, 1, 2, 3}, Y: []float64{1, 5, 2, 8}},
			{Name: "b", X: []float64{0, 1, 2, 3}, Y: []float64{0, 1, 1, 2}},
		},
		Notes: []string{"peak 8"},
	}
}

func TestRenderChart(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleFigure().Render(&buf, 40, 8); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"figX", "Sample", "a", "b", "note: peak 8", "time (s)", "value", "*", "o"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(out, "\n")
	if len(lines) < 10 {
		t.Fatalf("render too short: %d lines", len(lines))
	}
}

func TestRenderEmptyFigure(t *testing.T) {
	var buf bytes.Buffer
	f := &Figure{ID: "e", Title: "Empty", Notes: []string{"n"}}
	if err := f.Render(&buf, 40, 8); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "(no data)") {
		t.Fatalf("empty figure output: %s", buf.String())
	}
	if !strings.Contains(buf.String(), "note: n") {
		t.Fatal("notes dropped for empty figure")
	}
}

func TestRenderClampsTinyDimensions(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleFigure().Render(&buf, 1, 1); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("no output with clamped dimensions")
	}
}

func TestRenderConstantSeries(t *testing.T) {
	var buf bytes.Buffer
	f := &Figure{ID: "c", Title: "Const",
		Series: []Series{{Name: "x", X: []float64{1, 1}, Y: []float64{5, 5}}}}
	if err := f.Render(&buf, 30, 6); err != nil {
		t.Fatal(err)
	}
}

func TestRenderTable(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleFigure().RenderTable(&buf, 2); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "figX data") || !strings.Contains(out, "a (4 points)") {
		t.Fatalf("table output:\n%s", out)
	}
}

func TestSummary(t *testing.T) {
	s := sampleFigure().Summary()
	if !strings.Contains(s, "figX") || !strings.Contains(s, "peak 8") {
		t.Fatalf("summary %q", s)
	}
}

func TestWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	f := sampleFigure()
	f.YLabel = `value, "quoted"`
	if err := f.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// comment + header + 8 data rows.
	if len(lines) != 10 {
		t.Fatalf("%d csv lines:\n%s", len(lines), out)
	}
	if lines[2] != "a,0,1" {
		t.Fatalf("first data row %q", lines[2])
	}
	if !strings.Contains(lines[1], `"value, ""quoted"""`) {
		t.Fatalf("label not escaped: %q", lines[1])
	}
}

func TestFromDBSeries(t *testing.T) {
	src := &mscopedb.Series{
		StartMicros: []int64{1_000_000, 2_000_000},
		Values:      []float64{3000, 6000},
	}
	s := FromDBSeries("rt", src, 1_000_000, 1e-3)
	if s.Name != "rt" || len(s.X) != 2 {
		t.Fatalf("series %+v", s)
	}
	if s.X[0] != 0 || s.X[1] != 1 {
		t.Fatalf("x values %v", s.X)
	}
	if s.Y[0] != 3 || s.Y[1] != 6 {
		t.Fatalf("y values %v", s.Y)
	}
}
