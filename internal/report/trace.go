package report

import (
	"fmt"
	"io"
	"strings"
	"time"

	"github.com/gt-elba/milliscope/internal/tracegraph"
)

// RenderTrace draws one request's causal path (the paper's Figure 5) as a
// swimlane: one row per tier visit, '=' where the tier works locally, '.'
// where it waits on its downstream, aligned on a shared time axis.
func RenderTrace(w io.Writer, tr *tracegraph.Trace, width int) error {
	if width < 40 {
		width = 40
	}
	if len(tr.Spans) == 0 {
		_, err := fmt.Fprintf(w, "trace %s: no spans\n", tr.ReqID)
		return err
	}
	lo, hi := tr.Spans[0].UA, tr.Spans[0].UD
	for _, sp := range tr.Spans {
		if sp.UA < lo {
			lo = sp.UA
		}
		if sp.UD > hi {
			hi = sp.UD
		}
	}
	if hi == lo {
		hi = lo + 1
	}
	scale := func(us int64) int {
		p := int(float64(us-lo) / float64(hi-lo) * float64(width-1))
		if p < 0 {
			p = 0
		}
		if p > width-1 {
			p = width - 1
		}
		return p
	}
	header := fmt.Sprintf("trace %s  (total %v)", tr.ReqID,
		(time.Duration(hi-lo) * time.Microsecond).Round(time.Microsecond))
	if !tr.Complete() {
		header += fmt.Sprintf("  INCOMPLETE: missing %s (coverage %.0f%%)",
			strings.Join(tr.MissingTiers, ", "), tr.Coverage()*100)
	}
	if _, err := fmt.Fprintln(w, header); err != nil {
		return err
	}
	for _, sp := range tr.Spans {
		row := []byte(strings.Repeat(" ", width))
		a, d := scale(sp.UA), scale(sp.UD)
		for i := a; i <= d; i++ {
			row[i] = '='
		}
		if sp.DS != 0 && sp.DR >= sp.DS {
			s, r := scale(sp.DS), scale(sp.DR)
			for i := s; i <= r && i <= d; i++ {
				row[i] = '.'
			}
		}
		label := sp.Tier
		if sp.Seq > 0 {
			label = fmt.Sprintf("%s#%d", sp.Tier, sp.Seq)
		}
		if _, err := fmt.Fprintf(w, "%-10s |%s| res=%-10v local=%v\n",
			label, string(row),
			sp.Residence().Round(time.Microsecond),
			sp.Local().Round(time.Microsecond)); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%-10s  %-*s%s\n", "", width/2,
		fmt.Sprintf("0"), fmt.Sprintf("%*v", width/2,
			time.Duration(hi-lo)*time.Microsecond))
	return err
}

// RenderCoverage summarizes a degraded-mode trace construction: which
// event tables were absent and how much of the trace set is complete.
func RenderCoverage(w io.Writer, rep *tracegraph.BuildReport) error {
	if !rep.Degraded() {
		_, err := fmt.Fprintf(w, "trace coverage: %d/%d complete (all event tables present)\n",
			rep.Complete, rep.Total)
		return err
	}
	_, err := fmt.Fprintf(w, "trace coverage: %d/%d complete (%.1f%%), %d partial — missing tables: %s\n",
		rep.Complete, rep.Total, rep.Coverage()*100, rep.Partial,
		strings.Join(rep.MissingTables, ", "))
	return err
}
