// Package report renders experiment figures as text: an ASCII chart for
// shape inspection plus a data table, one per paper figure. The benchmark
// harness and CLI print these so each run regenerates the evaluation
// artifacts without any plotting dependencies.
package report

import (
	"fmt"
	"io"
	"math"
	"strings"

	"github.com/gt-elba/milliscope/internal/mscopedb"
)

// Series is one named line of a figure.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Figure is one renderable paper figure.
type Figure struct {
	ID     string // e.g. "fig2"
	Title  string
	XLabel string
	YLabel string
	Series []Series
	// Notes carry summary statistics (peak factors, correlations, ...).
	Notes []string
}

// FromDBSeries converts a warehouse series to a figure series with X in
// seconds relative to baseUS and Y scaled by yScale.
func FromDBSeries(name string, s *mscopedb.Series, baseUS int64, yScale float64) Series {
	out := Series{Name: name}
	for i := range s.StartMicros {
		out.X = append(out.X, float64(s.StartMicros[i]-baseUS)/1e6)
		out.Y = append(out.Y, s.Values[i]*yScale)
	}
	return out
}

// seriesSymbols marks each series on the chart canvas.
const seriesSymbols = "*o+x#@%&"

// Render draws the figure as an ASCII chart followed by its notes.
func (f *Figure) Render(w io.Writer, width, height int) error {
	if width < 20 {
		width = 20
	}
	if height < 5 {
		height = 5
	}
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", f.ID, f.Title); err != nil {
		return err
	}
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := 0.0, math.Inf(-1)
	points := 0
	for _, s := range f.Series {
		for i := range s.X {
			points++
			xmin = math.Min(xmin, s.X[i])
			xmax = math.Max(xmax, s.X[i])
			ymax = math.Max(ymax, s.Y[i])
			ymin = math.Min(ymin, s.Y[i])
		}
	}
	if points == 0 {
		if _, err := fmt.Fprintln(w, " (no data)"); err != nil {
			return err
		}
		return f.renderNotes(w)
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax <= ymin {
		ymax = ymin + 1
	}
	canvas := make([][]byte, height)
	for i := range canvas {
		canvas[i] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range f.Series {
		sym := seriesSymbols[si%len(seriesSymbols)]
		for i := range s.X {
			cx := int((s.X[i] - xmin) / (xmax - xmin) * float64(width-1))
			cy := int((s.Y[i] - ymin) / (ymax - ymin) * float64(height-1))
			row := height - 1 - cy
			if row >= 0 && row < height && cx >= 0 && cx < width {
				canvas[row][cx] = sym
			}
		}
	}
	for i, row := range canvas {
		yVal := ymax - (ymax-ymin)*float64(i)/float64(height-1)
		if _, err := fmt.Fprintf(w, "%12.2f |%s|\n", yVal, string(row)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%12s +%s+\n", "", strings.Repeat("-", width)); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%12s  %-*.2f%*.2f\n", f.XLabel, width/2, xmin, width-width/2, xmax); err != nil {
		return err
	}
	var legend []string
	for si, s := range f.Series {
		legend = append(legend, fmt.Sprintf("%c=%s", seriesSymbols[si%len(seriesSymbols)], s.Name))
	}
	if _, err := fmt.Fprintf(w, " y: %s   legend: %s\n", f.YLabel, strings.Join(legend, "  ")); err != nil {
		return err
	}
	return f.renderNotes(w)
}

func (f *Figure) renderNotes(w io.Writer) error {
	for _, n := range f.Notes {
		if _, err := fmt.Fprintf(w, " note: %s\n", n); err != nil {
			return err
		}
	}
	return nil
}

// RenderTable prints the figure's data as aligned columns, sampling down
// to at most maxRows rows per series.
func (f *Figure) RenderTable(w io.Writer, maxRows int) error {
	if maxRows <= 0 {
		maxRows = 20
	}
	if _, err := fmt.Fprintf(w, "-- %s data --\n", f.ID); err != nil {
		return err
	}
	for _, s := range f.Series {
		if _, err := fmt.Fprintf(w, "%s (%d points):\n", s.Name, len(s.X)); err != nil {
			return err
		}
		step := 1
		if len(s.X) > maxRows {
			step = len(s.X) / maxRows
		}
		for i := 0; i < len(s.X); i += step {
			if _, err := fmt.Fprintf(w, "  %-12.4f %g\n", s.X[i], s.Y[i]); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteCSV emits the figure's data in long format (series,x,y) for
// external plotting tools.
func (f *Figure) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# %s: %s\nseries,%s,%s\n",
		f.ID, f.Title, csvLabel(f.XLabel, "x"), csvLabel(f.YLabel, "y")); err != nil {
		return err
	}
	for _, s := range f.Series {
		for i := range s.X {
			if _, err := fmt.Fprintf(w, "%s,%g,%g\n", csvEscape(s.Name), s.X[i], s.Y[i]); err != nil {
				return err
			}
		}
	}
	return nil
}

func csvLabel(label, fallback string) string {
	if label == "" {
		return fallback
	}
	return csvEscape(label)
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

// Summary returns a one-line description for benchmark output.
func (f *Figure) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s", f.ID, f.Title)
	if len(f.Notes) > 0 {
		fmt.Fprintf(&b, " [%s]", strings.Join(f.Notes, "; "))
	}
	return b.String()
}
