// Package dist provides seeded random variates used by the simulated
// testbed: exponential think times, lognormal service demands, bounded
// Pareto tails, and weighted discrete choices. Every generator draws from
// an explicit *Source so that a given seed reproduces a run exactly.
package dist

import (
	"fmt"
	"math"
	"math/rand"
	"time"
)

// Source wraps math/rand with the derivation helpers the simulator needs.
// It is not safe for concurrent use; the single-threaded DES engine owns it.
type Source struct {
	rng *rand.Rand
}

// NewSource returns a deterministic source for the given seed.
func NewSource(seed int64) *Source {
	return &Source{rng: rand.New(rand.NewSource(seed))}
}

// Derive returns an independent child source whose seed is a stable
// function of the parent seed and the label. Subsystems (per-tier service
// times, think times, injector timing) each derive their own stream so that
// adding draws in one subsystem does not perturb another.
func (s *Source) Derive(label string) *Source {
	h := uint64(1469598103934665603) // FNV-64 offset basis
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= 1099511628211
	}
	mix := int64(h) ^ s.rng.Int63()
	return NewSource(mix)
}

// Float64 returns a uniform variate in [0,1).
func (s *Source) Float64() float64 { return s.rng.Float64() }

// Intn returns a uniform integer in [0,n).
func (s *Source) Intn(n int) int { return s.rng.Intn(n) }

// Int63 returns a non-negative 63-bit integer.
func (s *Source) Int63() int64 { return s.rng.Int63() }

// Perm returns a random permutation of [0,n).
func (s *Source) Perm(n int) []int { return s.rng.Perm(n) }

// Exp returns an exponential variate with the given mean.
func (s *Source) Exp(mean time.Duration) time.Duration {
	if mean <= 0 {
		return 0
	}
	return time.Duration(s.rng.ExpFloat64() * float64(mean))
}

// Uniform returns a uniform variate in [lo, hi).
func (s *Source) Uniform(lo, hi time.Duration) time.Duration {
	if hi <= lo {
		return lo
	}
	return lo + time.Duration(s.rng.Int63n(int64(hi-lo)))
}

// Lognormal returns a lognormal variate with the given median and sigma
// (the shape parameter of the underlying normal). Service demands use this
// shape: most executions cluster near the median with a mild right tail.
func (s *Source) Lognormal(median time.Duration, sigma float64) time.Duration {
	if median <= 0 {
		return 0
	}
	mu := math.Log(float64(median))
	v := math.Exp(mu + sigma*s.rng.NormFloat64())
	return time.Duration(v)
}

// BoundedPareto returns a Pareto(alpha) variate truncated to [lo, hi].
// Heavy-tailed object sizes and rare long queries use this distribution.
func (s *Source) BoundedPareto(alpha float64, lo, hi float64) float64 {
	if alpha <= 0 || lo <= 0 || hi <= lo {
		return lo
	}
	u := s.rng.Float64()
	la := math.Pow(lo, alpha)
	ha := math.Pow(hi, alpha)
	x := math.Pow(-(u*ha-u*la-ha)/(ha*la), -1/alpha)
	if x < lo {
		x = lo
	}
	if x > hi {
		x = hi
	}
	return x
}

// Choice draws an index in [0,len(weights)) with probability proportional
// to the weight. It panics on an empty or non-positive-total weight vector,
// because a silent fallback would bias the workload mix.
func (s *Source) Choice(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		if w < 0 {
			panic(fmt.Sprintf("dist: negative weight %v", w))
		}
		total += w
	}
	if len(weights) == 0 || total <= 0 {
		panic("dist: Choice with empty or zero-total weights")
	}
	x := s.rng.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// Jitter returns d scaled by a uniform factor in [1-frac, 1+frac].
func (s *Source) Jitter(d time.Duration, frac float64) time.Duration {
	if frac <= 0 || d <= 0 {
		return d
	}
	f := 1 + frac*(2*s.rng.Float64()-1)
	return time.Duration(float64(d) * f)
}
