package dist

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestDeterminism(t *testing.T) {
	a := NewSource(7)
	b := NewSource(7)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestDeriveIndependence(t *testing.T) {
	// Two children with different labels must produce different streams,
	// and the same label from identically-seeded parents the same stream.
	p1 := NewSource(42)
	p2 := NewSource(42)
	c1 := p1.Derive("think")
	c2 := p2.Derive("think")
	for i := 0; i < 50; i++ {
		if c1.Float64() != c2.Float64() {
			t.Fatal("same-label children from same seed diverged")
		}
	}
	d1 := NewSource(42).Derive("think")
	d2 := NewSource(42).Derive("service")
	same := true
	for i := 0; i < 10; i++ {
		if d1.Float64() != d2.Float64() {
			same = false
			break
		}
	}
	if same {
		t.Fatal("differently-labelled children produced identical streams")
	}
}

func TestExpMean(t *testing.T) {
	s := NewSource(1)
	const n = 20000
	mean := 10 * time.Millisecond
	var sum time.Duration
	for i := 0; i < n; i++ {
		sum += s.Exp(mean)
	}
	got := float64(sum) / n
	want := float64(mean)
	if math.Abs(got-want)/want > 0.05 {
		t.Fatalf("empirical mean %v, want ~%v", time.Duration(got), mean)
	}
}

func TestExpZeroMean(t *testing.T) {
	s := NewSource(1)
	if d := s.Exp(0); d != 0 {
		t.Fatalf("Exp(0) = %v, want 0", d)
	}
}

func TestUniformBounds(t *testing.T) {
	s := NewSource(3)
	lo, hi := 5*time.Millisecond, 9*time.Millisecond
	for i := 0; i < 1000; i++ {
		d := s.Uniform(lo, hi)
		if d < lo || d >= hi {
			t.Fatalf("Uniform out of bounds: %v", d)
		}
	}
	if d := s.Uniform(hi, lo); d != hi {
		t.Fatalf("degenerate Uniform = %v, want lo", d)
	}
}

func TestLognormalMedian(t *testing.T) {
	s := NewSource(9)
	const n = 20001
	med := 4 * time.Millisecond
	vals := make([]time.Duration, n)
	for i := range vals {
		vals[i] = s.Lognormal(med, 0.5)
	}
	// Median of samples should approximate med.
	lt := 0
	for _, v := range vals {
		if v < med {
			lt++
		}
	}
	frac := float64(lt) / n
	if frac < 0.45 || frac > 0.55 {
		t.Fatalf("fraction below median = %v, want ~0.5", frac)
	}
}

func TestBoundedParetoBounds(t *testing.T) {
	f := func(seed int64) bool {
		s := NewSource(seed)
		for i := 0; i < 200; i++ {
			x := s.BoundedPareto(1.3, 100, 10000)
			if x < 100 || x > 10000 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestChoiceDistribution(t *testing.T) {
	s := NewSource(11)
	weights := []float64{1, 3, 6}
	counts := make([]int, 3)
	const n = 30000
	for i := 0; i < n; i++ {
		counts[s.Choice(weights)]++
	}
	for i, w := range weights {
		want := w / 10
		got := float64(counts[i]) / n
		if math.Abs(got-want) > 0.02 {
			t.Fatalf("choice %d frequency %v, want ~%v", i, got, want)
		}
	}
}

func TestChoicePanics(t *testing.T) {
	s := NewSource(1)
	for _, weights := range [][]float64{nil, {}, {0, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Choice(%v) did not panic", weights)
				}
			}()
			s.Choice(weights)
		}()
	}
}

func TestChoiceNegativeWeightPanics(t *testing.T) {
	s := NewSource(1)
	defer func() {
		if recover() == nil {
			t.Fatal("negative weight did not panic")
		}
	}()
	s.Choice([]float64{1, -1})
}

func TestJitterBounds(t *testing.T) {
	s := NewSource(5)
	d := 100 * time.Millisecond
	for i := 0; i < 1000; i++ {
		j := s.Jitter(d, 0.2)
		if j < 80*time.Millisecond || j > 120*time.Millisecond {
			t.Fatalf("jitter out of bounds: %v", j)
		}
	}
	if j := s.Jitter(d, 0); j != d {
		t.Fatalf("zero-frac jitter changed value: %v", j)
	}
}
