package mscopedb

import "sort"

// indexMinRows is the table size below which a full scan beats building
// and probing a sorted index.
const indexMinRows = 256

// colIndex is a lazily built sorted view of one int- or time-typed
// column: row numbers permuted into ascending value order, with the
// values alongside for binary search. It turns the Between scans that
// dominate window-aggregation queries from O(rows) per query into
// O(log rows + matches).
type colIndex struct {
	// rows is the table row count the index was built at; a mismatch at
	// lookup time means rows were appended since and the index rebuilds.
	rows int
	perm []int32
	vals []float64
}

// sortedIndex returns the cached sorted index for the column, building or
// rebuilding it as needed, or nil when the column isn't worth indexing
// (wrong type, or too few rows). Float columns are excluded: NaN cells
// would break the sort order binary search relies on.
func (t *Table) sortedIndex(ci int) *colIndex {
	switch t.cols[ci].Type {
	case TInt, TTime:
	default:
		return nil
	}
	// Spill-backed tables don't index: their range scans prune whole
	// segments by zone map instead, and the in-memory tail the index
	// would cover is bounded by one seal's worth of rows anyway.
	if t.seal != nil {
		return nil
	}
	if t.rows < indexMinRows {
		return nil
	}
	t.idxMu.Lock()
	defer t.idxMu.Unlock()
	old := t.idx[ci]
	if old != nil && old.rows == t.rows {
		return old
	}
	var col []int64
	if t.cols[ci].Type == TInt {
		col = t.data[ci].Ints
	} else {
		col = t.data[ci].Times
	}
	from := 0
	if old != nil && old.rows < t.rows {
		// Streaming ingests alternate append and query: extend the stale
		// index by merging in the new suffix instead of re-sorting the
		// whole column.
		from = old.rows
	}
	fresh := sortRows(col, from, t.rows)
	ix := fresh
	if from > 0 {
		ix = mergeIndex(old, fresh)
	}
	ix.rows = t.rows
	if t.idx == nil {
		t.idx = make(map[int]*colIndex)
	}
	t.idx[ci] = ix
	return ix
}

// sortRows builds a colIndex over rows [from, to) of one int64 column.
// Equal values keep ascending row order, so a full build and an
// incremental merge produce identical indexes.
func sortRows(col []int64, from, to int) *colIndex {
	n := to - from
	ix := &colIndex{perm: make([]int32, n), vals: make([]float64, n)}
	for i := range ix.perm {
		ix.perm[i] = int32(from + i)
	}
	sort.SliceStable(ix.perm, func(i, j int) bool {
		return col[ix.perm[i]] < col[ix.perm[j]]
	})
	for k, r := range ix.perm {
		// float64 coercion mirrors pred.match, so binary-search bounds and
		// predicate comparisons agree cell for cell.
		ix.vals[k] = float64(col[r])
	}
	return ix
}

// mergeIndex merges two sorted indexes; b's rows all follow a's, so ties
// resolve to a first, preserving row order among equal values.
func mergeIndex(a, b *colIndex) *colIndex {
	n := len(a.perm) + len(b.perm)
	out := &colIndex{perm: make([]int32, 0, n), vals: make([]float64, 0, n)}
	i, j := 0, 0
	for i < len(a.perm) && j < len(b.perm) {
		if a.vals[i] <= b.vals[j] {
			out.perm = append(out.perm, a.perm[i])
			out.vals = append(out.vals, a.vals[i])
			i++
		} else {
			out.perm = append(out.perm, b.perm[j])
			out.vals = append(out.vals, b.vals[j])
			j++
		}
	}
	out.perm = append(out.perm, a.perm[i:]...)
	out.vals = append(out.vals, a.vals[i:]...)
	out.perm = append(out.perm, b.perm[j:]...)
	out.vals = append(out.vals, b.vals[j:]...)
	return out
}

// dropIndex discards the cached index for a column whose stored values
// changed in place (Widen); plain appends are caught by the rows check.
func (t *Table) dropIndex(ci int) {
	t.idxMu.Lock()
	defer t.idxMu.Unlock()
	delete(t.idx, ci)
}
