package mscopedb

// Benchmarks for the on-disk segment store: what a durable warehouse
// costs (encode + spill throughput, bytes per row vs the legacy gob
// image) and what zone-map pruning buys (a 1-second window query over a
// multi-segment corpus against a scan that decodes every segment).
// BENCH_db.json pins the headline numbers; `make bench-check` gates them.

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// benchEventCols mirrors the shape of an ingested event table: a
// timestamp, a high-cardinality request ID (stored raw), a
// low-cardinality tier name (dictionary-encoded), and two numeric
// columns.
func benchEventCols() []Column {
	return []Column{
		{Name: "ts", Type: TTime},
		{Name: "req", Type: TString},
		{Name: "tier", Type: TString},
		{Name: "rt_us", Type: TInt},
		{Name: "util", Type: TFloat},
	}
}

var benchTiers = []string{"apache", "tomcat", "cjdbc", "mysql"}

// fillBenchEvents appends n synthetic event rows, 1ms apart.
func fillBenchEvents(b *testing.B, tbl *Table, n int) {
	b.Helper()
	base := time.Date(2017, 4, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < n; i++ {
		err := tbl.Append(
			base.Add(time.Duration(i)*time.Millisecond),
			fmt.Sprintf("req-%08d", i),
			benchTiers[i%len(benchTiers)],
			int64(900+i%5000),
			float64(i%100)/100,
		)
		if err != nil {
			b.Fatal(err)
		}
	}
}

// segmentBytes sums the on-disk size of the store's committed segment
// files (seg-*.seg), excluding the manifest and tail snapshots — the
// per-row encoding cost BENCH_db.json budgets.
func segmentBytes(b *testing.B, dir string) int64 {
	b.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		b.Fatal(err)
	}
	var total int64
	for _, e := range entries {
		if e.IsDir() || !strings.HasPrefix(e.Name(), "seg-") || !strings.HasSuffix(e.Name(), ".seg") {
			continue
		}
		info, err := e.Info()
		if err != nil {
			b.Fatal(err)
		}
		total += info.Size()
	}
	return total
}

// BenchmarkSegmentSpill measures the durable ingest path: append rows
// into a spill-enabled warehouse and checkpoint, timing the whole
// encode+fsync pipeline. It reports the on-disk footprint per row of the
// dictionary+delta segment encoding next to the legacy gob image of the
// same warehouse — the segment store must beat gob for spilling to be
// worth anything.
func BenchmarkSegmentSpill(b *testing.B) {
	const rows = 16384
	const sealRows = 1024
	var segB, gobB int64
	var rowsLoaded int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		dir, err := os.MkdirTemp("", "mscope-bench-spill-")
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		db, err := OpenDir(dir, StoreOptions{SealRows: sealRows})
		if err != nil {
			b.Fatal(err)
		}
		tbl, err := db.Create("bench_event", benchEventCols())
		if err != nil {
			b.Fatal(err)
		}
		fillBenchEvents(b, tbl, rows)
		if err := db.Checkpoint(); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		segB = segmentBytes(b, dir)
		rowsLoaded = tbl.Rows()
		gobPath := filepath.Join(dir, "legacy.gob")
		if err := db.Save(gobPath); err != nil {
			b.Fatal(err)
		}
		if info, err := os.Stat(gobPath); err == nil {
			gobB = info.Size()
		} else {
			b.Fatal(err)
		}
		os.RemoveAll(dir)
		b.StartTimer()
	}
	if rowsLoaded != rows || segB == 0 {
		b.Fatalf("spill produced %d rows, %d segment bytes", rowsLoaded, segB)
	}
	b.ReportMetric(float64(rows)*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
	b.ReportMetric(float64(segB)/float64(rows), "disk_B/row")
	b.ReportMetric(float64(gobB)/float64(rows), "gob_B/row")
	b.ReportMetric(float64(gobB)/float64(segB), "gob_over_seg_x")
}

// BenchmarkSpilledWindowQuery measures what zone maps buy: a 1-second
// Between window over a corpus sealed into >=10 segments, against a
// whole-span scan that must decode every segment. The window start
// cycles across the span each iteration so the 2-entry decode cache
// cannot serve the pruned query for free — every op pays a real decode
// of the segments it could not prune.
func BenchmarkSpilledWindowQuery(b *testing.B) {
	const rows = 24576 // 24.5s of 1ms-apart rows
	const sealRows = 2048
	dir := b.TempDir()
	db, err := OpenDir(dir, StoreOptions{SealRows: sealRows})
	if err != nil {
		b.Fatal(err)
	}
	tbl, err := db.Create("bench_event", benchEventCols())
	if err != nil {
		b.Fatal(err)
	}
	fillBenchEvents(b, tbl, rows)
	if err := db.Checkpoint(); err != nil {
		b.Fatal(err)
	}
	segs := tbl.Segments()
	if segs < 10 {
		b.Fatalf("corpus sealed into %d segments, want >= 10", segs)
	}
	base := time.Date(2017, 4, 1, 0, 0, 0, 0, time.UTC)
	span := rows * int(time.Millisecond) // corpus duration in ns

	// Reference: the same query shape with a window covering the whole
	// span — zone maps prune nothing, every segment decodes.
	fullStart := time.Now()
	const fullIters = 3
	for i := 0; i < fullIters; i++ {
		res, err := tbl.Select().Between("ts", base, base.Add(time.Duration(span))).Rows()
		if err != nil {
			b.Fatal(err)
		}
		if res.Len() != rows {
			b.Fatalf("full scan saw %d rows, want %d", res.Len(), rows)
		}
	}
	fullNS := float64(time.Since(fullStart).Nanoseconds()) / fullIters

	ResetScanStats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Slide the 1s window across the sealed span (staying clear of the
		// in-memory tail) so successive ops hit different segments.
		off := time.Duration((i*3001)%(20*1000)) * time.Millisecond
		res, err := tbl.Select().Between("ts", base.Add(off), base.Add(off+time.Second)).Rows()
		if err != nil {
			b.Fatal(err)
		}
		if res.Len() < 1000 {
			b.Fatalf("window query saw %d rows", res.Len())
		}
	}
	b.StopTimer()
	scanned, pruned := ScanStats()
	b.ReportMetric(float64(segs), "segments")
	b.ReportMetric(float64(scanned)/float64(b.N), "segs_scanned/op")
	b.ReportMetric(float64(pruned)/float64(b.N), "segs_pruned/op")
	b.ReportMetric(fullNS/(float64(b.Elapsed().Nanoseconds())/float64(b.N)), "speedup_x")
}
