package mscopedb

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
	"unsafe"
)

// tinyStore returns options that force spilling after a handful of rows,
// so unit-scale corpora exercise the multi-segment machinery.
func tinyStore(sealRows int) StoreOptions {
	return StoreOptions{SealRows: sealRows, CompactTargetRows: sealRows * 8, CompactMinSegs: 3}
}

// fillEvents appends n synthetic event rows (10ms apart, monotonic time)
// to the named table, creating it on first use.
func fillEvents(t *testing.T, db *DB, table string, from, n int) *Table {
	t.Helper()
	cols := []Column{
		{Name: "ts", Type: TTime},
		{Name: "dev", Type: TString},
		{Name: "rt_us", Type: TInt},
		{Name: "util", Type: TFloat},
	}
	tbl, err := db.Table(table)
	if err != nil {
		tbl, err = db.Create(table, cols)
		if err != nil {
			t.Fatal(err)
		}
	}
	base := time.Date(2017, 4, 1, 0, 0, 0, 0, time.UTC)
	for i := from; i < from+n; i++ {
		err := tbl.Append(
			base.Add(time.Duration(i)*10*time.Millisecond),
			fmt.Sprintf("dev%d", i%3),
			int64(1000+i),
			float64(i)/10,
		)
		if err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

// assertTableEqual compares two tables cell for cell via the public
// accessors — the property every spill/reopen/compact path must keep.
func assertTableEqual(t *testing.T, want, got *Table) {
	t.Helper()
	if want.Rows() != got.Rows() {
		t.Fatalf("%s: %d rows, want %d", got.Name(), got.Rows(), want.Rows())
	}
	wc, gc := want.Columns(), got.Columns()
	if len(wc) != len(gc) {
		t.Fatalf("%s: %d cols, want %d", got.Name(), len(gc), len(wc))
	}
	for ci := range wc {
		if wc[ci] != gc[ci] {
			t.Fatalf("%s: col %d is %+v, want %+v", got.Name(), ci, gc[ci], wc[ci])
		}
		for r := 0; r < want.Rows(); r++ {
			if wv, gv := want.Value(ci, r), got.Value(ci, r); wv != gv {
				t.Fatalf("%s.%s row %d: %v, want %v", got.Name(), wc[ci].Name, r, gv, wv)
			}
		}
	}
}

func TestSegmentRoundTrip(t *testing.T) {
	cols := []Column{
		{Name: "a", Type: TInt},
		{Name: "b", Type: TFloat},
		{Name: "c", Type: TTime},
		{Name: "d", Type: TString}, // low-cardinality → dictionary
		{Name: "e", Type: TString}, // high-cardinality → raw
	}
	n := segDictMaxCard + 100
	data := make([]colData, len(cols))
	for i := 0; i < n; i++ {
		data[0].Ints = append(data[0].Ints, int64(i*i-5000))
		data[1].Floats = append(data[1].Floats, float64(i)*1.5-7)
		data[2].Times = append(data[2].Times, int64(1491004800000000+i*250))
		data[3].Strs = append(data[3].Strs, fmt.Sprintf("dev%d", i%7))
		data[4].Strs = append(data[4].Strs, fmt.Sprintf("req-%08d", i))
	}
	img, zones, err := encodeSegment("ev", cols, data, n)
	if err != nil {
		t.Fatal(err)
	}
	if !zones[0].Has || zones[0].Min != -5000 || zones[0].Max != float64((n-1)*(n-1)-5000) {
		t.Fatalf("int zone = %+v", zones[0])
	}
	if zones[3].Has || zones[4].Has {
		t.Fatalf("string columns grew zones: %+v %+v", zones[3], zones[4])
	}
	got, rows, err := decodeSegment(img, "ev", cols)
	if err != nil {
		t.Fatal(err)
	}
	if rows != n {
		t.Fatalf("rows = %d, want %d", rows, n)
	}
	for i := 0; i < n; i++ {
		if got[0].Ints[i] != data[0].Ints[i] || got[1].Floats[i] != data[1].Floats[i] ||
			got[2].Times[i] != data[2].Times[i] || got[3].Strs[i] != data[3].Strs[i] ||
			got[4].Strs[i] != data[4].Strs[i] {
			t.Fatalf("row %d mismatch", i)
		}
	}

	// The decoded dictionary column must share backing strings (one per
	// distinct value), like the in-memory interner.
	seen := map[string]*byte{}
	for i := range got[3].Strs {
		s := got[3].Strs[i]
		if len(s) == 0 {
			continue
		}
		p := unsafe.StringData(s) // only compared, never dereferenced
		if prev, ok := seen[s]; ok && prev != p {
			t.Fatalf("dictionary value %q not shared", s)
		}
		seen[s] = p
	}
}

func TestSegmentCorruptionDetected(t *testing.T) {
	cols := []Column{{Name: "a", Type: TInt}}
	data := []colData{{Ints: []int64{1, 2, 3}}}
	img, _, err := encodeSegment("x", cols, data, 3)
	if err != nil {
		t.Fatal(err)
	}
	flip := append([]byte(nil), img...)
	flip[len(flip)/2] ^= 0xff
	if _, _, err := decodeSegment(flip, "x", cols); err == nil {
		t.Fatal("bit flip not detected")
	}
	if _, _, err := decodeSegment(img[:len(img)-3], "x", cols); err == nil {
		t.Fatal("truncation not detected")
	}
	if _, _, err := decodeSegment(img, "y", cols); err == nil {
		t.Fatal("table mismatch not detected")
	}
	if _, _, err := decodeSegment(img, "x", []Column{{Name: "a", Type: TFloat}}); err == nil {
		t.Fatal("schema mismatch not detected")
	}
	if _, _, err := encodeSegment("x", cols, data, 0); err == nil {
		t.Fatal("empty segment accepted")
	}
}

func TestSpillCheckpointReopen(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenDir(dir, tinyStore(16))
	if err != nil {
		t.Fatal(err)
	}
	tbl := fillEvents(t, db, "ev", 0, 100)
	if tbl.Segments() == 0 {
		t.Fatal("no auto-spill at 100 rows with SealRows=16")
	}
	if tbl.SealedRows()+16 < tbl.Rows()-16 {
		t.Fatalf("tail too large: %d sealed of %d", tbl.SealedRows(), tbl.Rows())
	}
	if err := db.RecordIngestAt("ev", "/logs/a.csv", 100, 4096, time.Unix(0, 0)); err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenDir(dir, tinyStore(16))
	if err != nil {
		t.Fatal(err)
	}
	got, err := re.Table("ev")
	if err != nil {
		t.Fatal(err)
	}
	assertTableEqual(t, tbl, got)
	if off, ok := re.LatestIngestOffset("/logs/a.csv"); !ok || off != 4096 {
		t.Fatalf("ledger offset = %d,%v after reopen", off, ok)
	}
	if rows, ok := re.LatestIngestRows("/logs/a.csv"); !ok || rows != 100 {
		t.Fatalf("ledger rows = %d,%v after reopen", rows, ok)
	}
}

func TestUncommittedSpillDroppedOnReopen(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenDir(dir, tinyStore(16))
	if err != nil {
		t.Fatal(err)
	}
	fillEvents(t, db, "ev", 0, 40)
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Keep appending past several seal thresholds, then "crash" without a
	// checkpoint: the spilled-but-uncommitted segments must be swept and
	// the warehouse must reopen to exactly the checkpointed 40 rows.
	fillEvents(t, db, "ev", 40, 64)
	before, _ := filepath.Glob(filepath.Join(dir, "seg-*"))

	re, err := OpenDir(dir, tinyStore(16))
	if err != nil {
		t.Fatal(err)
	}
	got, err := re.Table("ev")
	if err != nil {
		t.Fatal(err)
	}
	if got.Rows() != 40 {
		t.Fatalf("reopened to %d rows, want the checkpointed 40", got.Rows())
	}
	after, _ := filepath.Glob(filepath.Join(dir, "seg-*"))
	if len(after) >= len(before) {
		t.Fatalf("uncommitted segments not swept: %d files before, %d after", len(before), len(after))
	}
}

func TestTornTempFilesSwept(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenDir(dir, tinyStore(16))
	if err != nil {
		t.Fatal(err)
	}
	fillEvents(t, db, "ev", 0, 50)
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// A crash mid-write leaves torn temp files and a half-written segment
	// that no manifest references; reopen must sweep all of them.
	for _, junk := range []string{"MANIFEST.json.tmp", "tail-99999999.gob.tmp", "seg-99999999-ev.seg"} {
		if err := os.WriteFile(filepath.Join(dir, junk), []byte("torn"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	re, err := OpenDir(dir, tinyStore(16))
	if err != nil {
		t.Fatal(err)
	}
	for _, junk := range []string{"MANIFEST.json.tmp", "tail-99999999.gob.tmp", "seg-99999999-ev.seg"} {
		if _, err := os.Stat(filepath.Join(dir, junk)); !os.IsNotExist(err) {
			t.Fatalf("%s survived reopen", junk)
		}
	}
	got, err := re.Table("ev")
	if err != nil {
		t.Fatal(err)
	}
	if got.Rows() != 50 {
		t.Fatalf("reopened to %d rows, want 50", got.Rows())
	}
}

func TestZoneMapPruning(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenDir(dir, tinyStore(16))
	if err != nil {
		t.Fatal(err)
	}
	tbl := fillEvents(t, db, "ev", 0, 200) // 10ms apart → 2s of data
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	segs := tbl.Segments()
	if segs < 10 {
		t.Fatalf("only %d segments; want >= 10 for a meaningful pruning test", segs)
	}
	base := time.Date(2017, 4, 1, 0, 0, 0, 0, time.UTC)

	// A 100ms window overlaps ~1 of the 160ms segments.
	ResetScanStats()
	res, err := tbl.Select().Between("ts", base.Add(500*time.Millisecond), base.Add(600*time.Millisecond)).Rows()
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 11 {
		t.Fatalf("window matched %d rows, want 11", res.Len())
	}
	scanned, pruned := ScanStats()
	if scanned+pruned != int64(segs) {
		t.Fatalf("scanned %d + pruned %d != %d segments", scanned, pruned, segs)
	}
	if scanned > 2 {
		t.Fatalf("scanned %d segments for a 100ms window; pruning is not working", scanned)
	}
	if pruned < int64(segs)-2 {
		t.Fatalf("pruned only %d of %d segments", pruned, segs)
	}

	// All-pruned query: a window before all data touches zero segments.
	ResetScanStats()
	res, err = tbl.Select().Between("ts", base.Add(-time.Hour), base.Add(-time.Minute)).Rows()
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 0 {
		t.Fatalf("empty window matched %d rows", res.Len())
	}
	if scanned, _ := ScanStats(); scanned != 0 {
		t.Fatalf("scanned %d segments for an out-of-range window", scanned)
	}

	// Pruning applies to every numeric operator shape, not just Between.
	ResetScanStats()
	res, err = tbl.Select().Where("rt_us", OpGt, int64(1000+197)).Rows()
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 {
		t.Fatalf("OpGt matched %d rows, want 2", res.Len())
	}
	if scanned, _ := ScanStats(); scanned > 1 {
		t.Fatalf("OpGt on monotonic column scanned %d segments", scanned)
	}

	// Zone maps must survive the manifest JSON round trip: a reopened
	// store prunes (and matches) exactly like the one that spilled.
	re, err := OpenDir(dir, tinyStore(16))
	if err != nil {
		t.Fatal(err)
	}
	rt, err := re.Table("ev")
	if err != nil {
		t.Fatal(err)
	}
	ResetScanStats()
	res, err = rt.Select().Between("ts", base.Add(500*time.Millisecond), base.Add(600*time.Millisecond)).Rows()
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 11 {
		t.Fatalf("reopened window matched %d rows, want 11", res.Len())
	}
	scanned, pruned = ScanStats()
	if scanned > 2 || pruned < int64(segs)-2 {
		t.Fatalf("reopened store scanned %d / pruned %d of %d segments; zone maps lost in manifest round trip",
			scanned, pruned, segs)
	}
}

func TestSpilledQueryMatchesInMemory(t *testing.T) {
	dir := t.TempDir()
	spilled, err := OpenDir(dir, tinyStore(8))
	if err != nil {
		t.Fatal(err)
	}
	mem := Open()
	st := fillEvents(t, spilled, "ev", 0, 150)
	mt := fillEvents(t, mem, "ev", 0, 150)
	if err := spilled.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	base := time.Date(2017, 4, 1, 0, 0, 0, 0, time.UTC)

	type mk func(*Table) *Query
	cases := map[string]mk{
		"all":        func(t *Table) *Query { return t.Select() },
		"window":     func(t *Table) *Query { return t.Select().Between("ts", base.Add(200*time.Millisecond), base.Add(900*time.Millisecond)) },
		"str-eq":     func(t *Table) *Query { return t.Select().Where("dev", OpEq, "dev1") },
		"str-ne":     func(t *Table) *Query { return t.Select().Where("dev", OpNe, "dev0") },
		"combo":      func(t *Table) *Query { return t.Select().Where("util", OpGe, 5.0).Where("dev", OpEq, "dev2") },
		"order":      func(t *Table) *Query { return t.Select().OrderBy("rt_us", false).Limit(7) },
		"order-str":  func(t *Table) *Query { return t.Select().OrderBy("dev", true).Limit(11) },
		"everything": func(t *Table) *Query { return t.Select().Where("rt_us", OpGe, int64(1020)).Between("ts", base, base.Add(time.Second)).OrderBy("ts", false).Limit(13) },
	}
	for name, make := range cases {
		want, err := make(mt).Rows()
		if err != nil {
			t.Fatalf("%s (mem): %v", name, err)
		}
		got, err := make(st).Rows()
		if err != nil {
			t.Fatalf("%s (spill): %v", name, err)
		}
		if got.Len() != want.Len() {
			t.Fatalf("%s: %d rows, want %d", name, got.Len(), want.Len())
		}
		for i := 0; i < want.Len(); i++ {
			wr, gr := want.Row(i), got.Row(i)
			for c := range wr {
				if wr[c] != gr[c] {
					t.Fatalf("%s row %d col %d: %v, want %v", name, i, c, gr[c], wr[c])
				}
			}
		}
		// Window aggregation through the vectorized path must agree too.
		ws, err := want.WindowAgg("ts", 50*time.Millisecond, "rt_us", AggP99)
		if err != nil {
			t.Fatalf("%s (mem agg): %v", name, err)
		}
		gs, err := got.WindowAgg("ts", 50*time.Millisecond, "rt_us", AggP99)
		if err != nil {
			t.Fatalf("%s (spill agg): %v", name, err)
		}
		if len(ws.Values) != len(gs.Values) {
			t.Fatalf("%s: agg %d windows, want %d", name, len(gs.Values), len(ws.Values))
		}
		for i := range ws.Values {
			if ws.Values[i] != gs.Values[i] || ws.StartMicros[i] != gs.StartMicros[i] {
				t.Fatalf("%s: agg window %d differs", name, i)
			}
		}
	}
}

func TestSingleRowSegments(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenDir(dir, tinyStore(1))
	if err != nil {
		t.Fatal(err)
	}
	tbl := fillEvents(t, db, "ev", 0, 20)
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if tbl.Segments() != 20 {
		t.Fatalf("%d segments with SealRows=1, want 20", tbl.Segments())
	}
	mem := Open()
	assertTableEqual(t, fillEvents(t, mem, "ev", 0, 20), tbl)

	re, err := OpenDir(dir, tinyStore(1))
	if err != nil {
		t.Fatal(err)
	}
	got, err := re.Table("ev")
	if err != nil {
		t.Fatal(err)
	}
	mt, _ := mem.Table("ev")
	assertTableEqual(t, mt, got)
}

func TestCompaction(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenDir(dir, tinyStore(8))
	if err != nil {
		t.Fatal(err)
	}
	tbl := fillEvents(t, db, "ev", 0, 128)
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	before := tbl.Segments()
	if before < 8 {
		t.Fatalf("only %d segments before compaction", before)
	}
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	after := tbl.Segments()
	if after >= before {
		t.Fatalf("compaction did not reduce segments: %d -> %d", before, after)
	}
	mem := Open()
	want := fillEvents(t, mem, "ev", 0, 128)
	assertTableEqual(t, want, tbl)

	// Queries over the merged (time-overlapping) layout still match, and
	// the superseded input files are gone after the commit.
	base := time.Date(2017, 4, 1, 0, 0, 0, 0, time.UTC)
	res, err := tbl.Select().Between("ts", base.Add(100*time.Millisecond), base.Add(400*time.Millisecond)).Rows()
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 31 {
		t.Fatalf("window after compaction matched %d rows, want 31", res.Len())
	}
	segFiles, _ := filepath.Glob(filepath.Join(dir, "seg-*"))
	if len(segFiles) != after {
		t.Fatalf("%d segment files on disk for %d live segments", len(segFiles), after)
	}

	re, err := OpenDir(dir, tinyStore(8))
	if err != nil {
		t.Fatal(err)
	}
	got, err := re.Table("ev")
	if err != nil {
		t.Fatal(err)
	}
	assertTableEqual(t, want, got)
}

func TestCrashMidCompactionReopens(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenDir(dir, tinyStore(8))
	if err != nil {
		t.Fatal(err)
	}
	fillEvents(t, db, "ev", 0, 128)
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Crash in the widest window: merged segment written, swap and commit
	// never happen. The hook panics out of CompactOnce, leaving the store
	// directory exactly as a kill -9 would.
	compactTestHook = func(string) { panic("crash mid-compaction") }
	defer func() { compactTestHook = nil }()
	func() {
		defer func() { recover() }()
		db.CompactOnce()
		t.Fatal("hook did not fire")
	}()
	compactTestHook = nil

	re, err := OpenDir(dir, tinyStore(8))
	if err != nil {
		t.Fatal(err)
	}
	got, err := re.Table("ev")
	if err != nil {
		t.Fatal(err)
	}
	mem := Open()
	assertTableEqual(t, fillEvents(t, mem, "ev", 0, 128), got)
	// And the abandoned merged file was swept.
	re2, _ := re.Table("ev")
	_ = re2
	segFiles, _ := filepath.Glob(filepath.Join(dir, "seg-*"))
	if len(segFiles) != got.Segments() {
		t.Fatalf("%d files for %d segments after crash recovery", len(segFiles), got.Segments())
	}
}

func TestCompactionAfterSwapBeforeCommitReopens(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenDir(dir, tinyStore(8))
	if err != nil {
		t.Fatal(err)
	}
	tbl := fillEvents(t, db, "ev", 0, 128)
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Merge + swap succeed but the process dies before any checkpoint:
	// the committed manifest still names the input files (deletion is
	// deferred to the next commit), so reopen sees the old layout intact.
	if did, err := db.CompactOnce(); err != nil || !did {
		t.Fatalf("CompactOnce = %v, %v", did, err)
	}
	mem := Open()
	want := fillEvents(t, mem, "ev", 0, 128)
	assertTableEqual(t, want, tbl) // merged layout serves reads

	re, err := OpenDir(dir, tinyStore(8))
	if err != nil {
		t.Fatal(err)
	}
	got, err := re.Table("ev")
	if err != nil {
		t.Fatal(err)
	}
	assertTableEqual(t, want, got)
}

func TestWidenAndAddColumnUnspill(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenDir(dir, tinyStore(8))
	if err != nil {
		t.Fatal(err)
	}
	tbl := fillEvents(t, db, "ev", 0, 50)
	if tbl.Segments() == 0 {
		t.Fatal("expected spilled segments before widen")
	}
	if err := tbl.Widen("rt_us", TString); err != nil {
		t.Fatal(err)
	}
	if tbl.Segments() != 0 {
		t.Fatal("widen left stale segments")
	}
	if got := tbl.Str(tbl.ColIndex("rt_us"), 0); got != "1000" {
		t.Fatalf("widened cell = %q, want \"1000\"", got)
	}
	if err := tbl.AddColumn(Column{Name: "extra", Type: TInt}); err != nil {
		t.Fatal(err)
	}
	if got := tbl.Int(tbl.ColIndex("extra"), 49); got != 0 {
		t.Fatalf("backfilled cell = %d, want 0", got)
	}
	// The widened table checkpoints and reopens with its new schema.
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	re, err := OpenDir(dir, tinyStore(8))
	if err != nil {
		t.Fatal(err)
	}
	got, err := re.Table("ev")
	if err != nil {
		t.Fatal(err)
	}
	assertTableEqual(t, tbl, got)
}

func TestSaveMaterializesSpilledTables(t *testing.T) {
	dir := t.TempDir()
	spilled, err := OpenDir(dir, tinyStore(8))
	if err != nil {
		t.Fatal(err)
	}
	mem := Open()
	for _, db := range []*DB{spilled, mem} {
		fillEvents(t, db, "ev", 0, 100)
		if err := db.RecordIngestAt("ev", "/logs/a.csv", 100, 512, time.Unix(42, 0).UTC()); err != nil {
			t.Fatal(err)
		}
	}
	if err := spilled.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	spillGob := filepath.Join(t.TempDir(), "spill.db")
	memGob := filepath.Join(t.TempDir(), "mem.db")
	if err := spilled.Save(spillGob); err != nil {
		t.Fatal(err)
	}
	if err := mem.Save(memGob); err != nil {
		t.Fatal(err)
	}
	a, err := os.ReadFile(spillGob)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(memGob)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("gob from spilled warehouse differs from in-memory gob (%d vs %d bytes)", len(a), len(b))
	}
}

func TestMigrateGobToSegments(t *testing.T) {
	// Legacy path: an in-memory ingest saved with gob.
	mem := Open()
	fillEvents(t, mem, "ev", 0, 120)
	if err := mem.RecordIngestAt("ev", "/logs/a.csv", 120, 2048, time.Unix(7, 0).UTC()); err != nil {
		t.Fatal(err)
	}
	gobPath := filepath.Join(t.TempDir(), "w.db")
	if err := mem.Save(gobPath); err != nil {
		t.Fatal(err)
	}

	// Migration: Load + AttachStore + Checkpoint, then reopen from disk.
	loaded, err := Load(gobPath)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := loaded.AttachStore(dir, tinyStore(16)); err != nil {
		t.Fatal(err)
	}
	if err := loaded.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	re, err := OpenDir(dir, tinyStore(16))
	if err != nil {
		t.Fatal(err)
	}

	// Byte-identical query surface: every cell matches, and saving the
	// migrated store back to gob reproduces the original file exactly.
	wantT, _ := mem.Table("ev")
	gotT, err := re.Table("ev")
	if err != nil {
		t.Fatal(err)
	}
	if gotT.Segments() < 7 {
		t.Fatalf("migration produced only %d segments", gotT.Segments())
	}
	assertTableEqual(t, wantT, gotT)
	back := filepath.Join(t.TempDir(), "back.db")
	if err := re.Save(back); err != nil {
		t.Fatal(err)
	}
	orig, err := os.ReadFile(gobPath)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := os.ReadFile(back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(orig, rt) {
		t.Fatalf("migrated gob differs from original (%d vs %d bytes)", len(rt), len(orig))
	}

	// Dictionary + delta must beat gob's footprint on disk.
	var segBytes int64
	ents, _ := os.ReadDir(dir)
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), "seg-") {
			fi, _ := e.Info()
			segBytes += fi.Size()
		}
	}
	gi, err := os.Stat(gobPath)
	if err != nil {
		t.Fatal(err)
	}
	if segBytes >= gi.Size() {
		t.Fatalf("segments (%d B) not smaller than gob (%d B)", segBytes, gi.Size())
	}

	// AttachStore refuses to double-attach or clobber an existing store.
	if err := re.AttachStore(t.TempDir(), StoreOptions{}); err == nil {
		t.Fatal("double attach accepted")
	}
	fresh := Open()
	if err := fresh.AttachStore(dir, StoreOptions{}); err == nil {
		t.Fatal("attach over an existing manifest accepted")
	}
}

func TestDropOrphansSegments(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenDir(dir, tinyStore(8))
	if err != nil {
		t.Fatal(err)
	}
	fillEvents(t, db, "ev", 0, 64)
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := db.Drop("ev"); err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	segFiles, _ := filepath.Glob(filepath.Join(dir, "seg-*ev*"))
	if len(segFiles) != 0 {
		t.Fatalf("dropped table left %d segment files", len(segFiles))
	}
	re, err := OpenDir(dir, tinyStore(8))
	if err != nil {
		t.Fatal(err)
	}
	if re.HasTable("ev") {
		t.Fatal("dropped table resurrected after checkpoint")
	}
}
