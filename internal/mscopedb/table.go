// Package mscopedb implements mScopeDB (paper Section III-C): a dynamic
// data warehouse whose tables are created on the fly by the import
// pipeline. Four static metadata tables record experiment configuration
// and data-loading provenance; dynamic tables hold the monitoring data.
//
// Storage is columnar and typed (int64, float64, microsecond-epoch time,
// string) — the shape the bottom-up schema inference of the XMLtoCSV
// converter produces — and a small scan/filter/window-aggregate engine
// serves the analysis layer.
package mscopedb

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/gt-elba/milliscope/internal/mxml"
)

// Type is a column's storage type.
type Type int

// Column types, narrowest first (the inference lattice's numeric arm).
const (
	TInt Type = iota + 1
	TFloat
	TTime
	TString
)

func (t Type) String() string {
	switch t {
	case TInt:
		return "int"
	case TFloat:
		return "float"
	case TTime:
		return "time"
	case TString:
		return "string"
	default:
		return fmt.Sprintf("Type(%d)", int(t))
	}
}

// ParseType inverts Type.String for schema sidecar files.
func ParseType(s string) (Type, error) {
	switch s {
	case "int":
		return TInt, nil
	case "float":
		return TFloat, nil
	case "time":
		return TTime, nil
	case "string":
		return TString, nil
	default:
		return 0, fmt.Errorf("mscopedb: unknown type %q", s)
	}
}

// Column describes one table column.
type Column struct {
	Name string
	Type Type
}

// colData holds one column's values; exactly one slice is used, selected
// by the column type. Times are microsecond epochs. The unexported intern
// state is skipped by gob and rebuilt lazily after Load.
type colData struct {
	Ints   []int64
	Floats []float64
	Times  []int64
	Strs   []string

	// intern deduplicates low-cardinality string columns (device names,
	// HTTP methods, status codes): repeated values share one backing
	// string instead of each pinning a slice of its source log line.
	// Past internCap distinct values the column is treated as
	// high-cardinality and interning shuts off for good.
	intern    map[string]string
	internOff bool
}

// internCap bounds the per-column intern map; a column that exceeds it is
// high-cardinality (URLs, free text) and not worth deduplicating.
const internCap = 256

// Table is one warehouse table.
type Table struct {
	name   string
	cols   []Column
	colIdx map[string]int
	data   []colData
	rows   int

	// idx caches sorted-order permutations per column for range scans;
	// guarded by idxMu, invalidated by staleness checks against rows.
	idxMu sync.Mutex
	idx   map[int]*colIndex

	// seal, when non-nil, makes the table spill-backed: rows [0, seal.rows)
	// live in immutable on-disk segments and data holds only the in-memory
	// tail. Row numbers stay global; the accessors translate.
	seal *sealedPart
}

// NewTable builds an empty table; column names must be unique and
// non-empty.
func NewTable(name string, cols []Column) (*Table, error) {
	if name == "" {
		return nil, fmt.Errorf("mscopedb: table with empty name")
	}
	if len(cols) == 0 {
		return nil, fmt.Errorf("mscopedb: table %q with no columns", name)
	}
	idx := make(map[string]int, len(cols))
	for i, c := range cols {
		if c.Name == "" {
			return nil, fmt.Errorf("mscopedb: table %q column %d has empty name", name, i)
		}
		if c.Type < TInt || c.Type > TString {
			return nil, fmt.Errorf("mscopedb: table %q column %q has invalid type", name, c.Name)
		}
		if _, dup := idx[c.Name]; dup {
			return nil, fmt.Errorf("mscopedb: table %q duplicate column %q", name, c.Name)
		}
		idx[c.Name] = i
	}
	colsCopy := make([]Column, len(cols))
	copy(colsCopy, cols)
	return &Table{
		name:   name,
		cols:   colsCopy,
		colIdx: idx,
		data:   make([]colData, len(cols)),
	}, nil
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Rows returns the row count.
func (t *Table) Rows() int { return t.rows }

// Columns returns a copy of the schema.
func (t *Table) Columns() []Column {
	out := make([]Column, len(t.cols))
	copy(out, t.cols)
	return out
}

// ColIndex returns the index of the named column, or -1.
func (t *Table) ColIndex(name string) int {
	i, ok := t.colIdx[name]
	if !ok {
		return -1
	}
	return i
}

// Grow preallocates column storage for n additional rows, so a bulk load
// with a known row count (the direct ingest path) appends without any
// intermediate slice doublings.
func (t *Table) Grow(n int) {
	if n <= 0 {
		return
	}
	for i := range t.data {
		d := &t.data[i]
		switch t.cols[i].Type {
		case TInt:
			d.Ints = growSlice(d.Ints, n)
		case TFloat:
			d.Floats = growSlice(d.Floats, n)
		case TTime:
			d.Times = growSlice(d.Times, n)
		case TString:
			d.Strs = growSlice(d.Strs, n)
		}
	}
}

func growSlice[E any](s []E, n int) []E {
	if cap(s)-len(s) >= n {
		return s
	}
	ns := make([]E, len(s), len(s)+n)
	copy(ns, s)
	return ns
}

// Append adds one row; values must match the schema positionally with Go
// types int64, float64, time.Time and string.
func (t *Table) Append(values ...any) error {
	if len(values) != len(t.cols) {
		return fmt.Errorf("mscopedb: %s: %d values for %d columns", t.name, len(values), len(t.cols))
	}
	for i, v := range values {
		switch t.cols[i].Type {
		case TInt:
			x, ok := v.(int64)
			if !ok {
				return fmt.Errorf("mscopedb: %s.%s: %T is not int64", t.name, t.cols[i].Name, v)
			}
			t.data[i].Ints = append(t.data[i].Ints, x)
		case TFloat:
			x, ok := v.(float64)
			if !ok {
				return fmt.Errorf("mscopedb: %s.%s: %T is not float64", t.name, t.cols[i].Name, v)
			}
			t.data[i].Floats = append(t.data[i].Floats, x)
		case TTime:
			x, ok := v.(time.Time)
			if !ok {
				return fmt.Errorf("mscopedb: %s.%s: %T is not time.Time", t.name, t.cols[i].Name, v)
			}
			t.data[i].Times = append(t.data[i].Times, x.UnixMicro())
		case TString:
			x, ok := v.(string)
			if !ok {
				return fmt.Errorf("mscopedb: %s.%s: %T is not string", t.name, t.cols[i].Name, v)
			}
			t.data[i].Strs = append(t.data[i].Strs, x)
		}
	}
	t.rows++
	return t.maybeSpill()
}

// AppendStrings parses one CSV-shaped row against the schema (the import
// path). Empty cells load as the column's zero value except strings, which
// load as the empty string.
func (t *Table) AppendStrings(raw []string) error {
	if len(raw) != len(t.cols) {
		return fmt.Errorf("mscopedb: %s: %d cells for %d columns", t.name, len(raw), len(t.cols))
	}
	for i, s := range raw {
		switch t.cols[i].Type {
		case TInt:
			var x int64
			if s != "" {
				var err error
				x, err = strconv.ParseInt(s, 10, 64)
				if err != nil {
					return fmt.Errorf("mscopedb: %s.%s: parse int %q: %w", t.name, t.cols[i].Name, s, err)
				}
			}
			t.data[i].Ints = append(t.data[i].Ints, x)
		case TFloat:
			var x float64
			if s != "" {
				var err error
				x, err = strconv.ParseFloat(s, 64)
				if err != nil {
					return fmt.Errorf("mscopedb: %s.%s: parse float %q: %w", t.name, t.cols[i].Name, s, err)
				}
			}
			t.data[i].Floats = append(t.data[i].Floats, x)
		case TTime:
			var x int64
			if s != "" {
				ts, err := time.Parse(mxml.TimeLayout, s)
				if err != nil {
					return fmt.Errorf("mscopedb: %s.%s: parse time %q: %w", t.name, t.cols[i].Name, s, err)
				}
				x = ts.UnixMicro()
			}
			t.data[i].Times = append(t.data[i].Times, x)
		case TString:
			d := &t.data[i]
			d.Strs = append(d.Strs, d.internStr(s))
		}
	}
	t.rows++
	return t.maybeSpill()
}

// internStr returns a shared copy of s for low-cardinality columns. The
// clone matters beyond deduplication: stored cells stop referencing their
// source line (the direct ingest path appends substrings of whole log
// lines), so repeated values pin one small string instead of many lines.
func (d *colData) internStr(s string) string {
	if s == "" || d.internOff {
		return s
	}
	if v, ok := d.intern[s]; ok {
		return v
	}
	if len(d.intern) >= internCap {
		d.internOff = true
		d.intern = nil
		return s
	}
	if d.intern == nil {
		d.intern = make(map[string]string)
	}
	c := strings.Clone(s)
	d.intern[c] = c
	return c
}

// Widen converts a column to a wider storage type in place, rewriting the
// stored cells: int → float keeps the numeric values; any type → string
// re-renders each cell. The streaming incremental ingest uses it when a
// later record contradicts the schema inferred from the first records
// (e.g. a downstream timestamp that is numeric for most requests but "-"
// for static ones) — exactly the widening the batch converter's bottom-up
// inference would have produced had it seen the whole file.
func (t *Table) Widen(col string, to Type) error {
	ci := t.ColIndex(col)
	if ci < 0 {
		return fmt.Errorf("mscopedb: %s: no column %q", t.name, col)
	}
	from := t.cols[ci].Type
	if from == to {
		return nil
	}
	// Sealed segments are immutable and carry the old schema; pull them
	// back into the tail before rewriting in place. Widening happens while
	// a table's schema is still settling — early, when little has spilled.
	if err := t.unspill(); err != nil {
		return err
	}
	d := &t.data[ci]
	switch {
	case from == TInt && to == TFloat:
		d.Floats = make([]float64, len(d.Ints))
		for i, v := range d.Ints {
			d.Floats[i] = float64(v)
		}
		d.Ints = nil
	case to == TString:
		d.Strs = make([]string, 0, t.rows)
		switch from {
		case TInt:
			for _, v := range d.Ints {
				d.Strs = append(d.Strs, strconv.FormatInt(v, 10))
			}
			d.Ints = nil
		case TFloat:
			for _, v := range d.Floats {
				d.Strs = append(d.Strs, strconv.FormatFloat(v, 'g', -1, 64))
			}
			d.Floats = nil
		case TTime:
			for _, v := range d.Times {
				d.Strs = append(d.Strs, time.UnixMicro(v).UTC().Format(mxml.TimeLayout))
			}
			d.Times = nil
		}
	default:
		return fmt.Errorf("mscopedb: %s.%s: cannot widen %v to %v", t.name, col, from, to)
	}
	t.cols[ci].Type = to
	t.dropIndex(ci)
	return nil
}

// AddColumn appends a new column, backfilling existing rows with the
// column's zero value. The streaming ingest uses it when a later record
// introduces a field the first records lacked (an optional derived field).
func (t *Table) AddColumn(c Column) error {
	if c.Name == "" {
		return fmt.Errorf("mscopedb: %s: column with empty name", t.name)
	}
	if c.Type < TInt || c.Type > TString {
		return fmt.Errorf("mscopedb: %s: column %q has invalid type", t.name, c.Name)
	}
	if _, dup := t.colIdx[c.Name]; dup {
		return fmt.Errorf("mscopedb: %s: duplicate column %q", t.name, c.Name)
	}
	// Same reasoning as Widen: segments pin the schema they were encoded
	// under, so widen the physical layout in memory.
	if err := t.unspill(); err != nil {
		return err
	}
	var d colData
	switch c.Type {
	case TInt:
		d.Ints = make([]int64, t.rows)
	case TFloat:
		d.Floats = make([]float64, t.rows)
	case TTime:
		d.Times = make([]int64, t.rows)
	case TString:
		d.Strs = make([]string, t.rows)
	}
	t.colIdx[c.Name] = len(t.cols)
	t.cols = append(t.cols, c)
	t.data = append(t.data, d)
	return nil
}

// Int returns an int cell.
func (t *Table) Int(col, row int) int64 {
	if t.seal != nil {
		return t.seal.intAt(t, col, row)
	}
	return t.data[col].Ints[row]
}

// Float returns a float cell.
func (t *Table) Float(col, row int) float64 {
	if t.seal != nil {
		return t.seal.floatAt(t, col, row)
	}
	return t.data[col].Floats[row]
}

// TimeMicros returns a time cell as a microsecond epoch.
func (t *Table) TimeMicros(col, row int) int64 {
	if t.seal != nil {
		return t.seal.timeAt(t, col, row)
	}
	return t.data[col].Times[row]
}

// Str returns a string cell.
func (t *Table) Str(col, row int) string {
	if t.seal != nil {
		return t.seal.strAt(t, col, row)
	}
	return t.data[col].Strs[row]
}

// Value returns a cell as any (int64, float64, time.Time or string).
func (t *Table) Value(col, row int) any {
	switch t.cols[col].Type {
	case TInt:
		return t.Int(col, row)
	case TFloat:
		return t.Float(col, row)
	case TTime:
		return time.UnixMicro(t.TimeMicros(col, row)).UTC()
	case TString:
		return t.Str(col, row)
	default:
		panic(fmt.Sprintf("mscopedb: invalid column type %v", t.cols[col].Type))
	}
}

// SizeBytes estimates the table's in-memory data footprint: 8 bytes per
// numeric/time cell, string header plus content per string cell. The
// schema-typing ablation compares typed against all-string schemas with it.
// On a spill-backed table this counts only the in-memory tail — that is
// the footprint, the sealed rows live on disk.
func (t *Table) SizeBytes() int64 {
	var total int64
	for i := range t.data {
		cd := &t.data[i]
		total += int64(len(cd.Ints)+len(cd.Floats)+len(cd.Times)) * 8
		for _, s := range cd.Strs {
			total += int64(len(s)) + 16
		}
	}
	return total
}

// numeric returns a cell coerced to float64 for predicates and
// aggregation; times coerce to their microsecond epoch.
func (t *Table) numeric(col, row int) (float64, bool) {
	switch t.cols[col].Type {
	case TInt:
		return float64(t.Int(col, row)), true
	case TFloat:
		return t.Float(col, row), true
	case TTime:
		return float64(t.TimeMicros(col, row)), true
	default:
		return 0, false
	}
}
