package mscopedb

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Names of the four static metadata tables (paper Section III-C).
const (
	TableExperiments = "mscope_experiments"
	TableNodes       = "mscope_nodes"
	TableMonitors    = "mscope_monitors"
	TableIngests     = "mscope_ingests"
)

// DB is the warehouse: a catalog of static metadata tables plus
// dynamically created data tables.
type DB struct {
	mu     sync.RWMutex
	tables map[string]*Table

	// ingestOff and ingestRows mirror the mscope_ingests ledger as
	// source-file → latest recorded offset / rows, so the per-file
	// idempotency probe at the top of every ingest is O(1) instead of a
	// full ledger scan.
	offMu      sync.Mutex
	ingestOff  map[string]int64
	ingestRows map[string]int64

	// store, when non-nil, backs the warehouse with the on-disk segment
	// store (OpenDir / AttachStore): tables seal full segments to disk as
	// they fill and Checkpoint commits consistent snapshots.
	store *Store
}

// Open creates an empty warehouse with the four static tables.
func Open() *DB {
	db := &DB{tables: make(map[string]*Table),
		ingestOff: make(map[string]int64), ingestRows: make(map[string]int64)}
	mustCreate := func(name string, cols []Column) {
		t, err := NewTable(name, cols)
		if err != nil {
			panic(fmt.Sprintf("mscopedb: static table %s: %v", name, err))
		}
		db.tables[name] = t
	}
	mustCreate(TableExperiments, []Column{
		{Name: "id", Type: TInt},
		{Name: "name", Type: TString},
		{Name: "started", Type: TTime},
		{Name: "seed", Type: TInt},
		{Name: "users", Type: TInt},
		{Name: "duration_ms", Type: TInt},
		{Name: "mix", Type: TString},
	})
	mustCreate(TableNodes, []Column{
		{Name: "experiment", Type: TInt},
		{Name: "name", Type: TString},
		{Name: "tier", Type: TString},
		{Name: "cores", Type: TInt},
		{Name: "workers", Type: TInt},
	})
	mustCreate(TableMonitors, []Column{
		{Name: "experiment", Type: TInt},
		{Name: "node", Type: TString},
		{Name: "kind", Type: TString},
		{Name: "file", Type: TString},
	})
	mustCreate(TableIngests, []Column{
		{Name: "tbl", Type: TString},
		{Name: "file", Type: TString},
		{Name: "rows", Type: TInt},
		{Name: "offset", Type: TInt},
		{Name: "loaded", Type: TTime},
	})
	return db
}

// Create adds a dynamic table; the name must be new.
func (db *DB) Create(name string, cols []Column) (*Table, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, exists := db.tables[name]; exists {
		return nil, fmt.Errorf("mscopedb: table %q already exists", name)
	}
	t, err := NewTable(name, cols)
	if err != nil {
		return nil, err
	}
	if db.store != nil {
		t.seal = &sealedPart{store: db.store}
	}
	db.tables[name] = t
	return t, nil
}

// Install attaches a fully built table under its name; the name must be
// new. It is the batched append path of the parallel ingest: workers build
// tables off to the side and the single sequenced appender installs each
// one whole, so the warehouse mutates in exactly the order a serial
// Create+Append ingest would produce.
func (db *DB) Install(t *Table) error {
	if t == nil {
		return fmt.Errorf("mscopedb: install nil table")
	}
	db.mu.Lock()
	if _, exists := db.tables[t.Name()]; exists {
		db.mu.Unlock()
		return fmt.Errorf("mscopedb: table %q already exists", t.Name())
	}
	if db.store != nil && t.seal == nil {
		t.seal = &sealedPart{store: db.store}
	}
	db.tables[t.Name()] = t
	db.mu.Unlock()
	// Carve the bulk-built table's full chunks straight to disk, so a
	// large install holds at most one seal's worth of rows in memory once
	// the appender moves on.
	return t.spillFull()
}

// Table returns the named table.
func (db *DB) Table(name string) (*Table, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[name]
	if !ok {
		return nil, fmt.Errorf("mscopedb: no table %q", name)
	}
	return t, nil
}

// HasTable reports whether the named table exists — the degraded-mode
// pipeline probes for tables whose source logs may never have arrived.
func (db *DB) HasTable(name string) bool {
	db.mu.RLock()
	defer db.mu.RUnlock()
	_, ok := db.tables[name]
	return ok
}

// TableNames lists every table, sorted.
func (db *DB) TableNames() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	names := make([]string, 0, len(db.tables))
	for n := range db.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Drop removes a dynamic table. Static tables cannot be dropped.
func (db *DB) Drop(name string) error {
	switch name {
	case TableExperiments, TableNodes, TableMonitors, TableIngests:
		return fmt.Errorf("mscopedb: cannot drop static table %q", name)
	}
	db.mu.Lock()
	t, ok := db.tables[name]
	if !ok {
		db.mu.Unlock()
		return fmt.Errorf("mscopedb: no table %q", name)
	}
	delete(db.tables, name)
	db.mu.Unlock()
	// The dropped table's segments die with the next manifest commit
	// (which no longer references them); until then a crash resurrects
	// the table — drops become durable at the next Checkpoint, like
	// appends. Registered outside db.mu: addOrphans takes store.mu and
	// Checkpoint acquires the two in the opposite order.
	if db.store != nil && t.seal != nil {
		t.seal.mu.RLock()
		files := make([]string, 0, len(t.seal.segs))
		for _, ss := range t.seal.segs {
			files = append(files, ss.meta.File)
		}
		t.seal.mu.RUnlock()
		if len(files) > 0 {
			db.store.addOrphans(files...)
		}
	}
	return nil
}

// RecordExperiment appends one experiment row and returns its id.
func (db *DB) RecordExperiment(name string, started time.Time, seed int64, users int, duration time.Duration, mix string) (int64, error) {
	t, err := db.Table(TableExperiments)
	if err != nil {
		return 0, err
	}
	id := int64(t.Rows() + 1)
	if err := t.Append(id, name, started, seed, int64(users), duration.Milliseconds(), mix); err != nil {
		return 0, err
	}
	return id, nil
}

// RecordNode appends one node row.
func (db *DB) RecordNode(experiment int64, name, tier string, cores, workers int) error {
	t, err := db.Table(TableNodes)
	if err != nil {
		return err
	}
	return t.Append(experiment, name, tier, int64(cores), int64(workers))
}

// RecordMonitor appends one monitor row.
func (db *DB) RecordMonitor(experiment int64, node, kind, file string) error {
	t, err := db.Table(TableMonitors)
	if err != nil {
		return err
	}
	return t.Append(experiment, node, kind, file)
}

// RecordIngest appends one ingest provenance row with no byte offset
// (stage files that are always rewritten whole, e.g. converter CSVs).
func (db *DB) RecordIngest(table, file string, rows int, loaded time.Time) error {
	return db.RecordIngestAt(table, file, rows, 0, loaded)
}

// RecordIngestAt appends one ingest provenance row carrying the byte
// offset of the source file consumed so far. The ledger makes re-ingest
// idempotent: a file whose recorded offset equals its current size is
// already fully loaded, and a resumed streaming ingest starts tailing at
// the recorded offset instead of re-reading history.
func (db *DB) RecordIngestAt(table, file string, rows int, offset int64, loaded time.Time) error {
	t, err := db.Table(TableIngests)
	if err != nil {
		return err
	}
	if err := t.Append(table, file, int64(rows), offset, loaded); err != nil {
		return err
	}
	db.offMu.Lock()
	db.ingestOff[file] = offset
	db.ingestRows[file] = int64(rows)
	db.offMu.Unlock()
	return nil
}

// LatestIngestOffset returns the most recently recorded byte offset for a
// source file, and whether the ledger has any entry for it. The ledger is
// append-only and the last row for a file wins; the answer comes from a
// per-file map maintained alongside the ledger, not a table scan.
func (db *DB) LatestIngestOffset(file string) (int64, bool) {
	db.offMu.Lock()
	defer db.offMu.Unlock()
	off, ok := db.ingestOff[file]
	return off, ok
}

// LatestIngestRows returns the rows value of the most recent ledger entry
// for a source file. Live degraded-mode checkpoints record the *records
// consumed* here rather than the table rows appended — under aggregate
// fidelity most consumed records never become table rows, so a restarted
// header-format resume that skipped only Table.Rows() records would
// re-consume (and re-promote) the rolled-up remainder. The ledger count is
// the authoritative skip distance; callers take the max of both.
func (db *DB) LatestIngestRows(file string) (int64, bool) {
	db.offMu.Lock()
	defer db.offMu.Unlock()
	n, ok := db.ingestRows[file]
	return n, ok
}
