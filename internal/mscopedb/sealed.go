package mscopedb

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// sealedPart is the on-disk half of a spill-enabled table: the ordered
// list of immutable segments holding rows [0, rows), while t.data holds
// only the in-memory tail at global rows [rows, t.rows). Row numbers stay
// global across the seal, so every caller that iterates rows by index —
// the query engine, the analysis layer's direct scans, the ledger rebuild
// — is oblivious to where a row physically lives.
//
// mu guards the segment list, the sealed-row boundary, and (with it held
// for writing) the tail slice swap a spill performs — readers resolve
// (boundary, tail cell) under one RLock so a concurrent spill can never
// show them a half-moved row. cmu guards a 2-entry decoded-segment cache
// sized for the sequential full-table scans the analysis code performs;
// random access pays one segment decode per miss.
type sealedPart struct {
	store *Store

	mu   sync.RWMutex
	segs []sealedSeg
	rows int // total sealed rows; segs[i].start are prefix sums

	cmu   sync.Mutex
	cache [2]*decodedSeg
}

type sealedSeg struct {
	meta  segMeta
	start int // global row number of the segment's first row
}

type decodedSeg struct {
	file  string
	start int
	rows  int
	data  []colData
}

// Package-wide scan counters, for tests and benchmarks to observe
// zone-map pruning. Monotonic; read both together via ScanStats.
var statSegsScanned, statSegsPruned atomic.Int64

// ScanStats returns the cumulative number of segments decoded by queries
// and the number skipped by zone-map pruning.
func ScanStats() (scanned, pruned int64) {
	return statSegsScanned.Load(), statSegsPruned.Load()
}

// ResetScanStats zeroes the scan counters.
func ResetScanStats() {
	statSegsScanned.Store(0)
	statSegsPruned.Store(0)
}

// SealedRows returns how many of the table's rows live in on-disk
// segments (0 for in-memory tables).
func (t *Table) SealedRows() int {
	if t.seal == nil {
		return 0
	}
	t.seal.mu.RLock()
	defer t.seal.mu.RUnlock()
	return t.seal.rows
}

// Segments returns the number of on-disk segments backing the table.
func (t *Table) Segments() int {
	if t.seal == nil {
		return 0
	}
	t.seal.mu.RLock()
	defer t.seal.mu.RUnlock()
	return len(t.seal.segs)
}

// --- cell resolution ---

// The typed accessors below are the sealed branch of Table.Int and
// friends: boundary check and tail read under one RLock (a spill swaps
// the tail slices and the boundary together under the write lock), sealed
// reads through the decode cache.

func (sp *sealedPart) intAt(t *Table, col, row int) int64 {
	sp.mu.RLock()
	if row >= sp.rows {
		v := t.data[col].Ints[row-sp.rows]
		sp.mu.RUnlock()
		return v
	}
	sp.mu.RUnlock()
	ds, lr := sp.resolve(t, row)
	return ds.data[col].Ints[lr]
}

func (sp *sealedPart) floatAt(t *Table, col, row int) float64 {
	sp.mu.RLock()
	if row >= sp.rows {
		v := t.data[col].Floats[row-sp.rows]
		sp.mu.RUnlock()
		return v
	}
	sp.mu.RUnlock()
	ds, lr := sp.resolve(t, row)
	return ds.data[col].Floats[lr]
}

func (sp *sealedPart) timeAt(t *Table, col, row int) int64 {
	sp.mu.RLock()
	if row >= sp.rows {
		v := t.data[col].Times[row-sp.rows]
		sp.mu.RUnlock()
		return v
	}
	sp.mu.RUnlock()
	ds, lr := sp.resolve(t, row)
	return ds.data[col].Times[lr]
}

func (sp *sealedPart) strAt(t *Table, col, row int) string {
	sp.mu.RLock()
	if row >= sp.rows {
		v := t.data[col].Strs[row-sp.rows]
		sp.mu.RUnlock()
		return v
	}
	sp.mu.RUnlock()
	ds, lr := sp.resolve(t, row)
	return ds.data[col].Strs[lr]
}

// resolve returns the decoded segment holding the global row plus the
// row's local index. Panics on an unreadable committed segment — by the
// commit protocol that is corruption, the moral equivalent of an
// out-of-range index.
func (sp *sealedPart) resolve(t *Table, row int) (*decodedSeg, int) {
	sp.cmu.Lock()
	for i, ds := range sp.cache {
		if ds != nil && row >= ds.start && row < ds.start+ds.rows {
			if i != 0 {
				sp.cache[0], sp.cache[i] = sp.cache[i], sp.cache[0]
			}
			ds := sp.cache[0]
			sp.cmu.Unlock()
			return ds, row - ds.start
		}
	}
	sp.cmu.Unlock()

	ds, err := sp.load(t, row)
	if err != nil {
		// The compactor may have merged the segment away between our
		// lookup and the read; re-resolve against the fresh list once.
		ds, err = sp.load(t, row)
		if err != nil {
			panic(fmt.Sprintf("mscopedb: %s row %d: %v", t.name, row, err))
		}
	}
	sp.cmu.Lock()
	sp.cache[1] = sp.cache[0]
	sp.cache[0] = ds
	sp.cmu.Unlock()
	return ds, row - ds.start
}

func (sp *sealedPart) load(t *Table, row int) (*decodedSeg, error) {
	sp.mu.RLock()
	ss, ok := findSeg(sp.segs, row)
	sp.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("no segment holds the row")
	}
	data, err := sp.store.readSegment(ss.meta, t.name, t.cols)
	if err != nil {
		return nil, err
	}
	statSegsScanned.Add(1)
	return &decodedSeg{file: ss.meta.File, start: ss.start, rows: ss.meta.Rows, data: data}, nil
}

// findSeg binary-searches the prefix-summed segment list for the one
// containing the global row.
func findSeg(segs []sealedSeg, row int) (sealedSeg, bool) {
	i := sort.Search(len(segs), func(i int) bool {
		return segs[i].start+segs[i].meta.Rows > row
	})
	if i >= len(segs) || row < segs[i].start {
		return sealedSeg{}, false
	}
	return segs[i], true
}

// dropCache invalidates the decode cache (after compaction or unspill).
func (sp *sealedPart) dropCache() {
	sp.cmu.Lock()
	sp.cache = [2]*decodedSeg{}
	sp.cmu.Unlock()
}

// --- spill ---

// maybeSpill carves one full segment off the tail when it reaches the
// seal threshold; the append paths call it after every row. Single
// writer: only the goroutine that owns appends to this table may call it
// (the sequenced appender, the live loader, or a batch builder).
func (t *Table) maybeSpill() error {
	sp := t.seal
	if sp == nil {
		return nil
	}
	sp.mu.RLock()
	full := t.rows-sp.rows >= sp.store.opts.SealRows
	sp.mu.RUnlock()
	if !full {
		return nil
	}
	return t.spillChunk(sp.store.opts.SealRows)
}

// spillFull carves every remaining full chunk (Checkpoint's pre-pass;
// Install's carve of a bulk-built table).
func (t *Table) spillFull() error {
	sp := t.seal
	if sp == nil {
		return nil
	}
	for {
		sp.mu.RLock()
		tail := t.rows - sp.rows
		sp.mu.RUnlock()
		if tail < sp.store.opts.SealRows {
			return nil
		}
		if err := t.spillChunk(sp.store.opts.SealRows); err != nil {
			return err
		}
	}
}

// spillChunk seals the first n tail rows into an on-disk segment. The
// encode and the file write run outside the seal lock (the tail prefix is
// immutable to everyone but this, the single writer); the segment-list
// append, boundary advance, and tail slice swap commit together under the
// write lock so concurrent readers always see a consistent mapping.
func (t *Table) spillChunk(n int) error {
	sp := t.seal
	img, zones, err := encodeSegment(t.name, t.cols, t.data, n)
	if err != nil {
		return err
	}
	file, err := sp.store.writeSegment(t.name, img)
	if err != nil {
		return err
	}
	meta := segMeta{File: file, Rows: n, Bytes: int64(len(img)), Zones: zones}

	// Copy the tail remainder into fresh slices: re-slicing would pin the
	// spilled prefix's backing array forever, defeating the memory bound.
	rest := make([]colData, len(t.cols))
	for i := range t.data {
		d := &t.data[i]
		switch t.cols[i].Type {
		case TInt:
			rest[i].Ints = append([]int64(nil), d.Ints[n:]...)
		case TFloat:
			rest[i].Floats = append([]float64(nil), d.Floats[n:]...)
		case TTime:
			rest[i].Times = append([]int64(nil), d.Times[n:]...)
		case TString:
			rest[i].Strs = append([]string(nil), d.Strs[n:]...)
		}
		rest[i].intern = d.intern
		rest[i].internOff = d.internOff
	}
	sp.mu.Lock()
	sp.segs = append(sp.segs, sealedSeg{meta: meta, start: sp.rows})
	sp.rows += n
	t.data = rest
	sp.mu.Unlock()
	t.dropAllIndexes()
	return nil
}

// unspill decodes every segment back into the in-memory tail: the escape
// hatch for the rare in-place schema mutations (Widen, AddColumn) that
// immutable segments cannot absorb. Old segment files become orphans,
// deleted after the next checkpoint commits a manifest without them.
func (t *Table) unspill() error {
	sp := t.seal
	if sp == nil {
		return nil
	}
	for {
		sp.mu.RLock()
		segs := append([]sealedSeg(nil), sp.segs...)
		sp.mu.RUnlock()
		if len(segs) == 0 {
			return nil
		}
		parts := make([][]colData, len(segs))
		for i, ss := range segs {
			data, err := sp.store.readSegment(ss.meta, t.name, t.cols)
			if err != nil {
				return fmt.Errorf("mscopedb: unspill %s: %w", t.name, err)
			}
			parts[i] = data
		}
		sp.mu.Lock()
		if !sameSegs(sp.segs, segs) {
			sp.mu.Unlock() // the compactor swapped the list mid-decode; redo
			continue
		}
		merged := make([]colData, len(t.cols))
		for ci := range t.cols {
			for _, part := range parts {
				appendCol(&merged[ci], &part[ci], t.cols[ci].Type, nil)
			}
			appendCol(&merged[ci], &t.data[ci], t.cols[ci].Type, nil)
			merged[ci].intern = t.data[ci].intern
			merged[ci].internOff = t.data[ci].internOff
		}
		files := make([]string, len(segs))
		for i, ss := range segs {
			files[i] = ss.meta.File
		}
		sp.segs = nil
		sp.rows = 0
		t.data = merged
		sp.mu.Unlock()
		sp.dropCache()
		sp.store.addOrphans(files...)
		return nil
	}
}

func sameSegs(a, b []sealedSeg) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].meta.File != b[i].meta.File {
			return false
		}
	}
	return true
}

// appendCol appends src's cells (optionally a row subset) onto dst for
// one column type.
func appendCol(dst, src *colData, typ Type, rows []int32) {
	switch typ {
	case TInt:
		if rows == nil {
			dst.Ints = append(dst.Ints, src.Ints...)
		} else {
			for _, r := range rows {
				dst.Ints = append(dst.Ints, src.Ints[r])
			}
		}
	case TFloat:
		if rows == nil {
			dst.Floats = append(dst.Floats, src.Floats...)
		} else {
			for _, r := range rows {
				dst.Floats = append(dst.Floats, src.Floats[r])
			}
		}
	case TTime:
		if rows == nil {
			dst.Times = append(dst.Times, src.Times...)
		} else {
			for _, r := range rows {
				dst.Times = append(dst.Times, src.Times[r])
			}
		}
	case TString:
		if rows == nil {
			dst.Strs = append(dst.Strs, src.Strs...)
		} else {
			for _, r := range rows {
				dst.Strs = append(dst.Strs, src.Strs[r])
			}
		}
	}
}

// fullData materializes the complete column data — sealed segments plus
// tail — for the legacy gob Save path. Value-for-value identical to what
// an in-memory ingest of the same rows would hold, so the gob images
// match byte for byte (the migration round-trip test pins this).
func (t *Table) fullData() ([]colData, error) {
	sp := t.seal
	if sp == nil {
		return t.data, nil
	}
	sp.mu.RLock()
	defer sp.mu.RUnlock()
	if len(sp.segs) == 0 {
		return t.data, nil
	}
	full := make([]colData, len(t.cols))
	for _, ss := range sp.segs {
		data, err := sp.store.readSegment(ss.meta, t.name, t.cols)
		if err != nil {
			return nil, fmt.Errorf("mscopedb: materialize %s: %w", t.name, err)
		}
		for ci := range t.cols {
			appendCol(&full[ci], &data[ci], t.cols[ci].Type, nil)
		}
	}
	for ci := range t.cols {
		appendCol(&full[ci], &t.data[ci], t.cols[ci].Type, nil)
	}
	return full, nil
}

// dropAllIndexes discards every cached sorted index (spill renumbers
// nothing, but the index holds tail-relative coordinates only for
// unsealed tables; sealed tables never index — see sortedIndex).
func (t *Table) dropAllIndexes() {
	t.idxMu.Lock()
	t.idx = nil
	t.idxMu.Unlock()
}
