package mscopedb

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Op is a predicate comparison operator.
type Op int

// Comparison operators.
const (
	OpEq Op = iota + 1
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
)

func (o Op) String() string {
	switch o {
	case OpEq:
		return "="
	case OpNe:
		return "!="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

type pred struct {
	col   int
	op    Op
	num   float64 // numeric/time comparisons
	str   string  // string comparisons
	isStr bool
}

// Query is a fluent scan over one table.
type Query struct {
	t     *Table
	preds []pred
	sort  int // column index, -1 for none
	asc   bool
	limit int
	err   error
}

// Select begins a query on the table.
func (t *Table) Select() *Query {
	return &Query{t: t, sort: -1, limit: -1, asc: true}
}

// Where adds a predicate. v may be int64, int, float64, time.Time or
// string; type mismatches surface at Rows().
func (q *Query) Where(col string, op Op, v any) *Query {
	if q.err != nil {
		return q
	}
	ci := q.t.ColIndex(col)
	if ci < 0 {
		q.err = fmt.Errorf("mscopedb: %s: no column %q", q.t.name, col)
		return q
	}
	p := pred{col: ci, op: op}
	switch x := v.(type) {
	case int:
		p.num = float64(x)
	case int64:
		p.num = float64(x)
	case float64:
		p.num = x
	case time.Duration:
		p.num = float64(x.Microseconds())
	case time.Time:
		p.num = float64(x.UnixMicro())
	case string:
		p.str = x
		p.isStr = true
	default:
		q.err = fmt.Errorf("mscopedb: %s.%s: unsupported predicate value %T", q.t.name, col, v)
		return q
	}
	if p.isStr != (q.t.cols[ci].Type == TString) {
		q.err = fmt.Errorf("mscopedb: %s.%s: predicate type %T against %v column",
			q.t.name, col, v, q.t.cols[ci].Type)
		return q
	}
	if p.isStr && op != OpEq && op != OpNe {
		q.err = fmt.Errorf("mscopedb: %s.%s: operator %v unsupported for strings", q.t.name, col, op)
		return q
	}
	q.preds = append(q.preds, p)
	return q
}

// Between adds lo <= col <= hi.
func (q *Query) Between(col string, lo, hi any) *Query {
	return q.Where(col, OpGe, lo).Where(col, OpLe, hi)
}

// OrderBy sorts the result by the column.
func (q *Query) OrderBy(col string, asc bool) *Query {
	if q.err != nil {
		return q
	}
	ci := q.t.ColIndex(col)
	if ci < 0 {
		q.err = fmt.Errorf("mscopedb: %s: no column %q", q.t.name, col)
		return q
	}
	q.sort = ci
	q.asc = asc
	return q
}

// Limit caps the result size (applied after ordering).
func (q *Query) Limit(n int) *Query {
	q.limit = n
	return q
}

// Rows executes the scan. On a spill-backed table the matches are
// materialized from disk into an ephemeral in-memory view (zone-map
// pruned, segments scanned in parallel — see spilledScan), so the Result
// behaves identically either way.
func (q *Query) Rows() (*Result, error) {
	if q.err != nil {
		return nil, q.err
	}
	t := q.t
	var idx []int
	if t.SealedRows() > 0 {
		view, err := q.spilledScan()
		if err != nil {
			return nil, err
		}
		t = view
		idx = make([]int, view.rows)
		for i := range idx {
			idx[i] = i
		}
	} else {
		idx = q.candidates()
	}
	if q.sort >= 0 {
		ci := q.sort
		if t.cols[ci].Type == TString {
			sort.SliceStable(idx, func(i, j int) bool {
				a, b := t.Str(ci, idx[i]), t.Str(ci, idx[j])
				if q.asc {
					return a < b
				}
				return a > b
			})
		} else {
			sort.SliceStable(idx, func(i, j int) bool {
				a, _ := t.numeric(ci, idx[i])
				b, _ := t.numeric(ci, idx[j])
				if q.asc {
					return a < b
				}
				return a > b
			})
		}
	}
	if q.limit >= 0 && len(idx) > q.limit {
		idx = idx[:q.limit]
	}
	return &Result{t: t, idx: idx}, nil
}

// candidates returns the matching row numbers in table order. When the
// predicates contain a lo <= col <= hi pair on an indexable column — the
// shape Between and every window query produce — the sorted column index
// narrows the scan to the candidate range by binary search; every
// predicate is still applied to every candidate, so the result is exactly
// the full scan's.
func (q *Query) candidates() []int {
	t := q.t
	if ci, lo, hi, ok := q.rangePair(); ok {
		if ix := t.sortedIndex(ci); ix != nil {
			return q.indexScan(ix, lo, hi)
		}
	}
	var idx []int
scan:
	for r := 0; r < t.rows; r++ {
		for _, p := range q.preds {
			if !p.match(t, r) {
				continue scan
			}
		}
		idx = append(idx, r)
	}
	return idx
}

// rangePair finds an OpGe + OpLe predicate pair on one int- or time-typed
// column.
func (q *Query) rangePair() (ci int, lo, hi float64, ok bool) {
	for _, p := range q.preds {
		if p.isStr || p.op != OpGe {
			continue
		}
		switch q.t.cols[p.col].Type {
		case TInt, TTime:
		default:
			continue
		}
		for _, p2 := range q.preds {
			if !p2.isStr && p2.op == OpLe && p2.col == p.col {
				return p.col, p.num, p2.num, true
			}
		}
	}
	return -1, 0, 0, false
}

// indexScan collects the rows inside [lo, hi] from the sorted index,
// restores table order, and re-applies the full predicate list.
func (q *Query) indexScan(ix *colIndex, lo, hi float64) []int {
	t := q.t
	var idx []int
	for k := sort.SearchFloat64s(ix.vals, lo); k < len(ix.vals); k++ {
		if ix.vals[k] > hi {
			break
		}
		idx = append(idx, int(ix.perm[k]))
	}
	sort.Ints(idx)
	out := idx[:0]
cand:
	for _, r := range idx {
		for _, p := range q.preds {
			if !p.match(t, r) {
				continue cand
			}
		}
		out = append(out, r)
	}
	return out
}

func (p pred) match(t *Table, row int) bool {
	if p.isStr {
		s := t.Str(p.col, row)
		if p.op == OpEq {
			return s == p.str
		}
		return s != p.str
	}
	v, ok := t.numeric(p.col, row)
	if !ok {
		return false
	}
	switch p.op {
	case OpEq:
		return v == p.num
	case OpNe:
		return v != p.num
	case OpLt:
		return v < p.num
	case OpLe:
		return v <= p.num
	case OpGt:
		return v > p.num
	case OpGe:
		return v >= p.num
	default:
		return false
	}
}

// Result is a materialized row selection.
type Result struct {
	t   *Table
	idx []int
}

// Len returns the selected row count.
func (r *Result) Len() int { return len(r.idx) }

// Table returns the underlying table.
func (r *Result) Table() *Table { return r.t }

// Ints extracts an int column.
func (r *Result) Ints(col string) ([]int64, error) {
	ci, err := r.colOfType(col, TInt)
	if err != nil {
		return nil, err
	}
	out := make([]int64, len(r.idx))
	for i, row := range r.idx {
		out[i] = r.t.Int(ci, row)
	}
	return out, nil
}

// Floats extracts a numeric column coerced to float64 (int, float or time).
func (r *Result) Floats(col string) ([]float64, error) {
	ci := r.t.ColIndex(col)
	if ci < 0 {
		return nil, fmt.Errorf("mscopedb: %s: no column %q", r.t.name, col)
	}
	if r.t.cols[ci].Type == TString {
		return nil, fmt.Errorf("mscopedb: %s.%s: string column is not numeric", r.t.name, col)
	}
	out := make([]float64, len(r.idx))
	for i, row := range r.idx {
		v, _ := r.t.numeric(ci, row)
		out[i] = v
	}
	return out, nil
}

// TimesMicros extracts a time column as microsecond epochs.
func (r *Result) TimesMicros(col string) ([]int64, error) {
	ci, err := r.colOfType(col, TTime)
	if err != nil {
		return nil, err
	}
	out := make([]int64, len(r.idx))
	for i, row := range r.idx {
		out[i] = r.t.TimeMicros(ci, row)
	}
	return out, nil
}

// Strings extracts a string column.
func (r *Result) Strings(col string) ([]string, error) {
	ci, err := r.colOfType(col, TString)
	if err != nil {
		return nil, err
	}
	out := make([]string, len(r.idx))
	for i, row := range r.idx {
		out[i] = r.t.Str(ci, row)
	}
	return out, nil
}

// Row returns row i's cells as any values, schema-ordered.
func (r *Result) Row(i int) []any {
	row := r.idx[i]
	out := make([]any, len(r.t.cols))
	for c := range r.t.cols {
		out[c] = r.t.Value(c, row)
	}
	return out
}

func (r *Result) colOfType(col string, want Type) (int, error) {
	ci := r.t.ColIndex(col)
	if ci < 0 {
		return -1, fmt.Errorf("mscopedb: %s: no column %q", r.t.name, col)
	}
	if r.t.cols[ci].Type != want {
		return -1, fmt.Errorf("mscopedb: %s.%s: is %v, want %v",
			r.t.name, col, r.t.cols[ci].Type, want)
	}
	return ci, nil
}

// AggFn is a window aggregation function.
type AggFn int

// Aggregation functions.
const (
	AggAvg AggFn = iota + 1
	AggMax
	AggMin
	AggSum
	AggCount
	AggP99
)

func (f AggFn) String() string {
	switch f {
	case AggAvg:
		return "avg"
	case AggMax:
		return "max"
	case AggMin:
		return "min"
	case AggSum:
		return "sum"
	case AggCount:
		return "count"
	case AggP99:
		return "p99"
	default:
		return fmt.Sprintf("AggFn(%d)", int(f))
	}
}

// ParseAggFn inverts AggFn.String.
func ParseAggFn(s string) (AggFn, error) {
	switch s {
	case "avg":
		return AggAvg, nil
	case "max":
		return AggMax, nil
	case "min":
		return AggMin, nil
	case "sum":
		return AggSum, nil
	case "count":
		return AggCount, nil
	case "p99":
		return AggP99, nil
	default:
		return 0, fmt.Errorf("mscopedb: unknown aggregate %q", s)
	}
}

// Series is a window-aggregated time series.
type Series struct {
	// StartMicros are the window start timestamps.
	StartMicros []int64
	// Values are the aggregated values per window.
	Values []float64
}

// WindowAgg buckets the selection by a time-like column (TTime or TInt
// microsecond epochs) into fixed windows and aggregates a value column in
// each. Empty windows between the first and last populated ones yield 0
// for count/sum and NaN-free carry of zero for the others.
func (r *Result) WindowAgg(timeCol string, window time.Duration, valCol string, fn AggFn) (*Series, error) {
	if window <= 0 {
		return nil, fmt.Errorf("mscopedb: non-positive window %v", window)
	}
	tci := r.t.ColIndex(timeCol)
	if tci < 0 {
		return nil, fmt.Errorf("mscopedb: %s: no column %q", r.t.name, timeCol)
	}
	switch r.t.cols[tci].Type {
	case TTime, TInt:
	default:
		return nil, fmt.Errorf("mscopedb: %s.%s: not a time-like column", r.t.name, timeCol)
	}
	vci := -1
	if fn != AggCount {
		vci = r.t.ColIndex(valCol)
		if vci < 0 {
			return nil, fmt.Errorf("mscopedb: %s: no column %q", r.t.name, valCol)
		}
		if r.t.cols[vci].Type == TString {
			return nil, fmt.Errorf("mscopedb: %s.%s: cannot aggregate strings", r.t.name, valCol)
		}
	}
	if len(r.idx) == 0 {
		return &Series{}, nil
	}
	w := window.Microseconds()
	timeOf := func(row int) int64 {
		if r.t.cols[tci].Type == TTime {
			return r.t.TimeMicros(tci, row)
		}
		return r.t.Int(tci, row)
	}
	// Bucket bounds first, so the grid can be laid out flat.
	var lo, hi int64
	first := true
	for _, row := range r.idx {
		b := timeOf(row) - mod(timeOf(row), w)
		if first || b < lo {
			lo = b
		}
		if first || b > hi {
			hi = b
		}
		first = false
	}
	// The output grid covers every window between the first and last
	// populated buckets, so flat accumulators of the same length cost at
	// most a small constant factor over the result itself.
	n := (hi-lo)/w + 1
	return r.windowAggDense(w, lo, n, fn, vci, timeOf), nil
}

// windowAggDense is the vectorized aggregation path: one flat
// accumulator slot per grid bucket, filled in a single pass over the
// selection (two for p99, which scatters values into per-bucket
// segments of one backing array by counting-sort offsets). No per-row
// map lookups or per-bucket slice growth.
func (r *Result) windowAggDense(w, lo, n int64, fn AggFn, vci int, timeOf func(int) int64) *Series {
	counts := make([]int64, n)
	var sums, exts []float64
	switch fn {
	case AggAvg, AggSum:
		sums = make([]float64, n)
	case AggMax, AggMin:
		exts = make([]float64, n)
		init := math.Inf(-1)
		if fn == AggMin {
			init = math.Inf(1)
		}
		for i := range exts {
			exts[i] = init
		}
	}
	val := func(row int) float64 {
		if vci < 0 {
			return 0
		}
		v, _ := r.t.numeric(vci, row)
		return v
	}
	for _, row := range r.idx {
		ts := timeOf(row)
		i := (ts - mod(ts, w) - lo) / w
		counts[i]++
		switch fn {
		case AggAvg, AggSum:
			sums[i] += val(row)
		case AggMax:
			if v := val(row); v > exts[i] {
				exts[i] = v
			}
		case AggMin:
			if v := val(row); v < exts[i] {
				exts[i] = v
			}
		}
	}
	var flat []float64
	var offs []int64
	if fn == AggP99 {
		offs = make([]int64, n+1)
		for i, c := range counts {
			offs[i+1] = offs[i] + c
		}
		flat = make([]float64, offs[n])
		fill := make([]int64, n)
		for _, row := range r.idx {
			ts := timeOf(row)
			i := (ts - mod(ts, w) - lo) / w
			flat[offs[i]+fill[i]] = val(row)
			fill[i]++
		}
	}
	s := &Series{StartMicros: make([]int64, n), Values: make([]float64, n)}
	for i := int64(0); i < n; i++ {
		s.StartMicros[i] = lo + i*w
		if fn == AggCount {
			s.Values[i] = float64(counts[i])
			continue
		}
		if counts[i] == 0 {
			continue // zero carry for empty windows, as documented
		}
		switch fn {
		case AggAvg:
			s.Values[i] = sums[i] / float64(counts[i])
		case AggSum:
			s.Values[i] = sums[i]
		case AggMax, AggMin:
			s.Values[i] = exts[i]
		case AggP99:
			seg := flat[offs[i]:offs[i+1]]
			sort.Float64s(seg)
			s.Values[i] = seg[len(seg)*99/100]
		}
	}
	return s
}

// GroupSeries is one group's window-aggregated series, keyed by the
// group-by column's value.
type GroupSeries struct {
	Key string
	Series
}

// WindowAggBy is WindowAgg partitioned by a string column: the
// selection is split into per-key row sets (cheap on interned columns —
// low-cardinality keys share backing storage) and each group is
// aggregated on its own grid. Groups return sorted by key.
func (r *Result) WindowAggBy(timeCol string, window time.Duration, valCol string, fn AggFn, byCol string) ([]GroupSeries, error) {
	bci := r.t.ColIndex(byCol)
	if bci < 0 {
		return nil, fmt.Errorf("mscopedb: %s: no column %q", r.t.name, byCol)
	}
	if r.t.cols[bci].Type != TString {
		return nil, fmt.Errorf("mscopedb: %s.%s: group-by requires a string column", r.t.name, byCol)
	}
	groups := make(map[string][]int)
	keys := make([]string, 0, 8)
	for _, row := range r.idx {
		k := r.t.Str(bci, row)
		if _, ok := groups[k]; !ok {
			keys = append(keys, k)
		}
		groups[k] = append(groups[k], row)
	}
	sort.Strings(keys)
	out := make([]GroupSeries, 0, len(keys))
	for _, k := range keys {
		sub := &Result{t: r.t, idx: groups[k]}
		s, err := sub.WindowAgg(timeCol, window, valCol, fn)
		if err != nil {
			return nil, err
		}
		out = append(out, GroupSeries{Key: k, Series: *s})
	}
	return out, nil
}

func mod(a, b int64) int64 {
	m := a % b
	if m < 0 {
		m += b
	}
	return m
}

func aggregate(fn AggFn, vals []float64) float64 {
	if fn == AggCount {
		return float64(len(vals))
	}
	if len(vals) == 0 {
		return 0
	}
	switch fn {
	case AggAvg:
		s := 0.0
		for _, v := range vals {
			s += v
		}
		return s / float64(len(vals))
	case AggMax:
		m := math.Inf(-1)
		for _, v := range vals {
			if v > m {
				m = v
			}
		}
		return m
	case AggMin:
		m := math.Inf(1)
		for _, v := range vals {
			if v < m {
				m = v
			}
		}
		return m
	case AggSum:
		s := 0.0
		for _, v := range vals {
			s += v
		}
		return s
	case AggP99:
		sorted := make([]float64, len(vals))
		copy(sorted, vals)
		sort.Float64s(sorted)
		return sorted[len(sorted)*99/100]
	default:
		panic(fmt.Sprintf("mscopedb: unknown aggregate %v", fn))
	}
}
