package mscopedb

import (
	"fmt"
	"math/rand"
	"testing"
	"time"
)

func windowTable(t *testing.T, rows int, spanUS int64, seed int64) *Table {
	t.Helper()
	tbl, err := NewTable("wa_event", []Column{
		{Name: "ts", Type: TInt},
		{Name: "v", Type: TFloat},
		{Name: "tier", Type: TString},
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	tiers := []string{"apache", "tomcat", "cjdbc", "mysql"}
	for i := 0; i < rows; i++ {
		ts := rng.Int63n(spanUS)
		if err := tbl.Append(ts, rng.Float64()*1000, tiers[rng.Intn(len(tiers))]); err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

// TestWindowAggDenseMatchesSparse pins the vectorized flat-grid path to
// the reference per-bucket-slice semantics on every aggregate function.
func TestWindowAggDenseMatchesSparse(t *testing.T) {
	tbl := windowTable(t, 5000, 2_000_000, 7)
	res, err := tbl.Select().Rows()
	if err != nil {
		t.Fatal(err)
	}
	w := 50 * time.Millisecond
	for _, fn := range []AggFn{AggAvg, AggMax, AggMin, AggSum, AggCount, AggP99} {
		got, err := res.WindowAgg("ts", w, "v", fn)
		if err != nil {
			t.Fatalf("%v: %v", fn, err)
		}
		want := referenceWindowAgg(res, w.Microseconds(), fn)
		if len(got.Values) != len(want.Values) {
			t.Fatalf("%v: %d windows, want %d", fn, len(got.Values), len(want.Values))
		}
		for i := range got.Values {
			if got.StartMicros[i] != want.StartMicros[i] || got.Values[i] != want.Values[i] {
				t.Errorf("%v window %d: (%d, %g), want (%d, %g)",
					fn, i, got.StartMicros[i], got.Values[i], want.StartMicros[i], want.Values[i])
			}
		}
	}
}

// referenceWindowAgg is the pre-vectorization per-bucket-slice
// implementation, kept as the differential oracle for the flat-grid
// path. Column layout: ts at 0, v at 1.
func referenceWindowAgg(r *Result, w int64, fn AggFn) *Series {
	buckets := make(map[int64][]float64)
	var lo, hi int64
	first := true
	for _, row := range r.idx {
		ts := r.t.Int(0, row)
		b := ts - mod(ts, w)
		var v float64
		if fn != AggCount {
			v, _ = r.t.numeric(1, row)
		}
		buckets[b] = append(buckets[b], v)
		if first || b < lo {
			lo = b
		}
		if first || b > hi {
			hi = b
		}
		first = false
	}
	var s Series
	for b := lo; b <= hi; b += w {
		s.StartMicros = append(s.StartMicros, b)
		s.Values = append(s.Values, aggregate(fn, buckets[b]))
	}
	return &s
}

// TestWindowAggGapWindows checks empty windows between populated
// buckets are materialized on the grid and zero-filled.
func TestWindowAggGapWindows(t *testing.T) {
	tbl, err := NewTable("gap_event", []Column{
		{Name: "ts", Type: TInt},
		{Name: "v", Type: TFloat},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Two rows 10s apart on a 50ms grid: 201 windows, 199 of them empty.
	for _, ts := range []int64{0, 10_000_000} {
		if err := tbl.Append(ts, 1.0); err != nil {
			t.Fatal(err)
		}
	}
	res, err := tbl.Select().Rows()
	if err != nil {
		t.Fatal(err)
	}
	s, err := res.WindowAgg("ts", 50*time.Millisecond, "v", AggSum)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Values) != 201 {
		t.Fatalf("got %d windows, want 201", len(s.Values))
	}
	if s.Values[0] != 1.0 || s.Values[200] != 1.0 {
		t.Fatalf("endpoint windows = %g, %g, want 1, 1", s.Values[0], s.Values[200])
	}
	for i := 1; i < 200; i++ {
		if s.Values[i] != 0 {
			t.Fatalf("empty window %d holds %g, want 0", i, s.Values[i])
		}
	}
}

func TestWindowAggEdgeCases(t *testing.T) {
	tbl, err := NewTable("edge_event", []Column{
		{Name: "ts", Type: TInt},
		{Name: "v", Type: TFloat},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := tbl.Select().Rows()
	if err != nil {
		t.Fatal(err)
	}
	// Empty selection yields an empty series, not an error.
	s, err := res.WindowAgg("ts", time.Millisecond, "v", AggMax)
	if err != nil || len(s.Values) != 0 {
		t.Fatalf("empty selection: series %v err %v, want empty and nil", s.Values, err)
	}
	// Single row yields a single window holding that row's value.
	if err := tbl.Append(int64(1234), 42.0); err != nil {
		t.Fatal(err)
	}
	res, err = tbl.Select().Rows()
	if err != nil {
		t.Fatal(err)
	}
	s, err = res.WindowAgg("ts", time.Millisecond, "v", AggMax)
	if err != nil || len(s.Values) != 1 || s.Values[0] != 42.0 || s.StartMicros[0] != 1000 {
		t.Fatalf("single row: %+v err %v, want one window [1000]=42", s, err)
	}
	// Non-positive window is rejected.
	if _, err := res.WindowAgg("ts", 0, "v", AggMax); err == nil {
		t.Fatal("zero window accepted")
	}
	// Unknown columns are rejected.
	if _, err := res.WindowAgg("nope", time.Millisecond, "v", AggMax); err == nil {
		t.Fatal("unknown time column accepted")
	}
	if _, err := res.WindowAgg("ts", time.Millisecond, "nope", AggMax); err == nil {
		t.Fatal("unknown value column accepted")
	}
}

func TestWindowAggBy(t *testing.T) {
	tbl := windowTable(t, 3000, 500_000, 11)
	res, err := tbl.Select().Rows()
	if err != nil {
		t.Fatal(err)
	}
	groups, err := res.WindowAggBy("ts", 50*time.Millisecond, "v", AggCount, "tier")
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 4 {
		t.Fatalf("got %d groups, want 4", len(groups))
	}
	for i := 1; i < len(groups); i++ {
		if groups[i-1].Key >= groups[i].Key {
			t.Fatalf("groups not sorted by key: %q before %q", groups[i-1].Key, groups[i].Key)
		}
	}
	// Group totals must conserve the selection: every row lands in
	// exactly one (key, window) cell.
	total := 0.0
	for _, g := range groups {
		for _, v := range g.Values {
			total += v
		}
	}
	if total != 3000 {
		t.Fatalf("grouped counts sum to %g, want 3000", total)
	}
	// Each group's series must equal a WHERE-filtered WindowAgg.
	for _, g := range groups {
		fres, err := tbl.Select().Where("tier", OpEq, g.Key).Rows()
		if err != nil {
			t.Fatal(err)
		}
		want, err := fres.WindowAgg("ts", 50*time.Millisecond, "v", AggCount)
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(g.Series) != fmt.Sprint(*want) {
			t.Errorf("group %q diverges from filtered WindowAgg", g.Key)
		}
	}
	// Group-by over a numeric column is rejected.
	if _, err := res.WindowAggBy("ts", time.Millisecond, "v", AggCount, "v"); err == nil {
		t.Fatal("numeric group-by column accepted")
	}
	if _, err := res.WindowAggBy("ts", time.Millisecond, "v", AggCount, "nope"); err == nil {
		t.Fatal("unknown group-by column accepted")
	}
}
