package mscopedb

import (
	"math"
	"path/filepath"
	"testing"
	"testing/quick"
	"time"
)

func sampleTable(t *testing.T) *Table {
	t.Helper()
	tbl, err := NewTable("ev", []Column{
		{Name: "ts", Type: TTime},
		{Name: "reqid", Type: TString},
		{Name: "rt_us", Type: TInt},
		{Name: "util", Type: TFloat},
	})
	if err != nil {
		t.Fatal(err)
	}
	base := time.Date(2017, 4, 1, 0, 0, 0, 0, time.UTC)
	rows := []struct {
		off time.Duration
		id  string
		rt  int64
		u   float64
	}{
		{0, "req-1", 5000, 10},
		{20 * time.Millisecond, "req-2", 7000, 20},
		{60 * time.Millisecond, "req-3", 90000, 95},
		{110 * time.Millisecond, "req-4", 6000, 15},
		{130 * time.Millisecond, "req-5", 4000, 12},
	}
	for _, r := range rows {
		if err := tbl.Append(base.Add(r.off), r.id, r.rt, r.u); err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

func TestTableValidation(t *testing.T) {
	if _, err := NewTable("", []Column{{Name: "a", Type: TInt}}); err == nil {
		t.Fatal("empty name accepted")
	}
	if _, err := NewTable("x", nil); err == nil {
		t.Fatal("no columns accepted")
	}
	if _, err := NewTable("x", []Column{{Name: "a", Type: TInt}, {Name: "a", Type: TInt}}); err == nil {
		t.Fatal("duplicate column accepted")
	}
	if _, err := NewTable("x", []Column{{Name: "a", Type: Type(9)}}); err == nil {
		t.Fatal("invalid type accepted")
	}
}

func TestAppendTypeMismatch(t *testing.T) {
	tbl := sampleTable(t)
	if err := tbl.Append("not-a-time", "id", int64(1), 1.0); err == nil {
		t.Fatal("type mismatch accepted")
	}
	if err := tbl.Append(time.Now()); err == nil {
		t.Fatal("arity mismatch accepted")
	}
}

func TestAppendStrings(t *testing.T) {
	tbl, err := NewTable("x", []Column{
		{Name: "ts", Type: TTime},
		{Name: "n", Type: TInt},
		{Name: "f", Type: TFloat},
		{Name: "s", Type: TString},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.AppendStrings([]string{"2017-04-01T00:00:12.345678Z", "42", "3.14", "hello"}); err != nil {
		t.Fatal(err)
	}
	if err := tbl.AppendStrings([]string{"", "", "", ""}); err != nil {
		t.Fatal(err)
	}
	if tbl.Rows() != 2 {
		t.Fatalf("rows %d", tbl.Rows())
	}
	if tbl.Int(1, 0) != 42 || tbl.Float(2, 0) != 3.14 || tbl.Str(3, 0) != "hello" {
		t.Fatal("values wrong")
	}
	wantUS := time.Date(2017, 4, 1, 0, 0, 12, 345678000, time.UTC).UnixMicro()
	if tbl.TimeMicros(0, 0) != wantUS {
		t.Fatalf("time micros %d, want %d", tbl.TimeMicros(0, 0), wantUS)
	}
	if tbl.Int(1, 1) != 0 || tbl.Str(3, 1) != "" {
		t.Fatal("empty cells not zero-valued")
	}
	if err := tbl.AppendStrings([]string{"x", "1", "1", "1"}); err == nil {
		t.Fatal("bad time accepted")
	}
}

func TestQueryFilters(t *testing.T) {
	tbl := sampleTable(t)
	res, err := tbl.Select().Where("rt_us", OpGt, int64(6000)).Rows()
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 {
		t.Fatalf("rt>6000 returned %d rows", res.Len())
	}
	res, err = tbl.Select().Where("reqid", OpEq, "req-3").Rows()
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 {
		t.Fatalf("string eq returned %d rows", res.Len())
	}
	ids, err := res.Strings("reqid")
	if err != nil || ids[0] != "req-3" {
		t.Fatalf("ids %v err %v", ids, err)
	}
}

func TestQueryBetweenTime(t *testing.T) {
	tbl := sampleTable(t)
	base := time.Date(2017, 4, 1, 0, 0, 0, 0, time.UTC)
	res, err := tbl.Select().
		Between("ts", base.Add(10*time.Millisecond), base.Add(120*time.Millisecond)).
		Rows()
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 3 {
		t.Fatalf("time range returned %d rows", res.Len())
	}
}

func TestQueryOrderLimit(t *testing.T) {
	tbl := sampleTable(t)
	res, err := tbl.Select().OrderBy("rt_us", false).Limit(2).Rows()
	if err != nil {
		t.Fatal(err)
	}
	rts, err := res.Ints("rt_us")
	if err != nil {
		t.Fatal(err)
	}
	if len(rts) != 2 || rts[0] != 90000 || rts[1] != 7000 {
		t.Fatalf("order/limit wrong: %v", rts)
	}
}

func TestQueryErrors(t *testing.T) {
	tbl := sampleTable(t)
	if _, err := tbl.Select().Where("nope", OpEq, int64(1)).Rows(); err == nil {
		t.Fatal("unknown column accepted")
	}
	if _, err := tbl.Select().Where("reqid", OpLt, "a").Rows(); err == nil {
		t.Fatal("string < accepted")
	}
	if _, err := tbl.Select().Where("rt_us", OpEq, "str").Rows(); err == nil {
		t.Fatal("string predicate on int column accepted")
	}
	if _, err := tbl.Select().OrderBy("nope", true).Rows(); err == nil {
		t.Fatal("unknown order column accepted")
	}
}

func TestWindowAgg(t *testing.T) {
	tbl := sampleTable(t)
	res, err := tbl.Select().Rows()
	if err != nil {
		t.Fatal(err)
	}
	s, err := res.WindowAgg("ts", 50*time.Millisecond, "rt_us", AggMax)
	if err != nil {
		t.Fatal(err)
	}
	// Rows at 0,20 | 60 | 110,130 → 3 windows: max 7000, 90000, 6000.
	if len(s.Values) != 3 {
		t.Fatalf("%d windows: %+v", len(s.Values), s)
	}
	want := []float64{7000, 90000, 6000}
	for i, w := range want {
		if s.Values[i] != w {
			t.Fatalf("window %d = %v, want %v", i, s.Values[i], w)
		}
	}
	c, err := res.WindowAgg("ts", 50*time.Millisecond, "", AggCount)
	if err != nil {
		t.Fatal(err)
	}
	if c.Values[0] != 2 || c.Values[1] != 1 || c.Values[2] != 2 {
		t.Fatalf("counts %v", c.Values)
	}
}

func TestWindowAggOnIntMicros(t *testing.T) {
	tbl, err := NewTable("x", []Column{
		{Name: "ua", Type: TInt},
		{Name: "v", Type: TFloat},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := tbl.Append(int64(i*10_000), float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	res, err := tbl.Select().Rows()
	if err != nil {
		t.Fatal(err)
	}
	s, err := res.WindowAgg("ua", 50*time.Millisecond, "v", AggSum)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Values) != 2 || s.Values[0] != 0+1+2+3+4 || s.Values[1] != 5+6+7+8+9 {
		t.Fatalf("int window agg: %+v", s)
	}
}

func TestAggregateFns(t *testing.T) {
	vals := []float64{1, 2, 3, 4, 100}
	cases := map[AggFn]float64{
		AggAvg: 22, AggMax: 100, AggMin: 1, AggSum: 110, AggP99: 100,
	}
	for fn, want := range cases {
		if got := aggregate(fn, vals); math.Abs(got-want) > 1e-9 {
			t.Fatalf("%v = %v, want %v", fn, got, want)
		}
	}
	if aggregate(AggCount, vals) != 5 {
		t.Fatal("count wrong")
	}
	if aggregate(AggMax, nil) != 0 {
		t.Fatal("empty max not zero")
	}
}

func TestDBStaticTables(t *testing.T) {
	db := Open()
	names := db.TableNames()
	if len(names) != 4 {
		t.Fatalf("fresh db has %d tables", len(names))
	}
	id, err := db.RecordExperiment("fig2", time.Now().UTC(), 42, 1000, time.Minute, "read-write")
	if err != nil {
		t.Fatal(err)
	}
	if id != 1 {
		t.Fatalf("experiment id %d", id)
	}
	if err := db.RecordNode(id, "apache", "web", 8, 200); err != nil {
		t.Fatal(err)
	}
	if err := db.RecordMonitor(id, "apache", "collectl-csv", "/x.csv"); err != nil {
		t.Fatal(err)
	}
	if err := db.RecordIngest("apache_event", "/x.log", 100, time.Now().UTC()); err != nil {
		t.Fatal(err)
	}
}

func TestDBCreateDropTable(t *testing.T) {
	db := Open()
	if _, err := db.Create("t1", []Column{{Name: "a", Type: TInt}}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Create("t1", []Column{{Name: "a", Type: TInt}}); err == nil {
		t.Fatal("duplicate create accepted")
	}
	if _, err := db.Table("t1"); err != nil {
		t.Fatal(err)
	}
	if err := db.Drop("t1"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Table("t1"); err == nil {
		t.Fatal("dropped table still present")
	}
	if err := db.Drop(TableExperiments); err == nil {
		t.Fatal("static table drop accepted")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	db := Open()
	tbl, err := db.Create("ev", []Column{
		{Name: "ts", Type: TTime},
		{Name: "reqid", Type: TString},
		{Name: "rt", Type: TInt},
	})
	if err != nil {
		t.Fatal(err)
	}
	base := time.Date(2017, 4, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 100; i++ {
		if err := tbl.Append(base.Add(time.Duration(i)*time.Millisecond), "req", int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	path := filepath.Join(t.TempDir(), "db.gob")
	if err := db.Save(path); err != nil {
		t.Fatal(err)
	}
	db2, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	tbl2, err := db2.Table("ev")
	if err != nil {
		t.Fatal(err)
	}
	if tbl2.Rows() != 100 {
		t.Fatalf("loaded rows %d", tbl2.Rows())
	}
	if tbl2.Int(2, 57) != 57 {
		t.Fatal("loaded value wrong")
	}
	if tbl2.TimeMicros(0, 3) != base.Add(3*time.Millisecond).UnixMicro() {
		t.Fatal("loaded time wrong")
	}
}

func TestLoadMissing(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "nope.gob")); err == nil {
		t.Fatal("missing file accepted")
	}
}

// Property: query engine equals a naive filter for random int data.
func TestQueryMatchesNaiveProperty(t *testing.T) {
	f := func(vals []int16, threshold int16) bool {
		tbl, err := NewTable("p", []Column{{Name: "v", Type: TInt}})
		if err != nil {
			return false
		}
		naive := 0
		for _, v := range vals {
			if err := tbl.Append(int64(v)); err != nil {
				return false
			}
			if int64(v) > int64(threshold) {
				naive++
			}
		}
		res, err := tbl.Select().Where("v", OpGt, int64(threshold)).Rows()
		if err != nil {
			return false
		}
		return res.Len() == naive
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkScanFilter(b *testing.B) {
	tbl, err := NewTable("b", []Column{
		{Name: "ua", Type: TInt},
		{Name: "rt", Type: TInt},
	})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 100000; i++ {
		if err := tbl.Append(int64(i), int64(i%1000)); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := tbl.Select().Where("rt", OpGt, int64(990)).Rows()
		if err != nil || res.Len() == 0 {
			b.Fatalf("err=%v len=%d", err, res.Len())
		}
	}
}
