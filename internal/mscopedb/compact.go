package mscopedb

import (
	"fmt"
	"sync"
	"time"
)

// Segment consolidation. Per-file checkpoints and live seal thresholds
// produce many small segments (the ledger especially: a few rows per
// checkpoint); the compactor merges adjacent runs of small segments into
// larger ones so segment-count — and with it open-file churn and
// per-segment scan overhead — stays bounded on long retentions.
//
// Compaction is crash-safe by construction: the merged segment is written
// (temp-file + rename) before the in-memory swap, the input files are
// only scheduled for deletion, and the next Checkpoint's manifest rename
// commits the new layout and deletes the inputs. A crash at any point
// reopens to the last committed manifest, whose files all still exist —
// at worst the merge is redone.

// compactTestHook, when set (from tests via export_test.go), runs after
// the merged segment file is written but before the in-memory swap — the
// widest window a crash can hit.
var compactTestHook func(table string)

// CompactOnce merges at most one run of small adjacent segments per
// table and reports whether anything was merged. The new layout becomes
// durable at the next Checkpoint; callers that want it committed
// immediately (the offline `mscope compact`) follow with one.
func (db *DB) CompactOnce() (bool, error) {
	if db.store == nil {
		return false, nil
	}
	db.mu.RLock()
	tables := make([]*Table, 0, len(db.tables))
	for _, t := range db.tables {
		tables = append(tables, t)
	}
	db.mu.RUnlock()
	merged := false
	for _, t := range tables {
		did, err := t.compactOnce()
		if err != nil {
			return merged, fmt.Errorf("mscopedb: compact %s: %w", t.name, err)
		}
		merged = merged || did
	}
	return merged, nil
}

// Compact runs CompactOnce until the layout is stable, then checkpoints.
func (db *DB) Compact() error {
	for {
		did, err := db.CompactOnce()
		if err != nil {
			return err
		}
		if !did {
			return db.Checkpoint()
		}
	}
}

// StartCompactor runs CompactOnce every interval on a background
// goroutine until the returned stop function is called. Errors go to
// onErr (may be nil). A no-op for in-memory warehouses.
func (db *DB) StartCompactor(interval time.Duration, onErr func(error)) (stop func()) {
	if db.store == nil {
		return func() {}
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				if _, err := db.CompactOnce(); err != nil && onErr != nil {
					onErr(err)
				}
			}
		}
	}()
	return func() { close(done); wg.Wait() }
}

// compactOnce merges the table's first eligible run of small segments.
func (t *Table) compactOnce() (bool, error) {
	sp := t.seal
	if sp == nil {
		return false, nil
	}
	st := sp.store
	sp.mu.RLock()
	segs := append([]sealedSeg(nil), sp.segs...)
	sp.mu.RUnlock()
	lo, hi, ok := findRun(segs, st.opts)
	if !ok {
		return false, nil
	}
	run := segs[lo : hi+1]

	// Merge outside every lock: the inputs are immutable files.
	data := make([]colData, len(t.cols))
	rows := 0
	for _, ss := range run {
		part, err := st.readSegment(ss.meta, t.name, t.cols)
		if err != nil {
			return false, err
		}
		for ci := range t.cols {
			appendCol(&data[ci], &part[ci], t.cols[ci].Type, nil)
		}
		rows += ss.meta.Rows
	}
	img, zones, err := encodeSegment(t.name, t.cols, data, rows)
	if err != nil {
		return false, err
	}
	file, err := st.writeSegment(t.name, img)
	if err != nil {
		return false, err
	}
	if compactTestHook != nil {
		compactTestHook(t.name)
	}
	mergedSeg := sealedSeg{
		meta:  segMeta{File: file, Rows: rows, Bytes: int64(len(img)), Zones: zones},
		start: run[0].start,
	}

	// Swap and orphan-registration exclude Checkpoint (store.mu), so a
	// concurrent commit either snapshots the old layout with its files
	// intact or the new one — never old names scheduled for deletion.
	st.mu.Lock()
	sp.mu.Lock()
	if len(sp.segs) < hi+1 || !sameSegs(sp.segs[lo:hi+1], run) {
		// An unspill (or racing layout change) invalidated the run; the
		// merged file was never referenced, drop it at the next commit.
		sp.mu.Unlock()
		st.orphans = append(st.orphans, file)
		st.mu.Unlock()
		return false, nil
	}
	next := make([]sealedSeg, 0, len(sp.segs)-(hi-lo))
	next = append(next, sp.segs[:lo]...)
	next = append(next, mergedSeg)
	next = append(next, sp.segs[hi+1:]...) // starts unchanged: same total rows
	sp.segs = next
	sp.mu.Unlock()
	for _, ss := range run {
		st.orphans = append(st.orphans, ss.meta.File)
	}
	st.mu.Unlock()
	sp.dropCache()
	return true, nil
}

// findRun locates the first adjacent run of at least CompactMinSegs
// segments, each smaller than CompactTargetRows, stopping once the run
// reaches the target size.
func findRun(segs []sealedSeg, opts StoreOptions) (lo, hi int, ok bool) {
	for i := 0; i < len(segs); {
		if segs[i].meta.Rows >= opts.CompactTargetRows {
			i++
			continue
		}
		j, sum := i, 0
		for j < len(segs) && segs[j].meta.Rows < opts.CompactTargetRows && sum < opts.CompactTargetRows {
			sum += segs[j].meta.Rows
			j++
		}
		if j-i >= opts.CompactMinSegs {
			return i, j - 1, true
		}
		i = j
	}
	return 0, 0, false
}
