package mscopedb

import (
	"fmt"
	"runtime"
	"sync"
)

// spilledScan executes a predicate scan over a spill-backed table and
// materializes the matches into an ephemeral in-memory view table, in
// global append order (sealed segments first, tail last — exactly the
// order candidates() yields on an in-memory table). The view has no seal,
// so everything downstream of Rows() — OrderBy, Limit, the vectorized
// WindowAgg path — runs at full in-memory speed over just the matches.
//
// Per-segment work is pruned then parallelized: a segment whose zone map
// proves a predicate unsatisfiable is never read, and the survivors are
// decoded and filtered by one worker each (capped at GOMAXPROCS), the way
// the ingest side fans out per file.
func (q *Query) spilledScan() (*Table, error) {
	view, err := q.spilledScanOnce()
	if err != nil {
		// The compactor may have merged segment files out from under the
		// snapshot; one retry re-snapshots the fresh list.
		view, err = q.spilledScanOnce()
	}
	return view, err
}

func (q *Query) spilledScanOnce() (*Table, error) {
	t := q.t
	sp := t.seal

	// One consistent snapshot of the physical layout: segment list, seal
	// boundary, and tail slice headers move together under the write lock.
	sp.mu.RLock()
	segs := append([]sealedSeg(nil), sp.segs...)
	sealed := sp.rows
	tailRows := t.rows - sealed
	tailData := append([]colData(nil), t.data...)
	sp.mu.RUnlock()

	// Zone-map pruning: drop every segment some predicate proves empty.
	survivors := segs[:0:0]
	for _, ss := range segs {
		excluded := false
		for _, p := range q.preds {
			if p.isStr {
				continue
			}
			if ss.meta.Zones[p.col].excludes(p.op, p.num) {
				excluded = true
				break
			}
		}
		if excluded {
			statSegsPruned.Add(1)
			continue
		}
		survivors = append(survivors, ss)
	}

	// Decode + filter + gather each surviving segment in parallel.
	parts := make([][]colData, len(survivors))
	counts := make([]int, len(survivors))
	errs := make([]error, len(survivors))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(survivors) {
		workers = len(survivors)
	}
	if workers > 1 {
		jobs := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range jobs {
					parts[i], counts[i], errs[i] = q.scanSegment(sp, survivors[i])
				}
			}()
		}
		for i := range survivors {
			jobs <- i
		}
		close(jobs)
		wg.Wait()
	} else {
		for i := range survivors {
			parts[i], counts[i], errs[i] = q.scanSegment(sp, survivors[i])
		}
	}
	for _, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("mscopedb: scan %s: %w", t.name, err)
		}
	}

	// Tail filter, on the snapshotted slice headers.
	tailMatch := matchRows(t.cols, tailData, tailRows, q.preds)

	total := len(tailMatch)
	for _, c := range counts {
		total += c
	}
	data := make([]colData, len(t.cols))
	for ci := range t.cols {
		for _, part := range parts {
			if part != nil {
				appendCol(&data[ci], &part[ci], t.cols[ci].Type, nil)
			}
		}
		appendCol(&data[ci], &tailData[ci], t.cols[ci].Type, tailMatch)
	}
	// The view shares the (immutable) schema with its parent.
	return &Table{name: t.name, cols: t.cols, colIdx: t.colIdx, data: data, rows: total}, nil
}

// scanSegment decodes one segment and gathers its matching rows.
func (q *Query) scanSegment(sp *sealedPart, ss sealedSeg) ([]colData, int, error) {
	t := q.t
	raw, err := sp.store.readSegment(ss.meta, t.name, t.cols)
	if err != nil {
		return nil, 0, err
	}
	statSegsScanned.Add(1)
	match := matchRows(t.cols, raw, ss.meta.Rows, q.preds)
	if len(match) == 0 {
		return nil, 0, nil
	}
	out := make([]colData, len(t.cols))
	for ci := range t.cols {
		appendCol(&out[ci], &raw[ci], t.cols[ci].Type, match)
	}
	return out, len(match), nil
}

// matchRows applies the predicate list to raw column data and returns the
// matching local row numbers, coercing cells exactly as pred.match does
// on a live table.
func matchRows(cols []Column, data []colData, nrows int, preds []pred) []int32 {
	var out []int32
scan:
	for r := 0; r < nrows; r++ {
		for _, p := range preds {
			if !matchCell(cols[p.col].Type, &data[p.col], r, p) {
				continue scan
			}
		}
		out = append(out, int32(r))
	}
	return out
}

func matchCell(typ Type, d *colData, row int, p pred) bool {
	if p.isStr {
		if typ != TString {
			return false
		}
		if p.op == OpEq {
			return d.Strs[row] == p.str
		}
		return d.Strs[row] != p.str
	}
	var v float64
	switch typ {
	case TInt:
		v = float64(d.Ints[row])
	case TFloat:
		v = d.Floats[row]
	case TTime:
		v = float64(d.Times[row])
	default:
		return false
	}
	switch p.op {
	case OpEq:
		return v == p.num
	case OpNe:
		return v != p.num
	case OpLt:
		return v < p.num
	case OpLe:
		return v <= p.num
	case OpGt:
		return v > p.num
	case OpGe:
		return v >= p.num
	default:
		return false
	}
}
