package mscopedb

import (
	"sync"
	"testing"
	"time"
)

func TestSizeBytes(t *testing.T) {
	tbl, err := NewTable("s", []Column{
		{Name: "n", Type: TInt},
		{Name: "f", Type: TFloat},
		{Name: "ts", Type: TTime},
		{Name: "s", Type: TString},
	})
	if err != nil {
		t.Fatal(err)
	}
	if tbl.SizeBytes() != 0 {
		t.Fatal("empty table has non-zero size")
	}
	for i := 0; i < 10; i++ {
		if err := tbl.Append(int64(i), float64(i), time.Now().UTC(), "abcde"); err != nil {
			t.Fatal(err)
		}
	}
	// 10 rows * (3 numeric * 8 + (5 + 16) string) = 450.
	if got := tbl.SizeBytes(); got != 450 {
		t.Fatalf("SizeBytes = %d, want 450", got)
	}
}

// TestConcurrentReaders exercises the catalog's RWMutex: concurrent
// lookups and scans while tables already exist must be race-free
// (run with -race in CI).
func TestConcurrentReaders(t *testing.T) {
	db := Open()
	tbl, err := db.Create("c", []Column{{Name: "v", Type: TInt}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if err := tbl.Append(int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				tt, err := db.Table("c")
				if err != nil {
					t.Error(err)
					return
				}
				res, err := tt.Select().Where("v", OpGt, int64(500)).Rows()
				if err != nil || res.Len() != 499 {
					t.Errorf("len=%d err=%v", res.Len(), err)
					return
				}
				_ = db.TableNames()
			}
		}()
	}
	wg.Wait()
}

func TestOpNeAndStrings(t *testing.T) {
	tbl, err := NewTable("x", []Column{
		{Name: "k", Type: TString},
		{Name: "v", Type: TInt},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range []string{"a", "b", "a", "c"} {
		if err := tbl.Append(k, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	res, err := tbl.Select().Where("k", OpNe, "a").Rows()
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 {
		t.Fatalf("!=a rows %d", res.Len())
	}
	// Order by string.
	res, err = tbl.Select().OrderBy("k", false).Rows()
	if err != nil {
		t.Fatal(err)
	}
	ks, err := res.Strings("k")
	if err != nil {
		t.Fatal(err)
	}
	if ks[0] != "c" || ks[3] != "a" {
		t.Fatalf("string order %v", ks)
	}
}

func TestResultTypedExtractErrors(t *testing.T) {
	tbl, err := NewTable("x", []Column{
		{Name: "k", Type: TString},
		{Name: "v", Type: TInt},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.Append("a", int64(1)); err != nil {
		t.Fatal(err)
	}
	res, err := tbl.Select().Rows()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res.Ints("k"); err == nil {
		t.Fatal("Ints on string column accepted")
	}
	if _, err := res.Strings("v"); err == nil {
		t.Fatal("Strings on int column accepted")
	}
	if _, err := res.Floats("k"); err == nil {
		t.Fatal("Floats on string column accepted")
	}
	if _, err := res.TimesMicros("v"); err == nil {
		t.Fatal("TimesMicros on int column accepted")
	}
	if _, err := res.Ints("nope"); err == nil {
		t.Fatal("unknown column accepted")
	}
}

func TestWindowAggErrors(t *testing.T) {
	tbl, err := NewTable("x", []Column{
		{Name: "k", Type: TString},
		{Name: "v", Type: TInt},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := tbl.Select().Rows()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res.WindowAgg("k", time.Second, "v", AggMax); err == nil {
		t.Fatal("string time column accepted")
	}
	if _, err := res.WindowAgg("v", 0, "v", AggMax); err == nil {
		t.Fatal("zero window accepted")
	}
	if _, err := res.WindowAgg("v", time.Second, "k", AggMax); err == nil {
		t.Fatal("string aggregation accepted")
	}
	if _, err := res.WindowAgg("v", time.Second, "nope", AggMax); err == nil {
		t.Fatal("unknown value column accepted")
	}
	// Empty selection yields an empty series, not an error.
	s, err := res.WindowAgg("v", time.Second, "v", AggMax)
	if err != nil || len(s.Values) != 0 {
		t.Fatalf("empty selection: %v %v", s, err)
	}
}

func TestParseHelpers(t *testing.T) {
	for _, name := range []string{"int", "float", "time", "string"} {
		typ, err := ParseType(name)
		if err != nil || typ.String() != name {
			t.Fatalf("ParseType(%s) = %v, %v", name, typ, err)
		}
	}
	if _, err := ParseType("bogus"); err == nil {
		t.Fatal("bogus type accepted")
	}
	for _, name := range []string{"avg", "max", "min", "sum", "count", "p99"} {
		fn, err := ParseAggFn(name)
		if err != nil || fn.String() != name {
			t.Fatalf("ParseAggFn(%s) = %v, %v", name, fn, err)
		}
	}
	if _, err := ParseAggFn("median"); err == nil {
		t.Fatal("unknown agg accepted")
	}
}

func TestOpString(t *testing.T) {
	cases := map[Op]string{
		OpEq: "=", OpNe: "!=", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=",
	}
	for op, want := range cases {
		if op.String() != want {
			t.Fatalf("%d → %q, want %q", int(op), op.String(), want)
		}
	}
}
