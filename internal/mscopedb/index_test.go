package mscopedb

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"
	"time"
	"unsafe"
)

// indexTestTable builds a table big enough to trigger the sorted index,
// with duplicate and out-of-order timestamps so candidate re-ordering and
// tie stability actually matter.
func indexTestTable(t *testing.T, rows int) *Table {
	t.Helper()
	tbl, err := NewTable("probe", []Column{
		{Name: "ts", Type: TTime},
		{Name: "val", Type: TInt},
		{Name: "tier", Type: TString},
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	base := time.Unix(1_700_000_000, 0).UTC()
	tiers := []string{"apache", "tomcat", "cjdbc", "mysql"}
	for i := 0; i < rows; i++ {
		// Mostly increasing with jitter, plus frequent exact duplicates.
		ts := base.Add(time.Duration(i/3) * time.Millisecond)
		if rng.Intn(5) == 0 {
			ts = ts.Add(-time.Duration(rng.Intn(40)) * time.Millisecond)
		}
		if err := tbl.Append(ts, int64(rng.Intn(1000)), tiers[i%len(tiers)]); err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

// scanRows is the reference implementation: the pre-index full scan.
func scanRows(t *testing.T, q *Query) []int {
	t.Helper()
	var idx []int
scan:
	for r := 0; r < q.t.rows; r++ {
		for _, p := range q.preds {
			if !p.match(q.t, r) {
				continue scan
			}
		}
		idx = append(idx, r)
	}
	return idx
}

// TestBetweenIndexMatchesScan is the differential test for the sorted
// index: every Between window, with and without extra predicates, must
// select exactly the rows a full scan selects, in the same order —
// including after appends staled the index and after Widen invalidated it.
func TestBetweenIndexMatchesScan(t *testing.T) {
	tbl := indexTestTable(t, 2000)
	base := time.Unix(1_700_000_000, 0).UTC()
	check := func(label string, mk func() *Query) {
		t.Helper()
		q := mk()
		if q.err != nil {
			t.Fatalf("%s: %v", label, q.err)
		}
		want := scanRows(t, q)
		got := q.candidates()
		if fmt.Sprintf("%v", got) != fmt.Sprintf("%v", want) {
			t.Fatalf("%s: index gave %d rows, scan %d rows\nindex %v\nscan  %v",
				label, len(got), len(want), got, want)
		}
	}
	windows := []struct{ lo, hi time.Duration }{
		{0, 100 * time.Millisecond},
		{50 * time.Millisecond, 60 * time.Millisecond},
		{-time.Second, 2 * time.Second},                  // everything
		{3 * time.Second, 4 * time.Second},               // nothing
		{100 * time.Millisecond, 100 * time.Millisecond}, // point window
	}
	for _, w := range windows {
		w := w
		check(fmt.Sprintf("between %v..%v", w.lo, w.hi), func() *Query {
			return tbl.Select().Between("ts", base.Add(w.lo), base.Add(w.hi))
		})
		check(fmt.Sprintf("between+preds %v..%v", w.lo, w.hi), func() *Query {
			return tbl.Select().Between("ts", base.Add(w.lo), base.Add(w.hi)).
				Where("tier", OpEq, "tomcat").Where("val", OpLt, 500)
		})
	}
	if tbl.idx == nil || tbl.idx[0] == nil {
		t.Fatal("sorted index was never built")
	}

	// Stale the index with appends (the streaming shape) and re-check:
	// the extended index must include the new rows.
	for i := 0; i < 500; i++ {
		ts := base.Add(time.Duration(600+i/2) * time.Millisecond)
		if err := tbl.Append(ts, int64(i), "apache"); err != nil {
			t.Fatal(err)
		}
	}
	check("after append", func() *Query {
		return tbl.Select().Between("ts", base.Add(590*time.Millisecond), base.Add(700*time.Millisecond))
	})
	if got := tbl.idx[0].rows; got != tbl.rows {
		t.Fatalf("index rows %d after refresh, want %d", got, tbl.rows)
	}

	// Widen the indexed column away; the cached entry must not serve the
	// now string-typed data.
	if err := tbl.Widen("ts", TString); err != nil {
		t.Fatal(err)
	}
	if _, ok := tbl.idx[0]; ok {
		t.Fatal("Widen left a stale index behind")
	}
}

// TestSmallTableSkipsIndex pins the scan fallback: below indexMinRows no
// index is built and results still match the reference scan.
func TestSmallTableSkipsIndex(t *testing.T) {
	tbl := indexTestTable(t, indexMinRows-1)
	base := time.Unix(1_700_000_000, 0).UTC()
	q := tbl.Select().Between("ts", base, base.Add(50*time.Millisecond))
	want := scanRows(t, q)
	got := q.candidates()
	if fmt.Sprintf("%v", got) != fmt.Sprintf("%v", want) {
		t.Fatalf("small-table results differ: %v vs %v", got, want)
	}
	if tbl.idx != nil {
		t.Fatal("index built below indexMinRows")
	}
}

// TestStringInterning checks that low-cardinality columns share backing
// strings and high-cardinality columns shut interning off.
func TestStringInterning(t *testing.T) {
	tbl, err := NewTable("intern", []Column{
		{Name: "low", Type: TString},
		{Name: "high", Type: TString},
	})
	if err != nil {
		t.Fatal(err)
	}
	line := "tomcat 10.0.0.2 GET /item/1" // cells are substrings of one line
	for i := 0; i < internCap+100; i++ {
		if err := tbl.AppendStrings([]string{line[:6], fmt.Sprintf("req-%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	lowCol := tbl.data[0].Strs
	// All equal values must share one backing array, detached from the
	// source line.
	for i := 1; i < len(lowCol); i++ {
		if lowCol[i] != "tomcat" {
			t.Fatalf("row %d: %q", i, lowCol[i])
		}
		if unsafe.StringData(lowCol[i]) != unsafe.StringData(lowCol[0]) {
			t.Fatalf("row %d not interned", i)
		}
	}
	if unsafe.StringData(lowCol[0]) == unsafe.StringData(line) {
		t.Fatal("interned value still pins the source line")
	}
	if tbl.data[0].internOff {
		t.Fatal("low-cardinality column lost its intern map")
	}
	if !tbl.data[1].internOff {
		t.Fatal("high-cardinality column kept interning past the cap")
	}
}

// TestLatestIngestOffsetPersists checks the O(1) ledger map survives a
// Save/Load round trip with last-row-wins semantics.
func TestLatestIngestOffsetPersists(t *testing.T) {
	db := Open()
	if err := db.RecordIngestAt("t1", "/logs/a.log", 10, 100, time.Unix(0, 0).UTC()); err != nil {
		t.Fatal(err)
	}
	if err := db.RecordIngestAt("t1", "/logs/a.log", 25, 250, time.Unix(0, 0).UTC()); err != nil {
		t.Fatal(err)
	}
	if err := db.RecordIngest("t2", "/work/b.csv", 5, time.Unix(0, 0).UTC()); err != nil {
		t.Fatal(err)
	}
	checkDB := func(d *DB, label string) {
		t.Helper()
		if off, ok := d.LatestIngestOffset("/logs/a.log"); !ok || off != 250 {
			t.Fatalf("%s: a.log offset %d/%v, want 250/true", label, off, ok)
		}
		if off, ok := d.LatestIngestOffset("/work/b.csv"); !ok || off != 0 {
			t.Fatalf("%s: b.csv offset %d/%v, want 0/true", label, off, ok)
		}
		if _, ok := d.LatestIngestOffset("/logs/never.log"); ok {
			t.Fatalf("%s: phantom ledger entry", label)
		}
	}
	checkDB(db, "live")
	path := filepath.Join(t.TempDir(), "w.db")
	if err := db.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	checkDB(loaded, "loaded")
}
