package mscopedb

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
)

// Segment file format (the on-disk unit of the columnar spill store):
//
//	magic "MSEG1\x00"
//	uvarint headerLen, then header:
//	  str tableName, uvarint rows, uvarint ncols
//	  per column: str name, byte type, byte encoding,
//	              byte zoneHas, [8B LE min bits, 8B LE max bits]
//	per column: uvarint blockLen, then the encoded block
//	footer: 4B LE crc32(everything before the footer), magic "1GSM"
//
// Segments are immutable once written: the writer builds the whole file in
// memory, the store persists it via temp-file + rename, and readers verify
// the trailing checksum before decoding. Column blocks use the narrowest
// encoding the type allows — time and int columns store a zig-zag varint
// head value followed by zig-zag varint deltas (timestamps are
// near-sorted, so deltas are tiny), floats store raw IEEE bits, and string
// columns dictionary-encode when the distinct-value count stays under
// segDictMaxCard (the same low-cardinality population the in-memory
// interner deduplicates), falling back to raw length-prefixed strings for
// high-cardinality columns like request IDs.

var (
	segMagic    = []byte("MSEG1\x00")
	segEndMagic = []byte("1GSM")
)

// Column block encodings.
const (
	encDelta  byte = 1 // int64/time: zigzag varint head + zigzag varint deltas
	encFloat  byte = 2 // float64: raw 8-byte LE IEEE bits
	encDict   byte = 3 // string: dictionary + per-row varint index
	encStrRaw byte = 4 // string: per-row length-prefixed bytes
)

// segDictMaxCard bounds the dictionary: a string column with more distinct
// values than this is high-cardinality and stored raw.
const segDictMaxCard = 4096

// zoneMap is one column's min/max summary, coerced to float64 exactly as
// pred.match coerces cells, so pruning decisions and predicate evaluation
// agree. Has is false for string columns and for float columns containing
// NaN (where min/max would lie).
type zoneMap struct {
	Has bool    `json:"has"`
	Min float64 `json:"min,omitempty"`
	Max float64 `json:"max,omitempty"`
}

// encodeSegment serializes rows [0, n) of the given column data under the
// schema and returns the file image plus the per-column zone maps.
func encodeSegment(table string, cols []Column, data []colData, n int) ([]byte, []zoneMap, error) {
	if n <= 0 {
		return nil, nil, fmt.Errorf("mscopedb: segment of %s with %d rows", table, n)
	}
	zones := make([]zoneMap, len(cols))
	blocks := make([][]byte, len(cols))
	encs := make([]byte, len(cols))
	for i, c := range cols {
		var err error
		switch c.Type {
		case TInt:
			blocks[i] = encodeDelta(data[i].Ints[:n])
			encs[i] = encDelta
			zones[i] = intZone(data[i].Ints[:n])
		case TTime:
			blocks[i] = encodeDelta(data[i].Times[:n])
			encs[i] = encDelta
			zones[i] = intZone(data[i].Times[:n])
		case TFloat:
			blocks[i] = encodeFloats(data[i].Floats[:n])
			encs[i] = encFloat
			zones[i] = floatZone(data[i].Floats[:n])
		case TString:
			blocks[i], encs[i], err = encodeStrings(data[i].Strs[:n])
			if err != nil {
				return nil, nil, fmt.Errorf("mscopedb: segment %s.%s: %w", table, c.Name, err)
			}
		}
	}

	var hdr bytes.Buffer
	putStr(&hdr, table)
	putUvarint(&hdr, uint64(n))
	putUvarint(&hdr, uint64(len(cols)))
	for i, c := range cols {
		putStr(&hdr, c.Name)
		hdr.WriteByte(byte(c.Type))
		hdr.WriteByte(encs[i])
		if zones[i].Has {
			hdr.WriteByte(1)
			var b [16]byte
			binary.LittleEndian.PutUint64(b[:8], math.Float64bits(zones[i].Min))
			binary.LittleEndian.PutUint64(b[8:], math.Float64bits(zones[i].Max))
			hdr.Write(b[:])
		} else {
			hdr.WriteByte(0)
		}
	}

	var out bytes.Buffer
	out.Write(segMagic)
	putUvarint(&out, uint64(hdr.Len()))
	out.Write(hdr.Bytes())
	for _, blk := range blocks {
		putUvarint(&out, uint64(len(blk)))
		out.Write(blk)
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(out.Bytes()))
	out.Write(crc[:])
	out.Write(segEndMagic)
	return out.Bytes(), zones, nil
}

// decodeSegment parses a segment image, validates the checksum, and checks
// the embedded schema against the expected one. It returns the decoded
// column data and the row count.
func decodeSegment(img []byte, wantTable string, wantCols []Column) ([]colData, int, error) {
	tail := len(segEndMagic) + 4
	if len(img) < len(segMagic)+tail || !bytes.Equal(img[:len(segMagic)], segMagic) {
		return nil, 0, fmt.Errorf("mscopedb: segment: bad or truncated magic")
	}
	if !bytes.Equal(img[len(img)-len(segEndMagic):], segEndMagic) {
		return nil, 0, fmt.Errorf("mscopedb: segment: missing end magic (torn write?)")
	}
	body := img[:len(img)-tail]
	wantCRC := binary.LittleEndian.Uint32(img[len(img)-tail : len(img)-len(segEndMagic)])
	if got := crc32.ChecksumIEEE(body); got != wantCRC {
		return nil, 0, fmt.Errorf("mscopedb: segment: checksum mismatch (%08x != %08x)", got, wantCRC)
	}
	r := &segReader{buf: body[len(segMagic):]}
	hdrLen := r.uvarint()
	hdr := &segReader{buf: r.take(int(hdrLen))}
	table := hdr.str()
	rows := int(hdr.uvarint())
	ncols := int(hdr.uvarint())
	if r.err != nil || hdr.err != nil {
		return nil, 0, fmt.Errorf("mscopedb: segment: corrupt header")
	}
	if table != wantTable {
		return nil, 0, fmt.Errorf("mscopedb: segment: table %q, want %q", table, wantTable)
	}
	if ncols != len(wantCols) {
		return nil, 0, fmt.Errorf("mscopedb: segment %s: %d columns, want %d", table, ncols, len(wantCols))
	}
	encs := make([]byte, ncols)
	for i := 0; i < ncols; i++ {
		name := hdr.str()
		typ := Type(hdr.byte())
		encs[i] = hdr.byte()
		if hdr.byte() == 1 {
			hdr.take(16) // zone min/max; the manifest is authoritative at read time
		}
		if hdr.err != nil {
			return nil, 0, fmt.Errorf("mscopedb: segment %s: corrupt column header", table)
		}
		if name != wantCols[i].Name || typ != wantCols[i].Type {
			return nil, 0, fmt.Errorf("mscopedb: segment %s: column %d is %s:%v, want %s:%v",
				table, i, name, typ, wantCols[i].Name, wantCols[i].Type)
		}
	}
	data := make([]colData, ncols)
	for i := 0; i < ncols; i++ {
		blk := r.take(int(r.uvarint()))
		if r.err != nil {
			return nil, 0, fmt.Errorf("mscopedb: segment %s: truncated column block %d", table, i)
		}
		var err error
		switch wantCols[i].Type {
		case TInt:
			data[i].Ints, err = decodeDelta(blk, rows)
		case TTime:
			data[i].Times, err = decodeDelta(blk, rows)
		case TFloat:
			data[i].Floats, err = decodeFloats(blk, rows)
		case TString:
			data[i].Strs, err = decodeStrings(blk, encs[i], rows)
		}
		if err != nil {
			return nil, 0, fmt.Errorf("mscopedb: segment %s.%s: %w", table, wantCols[i].Name, err)
		}
	}
	return data, rows, nil
}

// --- block encoders ---

func encodeDelta(vals []int64) []byte {
	buf := make([]byte, 0, len(vals)*2)
	var tmp [binary.MaxVarintLen64]byte
	prev := int64(0)
	for _, v := range vals {
		n := binary.PutUvarint(tmp[:], zigzag(v-prev))
		buf = append(buf, tmp[:n]...)
		prev = v
	}
	return buf
}

func decodeDelta(blk []byte, rows int) ([]int64, error) {
	out := make([]int64, rows)
	prev := int64(0)
	for i := 0; i < rows; i++ {
		u, n := binary.Uvarint(blk)
		if n <= 0 {
			return nil, fmt.Errorf("truncated delta block at row %d", i)
		}
		blk = blk[n:]
		prev += unzigzag(u)
		out[i] = prev
	}
	if len(blk) != 0 {
		return nil, fmt.Errorf("%d trailing bytes in delta block", len(blk))
	}
	return out, nil
}

func encodeFloats(vals []float64) []byte {
	buf := make([]byte, len(vals)*8)
	for i, v := range vals {
		binary.LittleEndian.PutUint64(buf[i*8:], math.Float64bits(v))
	}
	return buf
}

func decodeFloats(blk []byte, rows int) ([]float64, error) {
	if len(blk) != rows*8 {
		return nil, fmt.Errorf("float block is %d bytes for %d rows", len(blk), rows)
	}
	out := make([]float64, rows)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(blk[i*8:]))
	}
	return out, nil
}

// encodeStrings dictionary-encodes when the column is low-cardinality,
// falling back to raw length-prefixed strings past segDictMaxCard.
func encodeStrings(vals []string) ([]byte, byte, error) {
	dict := make(map[string]int)
	var order []string
	for _, s := range vals {
		if _, ok := dict[s]; !ok {
			if len(dict) >= segDictMaxCard {
				dict = nil
				break
			}
			dict[s] = len(order)
			order = append(order, s)
		}
	}
	var out bytes.Buffer
	if dict == nil {
		for _, s := range vals {
			putStr(&out, s)
		}
		return out.Bytes(), encStrRaw, nil
	}
	putUvarint(&out, uint64(len(order)))
	for _, s := range order {
		putStr(&out, s)
	}
	for _, s := range vals {
		putUvarint(&out, uint64(dict[s]))
	}
	return out.Bytes(), encDict, nil
}

// decodeStrings inverts encodeStrings. Dictionary entries are shared
// across rows, so a decoded low-cardinality column costs one string per
// distinct value — the on-disk dictionary doubles as the interner.
func decodeStrings(blk []byte, enc byte, rows int) ([]string, error) {
	r := &segReader{buf: blk}
	out := make([]string, rows)
	switch enc {
	case encStrRaw:
		for i := 0; i < rows; i++ {
			out[i] = r.str()
		}
	case encDict:
		nd := int(r.uvarint())
		if r.err != nil || nd < 0 || nd > segDictMaxCard {
			return nil, fmt.Errorf("corrupt string dictionary")
		}
		dict := make([]string, nd)
		for i := range dict {
			dict[i] = r.str()
		}
		for i := 0; i < rows; i++ {
			k := int(r.uvarint())
			if r.err != nil || k >= nd {
				return nil, fmt.Errorf("dictionary index out of range at row %d", i)
			}
			out[i] = dict[k]
		}
	default:
		return nil, fmt.Errorf("unknown string encoding %d", enc)
	}
	if r.err != nil {
		return nil, fmt.Errorf("truncated string block")
	}
	if len(r.buf) != 0 {
		return nil, fmt.Errorf("%d trailing bytes in string block", len(r.buf))
	}
	return out, nil
}

// --- zone maps ---

func intZone(vals []int64) zoneMap {
	z := zoneMap{Has: true, Min: float64(vals[0]), Max: float64(vals[0])}
	for _, v := range vals[1:] {
		f := float64(v)
		if f < z.Min {
			z.Min = f
		}
		if f > z.Max {
			z.Max = f
		}
	}
	return z
}

func floatZone(vals []float64) zoneMap {
	z := zoneMap{Has: true, Min: vals[0], Max: vals[0]}
	for _, v := range vals {
		if math.IsNaN(v) {
			return zoneMap{} // NaN poisons ordering; never prune on this column
		}
		if v < z.Min {
			z.Min = v
		}
		if v > z.Max {
			z.Max = v
		}
	}
	return z
}

// excludes reports whether the zone map proves no row in the segment can
// satisfy the predicate. String predicates and zoneless columns never
// prune. The comparisons mirror pred.match exactly — both sides coerce to
// float64 — so a pruned segment can contain no matching row.
func (z zoneMap) excludes(op Op, num float64) bool {
	if !z.Has {
		return false
	}
	switch op {
	case OpEq:
		return num < z.Min || num > z.Max
	case OpNe:
		return z.Min == z.Max && z.Min == num
	case OpLt:
		return z.Min >= num
	case OpLe:
		return z.Min > num
	case OpGt:
		return z.Max <= num
	case OpGe:
		return z.Max < num
	default:
		return false
	}
}

// --- varint plumbing ---

func zigzag(v int64) uint64   { return uint64((v << 1) ^ (v >> 63)) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

func putUvarint(b *bytes.Buffer, v uint64) {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	b.Write(tmp[:n])
}

func putStr(b *bytes.Buffer, s string) {
	putUvarint(b, uint64(len(s)))
	b.WriteString(s)
}

// segReader is a bounds-checked sequential reader over a segment image;
// the first failure sticks in err and every later read returns zeros.
type segReader struct {
	buf []byte
	err error
}

func (r *segReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf)
	if n <= 0 {
		r.err = fmt.Errorf("truncated varint")
		return 0
	}
	r.buf = r.buf[n:]
	return v
}

func (r *segReader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || n > len(r.buf) {
		r.err = fmt.Errorf("truncated field (%d of %d bytes)", n, len(r.buf))
		return nil
	}
	out := r.buf[:n]
	r.buf = r.buf[n:]
	return out
}

func (r *segReader) byte() byte {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *segReader) str() string { return string(r.take(int(r.uvarint()))) }
