package mscopedb

import (
	"bufio"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"github.com/gt-elba/milliscope/internal/retry"
)

// The on-disk warehouse layout: a dedicated directory holding immutable
// segment files (seg-<seq>-<table>.seg), one tail snapshot
// (tail-<seq>.gob) with every table's unsealed suffix, and MANIFEST.json.
// The manifest rename is the single commit point — it names the tail file
// and every segment, all written at one consistent cut across all tables
// (including the mscope_ingests ledger), so a reopened warehouse never
// sees data ahead of its provenance ledger or vice versa. Segments
// spilled between checkpoints are durable but uncommitted; reopen deletes
// anything the manifest does not reference, and the idempotent ingest
// ledger re-drives the lost suffix.
const (
	manifestName    = "MANIFEST.json"
	manifestVersion = 1
)

// StoreOptions tunes the segment store. Zero values take defaults.
type StoreOptions struct {
	// SealRows is the tail size at which a full segment is carved off to
	// disk during ingest. Default 8192.
	SealRows int
	// CompactTargetRows: segments below this are merge candidates; merged
	// runs stop growing past it. Default 65536.
	CompactTargetRows int
	// CompactMinSegs is the shortest adjacent run of small segments worth
	// merging. Default 4.
	CompactMinSegs int
}

func (o StoreOptions) withDefaults() StoreOptions {
	if o.SealRows <= 0 {
		o.SealRows = 8192
	}
	if o.CompactTargetRows <= 0 {
		o.CompactTargetRows = 65536
	}
	if o.CompactMinSegs <= 1 {
		o.CompactMinSegs = 4
	}
	return o
}

// Store is the on-disk half of a spill-enabled warehouse: it owns the
// directory, allocates segment sequence numbers, and serializes the
// checkpoint/compaction commit protocol.
type Store struct {
	dir  string
	opts StoreOptions
	seq  atomic.Uint64 // last allocated sequence number

	mu       sync.Mutex // serializes checkpoint, compaction, manifest writes
	tailFile string     // committed tail snapshot, "" before first checkpoint
	orphans  []string   // superseded files, deleted after the next commit
}

// Dir returns the store directory.
func (s *Store) Dir() string { return s.dir }

// fsRetry bounds retries around the transient filesystem steps of the
// commit protocol (create/rename during rotation, EMFILE). Swappable for
// fault-injection tests, like persist.go's saveRetry.
var fsRetry = retry.Default

// manifest is the committed snapshot descriptor.
type manifest struct {
	Version int        `json:"version"`
	Seq     uint64     `json:"seq"`
	Tail    string     `json:"tail"`
	Tables  []manTable `json:"tables"`
}

type manTable struct {
	Name     string    `json:"name"`
	Segments []segMeta `json:"segments,omitempty"`
}

// segMeta describes one committed (or about-to-commit) segment file. The
// zone maps ride in the manifest so query pruning and reopen never touch
// segment bytes.
type segMeta struct {
	File  string    `json:"file"`
	Rows  int       `json:"rows"`
	Bytes int64     `json:"bytes"`
	Zones []zoneMap `json:"zones"`
}

// Spilled reports whether the warehouse is backed by an on-disk store.
func (db *DB) Spilled() bool { return db.store != nil }

// SpillDir returns the store directory, or "" for an in-memory warehouse.
func (db *DB) SpillDir() string {
	if db.store == nil {
		return ""
	}
	return db.store.dir
}

// OpenDir opens (or initializes) a spill-backed warehouse in dir: the
// durable sibling of Open. A directory with a manifest reopens to exactly
// its last checkpointed state — uncommitted segment files and torn temp
// files from a crash are swept — and a fresh directory starts an empty
// warehouse whose ingest paths spill sealed segments as they fill.
func OpenDir(dir string, opts StoreOptions) (*DB, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("mscopedb: open store %s: %w", dir, err)
	}
	st := &Store{dir: dir, opts: opts}
	raw, err := os.ReadFile(filepath.Join(dir, manifestName))
	if os.IsNotExist(err) {
		db := Open()
		db.attach(st)
		if err := st.sweep(nil); err != nil {
			return nil, err
		}
		return db, nil
	}
	if err != nil {
		return nil, fmt.Errorf("mscopedb: open store %s: %w", dir, err)
	}
	var man manifest
	if err := json.Unmarshal(raw, &man); err != nil {
		return nil, fmt.Errorf("mscopedb: %s: corrupt manifest: %w", dir, err)
	}
	if man.Version != manifestVersion {
		return nil, fmt.Errorf("mscopedb: %s: manifest version %d, want %d", dir, man.Version, manifestVersion)
	}
	st.seq.Store(man.Seq)
	st.tailFile = man.Tail

	// The tail snapshot carries every table's schema and unsealed suffix.
	tf, err := os.Open(filepath.Join(dir, man.Tail))
	if err != nil {
		return nil, fmt.Errorf("mscopedb: %s: tail snapshot: %w", dir, err)
	}
	var snap dbSnapshot
	derr := gob.NewDecoder(bufio.NewReaderSize(tf, 1<<20)).Decode(&snap)
	tf.Close()
	if derr != nil {
		return nil, fmt.Errorf("mscopedb: %s: decode tail %s: %w", dir, man.Tail, derr)
	}

	segsOf := make(map[string][]segMeta, len(man.Tables))
	for _, mt := range man.Tables {
		segsOf[mt.Name] = mt.Segments
	}
	db := &DB{
		tables:     make(map[string]*Table, len(snap.Tables)),
		ingestOff:  make(map[string]int64),
		ingestRows: make(map[string]int64),
	}
	for _, ts := range snap.Tables {
		t, err := NewTable(ts.Name, ts.Cols)
		if err != nil {
			return nil, fmt.Errorf("mscopedb: %s: %w", dir, err)
		}
		t.data = ts.Data
		for i, cd := range t.data {
			n := len(cd.Ints) + len(cd.Floats) + len(cd.Times) + len(cd.Strs)
			if n != ts.Rows {
				return nil, fmt.Errorf("mscopedb: %s: table %s column %s has %d tail values for %d rows",
					dir, ts.Name, ts.Cols[i].Name, n, ts.Rows)
			}
		}
		sp := &sealedPart{store: st}
		start := 0
		for _, sm := range segsOf[ts.Name] {
			if len(sm.Zones) != len(ts.Cols) {
				return nil, fmt.Errorf("mscopedb: %s: segment %s has %d zones for %d columns",
					dir, sm.File, len(sm.Zones), len(ts.Cols))
			}
			sp.segs = append(sp.segs, sealedSeg{meta: sm, start: start})
			start += sm.Rows
		}
		sp.rows = start
		t.seal = sp
		t.rows = start + ts.Rows
		db.tables[ts.Name] = t
		delete(segsOf, ts.Name)
	}
	for name := range segsOf {
		return nil, fmt.Errorf("mscopedb: %s: manifest table %s missing from tail snapshot", dir, name)
	}
	for _, name := range []string{TableExperiments, TableNodes, TableMonitors, TableIngests} {
		if _, ok := db.tables[name]; !ok {
			return nil, fmt.Errorf("mscopedb: %s: static table %s missing", dir, name)
		}
	}
	db.store = st
	if err := st.sweep(&man); err != nil {
		return nil, err
	}
	// Rebuild the latest-offset maps from the persisted ledger (reads
	// through the seal-aware accessors; the last row per file wins).
	if t := db.tables[TableIngests]; t != nil {
		fi, oi, ri := t.ColIndex("file"), t.ColIndex("offset"), t.ColIndex("rows")
		if fi >= 0 && oi >= 0 {
			for r := 0; r < t.Rows(); r++ {
				db.ingestOff[t.Str(fi, r)] = t.Int(oi, r)
				if ri >= 0 {
					db.ingestRows[t.Str(fi, r)] = t.Int(ri, r)
				}
			}
		}
	}
	return db, nil
}

// attach wires a store into a warehouse, sealing every existing table.
func (db *DB) attach(st *Store) {
	db.store = st
	for _, t := range db.tables {
		t.seal = &sealedPart{store: st}
	}
}

// AttachStore converts an in-memory warehouse (Open or the legacy gob
// Load) into a spill-backed one rooted at an empty directory — the
// migration path of `mscope migrate-db`. The data is not written until
// the first Checkpoint.
func (db *DB) AttachStore(dir string, opts StoreOptions) error {
	if db.store != nil {
		return fmt.Errorf("mscopedb: warehouse already has a store at %s", db.store.dir)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("mscopedb: attach store %s: %w", dir, err)
	}
	if _, err := os.Stat(filepath.Join(dir, manifestName)); err == nil {
		return fmt.Errorf("mscopedb: %s already holds a warehouse (manifest present)", dir)
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	db.attach(&Store{dir: dir, opts: opts.withDefaults()})
	return nil
}

// Checkpoint commits the warehouse: full segments are carved from every
// table's tail, the remaining tails are snapshotted, and the manifest is
// atomically replaced. On return, a crash (or kill -9) loses nothing
// recorded before the call. A no-op on in-memory warehouses, so ingest
// paths call it unconditionally.
func (db *DB) Checkpoint() error {
	if db.store == nil {
		return nil
	}
	db.store.mu.Lock()
	defer db.store.mu.Unlock()
	return db.checkpointLocked()
}

// checkpointLocked is Checkpoint with store.mu held (compaction commits
// through it too).
func (db *DB) checkpointLocked() error {
	st := db.store
	db.mu.RLock()
	defer db.mu.RUnlock()
	names := make([]string, 0, len(db.tables))
	for n := range db.tables {
		names = append(names, n)
	}
	sort.Strings(names)

	// Carve any full chunks still in memory, then snapshot the tails.
	var snap dbSnapshot
	man := manifest{Version: manifestVersion, Tail: ""}
	for _, name := range names {
		t := db.tables[name]
		if err := t.spillFull(); err != nil {
			return err
		}
		sp := t.seal
		sp.mu.RLock()
		tailRows := t.rows - sp.rows
		snap.Tables = append(snap.Tables, tableSnapshot{
			Name: t.name, Cols: t.cols, Data: t.data, Rows: tailRows,
		})
		mt := manTable{Name: t.name}
		for _, ss := range sp.segs {
			mt.Segments = append(mt.Segments, ss.meta)
		}
		sp.mu.RUnlock()
		man.Tables = append(man.Tables, mt)
	}

	tailName := fmt.Sprintf("tail-%08d.gob", st.seq.Add(1))
	var buf strings.Builder
	enc := gob.NewEncoder(&buf)
	if err := enc.Encode(snap); err != nil {
		return fmt.Errorf("mscopedb: encode tail snapshot: %w", err)
	}
	if err := st.writeAtomic(tailName, []byte(buf.String())); err != nil {
		return err
	}
	man.Seq = st.seq.Load()
	man.Tail = tailName
	mj, err := json.MarshalIndent(&man, "", " ")
	if err != nil {
		return fmt.Errorf("mscopedb: encode manifest: %w", err)
	}
	if err := st.writeAtomic(manifestName, mj); err != nil {
		return err
	}
	// Committed: the previous tail and any superseded segments are garbage.
	if st.tailFile != "" && st.tailFile != tailName {
		st.orphans = append(st.orphans, st.tailFile)
	}
	st.tailFile = tailName
	for _, f := range st.orphans {
		os.Remove(filepath.Join(st.dir, f))
	}
	st.orphans = nil
	return nil
}

// writeAtomic writes name via temp-file + rename, fsyncing before the
// rename so the commit point is on stable storage.
func (s *Store) writeAtomic(name string, data []byte) error {
	tmp := filepath.Join(s.dir, name+".tmp")
	final := filepath.Join(s.dir, name)
	return fsRetry.Do(func() error {
		f, err := os.Create(tmp)
		if err != nil {
			return err
		}
		if _, err := f.Write(data); err != nil {
			f.Close()
			return err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		return os.Rename(tmp, final)
	})
}

// writeSegment persists one encoded segment image and returns its
// relative file name. Sequence allocation is atomic, so concurrent
// spills from the appender and the compactor never collide.
func (s *Store) writeSegment(table string, img []byte) (string, error) {
	name := fmt.Sprintf("seg-%08d-%s.seg", s.seq.Add(1), fsSafe(table))
	if err := s.writeAtomic(name, img); err != nil {
		return "", fmt.Errorf("mscopedb: write segment %s: %w", name, err)
	}
	return name, nil
}

// readSegment loads and decodes one segment file against the expected
// schema.
func (s *Store) readSegment(sm segMeta, table string, cols []Column) ([]colData, error) {
	img, err := os.ReadFile(filepath.Join(s.dir, sm.File))
	if err != nil {
		return nil, err
	}
	data, rows, err := decodeSegment(img, table, cols)
	if err != nil {
		return nil, err
	}
	if rows != sm.Rows {
		return nil, fmt.Errorf("mscopedb: segment %s: %d rows, manifest says %d", sm.File, rows, sm.Rows)
	}
	return data, nil
}

// addOrphans schedules superseded files for deletion after the next
// commit; deleting earlier would tear the currently committed manifest.
func (s *Store) addOrphans(files ...string) {
	s.mu.Lock()
	s.orphans = append(s.orphans, files...)
	s.mu.Unlock()
}

// sweep deletes store-owned files the manifest does not reference: torn
// temp files and segments spilled after the last checkpoint. Run at open,
// before anything new is written.
func (s *Store) sweep(man *manifest) error {
	keep := map[string]bool{manifestName: true}
	if man != nil {
		keep[man.Tail] = true
		for _, mt := range man.Tables {
			for _, sm := range mt.Segments {
				keep[sm.File] = true
			}
		}
	}
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("mscopedb: sweep %s: %w", s.dir, err)
	}
	for _, e := range ents {
		n := e.Name()
		if e.IsDir() || keep[n] {
			continue
		}
		owned := strings.HasPrefix(n, "seg-") || strings.HasPrefix(n, "tail-") ||
			strings.HasSuffix(n, ".tmp")
		if owned {
			os.Remove(filepath.Join(s.dir, n))
		}
	}
	return nil
}

// fsSafe maps a table name into a filename fragment. The manifest is
// authoritative — the fragment is only for operator legibility.
func fsSafe(name string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == '-':
			return r
		default:
			return '_'
		}
	}, name)
}
