package mscopedb

import (
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"github.com/gt-elba/milliscope/internal/retry"
)

// TestSaveRetriesTransientCreate injects a flaky fs under Save: the first
// two creates fail, the third succeeds, and the checkpoint must land
// intact without surfacing the transient errors.
func TestSaveRetriesTransientCreate(t *testing.T) {
	origRetry, origCreate := saveRetry, createFile
	defer func() { saveRetry, createFile = origRetry, origCreate }()

	fails := 2
	creates := 0
	createFile = func(path string) (*os.File, error) {
		creates++
		if creates <= fails {
			return nil, syscall.EMFILE
		}
		return os.Create(path)
	}
	var slept []time.Duration
	saveRetry = retry.Policy{Attempts: 4, Base: time.Millisecond, Max: 4 * time.Millisecond,
		Sleep: func(d time.Duration) { slept = append(slept, d) }}

	db := Open()
	if err := db.RecordIngestAt("t", "f.log", 7, 99, time.Unix(0, 0)); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "w.db")
	if err := db.Save(path); err != nil {
		t.Fatalf("Save with 2 transient failures: %v", err)
	}
	if creates != 3 {
		t.Errorf("create called %d times, want 3", creates)
	}
	if len(slept) != 2 {
		t.Errorf("backed off %d times, want 2", len(slept))
	}

	loaded, err := Load(path)
	if err != nil {
		t.Fatalf("Load after retried save: %v", err)
	}
	if n, ok := loaded.LatestIngestRows("f.log"); !ok || n != 7 {
		t.Errorf("LatestIngestRows = %d,%v after reload, want 7,true", n, ok)
	}
	if off, ok := loaded.LatestIngestOffset("f.log"); !ok || off != 99 {
		t.Errorf("LatestIngestOffset = %d,%v after reload, want 99,true", off, ok)
	}
}

// TestSavePersistentFailureSurfaces proves the budget is bounded: a
// permanently failing fs exhausts the attempts and the last error comes
// back wrapped.
func TestSavePersistentFailureSurfaces(t *testing.T) {
	origRetry, origCreate := saveRetry, createFile
	defer func() { saveRetry, createFile = origRetry, origCreate }()

	sentinel := errors.New("disk detached")
	creates := 0
	createFile = func(string) (*os.File, error) { creates++; return nil, sentinel }
	saveRetry = retry.Policy{Attempts: 3, Base: time.Millisecond, Sleep: func(time.Duration) {}}

	err := Open().Save(filepath.Join(t.TempDir(), "w.db"))
	if !errors.Is(err, sentinel) {
		t.Fatalf("Save error %v does not wrap the fs failure", err)
	}
	if creates != 3 {
		t.Errorf("create called %d times, want the full 3-attempt budget", creates)
	}
}
