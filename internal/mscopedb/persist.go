package mscopedb

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"os"

	"github.com/gt-elba/milliscope/internal/retry"
)

// saveRetry bounds the retries around the checkpoint file creation — the
// one step of Save that fails transiently (EMFILE, a slow NFS mkdir
// racing, an fs briefly read-only during rotation). Encoding errors are
// not transient and are never retried. Tests swap the policy to inject a
// flaky fs without wall-clock sleeps.
var (
	saveRetry  = retry.Default
	createFile = os.Create
)

// snapshot types give gob a stable, exported surface.

type dbSnapshot struct {
	Tables []tableSnapshot
}

type tableSnapshot struct {
	Name string
	Cols []Column
	Data []colData
	Rows int
}

// Save serializes the warehouse so CLI stages (transform, load, query,
// report) can compose across process boundaries.
func (db *DB) Save(path string) error {
	db.mu.RLock()
	defer db.mu.RUnlock()
	var snap dbSnapshot
	for _, name := range db.TableNames() {
		t := db.tables[name]
		// Spill-backed tables materialize their segments, so the gob image
		// is identical to one saved from an all-in-memory ingest.
		data, err := t.fullData()
		if err != nil {
			return err
		}
		snap.Tables = append(snap.Tables, tableSnapshot{
			Name: t.name, Cols: t.cols, Data: data, Rows: t.rows,
		})
	}
	var f *os.File
	if err := saveRetry.Do(func() error {
		var cerr error
		f, cerr = createFile(path)
		return cerr
	}); err != nil {
		return fmt.Errorf("mscopedb: create %s: %w", path, err)
	}
	defer f.Close()
	bw := bufio.NewWriterSize(f, 1<<20)
	if err := gob.NewEncoder(bw).Encode(snap); err != nil {
		return fmt.Errorf("mscopedb: encode %s: %w", path, err)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("mscopedb: flush %s: %w", path, err)
	}
	return nil
}

// Load deserializes a warehouse written by Save.
func Load(path string) (*DB, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("mscopedb: open %s: %w", path, err)
	}
	defer f.Close()
	var snap dbSnapshot
	if err := gob.NewDecoder(bufio.NewReaderSize(f, 1<<20)).Decode(&snap); err != nil {
		return nil, fmt.Errorf("mscopedb: decode %s: %w", path, err)
	}
	db := &DB{tables: make(map[string]*Table, len(snap.Tables))}
	for _, ts := range snap.Tables {
		t, err := NewTable(ts.Name, ts.Cols)
		if err != nil {
			return nil, fmt.Errorf("mscopedb: load %s: %w", path, err)
		}
		t.data = ts.Data
		t.rows = ts.Rows
		// Guard against truncated column data.
		for i, cd := range t.data {
			n := len(cd.Ints) + len(cd.Floats) + len(cd.Times) + len(cd.Strs)
			if n != ts.Rows {
				return nil, fmt.Errorf("mscopedb: load %s: table %s column %s has %d values for %d rows",
					path, ts.Name, ts.Cols[i].Name, n, ts.Rows)
			}
		}
		db.tables[ts.Name] = t
	}
	// A loaded warehouse must still have its static tables.
	for _, name := range []string{TableExperiments, TableNodes, TableMonitors, TableIngests} {
		if _, ok := db.tables[name]; !ok {
			return nil, fmt.Errorf("mscopedb: load %s: static table %s missing", path, name)
		}
	}
	// Rebuild the latest-offset and latest-rows maps from the persisted
	// ledger: rows are append-ordered, so the last row per file wins.
	db.ingestOff = make(map[string]int64)
	db.ingestRows = make(map[string]int64)
	if t := db.tables[TableIngests]; t != nil {
		fi, oi, ri := t.ColIndex("file"), t.ColIndex("offset"), t.ColIndex("rows")
		if fi >= 0 && oi >= 0 {
			for r := 0; r < t.Rows(); r++ {
				db.ingestOff[t.Str(fi, r)] = t.Int(oi, r)
				if ri >= 0 {
					db.ingestRows[t.Str(fi, r)] = t.Int(ri, r)
				}
			}
		}
	}
	return db, nil
}
