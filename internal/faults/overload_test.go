package faults

import (
	"math"
	"testing"
	"time"
)

func TestEffectiveFracShape(t *testing.T) {
	o := Overload{BurstAt: 0.2, BurstUntil: 0.5, BurstFactor: 10}
	if got := o.EffectiveFrac(0); got != 0 {
		t.Errorf("f(0)=%v, want 0", got)
	}
	if got := o.EffectiveFrac(1); math.Abs(got-1) > 1e-12 {
		t.Errorf("f(1)=%v, want 1", got)
	}
	// Monotonic and continuous.
	prev := 0.0
	for f := 0.0; f <= 1.0; f += 0.001 {
		g := o.EffectiveFrac(f)
		if g < prev {
			t.Fatalf("not monotonic at f=%v: %v < %v", f, g, prev)
		}
		if g-prev > 0.01 {
			t.Fatalf("jump at f=%v: %v -> %v", f, prev, g)
		}
		prev = g
	}
	// The burst rate must be BurstFactor× the baseline rate.
	eps := 1e-6
	base := (o.EffectiveFrac(0.1+eps) - o.EffectiveFrac(0.1)) / eps
	burst := (o.EffectiveFrac(0.3+eps) - o.EffectiveFrac(0.3)) / eps
	if ratio := burst / base; math.Abs(ratio-10) > 0.01 {
		t.Errorf("burst/base rate ratio = %.3f, want 10", ratio)
	}
}

func TestEffectiveFracIdentityWhenZero(t *testing.T) {
	var o Overload
	for _, f := range []float64{0, 0.25, 0.7, 1} {
		if got := o.EffectiveFrac(f); got != f {
			t.Errorf("zero overload: f(%v)=%v, want identity", f, got)
		}
	}
}

func TestParseOverload(t *testing.T) {
	o, err := ParseOverload("at=0.2,until=0.5,factor=12,delay=300us")
	if err != nil {
		t.Fatal(err)
	}
	want := Overload{BurstAt: 0.2, BurstUntil: 0.5, BurstFactor: 12, ConsumerDelay: 300 * time.Microsecond}
	if o != want {
		t.Errorf("parsed %+v, want %+v", o, want)
	}
	if o, err := ParseOverload(""); err != nil || !o.Zero() {
		t.Errorf("empty spec: %+v, %v; want zero overload", o, err)
	}
	for _, bad := range []string{"at=0.5,until=0.2,factor=10", "factor=0.5,at=0.1,until=0.2", "bogus=1", "at"} {
		if _, err := ParseOverload(bad); err == nil {
			t.Errorf("spec %q parsed without error", bad)
		}
	}
}

func TestOverloadSidecarRoundTrip(t *testing.T) {
	dir := t.TempDir()
	if _, ok, err := LoadOverloadSidecar(dir); err != nil || ok {
		t.Fatalf("empty dir: ok=%v err=%v, want absent sidecar", ok, err)
	}
	want := Overload{BurstAt: 0.1, BurstUntil: 0.4, BurstFactor: 16, ConsumerDelay: time.Millisecond}
	if err := want.WriteSidecar(dir); err != nil {
		t.Fatal(err)
	}
	got, ok, err := LoadOverloadSidecar(dir)
	if err != nil || !ok {
		t.Fatalf("load: ok=%v err=%v", ok, err)
	}
	if got != want {
		t.Errorf("round trip %+v, want %+v", got, want)
	}
}
