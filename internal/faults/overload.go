package faults

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"
)

// Overload is the load-surge injector the fidelity controller is tested
// against: the replay producer compresses a slice of the trial into a
// burst (the arrival-rate spike), while the pipeline's consumer is
// throttled per record (the processing-rate collapse). Both knobs are
// deterministic — the same spec over the same staged logs replays the
// same byte schedule — so controller transitions are assertable in tests.
type Overload struct {
	// BurstAt and BurstUntil bound the burst as fractions of the replay's
	// wall-clock duration, 0 ≤ BurstAt < BurstUntil ≤ 1.
	BurstAt    float64 `json:"burst_at"`
	BurstUntil float64 `json:"burst_until"`
	// BurstFactor multiplies the byte rate inside the burst relative to
	// the rate outside it (a 10× surge replays ten seconds of trial per
	// baseline second).
	BurstFactor float64 `json:"burst_factor"`
	// ConsumerDelay throttles the pipeline loader by this much per
	// record — the slow-consumer half of the overload.
	ConsumerDelay time.Duration `json:"consumer_delay_ns"`
}

// Validate rejects malformed specs.
func (o Overload) Validate() error {
	if o.BurstFactor != 0 || o.BurstAt != 0 || o.BurstUntil != 0 {
		if o.BurstFactor < 1 {
			return fmt.Errorf("faults: overload burst factor %.2f must be >= 1", o.BurstFactor)
		}
		if o.BurstAt < 0 || o.BurstUntil > 1 || o.BurstAt >= o.BurstUntil {
			return fmt.Errorf("faults: overload burst window [%.2f,%.2f] must satisfy 0 <= at < until <= 1",
				o.BurstAt, o.BurstUntil)
		}
	}
	if o.ConsumerDelay < 0 {
		return fmt.Errorf("faults: overload consumer delay must be >= 0")
	}
	return nil
}

// Zero reports whether the spec injects nothing.
func (o Overload) Zero() bool {
	return o.BurstFactor == 0 && o.BurstAt == 0 && o.BurstUntil == 0 && o.ConsumerDelay == 0
}

// EffectiveFrac maps a wall-clock replay fraction to the byte fraction a
// bursting replay should have written: the byte rate is 1 outside
// [BurstAt, BurstUntil] and BurstFactor inside, normalized so the whole
// trial still lands by f = 1. It is the integral of that piecewise rate —
// continuous, monotonic, deterministic.
func (o Overload) EffectiveFrac(f float64) float64 {
	if o.BurstFactor <= 1 {
		return f
	}
	if f < 0 {
		f = 0
	}
	if f > 1 {
		f = 1
	}
	integ := func(x float64) float64 {
		v := x
		if x > o.BurstAt {
			hi := x
			if hi > o.BurstUntil {
				hi = o.BurstUntil
			}
			v += (hi - o.BurstAt) * (o.BurstFactor - 1)
		}
		return v
	}
	return integ(f) / integ(1)
}

// ParseOverload parses the CLI spec "at=0.2,until=0.5,factor=12,delay=300us".
// Any key may be omitted; an empty spec is the zero Overload.
func ParseOverload(spec string) (Overload, error) {
	var o Overload
	if strings.TrimSpace(spec) == "" {
		return o, nil
	}
	for _, part := range strings.Split(spec, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			return o, fmt.Errorf("faults: overload spec %q: want key=value pairs", part)
		}
		var err error
		switch kv[0] {
		case "at":
			o.BurstAt, err = strconv.ParseFloat(kv[1], 64)
		case "until":
			o.BurstUntil, err = strconv.ParseFloat(kv[1], 64)
		case "factor":
			o.BurstFactor, err = strconv.ParseFloat(kv[1], 64)
		case "delay":
			o.ConsumerDelay, err = time.ParseDuration(kv[1])
		default:
			return o, fmt.Errorf("faults: overload spec: unknown key %q (want at, until, factor, delay)", kv[0])
		}
		if err != nil {
			return o, fmt.Errorf("faults: overload spec %q: %v", part, err)
		}
	}
	return o, o.Validate()
}

// OverloadSidecar is the file name `mscope chaos --overload` drops next to
// a corrupted log directory; the replay producer picks it up automatically
// so a staged chaos directory carries its own load profile.
const OverloadSidecar = "overload.json"

// WriteSidecar persists the spec into dir.
func (o Overload) WriteSidecar(dir string) error {
	if err := o.Validate(); err != nil {
		return err
	}
	data, err := json.MarshalIndent(o, "", " ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, OverloadSidecar), append(data, '\n'), 0o644)
}

// LoadOverloadSidecar reads dir's overload spec; ok is false when the
// sidecar does not exist.
func LoadOverloadSidecar(dir string) (Overload, bool, error) {
	data, err := os.ReadFile(filepath.Join(dir, OverloadSidecar))
	if os.IsNotExist(err) {
		return Overload{}, false, nil
	}
	if err != nil {
		return Overload{}, false, err
	}
	var o Overload
	if err := json.Unmarshal(data, &o); err != nil {
		return Overload{}, false, fmt.Errorf("faults: %s: %v", OverloadSidecar, err)
	}
	return o, true, o.Validate()
}
