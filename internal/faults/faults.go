// Package faults is the deterministic log corruptor behind the chaos
// harness: it copies a monitor-log directory while injecting the failure
// modes production log pipelines actually see — garbage lines from
// interleaved writers, records torn mid-write, files truncated by
// rotation, duplicated flush buffers, tiers whose logs never arrived,
// bounded cross-node clock skew, and resource-monitor sampling gaps.
//
// Every mutation is drawn from a PRNG seeded by Config.Seed mixed with the
// file name, so the same seed over the same input directory produces a
// byte-identical corrupted directory — chaos trials are replayable and the
// degraded-mode ingest tests can assert exact quarantine counts.
package faults

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"math/rand"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Kind names one injectable fault class.
type Kind string

// The fault classes the corruptor can inject.
const (
	// KindGarbage inserts unparseable junk lines (an interleaved foreign
	// writer, a crashed process dumping into the log).
	KindGarbage Kind = "garbage"
	// KindTorn splits a line across two lines mid-byte (a partial write
	// flushed before the record completed).
	KindTorn Kind = "torn"
	// KindDuplicate repeats a line (a rewritten flush buffer).
	KindDuplicate Kind = "duplicate"
	// KindTruncate cuts the file tail mid-record (rotation or a monitor
	// killed mid-write). Multi-line logs lose a partial record; single-line
	// logs keep half of their final line.
	KindTruncate Kind = "truncate"
	// KindSkew shifts a tier's event timestamps by a bounded per-tier
	// offset (unsynchronized node clocks). The front tier is never skewed:
	// it is the reference clock.
	KindSkew Kind = "skew"
	// KindGap deletes a contiguous run of resource-monitor samples (a
	// wedged collector).
	KindGap Kind = "gap"
	// KindDeleteTier removes the event logs of the tiers listed in
	// Config.DeleteTiers (a monitor that never shipped its file).
	KindDeleteTier Kind = "delete-tier"
)

// LineKinds are the per-line faults governed by Config.Rate.
func LineKinds() []Kind { return []Kind{KindGarbage, KindTorn, KindDuplicate} }

// AllKinds lists every fault class.
func AllKinds() []Kind {
	return []Kind{KindGarbage, KindTorn, KindDuplicate, KindTruncate,
		KindSkew, KindGap, KindDeleteTier}
}

// ParseKinds converts a comma-separated kind list ("garbage,torn") to
// kinds, validating each name.
func ParseKinds(s string) ([]Kind, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	known := make(map[Kind]bool)
	for _, k := range AllKinds() {
		known[k] = true
	}
	var out []Kind
	for _, part := range strings.Split(s, ",") {
		k := Kind(strings.TrimSpace(part))
		if !known[k] {
			return nil, fmt.Errorf("faults: unknown fault kind %q", k)
		}
		out = append(out, k)
	}
	return out, nil
}

// Config parameterizes one corruption pass.
type Config struct {
	// Seed drives every random choice; same seed + same input directory ⇒
	// byte-identical output directory.
	Seed int64
	// Rate is the per-line probability of a line fault (garbage, torn,
	// duplicate) on event logs.
	Rate float64
	// Kinds enables fault classes; nil enables the line kinds plus
	// truncation (the defaults a plain `mscope chaos` run injects).
	Kinds []Kind
	// SkewMax bounds the per-tier clock offset drawn for KindSkew; zero
	// means the 2ms default.
	SkewMax time.Duration
	// GapFraction is the fraction of resource-monitor samples KindGap
	// deletes; zero means the 8% default.
	GapFraction float64
	// DeleteTiers lists tiers whose event logs KindDeleteTier removes.
	DeleteTiers []string
}

// DefaultSkewMax bounds per-tier clock skew when Config.SkewMax is zero.
const DefaultSkewMax = 2 * time.Millisecond

// DefaultGapFraction is the resource-monitor sample loss when
// Config.GapFraction is zero.
const DefaultGapFraction = 0.08

// FileReport records what happened to one input file.
type FileReport struct {
	// Name is the file's base name.
	Name string
	// Injected counts injected faults per kind. Garbage, torn and
	// duplicate count affected lines; truncate counts dropped lines; gap
	// counts deleted sample rows.
	Injected map[Kind]int
	// SkewMicros is the clock offset applied to the file's timestamps.
	SkewMicros int64
	// Deleted marks a file removed by KindDeleteTier.
	Deleted bool
}

// Report summarizes one corruption pass over a directory.
type Report struct {
	Seed  int64
	Files []FileReport
}

// Total sums one kind's injections across all files.
func (r *Report) Total(k Kind) int {
	n := 0
	for _, f := range r.Files {
		n += f.Injected[k]
	}
	return n
}

// Summary renders the report for CLI output.
func (r *Report) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "chaos pass (seed %d):\n", r.Seed)
	for _, f := range r.Files {
		if f.Deleted {
			fmt.Fprintf(&b, "  %-24s DELETED\n", f.Name)
			continue
		}
		var parts []string
		for _, k := range AllKinds() {
			if n := f.Injected[k]; n > 0 {
				parts = append(parts, fmt.Sprintf("%s=%d", k, n))
			}
		}
		if f.SkewMicros != 0 {
			parts = append(parts, fmt.Sprintf("skew=%+dµs", f.SkewMicros))
		}
		if len(parts) == 0 {
			parts = append(parts, "clean")
		}
		fmt.Fprintf(&b, "  %-24s %s\n", f.Name, strings.Join(parts, " "))
	}
	return b.String()
}

// fileClass tells the corruptor which faults apply to a file.
type fileClass int

const (
	classOther fileClass = iota
	// classEventLine: single-line event logs (Apache, Tomcat, C-JDBC).
	classEventLine
	// classEventRecord: the five-line MySQL slow-log records.
	classEventRecord
	// classResmon: line-oriented resource-monitor samples.
	classResmon
)

// classify maps a file name to its fault class and header-line count.
func classify(name string) (fileClass, int) {
	switch {
	case strings.HasSuffix(name, "_access.log"),
		strings.HasSuffix(name, "_mscope.log"),
		strings.HasSuffix(name, "_ctrl.log"):
		return classEventLine, 0
	case strings.HasSuffix(name, "_slow.log"):
		return classEventRecord, 3
	case strings.HasSuffix(name, "_collectl.csv"):
		return classResmon, 1
	case strings.HasSuffix(name, "_iostat.log"),
		strings.HasSuffix(name, "_pidstat.log"),
		strings.HasSuffix(name, "_collectl.log"),
		strings.HasSuffix(name, "_sar.log"):
		// Conservative header allowance: banner plus column header.
		return classResmon, 3
	default:
		// sar XML and non-log artifacts pass through unmodified: corrupting
		// structured XML means losing the document, not degrading it.
		return classOther, 0
	}
}

// tierOf derives the tier from a log file name ("mysql_slow.log" → "mysql").
func tierOf(name string) string {
	if i := strings.IndexByte(name, '_'); i > 0 {
		return name[:i]
	}
	return name
}

// Corrupt copies srcDir into dstDir, injecting the configured faults, and
// reports exactly what it injected where. dstDir is created; existing files
// in it are overwritten.
func Corrupt(srcDir, dstDir string, cfg Config) (*Report, error) {
	kinds := cfg.Kinds
	if kinds == nil {
		kinds = append(LineKinds(), KindTruncate)
	}
	enabled := make(map[Kind]bool, len(kinds))
	for _, k := range kinds {
		enabled[k] = true
	}
	skewMax := cfg.SkewMax
	if skewMax == 0 {
		skewMax = DefaultSkewMax
	}
	gapFrac := cfg.GapFraction
	if gapFrac == 0 {
		gapFrac = DefaultGapFraction
	}
	deleteTier := make(map[string]bool, len(cfg.DeleteTiers))
	for _, t := range cfg.DeleteTiers {
		deleteTier[t] = true
	}

	entries, err := os.ReadDir(srcDir)
	if err != nil {
		return nil, fmt.Errorf("faults: read source dir: %w", err)
	}
	if err := os.MkdirAll(dstDir, 0o755); err != nil {
		return nil, fmt.Errorf("faults: create output dir: %w", err)
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)

	rep := &Report{Seed: cfg.Seed}
	for _, name := range names {
		fr := FileReport{Name: name, Injected: make(map[Kind]int)}
		class, header := classify(name)
		tier := tierOf(name)
		isEvent := class == classEventLine || class == classEventRecord

		if enabled[KindDeleteTier] && isEvent && deleteTier[tier] {
			fr.Deleted = true
			rep.Files = append(rep.Files, fr)
			continue
		}

		data, err := os.ReadFile(filepath.Join(srcDir, name))
		if err != nil {
			return nil, fmt.Errorf("faults: read %s: %w", name, err)
		}
		rng := rand.New(rand.NewSource(cfg.Seed ^ int64(fnvHash(name))))

		if class != classOther {
			lines := splitLines(data)
			switch {
			case isEvent:
				if enabled[KindSkew] && tier != "apache" {
					// One offset per tier so every file of the tier shifts
					// together, drawn from the tier name for stability.
					off := tierSkew(cfg.Seed, tier, skewMax)
					lines = applySkew(lines, class, off)
					fr.SkewMicros = off
				}
				lines = injectLineFaults(lines, header, cfg.Rate, enabled, rng, &fr)
				if enabled[KindTruncate] {
					lines = truncateTail(lines, class, header, rng, &fr)
				}
			case class == classResmon:
				if enabled[KindGap] {
					lines = cutGap(lines, header, gapFrac, rng, &fr)
				}
			}
			data = joinLines(lines)
		}

		if err := os.WriteFile(filepath.Join(dstDir, name), data, 0o644); err != nil {
			return nil, fmt.Errorf("faults: write %s: %w", name, err)
		}
		rep.Files = append(rep.Files, fr)
	}
	return rep, nil
}

// fnvHash mixes a file name into the seed.
func fnvHash(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// tierSkew draws the tier's bounded clock offset in microseconds.
func tierSkew(seed int64, tier string, max time.Duration) int64 {
	rng := rand.New(rand.NewSource(seed ^ int64(fnvHash("skew/"+tier))))
	bound := max.Microseconds()
	if bound <= 0 {
		return 0
	}
	return rng.Int63n(2*bound+1) - bound
}

// splitLines splits on '\n', preserving a trailing empty slice when the
// data ends with a newline so joinLines round-trips exactly.
func splitLines(data []byte) [][]byte {
	return bytes.Split(data, []byte("\n"))
}

func joinLines(lines [][]byte) []byte {
	return bytes.Join(lines, []byte("\n"))
}

// isContent reports whether a line index holds fault-eligible content: past
// the header and non-empty.
func isContent(lines [][]byte, i, header int) bool {
	return i >= header && len(bytes.TrimSpace(lines[i])) > 0
}

// injectLineFaults applies the per-line fault kinds at the configured rate.
func injectLineFaults(lines [][]byte, header int, rate float64, enabled map[Kind]bool, rng *rand.Rand, fr *FileReport) [][]byte {
	var lineKinds []Kind
	for _, k := range LineKinds() {
		if enabled[k] {
			lineKinds = append(lineKinds, k)
		}
	}
	if len(lineKinds) == 0 || rate <= 0 {
		return lines
	}
	out := make([][]byte, 0, len(lines))
	for i, line := range lines {
		if !isContent(lines, i, header) || rng.Float64() >= rate {
			out = append(out, line)
			continue
		}
		switch k := lineKinds[rng.Intn(len(lineKinds))]; k {
		case KindGarbage:
			out = append(out, garbageLine(rng), line)
			fr.Injected[KindGarbage]++
		case KindTorn:
			if len(line) < 2 {
				out = append(out, line)
				continue
			}
			cut := 1 + rng.Intn(len(line)-1)
			out = append(out, line[:cut], line[cut:])
			fr.Injected[KindTorn]++
		case KindDuplicate:
			out = append(out, line, line)
			fr.Injected[KindDuplicate]++
		}
	}
	return out
}

// garbageLine fabricates an unparseable line: binary junk bracketing a
// deterministic marker, so quarantine files are recognizable in tests.
func garbageLine(rng *rand.Rand) []byte {
	return []byte(fmt.Sprintf("\x00\x1f\x7f<<chaos-garbage %08x>>\x00", rng.Uint32()))
}

// truncateTail simulates rotation: cut the file so its final record is
// incomplete. Multi-line logs keep a prefix of their last record;
// single-line logs keep half of their final line.
func truncateTail(lines [][]byte, class fileClass, header int, rng *rand.Rand, fr *FileReport) [][]byte {
	// Find the content line indices.
	var content []int
	for i := range lines {
		if isContent(lines, i, header) {
			content = append(content, i)
		}
	}
	if len(content) < 2 {
		return lines
	}
	last := content[len(content)-1]
	switch class {
	case classEventRecord:
		// Walk back to the last record boundary ("# Time:"), keep 1–4 of
		// its five lines.
		start := -1
		for j := len(content) - 1; j >= 0; j-- {
			if bytes.HasPrefix(lines[content[j]], []byte("# Time:")) {
				start = content[j]
				break
			}
		}
		if start < 0 {
			return lines
		}
		keep := start + 1 + rng.Intn(3) // boundary line plus 0–2 more
		if keep > last {
			return lines
		}
		fr.Injected[KindTruncate] += last - keep + 1
		return append(lines[:keep:keep], []byte{})
	default:
		line := lines[last]
		if len(line) < 2 {
			return lines
		}
		cut := lines[:last:last]
		cut = append(cut, line[:len(line)/2], []byte{})
		fr.Injected[KindTruncate]++
		return cut
	}
}

// cutGap deletes a contiguous run of resource samples from the middle of
// the file.
func cutGap(lines [][]byte, header int, frac float64, rng *rand.Rand, fr *FileReport) [][]byte {
	var content []int
	for i := range lines {
		if isContent(lines, i, header) {
			content = append(content, i)
		}
	}
	gap := int(frac * float64(len(content)))
	if gap < 1 || len(content) <= gap+2 {
		return lines
	}
	// Keep the first and last samples so the series span survives.
	startIdx := 1 + rng.Intn(len(content)-gap-1)
	cutFrom, cutTo := content[startIdx], content[startIdx+gap-1]
	out := make([][]byte, 0, len(lines)-gap)
	out = append(out, lines[:cutFrom]...)
	out = append(out, lines[cutTo+1:]...)
	fr.Injected[KindGap] += gap
	return out
}

// Timestamp-rewriting patterns per event-log format.
var (
	upperBoundary = regexp.MustCompile(`\b(UA|UD|DS|DR)=(\d+)`)
	lowerBoundary = regexp.MustCompile(`\b(ua|ud|ds|dr)=(\d+)`)
	slowTime      = regexp.MustCompile(`^# Time: (\S+)$`)
	slowSetTS     = regexp.MustCompile(`^SET timestamp=(\d+);$`)
)

// mysqlTimeLayout mirrors the slow-log "# Time:" encoding.
const mysqlTimeLayout = "2006-01-02T15:04:05.000000Z"

// applySkew shifts every boundary timestamp in the file by off
// microseconds.
func applySkew(lines [][]byte, class fileClass, off int64) [][]byte {
	if off == 0 {
		return lines
	}
	shift := func(m [][]byte) []byte {
		v, err := strconv.ParseInt(string(m[2]), 10, 64)
		if err != nil || v == 0 {
			return append(append([]byte{}, m[1]...), append([]byte("="), m[2]...)...)
		}
		return []byte(fmt.Sprintf("%s=%d", m[1], v+off))
	}
	out := make([][]byte, len(lines))
	for i, line := range lines {
		switch {
		case class == classEventLine:
			line = replaceAllSubmatch(upperBoundary, line, shift)
			line = replaceAllSubmatch(lowerBoundary, line, shift)
		case class == classEventRecord:
			if m := slowTime.FindSubmatch(line); m != nil {
				if ts, err := time.Parse(mysqlTimeLayout, string(m[1])); err == nil {
					ts = ts.Add(time.Duration(off) * time.Microsecond)
					line = []byte("# Time: " + ts.UTC().Format(mysqlTimeLayout))
				}
			} else if m := slowSetTS.FindSubmatch(line); m != nil {
				if v, err := strconv.ParseInt(string(m[1]), 10, 64); err == nil {
					line = []byte(fmt.Sprintf("SET timestamp=%d;", v+off/1_000_000))
				}
			}
		}
		out[i] = line
	}
	return out
}

// replaceAllSubmatch is ReplaceAllFunc with submatch access.
func replaceAllSubmatch(re *regexp.Regexp, src []byte, fn func([][]byte) []byte) []byte {
	return re.ReplaceAllFunc(src, func(match []byte) []byte {
		return fn(re.FindSubmatch(match))
	})
}
