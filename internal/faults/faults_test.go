package faults

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// writeDir materializes a fake monitor-log directory.
func writeDir(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, body := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func apacheLines(n int) string {
	var b strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "10.1.1.32 - - [01/Apr/2017:00:00:00.%03d +0000] \"GET /rubbos/Browse?ID=req-%07d HTTP/1.1\" 200 4096 D=900 UA=%d UD=%d DS=- DR=-\n",
			i, i, 1491004800000000+int64(i)*1000, 1491004800000900+int64(i)*1000)
	}
	return b.String()
}

func slowLog(n int) string {
	var b strings.Builder
	b.WriteString("mysqld, Version: 5.7\nTcp port: 3306\nTime                 Id Command    Argument\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "# Time: 2017-04-01T00:00:%02d.000000Z\n", i%60)
		fmt.Fprintf(&b, "# User@Host: rubbos[rubbos] @ 10.1.1.34 [10.1.1.34]  Id:   %d\n", i)
		b.WriteString("# Query_time: 0.001000  Lock_time: 0.000010 Rows_sent: 1  Rows_examined: 1\n")
		fmt.Fprintf(&b, "SET timestamp=%d;\n", 1491004800+i)
		fmt.Fprintf(&b, "SELECT * FROM items /*ID=req-%07d q=0*/;\n", i)
	}
	return b.String()
}

func collectlCSV(n int) string {
	var b strings.Builder
	b.WriteString("#Date,Time,CPU,DskRead,DskWrite\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "20170401,00:00:%02d.000,12,5,9\n", i%60)
	}
	return b.String()
}

func testFiles() map[string]string {
	return map[string]string{
		"apache_access.log":  apacheLines(200),
		"mysql_slow.log":     slowLog(60),
		"mysql_collectl.csv": collectlCSV(100),
		"apache_sar.xml":     "<sysstat><host>apache</host></sysstat>\n",
		"cjdbc_ctrl.log":     "[cjdbc-ctrl] 1491004800.004893 vdb=rubbos req=req-0000001 q=0 ua=1491004800004893 ud=1491004800005500 ds=- dr=- sql=\"SELECT 1\"\n",
	}
}

func readAll(t *testing.T, dir string) map[string][]byte {
	t.Helper()
	out := make(map[string][]byte)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		out[e.Name()] = data
	}
	return out
}

// TestCorruptDeterministic is the replayability contract: same seed and
// input produce byte-identical output directories.
func TestCorruptDeterministic(t *testing.T) {
	src := writeDir(t, testFiles())
	cfg := Config{Seed: 42, Rate: 0.05, Kinds: AllKinds(),
		DeleteTiers: []string{"tomcat"}}
	dst1, dst2 := t.TempDir(), t.TempDir()
	rep1, err := Corrupt(src, dst1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := Corrupt(src, dst2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	a, b := readAll(t, dst1), readAll(t, dst2)
	if len(a) != len(b) {
		t.Fatalf("file count differs: %d vs %d", len(a), len(b))
	}
	for name, data := range a {
		if !bytes.Equal(data, b[name]) {
			t.Errorf("%s differs between identical passes", name)
		}
	}
	for _, k := range AllKinds() {
		if rep1.Total(k) != rep2.Total(k) {
			t.Errorf("kind %s: injected %d vs %d", k, rep1.Total(k), rep2.Total(k))
		}
	}
}

// TestCorruptSeedsDiffer guards against the RNG being ignored.
func TestCorruptSeedsDiffer(t *testing.T) {
	src := writeDir(t, testFiles())
	cfg := Config{Seed: 1, Rate: 0.1}
	dst1, dst2 := t.TempDir(), t.TempDir()
	if _, err := Corrupt(src, dst1, cfg); err != nil {
		t.Fatal(err)
	}
	cfg.Seed = 2
	if _, err := Corrupt(src, dst2, cfg); err != nil {
		t.Fatal(err)
	}
	a, b := readAll(t, dst1), readAll(t, dst2)
	if bytes.Equal(a["apache_access.log"], b["apache_access.log"]) {
		t.Error("different seeds produced identical apache corruption")
	}
}

// TestGarbageLinesCounted checks the report's injection counts match the
// bytes on disk, which the exact-quarantine-count ingest test relies on.
func TestGarbageLinesCounted(t *testing.T) {
	src := writeDir(t, map[string]string{"apache_access.log": apacheLines(500)})
	dst := t.TempDir()
	rep, err := Corrupt(src, dst, Config{Seed: 7, Rate: 0.05,
		Kinds: []Kind{KindGarbage}})
	if err != nil {
		t.Fatal(err)
	}
	n := rep.Total(KindGarbage)
	if n == 0 {
		t.Fatal("rate 0.05 over 500 lines injected no garbage")
	}
	data := readAll(t, dst)["apache_access.log"]
	got := bytes.Count(data, []byte("<<chaos-garbage"))
	if got != n {
		t.Errorf("report says %d garbage lines, file has %d markers", n, got)
	}
}

// TestTruncateSlowLogMidRecord verifies truncation lands inside the final
// five-line record, which is what exercises the parser's resync path.
func TestTruncateSlowLogMidRecord(t *testing.T) {
	src := writeDir(t, map[string]string{"mysql_slow.log": slowLog(20)})
	dst := t.TempDir()
	rep, err := Corrupt(src, dst, Config{Seed: 3, Kinds: []Kind{KindTruncate}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total(KindTruncate) == 0 {
		t.Fatal("no truncation injected")
	}
	data := readAll(t, dst)["mysql_slow.log"]
	records := bytes.Count(data, []byte("# Time:"))
	complete := bytes.Count(data, []byte("SELECT"))
	if records != complete+1 {
		t.Errorf("want exactly one incomplete record: %d boundaries, %d complete", records, complete)
	}
}

// TestGapCutsResmonSamples verifies the resource-monitor gap fault.
func TestGapCutsResmonSamples(t *testing.T) {
	src := writeDir(t, map[string]string{"mysql_collectl.csv": collectlCSV(100)})
	dst := t.TempDir()
	rep, err := Corrupt(src, dst, Config{Seed: 5, Kinds: []Kind{KindGap}})
	if err != nil {
		t.Fatal(err)
	}
	gap := rep.Total(KindGap)
	if gap == 0 {
		t.Fatal("no gap injected")
	}
	data := readAll(t, dst)["mysql_collectl.csv"]
	rows := bytes.Count(data, []byte("20170401,"))
	if rows != 100-gap {
		t.Errorf("want %d rows after gap of %d, got %d", 100-gap, gap, rows)
	}
	if !bytes.HasPrefix(data, []byte("#Date,Time,")) {
		t.Error("gap fault destroyed the CSV header")
	}
}

// TestDeleteTierRemovesEventLog verifies delete-tier removes event logs but
// keeps the tier's resource files.
func TestDeleteTierRemovesEventLog(t *testing.T) {
	src := writeDir(t, testFiles())
	dst := t.TempDir()
	rep, err := Corrupt(src, dst, Config{Seed: 1,
		Kinds: []Kind{KindDeleteTier}, DeleteTiers: []string{"mysql"}})
	if err != nil {
		t.Fatal(err)
	}
	got := readAll(t, dst)
	if _, ok := got["mysql_slow.log"]; ok {
		t.Error("mysql_slow.log survived delete-tier")
	}
	if _, ok := got["mysql_collectl.csv"]; !ok {
		t.Error("delete-tier removed the tier's resource file too")
	}
	deleted := false
	for _, f := range rep.Files {
		if f.Name == "mysql_slow.log" && f.Deleted {
			deleted = true
		}
	}
	if !deleted {
		t.Error("report does not mark mysql_slow.log deleted")
	}
}

// TestSkewBounded verifies skewed timestamps stay within SkewMax and the
// reference tier is untouched.
func TestSkewBounded(t *testing.T) {
	src := writeDir(t, testFiles())
	dst := t.TempDir()
	rep, err := Corrupt(src, dst, Config{Seed: 11, Kinds: []Kind{KindSkew},
		SkewMax: 500 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	got := readAll(t, dst)
	orig := readAll(t, src)
	if !bytes.Equal(got["apache_access.log"], orig["apache_access.log"]) {
		t.Error("reference tier apache was skewed")
	}
	for _, f := range rep.Files {
		if f.SkewMicros > 500 || f.SkewMicros < -500 {
			t.Errorf("%s skew %dµs exceeds bound", f.Name, f.SkewMicros)
		}
		if f.Name == "apache_access.log" && f.SkewMicros != 0 {
			t.Error("apache reported nonzero skew")
		}
	}
}

// TestPassthroughFiles verifies XML and unknown files survive unmodified.
func TestPassthroughFiles(t *testing.T) {
	src := writeDir(t, testFiles())
	dst := t.TempDir()
	if _, err := Corrupt(src, dst, Config{Seed: 9, Rate: 0.5, Kinds: AllKinds()}); err != nil {
		t.Fatal(err)
	}
	got, orig := readAll(t, dst), readAll(t, src)
	if !bytes.Equal(got["apache_sar.xml"], orig["apache_sar.xml"]) {
		t.Error("sar XML was corrupted; structured files must pass through")
	}
}

func TestParseKinds(t *testing.T) {
	ks, err := ParseKinds("garbage, torn")
	if err != nil {
		t.Fatal(err)
	}
	if len(ks) != 2 || ks[0] != KindGarbage || ks[1] != KindTorn {
		t.Errorf("got %v", ks)
	}
	if _, err := ParseKinds("nonsense"); err == nil {
		t.Error("want error for unknown kind")
	}
	if ks, err := ParseKinds(""); err != nil || ks != nil {
		t.Errorf("empty spec: got %v, %v", ks, err)
	}
}
