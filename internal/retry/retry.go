// Package retry is the bounded exponential-backoff policy shared by the
// writers that can fail transiently: warehouse checkpoint saves and
// quarantine-sink creation. It exists so every caller retries the same
// way — a fixed attempt budget with exponential spacing — instead of each
// site inventing its own loop, and so tests can inject a recording sleep.
package retry

import (
	"fmt"
	"time"
)

// Policy bounds a retry loop. The zero value is not usable; start from
// Default and override fields.
type Policy struct {
	// Attempts is the total number of tries, including the first.
	Attempts int
	// Base is the delay before the second attempt; each further attempt
	// doubles it.
	Base time.Duration
	// Max caps the per-attempt delay.
	Max time.Duration
	// Sleep is the delay function; nil uses time.Sleep. Tests inject a
	// recorder here so backoff shapes are asserted without wall time.
	Sleep func(time.Duration)
}

// Default is the policy the warehouse and quarantine writers use: four
// attempts spaced 5ms, 10ms, 20ms — enough to ride out a transient EMFILE
// or a filesystem hiccup without stalling the pipeline noticeably.
var Default = Policy{Attempts: 4, Base: 5 * time.Millisecond, Max: 250 * time.Millisecond}

// Do runs op until it succeeds or the attempt budget is spent, sleeping
// the backoff schedule between tries. The returned error is the last
// failure, annotated with the attempt count.
func (p Policy) Do(op func() error) error {
	attempts := p.Attempts
	if attempts <= 0 {
		attempts = 1
	}
	sleep := p.Sleep
	if sleep == nil {
		sleep = time.Sleep
	}
	delay := p.Base
	var err error
	for i := 0; i < attempts; i++ {
		if err = op(); err == nil {
			return nil
		}
		if i == attempts-1 {
			break
		}
		if delay > 0 {
			sleep(delay)
			delay *= 2
			if p.Max > 0 && delay > p.Max {
				delay = p.Max
			}
		}
	}
	return fmt.Errorf("after %d attempts: %w", attempts, err)
}
