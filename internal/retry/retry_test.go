package retry

import (
	"errors"
	"testing"
	"time"
)

func TestDoSucceedsAfterTransientFailures(t *testing.T) {
	var slept []time.Duration
	p := Policy{Attempts: 4, Base: 5 * time.Millisecond, Max: 250 * time.Millisecond,
		Sleep: func(d time.Duration) { slept = append(slept, d) }}
	calls := 0
	err := p.Do(func() error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if calls != 3 {
		t.Errorf("op ran %d times, want 3", calls)
	}
	want := []time.Duration{5 * time.Millisecond, 10 * time.Millisecond}
	if len(slept) != len(want) {
		t.Fatalf("slept %v, want %v", slept, want)
	}
	for i := range want {
		if slept[i] != want[i] {
			t.Errorf("backoff %d = %v, want %v (exponential doubling)", i, slept[i], want[i])
		}
	}
}

func TestDoExhaustsBudget(t *testing.T) {
	var slept []time.Duration
	p := Policy{Attempts: 3, Base: time.Millisecond, Max: time.Millisecond,
		Sleep: func(d time.Duration) { slept = append(slept, d) }}
	sentinel := errors.New("disk full")
	calls := 0
	err := p.Do(func() error { calls++; return sentinel })
	if calls != 3 {
		t.Errorf("op ran %d times, want 3", calls)
	}
	if !errors.Is(err, sentinel) {
		t.Errorf("error %v does not wrap the last failure", err)
	}
	// Max caps the schedule: 1ms then 1ms, not 2ms.
	for i, d := range slept {
		if d != time.Millisecond {
			t.Errorf("backoff %d = %v, want capped 1ms", i, d)
		}
	}
	if len(slept) != 2 {
		t.Errorf("slept %d times between 3 attempts, want 2", len(slept))
	}
}

func TestDoZeroValueRunsOnce(t *testing.T) {
	calls := 0
	if err := (Policy{}).Do(func() error { calls++; return nil }); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Errorf("zero policy ran op %d times, want exactly 1", calls)
	}
}
