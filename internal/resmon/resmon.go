// Package resmon implements the resource mScopeMonitors: simulated SAR,
// iostat and collectl processes that sample each node's true resource
// counters at a configurable (millisecond-scale) interval and write
// reports in each tool's native file format. The heterogeneity of these
// formats — plain-text SAR, XML SAR (the paper's "newer version" path),
// multi-block iostat reports, collectl brief and CSV modes — is exactly
// what mScopeDataTransformer exists to unify.
package resmon

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"github.com/gt-elba/milliscope/internal/des"
	"github.com/gt-elba/milliscope/internal/logfmt"
	"github.com/gt-elba/milliscope/internal/ntier"
	"github.com/gt-elba/milliscope/internal/resources"
	"github.com/gt-elba/milliscope/internal/simtime"
)

// Kind selects a resource monitoring tool and output format.
type Kind int

// Supported resource monitors.
const (
	// SARText is classic `sar` plain-text output (the legacy path with a
	// custom parser in the paper's Figure 3).
	SARText Kind = iota + 1
	// SARXML is `sadf -x` XML output (the upgraded path that bypasses the
	// custom parser).
	SARXML
	// Iostat is `iostat -tx` extended device reports.
	Iostat
	// CollectlPlain is collectl's brief terminal format.
	CollectlPlain
	// CollectlCSV is collectl's -P plot format, including the memory
	// subsystem (dirty pages) used in the paper's Section V-B.
	CollectlCSV
	// Pidstat is per-process CPU accounting: the component server process
	// and the kernel flusher thread each get a row, which is how CPU burnt
	// by dirty-page recycling is attributed to its consumer.
	Pidstat
)

func (k Kind) String() string {
	switch k {
	case SARText:
		return "sar"
	case SARXML:
		return "sar-xml"
	case Iostat:
		return "iostat"
	case CollectlPlain:
		return "collectl"
	case CollectlCSV:
		return "collectl-csv"
	case Pidstat:
		return "pidstat"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// FileName returns the log file name for a node/kind pair; the transform
// pipeline's declarations match on these suffixes.
func FileName(node string, kind Kind) string {
	switch kind {
	case SARText:
		return node + "_sar.log"
	case SARXML:
		return node + "_sar.xml"
	case Iostat:
		return node + "_iostat.log"
	case CollectlPlain:
		return node + "_collectl.log"
	case CollectlCSV:
		return node + "_collectl.csv"
	case Pidstat:
		return node + "_pidstat.log"
	default:
		panic(fmt.Sprintf("resmon: unknown kind %d", int(kind)))
	}
}

// AllKinds lists every supported monitor kind.
func AllKinds() []Kind {
	return []Kind{SARText, SARXML, Iostat, CollectlPlain, CollectlCSV, Pidstat}
}

// Config describes the monitoring deployment for one run.
type Config struct {
	// Interval is the sampling period (the paper's point: it can be tens
	// of milliseconds without perturbing the system).
	Interval time.Duration
	// Kinds lists which monitors run on every tier node.
	Kinds []Kind
	// CPUPerSample is the sampling overhead burned per tick per monitor.
	CPUPerSample time.Duration
}

// DefaultConfig samples every 50 ms with collectl CSV plus SAR XML.
func DefaultConfig() Config {
	return Config{
		Interval:     50 * time.Millisecond,
		Kinds:        []Kind{CollectlCSV, SARXML},
		CPUPerSample: 30 * time.Microsecond,
	}
}

// Set is the deployed collection of resource monitors.
type Set struct {
	// Paths maps "<node>/<kind>" to the written file path.
	Paths map[string]string

	monitors []*monitor
	files    []*os.File
}

// Start deploys the configured monitors on every tier node, sampling until
// virtual time `until`, writing into dir.
func Start(sys *ntier.System, dir string, cfg Config, until des.Time) (*Set, error) {
	if cfg.Interval <= 0 {
		return nil, fmt.Errorf("resmon: non-positive interval %v", cfg.Interval)
	}
	if len(cfg.Kinds) == 0 {
		return nil, fmt.Errorf("resmon: no monitor kinds configured")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("resmon: create log dir: %w", err)
	}
	set := &Set{Paths: make(map[string]string)}
	for _, srv := range sys.Servers() {
		for _, kind := range cfg.Kinds {
			p := filepath.Join(dir, FileName(srv.Name(), kind))
			f, err := os.Create(p)
			if err != nil {
				set.Close()
				return nil, fmt.Errorf("resmon: create %s: %w", p, err)
			}
			set.files = append(set.files, f)
			m := &monitor{
				srv:  srv,
				kind: kind,
				w:    bufio.NewWriterSize(f, 1<<15),
				cpu:  cfg.CPUPerSample,
			}
			set.monitors = append(set.monitors, m)
			set.Paths[srv.Name()+"/"+kind.String()] = p
			m.start(sys.Eng, cfg.Interval, until)
		}
	}
	return set, nil
}

// Close finalizes documents (SAR XML epilogue), flushes and closes files.
func (s *Set) Close() error {
	var firstErr error
	for _, m := range s.monitors {
		if err := m.finish(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	for _, f := range s.files {
		if err := f.Close(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("resmon: close: %w", err)
		}
	}
	s.monitors = nil
	s.files = nil
	return firstErr
}

// Deterministic identities for the pidstat rows.
const (
	procUID    = 48 // apache-ish uid
	procPID    = 2817
	flusherPID = 153
)

// processOf names the main server process on a tier node.
func processOf(node string) string {
	switch node {
	case "apache":
		return "httpd"
	case "tomcat", "cjdbc":
		return "java"
	case "mysql":
		return "mysqld"
	default:
		return node + "d"
	}
}

// monitor samples one node with one tool.
type monitor struct {
	srv  *ntier.Server
	kind Kind
	w    *bufio.Writer
	cpu  time.Duration

	prev    resources.Snapshot
	rows    int
	started bool
}

func (m *monitor) start(eng *des.Engine, interval time.Duration, until des.Time) {
	m.prev = m.srv.Node().Snap()
	m.writeHeader()
	eng.Every(des.Time(interval), interval, func(now des.Time) bool {
		m.sample()
		return now >= until
	})
}

func (m *monitor) node() *resources.Node { return m.srv.Node() }

func (m *monitor) writeHeader() {
	n := m.node()
	date := simtime.Epoch
	var err error
	switch m.kind {
	case SARText:
		_, err = m.w.WriteString(logfmt.SARHeader(n.Name(), n.Config().Cores, date) + "\n")
	case SARXML:
		_, err = m.w.WriteString(logfmt.SARXMLOpen(n.Name(), n.Config().Cores, date))
	case Iostat:
		_, err = m.w.WriteString(logfmt.IostatHeader(n.Name(), n.Config().Cores, date) + "\n")
	case CollectlPlain:
		_, err = m.w.WriteString(logfmt.CollectlPlainHeader())
	case CollectlCSV:
		_, err = m.w.WriteString(logfmt.CollectlCSVHeader())
	case Pidstat:
		_, err = m.w.WriteString(logfmt.SARHeader(n.Name(), n.Config().Cores, date) + "\n")
	}
	if err != nil {
		panic(fmt.Sprintf("resmon: write header: %v", err))
	}
}

// sample takes one interval report and writes it.
func (m *monitor) sample() {
	n := m.node()
	snap := n.Snap()
	iv := resources.Diff(m.prev, snap, n.Config().Cores)
	m.prev = snap
	ts := n.Wall(snap.At)

	var rec string
	switch m.kind {
	case SARText:
		if m.rows%20 == 0 {
			rec = logfmt.SARCPUColumns(ts) + "\n"
		}
		rec += logfmt.SARCPURow(ts, iv) + "\n"
	case SARXML:
		rec = logfmt.SARXMLTimestamp(ts, iv)
	case Iostat:
		rec = logfmt.IostatReport(ts, "sda", iv)
	case CollectlPlain:
		rec = logfmt.CollectlPlainRow(ts, iv) + "\n"
	case CollectlCSV:
		rec = logfmt.CollectlCSVRow(ts, iv) + "\n"
	case Pidstat:
		if m.rows%20 == 0 {
			rec = logfmt.PidstatColumns(ts) + "\n"
		}
		appPct := iv.UserPct + iv.SystemPct - iv.FlusherPct
		rec += logfmt.PidstatRow(ts, procUID, procPID, iv.UserPct,
			iv.SystemPct-iv.FlusherPct, appPct, 0, processOf(n.Name())) + "\n"
		rec += logfmt.PidstatRow(ts, 0, flusherPID, 0, iv.FlusherPct,
			iv.FlusherPct, 1, "kworker/u16:flush") + "\n"
	}
	if _, err := m.w.WriteString(rec); err != nil {
		panic(fmt.Sprintf("resmon: write sample: %v", err))
	}
	m.rows++
	// Sampling overhead: a short system-mode burn, the cost the paper
	// keeps negligible by leaning on existing tools.
	if m.cpu > 0 {
		n.CPU.Exec(m.cpu, resources.ModeSystem, nil)
	}
}

// finish writes format epilogues and flushes.
func (m *monitor) finish() error {
	if m.kind == SARXML {
		if _, err := m.w.WriteString(logfmt.SARXMLClose()); err != nil {
			return fmt.Errorf("resmon: close sar xml: %w", err)
		}
	}
	if err := m.w.Flush(); err != nil {
		return fmt.Errorf("resmon: flush: %w", err)
	}
	return nil
}
