package resmon

import (
	"os"
	"strings"
	"testing"
	"time"
)

func TestPidstatOutputShape(t *testing.T) {
	cfg := Config{Interval: 100 * time.Millisecond, Kinds: []Kind{Pidstat}}
	_, set := runMonitored(t, cfg)
	data, err := os.ReadFile(set.Paths["tomcat/pidstat"])
	if err != nil {
		t.Fatal(err)
	}
	content := string(data)
	if !strings.HasPrefix(content, "Linux ") {
		t.Fatal("pidstat missing sysstat banner")
	}
	if !strings.Contains(content, "%usr") {
		t.Fatal("pidstat missing column header")
	}
	javaRows := strings.Count(content, "  java")
	flushRows := strings.Count(content, "kworker/u16:flush")
	if javaRows == 0 || flushRows == 0 {
		t.Fatalf("pidstat rows: java=%d flusher=%d", javaRows, flushRows)
	}
	if javaRows != flushRows {
		t.Fatalf("unpaired process rows: java=%d flusher=%d", javaRows, flushRows)
	}
	// ~10 samples over 1s at 100ms.
	if javaRows < 8 || javaRows > 12 {
		t.Fatalf("%d samples, want ~10", javaRows)
	}
}

func TestPidstatProcessNames(t *testing.T) {
	cases := map[string]string{
		"apache": "httpd", "tomcat": "java", "cjdbc": "java",
		"mysql": "mysqld", "other": "otherd",
	}
	for node, want := range cases {
		if got := processOf(node); got != want {
			t.Fatalf("processOf(%s) = %q, want %q", node, got, want)
		}
	}
}
