package resmon

import (
	"encoding/xml"
	"os"
	"strings"
	"testing"
	"time"

	"github.com/gt-elba/milliscope/internal/des"
	"github.com/gt-elba/milliscope/internal/ntier"
)

func runMonitored(t *testing.T, cfg Config) (*ntier.System, *Set) {
	t.Helper()
	ncfg := ntier.DefaultConfig()
	ncfg.Users = 40
	ncfg.Duration = time.Second
	ncfg.ThinkTime = 250 * time.Millisecond
	ncfg.Seed = 3
	sys := ntier.New(ncfg)
	set, err := Start(sys, t.TempDir(), cfg, des.Time(ncfg.Duration))
	if err != nil {
		t.Fatalf("start: %v", err)
	}
	ntier.Run(sys)
	if err := set.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	return sys, set
}

func TestAllKindsProduceFiles(t *testing.T) {
	cfg := Config{Interval: 100 * time.Millisecond, Kinds: AllKinds(),
		CPUPerSample: 20 * time.Microsecond}
	_, set := runMonitored(t, cfg)
	if len(set.Paths) != 4*len(AllKinds()) {
		t.Fatalf("%d files, want %d", len(set.Paths), 4*len(AllKinds()))
	}
	for key, path := range set.Paths {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("read %s: %v", key, err)
		}
		if len(data) == 0 {
			t.Fatalf("%s is empty", key)
		}
	}
}

func TestSampleCountMatchesInterval(t *testing.T) {
	cfg := Config{Interval: 50 * time.Millisecond, Kinds: []Kind{CollectlCSV}}
	_, set := runMonitored(t, cfg)
	data, err := os.ReadFile(set.Paths["apache/collectl-csv"])
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(string(data), "\n")
	// 1s at 50ms = 20 samples + 1 header.
	if lines < 19 || lines > 23 {
		t.Fatalf("collectl csv has %d lines, want ~21", lines)
	}
}

func TestSARXMLIsWellFormed(t *testing.T) {
	cfg := Config{Interval: 100 * time.Millisecond, Kinds: []Kind{SARXML}}
	_, set := runMonitored(t, cfg)
	data, err := os.ReadFile(set.Paths["mysql/sar-xml"])
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		XMLName xml.Name `xml:"sysstat"`
		Host    struct {
			Nodename   string `xml:"nodename,attr"`
			Statistics struct {
				Timestamps []struct {
					Time string `xml:"time,attr"`
					CPU  struct {
						Rows []struct {
							User   string `xml:"user,attr"`
							IOWait string `xml:"iowait,attr"`
						} `xml:"cpu"`
					} `xml:"cpu-load"`
				} `xml:"timestamp"`
			} `xml:"statistics"`
		} `xml:"host"`
	}
	if err := xml.Unmarshal(data, &doc); err != nil {
		t.Fatalf("sar xml does not parse: %v", err)
	}
	if doc.Host.Nodename != "mysql" {
		t.Fatalf("nodename %q", doc.Host.Nodename)
	}
	if len(doc.Host.Statistics.Timestamps) < 8 {
		t.Fatalf("only %d timestamps", len(doc.Host.Statistics.Timestamps))
	}
}

func TestSARTextRepeatsColumnHeader(t *testing.T) {
	cfg := Config{Interval: 20 * time.Millisecond, Kinds: []Kind{SARText}}
	_, set := runMonitored(t, cfg)
	data, err := os.ReadFile(set.Paths["tomcat/sar"])
	if err != nil {
		t.Fatal(err)
	}
	headers := strings.Count(string(data), "%user")
	// 1s at 20ms = 50 rows, header every 20 rows → at least 2 headers.
	if headers < 2 {
		t.Fatalf("column header repeated %d times, want >=2", headers)
	}
}

func TestCollectlCSVReflectsLoad(t *testing.T) {
	cfg := Config{Interval: 50 * time.Millisecond, Kinds: []Kind{CollectlCSV}}
	_, set := runMonitored(t, cfg)
	data, err := os.ReadFile(set.Paths["mysql/collectl-csv"])
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	sawCPU := false
	for _, ln := range lines[1:] {
		fields := strings.Split(ln, ",")
		if len(fields) != 18 {
			t.Fatalf("row has %d fields, want 18: %s", len(fields), ln)
		}
		if fields[2] != "0.00" {
			sawCPU = true
		}
	}
	if !sawCPU {
		t.Fatal("mysql CPU never non-zero under load")
	}
}

func TestIostatReports(t *testing.T) {
	cfg := Config{Interval: 100 * time.Millisecond, Kinds: []Kind{Iostat}}
	_, set := runMonitored(t, cfg)
	data, err := os.ReadFile(set.Paths["mysql/iostat"])
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	if strings.Count(s, "avg-cpu:") < 8 {
		t.Fatalf("iostat has %d reports", strings.Count(s, "avg-cpu:"))
	}
	if !strings.Contains(s, "sda") {
		t.Fatal("no device rows")
	}
}

func TestBadConfigs(t *testing.T) {
	sys := ntier.New(ntier.DefaultConfig())
	if _, err := Start(sys, t.TempDir(), Config{Interval: 0, Kinds: AllKinds()}, 1); err == nil {
		t.Fatal("zero interval accepted")
	}
	if _, err := Start(sys, t.TempDir(), Config{Interval: time.Second}, 1); err == nil {
		t.Fatal("empty kinds accepted")
	}
}

func TestFileNameMapping(t *testing.T) {
	cases := map[Kind]string{
		SARText:       "db1_sar.log",
		SARXML:        "db1_sar.xml",
		Iostat:        "db1_iostat.log",
		CollectlPlain: "db1_collectl.log",
		CollectlCSV:   "db1_collectl.csv",
	}
	for kind, want := range cases {
		if got := FileName("db1", kind); got != want {
			t.Fatalf("FileName(db1,%v) = %q, want %q", kind, got, want)
		}
	}
}
