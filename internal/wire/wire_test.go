package wire

import (
	"bytes"
	"io"
	"reflect"
	"strings"
	"testing"

	"github.com/gt-elba/milliscope/internal/mxml"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte("hello frame")
	if err := WriteFrame(&buf, TypeHello, payload); err != nil {
		t.Fatal(err)
	}
	typ, got, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if typ != TypeHello || !bytes.Equal(got, payload) {
		t.Fatalf("got type %d payload %q", typ, got)
	}
	// A clean boundary reads io.EOF, not ErrUnexpectedEOF.
	if _, _, err := ReadFrame(&buf); err != io.EOF {
		t.Fatalf("at boundary: %v", err)
	}
}

func TestFrameTruncation(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, TypeAck, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	whole := buf.Bytes()
	for cut := 1; cut < len(whole); cut++ {
		_, _, err := ReadFrame(bytes.NewReader(whole[:cut]))
		if err == nil {
			t.Fatalf("cut at %d decoded", cut)
		}
		if err == io.EOF {
			t.Fatalf("cut at %d reported clean EOF", cut)
		}
	}
}

func TestFrameRejectsOversizeAndUnknownType(t *testing.T) {
	oversize := []byte{0xff, 0xff, 0xff, 0xff, TypeHello}
	if _, _, err := ReadFrame(bytes.NewReader(append(oversize, 0))); err == nil ||
		!strings.Contains(err.Error(), "exceeds max") {
		t.Fatalf("oversize length: %v", err)
	}
	bad := []byte{0, 0, 0, 0, 99}
	if _, _, err := ReadFrame(bytes.NewReader(bad)); err == nil ||
		!strings.Contains(err.Error(), "unknown frame type") {
		t.Fatalf("unknown type: %v", err)
	}
	if err := WriteFrame(io.Discard, TypeBatch, make([]byte, MaxFrame+1)); err == nil {
		t.Fatal("oversize write accepted")
	}
}

func TestMessageRoundTrips(t *testing.T) {
	h := Hello{Version: Version, AgentID: "node-3", Token: "s3cret"}
	if got, err := DecodeHello(EncodeHello(h)); err != nil || got != h {
		t.Fatalf("hello: %+v %v", got, err)
	}
	ha := HelloAck{OK: true, Reason: "", Credit: 4096}
	if got, err := DecodeHelloAck(EncodeHelloAck(ha)); err != nil || got != ha {
		t.Fatalf("helloack: %+v %v", got, err)
	}
	o := Open{SourceID: 7, Key: "/logs/apache_event.log", Name: "apache_event.log"}
	if got, err := DecodeOpen(EncodeOpen(o)); err != nil || got != o {
		t.Fatalf("open: %+v %v", got, err)
	}
	r := Resume{SourceID: 7, Offset: -1}
	if got, err := DecodeResume(EncodeResume(r)); err != nil || got != r {
		t.Fatalf("resume: %+v %v", got, err)
	}
	a := Ack{SourceID: 7, Seq: 42, Offset: 1 << 40, Credit: 512}
	if got, err := DecodeAck(EncodeAck(a)); err != nil || got != a {
		t.Fatalf("ack: %+v %v", got, err)
	}
	c := Control{State: 1, QueuePct: 88}
	if got, err := DecodeControl(EncodeControl(c)); err != nil || got != c {
		t.Fatalf("control: %+v %v", got, err)
	}
	ss := SourceState{SourceID: 9, State: SourceFailed, Error: "parser died"}
	if got, err := DecodeSourceState(EncodeSourceState(ss)); err != nil || got != ss {
		t.Fatalf("sourcestate: %+v %v", got, err)
	}
	g := Goodbye{Reason: "drained"}
	if got, err := DecodeGoodbye(EncodeGoodbye(g)); err != nil || got != g {
		t.Fatalf("goodbye: %+v %v", got, err)
	}
}

func TestMessageTrailingBytesRejected(t *testing.T) {
	b := append(EncodeAck(Ack{SourceID: 1, Seq: 1}), 0xee)
	if _, err := DecodeAck(b); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

func sampleEntries() []mxml.Entry {
	mk := func(fs ...mxml.Field) mxml.Entry { return mxml.Entry{Fields: fs} }
	return []mxml.Entry{
		mk(mxml.Field{Name: "reqid", Value: "R0001"}, mxml.Field{Name: "ua", Value: "100"},
			mxml.Field{Name: "ud", Value: "250"}),
		mk(mxml.Field{Name: "reqid", Value: "R0002"}, mxml.Field{Name: "ua", Value: "110"},
			mxml.Field{Name: "ud", Value: "260"}),
		// Shape change: a hint appears.
		mk(mxml.Field{Name: "ts", Value: "2026-01-01T00:00:00Z", Hint: "time"},
			mxml.Field{Name: "dsk_util", Value: "93.5"}),
		mk(mxml.Field{Name: "ts", Value: "2026-01-01T00:00:01Z", Hint: "time"},
			mxml.Field{Name: "dsk_util", Value: "91.0"}),
		// And back.
		mk(mxml.Field{Name: "reqid", Value: "R0003"}, mxml.Field{Name: "ua", Value: "120"},
			mxml.Field{Name: "ud", Value: "300"}),
	}
}

func TestBatchRoundTripPreservesEntries(t *testing.T) {
	in := sampleEntries()
	b := Batch{SourceID: 3, Seq: 9, Offset: 12345, Quarantined: 2}
	b.AppendEntries(in)
	if got := b.Records(); got != len(in) {
		t.Fatalf("Records() = %d, want %d", got, len(in))
	}
	if len(b.Segments) != 3 {
		t.Fatalf("segmented into %d runs, want 3 (shape changes twice)", len(b.Segments))
	}
	dec, err := DecodeBatch(EncodeBatch(&b))
	if err != nil {
		t.Fatal(err)
	}
	if dec.SourceID != 3 || dec.Seq != 9 || dec.Offset != 12345 || dec.Quarantined != 2 {
		t.Fatalf("header mangled: %+v", dec)
	}
	var out []mxml.Entry
	dec.EachEntry(func(e mxml.Entry) { out = append(out, e) })
	if len(out) != len(in) {
		t.Fatalf("round-tripped %d entries, want %d", len(out), len(in))
	}
	for i := range in {
		if !reflect.DeepEqual(in[i].Fields, out[i].Fields) {
			t.Errorf("entry %d: %+v != %+v", i, out[i].Fields, in[i].Fields)
		}
	}
}

func TestBatchDecodeRejectsCorruptCounts(t *testing.T) {
	b := Batch{SourceID: 1, Seq: 1}
	b.AppendEntries(sampleEntries())
	good := EncodeBatch(&b)
	// Flipping bytes anywhere must never panic, and mostly must error.
	for i := range good {
		mut := append([]byte(nil), good...)
		mut[i] ^= 0xff
		_, _ = DecodeBatch(mut)
	}
	// A frame claiming absurd rows with no bytes behind it errors.
	var e enc
	e.u32(1)
	e.uv(1)
	e.iv(0)
	e.iv(0)
	e.uv(1) // one segment
	e.uv(1) // one field
	e.str("f")
	e.str("")
	e.uv(1 << 40) // rows
	if _, err := DecodeBatch(e.b); err == nil {
		t.Fatal("absurd row count accepted")
	}
}

func TestConnFrameStream(t *testing.T) {
	var buf bytes.Buffer
	c := NewConn(struct {
		io.Reader
		io.Writer
	}{&buf, &buf})
	if err := c.Write(TypeControl, EncodeControl(Control{State: 2})); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	typ, p, err := c.Read()
	if err != nil || typ != TypeControl {
		t.Fatalf("read: %d %v", typ, err)
	}
	if got, err := DecodeControl(p); err != nil || got.State != 2 {
		t.Fatalf("control: %+v %v", got, err)
	}
}
