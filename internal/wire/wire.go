// Package wire is the agent↔collector protocol of the distributed
// deployment: per-node `mscope agent` monitors ship checkpointed column
// batches to a central `mscope collector` over a length-prefixed framed
// stream (TCP or unix socket). Every frame is self-delimiting — a 4-byte
// big-endian payload length, a 1-byte type, and a type-specific payload —
// so the decoder never reads past a frame and arbitrary garbage is
// rejected with an error, never a panic (FuzzWireFrameDecode pins this).
//
// The protocol embeds the resume and flow-control primitives the
// single-process pipeline already has:
//
//   - each Batch carries the source's monotone sequence number and the
//     tailer byte offset its records are checkpointed at, so a restarted
//     agent resumes from the collector-acked offset with zero duplicates
//     (the PR 2/PR 6 ledger, generalized to (agent, source) keys);
//   - each Ack returns record credits, bounding the records in flight
//     end-to-end — a slow collector stops the agent's tailers instead of
//     growing an unbounded buffer;
//   - Control frames push the collector's fidelity state to agents, so a
//     degraded deployment is visible (and exportable) at every node.
package wire

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Version is the protocol revision; a Hello carrying a different version
// is rejected at handshake.
const Version = 1

// MaxFrame bounds a frame payload. A length prefix beyond it is a
// protocol error — the decoder must never allocate attacker-controlled
// amounts of memory.
const MaxFrame = 16 << 20

// Frame types.
const (
	// TypeHello opens a connection: agent → collector.
	TypeHello = byte(iota + 1)
	// TypeHelloAck accepts or rejects the handshake: collector → agent.
	TypeHelloAck
	// TypeOpen announces one source the agent will ship: agent → collector.
	TypeOpen
	// TypeResume answers an Open with the offset to tail from: collector → agent.
	TypeResume
	// TypeBatch ships a checkpointed column batch of records: agent → collector.
	TypeBatch
	// TypeAck confirms a batch is applied and returns credits: collector → agent.
	TypeAck
	// TypeControl pushes fidelity state and backoff hints: collector → agent.
	TypeControl
	// TypeSourceState reports a terminal source condition (a failed
	// parser): agent → collector.
	TypeSourceState
	// TypeGoodbye ends a session cleanly after all acks arrived: agent → collector.
	TypeGoodbye

	maxType = TypeGoodbye
)

// Hello is the handshake: protocol version, the agent's stable identity,
// and its auth token.
type Hello struct {
	Version uint32
	AgentID string
	Token   string
}

// HelloAck accepts (with an initial credit grant) or rejects a Hello.
type HelloAck struct {
	OK     bool
	Reason string
	// Credit is the initial record credit window: the agent may have at
	// most this many unacked records in flight.
	Credit int64
}

// Open announces one source. SourceID is connection-local (the agent
// numbers its sources); Key is the deployment-wide source identity the
// ledger checkpoints under (the log path, optionally prefixed per agent);
// Name is the base file name the collector resolves against the Parsing
// Declaration.
type Open struct {
	SourceID uint32
	Key      string
	Name     string
}

// Resume answers an Open: the byte offset the agent must start tailing
// at. Zero means re-read from the start (header-carrying formats resume
// by row count, which the collector applies on its side).
type Resume struct {
	SourceID uint32
	Offset   int64
}

// Batch is one checkpointed column batch: Seq is per-source and
// contiguous from 1 within a connection; Offset is the tailer byte
// offset every record in (and before) this batch is derived from;
// Quarantined is the source's running malformed-region count in this
// agent incarnation. Records are column-encoded (see Segment).
type Batch struct {
	SourceID    uint32
	Seq         uint64
	Offset      int64
	Quarantined int64
	Segments    []Segment
}

// Records counts the rows across the batch's segments.
func (b *Batch) Records() int {
	n := 0
	for i := range b.Segments {
		n += b.Segments[i].Rows
	}
	return n
}

// Ack confirms the collector applied a batch. Credit returns the
// record-count window consumed by that batch to the agent.
type Ack struct {
	SourceID uint32
	Seq      uint64
	Offset   int64
	Credit   int64
}

// Control pushes the collector's fidelity state (a fidelity.State value)
// to every agent whenever it changes. Queue is the collector's record
// channel fill in percent — a backoff hint agents export.
type Control struct {
	State    uint8
	QueuePct uint8
}

// Source terminal states shipped in SourceState.
const (
	SourceFailed = uint8(1)
	SourceEOF    = uint8(2)
)

// SourceState reports a source-level terminal condition.
type SourceState struct {
	SourceID uint32
	State    uint8
	Error    string
}

// Goodbye closes a session cleanly; the agent sends it only after every
// outstanding batch was acked, so the collector can retire the
// connection's sources knowing all their records are applied.
type Goodbye struct {
	Reason string
}

// WriteFrame encodes one frame — length, type, payload — to w.
func WriteFrame(w io.Writer, typ byte, payload []byte) error {
	if len(payload) > MaxFrame {
		return fmt.Errorf("wire: frame payload %d exceeds max %d", len(payload), MaxFrame)
	}
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(payload)))
	hdr[4] = typ
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame decodes one frame from r. It returns io.EOF only at a clean
// frame boundary; a truncated frame is io.ErrUnexpectedEOF.
func ReadFrame(r io.Reader) (typ byte, payload []byte, err error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:1]); err != nil {
		return 0, nil, err
	}
	if _, err := io.ReadFull(r, hdr[1:]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:4])
	typ = hdr[4]
	if n > MaxFrame {
		return 0, nil, fmt.Errorf("wire: frame length %d exceeds max %d", n, MaxFrame)
	}
	if typ == 0 || typ > maxType {
		return 0, nil, fmt.Errorf("wire: unknown frame type %d", typ)
	}
	payload = make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, err
	}
	return typ, payload, nil
}

// enc is a little append-based encoder: uvarint-framed strings and
// varint-encoded integers keep small frames small (a typical Ack is under
// twenty bytes).
type enc struct{ b []byte }

func (e *enc) u32(v uint32) { e.b = binary.BigEndian.AppendUint32(e.b, v) }
func (e *enc) uv(v uint64)  { e.b = binary.AppendUvarint(e.b, v) }
func (e *enc) iv(v int64)   { e.b = binary.AppendVarint(e.b, v) }
func (e *enc) byte(v byte)  { e.b = append(e.b, v) }
func (e *enc) bool(v bool)  { e.b = append(e.b, b2u(v)) }
func (e *enc) str(s string) { e.uv(uint64(len(s))); e.b = append(e.b, s...) }

func b2u(v bool) byte {
	if v {
		return 1
	}
	return 0
}

// dec is the matching bounds-checked decoder; every read can fail, and a
// failure poisons the decoder so callers check once at the end.
type dec struct {
	b   []byte
	err error
}

func (d *dec) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("wire: truncated or corrupt %s", what)
	}
}

func (d *dec) u32(what string) uint32 {
	if d.err != nil || len(d.b) < 4 {
		d.fail(what)
		return 0
	}
	v := binary.BigEndian.Uint32(d.b)
	d.b = d.b[4:]
	return v
}

func (d *dec) uv(what string) uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.fail(what)
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *dec) iv(what string) int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b)
	if n <= 0 {
		d.fail(what)
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *dec) byte(what string) byte {
	if d.err != nil || len(d.b) < 1 {
		d.fail(what)
		return 0
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v
}

func (d *dec) bool(what string) bool { return d.byte(what) != 0 }

func (d *dec) str(what string) string {
	n := d.uv(what)
	if d.err != nil {
		return ""
	}
	if n > uint64(len(d.b)) {
		d.fail(what)
		return ""
	}
	s := string(d.b[:n])
	d.b = d.b[n:]
	return s
}

func (d *dec) done(what string) error {
	if d.err != nil {
		return d.err
	}
	if len(d.b) != 0 {
		return fmt.Errorf("wire: %d trailing bytes after %s", len(d.b), what)
	}
	return nil
}

// EncodeHello serializes a Hello payload.
func EncodeHello(h Hello) []byte {
	var e enc
	e.u32(h.Version)
	e.str(h.AgentID)
	e.str(h.Token)
	return e.b
}

// DecodeHello parses a Hello payload.
func DecodeHello(b []byte) (Hello, error) {
	d := dec{b: b}
	h := Hello{
		Version: d.u32("hello version"),
		AgentID: d.str("hello agent id"),
		Token:   d.str("hello token"),
	}
	return h, d.done("hello")
}

// EncodeHelloAck serializes a HelloAck payload.
func EncodeHelloAck(a HelloAck) []byte {
	var e enc
	e.bool(a.OK)
	e.str(a.Reason)
	e.iv(a.Credit)
	return e.b
}

// DecodeHelloAck parses a HelloAck payload.
func DecodeHelloAck(b []byte) (HelloAck, error) {
	d := dec{b: b}
	a := HelloAck{
		OK:     d.bool("helloack ok"),
		Reason: d.str("helloack reason"),
		Credit: d.iv("helloack credit"),
	}
	return a, d.done("helloack")
}

// EncodeOpen serializes an Open payload.
func EncodeOpen(o Open) []byte {
	var e enc
	e.u32(o.SourceID)
	e.str(o.Key)
	e.str(o.Name)
	return e.b
}

// DecodeOpen parses an Open payload.
func DecodeOpen(b []byte) (Open, error) {
	d := dec{b: b}
	o := Open{
		SourceID: d.u32("open source id"),
		Key:      d.str("open key"),
		Name:     d.str("open name"),
	}
	return o, d.done("open")
}

// EncodeResume serializes a Resume payload.
func EncodeResume(r Resume) []byte {
	var e enc
	e.u32(r.SourceID)
	e.iv(r.Offset)
	return e.b
}

// DecodeResume parses a Resume payload.
func DecodeResume(b []byte) (Resume, error) {
	d := dec{b: b}
	r := Resume{
		SourceID: d.u32("resume source id"),
		Offset:   d.iv("resume offset"),
	}
	return r, d.done("resume")
}

// EncodeAck serializes an Ack payload.
func EncodeAck(a Ack) []byte {
	var e enc
	e.u32(a.SourceID)
	e.uv(a.Seq)
	e.iv(a.Offset)
	e.iv(a.Credit)
	return e.b
}

// DecodeAck parses an Ack payload.
func DecodeAck(b []byte) (Ack, error) {
	d := dec{b: b}
	a := Ack{
		SourceID: d.u32("ack source id"),
		Seq:      d.uv("ack seq"),
		Offset:   d.iv("ack offset"),
		Credit:   d.iv("ack credit"),
	}
	return a, d.done("ack")
}

// EncodeControl serializes a Control payload.
func EncodeControl(c Control) []byte {
	var e enc
	e.byte(c.State)
	e.byte(c.QueuePct)
	return e.b
}

// DecodeControl parses a Control payload.
func DecodeControl(b []byte) (Control, error) {
	d := dec{b: b}
	c := Control{
		State:    d.byte("control state"),
		QueuePct: d.byte("control queue"),
	}
	return c, d.done("control")
}

// EncodeSourceState serializes a SourceState payload.
func EncodeSourceState(s SourceState) []byte {
	var e enc
	e.u32(s.SourceID)
	e.byte(s.State)
	e.str(s.Error)
	return e.b
}

// DecodeSourceState parses a SourceState payload.
func DecodeSourceState(b []byte) (SourceState, error) {
	d := dec{b: b}
	s := SourceState{
		SourceID: d.u32("sourcestate source id"),
		State:    d.byte("sourcestate state"),
		Error:    d.str("sourcestate error"),
	}
	return s, d.done("sourcestate")
}

// EncodeGoodbye serializes a Goodbye payload.
func EncodeGoodbye(g Goodbye) []byte {
	var e enc
	e.str(g.Reason)
	return e.b
}

// DecodeGoodbye parses a Goodbye payload.
func DecodeGoodbye(b []byte) (Goodbye, error) {
	d := dec{b: b}
	g := Goodbye{Reason: d.str("goodbye reason")}
	return g, d.done("goodbye")
}

// Conn wraps a stream with buffered frame I/O. Reads and writes are each
// single-goroutine (the agent and collector both dedicate a reader and a
// writer goroutine per connection); Flush must follow writes before
// waiting on the peer.
type Conn struct {
	r *bufio.Reader
	w *bufio.Writer
}

// NewConn buffers rw for frame I/O.
func NewConn(rw io.ReadWriter) *Conn {
	return &Conn{r: bufio.NewReaderSize(rw, 64<<10), w: bufio.NewWriterSize(rw, 64<<10)}
}

// Read decodes the next frame.
func (c *Conn) Read() (byte, []byte, error) { return ReadFrame(c.r) }

// Write encodes one frame; call Flush to push it to the peer.
func (c *Conn) Write(typ byte, payload []byte) error { return WriteFrame(c.w, typ, payload) }

// Flush pushes buffered frames to the peer.
func (c *Conn) Flush() error { return c.w.Flush() }
