package wire

import (
	"bytes"
	"io"
	"reflect"
	"testing"

	"github.com/gt-elba/milliscope/internal/mxml"
)

// frameBytes encodes one frame to raw bytes for the seed corpus.
func frameBytes(typ byte, payload []byte) []byte {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, typ, payload); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// FuzzWireFrameDecode is the satellite fuzz target: arbitrary bytes must
// never panic the frame reader or any message decoder, and well-formed
// frames (the seed corpus) must round-trip exactly.
func FuzzWireFrameDecode(f *testing.F) {
	f.Add(frameBytes(TypeHello, EncodeHello(Hello{Version: Version, AgentID: "a1", Token: "t"})))
	f.Add(frameBytes(TypeHelloAck, EncodeHelloAck(HelloAck{OK: true, Credit: 4096})))
	f.Add(frameBytes(TypeOpen, EncodeOpen(Open{SourceID: 1, Key: "/x/apache_event.log", Name: "apache_event.log"})))
	f.Add(frameBytes(TypeResume, EncodeResume(Resume{SourceID: 1, Offset: 99})))
	f.Add(frameBytes(TypeAck, EncodeAck(Ack{SourceID: 1, Seq: 7, Offset: 1024, Credit: 128})))
	f.Add(frameBytes(TypeControl, EncodeControl(Control{State: 1, QueuePct: 50})))
	f.Add(frameBytes(TypeSourceState, EncodeSourceState(SourceState{SourceID: 2, State: SourceFailed, Error: "x"})))
	f.Add(frameBytes(TypeGoodbye, EncodeGoodbye(Goodbye{Reason: "done"})))
	b := Batch{SourceID: 5, Seq: 3, Offset: 512, Quarantined: 1}
	b.AppendEntries([]mxml.Entry{
		{Fields: []mxml.Field{{Name: "reqid", Value: "R1"}, {Name: "ud", Value: "42"}}},
		{Fields: []mxml.Field{{Name: "ts", Value: "now", Hint: "time"}}},
	})
	f.Add(frameBytes(TypeBatch, EncodeBatch(&b)))
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, TypeGoodbye})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		for {
			typ, payload, err := ReadFrame(r)
			if err != nil {
				if err != io.EOF && err != io.ErrUnexpectedEOF && err.Error() == "" {
					t.Fatalf("empty error")
				}
				return
			}
			// Whatever the bytes, decoding must return, not panic.
			switch typ {
			case TypeHello:
				if h, err := DecodeHello(payload); err == nil {
					if got, err2 := DecodeHello(EncodeHello(h)); err2 != nil || got != h {
						t.Fatalf("hello re-encode mismatch: %+v vs %+v (%v)", h, got, err2)
					}
				}
			case TypeHelloAck:
				if v, err := DecodeHelloAck(payload); err == nil {
					if got, err2 := DecodeHelloAck(EncodeHelloAck(v)); err2 != nil || got != v {
						t.Fatalf("helloack re-encode mismatch")
					}
				}
			case TypeOpen:
				if v, err := DecodeOpen(payload); err == nil {
					if got, err2 := DecodeOpen(EncodeOpen(v)); err2 != nil || got != v {
						t.Fatalf("open re-encode mismatch")
					}
				}
			case TypeResume:
				if v, err := DecodeResume(payload); err == nil {
					if got, err2 := DecodeResume(EncodeResume(v)); err2 != nil || got != v {
						t.Fatalf("resume re-encode mismatch")
					}
				}
			case TypeAck:
				if v, err := DecodeAck(payload); err == nil {
					if got, err2 := DecodeAck(EncodeAck(v)); err2 != nil || got != v {
						t.Fatalf("ack re-encode mismatch")
					}
				}
			case TypeControl:
				if v, err := DecodeControl(payload); err == nil {
					if got, err2 := DecodeControl(EncodeControl(v)); err2 != nil || got != v {
						t.Fatalf("control re-encode mismatch")
					}
				}
			case TypeSourceState:
				if v, err := DecodeSourceState(payload); err == nil {
					if got, err2 := DecodeSourceState(EncodeSourceState(v)); err2 != nil || got != v {
						t.Fatalf("sourcestate re-encode mismatch")
					}
				}
			case TypeGoodbye:
				if v, err := DecodeGoodbye(payload); err == nil {
					if got, err2 := DecodeGoodbye(EncodeGoodbye(v)); err2 != nil || got != v {
						t.Fatalf("goodbye re-encode mismatch")
					}
				}
			case TypeBatch:
				if v, err := DecodeBatch(payload); err == nil {
					// Decoded batches re-encode to the identical wire form:
					// decode → encode → decode is a fixed point.
					re, err2 := DecodeBatch(EncodeBatch(&v))
					if err2 != nil || !reflect.DeepEqual(re, v) {
						t.Fatalf("batch re-encode mismatch (%v)", err2)
					}
				}
			}
		}
	})
}
