package wire

import (
	"fmt"

	"github.com/gt-elba/milliscope/internal/mxml"
)

// Segment is a run of consecutive records sharing one field shape (same
// ordered names and hints). Shipping the shape once per run instead of per
// record is what makes the batch a *column* batch: within a segment the
// values are laid out column-major, so a 500-row collectl run carries each
// field name exactly once.
type Segment struct {
	Fields []mxml.Field // Name and Hint set; Value empty
	Rows   int
	// Values holds Rows values per field. Segments built by
	// AppendEntries accumulate row-major (append is O(1) per field);
	// decoded segments are column-major (Values[f*Rows+r]), flagged by
	// encoded. The wire layout is always column-major.
	Values []string

	encoded bool
}

// maxBatchFields bounds the per-segment field count a decoder will accept;
// the widest real format (collectl) has a few dozen columns.
const maxBatchFields = 4096

// AppendEntries folds records onto the batch, extending the last segment
// while the shape holds and starting a new one when it changes. The
// entries' strings are referenced, not copied.
func (b *Batch) AppendEntries(entries []mxml.Entry) {
	for i := range entries {
		b.appendEntry(&entries[i])
	}
}

func (b *Batch) appendEntry(e *mxml.Entry) {
	var seg *Segment
	if n := len(b.Segments); n > 0 && sameShape(&b.Segments[n-1], e) {
		seg = &b.Segments[n-1]
	} else {
		fields := make([]mxml.Field, len(e.Fields))
		for i, f := range e.Fields {
			fields[i] = mxml.Field{Name: f.Name, Hint: f.Hint}
		}
		b.Segments = append(b.Segments, Segment{Fields: fields})
		seg = &b.Segments[len(b.Segments)-1]
	}
	// Row-major append into the column-major layout: a freshly extended
	// segment re-interleaves on encode, so building stays O(1) per field.
	for _, f := range e.Fields {
		seg.Values = append(seg.Values, f.Value)
	}
	seg.Rows++
}

func sameShape(s *Segment, e *mxml.Entry) bool {
	if len(s.Fields) != len(e.Fields) {
		return false
	}
	for i := range s.Fields {
		if s.Fields[i].Name != e.Fields[i].Name || s.Fields[i].Hint != e.Fields[i].Hint {
			return false
		}
	}
	return true
}

// EachEntry reconstructs the batch's records in order. Entries are built
// with pooled storage; the callback owns each entry (the live loader
// retains them, so nothing here releases).
func (b *Batch) EachEntry(fn func(mxml.Entry)) {
	for si := range b.Segments {
		seg := &b.Segments[si]
		nf := len(seg.Fields)
		for r := 0; r < seg.Rows; r++ {
			e := mxml.NewEntry()
			for f := 0; f < nf; f++ {
				fd := &seg.Fields[f]
				e.AddTyped(fd.Name, seg.value(f, r), fd.Hint)
			}
			fn(e)
		}
	}
}

// value returns field f of record r in either layout.
func (s *Segment) value(f, r int) string {
	if s.encoded {
		return s.Values[f*s.Rows+r]
	}
	return s.Values[r*len(s.Fields)+f]
}

// EncodeBatch serializes the batch header and its segments.
func EncodeBatch(b *Batch) []byte {
	var e enc
	e.u32(b.SourceID)
	e.uv(b.Seq)
	e.iv(b.Offset)
	e.iv(b.Quarantined)
	e.uv(uint64(len(b.Segments)))
	for si := range b.Segments {
		seg := &b.Segments[si]
		e.uv(uint64(len(seg.Fields)))
		for i := range seg.Fields {
			e.str(seg.Fields[i].Name)
			e.str(seg.Fields[i].Hint)
		}
		e.uv(uint64(seg.Rows))
		for f := 0; f < len(seg.Fields); f++ {
			for r := 0; r < seg.Rows; r++ {
				e.str(seg.value(f, r))
			}
		}
	}
	return e.b
}

// DecodeBatch parses a batch payload, validating every count against the
// bytes actually present so corrupt input fails instead of allocating.
func DecodeBatch(p []byte) (Batch, error) {
	d := dec{b: p}
	b := Batch{
		SourceID:    d.u32("batch source id"),
		Seq:         d.uv("batch seq"),
		Offset:      d.iv("batch offset"),
		Quarantined: d.iv("batch quarantined"),
	}
	nseg := d.uv("batch segment count")
	if d.err != nil {
		return b, d.err
	}
	if nseg > uint64(len(d.b)) {
		return b, fmt.Errorf("wire: batch claims %d segments in %d bytes", nseg, len(d.b))
	}
	for s := uint64(0); s < nseg; s++ {
		nf := d.uv("segment field count")
		if d.err != nil {
			return b, d.err
		}
		if nf > maxBatchFields || nf > uint64(len(d.b)) {
			return b, fmt.Errorf("wire: segment field count %d invalid", nf)
		}
		seg := Segment{Fields: make([]mxml.Field, nf), encoded: true}
		for i := range seg.Fields {
			seg.Fields[i].Name = d.str("field name")
			seg.Fields[i].Hint = d.str("field hint")
		}
		rows := d.uv("segment row count")
		if d.err != nil {
			return b, d.err
		}
		// Every value costs at least one length byte, so rows*fields can
		// never exceed the remaining payload in a well-formed batch.
		if rows > uint64(len(d.b)) || rows*nf > uint64(len(d.b)) {
			return b, fmt.Errorf("wire: segment claims %d rows x %d fields in %d bytes", rows, nf, len(d.b))
		}
		seg.Rows = int(rows)
		// Start small: a hostile length pair passing the byte-budget check
		// above still shouldn't pre-allocate megabytes of headers.
		capHint := rows * nf
		if capHint > 4096 {
			capHint = 4096
		}
		seg.Values = make([]string, 0, capHint)
		for i := uint64(0); i < rows*nf; i++ {
			seg.Values = append(seg.Values, d.str("segment value"))
		}
		if d.err != nil {
			return b, d.err
		}
		b.Segments = append(b.Segments, seg)
	}
	return b, d.done("batch")
}
