package importer

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/gt-elba/milliscope/internal/mscopedb"
	"github.com/gt-elba/milliscope/internal/mxml"
	"github.com/gt-elba/milliscope/internal/xmlcsv"
)

// convertFixture builds an mxml doc and converts it, returning csv+schema
// paths.
func convertFixture(t *testing.T) (string, string) {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "doc.mxml")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w := mxml.NewWriter(f)
	if err := w.Open(mxml.Meta{Source: "apache-event", Host: "apache", Table: "apache_event"}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		var e mxml.Entry
		e.AddTyped("ts", "2017-04-01T00:00:12.345Z", "time")
		e.Add("reqid", "req-0000000001")
		e.Add("rt_us", "2123")
		e.Add("util", "33.5")
		if err := w.WriteEntry(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	conv, err := xmlcsv.ConvertFile(path, dir)
	if err != nil {
		t.Fatal(err)
	}
	return conv.CSVPath, conv.SchemaPath
}

func TestLoadFile(t *testing.T) {
	csvPath, schemaPath := convertFixture(t)
	db := mscopedb.Open()
	loaded, err := LoadFile(db, csvPath, schemaPath)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Table != "apache_event" || loaded.Rows != 5 {
		t.Fatalf("loaded %+v", loaded)
	}
	tbl, err := db.Table("apache_event")
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Rows() != 5 {
		t.Fatalf("table rows %d", tbl.Rows())
	}
	cols := tbl.Columns()
	if cols[0].Type != mscopedb.TTime || cols[2].Type != mscopedb.TInt || cols[3].Type != mscopedb.TFloat {
		t.Fatalf("column types %+v", cols)
	}
	// Provenance recorded.
	ing, err := db.Table(mscopedb.TableIngests)
	if err != nil {
		t.Fatal(err)
	}
	if ing.Rows() != 1 {
		t.Fatalf("ingest rows %d", ing.Rows())
	}
	if ing.Str(ing.ColIndex("tbl"), 0) != "apache_event" {
		t.Fatal("ingest provenance wrong")
	}
}

func TestLoadFileDuplicateTable(t *testing.T) {
	csvPath, schemaPath := convertFixture(t)
	db := mscopedb.Open()
	if _, err := LoadFile(db, csvPath, schemaPath); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(db, csvPath, schemaPath); err == nil {
		t.Fatal("duplicate load accepted")
	}
}

func TestLoadFileHeaderMismatch(t *testing.T) {
	csvPath, schemaPath := convertFixture(t)
	// Corrupt the CSV header.
	data, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	data[0] = 'X'
	if err := os.WriteFile(csvPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	db := mscopedb.Open()
	if _, err := LoadFile(db, csvPath, schemaPath); err == nil {
		t.Fatal("header mismatch accepted")
	}
}

func TestLoadFileMissingInputs(t *testing.T) {
	db := mscopedb.Open()
	dir := t.TempDir()
	if _, err := LoadFile(db, filepath.Join(dir, "a.csv"), filepath.Join(dir, "a.schema.json")); err == nil {
		t.Fatal("missing schema accepted")
	}
}
