// Package importer implements the mScope Data Importer: the last pipeline
// stage, which creates warehouse tables from inferred schemas and
// bulk-loads the converter's CSV files, recording provenance in the
// mscope_ingests static table.
package importer

import (
	"bufio"
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"time"

	"github.com/gt-elba/milliscope/internal/mscopedb"
	"github.com/gt-elba/milliscope/internal/simtime"
	"github.com/gt-elba/milliscope/internal/xmlcsv"
)

// Loaded describes one completed load.
type Loaded struct {
	Table string
	Rows  int
}

// LoadFile creates the schema's table in db and loads the CSV into it.
// The CSV header must match the schema's column order exactly — the
// converter wrote both, so a mismatch means the files are unrelated.
func LoadFile(db *mscopedb.DB, csvPath, schemaPath string) (Loaded, error) {
	var out Loaded
	schema, cols, err := xmlcsv.ReadSchema(schemaPath)
	if err != nil {
		return out, err
	}
	tbl, err := db.Create(schema.Table, cols)
	if err != nil {
		return out, fmt.Errorf("importer: create table: %w", err)
	}

	f, err := os.Open(csvPath)
	if err != nil {
		return out, fmt.Errorf("importer: open %s: %w", csvPath, err)
	}
	defer f.Close()
	r := csv.NewReader(bufio.NewReaderSize(f, 1<<16))
	r.ReuseRecord = true

	header, err := r.Read()
	if err != nil {
		return out, fmt.Errorf("importer: read header of %s: %w", csvPath, err)
	}
	if len(header) != len(cols) {
		return out, fmt.Errorf("importer: %s: header has %d columns, schema has %d",
			csvPath, len(header), len(cols))
	}
	for i, h := range header {
		if h != cols[i].Name {
			return out, fmt.Errorf("importer: %s: header column %d is %q, schema says %q",
				csvPath, i, h, cols[i].Name)
		}
	}

	for {
		rec, err := r.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return out, fmt.Errorf("importer: read %s: %w", csvPath, err)
		}
		if err := tbl.AppendStrings(rec); err != nil {
			return out, fmt.Errorf("importer: load %s row %d: %w", csvPath, tbl.Rows()+1, err)
		}
	}
	out.Table = schema.Table
	out.Rows = tbl.Rows()
	if err := db.RecordIngest(schema.Table, csvPath, out.Rows, loadStamp()); err != nil {
		return out, fmt.Errorf("importer: record ingest: %w", err)
	}
	return out, nil
}

// loadStamp returns the provenance timestamp. The warehouse content must
// be reproducible byte-for-byte across runs, so loads are stamped with the
// simulation epoch rather than the host's wall clock.
func loadStamp() time.Time { return simtime.Epoch }
