// Package importer implements the mScope Data Importer: the last pipeline
// stage, which creates warehouse tables from inferred schemas and
// bulk-loads the converter's CSV files, recording provenance in the
// mscope_ingests static table.
package importer

import (
	"bufio"
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"time"

	"github.com/gt-elba/milliscope/internal/mscopedb"
	"github.com/gt-elba/milliscope/internal/simtime"
	"github.com/gt-elba/milliscope/internal/xmlcsv"
)

// Loaded describes one completed load.
type Loaded struct {
	Table string
	Rows  int
}

// LoadFile creates the schema's table in db and loads the CSV into it.
// The CSV header must match the schema's column order exactly — the
// converter wrote both, so a mismatch means the files are unrelated.
func LoadFile(db *mscopedb.DB, csvPath, schemaPath string) (Loaded, error) {
	var out Loaded
	tbl, err := BuildTable(csvPath, schemaPath)
	if err != nil {
		return out, err
	}
	return Install(db, tbl, csvPath)
}

// Install attaches a worker-built table to db and records its provenance:
// the sequenced half of LoadFile. The parallel ingest calls BuildTable
// from concurrent workers and Install from the single in-order appender,
// so the warehouse and its ledger mutate exactly as under serial LoadFile.
func Install(db *mscopedb.DB, tbl *mscopedb.Table, csvPath string) (Loaded, error) {
	var out Loaded
	if err := db.Install(tbl); err != nil {
		return out, fmt.Errorf("importer: create table: %w", err)
	}
	out.Table = tbl.Name()
	out.Rows = tbl.Rows()
	if err := db.RecordIngest(tbl.Name(), csvPath, out.Rows, loadStamp()); err != nil {
		return out, fmt.Errorf("importer: record ingest: %w", err)
	}
	return out, nil
}

// BuildTable loads the converter's CSV into a standalone table built from
// the schema, touching no warehouse. It is the worker half of the parallel
// ingest's batched append path: concurrent workers call BuildTable, the
// sequenced appender calls DB.Install with the result.
func BuildTable(csvPath, schemaPath string) (*mscopedb.Table, error) {
	schema, cols, err := xmlcsv.ReadSchema(schemaPath)
	if err != nil {
		return nil, err
	}
	tbl, err := mscopedb.NewTable(schema.Table, cols)
	if err != nil {
		return nil, fmt.Errorf("importer: create table: %w", err)
	}

	f, err := os.Open(csvPath)
	if err != nil {
		return nil, fmt.Errorf("importer: open %s: %w", csvPath, err)
	}
	defer f.Close()
	r := csv.NewReader(bufio.NewReaderSize(f, 1<<16))
	r.ReuseRecord = true

	header, err := r.Read()
	if err != nil {
		return nil, fmt.Errorf("importer: read header of %s: %w", csvPath, err)
	}
	if len(header) != len(cols) {
		return nil, fmt.Errorf("importer: %s: header has %d columns, schema has %d",
			csvPath, len(header), len(cols))
	}
	for i, h := range header {
		if h != cols[i].Name {
			return nil, fmt.Errorf("importer: %s: header column %d is %q, schema says %q",
				csvPath, i, h, cols[i].Name)
		}
	}

	for {
		rec, err := r.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("importer: read %s: %w", csvPath, err)
		}
		if err := tbl.AppendStrings(rec); err != nil {
			return nil, fmt.Errorf("importer: load %s row %d: %w", csvPath, tbl.Rows()+1, err)
		}
	}
	return tbl, nil
}

// loadStamp returns the provenance timestamp. The warehouse content must
// be reproducible byte-for-byte across runs, so loads are stamped with the
// simulation epoch rather than the host's wall clock.
func loadStamp() time.Time { return simtime.Epoch }
