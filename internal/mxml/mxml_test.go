package mxml

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	meta := Meta{Source: "apache-event", Host: "apache", Table: "apache_event"}
	if err := w.Open(meta); err != nil {
		t.Fatal(err)
	}
	var e1 Entry
	e1.Add("reqid", "req-0000000123")
	e1.AddTyped("ts", "2017-04-01T00:00:12.345678Z", "time")
	e1.Add("uri", "/rubbos/ViewStory?a=1&b=2")
	if err := w.WriteEntry(e1); err != nil {
		t.Fatal(err)
	}
	var e2 Entry
	e2.Add("reqid", "req-0000000124")
	e2.Add("sql", `SELECT "x" < 3 /*ID=req*/`)
	if err := w.WriteEntry(e2); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if w.Entries() != 2 {
		t.Fatalf("entries %d", w.Entries())
	}

	var got []Entry
	m, err := ReadDoc(&buf, func(e Entry) error { got = append(got, e); return nil })
	if err != nil {
		t.Fatal(err)
	}
	if m != meta {
		t.Fatalf("meta %+v != %+v", m, meta)
	}
	if len(got) != 2 {
		t.Fatalf("%d entries", len(got))
	}
	if v, _ := got[0].Get("uri"); v != "/rubbos/ViewStory?a=1&b=2" {
		t.Fatalf("uri = %q", v)
	}
	if got[0].Fields[1].Hint != "time" {
		t.Fatalf("time hint lost: %+v", got[0].Fields[1])
	}
	if v, _ := got[1].Get("sql"); v != `SELECT "x" < 3 /*ID=req*/` {
		t.Fatalf("sql escaping broken: %q", v)
	}
}

func TestGetMissing(t *testing.T) {
	var e Entry
	e.Add("a", "1")
	if _, ok := e.Get("b"); ok {
		t.Fatal("missing field reported present")
	}
}

func TestWriterStateErrors(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteEntry(Entry{}); err == nil {
		t.Fatal("WriteEntry before Open accepted")
	}
	if err := w.Close(); err == nil {
		t.Fatal("Close before Open accepted")
	}
	if err := w.Open(Meta{Table: "t"}); err != nil {
		t.Fatal(err)
	}
	if err := w.Open(Meta{Table: "t"}); err == nil {
		t.Fatal("double Open accepted")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteEntry(Entry{}); err == nil {
		t.Fatal("WriteEntry after Close accepted")
	}
}

func TestOpenRequiresTable(t *testing.T) {
	w := NewWriter(&bytes.Buffer{})
	if err := w.Open(Meta{Source: "x"}); err == nil {
		t.Fatal("empty table accepted")
	}
}

func TestReadDocErrors(t *testing.T) {
	if _, err := ReadDoc(strings.NewReader("<nope/>"), func(Entry) error { return nil }); err == nil {
		t.Fatal("document without log element accepted")
	}
	bad := `<log table="t"><entry><f n="a"><nested/></f></entry></log>`
	if _, err := ReadDoc(strings.NewReader(bad), func(Entry) error { return nil }); err == nil {
		t.Fatal("nested element in field accepted")
	}
	noName := `<log table="t"><entry><f>v</f></entry></log>`
	if _, err := ReadDoc(strings.NewReader(noName), func(Entry) error { return nil }); err == nil {
		t.Fatal("field without name accepted")
	}
}

// Property: any field name/value strings survive a write/read cycle.
func TestRoundTripProperty(t *testing.T) {
	f := func(names, values []string) bool {
		if len(names) == 0 {
			return true
		}
		var e Entry
		for i, n := range names {
			if n == "" || strings.ContainsAny(n, "\"<>&\x00") || !validXML(n) {
				continue
			}
			v := ""
			if i < len(values) {
				v = values[i]
			}
			if !validXML(v) {
				continue
			}
			e.Add(n, v)
		}
		if len(e.Fields) == 0 {
			return true
		}
		var buf bytes.Buffer
		w := NewWriter(&buf)
		if err := w.Open(Meta{Table: "t"}); err != nil {
			return false
		}
		if err := w.WriteEntry(e); err != nil {
			return false
		}
		if err := w.Close(); err != nil {
			return false
		}
		var got []Entry
		if _, err := ReadDoc(&buf, func(e Entry) error { got = append(got, e); return nil }); err != nil {
			return false
		}
		if len(got) != 1 || len(got[0].Fields) != len(e.Fields) {
			return false
		}
		for i := range e.Fields {
			if got[0].Fields[i].Name != e.Fields[i].Name ||
				got[0].Fields[i].Value != e.Fields[i].Value {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// validXML filters characters XML 1.0 cannot carry (control chars), plus
// carriage returns, which the XML parser normalizes to newlines.
func validXML(s string) bool {
	for _, r := range s {
		if r == '\r' || (r < 0x20 && r != '\t' && r != '\n') || r == 0xFFFE || r == 0xFFFF {
			return false
		}
	}
	return true
}

func BenchmarkWriteEntry(b *testing.B) {
	w := NewWriter(&bytes.Buffer{})
	if err := w.Open(Meta{Table: "t"}); err != nil {
		b.Fatal(err)
	}
	var e Entry
	e.Add("reqid", "req-0000000123")
	e.AddTyped("ts", "2017-04-01T00:00:12.345678Z", "time")
	e.Add("ua", "1491004812345678")
	e.Add("ud", "1491004812347801")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.WriteEntry(e); err != nil {
			b.Fatal(err)
		}
	}
}
