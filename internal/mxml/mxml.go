// Package mxml defines the annotated-XML intermediate representation that
// mScopeParsers emit (paper Section III-B2): raw log lines are wrapped in
// <log>/<entry> elements with named <f> fields, enriching the
// semi-structured text with monitor-specific semantics. The mScope
// XMLtoCSV Converter consumes this representation to infer warehouse
// schemas and produce load files.
//
// The representation is deliberately schema-free: field sets may vary
// entry to entry (the converter unions them), and values are strings with
// an optional type hint ("time" for normalized timestamps).
package mxml

import (
	"bufio"
	"encoding/xml"
	"fmt"
	"io"
	"sync"
)

// TimeLayout is the normalized timestamp encoding parsers emit for fields
// hinted as times: RFC3339 with nanoseconds, always UTC.
const TimeLayout = "2006-01-02T15:04:05.999999999Z07:00"

// Field is one named value of an entry.
type Field struct {
	// Name is the column-candidate name.
	Name string
	// Value is the (string-encoded) value.
	Value string
	// Hint optionally declares the value's type: "time" is the only hint
	// parsers emit (layouts vary too much to infer reliably); everything
	// else is inferred bottom-up by the converter.
	Hint string
}

// Entry is one record: an ordered field list.
type Entry struct {
	Fields []Field
}

// fieldPool recycles field storage between entries. Parsers allocate one
// entry per record on the hot ingest path; pooling the backing arrays
// removes that per-record allocation. Ownership transfers with the entry:
// a sink that copies what it needs calls Release, a sink that retains the
// entry simply never does (the pool misses and allocates fresh storage,
// which is the pre-pool behavior).
var fieldPool = sync.Pool{
	// Start at the widest schema any built-in monitor emits (collectl's 17
	// columns): a pool miss then costs one allocation per record instead of
	// a 1→2→4→8→16 doubling chain. Sharded parses retain every entry until
	// the sequenced append, so misses are the common case there.
	New: func() any { s := make([]Field, 0, 17); return &s },
}

// NewEntry returns an entry whose field storage may be recycled from a
// previous entry's Release. Use it on hot paths; the zero Entry remains
// valid everywhere else.
func NewEntry() Entry {
	p := fieldPool.Get().(*[]Field)
	return Entry{Fields: (*p)[:0]}
}

// Release returns the entry's field storage to the pool and clears the
// entry. Only call it when no reference to the fields outlives the call.
func (e *Entry) Release() {
	if cap(e.Fields) == 0 {
		return
	}
	s := e.Fields[:0]
	fieldPool.Put(&s)
	e.Fields = nil
}

// Get returns the named field's value and whether it exists.
func (e *Entry) Get(name string) (string, bool) {
	for _, f := range e.Fields {
		if f.Name == name {
			return f.Value, true
		}
	}
	return "", false
}

// Add appends a field.
func (e *Entry) Add(name, value string) {
	e.Fields = append(e.Fields, Field{Name: name, Value: value})
}

// AddTyped appends a field with a type hint.
func (e *Entry) AddTyped(name, value, hint string) {
	e.Fields = append(e.Fields, Field{Name: name, Value: value, Hint: hint})
}

// Meta describes the document: which monitor produced the log, on which
// host, and the warehouse table it should load into.
type Meta struct {
	Source string // monitor name, e.g. "apache-event" or "collectl"
	Host   string // node name, e.g. "apache"
	Table  string // target warehouse table, e.g. "apache_event"
}

// Writer streams a document: Open, WriteEntry..., Close.
type Writer struct {
	bw     *bufio.Writer
	opened bool
	closed bool
	n      int
}

// NewWriter wraps w; the caller owns the underlying writer's lifecycle.
func NewWriter(w io.Writer) *Writer {
	return &Writer{bw: bufio.NewWriterSize(w, 1<<16)}
}

// Open emits the document element. It must be called exactly once.
func (w *Writer) Open(m Meta) error {
	if w.opened {
		return fmt.Errorf("mxml: document already opened")
	}
	if m.Table == "" {
		return fmt.Errorf("mxml: meta without table name")
	}
	w.opened = true
	_, err := fmt.Fprintf(w.bw, "<log source=%s host=%s table=%s>\n",
		attr(m.Source), attr(m.Host), attr(m.Table))
	if err != nil {
		return fmt.Errorf("mxml: write open: %w", err)
	}
	return nil
}

// WriteEntry emits one entry element.
func (w *Writer) WriteEntry(e Entry) error {
	if !w.opened || w.closed {
		return fmt.Errorf("mxml: WriteEntry outside open document")
	}
	if _, err := w.bw.WriteString(" <entry>"); err != nil {
		return fmt.Errorf("mxml: write entry: %w", err)
	}
	for _, f := range e.Fields {
		var err error
		if f.Hint != "" {
			_, err = fmt.Fprintf(w.bw, "<f n=%s t=%s>%s</f>", attr(f.Name), attr(f.Hint), esc(f.Value))
		} else {
			_, err = fmt.Fprintf(w.bw, "<f n=%s>%s</f>", attr(f.Name), esc(f.Value))
		}
		if err != nil {
			return fmt.Errorf("mxml: write field: %w", err)
		}
	}
	if _, err := w.bw.WriteString("</entry>\n"); err != nil {
		return fmt.Errorf("mxml: write entry: %w", err)
	}
	w.n++
	return nil
}

// Entries returns the number of entries written so far.
func (w *Writer) Entries() int { return w.n }

// Close emits the closing element and flushes.
func (w *Writer) Close() error {
	if !w.opened || w.closed {
		return fmt.Errorf("mxml: Close outside open document")
	}
	w.closed = true
	if _, err := w.bw.WriteString("</log>\n"); err != nil {
		return fmt.Errorf("mxml: write close: %w", err)
	}
	if err := w.bw.Flush(); err != nil {
		return fmt.Errorf("mxml: flush: %w", err)
	}
	return nil
}

func attr(s string) string {
	var b []byte
	b = append(b, '"')
	b = append(b, []byte(escStr(s))...)
	b = append(b, '"')
	return string(b)
}

func esc(s string) string { return escStr(s) }

func escStr(s string) string {
	var buf []byte
	if err := xml.EscapeText((*sliceWriter)(&buf), []byte(s)); err != nil {
		// EscapeText to a memory buffer cannot fail.
		panic(fmt.Sprintf("mxml: escape: %v", err))
	}
	return string(buf)
}

type sliceWriter []byte

func (s *sliceWriter) Write(p []byte) (int, error) {
	*s = append(*s, p...)
	return len(p), nil
}

// ReadDoc streams a document from r, calling onEntry for each entry. It
// returns the document meta. Reading is token-based so multi-hundred-MB
// documents do not materialize in memory.
func ReadDoc(r io.Reader, onEntry func(Entry) error) (Meta, error) {
	dec := xml.NewDecoder(bufio.NewReaderSize(r, 1<<16))
	var meta Meta
	sawLog := false
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return meta, fmt.Errorf("mxml: read token: %w", err)
		}
		se, ok := tok.(xml.StartElement)
		if !ok {
			continue
		}
		switch se.Name.Local {
		case "log":
			sawLog = true
			for _, a := range se.Attr {
				switch a.Name.Local {
				case "source":
					meta.Source = a.Value
				case "host":
					meta.Host = a.Value
				case "table":
					meta.Table = a.Value
				}
			}
		case "entry":
			if !sawLog {
				return meta, fmt.Errorf("mxml: entry before log element")
			}
			e, err := decodeEntry(dec)
			if err != nil {
				return meta, err
			}
			if err := onEntry(e); err != nil {
				return meta, err
			}
		}
	}
	if !sawLog {
		return meta, fmt.Errorf("mxml: no log element found")
	}
	return meta, nil
}

// decodeEntry consumes tokens until the entry's end element.
func decodeEntry(dec *xml.Decoder) (Entry, error) {
	var e Entry
	for {
		tok, err := dec.Token()
		if err != nil {
			return e, fmt.Errorf("mxml: read entry: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			if t.Name.Local != "f" {
				return e, fmt.Errorf("mxml: unexpected element <%s> in entry", t.Name.Local)
			}
			var f Field
			for _, a := range t.Attr {
				switch a.Name.Local {
				case "n":
					f.Name = a.Value
				case "t":
					f.Hint = a.Value
				}
			}
			val, err := readText(dec)
			if err != nil {
				return e, err
			}
			f.Value = val
			if f.Name == "" {
				return e, fmt.Errorf("mxml: field without name")
			}
			e.Fields = append(e.Fields, f)
		case xml.EndElement:
			if t.Name.Local == "entry" {
				return e, nil
			}
		}
	}
}

// readText consumes character data until the field's end element.
func readText(dec *xml.Decoder) (string, error) {
	var out []byte
	for {
		tok, err := dec.Token()
		if err != nil {
			return "", fmt.Errorf("mxml: read field text: %w", err)
		}
		switch t := tok.(type) {
		case xml.CharData:
			out = append(out, t...)
		case xml.EndElement:
			return string(out), nil
		case xml.StartElement:
			return "", fmt.Errorf("mxml: nested element <%s> in field", t.Name.Local)
		}
	}
}
