// Package serve is the mscope observability service: one HTTP surface
// over a warehouse, whether that warehouse is a saved mScopeDB snapshot
// (`mscope serve --db`) or the live engine's, borrowed between records
// (`mscope live --serve`, `mscope collector --serve`). It answers MQL
// and vectorized window-aggregation queries, renders per-request
// waterfalls and critical-path flamegraphs, and exposes the diagnosis
// timeline with each verdict's full evidence.
package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"github.com/gt-elba/milliscope/internal/core"
	"github.com/gt-elba/milliscope/internal/mql"
	"github.com/gt-elba/milliscope/internal/mscopedb"
	"github.com/gt-elba/milliscope/internal/promfmt"
	"github.com/gt-elba/milliscope/internal/stream"
	"github.com/gt-elba/milliscope/internal/tracegraph"
)

// Config attaches the server to exactly one warehouse source.
type Config struct {
	// DB serves a saved warehouse snapshot (read-only, immutable).
	DB *mscopedb.DB
	// Pipeline serves a live engine's warehouse; every query borrows it
	// between records through the pipeline's WithDB gate, so readers
	// never race the loader.
	Pipeline *stream.Pipeline
	// Window is the diagnosis window width for /api/diagnosis in
	// snapshot mode; defaults to 50ms.
	Window time.Duration
}

// Server is the observability service. Build with New, mount Handler.
type Server struct {
	cfg     Config
	queries atomic.Int64
	renders atomic.Int64
	errs    atomic.Int64
	mux     *http.ServeMux
}

// New validates the config and builds the service.
func New(cfg Config) (*Server, error) {
	if (cfg.DB == nil) == (cfg.Pipeline == nil) {
		return nil, fmt.Errorf("serve: attach exactly one of DB or Pipeline")
	}
	if cfg.Window <= 0 {
		cfg.Window = 50 * time.Millisecond
	}
	s := &Server{cfg: cfg}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /{$}", s.handleIndex)
	mux.HandleFunc("GET /api/tables", s.handleTables)
	mux.HandleFunc("GET /api/query", s.handleQuery)
	mux.HandleFunc("GET /api/window", s.handleWindow)
	mux.HandleFunc("GET /api/traces", s.handleTraces)
	mux.HandleFunc("GET /api/trace/{reqid}", s.handleTrace)
	mux.HandleFunc("GET /api/flamegraph", s.handleFlameJSON)
	mux.HandleFunc("GET /flamegraph.svg", s.handleFlameSVG)
	mux.HandleFunc("GET /api/diagnosis", s.handleDiagnosis)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux = mux
	return s, nil
}

// Handler returns the service's routes.
func (s *Server) Handler() http.Handler { return s.mux }

// withDB runs fn with the warehouse: directly in snapshot mode, or
// through the live pipeline's loader gate so fn never races an append.
func (s *Server) withDB(fn func(*mscopedb.DB)) {
	if s.cfg.Pipeline != nil {
		s.cfg.Pipeline.WithDB(fn)
		return
	}
	fn(s.cfg.DB)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	_ = enc.Encode(v)
}

// fail renders one JSON error body and counts it.
func (s *Server) fail(w http.ResponseWriter, code int, format string, args ...any) {
	s.errs.Add(1)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

// --- /api/tables -----------------------------------------------------

type colInfo struct {
	Name string `json:"name"`
	Type string `json:"type"`
}

type tableInfo struct {
	Name    string    `json:"name"`
	Rows    int       `json:"rows"`
	Columns []colInfo `json:"columns"`
}

func (s *Server) tableInfos() []tableInfo {
	var out []tableInfo
	s.withDB(func(db *mscopedb.DB) {
		for _, name := range db.TableNames() {
			t, err := db.Table(name)
			if err != nil {
				continue
			}
			ti := tableInfo{Name: name, Rows: t.Rows()}
			for _, c := range t.Columns() {
				ti.Columns = append(ti.Columns, colInfo{Name: c.Name, Type: c.Type.String()})
			}
			out = append(out, ti)
		}
	})
	return out
}

func (s *Server) handleTables(w http.ResponseWriter, r *http.Request) {
	s.queries.Add(1)
	writeJSON(w, s.tableInfos())
}

// --- /api/query ------------------------------------------------------

type queryResult struct {
	Cols []string   `json:"cols"`
	Rows [][]string `json:"rows"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query().Get("q")
	if q == "" {
		s.fail(w, http.StatusBadRequest, "missing q parameter (an MQL statement)")
		return
	}
	s.queries.Add(1)
	var (
		out *mql.Output
		err error
	)
	s.withDB(func(db *mscopedb.DB) { out, err = mql.Run(db, q) })
	if err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, queryResult{Cols: out.Cols, Rows: out.Rows})
}

// --- /api/window -----------------------------------------------------

// parseAggFn resolves the fn parameter; empty means avg.
func parseAggFn(name string) (mscopedb.AggFn, error) {
	switch strings.ToLower(name) {
	case "", "avg", "mean":
		return mscopedb.AggAvg, nil
	case "max":
		return mscopedb.AggMax, nil
	case "min":
		return mscopedb.AggMin, nil
	case "sum":
		return mscopedb.AggSum, nil
	case "count":
		return mscopedb.AggCount, nil
	case "p99":
		return mscopedb.AggP99, nil
	}
	return 0, fmt.Errorf("unknown fn %q (want avg, max, min, sum, count, or p99)", name)
}

// handleWindow is the vectorized window-aggregation endpoint: it builds
// the statement directly so the from/to bounds become time-column
// predicates, which the scan engine prunes through the sorted time
// index before the dense aggregation grid runs.
func (s *Server) handleWindow(w http.ResponseWriter, r *http.Request) {
	p := r.URL.Query()
	table, value := p.Get("table"), p.Get("value")
	if table == "" || value == "" {
		s.fail(w, http.StatusBadRequest, "table and value parameters are required")
		return
	}
	fn, err := parseAggFn(p.Get("fn"))
	if err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	window := 50 * time.Millisecond
	if ws := p.Get("window"); ws != "" {
		window, err = time.ParseDuration(ws)
		if err != nil || window <= 0 {
			s.fail(w, http.StatusBadRequest, "bad window %q: want a positive duration like 50ms", ws)
			return
		}
	}
	timeCol := p.Get("time")
	if timeCol == "" {
		timeCol = "ltime"
	}
	st := &mql.Statement{
		Table:    table,
		Limit:    -1,
		Windowed: true,
		Window:   window,
		AggFn:    fn,
		AggCol:   value,
		TimeCol:  timeCol,
		GroupCol: p.Get("by"),
	}
	from, to := p.Get("from"), p.Get("to")
	var fromUS, toUS int64
	if from != "" {
		if fromUS, err = strconv.ParseInt(from, 10, 64); err != nil {
			s.fail(w, http.StatusBadRequest, "malformed time range: from=%q is not a microsecond epoch", from)
			return
		}
		st.Preds = append(st.Preds, mql.Pred{Col: timeCol, Op: mscopedb.OpGe, Value: from})
	}
	if to != "" {
		if toUS, err = strconv.ParseInt(to, 10, 64); err != nil {
			s.fail(w, http.StatusBadRequest, "malformed time range: to=%q is not a microsecond epoch", to)
			return
		}
		st.Preds = append(st.Preds, mql.Pred{Col: timeCol, Op: mscopedb.OpLt, Value: to})
	}
	if from != "" && to != "" && fromUS >= toUS {
		s.fail(w, http.StatusBadRequest, "malformed time range: from %d is not before to %d", fromUS, toUS)
		return
	}
	s.queries.Add(1)
	var (
		found bool
		out   *mql.Output
	)
	s.withDB(func(db *mscopedb.DB) {
		if found = db.HasTable(table); !found {
			return
		}
		out, err = mql.Exec(db, st)
	})
	if !found {
		s.fail(w, http.StatusNotFound, "no table %q in the warehouse", table)
		return
	}
	if err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, queryResult{Cols: out.Cols, Rows: out.Rows})
}

// --- traces and flamegraphs ------------------------------------------

// buildTraces reconstructs every request's causal path from whichever
// standard event tables the warehouse holds.
func (s *Server) buildTraces() (map[string]*tracegraph.Trace, error) {
	tables := make([]string, len(core.Tiers))
	for i, t := range core.Tiers {
		tables[i] = t + "_event"
	}
	var (
		traces map[string]*tracegraph.Trace
		err    error
	)
	s.withDB(func(db *mscopedb.DB) {
		traces, _, err = tracegraph.BuildPartial(db, tables)
	})
	return traces, err
}

type traceSummary struct {
	ReqID    string  `json:"reqid"`
	RTUS     int64   `json:"rt_us"`
	Spans    int     `json:"spans"`
	Complete bool    `json:"complete"`
	Coverage float64 `json:"coverage"`
}

// slowestFirst flattens a trace set ordered by response time, slowest
// first (ties broken by request ID for stable pagination).
func slowestFirst(traces map[string]*tracegraph.Trace) []*tracegraph.Trace {
	out := make([]*tracegraph.Trace, 0, len(traces))
	for _, tr := range traces {
		out = append(out, tr)
	}
	sort.Slice(out, func(i, j int) bool {
		ri, rj := out[i].ResponseTime(), out[j].ResponseTime()
		if ri != rj {
			return ri > rj
		}
		return out[i].ReqID < out[j].ReqID
	})
	return out
}

func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	limit := 50
	if ls := r.URL.Query().Get("limit"); ls != "" {
		n, err := strconv.Atoi(ls)
		if err != nil || n <= 0 {
			s.fail(w, http.StatusBadRequest, "bad limit %q", ls)
			return
		}
		limit = n
	}
	s.queries.Add(1)
	traces, err := s.buildTraces()
	if err != nil {
		s.fail(w, http.StatusInternalServerError, "%v", err)
		return
	}
	ordered := slowestFirst(traces)
	if len(ordered) > limit {
		ordered = ordered[:limit]
	}
	out := make([]traceSummary, 0, len(ordered))
	for _, tr := range ordered {
		out = append(out, traceSummary{
			ReqID:    tr.ReqID,
			RTUS:     tr.ResponseTime().Microseconds(),
			Spans:    len(tr.Spans),
			Complete: tr.Complete(),
			Coverage: tr.Coverage(),
		})
	}
	writeJSON(w, out)
}

// flameFor resolves a request ID (empty means the slowest request) to
// its renderable flame.
func (s *Server) flameFor(reqid string) (*tracegraph.Flame, int, error) {
	traces, err := s.buildTraces()
	if err != nil {
		return nil, http.StatusInternalServerError, err
	}
	if reqid == "" {
		ordered := slowestFirst(traces)
		if len(ordered) == 0 {
			return nil, http.StatusNotFound, fmt.Errorf("no traces in the warehouse")
		}
		return tracegraph.BuildFlame(ordered[0]), 0, nil
	}
	tr, ok := traces[reqid]
	if !ok {
		return nil, http.StatusNotFound, fmt.Errorf("no trace for request %q", reqid)
	}
	return tracegraph.BuildFlame(tr), 0, nil
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	s.queries.Add(1)
	f, code, err := s.flameFor(r.PathValue("reqid"))
	if err != nil {
		s.fail(w, code, "%v", err)
		return
	}
	writeJSON(w, f)
}

func (s *Server) handleFlameJSON(w http.ResponseWriter, r *http.Request) {
	s.queries.Add(1)
	f, code, err := s.flameFor(r.URL.Query().Get("reqid"))
	if err != nil {
		s.fail(w, code, "%v", err)
		return
	}
	writeJSON(w, f)
}

func (s *Server) handleFlameSVG(w http.ResponseWriter, r *http.Request) {
	f, code, err := s.flameFor(r.URL.Query().Get("reqid"))
	if err != nil {
		s.fail(w, code, "%v", err)
		return
	}
	s.renders.Add(1)
	w.Header().Set("Content-Type", "image/svg+xml")
	_ = f.WriteSVG(w)
}

// --- /api/diagnosis --------------------------------------------------

type diagCause struct {
	Name         string  `json:"name"`
	Correlation  float64 `json:"correlation"`
	PeakInWindow float64 `json:"peak_in_window"`
}

// diagEntry is one verdict with its full evidence: the window, the
// cross-tier pushback signature, and every ranked resource candidate —
// not just the winning kind.
type diagEntry struct {
	Raised      *time.Time  `json:"raised,omitempty"`
	WatermarkUS int64       `json:"watermark_us,omitempty"`
	StartUS     int64       `json:"window_start_us"`
	EndUS       int64       `json:"window_end_us"`
	PeakUS      float64     `json:"peak_rt_us"`
	Kind        string      `json:"kind"`
	Node        string      `json:"node"`
	Verdict     string      `json:"verdict"`
	QueuesGrew  []string    `json:"queues_grew,omitempty"`
	CrossTier   bool        `json:"cross_tier"`
	Causes      []diagCause `json:"causes,omitempty"`
	Missing     []string    `json:"missing,omitempty"`
}

type diagTimeline struct {
	Source  string      `json:"source"`
	Entries []diagEntry `json:"entries"`
}

func diagFromWindow(wd core.WindowDiagnosis) diagEntry {
	e := diagEntry{
		StartUS:    wd.Window.StartMicros,
		EndUS:      wd.Window.EndMicros,
		PeakUS:     wd.Window.Peak,
		Kind:       wd.Kind.String(),
		Node:       wd.Node,
		Verdict:    wd.Verdict,
		QueuesGrew: wd.Pushback.Grew,
		CrossTier:  wd.Pushback.CrossTier,
	}
	for _, c := range wd.Causes {
		e.Causes = append(e.Causes, diagCause{
			Name: c.Name, Correlation: c.Correlation, PeakInWindow: c.PeakInWindow,
		})
	}
	return e
}

func (s *Server) handleDiagnosis(w http.ResponseWriter, r *http.Request) {
	s.queries.Add(1)
	if p := s.cfg.Pipeline; p != nil {
		// Live mode: the online detector's alerts, evidence included.
		tl := diagTimeline{Source: "live", Entries: []diagEntry{}}
		for _, a := range p.Alerts() {
			e := diagFromWindow(a.Diagnosis)
			raised := a.Raised
			e.Raised = &raised
			e.WatermarkUS = a.WatermarkUS
			e.Missing = a.Missing
			tl.Entries = append(tl.Entries, e)
		}
		writeJSON(w, tl)
		return
	}
	// Snapshot mode: run the batch workflow at the configured width.
	var (
		d   *core.Diagnosis
		err error
	)
	s.withDB(func(db *mscopedb.DB) { d, err = core.Diagnose(db, s.cfg.Window) })
	if err != nil {
		s.fail(w, http.StatusUnprocessableEntity, "diagnosis: %v", err)
		return
	}
	tl := diagTimeline{Source: "batch", Entries: []diagEntry{}}
	for _, wd := range d.Windows {
		e := diagFromWindow(wd)
		e.Missing = d.MissingSources
		tl.Entries = append(tl.Entries, e)
	}
	writeJSON(w, tl)
}

// --- readiness and metrics -------------------------------------------

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	probes := map[string]bool{}
	ok := true
	if p := s.cfg.Pipeline; p != nil {
		st := p.Status()
		probes["warehouse"] = true
		probes["detector"] = st.Running
		ok = st.Running
	} else {
		probes["warehouse"] = s.cfg.DB != nil
		ok = s.cfg.DB != nil
	}
	w.Header().Set("Content-Type", "application/json")
	if !ok {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	_ = enc.Encode(struct {
		OK     bool            `json:"ok"`
		Probes map[string]bool `json:"probes"`
	}{OK: ok, Probes: probes})
}

// MetricsText renders the serve surface's own families through the
// shared promfmt writer. In live mode the engine's families come first —
// both sides use promfmt, so the concatenation still lints.
func (s *Server) MetricsText() string {
	tables, rows := 0, 0
	s.withDB(func(db *mscopedb.DB) {
		for _, name := range db.TableNames() {
			if t, err := db.Table(name); err == nil {
				tables++
				rows += t.Rows()
			}
		}
	})
	var w promfmt.Writer
	w.Counter(promfmt.Prefix+"serve_queries_total",
		"query and render requests answered", float64(s.queries.Load()))
	w.Counter(promfmt.Prefix+"serve_renders_total",
		"flamegraph SVGs rendered", float64(s.renders.Load()))
	w.Counter(promfmt.Prefix+"serve_errors_total",
		"requests answered with an error status", float64(s.errs.Load()))
	w.Gauge(promfmt.Prefix+"serve_tables",
		"tables in the attached warehouse", float64(tables))
	w.Gauge(promfmt.Prefix+"serve_rows",
		"rows across the attached warehouse", float64(rows))
	if p := s.cfg.Pipeline; p != nil {
		return p.MetricsText() + w.String()
	}
	return w.String()
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	_, _ = w.Write([]byte(s.MetricsText()))
}
