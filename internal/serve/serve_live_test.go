package serve

import (
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"github.com/gt-elba/milliscope/internal/core"
	"github.com/gt-elba/milliscope/internal/promfmt"
	"github.com/gt-elba/milliscope/internal/scenario"
	"github.com/gt-elba/milliscope/internal/stream"
)

// TestServeLivePipeline attaches the service to a running streaming
// engine: queries borrow the warehouse through the loader's WithDB gate
// while records are still being appended, so this test doubles as the
// -race proof that serving and loading never touch the DB concurrently.
func TestServeLivePipeline(t *testing.T) {
	spec, ok := scenario.ByName("dbio")
	if !ok {
		t.Fatal("no dbio scenario")
	}
	small := *spec
	small.Users = 50
	logDir := filepath.Join(t.TempDir(), "logs")
	if err := os.MkdirAll(logDir, 0o755); err != nil {
		t.Fatal(err)
	}
	cfg, err := scenario.Build(&small, logDir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.RunExperiment(cfg); err != nil {
		t.Fatal(err)
	}

	pipe, err := stream.New(stream.Config{LogDir: logDir})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Pipeline: pipe})
	if err != nil {
		t.Fatal(err)
	}
	h := s.Handler()

	pipe.Start()
	// Hammer the query API from several goroutines while the loader is
	// (potentially still) appending.
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 5; j++ {
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, httptest.NewRequest("GET", "/api/tables", nil))
				if rec.Code != 200 {
					t.Errorf("/api/tables during load: %d", rec.Code)
				}
			}
		}()
	}
	wg.Wait()

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != 200 {
		t.Errorf("/healthz while running: %d", rec.Code)
	}

	if err := pipe.Stop(); err != nil {
		t.Fatal(err)
	}

	// After the drain the loader is gone; WithDB falls through to a
	// direct call and the full query surface still answers.
	var out queryResult
	get(t, h, "/api/window?table=apache_event&value=rt_us&fn=max&window=50ms&time=ud", 200, &out)
	if len(out.Rows) == 0 {
		t.Error("window aggregation over the drained live warehouse returned no rows")
	}
	var diag diagTimeline
	get(t, h, "/api/diagnosis", 200, &diag)
	if diag.Source != "live" {
		t.Errorf("diagnosis source = %q, want live", diag.Source)
	}

	// Live-mode /metrics concatenates the engine's families with the
	// serve surface's own; the result must still lint as one exposition.
	metrics := s.MetricsText()
	if err := promfmt.Lint(metrics); err != nil {
		t.Errorf("live serve /metrics: %v", err)
	}
	for _, fam := range []string{"mscope_rows_total", "mscope_serve_queries_total"} {
		if !strings.Contains(metrics, fam) {
			t.Errorf("live serve /metrics missing %s", fam)
		}
	}

	// Readiness follows the detector: stopped engine means 503.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != 503 {
		t.Errorf("/healthz after Stop: %d, want 503", rec.Code)
	}
}
