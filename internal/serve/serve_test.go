package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"

	"github.com/gt-elba/milliscope/internal/core"
	"github.com/gt-elba/milliscope/internal/faults"
	"github.com/gt-elba/milliscope/internal/mscopedb"
	"github.com/gt-elba/milliscope/internal/promfmt"
	"github.com/gt-elba/milliscope/internal/scenario"
	"github.com/gt-elba/milliscope/internal/transform"
)

// scenarioWarehouse runs one catalogue scenario's trial and ingests its
// logs: the warehouse `mscope serve --db` would attach. users shrinks
// the workload for sweep speed; 0 keeps the spec's own size.
func scenarioWarehouse(t testing.TB, name string, users int) *mscopedb.DB {
	t.Helper()
	spec, ok := scenario.ByName(name)
	if !ok {
		t.Fatalf("no catalogue scenario %q", name)
	}
	small := *spec
	if users > 0 {
		small.Users = users
	}
	work := t.TempDir()
	logDir := filepath.Join(work, "logs")
	if err := os.MkdirAll(logDir, 0o755); err != nil {
		t.Fatal(err)
	}
	cfg, err := scenario.Build(&small, logDir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.RunExperiment(cfg); err != nil {
		t.Fatal(err)
	}
	srcDir := logDir
	if len(small.DeleteTiers) > 0 {
		srcDir = filepath.Join(work, "corrupted")
		fcfg := faults.Config{
			Seed:        small.Seed,
			Kinds:       []faults.Kind{faults.KindDeleteTier},
			DeleteTiers: small.DeleteTiers,
		}
		if _, err := faults.Corrupt(logDir, srcDir, fcfg); err != nil {
			t.Fatal(err)
		}
	}
	db := mscopedb.Open()
	if _, err := transform.IngestDir(db, srcDir, filepath.Join(work, "ingest"), transform.DefaultPlan()); err != nil {
		t.Fatal(err)
	}
	return db
}

// The smoke suite shares one full-size dbio warehouse.
var (
	smokeOnce sync.Once
	smokeDB   *mscopedb.DB
)

func smokeServer(t testing.TB) *Server {
	t.Helper()
	smokeOnce.Do(func() {
		smokeDB = scenarioWarehouse(t, "dbio", 0)
	})
	if smokeDB == nil {
		t.Fatal("smoke warehouse failed to build in an earlier test")
	}
	s, err := New(Config{DB: smokeDB})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// get hits the handler and decodes a JSON body into out (skipped when
// out is nil), failing the test on an unexpected status.
func get(t *testing.T, h http.Handler, path string, want int, out any) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	if rec.Code != want {
		t.Fatalf("GET %s: %d (want %d): %s", path, rec.Code, want, rec.Body.String())
	}
	if out != nil {
		if err := json.Unmarshal(rec.Body.Bytes(), out); err != nil {
			t.Fatalf("GET %s: bad JSON: %v", path, err)
		}
	}
	return rec
}

// TestServeSmoke drives every endpoint against a real scenario
// warehouse: the `make serve-smoke` gate, run under -race.
func TestServeSmoke(t *testing.T) {
	h := smokeServer(t).Handler()

	var tables []tableInfo
	get(t, h, "/api/tables", 200, &tables)
	names := map[string]bool{}
	for _, ti := range tables {
		names[ti.Name] = true
		if ti.Rows < 0 || len(ti.Columns) == 0 {
			t.Errorf("table %s: %d rows, %d columns", ti.Name, ti.Rows, len(ti.Columns))
		}
	}
	if !names["apache_event"] || !names["mysql_event"] {
		t.Fatalf("catalogue lacks event tables: %v", names)
	}

	var q queryResult
	get(t, h, "/api/query?q="+
		"SELECT+WINDOW+50ms+MAX(rt_us)+BY+ud+FROM+apache_event", 200, &q)
	if len(q.Rows) == 0 {
		t.Fatal("windowed MQL query returned no rows")
	}

	// Window aggregation, then the same narrowed by an index-pruned time
	// range covering only the first window.
	var full queryResult
	get(t, h, "/api/window?table=apache_event&value=rt_us&fn=p99&window=50ms&time=ud", 200, &full)
	if len(full.Rows) == 0 {
		t.Fatal("window aggregation returned no rows")
	}
	start, err := strconv.ParseInt(full.Rows[0][0], 10, 64)
	if err != nil {
		t.Fatalf("first window start %q: %v", full.Rows[0][0], err)
	}
	var narrowed queryResult
	get(t, h, "/api/window?table=apache_event&value=rt_us&fn=p99&window=50ms&time=ud"+
		"&from="+strconv.FormatInt(start, 10)+"&to="+strconv.FormatInt(start+50_000, 10), 200, &narrowed)
	if len(narrowed.Rows) == 0 || len(narrowed.Rows) >= len(full.Rows) {
		t.Errorf("time-bounded window returned %d rows (full scan: %d); pruning is not narrowing",
			len(narrowed.Rows), len(full.Rows))
	}

	var traces []traceSummary
	get(t, h, "/api/traces?limit=5", 200, &traces)
	if len(traces) == 0 {
		t.Fatal("no traces reconstructed")
	}
	if len(traces) > 5 {
		t.Errorf("limit=5 returned %d traces", len(traces))
	}
	for i := 1; i < len(traces); i++ {
		if traces[i].RTUS > traces[i-1].RTUS {
			t.Errorf("traces not slowest-first: %d before %d", traces[i-1].RTUS, traces[i].RTUS)
		}
	}

	var flame struct {
		ReqID   string `json:"reqid"`
		TotalUS int64  `json:"total_us"`
		Frames  []struct {
			Tier   string `json:"tier"`
			SelfUS int64  `json:"self_us"`
		} `json:"frames"`
	}
	get(t, h, "/api/trace/"+traces[0].ReqID, 200, &flame)
	if flame.ReqID != traces[0].ReqID || flame.TotalUS <= 0 || len(flame.Frames) == 0 {
		t.Fatalf("flame for %s: %+v", traces[0].ReqID, flame)
	}
	// Default flamegraph = slowest request, same data.
	var slowest struct {
		ReqID string `json:"reqid"`
	}
	get(t, h, "/api/flamegraph", 200, &slowest)
	if slowest.ReqID != traces[0].ReqID {
		t.Errorf("/api/flamegraph default = %s, want slowest %s", slowest.ReqID, traces[0].ReqID)
	}

	svg := get(t, h, "/flamegraph.svg", 200, nil)
	if ct := svg.Header().Get("Content-Type"); ct != "image/svg+xml" {
		t.Errorf("flamegraph.svg Content-Type = %q", ct)
	}
	body := svg.Body.String()
	if !strings.HasPrefix(body, "<svg") || !strings.Contains(body, "apache") {
		t.Errorf("flamegraph.svg body does not look like a tier flame: %.120s", body)
	}

	var diag diagTimeline
	get(t, h, "/api/diagnosis", 200, &diag)
	if diag.Source != "batch" {
		t.Errorf("diagnosis source = %q, want batch", diag.Source)
	}
	if len(diag.Entries) == 0 {
		t.Fatal("dbio scenario produced no diagnosis entries")
	}
	foundDisk := false
	for _, e := range diag.Entries {
		if e.Kind == "disk-io" && e.Node == "mysql" {
			foundDisk = true
			if len(e.Causes) == 0 {
				t.Error("disk-io verdict carries no ranked causes (evidence missing)")
			}
		}
	}
	if !foundDisk {
		t.Errorf("dbio diagnosis lacks the disk-io@mysql verdict: %+v", diag.Entries)
	}

	get(t, h, "/healthz", 200, nil)

	metrics := get(t, h, "/metrics", 200, nil).Body.String()
	if err := promfmt.Lint(metrics); err != nil {
		t.Errorf("serve /metrics: %v", err)
	}
	for _, fam := range []string{"mscope_serve_queries_total", "mscope_serve_renders_total",
		"mscope_serve_errors_total", "mscope_serve_tables", "mscope_serve_rows"} {
		if !strings.Contains(metrics, fam) {
			t.Errorf("/metrics missing %s", fam)
		}
	}

	index := get(t, h, "/", 200, nil).Body.String()
	for _, want := range []string{"mscope serve", "apache_event", "flamegraph.svg", "curl"} {
		if !strings.Contains(index, want) {
			t.Errorf("index page missing %q", want)
		}
	}
}

// TestServeErrorPaths pins the API's failure modes: malformed queries,
// absent tables, and broken time ranges answer 4xx with a JSON error,
// never a 200 or a panic.
func TestServeErrorPaths(t *testing.T) {
	h := smokeServer(t).Handler()
	fail := func(path string, want int) {
		t.Helper()
		var e struct {
			Error string `json:"error"`
		}
		get(t, h, path, want, &e)
		if e.Error == "" {
			t.Errorf("GET %s: %d with no error body", path, want)
		}
	}
	fail("/api/query", 400)                         // no statement
	fail("/api/query?q=SELEC+broken", 400)          // parse error
	fail("/api/query?q=SELECT+*+FROM+no_such", 400) // unknown table in MQL
	fail("/api/window?table=apache_event", 400)     // no value column
	fail("/api/window?table=no_such&value=rt_us", 404)
	fail("/api/window?table=apache_event&value=rt_us&fn=median", 400)
	fail("/api/window?table=apache_event&value=rt_us&window=banana", 400)
	fail("/api/window?table=apache_event&value=rt_us&time=ud&from=abc", 400)
	fail("/api/window?table=apache_event&value=rt_us&time=ud&from=5&to=abc", 400)
	fail("/api/window?table=apache_event&value=rt_us&time=ud&from=100&to=100", 400)
	fail("/api/window?table=apache_event&value=rt_us&time=ud&by=rt_us", 400) // non-string group col
	fail("/api/traces?limit=-3", 400)
	fail("/api/trace/nope", 404)
	fail("/flamegraph.svg?reqid=nope", 404)

	// The failures were counted on the errors family.
	s := smokeServer(t)
	get(t, s.Handler(), "/api/query", 400, nil)
	if !strings.Contains(s.MetricsText(), "mscope_serve_errors_total 1") {
		t.Error("error counter did not advance")
	}
}

func TestNewConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("New with no warehouse source must fail")
	}
}

// TestServeScenarioSweep: the service answers a window-aggregation
// query and renders a flamegraph for every scenario in the catalogue —
// including crashloop, whose cjdbc event log is gone and whose traces
// are provably partial.
func TestServeScenarioSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario sweep is the long gate")
	}
	for _, spec := range scenario.Scenarios() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			db := scenarioWarehouse(t, spec.Name, 50)
			s, err := New(Config{DB: db})
			if err != nil {
				t.Fatal(err)
			}
			h := s.Handler()
			var out queryResult
			get(t, h, "/api/window?table=apache_event&value=rt_us&fn=p99&window=50ms&time=ud", 200, &out)
			if len(out.Rows) == 0 {
				t.Error("window aggregation returned no rows")
			}
			svg := get(t, h, "/flamegraph.svg", 200, nil).Body.String()
			if !strings.HasPrefix(svg, "<svg") || !strings.Contains(svg, "critical path") {
				t.Errorf("flamegraph did not render: %.120s", svg)
			}
		})
	}
}
