package serve

import (
	"fmt"
	"html"
	"net/http"
	"strings"
)

// handleIndex renders the self-contained landing page: warehouse
// contents, the slowest requests with flamegraph links, and a curl
// quickstart. No scripts, no external assets — the page works from a
// file:// save as well as over the wire.
func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	var b strings.Builder
	p := func(format string, args ...any) { fmt.Fprintf(&b, format, args...) }
	p(`<!DOCTYPE html><html><head><meta charset="utf-8"><title>mscope serve</title><style>
body{font-family:monospace;margin:2em;max-width:70em}
table{border-collapse:collapse;margin:1em 0}
td,th{border:1px solid #ccc;padding:3px 8px;text-align:left}
th{background:#f4f4f4}
code{background:#f4f4f4;padding:1px 4px}
</style></head><body><h1>mscope serve</h1>`)

	p(`<h2>Warehouse</h2><table><tr><th>table</th><th>rows</th><th>columns</th></tr>`)
	for _, ti := range s.tableInfos() {
		cols := make([]string, len(ti.Columns))
		for i, c := range ti.Columns {
			cols[i] = c.Name
		}
		p(`<tr><td>%s</td><td>%d</td><td>%s</td></tr>`,
			html.EscapeString(ti.Name), ti.Rows, html.EscapeString(strings.Join(cols, ", ")))
	}
	p(`</table>`)

	if traces, err := s.buildTraces(); err == nil && len(traces) > 0 {
		p(`<h2>Slowest requests</h2><table><tr><th>reqid</th><th>response</th><th>spans</th><th></th></tr>`)
		ordered := slowestFirst(traces)
		if len(ordered) > 10 {
			ordered = ordered[:10]
		}
		for _, tr := range ordered {
			id := html.EscapeString(tr.ReqID)
			p(`<tr><td>%s</td><td>%.3f ms</td><td>%d</td>`+
				`<td><a href="/flamegraph.svg?reqid=%s">flame</a> <a href="/api/trace/%s">json</a></td></tr>`,
				id, float64(tr.ResponseTime().Microseconds())/1000, len(tr.Spans), id, id)
		}
		p(`</table>`)
	}

	p(`<h2>Endpoints</h2><table><tr><th>path</th><th>what</th></tr>`)
	for _, e := range [][2]string{
		{"/api/tables", "warehouse catalogue: tables, row counts, column types"},
		{"/api/query?q=...", "run an MQL statement"},
		{"/api/window?table=&amp;value=&amp;fn=&amp;window=&amp;from=&amp;to=&amp;by=", "vectorized window aggregation with index-pruned time bounds"},
		{"/api/traces?limit=", "reconstructed requests, slowest first"},
		{"/api/trace/{reqid}", "one request's waterfall/flamegraph data"},
		{"/flamegraph.svg?reqid=", "critical-path flamegraph (slowest request by default)"},
		{"/api/diagnosis", "the verdict timeline with full evidence"},
		{"/healthz", "readiness probes"},
		{"/metrics", "Prometheus exposition"},
	} {
		p(`<tr><td>%s</td><td>%s</td></tr>`, e[0], html.EscapeString(e[1]))
	}
	p(`</table>`)

	p(`<h2>Quickstart</h2><pre>curl 'http://HOST/api/query?q=SELECT+WINDOW+50ms+MAX(rt_us)+BY+ud+FROM+apache_event'
curl 'http://HOST/api/window?table=apache_event&amp;value=rt_us&amp;fn=p99&amp;window=50ms'
curl 'http://HOST/flamegraph.svg' &gt; flame.svg</pre>`)
	p(`</body></html>`)

	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_, _ = w.Write([]byte(b.String()))
}
