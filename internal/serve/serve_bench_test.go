package serve

import (
	"encoding/json"
	"net/http/httptest"
	"strconv"
	"testing"
)

// benchGet drives one request through the handler and fails the
// benchmark on a non-200 so a broken endpoint can't post a fast time.
func benchGet(b *testing.B, s *Server, path string) {
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	if rec.Code != 200 {
		b.Fatalf("GET %s: %d: %s", path, rec.Code, rec.Body.String())
	}
}

// BenchmarkQueryWindow measures the /api/window endpoint end to end —
// predicate pruning through the sorted time index plus the vectorized
// window aggregation — over the full-size dbio warehouse. Gated by
// BENCH_query.json under `make bench-check`.
func BenchmarkQueryWindow(b *testing.B) {
	s := smokeServer(b)
	path := "/api/window?table=apache_event&value=rt_us&fn=p99&window=50ms"
	benchGet(b, s, path) // warm: surfaces handler errors before timing
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchGet(b, s, path)
	}
}

// BenchmarkQueryWindowPruned narrows the same aggregation to one 500ms
// slice via from/to predicates, so the gap between this and
// BenchmarkQueryWindow is the index-pruning win.
func BenchmarkQueryWindowPruned(b *testing.B) {
	s := smokeServer(b)
	var full struct {
		Rows [][]string `json:"rows"`
	}
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET",
		"/api/window?table=apache_event&value=rt_us&fn=p99&window=50ms", nil))
	if rec.Code != 200 {
		b.Fatalf("probe: %d: %s", rec.Code, rec.Body.String())
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &full); err != nil || len(full.Rows) == 0 {
		b.Fatalf("probe: no windows (%v)", err)
	}
	start, err := strconv.ParseInt(full.Rows[0][0], 10, 64)
	if err != nil {
		b.Fatalf("bad window_start_us %q: %v", full.Rows[0][0], err)
	}
	path := "/api/window?table=apache_event&value=rt_us&fn=p99&window=50ms" +
		"&from=" + strconv.FormatInt(start, 10) +
		"&to=" + strconv.FormatInt(start+500_000, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchGet(b, s, path)
	}
}

// BenchmarkFlamegraphRender measures /flamegraph.svg end to end: trace
// reconstruction across all four tiers, critical-path busy-interval
// subtraction, and SVG emission for the slowest request.
func BenchmarkFlamegraphRender(b *testing.B) {
	s := smokeServer(b)
	benchGet(b, s, "/flamegraph.svg")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchGet(b, s, "/flamegraph.svg")
	}
}
