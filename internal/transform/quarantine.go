package transform

import (
	"bufio"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"github.com/gt-elba/milliscope/internal/importer"
	"github.com/gt-elba/milliscope/internal/mscopedb"
	"github.com/gt-elba/milliscope/internal/mxml"
	"github.com/gt-elba/milliscope/internal/parsers"
	"github.com/gt-elba/milliscope/internal/retry"
	"github.com/gt-elba/milliscope/internal/selfobs"
	"github.com/gt-elba/milliscope/internal/simtime"
	"github.com/gt-elba/milliscope/internal/xmlcsv"
)

// Policy selects how the ingest pipeline treats malformed input.
type Policy int

const (
	// FailFast aborts the whole ingest on the first malformed line — the
	// historical behavior and still the default: on a healthy testbed any
	// parse failure is a declaration bug worth stopping for.
	FailFast Policy = iota
	// Quarantine diverts malformed lines and records to a per-file sink
	// and keeps parsing, resynchronizing multi-line parsers at the next
	// record boundary. A file is rejected (not the ingest) when its
	// corrupt-line ratio exceeds the error budget or nothing parses.
	Quarantine
)

// String names the policy for CLI flags and reports.
func (p Policy) String() string {
	switch p {
	case FailFast:
		return "fail-fast"
	case Quarantine:
		return "quarantine"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// ParsePolicy converts a CLI flag value to a Policy.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "", "fail-fast", "failfast":
		return FailFast, nil
	case "quarantine":
		return Quarantine, nil
	default:
		return FailFast, fmt.Errorf("transform: unknown ingest policy %q (want fail-fast or quarantine)", s)
	}
}

// DefaultErrorBudget is the per-file corrupt-line ratio above which a
// quarantine-mode ingest rejects the file: past 5% the surviving records
// no longer representatively sample the tier's traffic.
const DefaultErrorBudget = 0.05

// Options parameterize a policy-aware ingest.
type Options struct {
	// Policy selects FailFast (default) or Quarantine.
	Policy Policy
	// ErrorBudget is the per-file quarantined/(parsed+quarantined) ratio
	// above which the file is rejected; zero means DefaultErrorBudget.
	ErrorBudget float64
	// QuarantineDir receives the per-file quarantine sinks; empty means
	// "<workDir>/quarantine".
	QuarantineDir string
	// Workers caps ingest concurrency. 0 and 1 select the serial pipeline;
	// >1 selects the parallel sharded engine, which is proven row-for-row
	// equivalent to serial by the differential conformance suite.
	Workers int
	// ChunkSize is the target shard size in bytes when splitting one large
	// file across workers; zero means DefaultChunkSize. Files smaller than
	// two chunks are parsed whole.
	ChunkSize int
	// Materialize restores the staged pipeline: annotated-XML and CSV
	// artifacts are written to workDir between stages instead of streaming
	// entries from parser to warehouse in memory. The warehouse contents
	// are identical either way (the differential suite proves it); the
	// staged artifacts only matter when they are wanted for inspection.
	Materialize bool
}

// ErrFileRejected marks a per-file quarantine-mode rejection: the file's
// damage exceeded the error budget (or nothing parsed at all). IngestDir
// records these in Report.Failed and continues with the remaining files.
var ErrFileRejected = errors.New("file rejected")

// FileFailure records one rejected file in a quarantine-mode ingest.
type FileFailure struct {
	// Input is the source file path.
	Input string
	// Err wraps ErrFileRejected with the rejection cause.
	Err error
}

// budget returns the effective error budget.
func (o Options) budget() float64 {
	if o.ErrorBudget == 0 {
		return DefaultErrorBudget
	}
	return o.ErrorBudget
}

// quarantineDir returns the effective sink directory.
func (o Options) quarantineDir(workDir string) string {
	if o.QuarantineDir != "" {
		return o.QuarantineDir
	}
	return filepath.Join(workDir, "quarantine")
}

// quarantineSink lazily creates "<dir>/<base>.quarantine" and records each
// diverted region as a located comment line followed by the raw text. The
// mutex makes record safe to call from concurrent parsers (the parallel
// ingest re-parses torn shards while neighbors are still running); entries
// stay whole, though cross-goroutine interleaving order is up to the
// caller to control where byte-identical sinks matter.
type quarantineSink struct {
	dir  string
	base string

	mu sync.Mutex
	f  *os.File
	w  *bufio.Writer
	n  int
}

// Quarantine sink creation retries transient fs failures (EMFILE under the
// parallel ingest's fan-out, a dir briefly missing mid-rotation) instead of
// surfacing them as a lost malformed region. Package vars so tests inject a
// flaky fs and a recording sleep.
var (
	sinkRetry  = retry.Default
	sinkCreate = os.Create
)

func (q *quarantineSink) record(m parsers.Malformed) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.f == nil {
		var f *os.File
		err := sinkRetry.Do(func() error {
			if err := os.MkdirAll(q.dir, 0o755); err != nil {
				return err
			}
			var cerr error
			f, cerr = sinkCreate(filepath.Join(q.dir, q.base+".quarantine"))
			return cerr
		})
		if err != nil {
			return fmt.Errorf("transform: create quarantine sink: %w", err)
		}
		q.f = f
		q.w = bufio.NewWriter(f)
	}
	q.n++
	if m.Line > 0 {
		fmt.Fprintf(q.w, "# %s:%d: %v\n%s\n", q.base, m.Line, m.Err, m.Text)
	} else {
		fmt.Fprintf(q.w, "# %s: %v\n", q.base, m.Err)
	}
	return nil
}

// path returns the sink file path, or "" when nothing was quarantined.
func (q *quarantineSink) path() string {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.f == nil {
		return ""
	}
	return filepath.Join(q.dir, q.base+".quarantine")
}

// count returns how many regions have been recorded.
func (q *quarantineSink) count() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.n
}

func (q *quarantineSink) close() error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.f == nil {
		return nil
	}
	if err := q.w.Flush(); err != nil {
		return err
	}
	return q.f.Close()
}

// transformFileDegraded runs stage 2 under the Quarantine policy: parse in
// degraded mode, divert malformed regions to the sink, and reject the file
// (wrapping ErrFileRejected) when the error budget is breached or no
// records survive.
func transformFileDegraded(path string, b Binding, workDir string, opts Options) (FileResult, error) {
	var out FileResult
	p, err := parsers.Get(b.Parser)
	if err != nil {
		return out, err
	}
	if err := os.MkdirAll(workDir, 0o755); err != nil {
		return out, fmt.Errorf("transform: create work dir: %w", err)
	}
	host := hostOf(path, b)
	table := host + "_" + b.TableSuffix
	base := filepath.Base(path)

	dp, degradable := p.(parsers.DegradedParser)
	if !degradable {
		// Customized parsers without a degraded mode keep strict semantics;
		// under Quarantine their failure costs the file, not the ingest.
		fr, err := TransformFile(path, b, workDir)
		if err != nil {
			return out, fmt.Errorf("transform: %s: %w: parser %q has no degraded mode: %v",
				path, ErrFileRejected, b.Parser, err)
		}
		return fr, nil
	}

	in, err := os.Open(path)
	if err != nil {
		return out, fmt.Errorf("transform: open %s: %w", path, err)
	}
	defer in.Close()

	mxmlPath := filepath.Join(workDir, table+".mxml")
	outF, err := os.Create(mxmlPath)
	if err != nil {
		return out, fmt.Errorf("transform: create %s: %w", mxmlPath, err)
	}
	defer outF.Close()
	w := mxml.NewWriter(outF)
	if err := w.Open(mxml.Meta{Source: b.Source, Host: host, Table: table}); err != nil {
		return out, err
	}
	sink := &quarantineSink{dir: opts.quarantineDir(workDir), base: base}
	parseErr := dp.ParseDegraded(in, b.Instructions, w.WriteEntry, sink.record)
	if cerr := sink.close(); cerr != nil && parseErr == nil {
		parseErr = cerr
	}
	if parseErr != nil {
		return out, fmt.Errorf("transform: %s: %w", path, parseErr)
	}
	if err := w.Close(); err != nil {
		return out, err
	}
	out = FileResult{Input: path, Parser: b.Parser, Table: table,
		MXMLPath: mxmlPath, Entries: w.Entries(),
		Quarantined: sink.count(), QuarantinePath: sink.path()}
	if err := opts.checkBudget(out, path); err != nil {
		return out, err
	}
	return out, nil
}

// checkBudget applies the quarantine-mode acceptance tests to a transformed
// file: reject (wrapping ErrFileRejected) when nothing survived or the
// corrupt-region ratio exceeds the error budget. Shared by the serial and
// parallel pipelines so both reject with byte-identical errors.
func (o Options) checkBudget(out FileResult, path string) error {
	if out.Entries == 0 {
		return fmt.Errorf("transform: %s: %w: no records survived (%d quarantined)",
			path, ErrFileRejected, out.Quarantined)
	}
	total := out.Entries + out.Quarantined
	if ratio := float64(out.Quarantined) / float64(total); ratio > o.budget() {
		return fmt.Errorf("transform: %s: %w: corrupt-line ratio %.4f exceeds error budget %.4f (%d of %d regions quarantined)",
			path, ErrFileRejected, ratio, o.budget(), out.Quarantined, total)
	}
	return nil
}

// IngestDirWithOptions is the policy-aware ingest. Under FailFast it is
// exactly IngestDir. Under Quarantine, per-file rejections land in
// Report.Failed and the ingest continues; infrastructure errors (unreadable
// directory, conversion or warehouse-load failures on accepted records)
// remain fatal under both policies.
func IngestDirWithOptions(db *mscopedb.DB, logDir, workDir string, plan *Plan, opts Options) (Report, error) {
	if opts.Workers > 1 {
		return ingestDirParallel(db, logDir, workDir, plan, opts)
	}
	var rep Report
	entries, err := os.ReadDir(logDir)
	if err != nil {
		return rep, fmt.Errorf("transform: read log dir: %w", err)
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names) // deterministic ingest order
	obs := selfobs.NewBuf()
	defer obs.Close()
	for _, name := range names {
		full := filepath.Join(logDir, name)
		b, ok := plan.Find(name)
		if !ok {
			rep.Skipped = append(rep.Skipped, name)
			continue
		}
		info, err := os.Stat(full)
		if err != nil {
			return rep, fmt.Errorf("transform: stat %s: %w", full, err)
		}
		if off, known := db.LatestIngestOffset(full); known {
			if off == info.Size() {
				// Fully loaded by a previous ingest of this warehouse —
				// skipping keeps re-ingest idempotent.
				rep.Unchanged = append(rep.Unchanged, name)
				continue
			}
			// The file changed since it was loaded (grew, or was rewritten
			// by rotation): rebuild its table from scratch rather than
			// appending duplicates on top of stale rows.
			table := hostOf(full, b) + "_" + b.TableSuffix
			if db.HasTable(table) {
				if err := db.Drop(table); err != nil {
					return rep, fmt.Errorf("transform: rebuild %s: %w", table, err)
				}
			}
		}
		var fr FileResult
		var loaded importer.Loaded
		sp := obs.Begin(selfobs.PipeIngest, "parse", "serial", name)
		if opts.Materialize {
			if opts.Policy == Quarantine {
				fr, err = transformFileDegraded(full, b, workDir, opts)
				if err != nil {
					if errors.Is(err, ErrFileRejected) {
						rep.Failed = append(rep.Failed, FileFailure{Input: full, Err: err})
						continue
					}
					return rep, err
				}
			} else {
				fr, err = TransformFile(full, b, workDir)
				if err != nil {
					return rep, err
				}
			}
			sp.End(int64(fr.Entries), int64(fr.Quarantined))
			rep.Files = append(rep.Files, fr)
			sp = obs.Begin(selfobs.PipeIngest, "convert", "serial", name)
			conv, err := xmlcsv.ConvertFile(fr.MXMLPath, workDir)
			if err != nil {
				return rep, err
			}
			sp.End(int64(fr.Entries), 0)
			sp = obs.Begin(selfobs.PipeIngest, "append", "serial", name)
			loaded, err = importer.LoadFile(db, conv.CSVPath, conv.SchemaPath)
			if err != nil {
				return rep, err
			}
		} else {
			set := newEntrySet()
			fr, err = directParse(full, b, workDir, opts, set)
			if err != nil {
				if opts.Policy == Quarantine && errors.Is(err, ErrFileRejected) {
					rep.Failed = append(rep.Failed, FileFailure{Input: full, Err: err})
					continue
				}
				return rep, err
			}
			sp.End(int64(fr.Entries), int64(fr.Quarantined))
			rep.Files = append(rep.Files, fr)
			sp = obs.Begin(selfobs.PipeIngest, "convert", "serial", name)
			cols, err := set.columns(filepath.Join(workDir, fr.Table+".mxml"))
			if err != nil {
				return rep, err
			}
			sp.End(int64(fr.Entries), 0)
			sp = obs.Begin(selfobs.PipeIngest, "append", "serial", name)
			csvPath := filepath.Join(workDir, fr.Table+".csv")
			tbl, err := set.buildTable(fr.Table, cols, csvPath)
			if err != nil {
				return rep, err
			}
			loaded, err = importer.Install(db, tbl, csvPath)
			if err != nil {
				return rep, err
			}
		}
		// Ledger the source file at its consumed size so a re-ingest of
		// the same directory into this warehouse skips it.
		if err := db.RecordIngestAt(loaded.Table, full, loaded.Rows, info.Size(), simtime.Epoch); err != nil {
			return rep, err
		}
		// Same per-file durability as the parallel appender: rows and
		// ledger commit together (no-op for in-memory warehouses).
		if err := db.Checkpoint(); err != nil {
			return rep, err
		}
		sp.End(int64(loaded.Rows), 0)
		rep.Loads = append(rep.Loads, loaded)
	}
	rep.sortDeterministic()
	return rep, nil
}

// sortDeterministic orders every report slice by input name so callers and
// tests can rely on stable output regardless of how the report was built.
func (r *Report) sortDeterministic() {
	sort.Slice(r.Files, func(i, j int) bool { return r.Files[i].Input < r.Files[j].Input })
	sort.Slice(r.Loads, func(i, j int) bool { return r.Loads[i].Table < r.Loads[j].Table })
	sort.Strings(r.Skipped)
	sort.Strings(r.Unchanged)
	sort.Slice(r.Failed, func(i, j int) bool { return r.Failed[i].Input < r.Failed[j].Input })
}
