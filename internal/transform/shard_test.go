package transform

import (
	"bytes"
	"context"
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"

	"github.com/gt-elba/milliscope/internal/logfmt"
	"github.com/gt-elba/milliscope/internal/mxml"
	"github.com/gt-elba/milliscope/internal/parsers"
	"github.com/gt-elba/milliscope/internal/simtime"
)

// region is a comparable projection of parsers.Malformed (errors compare
// by message).
type region struct {
	Line int
	Text string
	Err  string
}

func projectRegions(ms []parsers.Malformed) []region {
	out := make([]region, 0, len(ms))
	for _, m := range ms {
		out = append(out, region{Line: m.Line, Text: m.Text, Err: fmt.Sprint(m.Err)})
	}
	return out
}

// serialParse is the reference: the whole-file parse the serial pipeline
// runs, observed the same way parseSharded reports its results.
func serialParse(p parsers.Parser, data []byte, instr parsers.Instructions, degraded bool) ([]mxml.Entry, []parsers.Malformed, error) {
	var entries []mxml.Entry
	var regions []parsers.Malformed
	emit := func(e mxml.Entry) error { entries = append(entries, e); return nil }
	if degraded {
		dp, ok := p.(parsers.DegradedParser)
		if !ok {
			return nil, nil, fmt.Errorf("parser %s has no degraded mode", p.Name())
		}
		err := dp.ParseDegraded(bytes.NewReader(data), instr, emit, func(m parsers.Malformed) error {
			regions = append(regions, m)
			return nil
		})
		return entries, regions, err
	}
	err := p.Parse(bytes.NewReader(data), instr, emit)
	return entries, regions, err
}

// shardedParse plans shards at the given chunk size and runs the parallel
// stitched parse.
func shardedParse(t testing.TB, cp parsers.ChunkParser, data []byte, instr parsers.Instructions, degraded bool, chunkSize int) ([]mxml.Entry, []parsers.Malformed, error) {
	bnd, ok := cp.Chunkable(instr)
	if !ok {
		t.Fatalf("parser %s not chunkable", cp.Name())
	}
	shards := planShards(data, bnd, chunkSize)
	return parseSharded(context.Background(), newSemaphore(4), cp, shards, instr, degraded, nil, "")
}

// assertParseEquivalent fails unless the sharded parse produced exactly
// the serial parse's entries, malformed regions, and error.
func assertParseEquivalent(t *testing.T, p parsers.Parser, data []byte, instr parsers.Instructions, degraded bool, chunkSize int) {
	t.Helper()
	cp, ok := p.(parsers.ChunkParser)
	if !ok {
		t.Fatalf("parser %s is not a ChunkParser", p.Name())
	}
	wantE, wantR, wantErr := serialParse(p, data, instr, degraded)
	gotE, gotR, gotErr := shardedParse(t, cp, data, instr, degraded, chunkSize)
	if (wantErr == nil) != (gotErr == nil) || (wantErr != nil && wantErr.Error() != gotErr.Error()) {
		t.Fatalf("chunk %d: sharded err %v, serial err %v", chunkSize, gotErr, wantErr)
	}
	if wantErr != nil {
		return
	}
	if len(gotE) != len(wantE) {
		t.Fatalf("chunk %d: sharded %d entries, serial %d", chunkSize, len(gotE), len(wantE))
	}
	for i := range wantE {
		if !reflect.DeepEqual(gotE[i], wantE[i]) {
			t.Fatalf("chunk %d: entry %d differs:\nsharded %+v\nserial  %+v", chunkSize, i, gotE[i], wantE[i])
		}
	}
	if !reflect.DeepEqual(projectRegions(gotR), projectRegions(wantR)) {
		t.Fatalf("chunk %d: quarantined regions differ:\nsharded %+v\nserial  %+v",
			chunkSize, projectRegions(gotR), projectRegions(wantR))
	}
}

// apacheCorpus renders count access-log lines; every corruptEvery-th line
// (when >0) is replaced with garbage the token pattern rejects.
func apacheCorpus(count, corruptEvery int) []byte {
	var b strings.Builder
	for i := 0; i < count; i++ {
		if corruptEvery > 0 && i%corruptEvery == corruptEvery-1 {
			fmt.Fprintf(&b, "!! torn line %d ¡garbage¿\n", i)
			continue
		}
		ua := simtime.Epoch.Add(time.Duration(i) * 3 * time.Millisecond)
		ud := ua.Add(time.Duration(i%7+1) * time.Millisecond)
		ds := ua.Add(500 * time.Microsecond)
		b.WriteString(logfmt.ApacheAccess("10.0.0.2", "GET", fmt.Sprintf("/item/%d?rid=req-%d", i, i), 200, 1000+i, ua, ud, ds, ud))
		b.WriteByte('\n')
	}
	return []byte(b.String())
}

// mysqlCorpus renders the slow-log preamble plus count records. Corruption
// alternates between garbage inside a record and a boundary-lookalike
// "# Time:" line whose timestamp cannot decode — the case that forces a
// shard cut to land mid-record and exercises the tail re-parse.
func mysqlCorpus(count, corruptEvery int) []byte {
	var b strings.Builder
	b.WriteString(logfmt.MySQLHeader())
	for i := 0; i < count; i++ {
		ua := simtime.Epoch.Add(time.Duration(i) * 5 * time.Millisecond)
		ud := ua.Add(time.Duration(i%5+1) * time.Millisecond)
		rec := logfmt.MySQLSlowRecord(100+i, ua, ud, 3, 40,
			"SELECT * FROM items WHERE id=7", fmt.Sprintf("req-%d", i), i%4)
		if corruptEvery > 0 && i%corruptEvery == corruptEvery-1 {
			if i%2 == 0 {
				// Garbage line torn into the middle of the record.
				lines := strings.SplitAfter(rec, "\n")
				rec = strings.Join(lines[:2], "") + "@@corrupted@@\n" + strings.Join(lines[2:], "")
			} else {
				// A record-boundary lookalike that fails semantically.
				rec = "# Time: not-a-timestamp\n" + rec[strings.Index(rec, "\n")+1:]
			}
		}
		b.WriteString(rec)
	}
	return []byte(b.String())
}

var shardChunkSizes = []int{1, 16, 100, 512, 4 << 10, 64 << 10}

func TestPlanShardsReassemble(t *testing.T) {
	data := mysqlCorpus(120, 0)
	p, _ := parsers.Get("mysql-slow")
	bnd, ok := p.(parsers.ChunkParser).Chunkable(parsers.Instructions{})
	if !ok {
		t.Fatal("mysql-slow not chunkable")
	}
	for _, cs := range shardChunkSizes {
		shards := planShards(data, bnd, cs)
		var joined []byte
		line := 1
		for _, s := range shards {
			if s.startLine != line {
				t.Fatalf("chunk %d: shard start line %d, want %d", cs, s.startLine, line)
			}
			line += bytes.Count(s.data, []byte{'\n'})
			joined = append(joined, s.data...)
		}
		if !bytes.Equal(joined, data) {
			t.Fatalf("chunk %d: shards do not reassemble the input (%d vs %d bytes)", cs, len(joined), len(data))
		}
	}
}

func TestPlanShardsCutsOnRecordBoundaries(t *testing.T) {
	data := mysqlCorpus(200, 0)
	p, _ := parsers.Get("mysql-slow")
	bnd, _ := p.(parsers.ChunkParser).Chunkable(parsers.Instructions{})
	shards := planShards(data, bnd, 1024)
	if len(shards) < 3 {
		t.Fatalf("expected several shards, got %d", len(shards))
	}
	for i, s := range shards[1:] {
		if !bytes.HasPrefix(s.data, []byte("# Time: ")) {
			t.Fatalf("shard %d does not start at a record boundary: %q...", i+1, s.data[:min(40, len(s.data))])
		}
	}
}

func TestShardedApacheMatchesSerial(t *testing.T) {
	instr := parsers.ApacheInstructions()
	p, _ := parsers.Get("token")
	for _, corrupt := range []int{0, 7} {
		data := apacheCorpus(300, corrupt)
		for _, degraded := range []bool{false, true} {
			for _, cs := range shardChunkSizes {
				assertParseEquivalent(t, p, data, instr, degraded, cs)
			}
		}
	}
}

func TestShardedMySQLSlowMatchesSerial(t *testing.T) {
	p, _ := parsers.Get("mysql-slow")
	for _, corrupt := range []int{0, 5} {
		data := mysqlCorpus(150, corrupt)
		for _, degraded := range []bool{false, true} {
			for _, cs := range shardChunkSizes {
				assertParseEquivalent(t, p, data, parsers.Instructions{Const: map[string]string{"host": "mysql"}}, degraded, cs)
			}
		}
	}
}

// TestShardedHeaderNotDoubleCounted pins the absolute-line-number
// mechanism: with a chunk size smaller than the header, cuts land inside
// the header region, and the rows must come out identical anyway.
func TestShardedHeaderNotDoubleCounted(t *testing.T) {
	p, _ := parsers.Get("mysql-slow")
	data := mysqlCorpus(20, 0)
	for _, cs := range []int{1, 8, 24} {
		assertParseEquivalent(t, p, data, parsers.Instructions{}, false, cs)
	}
}

// TestShardedTruncatedFileMatchesSerial: a file ending mid-record must
// report the same truncation error (fail-fast) or quarantined tail
// (degraded) as serial, not silently drop the partial record.
func TestShardedTruncatedFileMatchesSerial(t *testing.T) {
	p, _ := parsers.Get("mysql-slow")
	data := mysqlCorpus(60, 0)
	data = data[:len(data)-25] // tear the final record
	for _, degraded := range []bool{false, true} {
		for _, cs := range shardChunkSizes {
			assertParseEquivalent(t, p, data, parsers.Instructions{}, degraded, cs)
		}
	}
}
