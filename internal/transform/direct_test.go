package transform

import (
	"bytes"
	"encoding/csv"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/gt-elba/milliscope/internal/logfmt"
	"github.com/gt-elba/milliscope/internal/mscopedb"
	"github.com/gt-elba/milliscope/internal/mxml"
	"github.com/gt-elba/milliscope/internal/simtime"
	"github.com/gt-elba/milliscope/internal/xmlcsv"
)

// normalizeStagedReport blanks the fields that legitimately differ between
// a staged and a direct run: only the staged pipeline writes (and reports)
// an annotated-XML artifact.
func normalizeStagedReport(rep Report) Report {
	rep = normalizeReport(rep)
	for i := range rep.Files {
		rep.Files[i].MXMLPath = ""
	}
	return rep
}

// runStagedVsDirect ingests logDir twice into fresh warehouses — once
// through the staged pipeline (Materialize), once through the default
// direct path — and asserts byte-identical warehouse dumps plus identical
// reports, quarantine sinks, and errors.
func runStagedVsDirect(t *testing.T, logDir string, opts Options) {
	t.Helper()
	// One shared work dir: the ledger rows embed staged-artifact paths
	// under it, so both runs must agree on the prefix. The direct run
	// never reads the staged run's artifacts.
	workDir := t.TempDir()
	qS, qD := filepath.Join(t.TempDir(), "qs"), filepath.Join(t.TempDir(), "qd")

	optsS := opts
	optsS.Materialize = true
	optsS.QuarantineDir = qS
	dbS := mscopedb.Open()
	repS, errS := IngestDirWithOptions(dbS, logDir, workDir, DefaultPlan(), optsS)

	optsD := opts
	optsD.Materialize = false
	optsD.QuarantineDir = qD
	dbD := mscopedb.Open()
	repD, errD := IngestDirWithOptions(dbD, logDir, workDir, DefaultPlan(), optsD)

	if (errS == nil) != (errD == nil) || (errS != nil && errS.Error() != errD.Error()) {
		t.Fatalf("ingest errors differ:\nstaged %v\ndirect %v", errS, errD)
	}
	s, d := normalizeStagedReport(repS), normalizeStagedReport(repD)
	if fmt.Sprintf("%+v", s) != fmt.Sprintf("%+v", d) {
		t.Errorf("reports differ:\nstaged %+v\ndirect %+v", s, d)
	}
	sinkS, sinkD := readDirContents(t, qS), readDirContents(t, qD)
	if fmt.Sprintf("%v", sinkS) != fmt.Sprintf("%v", sinkD) {
		t.Errorf("quarantine sinks differ:\nstaged %v\ndirect %v", sinkS, sinkD)
	}
	if ds, dd := dumpBytes(t, dbS), dumpBytes(t, dbD); !bytes.Equal(ds, dd) {
		t.Errorf("warehouse dumps differ: staged %d bytes, direct %d bytes", len(ds), len(dd))
	}
}

func TestDirectMatchesStagedClean(t *testing.T) {
	logDir := writeSyntheticDir(t, false)
	for _, workers := range []int{1, 4} {
		runStagedVsDirect(t, logDir, Options{Workers: workers, ChunkSize: 2 << 10})
		runStagedVsDirect(t, logDir, Options{Workers: workers, ChunkSize: 2 << 10, Policy: Quarantine})
	}
}

func TestDirectMatchesStagedCorrupted(t *testing.T) {
	logDir := writeSyntheticDir(t, true)
	for _, workers := range []int{1, 4} {
		base := Options{Workers: workers, ChunkSize: 2 << 10}
		// Generous budget: damage quarantines but files stay accepted.
		o := base
		o.Policy, o.ErrorBudget = Quarantine, 0.5
		runStagedVsDirect(t, logDir, o)
		// Tight budget: some files are rejected; Failed lists must agree.
		o.ErrorBudget = 0.01
		runStagedVsDirect(t, logDir, o)
		// FailFast: both paths must abort with the identical first error and
		// an identical (partial) warehouse.
		runStagedVsDirect(t, logDir, base)
	}
}

// TestDirectMatchesStagedNastyBytes drives bytes through the pipeline that
// make the staged XML and CSV round trips non-trivial: invalid UTF-8,
// XML-illegal control characters, and multi-byte runes inside URL fields.
// The direct path must reproduce the staged normalizations exactly.
func TestDirectMatchesStagedNastyBytes(t *testing.T) {
	dir := t.TempDir()
	nasty := []string{
		"/p\x80q",            // lone continuation byte
		"/a\xff\xfeb",        // invalid lead bytes
		"/bell\x01end",       // XML-illegal control char
		"/del\x7fok",         // legal control-adjacent byte
		"/caf\xc3\xa9/日",     // valid multi-byte runes
		"/truncated\xe6\x97", // truncated multi-byte rune
	}
	var b strings.Builder
	for i, u := range nasty {
		ua := simtime.Epoch.Add(time.Duration(i) * 3 * time.Millisecond)
		ud := ua.Add(time.Duration(i+1) * time.Millisecond)
		ds := ua.Add(500 * time.Microsecond)
		b.WriteString(logfmt.ApacheAccess("10.0.0.9", "GET", u, 200, 1000+i, ua, ud, ds, ud))
		b.WriteByte('\n')
	}
	if err := os.WriteFile(filepath.Join(dir, "nasty_access.log"), []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	runStagedVsDirect(t, dir, Options{})
	runStagedVsDirect(t, dir, Options{Workers: 4, ChunkSize: 64})
}

// TestMaterializeArtifactsGolden pins --materialize to the pre-direct-path
// staged outputs: the XML and CSV artifacts an IngestDirWithOptions with
// Materialize writes must be byte-identical to what TransformFile and
// ConvertFile produce for the same inputs.
func TestMaterializeArtifactsGolden(t *testing.T) {
	logDir := writeSyntheticDir(t, false)
	ingWork := t.TempDir()
	db := mscopedb.Open()
	rep, err := IngestDirWithOptions(db, logDir, ingWork, DefaultPlan(), Options{Materialize: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Files) == 0 {
		t.Fatal("materialized ingest transformed nothing")
	}
	refWork := t.TempDir()
	for _, fr := range rep.Files {
		b, ok := DefaultPlan().Find(fr.Input)
		if !ok {
			t.Fatalf("no binding for %s", fr.Input)
		}
		ref, err := TransformFile(fr.Input, b, refWork)
		if err != nil {
			t.Fatal(err)
		}
		conv, err := xmlcsv.ConvertFile(ref.MXMLPath, refWork)
		if err != nil {
			t.Fatal(err)
		}
		pairs := [][2]string{
			{fr.MXMLPath, ref.MXMLPath},
			{filepath.Join(ingWork, fr.Table+".csv"), conv.CSVPath},
			{filepath.Join(ingWork, fr.Table+".schema.json"), conv.SchemaPath},
		}
		for _, pair := range pairs {
			got, err := os.ReadFile(pair[0])
			if err != nil {
				t.Fatalf("materialized artifact missing: %v", err)
			}
			want, err := os.ReadFile(pair[1])
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("%s differs from staged reference %s (%d vs %d bytes)",
					pair[0], pair[1], len(got), len(want))
			}
		}
	}
}

// TestCSVRoundTripMatchesEncodingCSV pins csvRoundTrip to what a real
// encoding/csv write→read cycle does to a cell.
func TestCSVRoundTripMatchesEncodingCSV(t *testing.T) {
	vals := []string{
		"plain", "", "a,b", `quo"te`, "line\nbreak", "cr\rmid", "crlf\r\nend",
		"\r\n", "trailing\r", "\rleading", "a\r\n\r\nb", "mixed\r\rnot\ncrlf",
	}
	for _, v := range vals {
		var buf bytes.Buffer
		w := csv.NewWriter(&buf)
		// The pad cell keeps a lone empty value from becoming a blank line,
		// matching real converter output (tables always have the pad of
		// other columns or the writer's "" quoting).
		if err := w.Write([]string{v, "pad"}); err != nil {
			t.Fatal(err)
		}
		w.Flush()
		r := csv.NewReader(&buf)
		rec, err := r.Read()
		if err != nil {
			t.Fatalf("read back %q: %v", v, err)
		}
		if rec[0] != csvRoundTrip(v) {
			t.Errorf("csvRoundTrip(%q) = %q, want %q", v, csvRoundTrip(v), rec[0])
		}
	}
}

// TestNormalizeXMLMatchesConverter runs nasty field values through the
// real staged machinery — mxml writer, converter, CSV reader — and checks
// each recovered cell equals csvRoundTrip(normalizeXML(value)).
func TestNormalizeXMLMatchesConverter(t *testing.T) {
	vals := []string{
		"plain", "tab\there", "nl\nthere", "cr\rhere", "crlf\r\npair",
		"caf\xc3\xa9", "\x80", "a\xff\xfeb", "ctl\x01\x02", "\x0bvt",
		"del\x7f", "�-literal", "surrogate\xed\xa0\x80tail",
		"\xe6\x97", "mix\x80\r\n\x01end",
	}
	work := t.TempDir()
	mxmlPath := filepath.Join(work, "nasty_vals.mxml")
	f, err := os.Create(mxmlPath)
	if err != nil {
		t.Fatal(err)
	}
	w := mxml.NewWriter(f)
	if err := w.Open(mxml.Meta{Source: "test", Host: "nasty", Table: "nasty_vals"}); err != nil {
		t.Fatal(err)
	}
	var e mxml.Entry
	for i, v := range vals {
		e.Add(fmt.Sprintf("c%02d", i), v)
	}
	if err := w.WriteEntry(e); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	conv, err := xmlcsv.ConvertFile(mxmlPath, work)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(conv.CSVPath)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(bytes.NewReader(data)).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("converter produced %d rows, want header + 1", len(rows))
	}
	head, cells := rows[0], rows[1]
	byName := map[string]string{}
	for i, h := range head {
		byName[h] = cells[i]
	}
	for i, v := range vals {
		want := csvRoundTrip(normalizeXML(v))
		if got := byName[fmt.Sprintf("c%02d", i)]; got != want {
			t.Errorf("value %d (%q): converter produced %q, direct normalization %q", i, v, got, want)
		}
	}
}
