package transform

// direct.go is the default ingest path since the direct-path rework: the
// parser's entries flow straight into schema inference and a columnar
// table build, fusing the staged pipeline's annotated-XML write, XML
// re-read, CSV write and CSV re-read into one in-memory pass. The staged
// artifacts remain available behind Options.Materialize, and the
// differential conformance suite proves both paths produce byte-identical
// warehouses.
//
// Byte identity is not free: the staged path round-trips every field name
// and value through xml.EscapeText → xml.Decoder and then through
// encoding/csv. Those round trips are not the identity function on
// arbitrary bytes (invalid UTF-8 and XML-illegal runes become U+FFFD;
// CR LF inside a quoted CSV cell collapses to LF), so the direct path
// applies the same normalizations in memory — normalizeXML and
// csvRoundTrip below — instead of paying two encode/decode cycles per
// record to get them for free.

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"unicode/utf8"

	"github.com/gt-elba/milliscope/internal/mscopedb"
	"github.com/gt-elba/milliscope/internal/mxml"
	"github.com/gt-elba/milliscope/internal/parsers"
	"github.com/gt-elba/milliscope/internal/xmlcsv"
)

// xmlCharOK mirrors encoding/xml's isInCharacterRange: the runes XML 1.0
// permits in a document.
func xmlCharOK(r rune) bool {
	return r == 0x09 || r == 0x0A || r == 0x0D ||
		(r >= 0x20 && r <= 0xD7FF) ||
		(r >= 0xE000 && r <= 0xFFFD) ||
		(r >= 0x10000 && r <= 0x10FFFF)
}

// normalizeXML applies the annotated-XML write→read round trip to one
// string: xml.EscapeText replaces invalid UTF-8 bytes and XML-illegal
// runes with U+FFFD and escapes everything else reversibly (including
// \t \n \r, which therefore dodge the XML parser's line-end and
// attribute-value normalizations). Clean strings — the overwhelmingly
// common case — are returned unchanged without allocating.
func normalizeXML(s string) string {
	clean := true
	for i := 0; i < len(s); i++ {
		b := s[i]
		if b >= 0x80 || (b < 0x20 && b != '\t' && b != '\n' && b != '\r') {
			clean = false
			break
		}
	}
	if clean {
		return s
	}
	var sb strings.Builder
	sb.Grow(len(s))
	for i := 0; i < len(s); {
		r, width := utf8.DecodeRuneInString(s[i:])
		if (r == utf8.RuneError && width == 1) || !xmlCharOK(r) {
			sb.WriteRune(utf8.RuneError)
		} else {
			sb.WriteRune(r)
		}
		i += width
	}
	return sb.String()
}

// csvRoundTrip applies the converter-CSV write→read round trip: a cell
// containing CR LF is quoted on write, and encoding/csv's reader treats a
// carriage return followed by a newline inside a quoted cell as a single
// newline. Every other cell the writer produces reads back verbatim.
func csvRoundTrip(s string) string {
	if !strings.Contains(s, "\r\n") {
		return s
	}
	return strings.ReplaceAll(s, "\r\n", "\n")
}

// entrySet collects one file's parsed entries in a single field arena —
// the in-memory stand-in for the annotated-XML document — while folding
// each entry into the converter's bottom-up schema inference.
type entrySet struct {
	fields []mxml.Field
	// ends[i] is the arena offset one past entry i's last field.
	ends []int
	inf  *xmlcsv.Inference
	// emptyName records that some field had an empty name, which the
	// staged path rejects when re-reading the document.
	emptyName bool
}

func newEntrySet() *entrySet { return &entrySet{inf: xmlcsv.NewInference()} }

func (s *entrySet) len() int { return len(s.ends) }

// reserve pre-sizes the arena for entries records totalling fields
// fields. Callers that already hold the parsed records (the sharded
// path's stitch) know both counts exactly; reserving once replaces the
// append doubling chain — and its large-block clear+copy cost, the top
// CPU item in the parallel-ingest profile — with a single allocation.
func (s *entrySet) reserve(entries, fields int) {
	if cap(s.fields)-len(s.fields) < fields {
		grown := make([]mxml.Field, len(s.fields), len(s.fields)+fields)
		copy(grown, s.fields)
		s.fields = grown
	}
	if cap(s.ends)-len(s.ends) < entries {
		grown := make([]int, len(s.ends), len(s.ends)+entries)
		copy(grown, s.ends)
		s.ends = grown
	}
}

// add is the parser's Emit sink: normalize, copy into the arena, observe,
// and recycle the entry's field storage.
func (s *entrySet) add(e mxml.Entry) error {
	start := len(s.fields)
	for _, f := range e.Fields {
		name := normalizeXML(f.Name)
		if name == "" {
			s.emptyName = true
		}
		s.fields = append(s.fields, mxml.Field{
			Name: name, Value: normalizeXML(f.Value), Hint: normalizeXML(f.Hint)})
	}
	s.ends = append(s.ends, len(s.fields))
	s.inf.Observe(mxml.Entry{Fields: s.fields[start:]})
	e.Release()
	return nil
}

// columns finalizes schema inference, reproducing the converter's failure
// modes (and exact errors) for degenerate documents. mxmlPath is the path
// the staged pipeline would have written — reported, never created.
func (s *entrySet) columns(mxmlPath string) ([]mscopedb.Column, error) {
	if s.emptyName {
		return nil, fmt.Errorf("xmlcsv: read %s: mxml: field without name", mxmlPath)
	}
	cols := s.inf.Columns()
	if cols == nil {
		return nil, fmt.Errorf("xmlcsv: %s: document has no fields", mxmlPath)
	}
	return cols, nil
}

// buildTable materializes the collected entries as a columnar table:
// preallocated to the known row count, cells rendered in schema order
// with the converter's last-value-wins rule for duplicate field names.
// csvPath is the path the staged pipeline would have written — used only
// in error messages and ledger rows.
func (s *entrySet) buildTable(table string, cols []mscopedb.Column, csvPath string) (*mscopedb.Table, error) {
	tbl, err := mscopedb.NewTable(table, cols)
	if err != nil {
		return nil, fmt.Errorf("importer: create table: %w", err)
	}
	tbl.Grow(len(s.ends))
	pos := make(map[string]int, len(cols))
	for i, c := range cols {
		pos[c.Name] = i
	}
	row := make([]string, len(cols))
	start := 0
	for _, end := range s.ends {
		for i := range row {
			row[i] = ""
		}
		for _, f := range s.fields[start:end] {
			row[pos[f.Name]] = csvRoundTrip(f.Value)
		}
		start = end
		if err := tbl.AppendStrings(row); err != nil {
			return nil, fmt.Errorf("importer: load %s row %d: %w", csvPath, tbl.Rows()+1, err)
		}
	}
	return tbl, nil
}

// directParse runs stage 2 for the direct path: parse one file into an
// entrySet under the active policy. It mirrors TransformFile /
// transformFileDegraded — same side effects (quarantine sinks), same
// policy decisions, same error strings — minus the annotated-XML file.
func directParse(path string, b Binding, workDir string, opts Options, set *entrySet) (FileResult, error) {
	var out FileResult
	p, err := parsers.Get(b.Parser)
	if err != nil {
		return out, err
	}
	if err := os.MkdirAll(workDir, 0o755); err != nil {
		return out, fmt.Errorf("transform: create work dir: %w", err)
	}
	table := hostOf(path, b) + "_" + b.TableSuffix

	if opts.Policy != Quarantine {
		return directParseStrict(path, p, b, table, set)
	}
	dp, degradable := p.(parsers.DegradedParser)
	if !degradable {
		// Customized parsers without a degraded mode keep strict semantics;
		// under Quarantine their failure costs the file, not the ingest.
		fr, err := directParseStrict(path, p, b, table, set)
		if err != nil {
			return out, fmt.Errorf("transform: %s: %w: parser %q has no degraded mode: %v",
				path, ErrFileRejected, b.Parser, err)
		}
		return fr, nil
	}

	in, err := os.Open(path)
	if err != nil {
		return out, fmt.Errorf("transform: open %s: %w", path, err)
	}
	defer in.Close()
	sink := &quarantineSink{dir: opts.quarantineDir(workDir), base: filepath.Base(path)}
	parseErr := dp.ParseDegraded(in, b.Instructions, set.add, sink.record)
	if cerr := sink.close(); cerr != nil && parseErr == nil {
		parseErr = cerr
	}
	if parseErr != nil {
		return out, fmt.Errorf("transform: %s: %w", path, parseErr)
	}
	out = FileResult{Input: path, Parser: b.Parser, Table: table, Entries: set.len(),
		Quarantined: sink.count(), QuarantinePath: sink.path()}
	if err := opts.checkBudget(out, path); err != nil {
		return out, err
	}
	return out, nil
}

// directParseStrict is the fail-fast half of directParse.
func directParseStrict(path string, p parsers.Parser, b Binding, table string, set *entrySet) (FileResult, error) {
	var out FileResult
	in, err := os.Open(path)
	if err != nil {
		return out, fmt.Errorf("transform: open %s: %w", path, err)
	}
	defer in.Close()
	if err := p.Parse(in, b.Instructions, set.add); err != nil {
		return out, fmt.Errorf("transform: %s: %w", path, err)
	}
	return FileResult{Input: path, Parser: b.Parser, Table: table, Entries: set.len()}, nil
}
