package transform

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"github.com/gt-elba/milliscope/internal/parsers"
	"github.com/gt-elba/milliscope/internal/retry"
)

// TestQuarantineSinkRetriesFlakyFS injects a filesystem whose first two
// creates fail transiently: the sink must retry with backoff and the
// malformed region must still land in the file.
func TestQuarantineSinkRetriesFlakyFS(t *testing.T) {
	origRetry, origCreate := sinkRetry, sinkCreate
	defer func() { sinkRetry, sinkCreate = origRetry, origCreate }()

	creates := 0
	sinkCreate = func(path string) (*os.File, error) {
		creates++
		if creates <= 2 {
			return nil, syscall.EMFILE
		}
		return os.Create(path)
	}
	var slept []time.Duration
	sinkRetry = retry.Policy{Attempts: 4, Base: time.Millisecond,
		Sleep: func(d time.Duration) { slept = append(slept, d) }}

	dir := t.TempDir()
	q := &quarantineSink{dir: filepath.Join(dir, "quarantine"), base: "x.log"}
	err := q.record(parsers.Malformed{Line: 3, Err: errors.New("torn"), Text: "junk"})
	if err != nil {
		t.Fatalf("record with transient fs failures: %v", err)
	}
	if creates != 3 {
		t.Errorf("create called %d times, want 3", creates)
	}
	if len(slept) != 2 {
		t.Errorf("backed off %d times between attempts, want 2", len(slept))
	}
	if err := q.close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(q.path())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "x.log:3") || !strings.Contains(string(data), "junk") {
		t.Errorf("sink content %q missing the diverted region", data)
	}
}

// TestQuarantineSinkPermanentFailure: an fs that never recovers exhausts
// the budget and the error surfaces to the caller.
func TestQuarantineSinkPermanentFailure(t *testing.T) {
	origRetry, origCreate := sinkRetry, sinkCreate
	defer func() { sinkRetry, sinkCreate = origRetry, origCreate }()

	sentinel := errors.New("read-only fs")
	creates := 0
	sinkCreate = func(string) (*os.File, error) { creates++; return nil, sentinel }
	sinkRetry = retry.Policy{Attempts: 3, Base: time.Millisecond, Sleep: func(time.Duration) {}}

	q := &quarantineSink{dir: filepath.Join(t.TempDir(), "quarantine"), base: "y.log"}
	err := q.record(parsers.Malformed{Err: errors.New("bad")})
	if !errors.Is(err, sentinel) {
		t.Fatalf("record error %v does not wrap the fs failure", err)
	}
	if creates != 3 {
		t.Errorf("create called %d times, want the full budget of 3", creates)
	}
}
