// Package transform implements mScopeDataTransformer (paper Section
// III-B): the multi-stage pipeline that unifies heterogeneous monitoring
// logs into the warehouse.
//
// Stage 1, Parsing Declaration, is a declarative registry (Plan) mapping
// log-file patterns to a parser and its instructions. Stage 2 executes the
// bound mScopeParser, enriching the raw log into annotated XML. Stage 3
// hands the XML to the mScope XMLtoCSV Converter, and stage 4 to the
// mScope Data Importer, which creates and populates mScopeDB tables.
package transform

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"github.com/gt-elba/milliscope/internal/importer"
	"github.com/gt-elba/milliscope/internal/mscopedb"
	"github.com/gt-elba/milliscope/internal/mxml"
	"github.com/gt-elba/milliscope/internal/parsers"
	"github.com/gt-elba/milliscope/internal/simtime"
)

// Binding is one Parsing Declaration entry: files matching Glob are parsed
// by Parser with the given Instructions.
type Binding struct {
	// Glob matches the file's base name (path.Match syntax).
	Glob string `json:"glob"`
	// Parser is the registry name (see parsers.Names).
	Parser string `json:"parser"`
	// Instructions govern how the parser injects semantics.
	Instructions parsers.Instructions `json:"instructions"`
	// Source is the monitor identity recorded in the document meta.
	Source string `json:"source"`
	// TableSuffix forms the target table name as "<host>_<suffix>".
	TableSuffix string `json:"table_suffix"`
	// Host fixes the host name; when empty the host is derived from the
	// file name (the stem before the first underscore).
	Host string `json:"host,omitempty"`
}

// Plan is the full Parsing Declaration: the binding list consulted in
// order (first match wins).
type Plan struct {
	Bindings []Binding `json:"bindings"`
}

// DefaultPlan declares every format the simulated testbed produces: the
// four event-monitor logs, both SAR paths, iostat, both collectl modes,
// and milliScope's own self-telemetry log (internal/selfobs).
func DefaultPlan() *Plan {
	date := simtime.Epoch.Format("2006-01-02")
	return &Plan{Bindings: []Binding{
		{Glob: "*_access.log", Parser: "token", Instructions: parsers.ApacheInstructions(),
			Source: "apache-event", TableSuffix: "event"},
		{Glob: "*_mscope.log", Parser: "token", Instructions: parsers.TomcatInstructions(),
			Source: "tomcat-event", TableSuffix: "event"},
		{Glob: "*_ctrl.log", Parser: "token", Instructions: parsers.CJDBCInstructions(),
			Source: "cjdbc-event", TableSuffix: "event"},
		{Glob: "*_slow.log", Parser: "mysql-slow", Source: "mysql-event", TableSuffix: "event"},
		{Glob: "*_sar.log", Parser: "sar", Source: "sar", TableSuffix: "sar"},
		{Glob: "*_sar.xml", Parser: "sar-xml", Source: "sar-xml", TableSuffix: "sarxml"},
		{Glob: "*_iostat.log", Parser: "iostat", Source: "iostat", TableSuffix: "iostat"},
		{Glob: "*_collectl.log", Parser: "collectl", Source: "collectl", TableSuffix: "collectl",
			Instructions: parsers.Instructions{Const: map[string]string{"date": date}}},
		{Glob: "*_collectl.csv", Parser: "collectl-csv", Source: "collectl-csv", TableSuffix: "collectlcsv"},
		{Glob: "*_pidstat.log", Parser: "pidstat", Source: "pidstat", TableSuffix: "pidstat"},
		{Glob: "*_selftrace.log", Parser: "selftrace", Source: "selfobs", TableSuffix: "selftrace"},
	}}
}

// Find returns the first binding matching the file's base name.
func (p *Plan) Find(filename string) (Binding, bool) {
	base := filepath.Base(filename)
	for _, b := range p.Bindings {
		ok, err := filepath.Match(b.Glob, base)
		if err == nil && ok {
			return b, true
		}
	}
	return Binding{}, false
}

// Save writes the plan as JSON — the declaration is data, not code.
func (p *Plan) Save(path string) error {
	data, err := json.MarshalIndent(p, "", " ")
	if err != nil {
		return fmt.Errorf("transform: marshal plan: %w", err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("transform: write plan: %w", err)
	}
	return nil
}

// LoadPlan reads a JSON plan.
func LoadPlan(path string) (*Plan, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("transform: read plan: %w", err)
	}
	var p Plan
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("transform: parse plan %s: %w", path, err)
	}
	if len(p.Bindings) == 0 {
		return nil, fmt.Errorf("transform: plan %s has no bindings", path)
	}
	return &p, nil
}

// HostOf derives the warehouse host for a file under a binding — shared
// with the streaming pipeline, which names tables the same way the batch
// ingest does so both load the same warehouse shape.
func HostOf(filename string, b Binding) string { return hostOf(filename, b) }

// hostOf derives the host from a log file name: "mysql_collectl.csv" →
// "mysql".
func hostOf(filename string, b Binding) string {
	if b.Host != "" {
		return b.Host
	}
	base := filepath.Base(filename)
	if i := strings.IndexByte(base, '_'); i > 0 {
		return base[:i]
	}
	return strings.TrimSuffix(base, filepath.Ext(base))
}

// FileResult reports one stage-2 execution.
type FileResult struct {
	Input    string
	Parser   string
	Table    string
	MXMLPath string
	Entries  int
	// Quarantined counts malformed regions diverted under the Quarantine
	// policy; always zero under FailFast.
	Quarantined int
	// QuarantinePath is the sink file holding the diverted regions; empty
	// when nothing was quarantined.
	QuarantinePath string
}

// TransformFile runs stage 2 on one file: parse the raw log into an
// annotated-XML document in workDir.
func TransformFile(path string, b Binding, workDir string) (FileResult, error) {
	var out FileResult
	p, err := parsers.Get(b.Parser)
	if err != nil {
		return out, err
	}
	if err := os.MkdirAll(workDir, 0o755); err != nil {
		return out, fmt.Errorf("transform: create work dir: %w", err)
	}
	host := hostOf(path, b)
	table := host + "_" + b.TableSuffix
	in, err := os.Open(path)
	if err != nil {
		return out, fmt.Errorf("transform: open %s: %w", path, err)
	}
	defer in.Close()

	mxmlPath := filepath.Join(workDir, table+".mxml")
	outF, err := os.Create(mxmlPath)
	if err != nil {
		return out, fmt.Errorf("transform: create %s: %w", mxmlPath, err)
	}
	defer outF.Close()
	w := mxml.NewWriter(outF)
	if err := w.Open(mxml.Meta{Source: b.Source, Host: host, Table: table}); err != nil {
		return out, err
	}
	if err := p.Parse(in, b.Instructions, w.WriteEntry); err != nil {
		return out, fmt.Errorf("transform: %s: %w", path, err)
	}
	if err := w.Close(); err != nil {
		return out, err
	}
	out = FileResult{Input: path, Parser: b.Parser, Table: table,
		MXMLPath: mxmlPath, Entries: w.Entries()}
	return out, nil
}

// Report summarizes a full directory ingest. All slices are sorted by
// input name (Loads by table) so reports are deterministic.
type Report struct {
	Files   []FileResult
	Loads   []importer.Loaded
	Skipped []string
	// Unchanged lists files the ingest ledger proved fully loaded already
	// (recorded byte offset equals current size): re-running an ingest
	// over the same directory re-reads nothing and duplicates no rows.
	Unchanged []string
	// Failed lists files rejected under the Quarantine policy (error
	// budget breached or nothing parsed); always empty under FailFast,
	// where the first failure aborts the ingest instead.
	Failed []FileFailure
}

// TotalRows returns the number of warehouse rows loaded.
func (r Report) TotalRows() int {
	n := 0
	for _, l := range r.Loads {
		n += l.Rows
	}
	return n
}

// TotalQuarantined sums the quarantined regions across accepted files.
func (r Report) TotalQuarantined() int {
	n := 0
	for _, f := range r.Files {
		n += f.Quarantined
	}
	return n
}

// IngestDir runs the whole pipeline over a log directory under the
// default FailFast policy: for each file with a declaration, parse →
// convert → load into db. Files with no binding are reported in Skipped,
// not failed: a log directory routinely contains artifacts (network
// traces, notes) outside the declaration. See IngestDirWithOptions for
// the Quarantine degraded mode.
func IngestDir(db *mscopedb.DB, logDir, workDir string, plan *Plan) (Report, error) {
	return IngestDirWithOptions(db, logDir, workDir, plan, Options{})
}
