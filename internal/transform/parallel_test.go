package transform

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"github.com/gt-elba/milliscope/internal/mscopedb"
	"github.com/gt-elba/milliscope/internal/parsers"
)

// writeSyntheticDir stages a small log directory covering both chunkable
// formats (token, mysql-slow), a whole-file format, an unbound artifact,
// and — when corrupt — damage in each chunkable format.
func writeSyntheticDir(t *testing.T, corrupt bool) string {
	t.Helper()
	dir := t.TempDir()
	apacheEvery, mysqlEvery := 0, 0
	if corrupt {
		apacheEvery, mysqlEvery = 9, 6
	}
	files := map[string][]byte{
		"apache_access.log": apacheCorpus(400, apacheEvery),
		"web2_access.log":   apacheCorpus(90, apacheEvery),
		"mysql_slow.log":    mysqlCorpus(160, mysqlEvery),
		"notes.txt":         []byte("operator scratch file\n"),
	}
	for name, data := range files {
		if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// dumpBytes snapshots the warehouse via its deterministic gob persistence.
func dumpBytes(t *testing.T, db *mscopedb.DB) []byte {
	t.Helper()
	path := filepath.Join(t.TempDir(), "dump.db")
	if err := db.Save(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// readDirContents maps file name → content for a quarantine directory;
// a missing directory is the empty map (nothing was quarantined).
func readDirContents(t *testing.T, dir string) map[string]string {
	t.Helper()
	out := map[string]string{}
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return out
	}
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		out[e.Name()] = string(data)
	}
	return out
}

// normalizeReport clears the fields that legitimately differ between the
// two runs (the quarantine sinks live in per-run directories) and renders
// failures comparably.
func normalizeReport(rep Report) Report {
	for i := range rep.Files {
		if rep.Files[i].QuarantinePath != "" {
			rep.Files[i].QuarantinePath = filepath.Base(rep.Files[i].QuarantinePath)
		}
	}
	return rep
}

func reportsEqual(t *testing.T, serial, parallel Report) {
	t.Helper()
	s, p := normalizeReport(serial), normalizeReport(parallel)
	if fmt.Sprintf("%+v", s.Files) != fmt.Sprintf("%+v", p.Files) {
		t.Errorf("Files differ:\nserial   %+v\nparallel %+v", s.Files, p.Files)
	}
	if fmt.Sprintf("%+v", s.Loads) != fmt.Sprintf("%+v", p.Loads) {
		t.Errorf("Loads differ:\nserial   %+v\nparallel %+v", s.Loads, p.Loads)
	}
	if fmt.Sprintf("%v", s.Skipped) != fmt.Sprintf("%v", p.Skipped) ||
		fmt.Sprintf("%v", s.Unchanged) != fmt.Sprintf("%v", p.Unchanged) {
		t.Errorf("Skipped/Unchanged differ: serial %v/%v parallel %v/%v",
			s.Skipped, s.Unchanged, p.Skipped, p.Unchanged)
	}
	if len(s.Failed) != len(p.Failed) {
		t.Fatalf("Failed counts differ: serial %d parallel %d", len(s.Failed), len(p.Failed))
	}
	for i := range s.Failed {
		if s.Failed[i].Input != p.Failed[i].Input || s.Failed[i].Err.Error() != p.Failed[i].Err.Error() {
			t.Errorf("Failed[%d] differs:\nserial   %s: %v\nparallel %s: %v",
				i, s.Failed[i].Input, s.Failed[i].Err, p.Failed[i].Input, p.Failed[i].Err)
		}
	}
}

// runDifferential ingests logDir twice — serial and parallel with an
// aggressively small chunk size — into fresh warehouses sharing one work
// directory, and asserts byte-identical dumps plus identical reports,
// quarantine sinks, and errors.
func runDifferential(t *testing.T, logDir string, opts Options) {
	t.Helper()
	workDir := t.TempDir()
	qS, qP := filepath.Join(t.TempDir(), "qs"), filepath.Join(t.TempDir(), "qp")

	optsS := opts
	optsS.Workers = 1
	optsS.QuarantineDir = qS
	dbS := mscopedb.Open()
	repS, errS := IngestDirWithOptions(dbS, logDir, workDir, DefaultPlan(), optsS)

	optsP := opts
	optsP.Workers = 4
	optsP.ChunkSize = 2 << 10
	optsP.QuarantineDir = qP
	dbP := mscopedb.Open()
	repP, errP := IngestDirWithOptions(dbP, logDir, workDir, DefaultPlan(), optsP)

	if (errS == nil) != (errP == nil) || (errS != nil && errS.Error() != errP.Error()) {
		t.Fatalf("ingest errors differ:\nserial   %v\nparallel %v", errS, errP)
	}
	reportsEqual(t, repS, repP)
	sinkS, sinkP := readDirContents(t, qS), readDirContents(t, qP)
	if fmt.Sprintf("%v", sinkS) != fmt.Sprintf("%v", sinkP) {
		t.Errorf("quarantine sinks differ:\nserial   %v\nparallel %v", sinkS, sinkP)
	}
	if ds, dp := dumpBytes(t, dbS), dumpBytes(t, dbP); string(ds) != string(dp) {
		t.Errorf("warehouse dumps differ: serial %d bytes, parallel %d bytes", len(ds), len(dp))
	}
}

func TestParallelIngestMatchesSerialClean(t *testing.T) {
	logDir := writeSyntheticDir(t, false)
	runDifferential(t, logDir, Options{})
	runDifferential(t, logDir, Options{Policy: Quarantine})
}

func TestParallelIngestMatchesSerialCorrupted(t *testing.T) {
	logDir := writeSyntheticDir(t, true)
	// Generous budget: damage quarantines but files stay accepted.
	runDifferential(t, logDir, Options{Policy: Quarantine, ErrorBudget: 0.5})
	// Tight budget: some files are rejected; Failed lists must agree.
	runDifferential(t, logDir, Options{Policy: Quarantine, ErrorBudget: 0.01})
	// FailFast: both engines must abort with the identical first error and
	// an identical (partial) warehouse.
	runDifferential(t, logDir, Options{})
}

// TestParallelIngestLedgerEquivalence drives the restart-resume paths: an
// unchanged re-ingest must skip every file, and a grown file must be
// rebuilt — identically under both engines, with identical ledger offsets.
func TestParallelIngestLedgerEquivalence(t *testing.T) {
	logDir := writeSyntheticDir(t, false)
	workDir := t.TempDir()
	run := func(workers int) (*mscopedb.DB, []Report) {
		db := mscopedb.Open()
		var reps []Report
		opts := Options{Workers: workers, ChunkSize: 2 << 10}
		rep, err := IngestDirWithOptions(db, logDir, workDir, DefaultPlan(), opts)
		if err != nil {
			t.Fatal(err)
		}
		reps = append(reps, rep)
		// Second pass: everything unchanged.
		rep, err = IngestDirWithOptions(db, logDir, workDir, DefaultPlan(), opts)
		if err != nil {
			t.Fatal(err)
		}
		reps = append(reps, rep)
		return db, reps
	}

	dbS, repsS := run(1)
	dbP, repsP := run(4)
	for i := range repsS {
		reportsEqual(t, repsS[i], repsP[i])
	}
	if n := len(repsP[1].Unchanged); n != 3 {
		t.Fatalf("second parallel pass skipped %d files, want 3", n)
	}
	for _, name := range []string{"apache_access.log", "mysql_slow.log"} {
		full := filepath.Join(logDir, name)
		offS, okS := dbS.LatestIngestOffset(full)
		offP, okP := dbP.LatestIngestOffset(full)
		if !okS || !okP || offS != offP {
			t.Fatalf("ledger offsets for %s differ: serial %d/%v parallel %d/%v", name, offS, okS, offP, okP)
		}
	}
	if ds, dp := dumpBytes(t, dbS), dumpBytes(t, dbP); string(ds) != string(dp) {
		t.Error("warehouse dumps differ after re-ingest")
	}

	// Grow one source file; both engines must drop and rebuild its table.
	f, err := os.OpenFile(filepath.Join(logDir, "mysql_slow.log"), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	extra := string(mysqlCorpus(10, 0))
	// Strip the preamble the corpus helper repeats; appended logs carry
	// records only.
	if _, err := f.WriteString(extra[strings.Index(extra, "# Time:"):]); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	repS2, errS := IngestDirWithOptions(dbS, logDir, workDir, DefaultPlan(), Options{Workers: 1, ChunkSize: 2 << 10})
	repP2, errP := IngestDirWithOptions(dbP, logDir, workDir, DefaultPlan(), Options{Workers: 4, ChunkSize: 2 << 10})
	if errS != nil || errP != nil {
		t.Fatalf("rebuild ingests failed: serial %v parallel %v", errS, errP)
	}
	reportsEqual(t, repS2, repP2)
	if len(repS2.Loads) != 1 || repS2.Loads[0].Table != "mysql_event" {
		t.Fatalf("expected only mysql_event rebuilt, got %+v", repS2.Loads)
	}
	if ds, dp := dumpBytes(t, dbS), dumpBytes(t, dbP); string(ds) != string(dp) {
		t.Error("warehouse dumps differ after rebuild")
	}
}

// TestQuarantineSinkConcurrentRecord hammers one sink from many
// goroutines under -race: the count must be exact and every record whole.
func TestQuarantineSinkConcurrentRecord(t *testing.T) {
	dir := t.TempDir()
	sink := &quarantineSink{dir: dir, base: "hammer.log"}
	const workers, perWorker = 16, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				m := parsers.Malformed{
					Line: w*perWorker + i + 1,
					Text: fmt.Sprintf("worker %d line %d", w, i),
					Err:  fmt.Errorf("synthetic damage %d/%d", w, i),
				}
				if err := sink.record(m); err != nil {
					t.Errorf("record: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := sink.close(); err != nil {
		t.Fatal(err)
	}
	if got := sink.count(); got != workers*perWorker {
		t.Fatalf("sink counted %d regions, want %d", got, workers*perWorker)
	}
	data, err := os.ReadFile(sink.path())
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(string(data), "\n"), "\n")
	if len(lines) != 2*workers*perWorker {
		t.Fatalf("sink holds %d lines, want %d", len(lines), 2*workers*perWorker)
	}
	// Records must be whole: comment line and payload line alternate.
	for i := 0; i < len(lines); i += 2 {
		if !strings.HasPrefix(lines[i], "# hammer.log:") {
			t.Fatalf("line %d is not a located comment: %q", i, lines[i])
		}
		if !strings.HasPrefix(lines[i+1], "worker ") {
			t.Fatalf("line %d is not a payload: %q", i+1, lines[i+1])
		}
	}
}
