package transform

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"github.com/gt-elba/milliscope/internal/logfmt"
	"github.com/gt-elba/milliscope/internal/resources"
	"github.com/gt-elba/milliscope/internal/selfobs"
	"github.com/gt-elba/milliscope/internal/simtime"
	"github.com/gt-elba/milliscope/internal/xmlcsv"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden-format inputs and expectations")

// goldenDir holds one committed input file per parser format plus one
// .golden expectation per input: the warehouse-bound table rendered as
// schema + CSV. Any drift in a parser, the converter, or type inference
// fails loudly against the committed bytes.
const goldenDir = "testdata/golden"

// goldenInputs renders each format deterministically off the simulation
// epoch. File names follow the DefaultPlan globs so the test exercises
// binding lookup too.
func goldenInputs() map[string]string {
	ep := simtime.Epoch
	iv := func(i int) resources.Interval {
		return resources.Interval{
			UserPct: 10 + float64(i), SystemPct: 3.5, IOWaitPct: float64(i) / 2, IdlePct: 80 - float64(i),
			DiskReadOpsPS: 1.5, DiskWriteOpsPS: 40 + float64(i),
			DiskReadKBPS: 16, DiskWriteKBPS: 900 + float64(100*i), DiskUtilPct: 25 + float64(i), DiskAvgQueue: 0.4,
			MemFreeKB: 1500000 - float64(1000*i), MemBuffKB: 30000, MemCachedKB: 600000, MemDirtyKB: float64(500 + 250*i),
			NetRxKBPS: 30, NetTxKBPS: 200, RunQueue: 2 + i,
		}
	}

	var apache, tomcat, cjdbc, mysql strings.Builder
	mysql.WriteString(logfmt.MySQLHeader())
	for i := 0; i < 5; i++ {
		ua := ep.Add(time.Duration(i) * 40 * time.Millisecond)
		ud := ua.Add(time.Duration(3+i) * time.Millisecond)
		ds := ua.Add(700 * time.Microsecond)
		dr := ud.Add(-300 * time.Microsecond)
		id := fmt.Sprintf("req-%07d", i)
		uri := fmt.Sprintf("/rubbos/ViewStory?ID=%s", id)
		apache.WriteString(logfmt.ApacheAccess("10.1.0.7", "GET", uri, 200, 17000+i, ua, ud, ds, dr))
		apache.WriteByte('\n')
		tomcat.WriteString(logfmt.TomcatLine(1+i%3, id, uri, ua, ud, ds, dr))
		tomcat.WriteByte('\n')
		cjdbc.WriteString(logfmt.CJDBCLine("rubbos", id, i%2, ua, ud, ds, dr,
			"SELECT * FROM stories WHERE id=?"))
		cjdbc.WriteByte('\n')
		mysql.WriteString(logfmt.MySQLSlowRecord(200+i, ua, ud, 1+i, 30+i,
			"SELECT * FROM stories WHERE id=7", id, i%3))
	}
	// The last apache request makes no downstream call (dash timestamps).
	ua := ep.Add(210 * time.Millisecond)
	apache.WriteString(logfmt.ApacheAccess("10.1.0.9", "GET", "/rubbos/StoriesOfTheDay", 200, 9000,
		ua, ua.Add(2*time.Millisecond), time.Time{}, time.Time{}))
	apache.WriteByte('\n')

	ts := func(i int) time.Time { return ep.Add(time.Duration(i) * 100 * time.Millisecond) }
	var sar, iostat, collectl, collectlCSV, pidstat strings.Builder
	sar.WriteString(logfmt.SARHeader("web", 8, ep) + "\n" + logfmt.SARCPUColumns(ts(0)) + "\n")
	iostat.WriteString(logfmt.IostatHeader("db", 8, ep) + "\n")
	collectl.WriteString(logfmt.CollectlPlainHeader())
	collectlCSV.WriteString(logfmt.CollectlCSVHeader())
	pidstat.WriteString(logfmt.SARHeader("app", 8, ep) + "\n" + logfmt.PidstatColumns(ts(0)) + "\n")
	for i := 0; i < 4; i++ {
		sar.WriteString(logfmt.SARCPURow(ts(i), iv(i)) + "\n")
		iostat.WriteString(logfmt.IostatReport(ts(i), "sda", iv(i)))
		collectl.WriteString(logfmt.CollectlPlainRow(ts(i), iv(i)) + "\n")
		collectlCSV.WriteString(logfmt.CollectlCSVRow(ts(i), iv(i)) + "\n")
		pidstat.WriteString(logfmt.PidstatRow(ts(i), 48, 2817, 40+float64(i), 3.5, 43.5+float64(i), i%8, "java") + "\n")
	}
	sarXML := logfmt.SARXMLOpen("db", 8, ep) +
		logfmt.SARXMLTimestamp(ts(0), iv(0)) +
		logfmt.SARXMLTimestamp(ts(1), iv(1)) +
		logfmt.SARXMLClose()

	// The framework's own telemetry, rendered from fixed records so the
	// emitter grammar (selfobs.FormatLine) and the registered parser are
	// pinned against each other by the same golden bytes.
	var self strings.Builder
	for i := 0; i < 4; i++ {
		self.WriteString(selfobs.FormatLine(ep, "golden-batch", selfobs.Rec{
			Kind: "span", Pipeline: selfobs.PipeIngest, Stage: "chunkparse",
			Span: selfobs.Shard(i), File: "apache_access.log",
			StartNS: int64(i) * 2_500_000, DurNS: 1_200_000 + int64(i)*10_000,
			Items: 1500 + int64(i), Errs: int64(i % 2),
		}) + "\n")
	}
	self.WriteString(selfobs.FormatLine(ep, "golden-batch", selfobs.Rec{
		Kind: "span", Pipeline: selfobs.PipeIngest, Stage: "append", Span: "-",
		File: "apache_access.log", StartNS: 11_000_000, DurNS: 400_000, Items: 6004,
	}) + "\n")
	self.WriteString(selfobs.FormatLine(ep, "golden-batch", selfobs.Rec{
		Kind: "counter", Pipeline: selfobs.PipeLive, Stage: "watermark",
		Span: "rows_advanced", StartNS: 12_000_000, Items: 6001,
	}) + "\n")

	return map[string]string{
		"apache_access.log":    apache.String(),
		"tomcat_mscope.log":    tomcat.String(),
		"cjdbc_ctrl.log":       cjdbc.String(),
		"mysql_slow.log":       mysql.String(),
		"web_sar.log":          sar.String(),
		"db_sar.xml":           sarXML,
		"db_iostat.log":        iostat.String(),
		"web_collectl.log":     collectl.String(),
		"db_collectl.csv":      collectlCSV.String(),
		"app_pidstat.log":      pidstat.String(),
		"mscope_selftrace.log": self.String(),
	}
}

// renderConverted projects one converted file into the golden text form:
// the table name, the inferred schema, and the CSV rows bound for the
// warehouse.
func renderConverted(t *testing.T, conv xmlcsv.Converted) string {
	t.Helper()
	schema, cols, err := xmlcsv.ReadSchema(conv.SchemaPath)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "table %s\n", schema.Table)
	for _, c := range cols {
		fmt.Fprintf(&b, "column %s %s\n", c.Name, c.Type)
	}
	b.WriteString("rows\n")
	data, err := os.ReadFile(conv.CSVPath)
	if err != nil {
		t.Fatal(err)
	}
	b.Write(data)
	return b.String()
}

func TestGoldenFormats(t *testing.T) {
	if *updateGolden {
		if err := os.MkdirAll(goldenDir, 0o755); err != nil {
			t.Fatal(err)
		}
		for name, content := range goldenInputs() {
			if err := os.WriteFile(filepath.Join(goldenDir, name), []byte(content), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	entries, err := os.ReadDir(goldenDir)
	if err != nil {
		t.Fatalf("read %s (run with -update to generate): %v", goldenDir, err)
	}
	var inputs []string
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".golden") {
			inputs = append(inputs, e.Name())
		}
	}
	sort.Strings(inputs)
	if len(inputs) != len(goldenInputs()) {
		t.Fatalf("found %d committed inputs, want %d", len(inputs), len(goldenInputs()))
	}

	plan := DefaultPlan()
	for _, name := range inputs {
		t.Run(name, func(t *testing.T) {
			b, ok := plan.Find(name)
			if !ok {
				t.Fatalf("no binding for committed input %s", name)
			}
			workDir := t.TempDir()
			fr, err := TransformFile(filepath.Join(goldenDir, name), b, workDir)
			if err != nil {
				t.Fatal(err)
			}
			conv, err := xmlcsv.ConvertFile(fr.MXMLPath, workDir)
			if err != nil {
				t.Fatal(err)
			}
			got := renderConverted(t, conv)
			goldenPath := filepath.Join(goldenDir, name+".golden")
			if *updateGolden {
				if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("read golden (run with -update to generate): %v", err)
			}
			if got != string(want) {
				t.Errorf("%s drifted from its golden output.\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
			}
		})
	}
}
