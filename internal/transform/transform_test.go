package transform

import (
	"path/filepath"
	"testing"
	"time"

	"github.com/gt-elba/milliscope/internal/des"
	"github.com/gt-elba/milliscope/internal/eventmon"
	"github.com/gt-elba/milliscope/internal/mscopedb"
	"github.com/gt-elba/milliscope/internal/ntier"
	"github.com/gt-elba/milliscope/internal/resmon"
)

func TestDefaultPlanFinds(t *testing.T) {
	plan := DefaultPlan()
	cases := map[string]string{
		"apache_access.log":  "token",
		"tomcat_mscope.log":  "token",
		"cjdbc_ctrl.log":     "token",
		"mysql_slow.log":     "mysql-slow",
		"apache_sar.log":     "sar",
		"tomcat_sar.xml":     "sar-xml",
		"mysql_iostat.log":   "iostat",
		"mysql_collectl.log": "collectl",
		"mysql_collectl.csv": "collectl-csv",
		"tomcat_pidstat.log": "pidstat",
	}
	for file, parser := range cases {
		b, ok := plan.Find(file)
		if !ok {
			t.Fatalf("no binding for %s", file)
		}
		if b.Parser != parser {
			t.Fatalf("%s bound to %s, want %s", file, b.Parser, parser)
		}
	}
	if _, ok := plan.Find("trace.csv"); ok {
		t.Fatal("network trace matched a binding")
	}
}

func TestHostDerivation(t *testing.T) {
	if h := hostOf("/logs/mysql_collectl.csv", Binding{}); h != "mysql" {
		t.Fatalf("host %q", h)
	}
	if h := hostOf("/logs/standalone.log", Binding{}); h != "standalone" {
		t.Fatalf("host %q", h)
	}
	if h := hostOf("/logs/x_y.log", Binding{Host: "fixed"}); h != "fixed" {
		t.Fatalf("host %q", h)
	}
}

func TestPlanSaveLoad(t *testing.T) {
	plan := DefaultPlan()
	path := filepath.Join(t.TempDir(), "plan.json")
	if err := plan.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadPlan(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Bindings) != len(plan.Bindings) {
		t.Fatalf("loaded %d bindings, want %d", len(loaded.Bindings), len(plan.Bindings))
	}
	// Regexes and consts survive the round trip.
	b, ok := loaded.Find("apache_access.log")
	if !ok || b.Instructions.Pattern == "" {
		t.Fatal("apache pattern lost in round trip")
	}
	c, ok := loaded.Find("x_collectl.log")
	if !ok || c.Instructions.Const["date"] == "" {
		t.Fatal("collectl date const lost in round trip")
	}
}

func TestLoadPlanErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := LoadPlan(filepath.Join(dir, "nope.json")); err == nil {
		t.Fatal("missing plan accepted")
	}
}

// TestIngestDirEndToEnd is the pipeline's flagship test: simulate an
// instrumented trial, then push every produced log through declaration →
// parse → convert → load, and verify warehouse contents against simulator
// ground truth.
func TestIngestDirEndToEnd(t *testing.T) {
	cfg := ntier.DefaultConfig()
	cfg.Users = 40
	cfg.Duration = time.Second
	cfg.ThinkTime = 250 * time.Millisecond
	cfg.Seed = 9
	sys := ntier.New(cfg)
	logDir := t.TempDir()
	ev, err := eventmon.Attach(sys, logDir)
	if err != nil {
		t.Fatal(err)
	}
	rm, err := resmon.Start(sys, logDir, resmon.Config{
		Interval: 100 * time.Millisecond,
		Kinds:    resmon.AllKinds(),
	}, des.Time(cfg.Duration))
	if err != nil {
		t.Fatal(err)
	}
	ntier.Run(sys)
	if err := ev.Close(); err != nil {
		t.Fatal(err)
	}
	if err := rm.Close(); err != nil {
		t.Fatal(err)
	}

	db := mscopedb.Open()
	rep, err := IngestDir(db, logDir, t.TempDir(), DefaultPlan())
	if err != nil {
		t.Fatal(err)
	}
	// 4 event logs + 6 resource logs per node * 4 nodes = 28 files.
	if len(rep.Files) != 28 {
		t.Fatalf("transformed %d files, want 28", len(rep.Files))
	}
	if len(rep.Skipped) != 0 {
		t.Fatalf("skipped %v", rep.Skipped)
	}
	if rep.TotalRows() == 0 {
		t.Fatal("no rows loaded")
	}

	// Event tables match simulator visit counts exactly.
	for _, srv := range sys.Servers() {
		tbl, err := db.Table(srv.Name() + "_event")
		if err != nil {
			t.Fatalf("event table for %s: %v", srv.Name(), err)
		}
		if uint64(tbl.Rows()) != srv.Visits() {
			t.Fatalf("%s_event has %d rows, server saw %d visits",
				srv.Name(), tbl.Rows(), srv.Visits())
		}
		// The boundary timestamp columns must exist and be ints (µs).
		for _, col := range []string{"ua", "ud"} {
			ci := tbl.ColIndex(col)
			if ci < 0 {
				t.Fatalf("%s_event lacks column %s", srv.Name(), col)
			}
			if tbl.Columns()[ci].Type != mscopedb.TInt {
				t.Fatalf("%s_event.%s is %v, want int", srv.Name(), col, tbl.Columns()[ci].Type)
			}
		}
	}

	// Resource tables have time-typed ts columns.
	for _, name := range []string{"mysql_collectlcsv", "apache_sar", "tomcat_sarxml", "mysql_iostat", "cjdbc_collectl", "tomcat_pidstat"} {
		tbl, err := db.Table(name)
		if err != nil {
			t.Fatalf("resource table %s: %v", name, err)
		}
		if tbl.Rows() < 5 {
			t.Fatalf("%s has %d rows", name, tbl.Rows())
		}
		ci := tbl.ColIndex("ts")
		if ci < 0 || tbl.Columns()[ci].Type != mscopedb.TTime {
			t.Fatalf("%s lacks a time ts column", name)
		}
	}

	// Cross-check: a request ID found in apache_event also appears in
	// tomcat_event and cjdbc_event (ID propagation through the pipeline).
	apacheT, err := db.Table("apache_event")
	if err != nil {
		t.Fatal(err)
	}
	res, err := apacheT.Select().Limit(1).Rows()
	if err != nil || res.Len() != 1 {
		t.Fatalf("sample row: %v", err)
	}
	ids, err := res.Strings("reqid")
	if err != nil {
		t.Fatal(err)
	}
	id := ids[0]
	for _, name := range []string{"tomcat_event", "cjdbc_event"} {
		tbl, err := db.Table(name)
		if err != nil {
			t.Fatal(err)
		}
		r, err := tbl.Select().Where("reqid", mscopedb.OpEq, id).Rows()
		if err != nil {
			t.Fatal(err)
		}
		if r.Len() == 0 {
			t.Fatalf("request %s absent from %s", id, name)
		}
	}
}

func TestIngestDirMissingDir(t *testing.T) {
	db := mscopedb.Open()
	if _, err := IngestDir(db, filepath.Join(t.TempDir(), "nope"), t.TempDir(), DefaultPlan()); err == nil {
		t.Fatal("missing log dir accepted")
	}
}
