package transform

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/gt-elba/milliscope/internal/faults"
	"github.com/gt-elba/milliscope/internal/mscopedb"
)

// apacheLog builds n well-formed access-log lines.
func apacheLog(n int) string {
	var b strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "10.1.1.32 - - [01/Apr/2017:00:00:00.%03d +0000] \"GET /rubbos/Browse?ID=req-%07d HTTP/1.1\" 200 4096 D=900 UA=%d UD=%d DS=- DR=-\n",
			i%1000, i, 1491004800000000+int64(i)*1000, 1491004800000900+int64(i)*1000)
	}
	return b.String()
}

// TestQuarantineIngestExactCounts is the acceptance-criteria contract:
// corrupt a clean log with a known number of garbage lines, ingest under
// Quarantine, and the report must account for every injected fault.
func TestQuarantineIngestExactCounts(t *testing.T) {
	src := writeLogDir(t, map[string]string{"apache_access.log": apacheLog(400)})
	dst := t.TempDir()
	frep, err := faults.Corrupt(src, dst, faults.Config{
		Seed: 99, Rate: 0.01, Kinds: []faults.Kind{faults.KindGarbage}})
	if err != nil {
		t.Fatal(err)
	}
	injected := frep.Total(faults.KindGarbage)
	if injected == 0 {
		t.Fatal("corruptor injected nothing; raise the rate")
	}

	db := mscopedb.Open()
	rep, err := IngestDirWithOptions(db, dst, t.TempDir(), DefaultPlan(),
		Options{Policy: Quarantine})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Failed) != 0 {
		t.Fatalf("files rejected at 1%% garbage: %+v", rep.Failed)
	}
	if got := rep.TotalQuarantined(); got != injected {
		t.Errorf("quarantined %d regions, corruptor injected %d", got, injected)
	}
	if len(rep.Files) != 1 || rep.Files[0].Entries != 400 {
		t.Errorf("surviving entries: %+v", rep.Files)
	}
}

// TestQuarantineSinkContents: diverted lines land in the per-file sink
// with file:line locations and the raw text.
func TestQuarantineSinkContents(t *testing.T) {
	dir := writeLogDir(t, map[string]string{
		"apache_access.log": goodApacheLine + "\nGARBAGE LINE\n" + goodApacheLine + "\n",
	})
	work := t.TempDir()
	db := mscopedb.Open()
	rep, err := IngestDirWithOptions(db, dir, work, DefaultPlan(),
		Options{Policy: Quarantine, ErrorBudget: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Files) != 1 || rep.Files[0].Quarantined != 1 {
		t.Fatalf("files: %+v", rep.Files)
	}
	qp := rep.Files[0].QuarantinePath
	if qp == "" {
		t.Fatal("no quarantine path recorded")
	}
	data, err := os.ReadFile(qp)
	if err != nil {
		t.Fatal(err)
	}
	text := string(data)
	if !strings.Contains(text, "apache_access.log:2:") {
		t.Errorf("sink lacks file:line location:\n%s", text)
	}
	if !strings.Contains(text, "GARBAGE LINE") {
		t.Errorf("sink lacks raw diverted text:\n%s", text)
	}
	if filepath.Dir(qp) != filepath.Join(work, "quarantine") {
		t.Errorf("sink %s not under default quarantine dir", qp)
	}
}

// TestQuarantineErrorBudgetRejectsFile: a file past the budget lands in
// Failed; the rest of the directory still ingests.
func TestQuarantineErrorBudgetRejectsFile(t *testing.T) {
	dir := writeLogDir(t, map[string]string{
		// 1 good line, 1 garbage → ratio 0.5, far past the default budget.
		"apache_access.log": goodApacheLine + "\nGARBAGE\n",
		"tomcat_mscope.log": "2017-04-01 00:00:00.010 [exec-1] INFO  mScope - id=req-0000000001 uri=/rubbos/ViewStory ua=1491004812345900 ud=1491004812347000 ds=- dr=-\n",
	})
	db := mscopedb.Open()
	rep, err := IngestDirWithOptions(db, dir, t.TempDir(), DefaultPlan(),
		Options{Policy: Quarantine})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Failed) != 1 {
		t.Fatalf("failed: %+v", rep.Failed)
	}
	if !errors.Is(rep.Failed[0].Err, ErrFileRejected) {
		t.Errorf("rejection does not wrap ErrFileRejected: %v", rep.Failed[0].Err)
	}
	if !strings.Contains(rep.Failed[0].Err.Error(), "error budget") {
		t.Errorf("rejection lacks budget cause: %v", rep.Failed[0].Err)
	}
	// Tomcat still made it into the warehouse.
	if len(rep.Loads) != 1 || rep.Loads[0].Table != "tomcat_event" {
		t.Errorf("loads: %+v", rep.Loads)
	}
	if _, err := db.Table("apache_event"); err == nil {
		t.Error("rejected file's table was created anyway")
	}
}

// TestQuarantineEmptyFileRejected: a file where nothing survives is
// rejected per-file, not fatal to the ingest.
func TestQuarantineEmptyFileRejected(t *testing.T) {
	dir := writeLogDir(t, map[string]string{"apache_access.log": ""})
	db := mscopedb.Open()
	rep, err := IngestDirWithOptions(db, dir, t.TempDir(), DefaultPlan(),
		Options{Policy: Quarantine})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Failed) != 1 || !errors.Is(rep.Failed[0].Err, ErrFileRejected) {
		t.Fatalf("failed: %+v", rep.Failed)
	}
}

// TestFailFastUnchangedByOptions: the zero Options value must reproduce
// historical IngestDir semantics exactly.
func TestFailFastUnchangedByOptions(t *testing.T) {
	dir := writeLogDir(t, map[string]string{
		"apache_access.log": goodApacheLine + "\nGARBAGE LINE\n",
	})
	db := mscopedb.Open()
	_, err := IngestDirWithOptions(db, dir, t.TempDir(), DefaultPlan(), Options{})
	if err == nil {
		t.Fatal("fail-fast accepted a corrupt line")
	}
	if !strings.Contains(err.Error(), "line 2") || !strings.Contains(err.Error(), "apache_access.log") {
		t.Fatalf("fail-fast error shape changed: %v", err)
	}
}

// TestReportSortedDeterministically covers the satellite: report slices
// are explicitly ordered however the ingest interleaved them.
func TestReportSortedDeterministically(t *testing.T) {
	rep := Report{
		Files:   []FileResult{{Input: "b"}, {Input: "a"}},
		Skipped: []string{"z.txt", "a.txt"},
		Failed:  []FileFailure{{Input: "y"}, {Input: "x"}},
	}
	rep.sortDeterministic()
	if rep.Files[0].Input != "a" || rep.Skipped[0] != "a.txt" || rep.Failed[0].Input != "x" {
		t.Errorf("report not sorted: %+v", rep)
	}
}

func TestParsePolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Policy
		ok   bool
	}{
		{"", FailFast, true},
		{"fail-fast", FailFast, true},
		{"quarantine", Quarantine, true},
		{"lenient", FailFast, false},
	} {
		got, err := ParsePolicy(tc.in)
		if (err == nil) != tc.ok || got != tc.want {
			t.Errorf("ParsePolicy(%q) = %v, %v", tc.in, got, err)
		}
	}
}
