package transform

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/gt-elba/milliscope/internal/mscopedb"
	"github.com/gt-elba/milliscope/internal/parsers"
)

// writeLogDir materializes a log directory from name→content.
func writeLogDir(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, content := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

const goodApacheLine = `10.1.0.1 - - [01/Apr/2017:00:00:12.345 +0000] "GET /rubbos/ViewStory?ID=req-0000000001 HTTP/1.1" 200 100 D=2123 UA=1491004812345678 UD=1491004812347801 DS=1491004812346000 DR=1491004812347500`

// TestIngestCorruptLineFailsWithLocation: a corrupt line mid-file must
// fail the ingest with the file and line number in the error — silent
// record dropping would corrupt every downstream queue count.
func TestIngestCorruptLineFailsWithLocation(t *testing.T) {
	dir := writeLogDir(t, map[string]string{
		"apache_access.log": goodApacheLine + "\nGARBAGE LINE\n" + goodApacheLine + "\n",
	})
	db := mscopedb.Open()
	_, err := IngestDir(db, dir, t.TempDir(), DefaultPlan())
	if err == nil {
		t.Fatal("corrupt line ingested silently")
	}
	if !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("error lacks line number: %v", err)
	}
	if !strings.Contains(err.Error(), "apache_access.log") {
		t.Fatalf("error lacks file name: %v", err)
	}
}

// TestIngestTruncatedMySQLRecord: a slow-log record cut mid-group fails
// loudly.
func TestIngestTruncatedMySQLRecord(t *testing.T) {
	content := "/usr/sbin/mysqld, Version: 5.5.49-log\nTcp port: 3306\nTime Id Command Argument\n" +
		"# Time: 2017-04-01T00:00:12.345678Z\n" +
		"# User@Host: rubbos[rubbos] @ cjdbc [10.0.0.23]  Id:    45\n"
	dir := writeLogDir(t, map[string]string{"mysql_slow.log": content})
	db := mscopedb.Open()
	_, err := IngestDir(db, dir, t.TempDir(), DefaultPlan())
	if err == nil {
		t.Fatal("truncated record ingested silently")
	}
	if !strings.Contains(err.Error(), "truncated") {
		t.Fatalf("error does not mention truncation: %v", err)
	}
}

// TestIngestUnknownFilesSkippedNotFailed: artifacts outside the
// declaration (network traces, notes) are reported, not fatal.
func TestIngestUnknownFilesSkipped(t *testing.T) {
	dir := writeLogDir(t, map[string]string{
		"apache_access.log": goodApacheLine + "\n",
		"trace.csv":         "conn,src,dst\n",
		"NOTES.txt":         "operator notes\n",
	})
	db := mscopedb.Open()
	rep, err := IngestDir(db, dir, t.TempDir(), DefaultPlan())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Skipped) != 2 {
		t.Fatalf("skipped %v", rep.Skipped)
	}
	if len(rep.Files) != 1 {
		t.Fatalf("transformed %d files", len(rep.Files))
	}
}

// TestIngestEmptyLogFileFails: an empty log means a monitor died; the
// converter refuses documents with no fields.
func TestIngestEmptyLogFileFails(t *testing.T) {
	dir := writeLogDir(t, map[string]string{"apache_access.log": ""})
	db := mscopedb.Open()
	if _, err := IngestDir(db, dir, t.TempDir(), DefaultPlan()); err == nil {
		t.Fatal("empty log ingested silently")
	}
}

// TestIngestDuplicateTableCollision: two files mapping to the same table
// (e.g. a copied log) must fail on the second create, not overwrite.
func TestIngestDuplicateTableCollision(t *testing.T) {
	// Both names match *_access.log and share the host prefix "apache".
	dir := writeLogDir(t, map[string]string{
		"apache_access.log": goodApacheLine + "\n",
	})
	// Second directory entry with same host and suffix → same table name.
	if err := os.WriteFile(filepath.Join(dir, "apache_old_access.log"),
		[]byte(goodApacheLine+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	db := mscopedb.Open()
	_, err := IngestDir(db, dir, t.TempDir(), DefaultPlan())
	if err == nil {
		t.Fatal("table collision ingested silently")
	}
	if !strings.Contains(err.Error(), "already exists") {
		t.Fatalf("collision error: %v", err)
	}
}

// TestTransformFileBadParserName surfaces registry misconfiguration.
func TestTransformFileBadParserName(t *testing.T) {
	dir := writeLogDir(t, map[string]string{"x.log": "data\n"})
	_, err := TransformFile(filepath.Join(dir, "x.log"),
		Binding{Glob: "*", Parser: "nope", TableSuffix: "t"}, t.TempDir())
	if err == nil {
		t.Fatal("unknown parser accepted")
	}
}

// TestCustomPlanBinding: a user-supplied declaration routes an unusual
// file name to the right parser.
func TestCustomPlanBinding(t *testing.T) {
	dir := writeLogDir(t, map[string]string{
		"weird-name.txt": "alpha 1\nbeta 2\n",
	})
	plan := &Plan{Bindings: []Binding{{
		Glob: "weird-*.txt", Parser: "token",
		Instructions: instrWith(`^(?P<name>\w+) (?P<n>\d+)$`),
		Source:       "custom", TableSuffix: "custom", Host: "node9",
	}}}
	db := mscopedb.Open()
	rep, err := IngestDir(db, dir, t.TempDir(), plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Loads) != 1 || rep.Loads[0].Table != "node9_custom" {
		t.Fatalf("loads %+v", rep.Loads)
	}
	tbl, err := db.Table("node9_custom")
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Rows() != 2 {
		t.Fatalf("rows %d", tbl.Rows())
	}
}

// instrWith builds token instructions with the given pattern.
func instrWith(pattern string) parsers.Instructions {
	return parsers.Instructions{Pattern: pattern}
}
