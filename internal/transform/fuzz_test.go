package transform

import (
	"fmt"
	"reflect"
	"testing"

	"github.com/gt-elba/milliscope/internal/parsers"
)

// FuzzShardedParseEquivalence is the shard planner's property test:
// for an ARBITRARY byte stream split at an ARBITRARY chunk size, the
// sharded stitched parse must reproduce the serial parse exactly — no
// record torn at a cut, no line dropped or duplicated, no header row
// double-counted, same malformed regions in degraded mode, and the same
// first error in fail-fast mode. It extends the PR 1 parser fuzz targets
// one layer up: those prove the parsers never crash; this proves the
// parallel engine cannot change what they produce.
func FuzzShardedParseEquivalence(f *testing.F) {
	f.Add(uint8(0), apacheCorpus(40, 0), uint16(256))
	f.Add(uint8(0), apacheCorpus(40, 7), uint16(1))
	f.Add(uint8(1), mysqlCorpus(25, 0), uint16(100))
	f.Add(uint8(1), mysqlCorpus(25, 4), uint16(37))
	f.Add(uint8(1), []byte("# Time: not-a-time\n# Time: also-bad\nfree text\n"), uint16(3))
	f.Add(uint8(0), []byte("no newline at all"), uint16(2))
	f.Add(uint8(1), []byte(""), uint16(5))

	f.Fuzz(func(t *testing.T, format uint8, data []byte, rawChunk uint16) {
		chunkSize := int(rawChunk)%4096 + 1
		var p parsers.Parser
		var instr parsers.Instructions
		if format%2 == 0 {
			p, _ = parsers.Get("token")
			instr = parsers.ApacheInstructions()
		} else {
			p, _ = parsers.Get("mysql-slow")
			instr = parsers.Instructions{Const: map[string]string{"host": "mysql"}}
		}
		cp := p.(parsers.ChunkParser)
		for _, degraded := range []bool{false, true} {
			wantE, wantR, wantErr := serialParse(p, data, instr, degraded)
			gotE, gotR, gotErr := shardedParse(t, cp, data, instr, degraded, chunkSize)
			if (wantErr == nil) != (gotErr == nil) || (wantErr != nil && wantErr.Error() != gotErr.Error()) {
				t.Fatalf("degraded=%v chunk=%d: sharded err %v, serial err %v", degraded, chunkSize, gotErr, wantErr)
			}
			if wantErr != nil {
				continue
			}
			if !reflect.DeepEqual(gotE, wantE) {
				t.Fatalf("degraded=%v chunk=%d: entries diverge (sharded %d, serial %d)",
					degraded, chunkSize, len(gotE), len(wantE))
			}
			if fmt.Sprintf("%v", projectRegions(gotR)) != fmt.Sprintf("%v", projectRegions(wantR)) {
				t.Fatalf("degraded=%v chunk=%d: malformed regions diverge", degraded, chunkSize)
			}
		}
	})
}
