package transform

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"github.com/gt-elba/milliscope/internal/importer"
	"github.com/gt-elba/milliscope/internal/mscopedb"
	"github.com/gt-elba/milliscope/internal/mxml"
	"github.com/gt-elba/milliscope/internal/parsers"
	"github.com/gt-elba/milliscope/internal/selfobs"
	"github.com/gt-elba/milliscope/internal/simtime"
	"github.com/gt-elba/milliscope/internal/xmlcsv"
)

// semaphore bounds the number of concurrently executing work units (file
// pipelines and shard parses share one pool) to Options.Workers.
type semaphore struct{ ch chan struct{} }

func newSemaphore(n int) *semaphore { return &semaphore{ch: make(chan struct{}, n)} }

func (s *semaphore) acquire() { s.ch <- struct{}{} }
func (s *semaphore) release() { <-s.ch }

// acquireCtx acquires a slot unless the ingest has been aborted.
func (s *semaphore) acquireCtx(ctx context.Context) bool {
	select {
	case s.ch <- struct{}{}:
		return true
	case <-ctx.Done():
		return false
	}
}

// fileAction is the planning decision for one directory entry.
type fileAction int

const (
	actSkip      fileAction = iota // no binding in the plan
	actUnchanged                   // ledger offset equals current size
	actProcess                     // parse, convert, build, install
)

// fileJob carries one directory entry through the parallel ingest: the
// planning decision, the worker's output channel, and everything the
// sequencer needs to replay serial side effects in sorted-name order.
type fileJob struct {
	name    string
	full    string
	binding Binding
	size    int64
	action  fileAction
	// rebuild names the table to drop before install when the ledger shows
	// the source changed since it was loaded.
	rebuild string
	// preErr is a planning-stage failure (stat); the sequencer surfaces it
	// when — and only when — serial execution would have reached this file.
	preErr error
	out    chan fileOutcome
}

// fileOutcome is everything a worker produced for one file.
type fileOutcome struct {
	fr      FileResult
	tbl     *mscopedb.Table
	csvPath string
	err     error
}

// ingestDirParallel is IngestDirWithOptions' engine when Options.Workers
// exceeds one. Work is sharded per source file and — for chunkable
// formats — per byte range within a file; all heavy stages (read, parse,
// annotated-XML write, CSV conversion, table build) run on a worker pool,
// while a single sequenced appender walks files in sorted-name order and
// replays every warehouse side effect (drop-for-rebuild, table install,
// both ledger rows, report entries, policy decisions) exactly as the
// serial loop in IngestDirWithOptions would. The differential conformance
// suite asserts the equivalence: byte-identical warehouse dumps, identical
// reports, identical quarantine sinks, identical first error under
// FailFast.
func ingestDirParallel(db *mscopedb.DB, logDir, workDir string, plan *Plan, opts Options) (Report, error) {
	var rep Report
	entries, err := os.ReadDir(logDir)
	if err != nil {
		return rep, fmt.Errorf("transform: read log dir: %w", err)
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names) // deterministic ingest order

	// Plan every file before spawning workers. Ledger reads are safe to
	// hoist: this ingest's own ledger writes are keyed by source path, and
	// each path occurs once per directory scan.
	jobs := make([]*fileJob, 0, len(names))
	for _, name := range names {
		full := filepath.Join(logDir, name)
		b, ok := plan.Find(name)
		if !ok {
			jobs = append(jobs, &fileJob{name: name, action: actSkip})
			continue
		}
		j := &fileJob{name: name, full: full, binding: b, action: actProcess,
			out: make(chan fileOutcome, 1)}
		info, err := os.Stat(full)
		if err != nil {
			j.preErr = fmt.Errorf("transform: stat %s: %w", full, err)
			jobs = append(jobs, j)
			continue
		}
		j.size = info.Size()
		if off, known := db.LatestIngestOffset(full); known {
			if off == j.size {
				j.action = actUnchanged
			} else {
				j.rebuild = hostOf(full, b) + "_" + b.TableSuffix
			}
		}
		jobs = append(jobs, j)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sem := newSemaphore(opts.Workers)
	for _, j := range jobs {
		if j.action != actProcess || j.preErr != nil {
			continue
		}
		go func(j *fileJob) { j.out <- processFile(ctx, sem, j, workDir, opts) }(j)
	}

	// The sequenced appender: the only goroutine that touches db or rep.
	obs := selfobs.NewBuf()
	defer obs.Close()
	for _, j := range jobs {
		switch {
		case j.action == actSkip:
			rep.Skipped = append(rep.Skipped, j.name)
			continue
		case j.preErr != nil:
			return rep, j.preErr
		case j.action == actUnchanged:
			rep.Unchanged = append(rep.Unchanged, j.name)
			continue
		}
		o := <-j.out
		if j.rebuild != "" && db.HasTable(j.rebuild) {
			// Serial drops before transforming, so the table stays dropped
			// even when the transform then fails or rejects the file.
			if err := db.Drop(j.rebuild); err != nil {
				return rep, fmt.Errorf("transform: rebuild %s: %w", j.rebuild, err)
			}
		}
		if o.err != nil {
			if opts.Policy == Quarantine && errors.Is(o.err, ErrFileRejected) {
				rep.Failed = append(rep.Failed, FileFailure{Input: j.full, Err: o.err})
				continue
			}
			return rep, o.err
		}
		rep.Files = append(rep.Files, o.fr)
		sp := obs.Begin(selfobs.PipeIngest, "append", "seq", j.name)
		loaded, err := importer.Install(db, o.tbl, o.csvPath)
		if err != nil {
			return rep, err
		}
		if err := db.RecordIngestAt(loaded.Table, j.full, loaded.Rows, j.size, simtime.Epoch); err != nil {
			return rep, err
		}
		// Commit the spill store (no-op in memory): table rows and their
		// ledger entry become durable together, per file, so a killed
		// ingest resumes from completed files instead of from scratch.
		if err := db.Checkpoint(); err != nil {
			return rep, err
		}
		sp.End(int64(loaded.Rows), 0)
		rep.Loads = append(rep.Loads, loaded)
	}
	rep.sortDeterministic()
	return rep, nil
}

// processFile runs every non-sequenced stage for one file on the worker
// pool: parse (sharded when the format allows), annotated-XML write, CSV
// conversion, and standalone table build. It performs no warehouse writes
// and produces byte-identical artifacts and errors to the serial per-file
// path.
func processFile(ctx context.Context, sem *semaphore, j *fileJob, workDir string, opts Options) fileOutcome {
	b := j.binding
	// One span buffer per file worker: every stage span of this file is
	// appended goroutine-locally and flushed once when the worker returns.
	obs := selfobs.NewBuf()
	defer obs.Close()
	p, err := parsers.Get(b.Parser)
	if err != nil {
		return fileOutcome{err: err}
	}
	chunkSize := opts.ChunkSize
	if chunkSize <= 0 {
		chunkSize = DefaultChunkSize
	}
	cp, chunkable := p.(parsers.ChunkParser)
	var bnd parsers.Boundary
	if chunkable {
		bnd, chunkable = cp.Chunkable(b.Instructions)
	}
	if !chunkable || j.size < int64(2*chunkSize) {
		// Whole-file path: custom parsers and small files reuse the serial
		// per-file functions verbatim, one worker slot per file.
		if !sem.acquireCtx(ctx) {
			return fileOutcome{err: ctx.Err()}
		}
		defer sem.release()
		var fr FileResult
		var err error
		if opts.Materialize {
			sp := obs.Begin(selfobs.PipeIngest, "parse", "whole", j.name)
			if opts.Policy == Quarantine {
				fr, err = transformFileDegraded(j.full, b, workDir, opts)
			} else {
				fr, err = TransformFile(j.full, b, workDir)
			}
			if err != nil {
				return fileOutcome{err: err}
			}
			sp.End(int64(fr.Entries), int64(fr.Quarantined))
			return finishFile(fr, workDir, obs, j.name)
		}
		sp := obs.Begin(selfobs.PipeIngest, "parse", "whole", j.name)
		set := newEntrySet()
		fr, err = directParse(j.full, b, workDir, opts, set)
		if err != nil {
			return fileOutcome{err: err}
		}
		sp.End(int64(fr.Entries), int64(fr.Quarantined))
		return finishDirect(fr, set, workDir, obs, j.name)
	}
	return processChunked(ctx, sem, j, cp, bnd, chunkSize, workDir, opts, obs)
}

// processChunked is the sharded parse path: split the file on record
// boundaries, parse shards concurrently, stitch the results into serial
// order, then run the same bookkeeping the serial transform performs.
func processChunked(ctx context.Context, sem *semaphore, j *fileJob, cp parsers.ChunkParser, bnd parsers.Boundary, chunkSize int, workDir string, opts Options, obs *selfobs.Buf) fileOutcome {
	b := j.binding
	if err := os.MkdirAll(workDir, 0o755); err != nil {
		return fileOutcome{err: fmt.Errorf("transform: create work dir: %w", err)}
	}
	host := hostOf(j.full, b)
	table := host + "_" + b.TableSuffix
	sp := obs.Begin(selfobs.PipeIngest, "read", "whole", j.name)
	data, err := os.ReadFile(j.full)
	if err != nil {
		return fileOutcome{err: fmt.Errorf("transform: open %s: %w", j.full, err)}
	}
	sp.End(int64(len(data)), 0)
	degraded := opts.Policy == Quarantine
	sp = obs.Begin(selfobs.PipeIngest, "shardplan", "whole", j.name)
	shards := planShards(data, bnd, chunkSize)
	sp.End(int64(len(shards)), 0)
	entries, regions, parseErr := parseSharded(ctx, sem, cp, shards, b.Instructions, degraded, obs, j.name)

	if !sem.acquireCtx(ctx) {
		return fileOutcome{err: ctx.Err()}
	}
	defer sem.release()

	var fr FileResult
	fr = FileResult{Input: j.full, Parser: b.Parser, Table: table}
	if degraded {
		// Replay the stitched malformed regions — already in serial order —
		// through the same sink the serial degraded transform writes, so
		// sink bytes and counts match exactly.
		sink := &quarantineSink{dir: opts.quarantineDir(workDir), base: filepath.Base(j.full)}
		for _, m := range regions {
			if parseErr != nil {
				break
			}
			if serr := sink.record(m); serr != nil {
				parseErr = serr
			}
		}
		if cerr := sink.close(); cerr != nil && parseErr == nil {
			parseErr = cerr
		}
		fr.Quarantined = sink.count()
		fr.QuarantinePath = sink.path()
	}
	if parseErr != nil {
		return fileOutcome{err: fmt.Errorf("transform: %s: %w", j.full, parseErr)}
	}

	if !opts.Materialize {
		// Direct path: the stitched entries feed inference and the table
		// build in memory; no annotated-XML artifact is written.
		fr.Entries = len(entries)
		if degraded {
			if err := opts.checkBudget(fr, j.full); err != nil {
				return fileOutcome{fr: fr, err: err}
			}
		}
		set := newEntrySet()
		nf := 0
		for _, e := range entries {
			nf += len(e.Fields)
		}
		set.reserve(len(entries), nf)
		for _, e := range entries {
			if err := set.add(e); err != nil {
				return fileOutcome{err: err}
			}
		}
		return finishDirect(fr, set, workDir, obs, j.name)
	}

	sp = obs.Begin(selfobs.PipeIngest, "mxmlwrite", "whole", j.name)
	mxmlPath := filepath.Join(workDir, table+".mxml")
	outF, err := os.Create(mxmlPath)
	if err != nil {
		return fileOutcome{err: fmt.Errorf("transform: create %s: %w", mxmlPath, err)}
	}
	defer outF.Close()
	w := mxml.NewWriter(outF)
	if err := w.Open(mxml.Meta{Source: b.Source, Host: host, Table: table}); err != nil {
		return fileOutcome{err: err}
	}
	for _, e := range entries {
		if err := w.WriteEntry(e); err != nil {
			return fileOutcome{err: err}
		}
	}
	if err := w.Close(); err != nil {
		return fileOutcome{err: err}
	}
	fr.MXMLPath = mxmlPath
	fr.Entries = w.Entries()
	sp.End(int64(fr.Entries), 0)
	if degraded {
		if err := opts.checkBudget(fr, j.full); err != nil {
			return fileOutcome{fr: fr, err: err}
		}
	}
	return finishFile(fr, workDir, obs, j.name)
}

// finishFile runs the conversion and table-build stages shared by both
// worker paths.
func finishFile(fr FileResult, workDir string, obs *selfobs.Buf, name string) fileOutcome {
	sp := obs.Begin(selfobs.PipeIngest, "convert", "whole", name)
	conv, err := xmlcsv.ConvertFile(fr.MXMLPath, workDir)
	if err != nil {
		return fileOutcome{err: err}
	}
	sp.End(int64(fr.Entries), 0)
	sp = obs.Begin(selfobs.PipeIngest, "build", "whole", name)
	tbl, err := importer.BuildTable(conv.CSVPath, conv.SchemaPath)
	if err != nil {
		return fileOutcome{err: err}
	}
	sp.End(int64(tbl.Rows()), 0)
	return fileOutcome{fr: fr, tbl: tbl, csvPath: conv.CSVPath}
}

// finishDirect is finishFile's direct-path counterpart: finalize schema
// inference and build the table straight from the in-memory entry set.
func finishDirect(fr FileResult, set *entrySet, workDir string, obs *selfobs.Buf, name string) fileOutcome {
	sp := obs.Begin(selfobs.PipeIngest, "convert", "whole", name)
	cols, err := set.columns(filepath.Join(workDir, fr.Table+".mxml"))
	if err != nil {
		return fileOutcome{err: err}
	}
	sp.End(int64(fr.Entries), 0)
	sp = obs.Begin(selfobs.PipeIngest, "build", "whole", name)
	csvPath := filepath.Join(workDir, fr.Table+".csv")
	tbl, err := set.buildTable(fr.Table, cols, csvPath)
	if err != nil {
		return fileOutcome{err: err}
	}
	sp.End(int64(tbl.Rows()), 0)
	return fileOutcome{fr: fr, tbl: tbl, csvPath: csvPath}
}
