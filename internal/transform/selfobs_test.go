package transform

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"github.com/gt-elba/milliscope/internal/mscopedb"
	"github.com/gt-elba/milliscope/internal/mxml"
	"github.com/gt-elba/milliscope/internal/parsers"
	"github.com/gt-elba/milliscope/internal/selfobs"
)

// TestInstrumentedIngestMatchesDisabled extends the differential
// conformance suite with the self-observability axis: a parallel ingest
// with span instrumentation ENABLED must produce a warehouse
// byte-identical to the uninstrumented serial ingest. Telemetry observes
// the pipeline; it must never perturb it.
func TestInstrumentedIngestMatchesDisabled(t *testing.T) {
	for _, tc := range []struct {
		name    string
		corrupt bool
		opts    Options
	}{
		{"clean-failfast", false, Options{}},
		{"corrupt-quarantine", true, Options{Policy: Quarantine, ErrorBudget: 0.5}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			logDir := writeSyntheticDir(t, tc.corrupt)
			workDir := t.TempDir()

			selfobs.Disable()
			optsS := tc.opts
			optsS.Workers = 1
			optsS.QuarantineDir = t.TempDir()
			dbS := mscopedb.Open()
			repS, errS := IngestDirWithOptions(dbS, logDir, workDir, DefaultPlan(), optsS)

			c := selfobs.Enable("diff", time.Unix(0, 0).UTC())
			defer selfobs.Disable()
			optsP := tc.opts
			optsP.Workers = 4
			optsP.ChunkSize = 2 << 10
			optsP.QuarantineDir = t.TempDir()
			dbP := mscopedb.Open()
			repP, errP := IngestDirWithOptions(dbP, logDir, workDir, DefaultPlan(), optsP)
			selfobs.Disable()

			if (errS == nil) != (errP == nil) || (errS != nil && errS.Error() != errP.Error()) {
				t.Fatalf("ingest errors differ:\ndisabled serial      %v\ninstrumented parallel %v", errS, errP)
			}
			reportsEqual(t, repS, repP)
			if ds, dp := dumpBytes(t, dbS), dumpBytes(t, dbP); string(ds) != string(dp) {
				t.Errorf("warehouse dumps differ: disabled %d bytes, instrumented %d bytes", len(ds), len(dp))
			}

			// The run must actually have been observed, and its telemetry
			// must round-trip through the registered selftrace parser.
			if c.Len() == 0 {
				t.Fatal("instrumented ingest produced no spans")
			}
			var sb strings.Builder
			lines, err := c.WriteLog(&sb)
			if err != nil {
				t.Fatal(err)
			}
			p, err := parsers.Get("selftrace")
			if err != nil {
				t.Fatal(err)
			}
			parsed := 0
			err = p.Parse(strings.NewReader(sb.String()), parsers.Instructions{}, func(mxml.Entry) error {
				parsed++
				return nil
			})
			if err != nil {
				t.Fatalf("self-telemetry log does not parse: %v", err)
			}
			if parsed != lines {
				t.Fatalf("parsed %d of %d self-telemetry lines", parsed, lines)
			}
			// Every instrumented parallel stage must be represented.
			for _, stage := range []string{"chunkparse", "stitch", "append", "convert", "build"} {
				if !strings.Contains(sb.String(), fmt.Sprintf("stage=%s", stage)) {
					t.Errorf("telemetry missing stage %q", stage)
				}
			}
		})
	}
}
