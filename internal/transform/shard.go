package transform

import (
	"bytes"
	"context"
	"io"
	"strings"
	"sync"

	"github.com/gt-elba/milliscope/internal/mxml"
	"github.com/gt-elba/milliscope/internal/parsers"
	"github.com/gt-elba/milliscope/internal/selfobs"
)

// DefaultChunkSize is the target shard size for splitting one source file
// across workers: large enough that regex matching dominates coordination,
// small enough that a single hot file still fans out.
const DefaultChunkSize = 1 << 20

// shard is one byte range of a source file. startLine is the absolute
// 1-based line number of its first line, so shard parses report the same
// header handling and diagnostics as a whole-file parse.
type shard struct {
	data      []byte
	startLine int
}

// planShards splits data into record-aligned shards of roughly chunkSize
// bytes. Cuts are advanced from each size target to the next line start
// and then — when the format declares a record boundary — to the next
// line matching it. The boundary is an optimization, not a correctness
// requirement: a cut that still lands inside a record (e.g. a
// boundary-lookalike line in corrupted input) surfaces as a non-empty
// tail during stitching and is re-parsed across the cut.
func planShards(data []byte, bnd parsers.Boundary, chunkSize int) []shard {
	if chunkSize <= 0 {
		chunkSize = DefaultChunkSize
	}
	if len(data) < 2*chunkSize {
		return []shard{{data: data, startLine: 1}}
	}
	cuts := []int{0}
	pos := 0
	for {
		target := pos + chunkSize
		if target >= len(data) {
			break
		}
		c := nextCut(data, target, bnd)
		if c >= len(data) {
			break
		}
		cuts = append(cuts, c)
		pos = c
	}
	shards := make([]shard, 0, len(cuts))
	line := 1
	for i, c := range cuts {
		end := len(data)
		if i+1 < len(cuts) {
			end = cuts[i+1]
		}
		shards = append(shards, shard{data: data[c:end], startLine: line})
		line += bytes.Count(data[c:end], []byte{'\n'})
	}
	return shards
}

// nextCut returns the first safe cut offset at or after target: the next
// line start, advanced to the next boundary-matching line when the format
// declares one. Returns len(data) when no cut exists before end of file.
func nextCut(data []byte, target int, bnd parsers.Boundary) int {
	ls := target
	if data[target-1] != '\n' {
		i := bytes.IndexByte(data[target:], '\n')
		if i < 0 {
			return len(data)
		}
		ls = target + i + 1
	}
	if bnd.Start == nil {
		return ls
	}
	for ls < len(data) {
		le := bytes.IndexByte(data[ls:], '\n')
		lineEnd := len(data)
		if le >= 0 {
			lineEnd = ls + le
		}
		line := data[ls:lineEnd]
		// The scanner strips a trailing \r; match what the parser will see.
		line = bytes.TrimSuffix(line, []byte{'\r'})
		if bnd.Start.Match(line) {
			return ls
		}
		if le < 0 {
			break
		}
		ls = lineEnd + 1
	}
	return len(data)
}

// chunkOutcome is one shard's optimistic parse result.
type chunkOutcome struct {
	entries []mxml.Entry
	regions []parsers.Malformed
	tail    []parsers.TailLine
	err     error
}

// parseChunkFrom parses one shard (or re-parse stream) collecting entries
// and, in degraded mode, malformed regions. A FailFast parse (degraded
// false) passes a nil Recover, so the first malformed line is the error.
func parseChunkFrom(cp parsers.ChunkParser, in io.Reader, instr parsers.Instructions, startLine int, mid, degraded bool) chunkOutcome {
	var out chunkOutcome
	emit := func(e mxml.Entry) error {
		out.entries = append(out.entries, e)
		return nil
	}
	var rec parsers.Recover
	if degraded {
		rec = func(m parsers.Malformed) error {
			out.regions = append(out.regions, m)
			return nil
		}
	}
	out.tail, out.err = cp.ParseChunk(in, instr, startLine, mid, emit, rec)
	return out
}

// parseSharded parses a file through record-aligned shards and stitches
// the results back into serial order. Every shard parses optimistically in
// parallel (bounded by sem); the stitch loop then walks shards in order.
// An empty tail on shard i certifies the serial parser state at the cut
// was fresh, so shard i+1's optimistic result is exactly what the serial
// parse would have produced; a non-empty tail means a record straddles
// the cut, so shard i+1's optimistic result is discarded and the range is
// re-parsed from the tail's first line. Errors surface in serial order:
// the error returned is the one the serial parse would have hit first.
func parseSharded(ctx context.Context, sem *semaphore, cp parsers.ChunkParser, shards []shard, instr parsers.Instructions, degraded bool, obs *selfobs.Buf, name string) ([]mxml.Entry, []parsers.Malformed, error) {
	outs := make([]chunkOutcome, len(shards))
	var wg sync.WaitGroup
	for i := range shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if !sem.acquireCtx(ctx) {
				outs[i].err = ctx.Err()
				return
			}
			defer sem.release()
			mid := i < len(shards)-1
			// Shard goroutines cannot share the file worker's Buf (it is
			// goroutine-local by contract); one-shot spans lock once each.
			sp := selfobs.Begin(selfobs.PipeIngest, "chunkparse", selfobs.Shard(i), name)
			outs[i] = parseChunkFrom(cp, bytes.NewReader(shards[i].data), instr, shards[i].startLine, mid, degraded)
			sp.End(int64(len(outs[i].entries)), int64(len(outs[i].regions)))
		}(i)
	}
	wg.Wait()

	stitch := obs.Begin(selfobs.PipeIngest, "stitch", "whole", name)
	reparsed := int64(0)

	var entries []mxml.Entry
	var regions []parsers.Malformed
	cur := outs[0]
	for i := 1; i < len(shards); i++ {
		if cur.err != nil {
			return nil, nil, cur.err
		}
		entries = append(entries, cur.entries...)
		regions = append(regions, cur.regions...)
		if len(cur.tail) == 0 {
			cur = outs[i]
			continue
		}
		// A record straddles the cut: replay the tail lines ahead of the
		// next shard's bytes. Tail lines are consecutive and end exactly at
		// the cut, so this stream is line-for-line what the serial parser
		// saw from the tail's first line onward.
		var sb strings.Builder
		for _, tl := range cur.tail {
			sb.WriteString(tl.Text)
			sb.WriteByte('\n')
		}
		in := io.MultiReader(strings.NewReader(sb.String()), bytes.NewReader(shards[i].data))
		cur = parseChunkFrom(cp, in, instr, cur.tail[0].Line, i < len(shards)-1, degraded)
		reparsed++
	}
	if cur.err != nil {
		return nil, nil, cur.err
	}
	entries = append(entries, cur.entries...)
	regions = append(regions, cur.regions...)
	// Items counts stitched entries; Errs counts cuts that needed a
	// cross-shard re-parse (an overhead signal, not a failure).
	stitch.End(int64(len(entries)), reparsed)
	return entries, regions, nil
}
