package ntier

import (
	"fmt"
	"time"

	"github.com/gt-elba/milliscope/internal/des"
)

// This file holds the fault surfaces the bottleneck injectors arm on a
// System before a run: connection-pool seizure, a DB lock convoy, a
// cache-expiry window, inter-tier network jitter, and whole-tier worker
// stalls (crash episodes). Each surface is consulted on the relevant hot
// path (transmit, dbVisit, the conn pools) and is inert unless armed, so a
// fault-free run behaves exactly as before these hooks existed. All
// randomness the armed faults consume flows from the run's srcFault
// stream, which derives from Config.Seed — same seed, same episode.

// linkJitter adds extra latency to one inter-tier link during [from, to).
type linkJitter struct {
	src, dst string
	from, to des.Time
	extra    time.Duration
}

// convoyWindow serializes DB queries behind one lock during [from, to);
// each owner holds the lock ~hold.
type convoyWindow struct {
	from, to des.Time
	hold     time.Duration
}

// missWindow overrides the buffer-pool miss model during [from, to) — the
// cache-stampede surface (every query misses and reads a large block).
type missWindow struct {
	from, to des.Time
	missProb float64
	readKB   int
}

func (sys *System) checkWindow(what string, from, to des.Time) {
	if from < 0 || to <= from {
		panic(fmt.Sprintf("ntier: %s window [%v, %v)", what,
			time.Duration(from), time.Duration(to)))
	}
}

// SeizeConns acquires n connections of the named tier's downstream pool at
// from and returns them at to — leaked or stuck connections. Requests
// needing a connection queue FIFO behind the seizure while still holding
// their worker thread, so the stall amplifies into upstream queue growth.
func (sys *System) SeizeConns(tier string, n int, from, to des.Time) {
	srv := sys.ServerByName(tier)
	if srv == nil {
		panic(fmt.Sprintf("ntier: unknown tier %q", tier))
	}
	pool := srv.conns
	if pool == nil {
		panic(fmt.Sprintf("ntier: tier %q has no downstream connection pool", tier))
	}
	if n <= 0 || n > pool.limit {
		panic(fmt.Sprintf("ntier: seize %d of %d connections", n, pool.limit))
	}
	sys.checkWindow("conn seizure", from, to)
	sys.Eng.At(from, func() {
		var held []string
		released := false
		for i := 0; i < n; i++ {
			pool.Acquire(func(c string) {
				if released {
					// Granted after the episode ended: give it straight back.
					pool.Put(c)
					return
				}
				held = append(held, c)
			})
		}
		sys.Eng.At(to, func() {
			released = true
			for _, c := range held {
				pool.Put(c)
			}
			held = nil
		})
	})
}

// ArmLockConvoy serializes every DB query issued during [from, to) behind
// a single lock, each owner holding it ~hold (jittered from the fault
// stream). Arrivals outrun the serial drain, so the DB tier's queue
// balloons and pushes back through every upstream tier while no resource
// gauge saturates — the software-contention signature.
func (sys *System) ArmLockConvoy(from, to des.Time, hold time.Duration) {
	sys.checkWindow("lock convoy", from, to)
	if hold <= 0 {
		panic(fmt.Sprintf("ntier: non-positive convoy hold %v", hold))
	}
	if sys.convoy != nil {
		panic("ntier: lock convoy already armed")
	}
	sys.convoy = &convoyWindow{from: from, to: to, hold: hold}
}

// ArmCacheExpiry overrides the DB buffer-pool miss model during [from,
// to): a mass cache expiry after which queries miss with missProb and each
// miss reads readKB from the database disk — the stampede that seizes the
// disk with reads (where a redo-log flush seizes it with writes).
func (sys *System) ArmCacheExpiry(from, to des.Time, missProb float64, readKB int) {
	sys.checkWindow("cache expiry", from, to)
	if missProb <= 0 || missProb > 1 {
		panic(fmt.Sprintf("ntier: cache-expiry miss probability %v", missProb))
	}
	if readKB <= 0 {
		panic(fmt.Sprintf("ntier: cache-expiry read size %dKB", readKB))
	}
	if sys.expiry != nil {
		panic("ntier: cache expiry already armed")
	}
	sys.expiry = &missWindow{from: from, to: to, missProb: missProb, readKB: readKB}
}

// ArmNetJitter adds ~extra one-way latency (jittered from the fault
// stream) to every message on the (src, dst) link — both directions —
// during [from, to).
func (sys *System) ArmNetJitter(src, dst string, from, to des.Time, extra time.Duration) {
	for _, name := range []string{src, dst} {
		if name != "client" && sys.ServerByName(name) == nil {
			panic(fmt.Sprintf("ntier: unknown node %q", name))
		}
	}
	sys.checkWindow("net jitter", from, to)
	if extra <= 0 {
		panic(fmt.Sprintf("ntier: non-positive jitter %v", extra))
	}
	sys.jitters = append(sys.jitters, linkJitter{src: src, dst: dst, from: from, to: to, extra: extra})
}

// StallWorkers seizes every worker slot of the named tier during [from,
// to) — one crash/restart episode. In-service requests finish and then the
// tier accepts nothing: arrivals mark UA and queue, upstream workers block
// on their in-flight calls, and at to the backlog drains FIFO.
func (sys *System) StallWorkers(tier string, from, to des.Time) {
	srv := sys.ServerByName(tier)
	if srv == nil {
		panic(fmt.Sprintf("ntier: unknown tier %q", tier))
	}
	sys.checkWindow("worker stall", from, to)
	pool := srv.pool
	sys.Eng.At(from, func() {
		granted := 0
		var tokens []*des.WaitToken
		for i := 0; i < srv.spec.Workers; i++ {
			if tok := pool.Acquire(func() { granted++ }); tok != nil {
				tokens = append(tokens, tok)
			}
		}
		sys.Eng.At(to, func() {
			// Slots still queued for are abandoned; slots actually held
			// are released, granting blocked requests FIFO.
			for _, tok := range tokens {
				tok.Cancel()
			}
			for i := 0; i < granted; i++ {
				pool.Release()
			}
		})
	})
}
