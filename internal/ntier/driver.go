package ntier

import (
	"fmt"
	"sort"
	"time"

	"github.com/gt-elba/milliscope/internal/des"
	"github.com/gt-elba/milliscope/internal/dist"
)

// Driver emulates the closed-loop RUBBoS client population: each user
// alternates exponential think time with one interaction chosen by the
// session Markov chain. New requests stop at the configured duration;
// in-flight requests drain naturally.
type Driver struct {
	sys      *System
	src      *dist.Source
	deadline des.Time
	states   []int

	// Completed holds every finished request in completion order.
	Completed []*Request
	issued    uint64
}

// NewDriver builds the user population for the system's configuration.
func NewDriver(sys *System) *Driver {
	root := dist.NewSource(sys.cfg.Seed)
	d := &Driver{
		sys:      sys,
		src:      root.Derive("driver"),
		deadline: des.Time(sys.cfg.Duration),
		states:   make([]int, sys.cfg.Users),
	}
	for i := range d.states {
		d.states[i] = sys.WL.Start()
	}
	return d
}

// Start schedules every user's first request, staggered across one think
// time to avoid a synchronized start.
func (d *Driver) Start() {
	for sess := 0; sess < d.sys.cfg.Users; sess++ {
		sess := sess
		delay := d.src.Uniform(0, d.sys.cfg.ThinkTime)
		d.sys.Eng.At(des.Time(delay), func() { d.step(sess) })
	}
}

// Issued returns the number of requests submitted.
func (d *Driver) Issued() uint64 { return d.issued }

func (d *Driver) step(sess int) {
	if d.sys.Eng.Now() >= d.deadline {
		return
	}
	d.states[sess] = d.sys.WL.Next(d.src, d.states[sess])
	ix := d.states[sess]
	req := &Request{
		Session:     sess,
		IxIndex:     ix,
		Interaction: d.sys.WL.Interaction(ix),
	}
	d.issued++
	d.sys.Submit(req, func() {
		d.Completed = append(d.Completed, req)
		think := d.src.Exp(d.sys.cfg.ThinkTime)
		d.sys.Eng.After(think, func() { d.step(sess) })
	})
}

// RunStats summarizes a completed trial.
type RunStats struct {
	Requests   int
	Duration   time.Duration
	Throughput float64 // requests per second over the issue window
	MeanRT     time.Duration
	P99RT      time.Duration
	MaxRT      time.Duration
}

// Stats computes client-observed statistics over completed requests,
// skipping a warmup prefix of the run (ramp-up).
func (d *Driver) Stats(warmup time.Duration) RunStats {
	var rts []time.Duration
	for _, r := range d.Completed {
		if r.SubmitAt < des.Time(warmup) {
			continue
		}
		rts = append(rts, time.Duration(r.DoneAt-r.SubmitAt))
	}
	window := d.sys.cfg.Duration - warmup
	st := RunStats{Requests: len(rts), Duration: window}
	if len(rts) == 0 {
		return st
	}
	st.Throughput = float64(len(rts)) / window.Seconds()
	var sum time.Duration
	for _, rt := range rts {
		sum += rt
		if rt > st.MaxRT {
			st.MaxRT = rt
		}
	}
	st.MeanRT = sum / time.Duration(len(rts))
	sorted := make([]time.Duration, len(rts))
	copy(sorted, rts)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	st.P99RT = sorted[len(sorted)*99/100]
	return st
}

// String renders the stats for logs and CLI output.
func (s RunStats) String() string {
	return fmt.Sprintf("requests=%d throughput=%.1f req/s meanRT=%v p99RT=%v maxRT=%v",
		s.Requests, s.Throughput, s.MeanRT.Round(time.Microsecond),
		s.P99RT.Round(time.Microsecond), s.MaxRT.Round(time.Microsecond))
}

// Run executes a full trial: build driver, start background housekeeping,
// issue for cfg.Duration, then drain all in-flight work. It returns the
// driver for stats inspection.
func Run(sys *System) *Driver {
	d := NewDriver(sys)
	sys.StartBackground(des.Time(sys.cfg.Duration))
	d.Start()
	sys.Eng.Run()
	return d
}
