package ntier

import (
	"testing"
	"time"

	"github.com/gt-elba/milliscope/internal/des"
	"github.com/gt-elba/milliscope/internal/rubbos"
)

// smallConfig returns a fast trial for unit tests.
func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Users = 60
	cfg.Duration = 2 * time.Second
	cfg.ThinkTime = 300 * time.Millisecond
	cfg.Seed = 42
	cfg.RetainVisits = true
	return cfg
}

func TestRunCompletesAndDrains(t *testing.T) {
	sys := New(smallConfig())
	d := Run(sys)
	if len(d.Completed) == 0 {
		t.Fatal("no requests completed")
	}
	// All issued requests eventually complete (closed loop drains).
	if uint64(len(d.Completed)) != d.Issued() {
		t.Fatalf("completed %d != issued %d", len(d.Completed), d.Issued())
	}
	for _, s := range sys.Servers() {
		if s.Inflight() != 0 {
			t.Fatalf("%s still has %d inflight after drain", s.Name(), s.Inflight())
		}
	}
	// Expected closed-loop throughput: users/think ≈ 200 req/s for 2s.
	st := d.Stats(200 * time.Millisecond)
	if st.Throughput < 100 || st.Throughput > 320 {
		t.Fatalf("throughput %.1f req/s implausible for 60 users / 300ms think", st.Throughput)
	}
	if st.MeanRT <= 0 || st.MeanRT > 100*time.Millisecond {
		t.Fatalf("mean RT %v implausible for unloaded system", st.MeanRT)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (int, time.Duration) {
		sys := New(smallConfig())
		d := Run(sys)
		var sum time.Duration
		for _, r := range d.Completed {
			sum += time.Duration(r.DoneAt - r.SubmitAt)
		}
		return len(d.Completed), sum
	}
	n1, s1 := run()
	n2, s2 := run()
	if n1 != n2 || s1 != s2 {
		t.Fatalf("same seed diverged: (%d,%v) vs (%d,%v)", n1, s1, n2, s2)
	}
}

func TestSeedChangesRun(t *testing.T) {
	cfg := smallConfig()
	d1 := Run(New(cfg))
	cfg.Seed = 43
	d2 := Run(New(cfg))
	if len(d1.Completed) == len(d2.Completed) {
		var s1, s2 time.Duration
		for _, r := range d1.Completed {
			s1 += time.Duration(r.DoneAt - r.SubmitAt)
		}
		for _, r := range d2.Completed {
			s2 += time.Duration(r.DoneAt - r.SubmitAt)
		}
		if s1 == s2 {
			t.Fatal("different seeds produced identical runs")
		}
	}
}

func TestVisitTimestampInvariants(t *testing.T) {
	sys := New(smallConfig())
	Run(sys)
	if len(sys.GroundTruth) == 0 {
		t.Fatal("no ground-truth visits retained")
	}
	for _, v := range sys.GroundTruth {
		if v.UA > v.UD {
			t.Fatalf("%s visit: UA %v after UD %v", v.Server.Name(), v.UA, v.UD)
		}
		if v.DS != 0 || v.DR != 0 {
			if !(v.UA <= v.DS && v.DS <= v.DR && v.DR <= v.UD) {
				t.Fatalf("%s visit: boundary order violated UA=%v DS=%v DR=%v UD=%v",
					v.Server.Name(), v.UA, v.DS, v.DR, v.UD)
			}
		}
		if v.LocalTime() < 0 {
			t.Fatalf("negative local time at %s", v.Server.Name())
		}
	}
}

func TestVisitFanout(t *testing.T) {
	sys := New(smallConfig())
	d := Run(sys)
	// Count visits per tier per request for a handful of requests.
	byReq := map[uint64]map[string]int{}
	for _, v := range sys.GroundTruth {
		m := byReq[v.Req.Serial]
		if m == nil {
			m = map[string]int{}
			byReq[v.Req.Serial] = m
		}
		m[v.Server.Name()]++
	}
	checked := 0
	for _, r := range d.Completed {
		m := byReq[r.Serial]
		if m["apache"] != 1 {
			t.Fatalf("request %d: %d apache visits, want 1", r.Serial, m["apache"])
		}
		if m["tomcat"] != 1 {
			t.Fatalf("request %d: %d tomcat visits, want 1", r.Serial, m["tomcat"])
		}
		q := r.Interaction.Queries
		if m["cjdbc"] != q || m["mysql"] != q {
			t.Fatalf("request %d (%s): cjdbc=%d mysql=%d visits, want %d each",
				r.Serial, r.Interaction.Name, m["cjdbc"], m["mysql"], q)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no requests checked")
	}
}

func TestHappensBeforeAcrossTiers(t *testing.T) {
	sys := New(smallConfig())
	Run(sys)
	// For each request: apache.DS <= tomcat.UA and tomcat.UD <= apache.DR
	// in virtual time (no clock skew in ground truth).
	web := map[uint64]*Visit{}
	app := map[uint64]*Visit{}
	for _, v := range sys.GroundTruth {
		switch v.Server.Kind() {
		case TierWeb:
			web[v.Req.Serial] = v
		case TierApp:
			app[v.Req.Serial] = v
		}
	}
	n := 0
	for serial, wv := range web {
		av, ok := app[serial]
		if !ok {
			t.Fatalf("request %d has web visit but no app visit", serial)
		}
		if !(wv.DS <= av.UA && av.UD <= wv.DR) {
			t.Fatalf("request %d: nesting violated web[DS=%v DR=%v] app[UA=%v UD=%v]",
				serial, wv.DS, wv.DR, av.UA, av.UD)
		}
		n++
	}
	if n == 0 {
		t.Fatal("no request pairs checked")
	}
}

func TestMessageCapture(t *testing.T) {
	sys := New(smallConfig())
	var msgs []Message
	sys.SetCapture(captureFunc(func(m Message) { msgs = append(msgs, m) }))
	d := Run(sys)
	if len(msgs) == 0 {
		t.Fatal("no messages captured")
	}
	reqMsgs, respMsgs := 0, 0
	for _, m := range msgs {
		if m.SentAt > m.RecvAt {
			t.Fatalf("message received before sent: %+v", m)
		}
		if m.Conn == "" || m.Src == "" || m.Dst == "" {
			t.Fatalf("message with empty endpoint: %+v", m)
		}
		switch m.Kind {
		case MsgRequest:
			reqMsgs++
		case MsgResponse:
			respMsgs++
		default:
			t.Fatalf("unknown message kind %v", m.Kind)
		}
	}
	if reqMsgs != respMsgs {
		t.Fatalf("unbalanced request/response messages: %d vs %d", reqMsgs, respMsgs)
	}
	// Per completed request: 2 hops client<->web fixed plus 2 per tier call.
	if len(d.Completed) == 0 {
		t.Fatal("no completed requests")
	}
}

type captureFunc func(Message)

func (f captureFunc) OnMessage(m Message) { f(m) }

func TestVisitObserverSeesEveryVisit(t *testing.T) {
	sys := New(smallConfig())
	counts := map[string]uint64{}
	for _, s := range sys.Servers() {
		s := s
		s.Observe(observerFunc(func(v *Visit) {
			counts[v.Server.Name()]++
			if v.UD == 0 {
				t.Errorf("observer called before UD set")
			}
		}))
	}
	Run(sys)
	for _, s := range sys.Servers() {
		if counts[s.Name()] != s.Visits() {
			t.Fatalf("%s observer saw %d visits, server counted %d",
				s.Name(), counts[s.Name()], s.Visits())
		}
		if counts[s.Name()] == 0 {
			t.Fatalf("%s saw no visits", s.Name())
		}
	}
}

type observerFunc func(*Visit)

func (f observerFunc) OnVisitComplete(v *Visit) { f(v) }

func TestWriteInteractionsCommit(t *testing.T) {
	cfg := smallConfig()
	cfg.Mix = rubbos.ReadWrite
	sys := New(cfg)
	Run(sys)
	if sys.CommitFlushes() == 0 {
		t.Fatal("read-write mix produced no group-commit flushes")
	}
	_, wo, _, wk := sys.DB.Node().Disk.Counters()
	if wo == 0 || wk == 0 {
		t.Fatal("no DB disk writes recorded")
	}
}

func TestBrowseOnlyNoCommits(t *testing.T) {
	cfg := smallConfig()
	cfg.Mix = rubbos.BrowseOnly
	sys := New(cfg)
	Run(sys)
	if sys.CommitFlushes() != 0 {
		t.Fatalf("browse-only mix issued %d commit flushes", sys.CommitFlushes())
	}
}

func TestRequestIDFixedWidth(t *testing.T) {
	r := &Request{Serial: 123}
	id := r.ID()
	if id != "req-0000000123" {
		t.Fatalf("ID() = %q", id)
	}
	r2 := &Request{Serial: 9999999999}
	if len(r2.ID()) != len(id) {
		t.Fatal("request IDs are not fixed width")
	}
}

func TestConnPoolReuse(t *testing.T) {
	p := newConnPool("web", 3)
	var a, b, c string
	p.Acquire(func(conn string) { a = conn })
	p.Acquire(func(conn string) { b = conn })
	if a == b {
		t.Fatal("pool handed out duplicate connection")
	}
	p.Put(a)
	p.Acquire(func(conn string) { c = conn })
	if c != a {
		t.Fatalf("pool did not reuse freed conn: got %q want %q", c, a)
	}
	if p.Waits() != 0 {
		t.Fatalf("un-exhausted pool recorded %d waits", p.Waits())
	}
}

func TestConnPoolExhaustionQueuesFIFO(t *testing.T) {
	p := newConnPool("x", 1)
	var held string
	p.Acquire(func(conn string) { held = conn })
	var got []string
	p.Acquire(func(conn string) { got = append(got, "first:"+conn) })
	p.Acquire(func(conn string) { got = append(got, "second:"+conn) })
	if len(got) != 0 {
		t.Fatalf("exhausted pool granted immediately: %v", got)
	}
	if p.Waiting() != 2 || p.Waits() != 2 {
		t.Fatalf("Waiting=%d Waits=%d, want 2/2", p.Waiting(), p.Waits())
	}
	p.Put(held)
	if len(got) != 1 || got[0] != "first:"+held {
		t.Fatalf("head waiter not granted FIFO: %v", got)
	}
	p.Put(held)
	if len(got) != 2 || got[1] != "second:"+held {
		t.Fatalf("second waiter not granted FIFO: %v", got)
	}
	if p.Waiting() != 0 {
		t.Fatalf("%d waiters left after drain", p.Waiting())
	}
}

func TestLocalTime(t *testing.T) {
	v := &Visit{UA: 10, DS: 20, DR: 80, UD: 100}
	if lt := v.LocalTime(); lt != 30 {
		t.Fatalf("LocalTime = %v, want 30", lt)
	}
	leaf := &Visit{UA: 10, UD: 25}
	if lt := leaf.LocalTime(); lt != 15 {
		t.Fatalf("leaf LocalTime = %v, want 15", lt)
	}
}

func TestLogVolumeAccumulates(t *testing.T) {
	sys := New(smallConfig())
	Run(sys)
	for _, s := range sys.Servers() {
		base, extra := s.LogVolumeKB()
		if base <= 0 {
			t.Fatalf("%s accumulated no native log bytes", s.Name())
		}
		if extra != 0 {
			t.Fatalf("%s has monitor log bytes with no monitors attached", s.Name())
		}
	}
}

func TestStatsWarmupFilters(t *testing.T) {
	sys := New(smallConfig())
	d := Run(sys)
	all := d.Stats(0)
	late := d.Stats(time.Second)
	if late.Requests >= all.Requests {
		t.Fatalf("warmup filter removed nothing: %d vs %d", late.Requests, all.Requests)
	}
}

func TestDefaultConfigSane(t *testing.T) {
	cfg := DefaultConfig()
	for _, spec := range []TierSpec{cfg.Web, cfg.App, cfg.Mid, cfg.DB} {
		if spec.Workers <= 0 || spec.Node.Cores <= 0 || spec.Node.Name == "" {
			t.Fatalf("bad default tier spec: %+v", spec)
		}
	}
	if cfg.Web.Node.Name != "apache" || cfg.DB.Node.Name != "mysql" {
		t.Fatal("default tier names do not match the paper's stack")
	}
}

func TestServerByName(t *testing.T) {
	sys := New(smallConfig())
	if sys.ServerByName("tomcat") != sys.App {
		t.Fatal("ServerByName(tomcat) wrong")
	}
	if sys.ServerByName("nope") != nil {
		t.Fatal("unknown name returned a server")
	}
}

func TestQueueBuildsUnderDiskSeizure(t *testing.T) {
	// Seize the DB disk mid-run and verify upstream queues grow: the
	// pushback phenomenon the paper's Figure 6 shows.
	cfg := smallConfig()
	cfg.Users = 150
	cfg.ThinkTime = 200 * time.Millisecond
	cfg.Duration = 3 * time.Second
	sys := New(cfg)
	d := NewDriver(sys)
	sys.StartBackground(des.Time(cfg.Duration))
	d.Start()

	// At t=1s occupy the DB disk with a long burst of writes.
	sys.Eng.At(des.Time(time.Second), func() {
		for i := 0; i < 60; i++ {
			sys.DB.Node().Disk.WriteAsync(1 << 20)
		}
	})
	var peakDuring int
	sys.Eng.Every(des.Time(time.Second), 10*time.Millisecond, func(now des.Time) bool {
		if q := sys.DB.Inflight(); q > peakDuring {
			peakDuring = q
		}
		return now > des.Time(1800*time.Millisecond)
	})
	sys.Eng.Run()

	if peakDuring < 20 {
		t.Fatalf("DB queue peaked at %d during disk seizure, expected pushback", peakDuring)
	}
	if sys.Web.PeakInflight() < 10 {
		t.Fatalf("apache queue peaked at %d, expected upstream pushback", sys.Web.PeakInflight())
	}
}

func BenchmarkTrialSmall(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := smallConfig()
		cfg.RetainVisits = false
		sys := New(cfg)
		d := Run(sys)
		if len(d.Completed) == 0 {
			b.Fatal("no requests")
		}
	}
}
