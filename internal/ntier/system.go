package ntier

import (
	"fmt"
	"time"

	"github.com/gt-elba/milliscope/internal/des"
	"github.com/gt-elba/milliscope/internal/dist"
	"github.com/gt-elba/milliscope/internal/resources"
	"github.com/gt-elba/milliscope/internal/rubbos"
)

// Config parameterizes a testbed run.
type Config struct {
	// Users is the number of concurrent emulated users ("workload" in the
	// paper's figures).
	Users int
	// Mix is the RUBBoS workload mix.
	Mix rubbos.Mix
	// Duration is how long new requests are issued; in-flight requests
	// drain afterwards.
	Duration time.Duration
	// ThinkTime is the mean exponential think time between interactions.
	ThinkTime time.Duration
	// Seed drives every random stream in the run.
	Seed int64

	// Tier specifications, front to back.
	Web, App, Mid, DB TierSpec

	// NetLatency is the mean one-way inter-tier message latency.
	NetLatency time.Duration
	// DBMissProb is the probability a query misses the buffer pool and
	// reads from disk.
	DBMissProb float64
	// DBMissReadKB is the size of a buffer-pool miss read.
	DBMissReadKB int
	// GroupCommitInterval batches MySQL redo-log flushes.
	GroupCommitInterval time.Duration
	// LogWritebackPeriod is how often accumulated log bytes are written
	// back to each node's disk.
	LogWritebackPeriod time.Duration

	// RetainVisits keeps ground-truth visit records in memory (metrics and
	// accuracy validation read them).
	RetainVisits bool
}

// DefaultConfig returns the four-tier testbed matching the paper's setup:
// one node each for Apache, Tomcat, C-JDBC and MySQL.
func DefaultConfig() Config {
	return Config{
		Users:     1000,
		Mix:       rubbos.ReadWrite,
		Duration:  30 * time.Second,
		ThinkTime: 7 * time.Second,
		Seed:      1,
		Web: TierSpec{
			Node: resources.NodeConfig{
				Name: "apache", Cores: 8,
				Disk:        resources.DefaultDiskConfig(),
				Memory:      resources.DefaultMemoryConfig(),
				ClockOffset: 180 * time.Microsecond,
			},
			Workers: 200, BaseLogBytes: 150, BaseLogCPU: 12 * time.Microsecond,
		},
		App: TierSpec{
			Node: resources.NodeConfig{
				Name: "tomcat", Cores: 8,
				Disk:        resources.DefaultDiskConfig(),
				Memory:      resources.DefaultMemoryConfig(),
				ClockOffset: -240 * time.Microsecond,
			},
			Workers: 120, BaseLogBytes: 90, BaseLogCPU: 10 * time.Microsecond,
		},
		Mid: TierSpec{
			Node: resources.NodeConfig{
				Name: "cjdbc", Cores: 4,
				Disk:        resources.DefaultDiskConfig(),
				Memory:      resources.DefaultMemoryConfig(),
				ClockOffset: 90 * time.Microsecond,
			},
			// C-JDBC natively logs each proxied request.
			Workers: 100, BaseLogBytes: 120, BaseLogCPU: 8 * time.Microsecond,
		},
		DB: TierSpec{
			Node: resources.NodeConfig{
				Name: "mysql", Cores: 8,
				// Database disk with a write cache: much lower positioning
				// cost than the log disks on the other tiers.
				Disk:        resources.DiskConfig{SeekTime: 500 * time.Microsecond, BandwidthMBps: 200},
				Memory:      resources.DefaultMemoryConfig(),
				ClockOffset: -60 * time.Microsecond,
			},
			// Native MySQL logging includes the binlog and error log.
			Workers: 80, BaseLogBytes: 150, BaseLogCPU: 8 * time.Microsecond,
		},
		NetLatency:          150 * time.Microsecond,
		DBMissProb:          0.015,
		DBMissReadKB:        16,
		GroupCommitInterval: 5 * time.Millisecond,
		LogWritebackPeriod:  time.Second,
	}
}

// System is the assembled four-tier testbed.
type System struct {
	Eng *des.Engine
	WL  *rubbos.Workload

	Web, App, Mid, DB *Server

	cfg     Config
	client  *resources.Node
	commit  *groupCommit
	capture MessageObserver

	srcService *dist.Source
	srcNet     *dist.Source
	srcDB      *dist.Source
	// srcFault feeds injector randomness (convoy hold times, jitter
	// spread). A dedicated stream derived from cfg.Seed keeps injected
	// scenarios deterministic per seed without perturbing the service,
	// network or DB draws of a fault-free run.
	srcFault *dist.Source

	// dbLock serializes queries through one row/table lock while a lock
	// convoy is armed (capacity 1; idle otherwise).
	dbLock *des.Resource
	// Armed fault windows, consulted on the hot paths below.
	jitters []linkJitter
	convoy  *convoyWindow
	expiry  *missWindow

	nextSerial uint64

	// GroundTruth holds every completed visit when RetainVisits is set.
	GroundTruth []*Visit
}

// New assembles a testbed from the configuration.
func New(cfg Config) *System {
	if cfg.Users <= 0 {
		panic(fmt.Sprintf("ntier: %d users", cfg.Users))
	}
	if cfg.Duration <= 0 {
		panic(fmt.Sprintf("ntier: non-positive duration %v", cfg.Duration))
	}
	if cfg.ThinkTime <= 0 {
		panic(fmt.Sprintf("ntier: non-positive think time %v", cfg.ThinkTime))
	}
	if cfg.DBMissProb < 0 || cfg.DBMissProb > 1 {
		panic(fmt.Sprintf("ntier: miss probability %v", cfg.DBMissProb))
	}
	eng := des.NewEngine()
	root := dist.NewSource(cfg.Seed)
	sys := &System{
		Eng:        eng,
		WL:         rubbos.Standard(cfg.Mix),
		cfg:        cfg,
		srcService: root.Derive("service"),
		srcNet:     root.Derive("net"),
		srcDB:      root.Derive("db"),
		srcFault:   root.Derive("fault"),
	}
	sys.dbLock = des.NewResource(eng, "mysql/lock", 1)
	sys.Web = NewServer(eng, TierWeb, cfg.Web)
	sys.App = NewServer(eng, TierApp, cfg.App)
	sys.Mid = NewServer(eng, TierMiddleware, cfg.Mid)
	sys.DB = NewServer(eng, TierDB, cfg.DB)
	sys.client = resources.NewNode(eng, resources.NodeConfig{
		Name: "client", Cores: 64,
		Disk:   resources.DefaultDiskConfig(),
		Memory: resources.DefaultMemoryConfig(),
	})
	sys.commit = newGroupCommit(eng, sys.DB.node.Disk, cfg.GroupCommitInterval)
	return sys
}

// Config returns the run configuration.
func (sys *System) Config() Config { return sys.cfg }

// Servers returns the tiers front to back.
func (sys *System) Servers() []*Server {
	return []*Server{sys.Web, sys.App, sys.Mid, sys.DB}
}

// ServerByName returns the named tier, or nil.
func (sys *System) ServerByName(name string) *Server {
	for _, s := range sys.Servers() {
		if s.Name() == name {
			return s
		}
	}
	return nil
}

// ClientNode returns the load-generator machine.
func (sys *System) ClientNode() *resources.Node { return sys.client }

// SetCapture installs the passive network tap (nil disables it).
func (sys *System) SetCapture(o MessageObserver) { sys.capture = o }

// CommitFlushes returns the number of group-commit disk writes so far.
func (sys *System) CommitFlushes() uint64 { return sys.commit.Flushes() }

// StartBackground launches per-node housekeeping (periodic log writeback)
// that runs until the given virtual time.
func (sys *System) StartBackground(until des.Time) {
	for _, s := range sys.Servers() {
		s.startLogWriteback(sys.cfg.LogWritebackPeriod, until)
	}
}

// demand perturbs a median service demand.
func (sys *System) demand(median time.Duration) time.Duration {
	if median <= 0 {
		return 0
	}
	return rubbos.SampleDemand(sys.srcService, median)
}

func (sys *System) wireBytes(base, spread int) int {
	if spread <= 0 {
		return base
	}
	return base + sys.srcNet.Intn(spread)
}

// transmit moves one message between nodes, charging NICs, applying wire
// latency, and reporting to the network tap on arrival.
func (sys *System) transmit(src, dst *resources.Node, conn string, kind MsgKind,
	bytes int, req *Request, after func()) {
	sent := sys.Eng.Now()
	src.NetSend(bytes)
	lat := sys.srcNet.Jitter(sys.cfg.NetLatency, 0.4)
	lat += sys.jitterExtra(src.Name(), dst.Name())
	sys.Eng.After(lat, func() {
		dst.NetRecv(bytes)
		if sys.capture != nil {
			sys.capture.OnMessage(Message{
				Conn: conn, Src: src.Name(), Dst: dst.Name(), Kind: kind,
				SentAt: sent, RecvAt: sys.Eng.Now(), Bytes: bytes,
				ReqSerial: req.Serial,
			})
		}
		after()
	})
}

func (sys *System) finishVisit(s *Server, v *Visit) {
	s.depart(v)
	if sys.cfg.RetainVisits {
		sys.GroundTruth = append(sys.GroundTruth, v)
	}
}

// Submit injects a request from the client; done runs when the response
// reaches the client. The caller fills Session and interaction fields.
func (sys *System) Submit(req *Request, done func()) {
	sys.nextSerial++
	req.Serial = sys.nextSerial
	req.SubmitAt = sys.Eng.Now()
	conn := fmt.Sprintf("client/s%05d", req.Session)
	sys.transmit(sys.client, sys.Web.node, conn, MsgRequest,
		sys.wireBytes(500, 300), req, func() {
			sys.webVisit(req, conn, func() {
				req.DoneAt = sys.Eng.Now()
				done()
			})
		})
}

// webVisit executes the Apache tier: parse, proxy to Tomcat, render, and
// return the response to the client.
func (sys *System) webVisit(req *Request, upConn string, done func()) {
	s := sys.Web
	it := req.Interaction
	v := &Visit{Req: req, Server: s, UA: sys.Eng.Now()}
	s.arrive()
	s.pool.Acquire(func() {
		s.node.CPU.Exec(sys.demand(it.ApacheCPU*7/10), resources.ModeUser, func() {
			s.conns.Acquire(func(conn string) {
				// DS is stamped once a connection is held: time spent
				// blocked on an exhausted pool is tier-local residence,
				// not network transit.
				v.DS = sys.Eng.Now()
				sys.transmit(s.node, sys.App.node, conn, MsgRequest,
					sys.wireBytes(600, 250), req, func() {
						sys.appVisit(req, conn, func() {
							v.DR = sys.Eng.Now()
							s.conns.Put(conn)
							// Rendering the response writes the access-log record;
							// dirty-page throttling blocks here during recycling.
							s.node.Mem.ThrottleWrite(func() {
								s.node.CPU.Exec(sys.demand(it.ApacheCPU*3/10), resources.ModeUser, func() {
									v.UD = sys.Eng.Now()
									sys.finishVisit(s, v)
									s.pool.Release()
									sys.transmit(s.node, sys.client, upConn, MsgResponse,
										it.RespKB*1024, req, done)
								})
							})
						})
					})
			})
		})
	})
}

// appVisit executes the Tomcat tier: servlet work plus a sequence of
// synchronous queries through C-JDBC. onResp runs at the web tier when the
// response message arrives back.
func (sys *System) appVisit(req *Request, upConn string, onResp func()) {
	s := sys.App
	it := req.Interaction
	v := &Visit{Req: req, Server: s, UA: sys.Eng.Now()}
	s.arrive()
	s.pool.Acquire(func() {
		s.node.CPU.Exec(sys.demand(it.TomcatCPU/2), resources.ModeUser, func() {
			finish := func() {
				// Servlet log write; throttled during dirty-page recycling.
				s.node.Mem.ThrottleWrite(func() {
					s.node.CPU.Exec(sys.demand(it.TomcatCPU/5), resources.ModeUser, func() {
						v.UD = sys.Eng.Now()
						sys.finishVisit(s, v)
						s.pool.Release()
						sys.transmit(s.node, sys.Web.node, upConn, MsgResponse,
							it.RespKB*768, req, onResp)
					})
				})
			}
			if it.Queries == 0 {
				finish()
				return
			}
			s.conns.Acquire(func(conn string) {
				interCPU := time.Duration(float64(it.TomcatCPU) * 0.3 / float64(it.Queries))
				qi := 0
				var next func()
				next = func() {
					if qi == 0 {
						v.DS = sys.Eng.Now()
					}
					sys.transmit(s.node, sys.Mid.node, conn, MsgRequest,
						sys.wireBytes(320, 120), req, func() {
							sys.midVisit(req, qi, conn, func() {
								v.DR = sys.Eng.Now()
								qi++
								if qi < it.Queries {
									s.node.CPU.Exec(sys.demand(interCPU), resources.ModeUser, next)
									return
								}
								s.conns.Put(conn)
								finish()
							})
						})
				}
				next()
			})
		})
	})
}

// midVisit executes one query at the C-JDBC middleware tier.
func (sys *System) midVisit(req *Request, qi int, upConn string, onResp func()) {
	s := sys.Mid
	it := req.Interaction
	v := &Visit{Req: req, Server: s, Seq: qi, UA: sys.Eng.Now(), SQL: it.SQL}
	s.arrive()
	s.pool.Acquire(func() {
		s.node.CPU.Exec(sys.demand(it.CJDBCCPU*7/10), resources.ModeUser, func() {
			s.conns.Acquire(func(conn string) {
				v.DS = sys.Eng.Now()
				sys.transmit(s.node, sys.DB.node, conn, MsgRequest,
					sys.wireBytes(300, 100), req, func() {
						sys.dbVisit(req, qi, conn, func() {
							v.DR = sys.Eng.Now()
							s.conns.Put(conn)
							s.node.CPU.Exec(sys.demand(it.CJDBCCPU*3/10), resources.ModeUser, func() {
								v.UD = sys.Eng.Now()
								sys.finishVisit(s, v)
								s.pool.Release()
								sys.transmit(s.node, sys.App.node, upConn, MsgResponse,
									queryRespBytes(it), req, onResp)
							})
						})
					})
			})
		})
	})
}

// dbVisit executes one query at MySQL: CPU, a possible buffer-pool miss
// read, and a group-committed redo write for the final query of a write
// interaction.
func (sys *System) dbVisit(req *Request, qi int, upConn string, onResp func()) {
	s := sys.DB
	it := req.Interaction
	v := &Visit{Req: req, Server: s, Seq: qi, UA: sys.Eng.Now(), SQL: it.SQL}
	s.arrive()
	s.pool.Acquire(func() {
		run := func() {
			s.node.CPU.Exec(sys.demand(it.QueryCPU), resources.ModeUser, func() {
				finish := func() {
					v.UD = sys.Eng.Now()
					sys.finishVisit(s, v)
					s.pool.Release()
					sys.transmit(s.node, sys.Mid.node, upConn, MsgResponse,
						queryRespBytes(it), req, onResp)
				}
				commit := func() {
					if it.Write && qi == it.Queries-1 {
						sys.commit.Enqueue(it.CommitKB, finish)
						return
					}
					finish()
				}
				missProb, readKB := sys.missModel()
				if missProb > 0 && sys.srcDB.Float64() < missProb {
					s.node.Disk.Read(readKB*1024, commit)
					return
				}
				commit()
			})
		}
		// An armed lock convoy serializes queries through one lock; the
		// hold is pure blocking (the owner waits on I/O inside the
		// critical section), so no resource gauge moves while the DB
		// tier's queue balloons.
		if hold := sys.convoyHold(); hold > 0 {
			sys.dbLock.Acquire(func() {
				sys.Eng.After(hold, func() {
					sys.dbLock.Release()
					run()
				})
			})
			return
		}
		run()
	})
}

// missModel returns the effective buffer-pool miss probability and read
// size, honouring an armed cache-expiry window.
func (sys *System) missModel() (float64, int) {
	if e := sys.expiry; e != nil {
		if now := sys.Eng.Now(); now >= e.from && now < e.to {
			return e.missProb, e.readKB
		}
	}
	return sys.cfg.DBMissProb, sys.cfg.DBMissReadKB
}

// convoyHold samples the lock-hold time if a convoy window is active, else 0.
func (sys *System) convoyHold() time.Duration {
	c := sys.convoy
	if c == nil {
		return 0
	}
	if now := sys.Eng.Now(); now < c.from || now >= c.to {
		return 0
	}
	return sys.srcFault.Jitter(c.hold, 0.4)
}

// jitterExtra returns the extra one-way latency armed for the (src, dst)
// link at the current instant. Jitter windows apply to both directions of
// their link.
func (sys *System) jitterExtra(src, dst string) time.Duration {
	if len(sys.jitters) == 0 {
		return 0
	}
	now := sys.Eng.Now()
	var total time.Duration
	for _, j := range sys.jitters {
		onLink := (j.src == src && j.dst == dst) || (j.src == dst && j.dst == src)
		if onLink && now >= j.from && now < j.to {
			total += sys.srcFault.Jitter(j.extra, 0.5)
		}
	}
	return total
}

func queryRespBytes(it rubbos.Interaction) int {
	if it.Queries <= 0 {
		return 256
	}
	b := it.RespKB * 1024 / (2 * it.Queries)
	if b < 256 {
		b = 256
	}
	return b
}
