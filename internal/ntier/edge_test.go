package ntier

import (
	"testing"
	"time"

	"github.com/gt-elba/milliscope/internal/rubbos"
)

func TestConfigValidationPanics(t *testing.T) {
	cases := []func(*Config){
		func(c *Config) { c.Users = 0 },
		func(c *Config) { c.Duration = 0 },
		func(c *Config) { c.ThinkTime = 0 },
		func(c *Config) { c.DBMissProb = 1.5 },
	}
	for i, mutate := range cases {
		cfg := DefaultConfig()
		mutate(&cfg)
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: invalid config accepted", i)
				}
			}()
			New(cfg)
		}()
	}
}

func TestStatsEmptyWindow(t *testing.T) {
	cfg := smallConfig()
	sys := New(cfg)
	d := Run(sys)
	// A warmup longer than the trial leaves nothing.
	st := d.Stats(time.Hour)
	if st.Requests != 0 || st.Throughput != 0 || st.MeanRT != 0 {
		t.Fatalf("empty-window stats: %+v", st)
	}
}

func TestStatsString(t *testing.T) {
	st := RunStats{Requests: 10, Throughput: 5.5,
		MeanRT: 3 * time.Millisecond, P99RT: 9 * time.Millisecond, MaxRT: 12 * time.Millisecond}
	s := st.String()
	for _, want := range []string{"requests=10", "5.5 req/s", "meanRT=3ms"} {
		if !containsStr(s, want) {
			t.Fatalf("stats string %q missing %q", s, want)
		}
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestNoMissReadsWithZeroProb: DBMissProb 0 must produce no disk reads.
func TestNoMissReadsWithZeroProb(t *testing.T) {
	cfg := smallConfig()
	cfg.Mix = rubbos.BrowseOnly // no commits either
	cfg.DBMissProb = 0
	sys := New(cfg)
	Run(sys)
	ro, _, _, _ := sys.DB.Node().Disk.Counters()
	if ro != 0 {
		t.Fatalf("%d disk reads with zero miss probability", ro)
	}
}

// TestHighMissProbDrivesReads: every query reads when the buffer pool
// always misses.
func TestHighMissProbDrivesReads(t *testing.T) {
	cfg := smallConfig()
	cfg.DBMissProb = 1
	sys := New(cfg)
	Run(sys)
	ro, _, _, _ := sys.DB.Node().Disk.Counters()
	if uint64(ro) != sys.DB.Visits() {
		t.Fatalf("%d reads for %d queries with miss prob 1", ro, sys.DB.Visits())
	}
}

// TestTierKindStrings covers the stringers.
func TestTierKindStrings(t *testing.T) {
	cases := map[TierKind]string{
		TierWeb: "web", TierApp: "app", TierMiddleware: "middleware", TierDB: "db",
	}
	for k, want := range cases {
		if k.String() != want {
			t.Fatalf("%d → %q, want %q", int(k), k.String(), want)
		}
	}
	if MsgRequest.String() != "REQ" || MsgResponse.String() != "RSP" {
		t.Fatal("msg kind strings")
	}
}

// TestThinkTimeControlsThroughput: halving think time roughly doubles
// closed-loop throughput (Little's law sanity).
func TestThinkTimeControlsThroughput(t *testing.T) {
	run := func(think time.Duration) float64 {
		cfg := smallConfig()
		cfg.ThinkTime = think
		cfg.Duration = 4 * time.Second
		sys := New(cfg)
		d := Run(sys)
		return d.Stats(time.Second).Throughput
	}
	slow := run(600 * time.Millisecond)
	fast := run(300 * time.Millisecond)
	ratio := fast / slow
	if ratio < 1.6 || ratio > 2.4 {
		t.Fatalf("throughput ratio %.2f for halved think time, want ~2", ratio)
	}
}

// TestClosedLoopSaturation: far past the CPU capacity of the app tier,
// throughput stops scaling with the user population and response time
// inflates — the classic closed-loop saturation knee. Validates that the
// queueing model behaves like a real testbed at the high end of the
// paper's workload axis.
func TestClosedLoopSaturation(t *testing.T) {
	if testing.Short() {
		t.Skip("saturation sweep skipped in -short mode")
	}
	run := func(users int) RunStats {
		cfg := DefaultConfig()
		cfg.Users = users
		// A fast closed loop reaches steady state within the trial.
		cfg.ThinkTime = time.Second
		cfg.Duration = 8 * time.Second
		cfg.Seed = 51
		sys := New(cfg)
		d := Run(sys)
		return d.Stats(2 * time.Second)
	}
	base := run(500)  // ~500 req/s offered, well under capacity
	high := run(4000) // ~4000 req/s offered, past the DB tier's CPU capacity
	if base.Throughput <= 0 {
		t.Fatal("no baseline throughput")
	}
	scale := high.Throughput / base.Throughput
	if scale > 6.5 {
		t.Fatalf("throughput scaled %.2fx for 8x users; no saturation knee", scale)
	}
	if high.MeanRT < 5*base.MeanRT {
		t.Fatalf("mean RT %v at saturation vs %v baseline; queueing delay missing",
			high.MeanRT, base.MeanRT)
	}
}

// TestWorkerPoolLimitsConcurrency: a tiny DB pool bounds concurrent query
// service; the excess queues at the tier.
func TestWorkerPoolLimitsConcurrency(t *testing.T) {
	cfg := smallConfig()
	cfg.DB.Workers = 2
	cfg.Users = 100
	cfg.ThinkTime = 100 * time.Millisecond
	sys := New(cfg)
	Run(sys)
	if sys.DB.Workers().Cap() != 2 {
		t.Fatal("pool capacity not applied")
	}
	if sys.DB.PeakInflight() <= 2 {
		t.Fatalf("DB peak inflight %d; expected queueing beyond 2 workers", sys.DB.PeakInflight())
	}
	// The pool itself never admits more than 2 concurrently.
	if sys.DB.Workers().InUse() != 0 {
		t.Fatal("workers still in use after drain")
	}
}
