package ntier

import (
	"fmt"
	"time"

	"github.com/gt-elba/milliscope/internal/des"
	"github.com/gt-elba/milliscope/internal/resources"
)

// TierSpec configures one tier's machine and software limits.
type TierSpec struct {
	Node resources.NodeConfig
	// Workers is the software concurrency limit (Apache MaxClients, Tomcat
	// maxThreads, C-JDBC/MySQL connection pool size).
	Workers int
	// Conns caps the persistent connections to the downstream tier;
	// defaults to Workers when zero.
	Conns int
	// BaseLogBytes is the native per-visit logging volume with event
	// monitors disabled (access log, error log). Event monitors roughly
	// double it (Figure 10).
	BaseLogBytes int
	// BaseLogCPU is the CPU cost of native logging per visit.
	BaseLogCPU time.Duration
}

// Server is one tier instance: a node plus its worker pool and connection
// pools, with arrival/departure accounting for ground-truth queue lengths.
type Server struct {
	eng  *des.Engine
	kind TierKind
	name string
	node *resources.Node
	pool *des.Resource
	// conns feeds calls to the downstream tier; nil at the last tier.
	conns *connPool

	spec TierSpec

	observers []VisitObserver

	// inflight counts visits between UA and UD: the instantaneous queue
	// length ground truth (queued + in service).
	inflight     int
	peakInflight int
	visits       uint64

	// logAccumKB batches log-file bytes for periodic background writeback.
	logAccumKB float64
	extraLogKB float64 // cumulative monitor-added bytes, for Fig 10
	baseLogKB  float64 // cumulative native log bytes
}

// NewServer builds a tier server; downstreamConns may be zero at the DB tier.
func NewServer(eng *des.Engine, kind TierKind, spec TierSpec) *Server {
	if spec.Workers <= 0 {
		panic(fmt.Sprintf("ntier: tier %v with %d workers", kind, spec.Workers))
	}
	s := &Server{
		eng:  eng,
		kind: kind,
		name: spec.Node.Name,
		node: resources.NewNode(eng, spec.Node),
		pool: des.NewResource(eng, spec.Node.Name+"/workers", spec.Workers),
		spec: spec,
	}
	conns := spec.Conns
	if conns == 0 {
		conns = spec.Workers
	}
	if kind != TierDB {
		s.conns = newConnPool(spec.Node.Name, conns)
	}
	return s
}

// Name returns the server's hostname (e.g. "apache").
func (s *Server) Name() string { return s.name }

// Kind returns the tier role.
func (s *Server) Kind() TierKind { return s.kind }

// Node exposes the machine for resource monitors.
func (s *Server) Node() *resources.Node { return s.node }

// Spec returns the tier configuration.
func (s *Server) Spec() TierSpec { return s.spec }

// Workers returns the worker-pool resource (for queue inspection).
func (s *Server) Workers() *des.Resource { return s.pool }

// Inflight returns the instantaneous number of requests resident at this
// tier (queued plus in service) — the ground-truth queue length.
func (s *Server) Inflight() int { return s.inflight }

// PeakInflight returns the maximum observed queue length.
func (s *Server) PeakInflight() int { return s.peakInflight }

// Visits returns the number of completed visits.
func (s *Server) Visits() uint64 { return s.visits }

// Observe registers a visit observer (an event monitor).
func (s *Server) Observe(o VisitObserver) {
	if o == nil {
		panic("ntier: nil visit observer")
	}
	s.observers = append(s.observers, o)
}

// arrive marks a visit's UA instant.
func (s *Server) arrive() {
	s.inflight++
	if s.inflight > s.peakInflight {
		s.peakInflight = s.inflight
	}
}

// depart marks a visit's UD instant and notifies observers.
func (s *Server) depart(v *Visit) {
	if s.inflight <= 0 {
		panic(fmt.Sprintf("ntier: %s inflight underflow", s.name))
	}
	s.inflight--
	s.visits++
	// Native logging happens on every visit regardless of monitoring.
	s.ChargeLog(s.spec.BaseLogBytes, s.spec.BaseLogCPU, false)
	for _, o := range s.observers {
		o.OnVisitComplete(v)
	}
}

// ChargeLog accounts one log record: bytes dirty the page cache and join
// the periodic writeback batch; cpu is burned in system mode. extra marks
// monitor-added volume (tracked separately for the Figure 10 comparison).
func (s *Server) ChargeLog(bytes int, cpu time.Duration, extra bool) {
	if bytes < 0 {
		panic(fmt.Sprintf("ntier: negative log size %d", bytes))
	}
	if bytes > 0 {
		s.node.Mem.Dirty(bytes)
		kb := float64(bytes) / 1024
		s.logAccumKB += kb
		if extra {
			s.extraLogKB += kb
		} else {
			s.baseLogKB += kb
		}
	}
	if cpu > 0 {
		s.node.CPU.Exec(cpu, resources.ModeSystem, nil)
	}
}

// LogVolumeKB returns cumulative native and monitor-added log bytes.
func (s *Server) LogVolumeKB() (baseKB, extraKB float64) {
	return s.baseLogKB, s.extraLogKB
}

// startLogWriteback schedules the periodic background flush of accumulated
// log bytes to the node's disk, the mechanism whose IOWait cost Figure 10
// measures.
func (s *Server) startLogWriteback(period time.Duration, until des.Time) {
	s.eng.Every(des.Time(period), period, func(now des.Time) bool {
		if s.logAccumKB >= 1 {
			s.node.Disk.WriteAsync(int(s.logAccumKB * 1024))
			s.logAccumKB = 0
		}
		return now >= until
	})
}
