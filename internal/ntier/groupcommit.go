package ntier

import (
	"time"

	"github.com/gt-elba/milliscope/internal/des"
	"github.com/gt-elba/milliscope/internal/resources"
)

// groupCommit batches MySQL redo-log flushes: commits arriving within one
// flush interval share a single synchronous disk write, the standard
// group-commit optimization. The paper's first VSB scenario (Section V-A)
// is precisely a long flush of accumulated redo pages saturating this disk.
type groupCommit struct {
	eng      *des.Engine
	disk     *resources.Disk
	interval time.Duration

	pendingKB int
	waiters   []func()
	scheduled bool
	flushes   uint64
}

func newGroupCommit(eng *des.Engine, disk *resources.Disk, interval time.Duration) *groupCommit {
	if interval <= 0 {
		panic("ntier: non-positive group-commit interval")
	}
	return &groupCommit{eng: eng, disk: disk, interval: interval}
}

// Enqueue adds a commit to the current batch; done runs when the batch's
// disk write completes (commit durability point).
func (g *groupCommit) Enqueue(kb int, done func()) {
	if kb <= 0 {
		kb = 1
	}
	g.pendingKB += kb
	g.waiters = append(g.waiters, done)
	if !g.scheduled {
		g.scheduled = true
		g.eng.After(g.interval, g.flush)
	}
}

func (g *groupCommit) flush() {
	waiters := g.waiters
	kb := g.pendingKB
	g.waiters = nil
	g.pendingKB = 0
	g.scheduled = false
	if len(waiters) == 0 {
		return
	}
	g.flushes++
	g.disk.Write(kb*1024, func() {
		for _, w := range waiters {
			if w != nil {
				w()
			}
		}
	})
}

// Flushes returns the number of batch writes issued.
func (g *groupCommit) Flushes() uint64 { return g.flushes }
