// Package ntier simulates the paper's four-tier testbed: Apache (web) →
// Tomcat (application) → C-JDBC (database middleware) → MySQL, driven by
// closed-loop RUBBoS user sessions. Worker threads block on synchronous
// downstream calls, so a slow lower tier exhausts upstream thread pools and
// produces the cross-tier queue "pushback" the paper analyzes.
//
// The simulator produces three kinds of observable output, matching the
// paper's measurement planes:
//
//   - event monitor hooks: every tier visit exposes the four boundary
//     timestamps (Upstream Arrival/Departure, Downstream Sending/Receiving)
//     to registered VisitObservers (the event mScopeMonitors);
//   - node resource state: CPU/disk/memory/network counters sampled by the
//     resource mScopeMonitors;
//   - a network tap: every inter-tier message is reported to a
//     MessageObserver (the SysViz comparator's input).
package ntier

import (
	"fmt"
	"time"

	"github.com/gt-elba/milliscope/internal/des"
	"github.com/gt-elba/milliscope/internal/rubbos"
)

// TierKind identifies a tier's role in the pipeline.
type TierKind int

// The four tiers of the paper's testbed (Figure 1).
const (
	TierWeb TierKind = iota + 1
	TierApp
	TierMiddleware
	TierDB
)

func (k TierKind) String() string {
	switch k {
	case TierWeb:
		return "web"
	case TierApp:
		return "app"
	case TierMiddleware:
		return "middleware"
	case TierDB:
		return "db"
	default:
		return fmt.Sprintf("TierKind(%d)", int(k))
	}
}

// Request is one client interaction flowing through the system.
type Request struct {
	// Serial is the simulator's ground-truth identity, assigned at
	// submission. Monitors must not rely on it; the event monitors assign
	// their own propagated ID (which happens to be derived from it, as the
	// real Apache module derives one from a counter).
	Serial uint64
	// Session is the emulated user that issued the request.
	Session int
	// IxIndex is the RUBBoS interaction index.
	IxIndex int
	// Interaction is the RUBBoS interaction definition.
	Interaction rubbos.Interaction
	// SubmitAt and DoneAt are client-side virtual times.
	SubmitAt des.Time
	DoneAt   des.Time
}

// ID returns the fixed-width request identifier the Apache event monitor
// inserts into the URL (Appendix A: "?ID=XXX").
func (r *Request) ID() string { return fmt.Sprintf("req-%010d", r.Serial) }

// Visit is one tier-level execution of a request: the unit that occupies a
// worker thread and yields one event-monitor log record. Apache and Tomcat
// see one visit per request; C-JDBC and MySQL see one visit per SQL query.
type Visit struct {
	Req    *Request
	Server *Server
	// Seq is the query index for per-query tiers (0 for web/app visits).
	Seq int
	// The paper's four boundary timestamps (Section IV-B), in virtual time.
	// DS and DR are zero for tiers that make no downstream call.
	UA, UD, DS, DR des.Time
	// SQL is the statement text for DB-bound visits (with the propagated
	// /*ID=...*/ comment when event monitors are enabled).
	SQL string
}

// LocalTime returns the visit's tier-local processing time: total residence
// minus time spent waiting on the downstream tier.
func (v *Visit) LocalTime() time.Duration {
	total := v.UD - v.UA
	if v.DS != 0 && v.DR >= v.DS {
		total -= v.DR - v.DS
	}
	return total
}

// VisitObserver receives completed visits; the event mScopeMonitors
// implement it to write their log records.
type VisitObserver interface {
	OnVisitComplete(v *Visit)
}

// MsgKind distinguishes request from response messages on the wire.
type MsgKind int

// Wire message kinds.
const (
	MsgRequest MsgKind = iota + 1
	MsgResponse
)

func (k MsgKind) String() string {
	switch k {
	case MsgRequest:
		return "REQ"
	case MsgResponse:
		return "RSP"
	default:
		return fmt.Sprintf("MsgKind(%d)", int(k))
	}
}

// Message is one inter-tier wire message as a passive network tap sees it.
// ReqSerial is ground truth carried for accuracy evaluation only; the
// SysViz reconstructor must not consult it when building traces.
type Message struct {
	Conn      string
	Src, Dst  string
	Kind      MsgKind
	SentAt    des.Time
	RecvAt    des.Time
	Bytes     int
	ReqSerial uint64
}

// MessageObserver receives every wire message (the network tap).
type MessageObserver interface {
	OnMessage(m Message)
}

// connPool hands out persistent-connection identifiers for calls between a
// fixed (src, dst) tier pair. A connection carries one outstanding request
// at a time (workers block synchronously), matching ModJK / JDBC pools.
// When every connection is in use, acquirers queue FIFO — a worker blocked
// here holds its tier's thread, which is exactly how pool exhaustion
// amplifies into cross-tier queue growth.
type connPool struct {
	prefix  string
	free    []string
	made    int
	limit   int
	waiters []func(string)
	waits   uint64
}

func newConnPool(prefix string, limit int) *connPool {
	if limit <= 0 {
		panic(fmt.Sprintf("ntier: conn pool %q with limit %d", prefix, limit))
	}
	return &connPool{prefix: prefix, limit: limit}
}

// Acquire hands fn a connection id, growing the pool up to its limit. With
// the pool exhausted, fn queues FIFO and runs when a connection is Put
// back. Pools are sized to worker counts, so a healthy run never queues;
// only the conn-pool-seize injector creates the blocked state.
func (p *connPool) Acquire(fn func(conn string)) {
	if n := len(p.free); n > 0 {
		c := p.free[n-1]
		p.free = p.free[:n-1]
		fn(c)
		return
	}
	if p.made < p.limit {
		p.made++
		fn(fmt.Sprintf("%s#%03d", p.prefix, p.made))
		return
	}
	p.waits++
	p.waiters = append(p.waiters, fn)
}

// Put returns a connection id to the pool, handing it to the head waiter
// if any caller is blocked.
func (p *connPool) Put(c string) {
	if len(p.waiters) > 0 {
		fn := p.waiters[0]
		p.waiters = p.waiters[1:]
		fn(c)
		return
	}
	p.free = append(p.free, c)
}

// Waiting returns the number of callers blocked on an exhausted pool.
func (p *connPool) Waiting() int { return len(p.waiters) }

// Waits returns the cumulative count of acquisitions that had to block.
func (p *connPool) Waits() uint64 { return p.waits }
