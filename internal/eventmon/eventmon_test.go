package eventmon

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/gt-elba/milliscope/internal/ntier"
)

func runInstrumented(t *testing.T, cfgMod func(*ntier.Config)) (*ntier.System, *ntier.Driver, *Set, string) {
	t.Helper()
	cfg := ntier.DefaultConfig()
	cfg.Users = 50
	cfg.Duration = 1500 * time.Millisecond
	cfg.ThinkTime = 300 * time.Millisecond
	cfg.Seed = 5
	if cfgMod != nil {
		cfgMod(&cfg)
	}
	sys := ntier.New(cfg)
	dir := t.TempDir()
	set, err := Attach(sys, dir)
	if err != nil {
		t.Fatalf("attach: %v", err)
	}
	d := ntier.Run(sys)
	if err := set.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	return sys, d, set, dir
}

func TestMonitorsWriteAllFourLogs(t *testing.T) {
	sys, d, set, dir := runInstrumented(t, nil)
	if len(d.Completed) == 0 {
		t.Fatal("no requests completed")
	}
	for name, path := range set.Paths {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("read %s log: %v", name, err)
		}
		if len(data) == 0 {
			t.Fatalf("%s log is empty", name)
		}
	}
	// Visit counts must equal log record counts.
	apache, err := os.ReadFile(filepath.Join(dir, ApacheLogName))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(string(apache), "\n")
	if uint64(lines) != sys.Web.Visits() {
		t.Fatalf("apache log has %d lines, server saw %d visits", lines, sys.Web.Visits())
	}
}

func TestRequestIDPropagation(t *testing.T) {
	_, d, _, dir := runInstrumented(t, nil)
	id := d.Completed[0].ID()
	for _, name := range []string{ApacheLogName, TomcatLogName, CJDBCLogName} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(string(data), id) {
			t.Fatalf("%s does not contain request ID %s", name, id)
		}
	}
	// MySQL carries it in a comment only for query-issuing interactions.
	data, err := os.ReadFile(filepath.Join(dir, MySQLLogName))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "/*ID=req-") {
		t.Fatal("mysql slow log has no propagated ID comments")
	}
}

func TestMySQLLogHasHeader(t *testing.T) {
	_, _, _, dir := runInstrumented(t, nil)
	data, err := os.ReadFile(filepath.Join(dir, MySQLLogName))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "/usr/sbin/mysqld") {
		t.Fatal("mysql slow log missing file header")
	}
}

func TestMonitorOverheadCharged(t *testing.T) {
	sys, _, _, _ := runInstrumented(t, nil)
	for _, s := range sys.Servers() {
		base, extra := s.LogVolumeKB()
		if extra <= 0 {
			t.Fatalf("%s monitors charged no extra log bytes", s.Name())
		}
		// The paper reports aggregated disk writes "up to two times";
		// monitor volume must be within 0.5x..4x of native volume.
		ratio := extra / base
		if ratio < 0.5 || ratio > 4 {
			t.Fatalf("%s extra/base log ratio %.2f outside plausible band", s.Name(), ratio)
		}
	}
}

func TestRecordsCounter(t *testing.T) {
	sys, _, set, _ := runInstrumented(t, nil)
	var visits uint64
	for _, s := range sys.Servers() {
		visits += s.Visits()
	}
	if set.Records() != visits {
		t.Fatalf("set recorded %d records, servers saw %d visits", set.Records(), visits)
	}
}

func TestTimestampsUseSkewedClocks(t *testing.T) {
	_, _, _, dir := runInstrumented(t, nil)
	// The apache node's clock is +180µs: its UA micros must not equal the
	// tomcat node's for corresponding records; just sanity-check the logs
	// parse as µs-epoch values in 2017.
	data, err := os.ReadFile(filepath.Join(dir, ApacheLogName))
	if err != nil {
		t.Fatal(err)
	}
	line := strings.SplitN(string(data), "\n", 2)[0]
	if !strings.Contains(line, "UA=149") { // 2017 epoch µs prefix
		t.Fatalf("apache UA not a 2017 epoch-micros value: %s", line)
	}
}

func TestCloseIsIdempotent(t *testing.T) {
	_, _, set, _ := runInstrumented(t, nil)
	if err := set.Close(); err != nil {
		t.Fatalf("second close errored: %v", err)
	}
}

func TestAttachBadDir(t *testing.T) {
	cfg := ntier.DefaultConfig()
	cfg.Users = 1
	sys := ntier.New(cfg)
	// A file where the directory should be.
	f := filepath.Join(t.TempDir(), "occupied")
	if err := os.WriteFile(f, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Attach(sys, f); err == nil {
		t.Fatal("attach into a file path did not error")
	}
}
