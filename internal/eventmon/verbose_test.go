package eventmon

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/gt-elba/milliscope/internal/ntier"
)

// runWithConfig runs a short trial with a specific monitor config.
func runWithConfig(t *testing.T, cfg Config) (*ntier.System, string) {
	t.Helper()
	ncfg := ntier.DefaultConfig()
	ncfg.Users = 30
	ncfg.Duration = time.Second
	ncfg.ThinkTime = 250 * time.Millisecond
	ncfg.Seed = 13
	sys := ntier.New(ncfg)
	dir := t.TempDir()
	set, err := AttachWithConfig(sys, dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ntier.Run(sys)
	if err := set.Close(); err != nil {
		t.Fatal(err)
	}
	return sys, dir
}

func TestVerbosePhaseDetailWritesExtraRecords(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PhaseDetail = 3
	sys, dir := runWithConfig(t, cfg)
	data, err := os.ReadFile(filepath.Join(dir, TomcatLogName))
	if err != nil {
		t.Fatal(err)
	}
	content := string(data)
	phases := strings.Count(content, "# PHASE")
	visits := int(sys.App.Visits())
	if phases != 3*visits {
		t.Fatalf("%d phase records for %d visits, want %d", phases, visits, 3*visits)
	}
	// Phase records carry the request ID for correlation.
	if !strings.Contains(content, "# PHASE 0 id=req-") {
		t.Fatal("phase records lack request IDs")
	}
}

func TestVerboseModeInflatesLogVolume(t *testing.T) {
	minimal, _ := runWithConfig(t, DefaultConfig())
	verbose := DefaultConfig()
	verbose.PhaseDetail = 6
	verboseSys, _ := runWithConfig(t, verbose)

	_, minExtra := minimal.App.LogVolumeKB()
	_, verbExtra := verboseSys.App.LogVolumeKB()
	ratio := verbExtra / minExtra
	if ratio < 2 {
		t.Fatalf("verbose/minimal volume ratio %.2f, want >2", ratio)
	}
}

func TestCustomOverheadCharged(t *testing.T) {
	heavy := DefaultConfig()
	heavy.Apache.CPUPerRecord = 2 * time.Millisecond
	sys, _ := runWithConfig(t, heavy)
	snap := sys.Web.Node().Snap()
	// ~30 users / 250ms think * 1s ≈ 100+ visits * 2ms = ≥200ms system CPU.
	if time.Duration(snap.CPU.System) < 100*time.Millisecond {
		t.Fatalf("heavy per-record CPU not charged: system=%v",
			time.Duration(snap.CPU.System))
	}
}
