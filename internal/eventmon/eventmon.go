// Package eventmon implements the paper's event mScopeMonitors (Section
// IV): per-tier instrumentation that records the four boundary timestamps
// of every visit into each component's native log format, propagating a
// fixed-width request ID from the Apache URL down to SQL comments
// (Appendix A).
//
// The monitors trace every request — no sampling — and pay for it through
// the component's existing logging infrastructure: each record costs a
// small CPU charge (1–3% of a node's CPU at the paper's workloads) and
// roughly doubles the node's log write volume (Figure 10).
package eventmon

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"github.com/gt-elba/milliscope/internal/logfmt"
	"github.com/gt-elba/milliscope/internal/ntier"
)

// Standard log file names; the transform pipeline's Parsing Declaration
// stage binds parsers to these patterns.
const (
	ApacheLogName = "apache_access.log"
	TomcatLogName = "tomcat_mscope.log"
	CJDBCLogName  = "cjdbc_ctrl.log"
	MySQLLogName  = "mysql_slow.log"
)

// Overhead models the cost of writing one monitor record on a tier.
type Overhead struct {
	// CPUPerRecord is burned in system mode per log record.
	CPUPerRecord time.Duration
}

// Config tunes per-tier monitor overheads.
type Config struct {
	Apache, Tomcat, CJDBC, MySQL Overhead

	// PhaseDetail enables verbose per-phase tracing: each visit writes
	// this many additional phase records (lock acquisition, handler
	// entry/exit, marshalling, ...) beyond the paper's minimal
	// four-timestamp record. Zero is the paper's design. Verbose logs are
	// an overhead ablation only — the standard declarations do not parse
	// the extra records.
	PhaseDetail int
}

// DefaultConfig matches the paper's measured overheads: ~1% CPU for Apache
// and C-JDBC, ~3% for Tomcat (its extra logging thread handles the
// variable-width downstream records), modest for MySQL's slow-query log.
func DefaultConfig() Config {
	return Config{
		Apache: Overhead{CPUPerRecord: 70 * time.Microsecond},
		Tomcat: Overhead{CPUPerRecord: 210 * time.Microsecond},
		CJDBC:  Overhead{CPUPerRecord: 18 * time.Microsecond},
		MySQL:  Overhead{CPUPerRecord: 40 * time.Microsecond},
	}
}

// Set is the collection of event monitors attached to a system, one per
// tier, writing into a log directory.
type Set struct {
	// Paths maps monitor name ("apache", "tomcat", "cjdbc", "mysql") to
	// its log file path.
	Paths map[string]string

	files   []*os.File
	writers []*bufio.Writer
	records uint64
}

// Attach instruments every tier of the system with default overheads,
// writing log files into dir.
func Attach(sys *ntier.System, dir string) (*Set, error) {
	return AttachWithConfig(sys, dir, DefaultConfig())
}

// AttachWithConfig instruments every tier with explicit overheads.
func AttachWithConfig(sys *ntier.System, dir string, cfg Config) (*Set, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("eventmon: create log dir: %w", err)
	}
	set := &Set{Paths: make(map[string]string)}
	open := func(name string) (*bufio.Writer, string, error) {
		p := filepath.Join(dir, name)
		f, err := os.Create(p)
		if err != nil {
			return nil, "", fmt.Errorf("eventmon: create %s: %w", p, err)
		}
		set.files = append(set.files, f)
		w := bufio.NewWriterSize(f, 1<<16)
		set.writers = append(set.writers, w)
		return w, p, nil
	}

	apacheW, apachePath, err := open(ApacheLogName)
	if err != nil {
		return nil, err
	}
	tomcatW, tomcatPath, err := open(TomcatLogName)
	if err != nil {
		set.Close()
		return nil, err
	}
	cjdbcW, cjdbcPath, err := open(CJDBCLogName)
	if err != nil {
		set.Close()
		return nil, err
	}
	mysqlW, mysqlPath, err := open(MySQLLogName)
	if err != nil {
		set.Close()
		return nil, err
	}
	if _, err := mysqlW.WriteString(logfmt.MySQLHeader()); err != nil {
		set.Close()
		return nil, fmt.Errorf("eventmon: write mysql header: %w", err)
	}
	set.Paths["apache"] = apachePath
	set.Paths["tomcat"] = tomcatPath
	set.Paths["cjdbc"] = cjdbcPath
	set.Paths["mysql"] = mysqlPath

	sys.Web.Observe(&monitor{set: set, w: apacheW, cpu: cfg.Apache.CPUPerRecord,
		format: formatApache, phases: cfg.PhaseDetail})
	sys.App.Observe(&monitor{set: set, w: tomcatW, cpu: cfg.Tomcat.CPUPerRecord,
		format: formatTomcat, phases: cfg.PhaseDetail})
	sys.Mid.Observe(&monitor{set: set, w: cjdbcW, cpu: cfg.CJDBC.CPUPerRecord,
		format: formatCJDBC, phases: cfg.PhaseDetail})
	sys.DB.Observe(&monitor{set: set, w: mysqlW, cpu: cfg.MySQL.CPUPerRecord,
		format: formatMySQL, phases: cfg.PhaseDetail})
	return set, nil
}

// Records returns the number of monitor records written.
func (s *Set) Records() uint64 { return s.records }

// Close flushes and closes every monitor log file. It must be called after
// the simulation finishes and before the transform pipeline reads the logs.
func (s *Set) Close() error {
	var firstErr error
	for _, w := range s.writers {
		if err := w.Flush(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("eventmon: flush: %w", err)
		}
	}
	for _, f := range s.files {
		if err := f.Close(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("eventmon: close: %w", err)
		}
	}
	s.writers = nil
	s.files = nil
	return firstErr
}

// monitor is one tier's event mScopeMonitor.
type monitor struct {
	set    *Set
	w      *bufio.Writer
	cpu    time.Duration
	format func(v *ntier.Visit) string
	phases int
}

var _ ntier.VisitObserver = (*monitor)(nil)

// OnVisitComplete writes the visit's record in the component's native
// format and charges the logging overhead to the component's node.
func (m *monitor) OnVisitComplete(v *ntier.Visit) {
	rec := m.format(v)
	if _, err := m.w.WriteString(rec); err != nil {
		// A full disk aborts the experiment: there is no sensible way to
		// continue a tracing run that silently drops records.
		panic(fmt.Sprintf("eventmon: write record: %v", err))
	}
	m.set.records++
	bytes := len(rec)
	cpu := m.cpu
	for p := 0; p < m.phases; p++ {
		line := fmt.Sprintf("# PHASE %d id=%s tier=%s t=%d dur_us=%d ctx=worker/%d\n",
			p, v.Req.ID(), v.Server.Name(), v.Server.Node().Wall(v.UA).UnixMicro(),
			(v.UD - v.UA).Microseconds(), v.Req.Serial%64)
		if _, err := m.w.WriteString(line); err != nil {
			panic(fmt.Sprintf("eventmon: write phase record: %v", err))
		}
		bytes += len(line)
		cpu += m.cpu / 2
	}
	v.Server.ChargeLog(bytes, cpu, true)
}

// wall converts the four virtual boundary timestamps to the node's skewed
// wall clock; zero virtual timestamps (no downstream call) stay zero.
func wall(v *ntier.Visit) (ua, ud, ds, dr time.Time) {
	n := v.Server.Node()
	ua = n.Wall(v.UA)
	ud = n.Wall(v.UD)
	if v.DS != 0 {
		ds = n.Wall(v.DS)
	}
	if v.DR != 0 {
		dr = n.Wall(v.DR)
	}
	return ua, ud, ds, dr
}

func formatApache(v *ntier.Visit) string {
	ua, ud, ds, dr := wall(v)
	uri := fmt.Sprintf("%s?ID=%s", v.Req.Interaction.URI, v.Req.ID())
	clientIP := fmt.Sprintf("10.1.%d.%d", v.Req.Session/250+1, v.Req.Session%250+1)
	return logfmt.ApacheAccess(clientIP, "GET", uri, 200,
		v.Req.Interaction.RespKB*1024, ua, ud, ds, dr) + "\n"
}

func formatTomcat(v *ntier.Visit) string {
	ua, ud, ds, dr := wall(v)
	thread := int(v.Req.Serial%25) + 1
	return logfmt.TomcatLine(thread, v.Req.ID(), v.Req.Interaction.URI, ua, ud, ds, dr) + "\n"
}

func formatCJDBC(v *ntier.Visit) string {
	ua, ud, ds, dr := wall(v)
	return logfmt.CJDBCLine("rubbos", v.Req.ID(), v.Seq, ua, ud, ds, dr, v.SQL) + "\n"
}

func formatMySQL(v *ntier.Visit) string {
	ua, ud, _, _ := wall(v)
	connID := int(v.Req.Serial%60) + 10
	rowsSent := 1 + int(v.Req.Serial%10)
	return logfmt.MySQLSlowRecord(connID, ua, ud, rowsSent, rowsSent*37,
		v.SQL, v.Req.ID(), v.Seq)
}
