// Package core orchestrates milliScope end to end: it assembles the
// simulated testbed, deploys event and resource mScopeMonitors, runs a
// trial, pushes the produced logs through mScopeDataTransformer into
// mScopeDB, and derives the paper's figures from the warehouse.
package core

import (
	"fmt"
	"time"

	"github.com/gt-elba/milliscope/internal/bottleneck"
	"github.com/gt-elba/milliscope/internal/des"
	"github.com/gt-elba/milliscope/internal/eventmon"
	"github.com/gt-elba/milliscope/internal/mscopedb"
	"github.com/gt-elba/milliscope/internal/netcap"
	"github.com/gt-elba/milliscope/internal/ntier"
	"github.com/gt-elba/milliscope/internal/resmon"
	"github.com/gt-elba/milliscope/internal/simtime"
	"github.com/gt-elba/milliscope/internal/transform"
)

// ExperimentConfig describes one monitored trial.
type ExperimentConfig struct {
	// Name labels the experiment in the warehouse metadata.
	Name string
	// Ntier is the testbed and workload configuration.
	Ntier ntier.Config
	// EventMonitors attaches the event mScopeMonitors when true.
	EventMonitors bool
	// EventConfig tunes monitor overheads (zero value → defaults).
	EventConfig *eventmon.Config
	// Resmon deploys resource monitors; nil disables them.
	Resmon *resmon.Config
	// CaptureNet installs the passive network tap (SysViz input).
	CaptureNet bool
	// Injectors arm very short bottlenecks before the run.
	Injectors []bottleneck.Injector
	// LogDir receives monitor log files. Required when any monitor or the
	// tap is enabled.
	LogDir string
	// Warmup is excluded from client statistics (default 10% of duration).
	Warmup time.Duration
}

// ExperimentResult holds a completed trial.
type ExperimentResult struct {
	Config  ExperimentConfig
	Sys     *ntier.System
	Driver  *ntier.Driver
	Capture *netcap.Capture
	Stats   ntier.RunStats
	// EventLogs maps tier name to its event-monitor log path.
	EventLogs map[string]string
	// ResmonLogs maps "<node>/<kind>" to log path.
	ResmonLogs map[string]string
}

// RunExperiment executes one trial to completion (all monitors closed,
// all requests drained).
func RunExperiment(cfg ExperimentConfig) (*ExperimentResult, error) {
	if cfg.Name == "" {
		return nil, fmt.Errorf("core: experiment without a name")
	}
	needsDir := cfg.EventMonitors || cfg.Resmon != nil
	if needsDir && cfg.LogDir == "" {
		return nil, fmt.Errorf("core: experiment %s: monitors enabled but no log dir", cfg.Name)
	}
	sys := ntier.New(cfg.Ntier)

	res := &ExperimentResult{Config: cfg, Sys: sys}
	var evSet *eventmon.Set
	var err error
	if cfg.EventMonitors {
		evCfg := eventmon.DefaultConfig()
		if cfg.EventConfig != nil {
			evCfg = *cfg.EventConfig
		}
		evSet, err = eventmon.AttachWithConfig(sys, cfg.LogDir, evCfg)
		if err != nil {
			return nil, fmt.Errorf("core: %s: %w", cfg.Name, err)
		}
		res.EventLogs = evSet.Paths
	}
	var rmSet *resmon.Set
	if cfg.Resmon != nil {
		rmSet, err = resmon.Start(sys, cfg.LogDir, *cfg.Resmon, des.Time(cfg.Ntier.Duration))
		if err != nil {
			if evSet != nil {
				_ = evSet.Close()
			}
			return nil, fmt.Errorf("core: %s: %w", cfg.Name, err)
		}
		res.ResmonLogs = rmSet.Paths
	}
	if cfg.CaptureNet {
		res.Capture = netcap.New()
		sys.SetCapture(res.Capture)
	}
	bottleneck.InjectAll(sys, cfg.Injectors)

	res.Driver = ntier.Run(sys)

	if evSet != nil {
		if err := evSet.Close(); err != nil {
			return nil, fmt.Errorf("core: %s: close event monitors: %w", cfg.Name, err)
		}
	}
	if rmSet != nil {
		if err := rmSet.Close(); err != nil {
			return nil, fmt.Errorf("core: %s: close resource monitors: %w", cfg.Name, err)
		}
	}
	warmup := cfg.Warmup
	if warmup == 0 {
		warmup = cfg.Ntier.Duration / 10
	}
	res.Stats = res.Driver.Stats(warmup)
	return res, nil
}

// Ingest pushes the experiment's log directory through the transformation
// pipeline into a fresh warehouse and records experiment metadata in the
// static tables.
func (r *ExperimentResult) Ingest(workDir string) (*mscopedb.DB, transform.Report, error) {
	db := mscopedb.Open()
	rep, err := transform.IngestDir(db, r.Config.LogDir, workDir, transform.DefaultPlan())
	if err != nil {
		return nil, rep, fmt.Errorf("core: ingest %s: %w", r.Config.Name, err)
	}
	id, err := db.RecordExperiment(r.Config.Name, simtime.Epoch,
		r.Config.Ntier.Seed, r.Config.Ntier.Users, r.Config.Ntier.Duration,
		r.Config.Ntier.Mix.String())
	if err != nil {
		return nil, rep, err
	}
	for _, s := range r.Sys.Servers() {
		if err := db.RecordNode(id, s.Name(), s.Kind().String(),
			s.Node().Config().Cores, s.Spec().Workers); err != nil {
			return nil, rep, err
		}
	}
	for tier, path := range r.EventLogs {
		if err := db.RecordMonitor(id, tier, "event", path); err != nil {
			return nil, rep, err
		}
	}
	for key, path := range r.ResmonLogs {
		if err := db.RecordMonitor(id, key, "resource", path); err != nil {
			return nil, rep, err
		}
	}
	return db, rep, nil
}

// IOWaitPct returns a node's whole-run iowait as a percentage of total
// CPU time (the Figure 10 metric).
func IOWaitPct(s *ntier.Server, duration time.Duration) float64 {
	snap := s.Node().Snap()
	total := float64(duration.Nanoseconds()) * float64(s.Node().Config().Cores)
	if total <= 0 {
		return 0
	}
	return 100 * snap.CPU.IOWait / total
}

// CPUPct returns a node's whole-run CPU utilization percentage (user+sys).
func CPUPct(s *ntier.Server, duration time.Duration) float64 {
	snap := s.Node().Snap()
	total := float64(duration.Nanoseconds()) * float64(s.Node().Config().Cores)
	if total <= 0 {
		return 0
	}
	return 100 * (snap.CPU.User + snap.CPU.System) / total
}

// DiskWriteKB returns a node's cumulative disk write volume.
func DiskWriteKB(s *ntier.Server) float64 {
	snap := s.Node().Snap()
	return snap.DiskWriteKB
}
