package core

import (
	"testing"
	"time"

	"github.com/gt-elba/milliscope/internal/mscopedb"
)

// TestFiguresFailWithoutTables: figure builders against a warehouse
// missing the needed tables surface clean errors, never panics.
func TestFiguresFailWithoutTables(t *testing.T) {
	db := mscopedb.Open()
	if _, _, err := Fig2PointInTime(db, time.Millisecond); err == nil {
		t.Fatal("fig2 without apache_event accepted")
	}
	if _, _, err := Fig4DiskUtil(db, time.Millisecond); err == nil {
		t.Fatal("fig4 without collectl tables accepted")
	}
	if _, _, err := Fig6QueueLengths(db, time.Millisecond); err == nil {
		t.Fatal("fig6 without event tables accepted")
	}
	if _, _, err := Fig7Correlation(db, time.Millisecond, 0, 1); err == nil {
		t.Fatal("fig7 without tables accepted")
	}
	if _, _, err := Fig8DirtyPage(db, time.Millisecond); err == nil {
		t.Fatal("fig8 without tables accepted")
	}
	if _, err := Diagnose(db, time.Millisecond); err == nil {
		t.Fatal("diagnose without tables accepted")
	}
}

// TestDiagnoseWithoutResourceMonitors: an event-only warehouse (no
// collectl tables) fails with a useful error — diagnosis needs the
// resource plane, which is the paper's whole point.
func TestDiagnoseWithoutResourceMonitors(t *testing.T) {
	cfg := ScenarioDBIO(t.TempDir())
	cfg.Resmon = nil // event monitors only
	cfg.Ntier.Users = 50
	cfg.Ntier.Duration = 8 * time.Second
	res, err := RunExperiment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	db, _, err := res.Ingest(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Diagnose(db, 50*time.Millisecond); err == nil {
		t.Fatal("diagnose without resource tables accepted")
	}
	// But the event-only figures still work.
	if _, _, err := Fig2PointInTime(db, 50*time.Millisecond); err != nil {
		t.Fatalf("fig2 on event-only warehouse: %v", err)
	}
	if _, _, err := Fig6QueueLengths(db, 50*time.Millisecond); err != nil {
		t.Fatalf("fig6 on event-only warehouse: %v", err)
	}
}

// TestOverheadSweepValidation: malformed sweeps are rejected.
func TestOverheadSweepValidation(t *testing.T) {
	if _, err := Fig10Overhead(nil); err == nil {
		t.Fatal("empty sweep accepted")
	}
	bad := []OverheadPoint{{Workload: 1000, Enabled: true}}
	if _, err := Fig10Overhead(bad); err == nil {
		t.Fatal("unpaired sweep accepted")
	}
	mismatched := []OverheadPoint{
		{Workload: 1000, Enabled: true},
		{Workload: 2000, Enabled: false},
	}
	if _, err := Fig11ThroughputRT(mismatched); err == nil {
		t.Fatal("mismatched workloads accepted")
	}
}

// TestFig9WithoutCapture: reconstructing from an empty capture fails
// cleanly inside MatchTransactions/queue derivation rather than panicking.
func TestFig9EmptyCapture(t *testing.T) {
	cfg := ScenarioDBIO(t.TempDir())
	cfg.Ntier.Users = 20
	cfg.Ntier.Duration = time.Second
	cfg.Injectors = nil
	res, err := RunExperiment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	db, _, err := res.Ingest(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	figs, stats, err := Fig9Accuracy(db, nil, 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	// No tap messages → SysViz series empty → zero overlapping windows.
	if len(figs) != 4 {
		t.Fatalf("%d figures", len(figs))
	}
	for tier, st := range stats {
		if st.Windows != 0 {
			t.Fatalf("%s: %d windows from empty capture", tier, st.Windows)
		}
	}
}
