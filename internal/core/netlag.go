package core

import (
	"fmt"
	"sort"
	"strconv"
	"time"

	"github.com/gt-elba/milliscope/internal/mscopedb"
)

// netLagSeries derives an inter-tier network-lag series from two adjacent
// event tables: for every (reqid, seq) pair present in both, the lag is
// the downstream Upstream-Arrival minus the upstream Downstream-Sending
// timestamp — pure wire transit, since UA is stamped on message arrival
// (before any queueing) and DS once the sender holds a connection. Lags
// are bucketed by the upstream DS time and the per-bucket maximum is kept,
// so a jitter episode stands out of the baseline. A per-request upstream
// joins the seq-0 visit of a per-query downstream (its DS marks the first
// query's send), which samples one lag per request — enough for a series.
func netLagSeries(db *mscopedb.DB, up, down string, window time.Duration) (*mscopedb.Series, error) {
	sends, err := eventStamps(db, up+"_event", "ds")
	if err != nil {
		return nil, err
	}
	arrivals, err := eventStamps(db, down+"_event", "ua")
	if err != nil {
		return nil, err
	}
	w := window.Microseconds()
	if w <= 0 {
		return nil, fmt.Errorf("core: non-positive netlag window %v", window)
	}
	buckets := make(map[int64]float64)
	for key, ds := range sends {
		ua, ok := arrivals[key]
		if !ok || ds == 0 || ua < ds {
			continue
		}
		b := ds - ds%w
		if lag := float64(ua - ds); lag > buckets[b] {
			buckets[b] = lag
		}
	}
	if len(buckets) == 0 {
		return nil, nil
	}
	s := &mscopedb.Series{
		StartMicros: make([]int64, 0, len(buckets)),
		Values:      make([]float64, 0, len(buckets)),
	}
	for b := range buckets {
		s.StartMicros = append(s.StartMicros, b)
	}
	sort.Slice(s.StartMicros, func(i, j int) bool { return s.StartMicros[i] < s.StartMicros[j] })
	for _, b := range s.StartMicros {
		s.Values = append(s.Values, buckets[b])
	}
	return s, nil
}

// eventStamps extracts one timestamp column of an event table keyed by
// reqid#seq, skipping rows without the stamp (leaf tiers log "-" for DS).
func eventStamps(db *mscopedb.DB, table, col string) (map[string]int64, error) {
	tbl, err := db.Table(table)
	if err != nil {
		return nil, err
	}
	reqCI, tsCI, qCI := tbl.ColIndex("reqid"), tbl.ColIndex(col), tbl.ColIndex("q")
	if reqCI < 0 || tsCI < 0 {
		return nil, fmt.Errorf("core: %s lacks reqid/%s columns", table, col)
	}
	cols := tbl.Columns()
	out := make(map[string]int64, tbl.Rows())
	for r := 0; r < tbl.Rows(); r++ {
		id := tbl.Str(reqCI, r)
		if id == "" {
			continue
		}
		ts, err := eventMicros(tbl, cols, tsCI, r)
		if err != nil {
			return nil, err
		}
		if ts == 0 {
			continue
		}
		seq := int64(0)
		if qCI >= 0 {
			if seq, err = eventMicros(tbl, cols, qCI, r); err != nil {
				return nil, err
			}
		}
		out[id+"#"+strconv.FormatInt(seq, 10)] = ts
	}
	return out, nil
}

// eventMicros reads a numeric event cell that schema inference may have
// typed as int (pure numeric column) or string (column mixing numbers with
// the "-" no-downstream marker).
func eventMicros(tbl *mscopedb.Table, cols []mscopedb.Column, ci, row int) (int64, error) {
	switch cols[ci].Type {
	case mscopedb.TInt:
		return tbl.Int(ci, row), nil
	case mscopedb.TString:
		s := tbl.Str(ci, row)
		if s == "-" || s == "" {
			return 0, nil
		}
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return 0, fmt.Errorf("core: cell %q in %s.%s: %w", s, tbl.Name(), cols[ci].Name, err)
		}
		return v, nil
	default:
		return 0, fmt.Errorf("core: %s.%s: unsupported type %v", tbl.Name(), cols[ci].Name, cols[ci].Type)
	}
}
