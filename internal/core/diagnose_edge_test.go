package core

import (
	"testing"

	"github.com/gt-elba/milliscope/internal/analysis"
	"github.com/gt-elba/milliscope/internal/mscopedb"
)

// Synthetic evidence for ClassifyWindow edge cases: 50ms buckets over a 3s
// trial, with the window of interest at [1.0s, 1.1s].

const edgeBucketUS = 50_000

// synthSeries builds a 60-bucket series with v(i) per 50ms bucket.
func synthSeries(v func(i int) float64) *mscopedb.Series {
	s := &mscopedb.Series{}
	for i := 0; i < 60; i++ {
		s.StartMicros = append(s.StartMicros, int64(i)*edgeBucketUS)
		s.Values = append(s.Values, v(i))
	}
	return s
}

// spikeAt returns baseline except height over buckets [from, to].
func spikeAt(baseline, height float64, from, to int) func(int) float64 {
	return func(i int) float64 {
		if i >= from && i <= to {
			return height
		}
		return baseline
	}
}

func edgeWindow() analysis.Window {
	return analysis.Window{StartMicros: 1_000_000, EndMicros: 1_100_000, Peak: 500_000}
}

// TestClassifyWindowEdges drives ClassifyWindow through its degenerate and
// boundary inputs: it must never panic, never invent a cause, and resolve
// ambiguity deterministically.
func TestClassifyWindowEdges(t *testing.T) {
	// The spike builds over buckets 14–22: inside the window plus the
	// build-up the classifier inspects.
	grown := synthSeries(spikeAt(3, 60, 14, 22))
	flat := synthSeries(func(int) float64 { return 3 })
	cases := []struct {
		name     string
		ev       *Evidence
		wantKind CauseKind
		wantNode string
	}{
		{
			// No queues, no candidates, no gauges: the verdict must be
			// unknown, reached without touching any nil map.
			name:     "empty evidence",
			ev:       &Evidence{},
			wantKind: CauseUnknown,
		},
		{
			// A busy but constant gauge over a constant queue: Pearson is
			// defined as 0 for constant vectors, so a peak of 100 alone
			// must not be blamed.
			name: "zero correlation",
			ev: &Evidence{
				Queues: map[string]*mscopedb.Series{"apache": flat},
				Candidates: []ResourceCandidate{
					{Name: "mysql disk", Tier: "mysql", Kind: CauseDiskIO,
						Series: synthSeries(func(int) float64 { return 100 })},
				},
			},
			wantKind: CauseUnknown,
		},
		{
			// A correlated gauge that never got busy (peak below the
			// saturation floor) must not be blamed; with only the front
			// tier's queue grown, the structural reading — its downstream
			// connection pool — speaks instead.
			name: "correlated but idle gauge",
			ev: &Evidence{
				Queues: map[string]*mscopedb.Series{
					"apache": grown, "tomcat": flat, "cjdbc": flat, "mysql": flat,
				},
				Candidates: []ResourceCandidate{
					{Name: "mysql cpu", Tier: "mysql", Kind: CauseCPU,
						Series: synthSeries(spikeAt(1, 4, 14, 22))},
				},
			},
			wantKind: CauseConnPool,
			wantNode: "apache",
		},
		{
			// Queues grew at apache and tomcat while cjdbc — whose evidence
			// is present — stayed calm: the boundary tier's connection pool.
			name: "structural conn-pool",
			ev: &Evidence{
				Queues: map[string]*mscopedb.Series{
					"apache": grown, "tomcat": grown, "cjdbc": flat, "mysql": flat,
				},
			},
			wantKind: CauseConnPool,
			wantNode: "tomcat",
		},
		{
			// Same growth front, but the tier behind it contributes no
			// queue evidence at all: it stopped logging — a crash loop.
			name: "structural crash-loop",
			ev: &Evidence{
				Queues: map[string]*mscopedb.Series{
					"apache": grown, "tomcat": grown, "mysql": flat,
				},
			},
			wantKind: CauseCrashLoop,
			wantNode: "cjdbc",
		},
		{
			// Every tier down to the last grew with all gauges flat:
			// serialized software contention in the DB.
			name: "structural lock-convoy",
			ev: &Evidence{
				Queues: map[string]*mscopedb.Series{
					"apache": grown, "tomcat": grown, "cjdbc": grown, "mysql": grown,
				},
			},
			wantKind: CauseLockConvoy,
			wantNode: "mysql",
		},
		{
			// No gauge correlates but the tomcat→cjdbc link's lag rose far
			// above its baseline: the wire is the story.
			name: "net lag spike",
			ev: &Evidence{
				Queues: map[string]*mscopedb.Series{"apache": grown},
				NetLag: map[string]*mscopedb.Series{
					"cjdbc": synthSeries(spikeAt(300, 8000, 20, 21)),
				},
			},
			wantKind: CauseNetJitter,
			wantNode: "cjdbc",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			wd := ClassifyWindow(tc.ev, edgeWindow())
			if wd.Kind != tc.wantKind || wd.Node != tc.wantNode {
				t.Errorf("classified %s@%q (%s), want %s@%q",
					wd.Kind, wd.Node, wd.Verdict, tc.wantKind, tc.wantNode)
			}
		})
	}
}

// TestClassifyWindowIdenticalCandidates: two byte-identical gauge series on
// different tiers tie on both correlation and peak; the ranking must be
// stable, so the verdict deterministically goes to the first-listed
// candidate instead of flapping between runs.
func TestClassifyWindowIdenticalCandidates(t *testing.T) {
	queue := synthSeries(spikeAt(3, 60, 14, 22))
	gauge := synthSeries(spikeAt(5, 100, 14, 22))
	ev := &Evidence{
		Queues: map[string]*mscopedb.Series{"apache": queue},
		Candidates: []ResourceCandidate{
			{Name: "cjdbc disk", Tier: "cjdbc", Kind: CauseDiskIO, Series: gauge},
			{Name: "mysql disk", Tier: "mysql", Kind: CauseDiskIO, Series: gauge},
		},
	}
	wd := ClassifyWindow(ev, edgeWindow())
	if wd.Kind != CauseDiskIO || wd.Node != "cjdbc" {
		t.Errorf("classified %s@%s, want disk-io@cjdbc (stable order on a perfect tie)",
			wd.Kind, wd.Node)
	}
}

// TestSortCausesTieBreak: equal correlations must rank by in-window peak —
// the busier gauge is the likelier culprit.
func TestSortCausesTieBreak(t *testing.T) {
	causes := []analysis.Cause{
		{Name: "idle", Correlation: 0.8, PeakInWindow: 20},
		{Name: "busy", Correlation: 0.8, PeakInWindow: 95},
		{Name: "weak", Correlation: 0.4, PeakInWindow: 100},
	}
	sortCauses(causes)
	want := []string{"busy", "idle", "weak"}
	for i, w := range want {
		if causes[i].Name != w {
			t.Fatalf("rank %d is %s (r=%.2f peak=%.0f), want %s",
				i, causes[i].Name, causes[i].Correlation, causes[i].PeakInWindow, w)
		}
	}
}

// TestOverlappingVLRTWindows: two spike clusters a single healthy bucket
// apart yield two distinct VLRT windows whose padded classification slices
// overlap; each must classify independently against the shared evidence and
// reach the same disk verdict.
func TestOverlappingVLRTWindows(t *testing.T) {
	pit := synthSeries(func(i int) float64 {
		switch {
		case i >= 20 && i <= 21:
			return 500_000
		case i >= 23 && i <= 24:
			return 800_000
		default:
			return 10_000
		}
	})
	windows := analysis.DetectVLRTWindows(pit, 10_000, VLRTFactor, MaxVSBDuration)
	if len(windows) != 2 {
		t.Fatalf("%d VLRT windows, want 2 (windows: %+v)", len(windows), windows)
	}
	if windows[0].EndMicros > windows[1].StartMicros {
		t.Fatalf("detector merged the clusters: %+v", windows)
	}
	ev := &Evidence{
		Queues: map[string]*mscopedb.Series{"apache": synthSeries(spikeAt(3, 60, 18, 25))},
		Candidates: []ResourceCandidate{
			{Name: "mysql disk", Tier: "mysql", Kind: CauseDiskIO,
				Series: synthSeries(spikeAt(5, 100, 18, 25))},
		},
	}
	for i, w := range windows {
		wd := ClassifyWindow(ev, w)
		if wd.Kind != CauseDiskIO || wd.Node != "mysql" {
			t.Errorf("window %d classified %s@%s (%s), want disk-io@mysql",
				i, wd.Kind, wd.Node, wd.Verdict)
		}
	}
}
