package core

import (
	"testing"
	"time"

	"github.com/gt-elba/milliscope/internal/faults"
	"github.com/gt-elba/milliscope/internal/mscopedb"
	"github.com/gt-elba/milliscope/internal/tracegraph"
	"github.com/gt-elba/milliscope/internal/transform"
)

// quarantineIngest pushes a (possibly corrupted) log directory into a
// fresh warehouse under the Quarantine policy.
func quarantineIngest(t *testing.T, logDir string, budget float64) (*mscopedb.DB, transform.Report) {
	t.Helper()
	db := mscopedb.Open()
	rep, err := transform.IngestDirWithOptions(db, logDir, t.TempDir(),
		transform.DefaultPlan(), transform.Options{
			Policy: transform.Quarantine, ErrorBudget: budget})
	if err != nil {
		t.Fatalf("quarantine ingest: %v", err)
	}
	return db, rep
}

// topVerdict returns the first VLRT window's concluded cause.
func topVerdict(t *testing.T, db *mscopedb.DB) (CauseKind, string) {
	t.Helper()
	diag, err := Diagnose(db, 50*time.Millisecond)
	if err != nil {
		t.Fatalf("diagnose: %v", err)
	}
	if len(diag.Windows) == 0 {
		t.Fatal("no VLRT windows diagnosed")
	}
	return diag.Windows[0].Kind, diag.Windows[0].Node
}

// TestChaosSoakDiagnosisSurvivesCorruption is the end-to-end degraded-mode
// contract: run the Section V-A disk-IO scenario once, corrupt its log
// directory at increasing fault rates, and at every rate up to the
// documented 1% threshold the quarantine pipeline must reach the same
// bottleneck verdict as the clean run. Skipped in -short mode.
func TestChaosSoakDiagnosisSurvivesCorruption(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak skipped in -short mode")
	}
	cfg := ScenarioDBIO(t.TempDir())
	cfg.Name = "chaos-soak"
	if _, err := RunExperiment(cfg); err != nil {
		t.Fatal(err)
	}

	// Clean baseline: the redo-log flush diagnoses as disk-io at mysql.
	cleanDB, cleanRep := quarantineIngest(t, cfg.LogDir, 0)
	if cleanRep.TotalQuarantined() != 0 || len(cleanRep.Failed) != 0 {
		t.Fatalf("clean logs quarantined something: %+v", cleanRep)
	}
	cleanKind, cleanNode := topVerdict(t, cleanDB)
	if cleanKind != CauseDiskIO || cleanNode != "mysql" {
		t.Fatalf("clean verdict %s@%s, want disk-io@mysql", cleanKind, cleanNode)
	}

	// Degraded runs: the documented threshold is a 1% per-line fault rate
	// (garbage + torn + duplicate + tail truncation) under a 25% per-file
	// error budget. The budget is ~25× the line rate because multi-line
	// formats amplify damage: one fault inside a five-line MySQL record
	// quarantines the buffered partial record plus every orphaned line
	// until the next record boundary, so the damaged-region ratio runs up
	// to ~5× the line fault rate on that file.
	for _, rate := range []float64{0.002, 0.005, 0.01} {
		corrupted := t.TempDir()
		frep, err := faults.Corrupt(cfg.LogDir, corrupted, faults.Config{
			Seed: 1234, Rate: rate})
		if err != nil {
			t.Fatal(err)
		}
		injected := 0
		for _, k := range faults.LineKinds() {
			injected += frep.Total(k)
		}
		if injected == 0 {
			t.Fatalf("rate %v injected nothing", rate)
		}
		db, rep := quarantineIngest(t, corrupted, 0.25)
		if rep.TotalQuarantined() == 0 {
			t.Errorf("rate %v: corruption injected but nothing quarantined", rate)
		}
		if len(rep.Failed) != 0 {
			t.Errorf("rate %v: files rejected under the documented threshold: %+v", rate, rep.Failed)
		}
		kind, node := topVerdict(t, db)
		if kind != cleanKind || node != cleanNode {
			t.Errorf("rate %v: degraded verdict %s@%s diverged from clean %s@%s",
				rate, kind, node, cleanKind, cleanNode)
		}
	}
}

// TestChaosDeleteTierPartialTraces: losing an entire mid-tier log must
// yield partial traces with a coverage metric and a degraded (not failed)
// diagnosis — the missing-tier acceptance criterion. Skipped in -short.
func TestChaosDeleteTierPartialTraces(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos delete-tier test skipped in -short mode")
	}
	cfg := ScenarioDBIO(t.TempDir())
	cfg.Name = "chaos-deltier"
	if _, err := RunExperiment(cfg); err != nil {
		t.Fatal(err)
	}
	corrupted := t.TempDir()
	if _, err := faults.Corrupt(cfg.LogDir, corrupted, faults.Config{
		Seed: 7, Kinds: []faults.Kind{faults.KindDeleteTier},
		DeleteTiers: []string{"cjdbc"}}); err != nil {
		t.Fatal(err)
	}
	db, _ := quarantineIngest(t, corrupted, 0)

	tables := make([]string, len(Tiers))
	for i, tier := range Tiers {
		tables[i] = tier + "_event"
	}
	traces, cov, err := tracegraph.BuildPartial(db, tables)
	if err != nil {
		t.Fatal(err)
	}
	if !cov.Degraded() || cov.Partial == 0 {
		t.Fatalf("deleted tier produced no partial traces: %+v", cov)
	}
	if cov.Total != len(traces) || cov.Complete+cov.Partial != cov.Total {
		t.Fatalf("coverage counts inconsistent: %+v", cov)
	}
	sawIncomplete := false
	for _, tr := range traces {
		if tr.Complete() {
			continue
		}
		sawIncomplete = true
		if len(tr.MissingTiers) == 0 || tr.MissingTiers[0] != "cjdbc" {
			t.Fatalf("trace %s missing tiers %v, want cjdbc", tr.ReqID, tr.MissingTiers)
		}
		if c := tr.Coverage(); c <= 0 || c >= 1 {
			t.Fatalf("trace %s coverage %v, want in (0,1)", tr.ReqID, c)
		}
	}
	if !sawIncomplete {
		t.Fatal("no incomplete traces despite a deleted tier")
	}

	// Diagnosis degrades instead of failing: the cjdbc queue sensor is
	// recorded missing, and the disk-io verdict still lands on mysql.
	diag, err := Diagnose(db, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if !diag.Degraded() {
		t.Fatal("diagnosis not marked degraded with cjdbc_event missing")
	}
	found := false
	for _, s := range diag.MissingSources {
		if s == "cjdbc_event" {
			found = true
		}
	}
	if !found {
		t.Fatalf("missing sources %v lack cjdbc_event", diag.MissingSources)
	}
	if len(diag.Windows) == 0 || diag.Windows[0].Kind != CauseDiskIO || diag.Windows[0].Node != "mysql" {
		t.Fatalf("degraded diagnosis diverged: %+v", diag.Windows)
	}
}
