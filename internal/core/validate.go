package core

import (
	"fmt"
	"time"

	"github.com/gt-elba/milliscope/internal/metrics"
	"github.com/gt-elba/milliscope/internal/mscopedb"
)

// ConsistencyReport is the warehouse integrity check: the event monitors
// trace every request without sampling, so records must conserve across
// tiers — a mismatch means a monitor dropped or duplicated records.
type ConsistencyReport struct {
	// RowCounts per event table.
	RowCounts map[string]int
	// Problems lists every detected violation (empty = consistent).
	Problems []string
	// Littles holds the per-tier λ/W/L profile (informational).
	Littles map[string]*metrics.LittlesLawReport
}

// OK reports whether the warehouse passed every check.
func (r *ConsistencyReport) OK() bool { return len(r.Problems) == 0 }

// ValidateWarehouse cross-checks the four event tables of a fully drained
// trial:
//
//  1. Apache and Tomcat see every request exactly once each.
//  2. C-JDBC and MySQL see every query exactly once each.
//  3. Every request ID at a downstream tier exists at the front tier.
func ValidateWarehouse(db *mscopedb.DB) (*ConsistencyReport, error) {
	rep := &ConsistencyReport{
		RowCounts: make(map[string]int),
		Littles:   make(map[string]*metrics.LittlesLawReport),
	}
	tables := make(map[string]*mscopedb.Table, len(Tiers))
	for _, tier := range Tiers {
		tbl, err := db.Table(tier + "_event")
		if err != nil {
			return nil, err
		}
		tables[tier] = tbl
		rep.RowCounts[tier] = tbl.Rows()
		if ll, err := metrics.LittlesLaw(tbl); err == nil {
			rep.Littles[tier] = ll
		}
	}
	if rep.RowCounts["apache"] != rep.RowCounts["tomcat"] {
		rep.Problems = append(rep.Problems, fmt.Sprintf(
			"request conservation violated: apache=%d tomcat=%d records",
			rep.RowCounts["apache"], rep.RowCounts["tomcat"]))
	}
	if rep.RowCounts["cjdbc"] != rep.RowCounts["mysql"] {
		rep.Problems = append(rep.Problems, fmt.Sprintf(
			"query conservation violated: cjdbc=%d mysql=%d records",
			rep.RowCounts["cjdbc"], rep.RowCounts["mysql"]))
	}
	// Downstream IDs must exist upstream.
	front, err := reqIDSet(tables["apache"])
	if err != nil {
		return nil, err
	}
	for _, tier := range []string{"tomcat", "cjdbc", "mysql"} {
		ids, err := reqIDSet(tables[tier])
		if err != nil {
			return nil, err
		}
		missing := 0
		for id := range ids {
			if !front[id] {
				missing++
			}
		}
		if missing > 0 {
			rep.Problems = append(rep.Problems, fmt.Sprintf(
				"%d request IDs at %s absent from apache", missing, tier))
		}
	}
	return rep, nil
}

func reqIDSet(tbl *mscopedb.Table) (map[string]bool, error) {
	ci := tbl.ColIndex("reqid")
	if ci < 0 {
		return nil, fmt.Errorf("core: %s lacks reqid column", tbl.Name())
	}
	out := make(map[string]bool, tbl.Rows())
	for r := 0; r < tbl.Rows(); r++ {
		id := tbl.Str(ci, r)
		if id != "" {
			out[id] = true
		}
	}
	return out, nil
}

// Summary renders the report for CLI output.
func (r *ConsistencyReport) Summary() string {
	if r.OK() {
		s := "monitor consistency: OK"
		for _, tier := range Tiers {
			if ll, ok := r.Littles[tier]; ok {
				s += fmt.Sprintf("\n  %-8s λ=%.1f/s W=%v L=%.2f",
					tier, ll.Lambda, ll.MeanResidence.Round(time.Microsecond), ll.MeanQueue)
			}
		}
		return s
	}
	s := "monitor consistency: PROBLEMS"
	for _, p := range r.Problems {
		s += "\n  " + p
	}
	return s
}
