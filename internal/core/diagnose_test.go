package core

import (
	"strings"
	"testing"
	"time"

	"github.com/gt-elba/milliscope/internal/bottleneck"
	"github.com/gt-elba/milliscope/internal/des"
	"github.com/gt-elba/milliscope/internal/mscopedb"
	"github.com/gt-elba/milliscope/internal/resmon"
)

// diagnoseScenario runs, ingests and diagnoses one scenario.
func diagnoseScenario(t *testing.T, cfg ExperimentConfig) *Diagnosis {
	t.Helper()
	_, db := runScenario(t, cfg)
	diag, err := Diagnose(db, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	return diag
}

// TestDiagnoseDBIO: the §V-A trial must be diagnosed as disk IO at mysql.
func TestDiagnoseDBIO(t *testing.T) {
	diag := diagnoseScenario(t, ScenarioDBIO(t.TempDir()))
	if len(diag.Windows) == 0 {
		t.Fatal("no VLRT windows diagnosed")
	}
	wd := diag.Windows[0]
	if wd.Kind != CauseDiskIO || wd.Node != "mysql" {
		t.Fatalf("diagnosis %s@%s (%s), want disk-io@mysql", wd.Kind, wd.Node, wd.Verdict)
	}
	if !wd.Pushback.CrossTier {
		t.Fatal("pushback not cross-tier")
	}
}

// TestDiagnoseDirtyPage: the §V-B trial's two windows must be diagnosed as
// dirty-page recycling on apache then tomcat.
func TestDiagnoseDirtyPage(t *testing.T) {
	diag := diagnoseScenario(t, ScenarioDirtyPage(t.TempDir()))
	if len(diag.Windows) != 2 {
		t.Fatalf("%d windows, want 2", len(diag.Windows))
	}
	first, second := diag.Windows[0], diag.Windows[1]
	if first.Kind != CauseDirtyPage || first.Node != "apache" {
		t.Fatalf("peak 1 diagnosed %s@%s, want dirty-page-recycling@apache (%s)",
			first.Kind, first.Node, first.Verdict)
	}
	if second.Kind != CauseDirtyPage || second.Node != "tomcat" {
		t.Fatalf("peak 2 diagnosed %s@%s, want dirty-page-recycling@tomcat (%s)",
			second.Kind, second.Node, second.Verdict)
	}
}

// TestDiagnoseJVMGC: a stop-the-world pause shows as CPU saturation on
// tomcat without a dirty-page or frequency signature.
func TestDiagnoseJVMGC(t *testing.T) {
	diag := diagnoseScenario(t, ScenarioJVMGC(t.TempDir()))
	if len(diag.Windows) == 0 {
		t.Fatal("no VLRT windows diagnosed")
	}
	wd := diag.Windows[0]
	if wd.Kind != CauseCPU || wd.Node != "tomcat" {
		t.Fatalf("diagnosis %s@%s, want cpu-saturation@tomcat (%s)",
			wd.Kind, wd.Node, wd.Verdict)
	}
}

// TestDiagnoseDVFS: the downclock is distinguished from organic CPU
// saturation by the frequency gauge.
func TestDiagnoseDVFS(t *testing.T) {
	diag := diagnoseScenario(t, ScenarioDVFS(t.TempDir()))
	if len(diag.Windows) == 0 {
		t.Fatal("no VLRT windows diagnosed")
	}
	wd := diag.Windows[0]
	if wd.Kind != CauseDVFS || wd.Node != "mysql" {
		t.Fatalf("diagnosis %s@%s, want dvfs-downclocking@mysql (%s)",
			wd.Kind, wd.Node, wd.Verdict)
	}
	if !strings.Contains(wd.Verdict, "dvfs") {
		t.Fatalf("verdict %q", wd.Verdict)
	}
}

// TestDiagnoseHealthy: a fault-free trial yields no VLRT windows.
func TestDiagnoseHealthy(t *testing.T) {
	cfg := ScenarioDBIO(t.TempDir())
	cfg.Injectors = nil
	cfg.Ntier.Duration = 4 * time.Second
	diag := diagnoseScenario(t, cfg)
	if len(diag.Windows) != 0 {
		t.Fatalf("healthy trial diagnosed %d windows: %+v", len(diag.Windows), diag.Windows[0])
	}
}

// TestDiagnoseRecurringVSBs: naturally recurring redo-log flushes each
// produce their own VLRT window, every one attributed to the DB disk — the
// "VSBs appear and disappear" life cycle of the paper's Section II.
func TestDiagnoseRecurringVSBs(t *testing.T) {
	cfg := ScenarioDBIO(t.TempDir())
	cfg.Name = "recurring-dbio"
	cfg.Ntier.Duration = 16 * time.Second
	cfg.Injectors = []bottleneck.Injector{bottleneck.PeriodicDBLogFlush{
		Start: des.Time(4 * time.Second), Period: 4 * time.Second,
		Duration: 300 * time.Millisecond, Count: 3,
	}}
	diag := diagnoseScenario(t, cfg)
	if len(diag.Windows) < 3 {
		t.Fatalf("%d VLRT windows, want 3 recurring episodes", len(diag.Windows))
	}
	for i, wd := range diag.Windows {
		if wd.Kind != CauseDiskIO || wd.Node != "mysql" {
			t.Fatalf("episode %d diagnosed %s@%s (%s)", i+1, wd.Kind, wd.Node, wd.Verdict)
		}
		if wd.Window.Duration() > time.Second {
			t.Fatalf("episode %d lasted %v; not a very SHORT bottleneck", i+1, wd.Window.Duration())
		}
	}
}

// TestPidstatAttributesFlusherCPU: during a recycling episode, the
// per-process monitor shows the kernel flusher — not the server process —
// burning the CPU, the attribution system-level tools cannot make.
func TestPidstatAttributesFlusherCPU(t *testing.T) {
	cfg := ScenarioDirtyPage(t.TempDir())
	cfg.Resmon.Kinds = append(cfg.Resmon.Kinds, resmon.Pidstat)
	_, db := runScenario(t, cfg)
	tbl, err := db.Table("apache_pidstat")
	if err != nil {
		t.Fatal(err)
	}
	res, err := tbl.Select().Where("command", mscopedb.OpEq, "kworker/u16:flush").Rows()
	if err != nil {
		t.Fatal(err)
	}
	sys, err := res.Floats("system")
	if err != nil {
		t.Fatal(err)
	}
	peak := 0.0
	for _, v := range sys {
		if v > peak {
			peak = v
		}
	}
	if peak < 80 {
		t.Fatalf("flusher row peaked at %.1f%% CPU, want saturation during recycling", peak)
	}
	// The httpd rows must NOT show that CPU.
	resH, err := tbl.Select().Where("command", mscopedb.OpEq, "httpd").Rows()
	if err != nil {
		t.Fatal(err)
	}
	sysH, err := resH.Floats("system")
	if err != nil {
		t.Fatal(err)
	}
	peakH := 0.0
	for _, v := range sysH {
		if v > peakH {
			peakH = v
		}
	}
	if peakH > 30 {
		t.Fatalf("httpd system CPU peaked at %.1f%%; recycling misattributed", peakH)
	}
}

func TestCauseKindString(t *testing.T) {
	for k, want := range map[CauseKind]string{
		CauseDiskIO: "disk-io", CauseDirtyPage: "dirty-page-recycling",
		CauseCPU: "cpu-saturation", CauseDVFS: "dvfs-downclocking",
		CauseUnknown: "unknown",
	} {
		if k.String() != want {
			t.Fatalf("%d → %q, want %q", int(k), k.String(), want)
		}
	}
}
